package datagridflow

// integration_test.go drives the whole stack the way a deployment
// would: the hand-authored SCEC DGL document from the corpus is
// submitted over the wire to a matrix server whose grid is described in
// the Infrastructure Description Language, with triggers tagging
// arrivals and an ILM pass archiving afterwards. A second test runs the
// corpus while-loop document. These are the closest thing to the
// paper's production pilots (UCSD Libraries, SCEC) in test form.

import (
	"context"
	"fmt"
	"os"
	"testing"

	"datagridflow/internal/dgms"
	"datagridflow/internal/infra"
	"datagridflow/internal/matrix"
	"datagridflow/internal/namespace"
	"datagridflow/internal/sim"
	"datagridflow/internal/wire"
	"datagridflow/internal/workload"
)

func TestIntegrationSCECPipelineOverWire(t *testing.T) {
	// Infrastructure described as the administrators would write it.
	desc := &infra.Description{
		Name: "scec-grid",
		Domains: []infra.Domain{
			{
				Name: "sdsc",
				Storage: []infra.Storage{
					{Name: "sdsc-gpfs", Class: "parallel-fs"},
					{Name: "sdsc-tape", Class: "archive"},
				},
				Compute: []infra.Compute{{Name: "sdsc-cluster", Nodes: 8, Power: 1}},
				SLAs:    []infra.SLA{{Name: "scec-gold", Users: []string{"jonw"}, Priority: 10}},
			},
		},
	}
	grid := dgms.New(dgms.Options{})
	if _, err := desc.Apply(grid); err != nil {
		t.Fatal(err)
	}
	if err := grid.CreateCollectionAll(grid.Admin(), "/grid/scec"); err != nil {
		t.Fatal(err)
	}
	if err := grid.Namespace().SetPermission("/grid", "jonw", namespace.PermWrite); err != nil {
		t.Fatal(err)
	}
	engine := matrix.NewEngine(grid)

	// Trigger: arrivals get stage=raw so the pipeline's datagrid query
	// finds them.
	triggers := NewTriggerManager(grid, engine, 2, 256)
	defer triggers.Close()
	if err := triggers.Define(Trigger{
		Name: "tag-arrivals", Owner: grid.Admin(),
		Events: []EventType{dgms.EventIngest}, Phase: dgms.After,
		Condition: "endsWith($path, '.dat')",
		Operations: []Operation{
			Op(OpSetMeta, map[string]string{"path": "$path", "attr": "stage", "value": "raw"}),
		},
	}); err != nil {
		t.Fatal(err)
	}

	// The simulation drops waveforms onto scratch.
	specs := workload.SCEC(sim.NewRand(11), 1, 6)
	if err := workload.Ingest(grid, "jonw", "sdsc-gpfs", specs); err != nil {
		t.Fatal(err)
	}
	triggers.Flush()

	// Serve the engine and submit the corpus document over TCP.
	srv := NewMatrixServer(engine)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := DialMatrix(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	doc, err := os.ReadFile("internal/dgl/testdata/scec-pipeline.xml")
	if err != nil {
		t.Fatal(err)
	}
	req, err := ParseDGLRequest(doc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if serr := res.Err(); serr != nil || res.ID == "" {
		t.Fatalf("submit = %+v (err %v)", res.Response, serr)
	}
	exec, ok := engine.Execution(res.ID)
	if !ok {
		t.Fatal("execution untracked")
	}
	if err := exec.Wait(); err != nil {
		t.Fatalf("pipeline failed: %v", err)
	}

	// Status over the wire at the per-file iteration granularity.
	st, err := client.Status("jonw", res.ID+"/scec-pipeline/per-file", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Children) != len(specs) {
		t.Errorf("iterations = %d, want %d", len(st.Children), len(specs))
	}

	// Every waveform processed, archived, and fixable in the audit log.
	for _, spec := range specs {
		stage, _, _ := grid.Namespace().GetMeta(spec.Path, "stage")
		if stage != "processed" {
			t.Errorf("%s stage = %q", spec.Path, stage)
		}
		reps, _ := grid.Namespace().Replicas(spec.Path)
		if len(reps) != 2 {
			t.Errorf("%s replicas = %d", spec.Path, len(reps))
		}
	}
	// The beforeEntry/afterExit rules stamped the collection.
	v, _, _ := grid.Namespace().GetMeta("/grid/scec", "pipeline")
	if v != "done" {
		t.Errorf("pipeline meta = %q", v)
	}
	// Compute charged to the named lane.
	if grid.Meter().Busy("sdsc-cluster") <= 0 {
		t.Errorf("no compute charged")
	}
	// Provenance for one waveform tells the whole story.
	recs := grid.Provenance().Query(ProvenanceFilter{TargetPrefix: specs[0].Path})
	if len(recs) < 3 {
		t.Errorf("provenance too thin: %d records", len(recs))
	}
}

func TestIntegrationCorpusWhileLoop(t *testing.T) {
	grid := NewGrid(GridOptions{})
	if err := grid.RegisterResource(NewResource("disk", "x", Disk, 0)); err != nil {
		t.Fatal(err)
	}
	engine := NewEngine(grid)
	doc, err := os.ReadFile("internal/dgl/testdata/ilm-nightly.xml")
	if err != nil {
		t.Fatal(err)
	}
	req, err := ParseDGLRequest(doc)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := engine.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" || resp.Status == nil || resp.Status.State != "succeeded" {
		t.Fatalf("response = %+v", resp)
	}
	// Three batches ⇒ three iterations of the drain loop, visible in
	// the status tree and in the exec provenance.
	drain, ok := resp.Status.Find(resp.Status.ID + "/drain")
	if !ok {
		t.Fatalf("drain flow not in status tree")
	}
	if len(drain.Children) != 3 {
		t.Errorf("drain iterations = %d", len(drain.Children))
	}
	if n := grid.Provenance().Count(ProvenanceFilter{Action: "exec"}); n != 3 {
		t.Errorf("exec records = %d", n)
	}
}

func TestIntegrationPeerNetworkStatusRouting(t *testing.T) {
	lookup := wire.NewLookupServer()
	lookupAddr, err := lookup.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lookup.Close()

	mkPeer := func(name string) *MatrixPeer {
		g := NewGrid(GridOptions{})
		if err := g.RegisterResource(NewResource("disk-"+name, name, Disk, 0)); err != nil {
			t.Fatal(err)
		}
		if err := g.CreateCollectionAll(g.Admin(), "/grid"); err != nil {
			t.Fatal(err)
		}
		e := NewEngineConfig(g, EngineConfig{IDPrefix: name + ":"})
		p := wire.NewPeer(name, e)
		if _, err := p.Start("127.0.0.1:0", lookupAddr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		return p
	}
	peerA, peerB := mkPeer("siteA"), mkPeer("siteB")

	// Submit ten flows to B through A, then audit them all from A.
	var ids []string
	for i := 0; i < 10; i++ {
		flow := NewFlow(fmt.Sprintf("job%d", i)).
			Step("work", Op(OpExec, map[string]string{"command": "x", "cpuSeconds": "1"})).Flow()
		resp, err := peerA.SubmitTo("siteB", peerB.Engine().Grid().Admin(), flow)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, resp.Ack.ID)
	}
	for _, id := range ids {
		exec, ok := peerB.Engine().Execution(id)
		if !ok {
			t.Fatalf("%s untracked on B", id)
		}
		if err := exec.Wait(); err != nil {
			t.Fatal(err)
		}
		st, err := peerA.Status("auditor", id, false)
		if err != nil || st.State != "succeeded" {
			t.Errorf("cross-peer status of %s = %+v, %v", id, st, err)
		}
	}
}
