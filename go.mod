module datagridflow

go 1.22
