// ILM stars: the paper's two datagrid-ILM topologies on one program.
//
// Imploding star (BBSRC-CCLRC): hospital domains produce records; the
// archiver domain pulls everything onto its tape silo during a nightly
// window. Exploding star (CERN CMS): the tier-0 site pushes event data
// down two tiers in stages, so tier-2 pulls from tier-1 rather than
// saturating CERN's uplink.
package main

import (
	"fmt"
	"log"
	"time"

	datagridflow "datagridflow"

	"datagridflow/internal/ilm"
	"datagridflow/internal/sim"
	"datagridflow/internal/workload"
)

func main() {
	implodingStar()
	fmt.Println()
	explodingStar()
}

func implodingStar() {
	fmt.Println("=== imploding star (BBSRC hospitals → archiver) ===")
	grid := datagridflow.NewGrid(datagridflow.GridOptions{})
	if err := grid.RegisterResource(
		datagridflow.NewResource("archive-tape", "archiver", datagridflow.Archive, 0)); err != nil {
		log.Fatal(err)
	}
	const hospitals = 4
	specs := workload.Hospitals(sim.NewRand(3), hospitals, 12)
	for domain, files := range specs {
		if err := grid.RegisterResource(
			datagridflow.NewResource(domain+"-disk", domain, datagridflow.Disk, 0)); err != nil {
			log.Fatal(err)
		}
		// Slow hospital uplinks to the archiver.
		grid.Network().SetSymmetric(domain, "archiver", sim.Link{
			Bandwidth: 5 << 20, Latency: 80 * time.Millisecond,
		})
		if err := workload.Ingest(grid, grid.Admin(), domain+"-disk", files); err != nil {
			log.Fatal(err)
		}
	}
	grid.Network().Reset()

	// The archival schedule: only run in the 20:00–06:00 window.
	window := datagridflow.ExecutionWindow{StartHour: 20, EndHour: 6}
	now := grid.Clock().Now()
	if !window.Contains(now) {
		wait := window.NextOpen(now).Sub(now)
		fmt.Printf("outside the archival window; sleeping %v\n", wait)
		grid.Clock().Sleep(wait)
	}

	flow, err := datagridflow.ImplodingStar(grid, grid.Admin(), "/grid/hospitals", "archive-tape", true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated DGL flow with %d migration steps\n", flow.CountSteps())
	engine := datagridflow.NewEngine(grid)
	exec, err := engine.Run(grid.Admin(), flow)
	if err != nil {
		log.Fatal(err)
	}
	if err := exec.Wait(); err != nil {
		log.Fatal(err)
	}
	tape, _ := grid.Resource("archive-tape")
	fmt.Printf("archived %d records (%s) onto tape\n", tape.Count(), sim.FormatBytes(tape.Used()))
	for _, row := range grid.Network().TrafficReport()[:3] {
		fmt.Println("  top traffic:", row.String())
	}
	fmt.Printf("archive completed at %v (simulated)\n", grid.Clock().Now().Format(time.RFC3339))
}

func explodingStar() {
	fmt.Println("=== exploding star (CERN CMS tiered push) ===")
	grid := datagridflow.NewGrid(datagridflow.GridOptions{})
	domains := []string{"cern", "fnal", "in2p3", "ufl", "caltech"}
	for _, d := range domains {
		if err := grid.RegisterResource(
			datagridflow.NewResource(d, d, datagridflow.Disk, 0)); err != nil {
			log.Fatal(err)
		}
	}
	// Fat pipes CERN→tier-1, slimmer tier-1→tier-2, slow CERN→tier-2.
	for _, t1 := range []string{"fnal", "in2p3"} {
		grid.Network().SetSymmetric("cern", t1, sim.Link{Bandwidth: 100 << 20, Latency: 50 * time.Millisecond})
		for _, t2 := range []string{"ufl", "caltech"} {
			grid.Network().SetSymmetric(t1, t2, sim.Link{Bandwidth: 50 << 20, Latency: 30 * time.Millisecond})
		}
	}
	for _, t2 := range []string{"ufl", "caltech"} {
		grid.Network().SetSymmetric("cern", t2, sim.Link{Bandwidth: 10 << 20, Latency: 120 * time.Millisecond})
	}
	specs := workload.CMSRuns(sim.NewRand(4), 6)
	if err := workload.Ingest(grid, grid.Admin(), "cern", specs); err != nil {
		log.Fatal(err)
	}
	grid.Network().Reset()

	flow, err := datagridflow.ExplodingStar(grid, grid.Admin(), "/grid/cms",
		[][]string{{"fnal", "in2p3"}, {"ufl", "caltech"}})
	if err != nil {
		log.Fatal(err)
	}
	engine := datagridflow.NewEngine(grid)
	exec, err := engine.Run(grid.Admin(), flow)
	if err != nil {
		log.Fatal(err)
	}
	if err := exec.Wait(); err != nil {
		log.Fatal(err)
	}
	reps, _ := grid.Namespace().Replicas(specs[0].Path)
	fmt.Printf("%s now has %d replicas across the tiers\n", specs[0].Path, len(reps))
	var cernOut int64
	for _, d := range domains[1:] {
		cernOut += grid.Network().Traffic("cern", d)
	}
	fmt.Printf("CERN egress: %s of %s total traffic (staging kept tier-2 off the tier-0 uplink)\n",
		sim.FormatBytes(cernOut), sim.FormatBytes(grid.Network().TotalTraffic()))

	// For contrast, what the value model would say about this fresh data.
	vm := ilm.NewValueModel()
	vm.Record(specs[0].Path, grid.Clock().Now())
	fmt.Printf("domain value of %s right now: %.0f/100\n",
		specs[0].Path, vm.Value(specs[0].Path, grid.Clock().Now(), grid.Clock().Now()))
}
