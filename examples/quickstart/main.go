// Quickstart: build a two-domain datagrid, describe a small
// datagridflow in DGL, execute it, and inspect status and provenance —
// the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	datagridflow "datagridflow"
)

func main() {
	// 1. A grid with two administrative domains: fast disk at SDSC, a
	// tape archive elsewhere. All simulated — operations charge a
	// virtual clock rather than real hardware.
	grid := datagridflow.NewGrid(datagridflow.GridOptions{})
	for _, r := range []*datagridflow.Resource{
		datagridflow.NewResource("sdsc-disk", "sdsc", datagridflow.Disk, 0),
		datagridflow.NewResource("vault", "archive.org", datagridflow.Archive, 0),
	} {
		if err := grid.RegisterResource(r); err != nil {
			log.Fatal(err)
		}
	}
	if err := grid.CreateCollectionAll(grid.Admin(), "/grid/home/demo"); err != nil {
		log.Fatal(err)
	}

	// 2. A datagridflow: ingest a file, tag it, protect it on tape, and
	// verify fixity — described in DGL, the paper's workflow language.
	flow := datagridflow.NewFlow("quickstart").
		Step("ingest", datagridflow.Op(datagridflow.OpIngest, map[string]string{
			"path": "/grid/home/demo/results.dat", "data": "42,43,44", "resource": "sdsc-disk",
		})).
		Step("tag", datagridflow.Op(datagridflow.OpSetMeta, map[string]string{
			"path": "/grid/home/demo/results.dat", "attr": "experiment", "value": "demo",
		})).
		Step("protect", datagridflow.Op(datagridflow.OpReplicate, map[string]string{
			"path": "/grid/home/demo/results.dat", "to": "vault",
		})).
		Step("verify", datagridflow.Op(datagridflow.OpVerify, map[string]string{
			"path": "/grid/home/demo/results.dat",
		})).Flow()

	// The same document serializes to the XML of the paper's Appendix A.
	xmlDoc, err := datagridflow.MarshalDGL(datagridflow.NewRequest(grid.Admin(), "demo-vo", flow))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DGL document: %d bytes of XML\n", len(xmlDoc))

	// 3. Execute on the matrix engine and wait.
	engine := datagridflow.NewEngine(grid)
	exec, err := engine.Run(grid.Admin(), flow)
	if err != nil {
		log.Fatal(err)
	}
	if err := exec.Wait(); err != nil {
		log.Fatalf("flow failed: %v", err)
	}

	// 4. Status at any granularity.
	status := exec.Status(true)
	fmt.Println("flow:", status.Summary())
	for _, step := range status.Children {
		fmt.Println("  ", step.Summary())
	}

	// 5. Replicas and provenance.
	reps, err := grid.Namespace().Replicas("/grid/home/demo/results.dat")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replicas: %d (", len(reps))
	for i, rep := range reps {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(rep.Resource)
	}
	fmt.Println(")")
	records := grid.Provenance().Query(datagridflow.ProvenanceFilter{
		TargetPrefix: "/grid/home/demo",
	})
	fmt.Printf("provenance: %d records, first action %q, last action %q\n",
		len(records), records[0].Action, records[len(records)-1].Action)
	fmt.Printf("simulated time elapsed: %v\n", grid.Clock().Now())
}
