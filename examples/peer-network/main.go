// Peer network: the paper's "multiple DfMS servers can form a
// peer-to-peer datagridflow network with one or more lookup servers",
// in one process. Three matrix peers register with a lookup server;
// flows are submitted to whichever peer owns the data, and any peer can
// answer a status query for any execution — the id itself carries its
// owner.
package main

import (
	"fmt"
	"log"

	datagridflow "datagridflow"

	"datagridflow/internal/wire"
)

func main() {
	// One lookup server for the whole network.
	lookup := wire.NewLookupServer()
	lookupAddr, err := lookup.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer lookup.Close()
	fmt.Printf("lookup server on %s\n", lookupAddr)

	// Three sites, each with its own grid and matrix server. In a real
	// deployment these are separate processes on separate machines
	// (`matrixd -name siteX -lookup ...`).
	mkPeer := func(name string) *wire.Peer {
		grid := datagridflow.NewGrid(datagridflow.GridOptions{})
		if err := grid.RegisterResource(
			datagridflow.NewResource(name+"-disk", name, datagridflow.Disk, 0)); err != nil {
			log.Fatal(err)
		}
		if err := grid.CreateCollectionAll(grid.Admin(), "/grid/"+name); err != nil {
			log.Fatal(err)
		}
		engine := datagridflow.NewEngineConfig(grid, datagridflow.EngineConfig{IDPrefix: name + ":"})
		peer := wire.NewPeer(name, engine)
		addr, err := peer.Start("127.0.0.1:0", lookupAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("peer %s serving on %s\n", name, addr)
		return peer
	}
	sdsc := mkPeer("sdsc")
	cern := mkPeer("cern")
	ncsa := mkPeer("ncsa")
	defer sdsc.Close()
	defer cern.Close()
	defer ncsa.Close()

	// Submit one ingest flow to each site — routed through the sdsc peer
	// regardless of destination.
	var ids []string
	for _, site := range []string{"sdsc", "cern", "ncsa"} {
		flow := datagridflow.NewFlow("load-"+site).
			Step("ingest", datagridflow.Op(datagridflow.OpIngest, map[string]string{
				"path": "/grid/" + site + "/data.set", "size": "1048576", "resource": site + "-disk",
			})).Flow()
		resp, err := sdsc.SubmitTo(site, "admin", flow)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("submitted to %s: %s\n", site, resp.Ack.ID)
		ids = append(ids, resp.Ack.ID)
	}
	// Wait for completion on the owning engines.
	for _, peer := range []*wire.Peer{sdsc, cern, ncsa} {
		for _, id := range ids {
			if exec, ok := peer.Engine().Execution(id); ok {
				if err := exec.Wait(); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	// The ncsa peer audits every execution in the network: ids route
	// themselves ("The identifier for any particular task or flow can be
	// shared with all other processes").
	for _, id := range ids {
		st, err := ncsa.Status("auditor", id, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ncsa sees %-24s → %s\n", id, st.State)
	}
	// Even step-level ids resolve across the network.
	stepID := ids[1] + "/load-cern/ingest"
	st, err := sdsc.Status("auditor", stepID, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sdsc sees step %s → %s (%s)\n", stepID, st.State, st.Kind)
}
