// UCSD fixity: the data-integrity flow the paper reports running in
// production ("Datagridflow for data-integrity and MD5 calculation was
// described in DGL and executed by SRB Matrix servers for the UCSD
// Library data"). Library documents are ingested with real bytes, MD5
// digests are recorded at write time, one replica silently rots, and
// the periodic verification flow catches it; the failure is visible in
// step states and provenance, and the damaged replica is repaired from
// a healthy one.
package main

import (
	"fmt"
	"log"

	datagridflow "datagridflow"
)

func main() {
	grid := datagridflow.NewGrid(datagridflow.GridOptions{})
	for _, r := range []*datagridflow.Resource{
		datagridflow.NewResource("lib-disk", "ucsd", datagridflow.Disk, 0),
		datagridflow.NewResource("lib-mirror", "sdsc", datagridflow.Disk, 0),
	} {
		if err := grid.RegisterResource(r); err != nil {
			log.Fatal(err)
		}
	}
	if err := grid.CreateCollectionAll(grid.Admin(), "/grid/library"); err != nil {
		log.Fatal(err)
	}
	engine := datagridflow.NewEngine(grid)

	// Ingest three documents with real content (MD5 is computed over the
	// actual bytes) and mirror them.
	docs := map[string]string{
		"/grid/library/catalog-1971.txt":  "special collections: catalog of holdings, 1971 edition",
		"/grid/library/oral-history.txt":  "transcript: San Diego oral history project, tape 14",
		"/grid/library/photographs.index": "index of digitized photograph negatives, box 7",
	}
	ingest := datagridflow.NewFlow("ingest-holdings")
	for path, content := range docs {
		ingest.Step("ingest-"+path[14:], datagridflow.Op(datagridflow.OpIngest, map[string]string{
			"path": path, "data": content, "resource": "lib-disk",
		}))
		ingest.Step("mirror-"+path[14:], datagridflow.Op(datagridflow.OpReplicate, map[string]string{
			"path": path, "to": "lib-mirror",
		}))
	}
	run(engine, grid, ingest.Flow())
	fmt.Printf("ingested and mirrored %d documents\n", len(docs))

	// Bit-rot strikes the mirror copy of one document.
	victim := "/grid/library/oral-history.txt"
	mirror, err := grid.Resource("lib-mirror")
	if err != nil {
		log.Fatal(err)
	}
	if err := mirror.Corrupt(victim); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected corruption into the mirror replica of %s\n", victim)

	// The periodic verification flow: verify every document; steps use
	// onError=continue so one bad document doesn't stop the sweep, and
	// the per-replica mismatch count lands in a variable.
	sweep := datagridflow.NewFlow("fixity-sweep")
	for path := range docs {
		sweep.StepWith(datagridflow.Step{
			Name:    "verify-" + path[14:],
			OnError: "continue",
			Operation: datagridflow.Op(datagridflow.OpVerify, map[string]string{
				"path": path,
			}),
		})
	}
	exec, err := engine.Run(grid.Admin(), sweep.Flow())
	if err != nil {
		log.Fatal(err)
	}
	_ = exec.Wait()
	status := exec.Status(true)
	counts := status.CountByState()
	fmt.Printf("sweep: %d verified clean, %d failed fixity\n", counts["succeeded"]-1, counts["failed"])
	for _, step := range status.Children {
		if step.State == "failed" {
			fmt.Printf("  %s: %s\n", step.Name, step.Error)
		}
	}

	// Repair: drop the rotten replica, re-mirror from the healthy copy,
	// and re-verify.
	repair := datagridflow.NewFlow("repair").
		Step("trim-bad", datagridflow.Op(datagridflow.OpTrim, map[string]string{
			"path": victim, "resource": "lib-mirror",
		})).
		Step("re-mirror", datagridflow.Op(datagridflow.OpReplicate, map[string]string{
			"path": victim, "to": "lib-mirror",
		})).
		Step("re-verify", datagridflow.Op(datagridflow.OpVerify, map[string]string{
			"path": victim,
		})).Flow()
	run(engine, grid, repair)
	fmt.Printf("repaired %s and re-verified successfully\n", victim)

	// The whole episode is in the provenance store.
	audit := grid.Provenance().Query(datagridflow.ProvenanceFilter{TargetPrefix: victim})
	fmt.Printf("provenance for %s: %d records (", victim, len(audit))
	for i, rec := range audit {
		if i > 0 {
			fmt.Print(" → ")
		}
		fmt.Print(rec.Action)
		if rec.Outcome == "error" {
			fmt.Print("!")
		}
	}
	fmt.Println(")")
}

func run(engine *datagridflow.Engine, grid *datagridflow.Grid, flow datagridflow.Flow) {
	exec, err := engine.Run(grid.Admin(), flow)
	if err != nil {
		log.Fatal(err)
	}
	if err := exec.Wait(); err != nil {
		log.Fatalf("flow %s failed: %v", flow.Name, err)
	}
}
