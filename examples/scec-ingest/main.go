// SCEC ingest: the Southern California Earthquake Center scenario from
// the paper ("SCEC workflow for ingesting files into the SRB datagrid
// was also performed using DGL"). A simulation run produces waveform
// files; a trigger tags them as they arrive; a DGL pipeline — iterating
// over a datagrid query, the paper's late-bound working set — verifies
// fixity, runs post-processing business logic on the grid, marks each
// file processed and archives it to tape. Everything is auditable
// through provenance afterwards.
package main

import (
	"fmt"
	"log"

	datagridflow "datagridflow"

	"datagridflow/internal/dgms"
	"datagridflow/internal/namespace"
	"datagridflow/internal/sim"
	"datagridflow/internal/workload"
)

func main() {
	// Grid: SCEC's parallel scratch FS, project disk and tape at SDSC.
	grid := datagridflow.NewGrid(datagridflow.GridOptions{})
	for _, r := range []*datagridflow.Resource{
		datagridflow.NewResource("sdsc-gpfs", "sdsc", datagridflow.ParallelFS, 0),
		datagridflow.NewResource("sdsc-disk", "sdsc", datagridflow.Disk, 0),
		datagridflow.NewResource("sdsc-tape", "sdsc", datagridflow.Archive, 0),
	} {
		if err := grid.RegisterResource(r); err != nil {
			log.Fatal(err)
		}
	}
	if err := grid.CreateCollectionAll(grid.Admin(), "/grid/scec"); err != nil {
		log.Fatal(err)
	}
	engine := datagridflow.NewEngine(grid)

	// Trigger: every ingested waveform is tagged for the pipeline — the
	// paper's "creating metadata when a file is created".
	triggers := datagridflow.NewTriggerManager(grid, engine, 2, 256)
	defer triggers.Close()
	err := triggers.Define(datagridflow.Trigger{
		Name: "tag-waveforms", Owner: grid.Admin(),
		Events: []datagridflow.EventType{dgms.EventIngest}, Phase: dgms.After,
		Condition: "endsWith($path, '.dat')",
		Operations: []datagridflow.Operation{
			datagridflow.Op(datagridflow.OpSetMeta, map[string]string{
				"path": "$path", "attr": "stage", "value": "raw",
			}),
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The simulation produced 2 runs × 8 waveforms (synthetic stand-ins
	// for TeraShake outputs — log-normal sizes around a 64 MiB median).
	specs := workload.SCEC(sim.NewRand(2005), 2, 8)
	if err := workload.Ingest(grid, grid.Admin(), "sdsc-gpfs", specs); err != nil {
		log.Fatal(err)
	}
	triggers.Flush()
	fmt.Printf("ingested %d waveforms (%s)\n", len(specs), sim.FormatBytes(workload.TotalBytes(specs)))

	// The pipeline: forEach over a datagrid query selecting stage=raw —
	// the working set binds when the loop starts, not when the document
	// was written.
	pipeline := datagridflow.NewFlow("scec-pipeline").
		SubFlow(datagridflow.NewFlow("per-file").
			ForEachQuery("file", datagridflow.NSQuery{
				Scope: "/grid/scec", ObjectsOnly: true,
				Conditions: []datagridflow.QueryCond{{Attr: "stage", Op: "=", Value: "raw"}},
			}).
			Step("verify", datagridflow.Op(datagridflow.OpVerify, map[string]string{
				"path": "$file",
			})).
			Step("post-process", datagridflow.Op(datagridflow.OpExec, map[string]string{
				"command": "seismogram-extract $file", "cpuSeconds": "120", "lane": "sdsc-cluster",
			})).
			Step("mark", datagridflow.Op(datagridflow.OpSetMeta, map[string]string{
				"path": "$file", "attr": "stage", "value": "processed",
			})).
			Step("archive", datagridflow.Op(datagridflow.OpReplicate, map[string]string{
				"path": "$file", "to": "sdsc-tape",
			}))).Flow()

	exec, err := engine.Run(grid.Admin(), pipeline)
	if err != nil {
		log.Fatal(err)
	}
	if err := exec.Wait(); err != nil {
		log.Fatalf("pipeline failed: %v", err)
	}

	// Outcomes: every waveform processed, two replicas each, full audit
	// trail, and the simulated cost of the campaign.
	processed, err := grid.Search(grid.Admin(), datagridflow.NamespaceQuery{
		ObjectsOnly: true,
		Conditions: []datagridflow.NamespaceCondition{
			{Attr: "stage", Op: namespace.OpEq, Value: "processed"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("processed: %d/%d files\n", len(processed), len(specs))
	reps, _ := grid.Namespace().Replicas(specs[0].Path)
	fmt.Printf("replicas of %s: %d\n", specs[0].Path, len(reps))
	fmt.Printf("compute charged: %v on sdsc-cluster\n", grid.Meter().Busy("sdsc-cluster"))
	audit := grid.Provenance().Query(datagridflow.ProvenanceFilter{Action: "replicate"})
	fmt.Printf("provenance: %d archive replications recorded\n", len(audit))
	fmt.Printf("status tree: %d nodes succeeded\n",
		func() int { s := exec.Status(true); return s.CountByState()["succeeded"] }())
}
