// Triggers: the paper's datagrid trigger scenarios (§2.2) end to end —
// metadata on ingest, size-based auto-replication, a retention veto on
// deletes, and a trigger that launches a whole DGL flow.
package main

import (
	"errors"
	"fmt"
	"log"

	datagridflow "datagridflow"

	"datagridflow/internal/dgms"
)

func main() {
	grid := datagridflow.NewGrid(datagridflow.GridOptions{})
	for _, r := range []*datagridflow.Resource{
		datagridflow.NewResource("disk", "sdsc", datagridflow.Disk, 0),
		datagridflow.NewResource("tape", "archive", datagridflow.Archive, 0),
	} {
		if err := grid.RegisterResource(r); err != nil {
			log.Fatal(err)
		}
	}
	if err := grid.CreateCollectionAll(grid.Admin(), "/grid/in"); err != nil {
		log.Fatal(err)
	}
	engine := datagridflow.NewEngine(grid)
	triggers := datagridflow.NewTriggerManager(grid, engine, 2, 256)
	defer triggers.Close()

	// 1. Metadata on ingest ("creating metadata when a file is created").
	must(triggers.Define(datagridflow.Trigger{
		Name: "classify", Owner: grid.Admin(),
		Events: []datagridflow.EventType{dgms.EventIngest}, Phase: dgms.After,
		Condition: "endsWith($path, '.dat')",
		Operations: []datagridflow.Operation{
			datagridflow.Op(datagridflow.OpSetMeta, map[string]string{
				"path": "$path", "attr": "kind", "value": "dataset",
			}),
		},
	}))

	// 2. Auto-replication of large ingests ("automating replication of
	// certain data based on their meta-data").
	must(triggers.Define(datagridflow.Trigger{
		Name: "protect-big", Owner: grid.Admin(),
		Events: []datagridflow.EventType{dgms.EventIngest}, Phase: dgms.After,
		Condition: "num($size) >= 1048576",
		Operations: []datagridflow.Operation{
			datagridflow.Op(datagridflow.OpReplicate, map[string]string{"path": "$path", "to": "tape"}),
		},
	}))

	// 3. Retention veto: archived paths are immutable (a before-phase
	// trigger rejecting the event).
	must(triggers.Define(datagridflow.Trigger{
		Name: "retention", Owner: grid.Admin(),
		Events: []datagridflow.EventType{dgms.EventDelete}, Phase: dgms.Before,
		Condition:   "contains($path, '/archive-')",
		Veto:        true,
		VetoMessage: "retention policy: archived records are immutable",
	}))

	// 4. A trigger that launches a full DGL flow: verify fixity of every
	// new ingest, then stamp the verification time.
	verifyFlow := datagridflow.NewFlow("post-ingest-fixity").
		Step("verify", datagridflow.Op(datagridflow.OpVerify, map[string]string{"path": "$event_path"})).
		Step("stamp", datagridflow.Op(datagridflow.OpSetMeta, map[string]string{
			"path": "$event_path", "attr": "fixity", "value": "verified",
		})).Flow()
	must(triggers.Define(datagridflow.Trigger{
		Name: "fixity-pipeline", Owner: grid.Admin(),
		Events: []datagridflow.EventType{dgms.EventIngest}, Phase: dgms.After,
		Flow: &verifyFlow,
	}))

	// Drive the grid and watch the triggers do the work.
	must(grid.Ingest(grid.Admin(), "/grid/in/small.dat", 4096, nil, "disk"))
	must(grid.Ingest(grid.Admin(), "/grid/in/huge.dat", 64<<20, nil, "disk"))
	must(grid.Ingest(grid.Admin(), "/grid/in/archive-2005.tar", 8<<20, nil, "disk"))
	triggers.Flush()

	for _, path := range []string{"/grid/in/small.dat", "/grid/in/huge.dat"} {
		kind, _, _ := grid.Namespace().GetMeta(path, "kind")
		fixity, _, _ := grid.Namespace().GetMeta(path, "fixity")
		reps, _ := grid.Namespace().Replicas(path)
		fmt.Printf("%s: kind=%q fixity=%q replicas=%d\n", path, kind, fixity, len(reps))
	}

	// The veto in action.
	err := grid.Delete(grid.Admin(), "/grid/in/archive-2005.tar")
	if errors.Is(err, dgms.ErrVetoed) {
		fmt.Printf("delete vetoed as expected: %v\n", err)
	} else {
		log.Fatalf("veto did not fire: %v", err)
	}

	// The firing log is the audit trail for trigger activity.
	fmt.Printf("trigger firings: %d total", len(triggers.Firings()))
	for _, name := range triggers.Names() {
		fmt.Printf("  %s=%d", name, triggers.FireCount(name))
	}
	fmt.Println()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
