// Command matrixd runs a networked DfMS (matrix) server: it builds a
// grid from an Infrastructure Description Language document (or a
// built-in demo topology), wraps it in a flow engine, and serves DGL
// requests over TCP. With -lookup it joins a peer-to-peer datagridflow
// network.
//
// Usage:
//
//	matrixd -addr :7401                          # demo grid
//	matrixd -addr :7401 -infra grid.xml          # described grid
//	matrixd -name matrixA -lookup host:7400      # join a peer network
//	matrixd -peer-name matrixA -lookup host:7400 # same (alias)
//	matrixd -placement locality -heartbeat 2s    # federation tuning
//	matrixd -shards 64 -lookup host:7400         # sharded flow ownership
//	matrixd -repl-followers 2 -repl-ack quorum   # replicated lifecycle store
//	matrixd -repl-dir /var/lib/matrix-replica    # replica root override
//	matrixd -prov /var/log/matrix-prov.jsonl     # durable provenance
//	matrixd -metrics-addr :7481                  # JSON metrics + pprof
//	matrixd -journal /var/lib/matrix.journal     # crash recovery
//	matrixd -store-dir /var/lib/matrix-store     # durable flow-state store
//	matrixd -snapshot-every 30s -passivate-idle 5m # store maintenance
//	matrixd -fault plan.json                     # fault injection
//	matrixd -max-inflight 128 -max-queue 512     # admission tuning
//	matrixd -serial-only                         # pin pre-1.2 framing
//	matrixd -tenant-auth secret.key              # verify tenant tokens (wire 1.7)
//	matrixd -tenant-conf tenants.json            # per-tenant quotas and weights
//	matrixd -tenant-require                      # reject untokened submissions
//	matrixd -lookup-token token.txt              # authenticate with a gated lookupd
//	matrixd -vdata                               # memoize pure steps (wire 1.8)
//	matrixd -vdata-dir /var/lib/matrix-vdata     # durable derivation catalog
//
// With -metrics-addr the server exposes the observability surface
// documented in docs/METRICS.md: /metrics (JSON snapshot), /trace
// (recent trace events) and /debug/pprof/.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/dgms"
	"datagridflow/internal/fault"
	"datagridflow/internal/federation"
	"datagridflow/internal/infra"
	"datagridflow/internal/matrix"
	"datagridflow/internal/namespace"
	"datagridflow/internal/obs"
	"datagridflow/internal/provenance"
	"datagridflow/internal/replica"
	"datagridflow/internal/scheduler"
	"datagridflow/internal/shard"
	"datagridflow/internal/sim"
	"datagridflow/internal/store"
	"datagridflow/internal/tenant"
	"datagridflow/internal/trigger"
	"datagridflow/internal/vdata"
	"datagridflow/internal/vfs"
	"datagridflow/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7401", "listen address")
	name := flag.String("name", "", "peer name (required with -lookup)")
	peerName := flag.String("peer-name", "", "alias for -name")
	lookup := flag.String("lookup", "", "lookup server address to register with")
	placement := flag.String("placement", "least-loaded", "federation placement policy: least-loaded, round-robin, locality or vdata-locality (docs/FEDERATION.md, docs/VDATA.md)")
	heartbeat := flag.Duration("heartbeat", 5*time.Second, "federation heartbeat interval (lookup lease renewal and load gossip)")
	shards := flag.Int("shards", 0, "shard count for consistent-hash flow ownership (0 disables; requires -lookup and a lookupd started with the same -shards)")
	infraPath := flag.String("infra", "", "infrastructure description XML (default: demo topology)")
	triggerPath := flag.String("triggers", "", "trigger definitions XML to install at startup")
	provPath := flag.String("prov", "", "provenance log file (default: in-memory)")
	admin := flag.String("admin", "admin", "grid administrator user")
	openWrite := flag.Bool("open", true, "grant every user write access under /grid (demo mode)")
	metricsAddr := flag.String("metrics-addr", "", "serve JSON metrics, trace events and pprof on this address (\":0\" for ephemeral; empty disables)")
	journalPath := flag.String("journal", "", "execution journal file: crashed runs are recovered on startup (docs/FAULTS.md)")
	storeDir := flag.String("store-dir", "", "flow-state store directory: segmented journal with snapshots, compaction and passivation (docs/STORE.md)")
	snapshotEvery := flag.Duration("snapshot-every", 30*time.Second, "how often to snapshot dirty executions into the store (0 disables; requires -store-dir)")
	passivateIdle := flag.Duration("passivate-idle", 0, "evict executions idle this long from memory into the store (0 disables; requires -store-dir)")
	faultPath := flag.String("fault", "", "fault-injection plan (JSON) applied to the grid and server (docs/FAULTS.md)")
	maxInflight := flag.Int("max-inflight", 64, "max concurrently executing requests across all connections (admission worker pool)")
	maxUserQueue := flag.Int("max-queue", 256, "max admission waiters queued per user; excess requests are rejected with a capacity error")
	serialOnly := flag.Bool("serial-only", false, "pin the wire protocol to pre-1.2 serial framing (no multiplexing)")
	codecName := flag.String("codec", "json", "encoding for new journal/store writes: json or binary (docs/CODEC.md); existing files are sniffed and replay either way")
	replFollowers := flag.Int("repl-followers", 0, "replicate the flow-state store to this many follower peers (0 disables; requires -lookup and -store-dir; docs/REPLICATION.md)")
	replAck := flag.String("repl-ack", "quorum", "replication ack mode: quorum, chain or async (docs/REPLICATION.md)")
	replDir := flag.String("repl-dir", "", "replica root directory for stores received from followed peers (default: <store-dir>.replica)")
	tenantAuth := flag.String("tenant-auth", "", "shared-secret key file for tenant token verification (wire 1.7; docs/TENANCY.md)")
	tenantConf := flag.String("tenant-conf", "", "tenant quota/weight configuration JSON (docs/TENANCY.md)")
	tenantRequire := flag.Bool("tenant-require", false, "reject submissions without a valid tenant token (requires -tenant-auth)")
	lookupToken := flag.String("lookup-token", "", "file holding a tenant token presented to a token-gated lookup registry")
	vdataOn := flag.Bool("vdata", false, "enable a memory-only virtual-data derivation catalog: pure steps are memoized and elided on re-run (wire 1.8; docs/VDATA.md)")
	vdataDir := flag.String("vdata-dir", "", "durable virtual-data catalog directory; derivations survive restart (implies -vdata)")
	vdataToken := flag.String("vdata-token", "", "file holding a tenant token offered on cross-peer derivation lookups (tenant-require fleets; docs/VDATA.md)")
	flag.Parse()
	if *codecName != "json" && *codecName != "binary" {
		log.Fatalf("matrixd: -codec must be json or binary, got %q", *codecName)
	}
	binaryCodec := *codecName == "binary"
	if *name == "" {
		*name = *peerName
	} else if *peerName != "" && *peerName != *name {
		log.Fatal("matrixd: -name and -peer-name disagree")
	}

	var prov *provenance.Store
	if *provPath != "" {
		var err error
		prov, err = provenance.Open(*provPath)
		if err != nil {
			log.Fatalf("matrixd: %v", err)
		}
		defer prov.Close()
	}
	grid := dgms.New(dgms.Options{
		Admin:      *admin,
		Clock:      sim.RealClock{},
		Provenance: prov,
	})
	if *infraPath != "" {
		data, err := os.ReadFile(*infraPath)
		if err != nil {
			log.Fatalf("matrixd: %v", err)
		}
		desc, err := infra.Parse(data)
		if err != nil {
			log.Fatalf("matrixd: %v", err)
		}
		if _, err := desc.Apply(grid); err != nil {
			log.Fatalf("matrixd: %v", err)
		}
		log.Printf("matrixd: applied infrastructure %q (%d domains)", desc.Name, len(desc.Domains))
	} else {
		for _, r := range []*vfs.Resource{
			vfs.New("local-disk", "local", vfs.Disk, 0),
			vfs.New("local-archive", "local", vfs.Archive, 0),
		} {
			if err := grid.RegisterResource(r); err != nil {
				log.Fatalf("matrixd: %v", err)
			}
		}
		log.Printf("matrixd: using demo topology (local-disk, local-archive)")
	}
	if err := grid.CreateCollectionAll(*admin, "/grid"); err != nil {
		log.Fatalf("matrixd: %v", err)
	}
	if *openWrite {
		// Demo convenience: a real deployment manages ACLs explicitly.
		if err := grid.Namespace().SetPermission("/grid", "*", namespace.PermWrite); err != nil {
			log.Fatalf("matrixd: %v", err)
		}
	}

	var injector *fault.Injector
	if *faultPath != "" {
		data, err := os.ReadFile(*faultPath)
		if err != nil {
			log.Fatalf("matrixd: %v", err)
		}
		plan, err := fault.ParsePlan(data)
		if err != nil {
			log.Fatalf("matrixd: %v", err)
		}
		injector, err = fault.NewInjector(grid.Clock(), *plan)
		if err != nil {
			log.Fatalf("matrixd: %v", err)
		}
		grid.SetFault(injector)
		log.Printf("matrixd: fault plan %s armed (%d events, seed %d)", *faultPath, len(plan.Events), plan.Seed)
	}

	cfg := matrix.Config{}
	if *name != "" {
		cfg.IDPrefix = *name + ":"
	}
	engine := matrix.NewEngineConfig(grid, cfg)

	if *journalPath != "" {
		if *storeDir != "" {
			// The store's snapshot+tail recovery resumes crash-abandoned
			// flows under their original ids; replaying the flat journal
			// too would re-run each of them a second time under a fresh
			// id. The journal stays attached for appends only.
			log.Printf("matrixd: journal %s attached for appends; -store-dir handles recovery", *journalPath)
		} else {
			recovered, err := engine.RecoverFromJournal(*journalPath)
			if err != nil && !errors.Is(err, dgferr.ErrNotFound) {
				log.Fatalf("matrixd: %v", err)
			}
			for _, ex := range recovered {
				log.Printf("matrixd: recovered execution %s from journal", ex.ID)
			}
		}
		journal, err := matrix.OpenJournalOptions(*journalPath, matrix.JournalOptions{Binary: binaryCodec})
		if err != nil {
			log.Fatalf("matrixd: %v", err)
		}
		defer journal.Close()
		engine.SetJournal(journal)
	}

	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{Obs: grid.Obs(), Binary: binaryCodec})
		if err != nil {
			log.Fatalf("matrixd: store: %v", err)
		}
		defer st.Close()
		engine.SetStore(st)
		resumed, err := engine.RecoverFromStore()
		if err != nil {
			log.Fatalf("matrixd: store recovery: %v", err)
		}
		stats := st.Stats()
		log.Printf("matrixd: store %s: %d segment(s), %d record(s) replayed, %d resumed, %d passivated",
			*storeDir, stats.Segments, stats.ReplayRecords, len(resumed), stats.Passivated)
		if *snapshotEvery > 0 || *passivateIdle > 0 {
			interval := *snapshotEvery
			if interval <= 0 {
				interval = *passivateIdle
			}
			stop := make(chan struct{})
			defer close(stop)
			go func() {
				tick := time.NewTicker(interval)
				defer tick.Stop()
				for {
					select {
					case <-stop:
						return
					case <-tick.C:
						if *snapshotEvery > 0 {
							engine.SnapshotAll()
						}
						if *passivateIdle > 0 {
							engine.PassivateIdle(*passivateIdle)
						}
					}
				}
			}()
		}
	} else if *snapshotEvery != 30*time.Second || *passivateIdle > 0 {
		log.Printf("matrixd: -snapshot-every/-passivate-idle have no effect without -store-dir")
	}

	var vcat *vdata.Catalog
	if *vdataDir != "" || *vdataOn {
		var err error
		vcat, err = vdata.Open(*vdataDir, grid.Obs())
		if err != nil {
			log.Fatalf("matrixd: vdata: %v", err)
		}
		defer vcat.Close()
		if *vdataDir != "" {
			log.Printf("matrixd: virtual-data catalog %s (%d derivation(s) replayed)", *vdataDir, vcat.Len())
		} else {
			log.Printf("matrixd: virtual-data catalog enabled (memory-only)")
		}
	}

	if *metricsAddr != "" {
		msrv, maddr, err := obs.Serve(*metricsAddr, grid.Obs())
		if err != nil {
			log.Fatalf("matrixd: metrics: %v", err)
		}
		defer msrv.Close()
		fmt.Printf("matrixd: serving metrics on http://%s/metrics (pprof on /debug/pprof/)\n", maddr)
	}

	if *triggerPath != "" {
		data, err := os.ReadFile(*triggerPath)
		if err != nil {
			log.Fatalf("matrixd: %v", err)
		}
		doc, err := trigger.ParseDefinitions(data)
		if err != nil {
			log.Fatalf("matrixd: %v", err)
		}
		triggers := trigger.NewManager(grid, engine, 4, 4096)
		defer triggers.Close()
		names, err := triggers.DefineAll(doc)
		if err != nil {
			log.Fatalf("matrixd: %v", err)
		}
		log.Printf("matrixd: installed %d trigger(s): %v", len(names), names)
	}

	srvCfg := wire.ServerConfig{
		MaxInflight:  *maxInflight,
		MaxUserQueue: *maxUserQueue,
		SerialOnly:   *serialOnly,
	}
	var tAuth *tenant.Authority
	var tReg *tenant.Registry
	tRequire := *tenantRequire
	if *tenantAuth != "" {
		secret, err := tenant.LoadSecret(*tenantAuth)
		if err != nil {
			log.Fatalf("matrixd: %v", err)
		}
		if tAuth, err = tenant.NewAuthority(secret); err != nil {
			log.Fatalf("matrixd: %v", err)
		}
	}
	if *tenantConf != "" {
		tc, err := tenant.LoadConfig(*tenantConf)
		if err != nil {
			log.Fatalf("matrixd: %v", err)
		}
		tReg = tc.Build(grid.Obs())
		if tc.Require {
			tRequire = true
		}
		log.Printf("matrixd: tenancy enabled (%d registered tenant(s))", tReg.Len())
	}
	if tRequire && tAuth == nil {
		log.Fatal("matrixd: -tenant-require needs -tenant-auth")
	}
	if tAuth != nil && tReg == nil {
		// Auth without quotas: identities are verified and accounted but
		// every tenant is unlimited.
		tReg = tenant.NewRegistry(tenant.Quota{}, grid.Obs())
	}
	var bound string
	var closeFn func()
	if *lookup != "" {
		if *name == "" {
			log.Fatal("matrixd: -lookup requires -name")
		}
		peer := wire.NewPeerConfig(*name, engine, srvCfg)
		if tAuth != nil || tReg != nil {
			peer.Server().SetTenancy(tAuth, tReg, tRequire)
		}
		if *lookupToken != "" {
			tok, err := tenant.LoadSecret(*lookupToken)
			if err != nil {
				log.Fatalf("matrixd: %v", err)
			}
			peer.SetLookupToken(string(tok))
		}
		if vcat != nil {
			peer.EnableVdata(vcat)
			if *vdataToken != "" {
				tok, err := tenant.LoadSecret(*vdataToken)
				if err != nil {
					log.Fatalf("matrixd: %v", err)
				}
				peer.SetVdataToken(string(tok))
			}
			log.Printf("matrixd: vdata fleet reuse enabled (announcing derivation keys to %s)", *lookup)
		} else if *vdataToken != "" {
			log.Printf("matrixd: -vdata-token has no effect without -vdata/-vdata-dir")
		}
		if *shards > 0 {
			mgr := shard.NewManager(shard.Config{
				Self:   *name,
				Shards: *shards,
				Obs:    grid.Obs(),
				Resident: func(execID string) bool {
					_, ok := engine.Execution(execID)
					return ok
				},
			})
			peer.EnableSharding(mgr)
			log.Printf("matrixd: sharded ownership enabled (%d shards)", *shards)
		}
		if *replFollowers > 0 {
			if *storeDir == "" {
				log.Fatal("matrixd: -repl-followers requires -store-dir")
			}
			mode, err := replica.ParseAckMode(*replAck)
			if err != nil {
				log.Fatalf("matrixd: %v", err)
			}
			dir := *replDir
			if dir == "" {
				dir = *storeDir + ".replica"
			}
			if err := peer.EnableReplication(wire.ReplicationConfig{
				Followers: *replFollowers,
				Mode:      mode,
				Dir:       dir,
				Binary:    binaryCodec,
			}); err != nil {
				log.Fatalf("matrixd: %v", err)
			}
			log.Printf("matrixd: replication enabled (%d follower(s), %s ack) into %s", *replFollowers, mode, dir)
		}
		var err error
		bound, err = peer.Start(*addr, *lookup)
		if err != nil {
			log.Fatalf("matrixd: %v", err)
		}
		policy, err := scheduler.NewPolicy(*placement)
		if err != nil {
			log.Fatalf("matrixd: %v", err)
		}
		fed := federation.New(peer, federation.Config{
			Policy:            policy,
			HeartbeatInterval: *heartbeat,
		})
		fed.Start()
		closeFn = func() {
			fed.Close() // drain in-flight delegations first
			peer.Close()
		}
		log.Printf("matrixd: peer %q registered with %s (placement %s)", *name, *lookup, policy.Name())
	} else {
		srv := wire.NewServerConfig(engine, srvCfg)
		if tAuth != nil || tReg != nil {
			srv.SetTenancy(tAuth, tReg, tRequire)
		}
		if vcat != nil {
			// No fleet without -lookup: the catalog still memoizes local
			// pure steps and answers the wire vdata verb.
			engine.SetVdata(vcat)
			if *vdataToken != "" {
				log.Printf("matrixd: -vdata-token has no effect without -lookup")
			}
		}
		if injector != nil {
			target := *name
			if target == "" {
				target = "matrixd"
			}
			srv.SetFault(injector, target)
		}
		var err error
		bound, err = srv.Listen(*addr)
		if err != nil {
			log.Fatalf("matrixd: %v", err)
		}
		if *replFollowers > 0 {
			log.Printf("matrixd: -repl-followers has no effect without -lookup")
		}
		closeFn = srv.Close
	}
	fmt.Printf("matrixd: serving DGL on %s\n", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("matrixd: shutting down")
	closeFn()
}
