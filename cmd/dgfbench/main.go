// Command dgfbench regenerates the reproduction's experiments (E1–E18):
// the paper's four figures as executable artifacts plus the quantified
// claims and scenarios. Output is the set of tables recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	dgfbench              # run everything at full scale
//	dgfbench -exp E6,E7   # run a subset
//	dgfbench -small       # quick pass (CI-sized)
//	dgfbench -metrics=false   # suppress the engine metrics snapshot
//	dgfbench -load -o BENCH_wire.json    # wire-protocol load experiment
//	dgfbench -store -o BENCH_store.json  # flow-state store experiment
//	dgfbench -shard -o BENCH_shard.json  # sharded-ownership experiment
//	dgfbench -repl -o BENCH_repl.json    # replicated-store experiment
//	dgfbench -tenant -o BENCH_tenant.json  # multi-tenant experiment
//	dgfbench -vdata -o BENCH_vdata.json    # virtual-data experiment
//
// With -load the experiments are skipped and the wire load harness
// (internal/loadgen) runs instead: serial vs pipelined vs batch
// throughput plus an open-loop latency distribution, written as the
// BENCH_wire.json artifact the CI bench job gates on (docs/BENCH.md).
//
// With -store the flow-state store experiment (E14) runs alone and its
// machine-readable report is written as the BENCH_store.json artifact
// the same CI job gates on: restart replay reduction and resident
// executions for a large population of mostly-idle long-run flows
// (docs/STORE.md).
//
// With -shard the sharded-ownership experiment (E15) runs alone and its
// machine-readable report is written as the BENCH_shard.json artifact
// the same CI job gates on: any-peer submit scaling at 1/2/4 peers vs a
// single-owner funnel, and kill-one-owner lease failover
// (docs/FEDERATION.md, "Sharded ownership").
//
// With -repl the replicated-store experiment (E16) runs alone and its
// machine-readable report is written as the BENCH_repl.json artifact
// the replication-chaos CI job gates on: quorum-ack submit overhead and
// kill-owner-with-disk-loss standby takeover (docs/REPLICATION.md).
//
// With -tenant the multi-tenant experiment (E17) runs alone and its
// machine-readable report is written as the BENCH_tenant.json artifact
// the tenancy CI job gates on: registry footprint at 100k+ tenants,
// weighted-fair isolation of 1x tenants against a 10x aggressor, and
// quota-enforcement fidelity (docs/TENANCY.md).
//
// With -vdata the virtual-data experiment (E18) runs alone and its
// machine-readable report is written as the BENCH_vdata.json artifact
// the vdata CI job gates on: warm-pass elision against a durable
// derivation catalog, restart replay, and cross-peer reuse over wire
// 1.8 (docs/VDATA.md).
//
// After the experiment tables, dgfbench emits the process-wide engine
// metrics snapshot (docs/METRICS.md) as JSON, so BENCH_*.json entries
// can carry engine-level counters (flows run, steps executed, bytes
// tiered, placements evaluated) alongside the wall-clock numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"datagridflow/internal/experiments"
	"datagridflow/internal/loadgen"
	"datagridflow/internal/obs"
)

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment ids (E1..E18) or 'all'")
	small := flag.Bool("small", false, "run at small (CI) scale instead of full scale")
	metrics := flag.Bool("metrics", true, "emit the engine metrics snapshot (JSON) after the experiment tables")
	load := flag.Bool("load", false, "run the wire-protocol load experiment instead of E1..E18")
	storeBench := flag.Bool("store", false, "run the flow-state store experiment (E14) and write its JSON report")
	shardBench := flag.Bool("shard", false, "run the sharded-ownership experiment (E15) and write its JSON report")
	replBench := flag.Bool("repl", false, "run the replicated-store experiment (E16) and write its JSON report")
	tenantBench := flag.Bool("tenant", false, "run the multi-tenant experiment (E17) and write its JSON report")
	vdataBench := flag.Bool("vdata", false, "run the virtual-data experiment (E18) and write its JSON report")
	fedPeers := flag.Int("fed-peers", 0, "with -load: add a federated phase over this many peers (0 skips; docs/FEDERATION.md)")
	shardPeers := flag.Int("shard-peers", 0, "with -load: add a sharded any-peer phase over this many peers (0 skips; docs/FEDERATION.md)")
	out := flag.String("o", "", "with -load/-store/-shard/-repl/-tenant/-vdata: write the report JSON to this file (default stdout only)")
	flag.Parse()

	if *load {
		runLoad(*small, *fedPeers, *shardPeers, *out)
		return
	}
	if *storeBench {
		runStore(*small, *out)
		return
	}
	if *shardBench {
		runShard(*small, *out)
		return
	}
	if *replBench {
		runRepl(*small, *out)
		return
	}
	if *tenantBench {
		runTenant(*small, *out)
		return
	}
	if *vdataBench {
		runVdata(*small, *out)
		return
	}

	scale := experiments.Full
	if *small {
		scale = experiments.Small
	}
	want := map[string]bool{}
	if *expFlag != "all" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	failed := 0
	for _, exp := range experiments.All() {
		if len(want) > 0 && !want[exp.ID] {
			continue
		}
		t0 := time.Now()
		report, err := exp.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", exp.ID, err)
			failed++
			continue
		}
		fmt.Println(report.String())
		fmt.Printf("(%s completed in %v)\n\n", exp.ID, time.Since(t0).Round(time.Millisecond))
	}
	if *metrics {
		// Experiment grids emit into obs.Default(), so this snapshot
		// aggregates engine counters across every experiment just run.
		data, err := json.Marshal(obs.Default().Snapshot())
		if err == nil {
			fmt.Printf("== engine metrics snapshot (docs/METRICS.md) ==\n%s\n", data)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// runLoad executes the wire load harness and writes the report.
func runLoad(small bool, fedPeers, shardPeers int, out string) {
	opts := loadgen.Defaults()
	if small {
		opts = loadgen.SmallDefaults()
	}
	opts.FederatedPeers = fedPeers
	opts.ShardedPeers = shardPeers
	t0 := time.Now()
	rep, err := loadgen.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgfbench: load: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep.String())
	fmt.Printf("(load completed in %v)\n", time.Since(t0).Round(time.Millisecond))
	writeReport("load", rep, out)
}

// writeReport marshals a benchmark report and writes it to out (stdout
// when out is empty).
func writeReport(mode string, rep any, out string) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgfbench: %s: %v\n", mode, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if out == "" {
		fmt.Printf("%s", data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "dgfbench: %s: %v\n", mode, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
}

// runStore executes the flow-state store benchmark (E14) and writes the
// BENCH_store.json report.
func runStore(small bool, out string) {
	scale := experiments.Full
	if small {
		scale = experiments.Small
	}
	t0 := time.Now()
	rep, err := experiments.E14StoreBench(scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgfbench: store: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("flows %d: replay %d -> %d records (%.1fx), resident %d -> %d, journal scan %.1fms vs store open+recover %.1fms\n",
		rep.Flows, rep.JournalRecords, rep.StoreReplayRecords, rep.ReplayReduction,
		rep.Flows, rep.ResidentAfterSweep, rep.JournalScanMs, rep.StoreOpenMs+rep.RecoverMs)
	fmt.Printf("(store bench completed in %v)\n", time.Since(t0).Round(time.Millisecond))
	writeReport("store", rep, out)
}

// runShard executes the sharded-ownership benchmark (E15) and writes
// the BENCH_shard.json report.
func runShard(small bool, out string) {
	scale := experiments.Full
	if small {
		scale = experiments.Small
	}
	t0 := time.Now()
	rep, err := experiments.E15ShardBench(scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgfbench: shard: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("any-peer: %.0f/%.0f/%.0f flows/sec at 1/2/4 peers (%.2fx at 4), single-owner %.0f (%.2fx); failover takeover %.0fms, accepted %d, errors %d, replayed %d\n",
		rep.Rate1, rep.Rate2, rep.Rate4, rep.Speedup4,
		rep.RateSingleOwner, rep.SpeedupVsSingleOwner,
		rep.FailoverMs, rep.AcceptedDuringFailover, rep.FailoverSubmitErrors, rep.ReplayedFromGenesis)
	fmt.Printf("(shard bench completed in %v)\n", time.Since(t0).Round(time.Millisecond))
	writeReport("shard", rep, out)
}

// runRepl executes the replicated-store benchmark (E16) and writes the
// BENCH_repl.json report.
func runRepl(small bool, out string) {
	scale := experiments.Full
	if small {
		scale = experiments.Small
	}
	t0 := time.Now()
	rep, err := experiments.E16ReplBench(scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgfbench: repl: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("submit: %.0f bare vs %.0f quorum flows/sec (%.1f%% overhead); takeover %.0fms, acked %d, lost %d, promoted %d, snapshots %d\n",
		rep.RatePlain, rep.RateQuorum, rep.QuorumOverheadFrac*100,
		rep.TakeoverMs, rep.AckedLiveFlows, rep.LostFlows, rep.PromotedFlows, rep.SnapshotsShipped)
	fmt.Printf("(repl bench completed in %v)\n", time.Since(t0).Round(time.Millisecond))
	writeReport("repl", rep, out)
}

// runTenant executes the multi-tenant benchmark (E17) and writes the
// BENCH_tenant.json report.
func runTenant(small bool, out string) {
	scale := experiments.Full
	if small {
		scale = experiments.Small
	}
	t0 := time.Now()
	rep, err := experiments.E17TenantBench(scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgfbench: tenant: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep.String())
	fmt.Printf("(tenant bench completed in %v)\n", time.Since(t0).Round(time.Millisecond))
	writeReport("tenant", rep, out)
}

// runVdata executes the virtual-data benchmark (E18) and writes the
// BENCH_vdata.json report.
func runVdata(small bool, out string) {
	scale := experiments.Full
	if small {
		scale = experiments.Small
	}
	t0 := time.Now()
	rep, err := experiments.E18VdataBench(scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgfbench: vdata: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep.String())
	fmt.Printf("(vdata bench completed in %v)\n", time.Since(t0).Round(time.Millisecond))
	writeReport("vdata", rep, out)
}
