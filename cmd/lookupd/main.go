// Command lookupd runs a lookup server for the peer-to-peer
// datagridflow network: matrix peers register their name and address
// here and resolve one another when routing status queries ("Multiple
// DfMS servers can form a peer-to-peer datagridflow network with one or
// more lookup servers").
//
// Usage:
//
//	lookupd -addr :7400
//	lookupd -addr :7400 -ttl 30s              # evict silent peers sooner
//	lookupd -addr :7400 -shards 64            # shard-lease authority (sharded networks)
//	lookupd -addr :7400 -metrics-addr :7480   # JSON metrics + pprof
//	lookupd -addr :7400 -tenant-auth key.txt  # token-gate peer registration
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"datagridflow/internal/obs"
	"datagridflow/internal/tenant"
	"datagridflow/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7400", "listen address")
	ttl := flag.Duration("ttl", wire.DefaultLookupTTL, "liveness TTL: peers silent for longer are evicted (0 disables)")
	shards := flag.Int("shards", 0, "shard count of a sharded network: the registry becomes the lease authority (0 disables; must match matrixd -shards)")
	metricsAddr := flag.String("metrics-addr", "", "serve JSON metrics and pprof on this address (empty disables)")
	tenantAuth := flag.String("tenant-auth", "", "shared-secret key file: require a valid tenant token on register/heartbeat/lease operations (docs/TENANCY.md)")
	flag.Parse()

	srv := wire.NewLookupServer()
	srv.SetTTL(*ttl)
	if *tenantAuth != "" {
		secret, err := tenant.LoadSecret(*tenantAuth)
		if err != nil {
			log.Fatalf("lookupd: %v", err)
		}
		auth, err := tenant.NewAuthority(secret)
		if err != nil {
			log.Fatalf("lookupd: %v", err)
		}
		srv.SetAuth(auth)
		fmt.Printf("lookupd: registration token-gated (matrixd -lookup-token)\n")
	}
	if *shards > 0 {
		srv.SetShards(*shards)
		fmt.Printf("lookupd: shard-lease authority for %d shards\n", *shards)
	}
	if *metricsAddr != "" {
		msrv, maddr, err := obs.Serve(*metricsAddr, obs.Default())
		if err != nil {
			log.Fatalf("lookupd: metrics: %v", err)
		}
		defer msrv.Close()
		fmt.Printf("lookupd: serving metrics on http://%s/metrics\n", maddr)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("lookupd: %v", err)
	}
	fmt.Printf("lookupd: serving peer registry on %s\n", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("lookupd: shutting down")
	srv.Close()
}
