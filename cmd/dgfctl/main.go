// Command dgfctl is the client CLI for a matrix (DfMS) server: it
// submits DGL documents, polls execution status at any granularity, and
// drives the long-run controls (pause, resume, cancel, restart).
//
// Usage:
//
//	dgfctl -addr host:7401 submit flow.xml        # synchronous
//	dgfctl -addr host:7401 submit -async flow.xml # returns an id
//	dgfctl -addr host:7401 status <id> [-detail]
//	dgfctl -addr host:7401 pause|resume|cancel <id>
//	dgfctl -addr host:7401 restart <id>
//	dgfctl -addr host:7401 metrics
//	dgfctl -addr host:7401 store                  # flow-state store shape
//	dgfctl -addr host:7401 compact                # compact the store
//	dgfctl -lookup host:7400 peers                # federation roster
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"datagridflow/internal/dgl"
	"datagridflow/internal/obs"
	"datagridflow/internal/wire"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: dgfctl [-addr host:port] [-user name] <command> [args]

commands:
  submit [-async] <file.xml>   submit a DGL dataGridRequest document
  status [-detail] <id>        query an execution, flow or step id
  pause <id>                   suspend a running execution
  resume <id>                  continue a paused execution
  cancel <id>                  stop an execution
  restart <id>                 re-run a failed execution, skipping
                               already-succeeded steps
  list                         list the server's executions
  metrics                      fetch the server's metrics snapshot
                               (docs/METRICS.md) over the control
                               extension
  store                        show the server's flow-state store:
                               segments, record counts, snapshot lag,
                               passivated vs resident executions
  compact                      compact the server's store segments into
                               one snapshot segment and report the run
  peers                        list live peers from the -lookup server
                               with liveness age and reported load
  render [-dot] <file.xml>     render a DGL document as a tree (or DOT)
`)
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7401", "matrix server address")
	lookupAddr := flag.String("lookup", "127.0.0.1:7400", "lookup server address (peers command)")
	user := flag.String("user", "admin", "grid user for status queries")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	// render is purely local: no server connection needed.
	if args[0] == "render" {
		dot := false
		rest := args[1:]
		if len(rest) > 0 && rest[0] == "-dot" {
			dot = true
			rest = rest[1:]
		}
		if len(rest) != 1 {
			usage()
		}
		data, err := os.ReadFile(rest[0])
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		req, err := dgl.ParseRequest(data)
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		if req.Flow == nil {
			log.Fatal("dgfctl: document has no flow to render")
		}
		if dot {
			fmt.Print(dgl.Dot(req.Flow))
		} else {
			fmt.Print(dgl.Tree(req.Flow))
		}
		return
	}

	// peers talks to the lookup registry, not a matrix server.
	if args[0] == "peers" {
		lc, err := wire.DialLookup(*lookupAddr)
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		defer lc.Close()
		infos, err := lc.ListInfos()
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		if len(infos) == 0 {
			fmt.Println("(no live peers)")
			return
		}
		fmt.Printf("%-16s %-22s %8s %9s %7s %8s %8s\n",
			"PEER", "ADDRESS", "AGE", "INFLIGHT", "QUEUED", "RUNNING", "CAPACITY")
		for _, p := range infos {
			fmt.Printf("%-16s %-22s %7.1fs %9d %7d %8d %8d\n",
				p.Name, p.Addr, p.AgeSeconds,
				p.Load.Inflight, p.Load.Queued, p.Load.Running, p.Load.Capacity)
		}
		return
	}

	client, err := wire.Dial(*addr)
	if err != nil {
		log.Fatalf("dgfctl: %v", err)
	}
	defer client.Close()

	switch args[0] {
	case "submit":
		async := false
		rest := args[1:]
		if len(rest) > 0 && rest[0] == "-async" {
			async = true
			rest = rest[1:]
		}
		if len(rest) != 1 {
			usage()
		}
		data, err := os.ReadFile(rest[0])
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		req, err := dgl.DecodeRequest(data)
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		if async {
			req.Async = true
		}
		resp, err := client.Submit(req)
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		if resp.Error != "" {
			log.Fatalf("dgfctl: server: %s", resp.Error)
		}
		if resp.Ack != nil {
			fmt.Printf("accepted: id=%s status=%s\n", resp.Ack.ID, resp.Ack.Status)
			return
		}
		printStatus(resp.Status, 0)
	case "status":
		detail := false
		rest := args[1:]
		if len(rest) > 0 && rest[0] == "-detail" {
			detail = true
			rest = rest[1:]
		}
		if len(rest) != 1 {
			usage()
		}
		st, err := client.Status(*user, rest[0], detail)
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		printStatus(st, 0)
	case "pause", "resume", "cancel":
		if len(args) != 2 {
			usage()
		}
		var err error
		switch args[0] {
		case "pause":
			err = client.Pause(args[1])
		case "resume":
			err = client.Resume(args[1])
		case "cancel":
			err = client.Cancel(args[1])
		}
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		fmt.Printf("%s: ok\n", args[0])
	case "restart":
		if len(args) != 2 {
			usage()
		}
		id, err := client.Restart(args[1])
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		fmt.Printf("restarted as %s\n", id)
	case "list":
		rows, err := client.List()
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		if len(rows) == 0 {
			fmt.Println("(no executions)")
			return
		}
		for _, row := range rows {
			fmt.Printf("%-24s %-20s %-10s %s\n", row.ID, row.Name, row.State, row.User)
		}
	case "metrics":
		snap, err := client.Metrics()
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		printMetrics(snap)
	case "store":
		info, err := client.StoreStats()
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		printStore(info)
	case "compact":
		info, err := client.Compact()
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		if c := info.Compaction; c != nil {
			fmt.Printf("compacted: %d segment(s) -> 1, %d record(s) -> %d (%d dropped)\n",
				c.SegmentsBefore, c.RecordsBefore, c.RecordsKept, c.RecordsDropped)
		}
		printStore(info)
	default:
		usage()
	}
}

// printStore renders the store summary the "store"/"compact" control
// verbs return.
func printStore(info *wire.StoreInfo) {
	fmt.Printf("segments:       %d\n", info.Segments)
	fmt.Printf("records:        %d\n", info.Records)
	fmt.Printf("replay records: %d (last open)\n", info.ReplayRecords)
	fmt.Printf("live:           %d\n", info.Live)
	fmt.Printf("passivated:     %d\n", info.Passivated)
	fmt.Printf("resident:       %d\n", info.Resident)
	fmt.Printf("snapshot lag:   %d record(s)\n", info.SnapshotLag)
	if info.Failed != "" {
		fmt.Printf("FAILED:         %s (store rejects appends; restart matrixd)\n", info.Failed)
	}
}

// printMetrics renders a snapshot as aligned name{labels} value rows.
func printMetrics(snap *obs.Snapshot) {
	fmt.Printf("at %s\n", snap.At.UTC().Format(time.RFC3339))
	if len(snap.Counters) > 0 {
		fmt.Println("\ncounters:")
		for _, p := range snap.Counters {
			fmt.Printf("  %-48s %d\n", series(p.Name, p.Labels), p.Value)
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Println("\ngauges:")
		for _, p := range snap.Gauges {
			fmt.Printf("  %-48s %d\n", series(p.Name, p.Labels), p.Value)
		}
	}
	if len(snap.Histograms) > 0 {
		fmt.Println("\nhistograms:")
		for _, h := range snap.Histograms {
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			fmt.Printf("  %-48s count=%d mean=%.6g min=%.6g max=%.6g\n",
				series(h.Name, h.Labels), h.Count, mean, h.Min, h.Max)
		}
	}
}

func series(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+labels[k])
	}
	return name + "{" + strings.Join(parts, ",") + "}"
}

func printStatus(st *dgl.FlowStatus, depth int) {
	if st == nil {
		fmt.Println("(no status)")
		return
	}
	fmt.Printf("%s%s\n", strings.Repeat("  ", depth), st.Summary())
	for i := range st.Children {
		printStatus(&st.Children[i], depth+1)
	}
}
