// Command dgfctl is the client CLI for a matrix (DfMS) server: it
// submits DGL documents, polls execution status at any granularity, and
// drives the long-run controls (pause, resume, cancel, restart).
//
// Usage:
//
//	dgfctl -addr host:7401 submit flow.xml        # synchronous
//	dgfctl -addr host:7401 submit -async flow.xml # returns an id
//	dgfctl -addr host:7401 status <id> [-detail]
//	dgfctl -addr host:7401 pause|resume|cancel <id>
//	dgfctl -addr host:7401 restart <id>
//	dgfctl -addr host:7401 metrics
//	dgfctl -addr host:7401 store                  # flow-state store shape
//	dgfctl -addr host:7401 compact                # compact the store
//	dgfctl -addr host:7401 vdata [stats]          # derivation catalog
//	dgfctl -lookup host:7400 peers                # federation roster
//	dgfctl help submit                            # per-verb detail
//
// `dgfctl help -markdown` emits the verb table embedded in README.md's
// CLI section; the two are kept in sync by regenerating the section
// from that output.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"datagridflow/internal/dgferr"

	"datagridflow/internal/dgl"
	"datagridflow/internal/obs"
	"datagridflow/internal/tenant"
	"datagridflow/internal/vdata"
	"datagridflow/internal/wire"
)

// A verb is one dgfctl subcommand. The table is the single source of
// truth for the usage screen, `dgfctl help <verb>`, and (via
// `dgfctl help -markdown`) the CLI section of README.md.
type verb struct {
	name     string
	synopsis string // argument synopsis, e.g. "submit [-async] <file.xml>"
	summary  string // one line for the usage listing and the README table
	detail   string // paragraph(s) for `dgfctl help <verb>`
}

var verbs = []verb{
	{
		name:     "submit",
		synopsis: "submit [-async] [-local] <file.xml>",
		summary:  "submit a DGL dataGridRequest document",
		detail: `Reads and validates the document, then submits it as a kind-1 wire
frame. A synchronous submit blocks until the flow completes and prints
its status tree; -async (or async="true" in the document) returns an
acknowledgement id immediately — poll it with "status". On a sharded
network any peer accepts the submit and routes it to the shard owner
(docs/FEDERATION.md); -local pins the flow to the connected server
instead. On a 1.4+ server the payload travels in the binary codec
(docs/CODEC.md); against older servers it falls back to XML
transparently.`,
	},
	{
		name:     "status",
		synopsis: "status [-detail] <id>",
		summary:  "query an execution, flow or step id",
		detail: `The id may name a whole execution, a subflow, or a single step —
status is resolved at any granularity. -detail expands the full tree
with per-step state, timing and errors. Querying a passivated
execution resurrects it transparently from the flow-state store; on a
peer network the query is routed to the owning peer, and on a sharded
network an id the server cannot resolve is auto-followed: dgfctl asks
"owner", dials the owning peer, and retries there.`,
	},
	{
		name:     "pause",
		synopsis: "pause <id>",
		summary:  "suspend a running execution",
		detail: `The execution stops starting new steps; steps already in flight run
to completion. The paused state survives restarts and passivation.`,
	},
	{
		name:     "resume",
		synopsis: "resume <id>",
		summary:  "continue a paused execution",
		detail: `Clears the paused flag and lets the execution proceed from the step
it was about to run. Resuming a passivated execution resurrects it
first.`,
	},
	{
		name:     "cancel",
		synopsis: "cancel <id>",
		summary:  "stop an execution",
		detail: `The execution unwinds through its cancellation path and ends in the
cancelled state. Cancellation is terminal — use "restart" to re-run.`,
	},
	{
		name:     "restart",
		synopsis: "restart <id>",
		summary:  "re-run a failed execution, skipping succeeded steps",
		detail: `Re-submits the original document under a fresh id, seeding the
checkpoint skip-set from the failed run so already-succeeded steps are
not repeated. Prints the new id.`,
	},
	{
		name:     "list",
		synopsis: "list",
		summary:  "list the server's executions",
		detail:   `One row per tracked execution: id, flow name, state, and user.`,
	},
	{
		name:     "metrics",
		synopsis: "metrics",
		summary:  "fetch the server's metrics snapshot",
		detail: `Fetches the observability snapshot (docs/METRICS.md) over the wire
control extension and prints counters, gauges and histogram summaries
as aligned name{labels} rows.`,
	},
	{
		name:     "store",
		synopsis: "store",
		summary:  "show the server's flow-state store",
		detail: `Prints the store's shape (docs/STORE.md): segment and record counts,
last-open replay cost, live vs passivated vs resident executions, and
the snapshot lag — how many records a crash right now would replay on
top of snapshots. Reports a poisoned store's sticky failure.`,
	},
	{
		name:     "compact",
		synopsis: "compact",
		summary:  "compact the store segments, then report",
		detail: `Rewrites the store as one merged snapshot per live execution
(docs/STORE.md), prints the compaction summary (segments and records
before/after), then the same report as "store".`,
	},
	{
		name:     "repl",
		synopsis: "repl",
		summary:  "show the server's replication role",
		detail: `Asks a replicating server (wire 1.6, docs/REPLICATION.md) for its
replication role: the ack mode, the store's replication sequence, each
follower's last acknowledged sequence (and so its lag), and every
source the server holds a replica for — with the replica's cursor,
live-flow count, and whether it has been promoted after its owner
died.`,
	},
	{
		name:     "owner",
		synopsis: "owner <id>",
		summary:  "resolve which peer owns a flow or execution id",
		detail: `Asks a sharded server (wire 1.5, docs/FEDERATION.md) which peer owns
the given execution id or "user/flowName" routing key, printing the
owning peer, its address, the shard, and how it was resolved: tracked
(accepted on that peer), prefix (the id's "peer:" prefix), or ring
(consistent-hash placement of the routing key).`,
	},
	{
		name:     "tenants",
		synopsis: "tenants [limit]",
		summary:  "show the server's tenancy posture and top tenants",
		detail: `Asks a tenancy-aware server (wire 1.7, docs/TENANCY.md) whether
tenancy and token auth are enabled, how many tenants are registered,
and the most active tenants — weight, flows in flight, store bytes and
delegation slots per row. The optional limit bounds the rows returned
(server default 20).`,
	},
	{
		name:     "vdata",
		synopsis: "vdata [stats|lookup <key>|invalidate <key-or-output>]",
		summary:  "inspect or prune the virtual-data derivation catalog",
		detail: `Talks to a virtual-data-aware server (wire 1.8, docs/VDATA.md).
"stats" (the default) prints the catalog's shape: entry and tenant
counts, publish and invalidation totals, and whether it is durable.
"lookup" fetches one memoized derivation by its canonical key —
tenant-scoped, so the -user (or -token identity) must own the entry.
"invalidate" drops the derivation for a key or for every entry that
produced the given output path, forcing the next run to recompute;
it prints how many entries were removed.`,
	},
	{
		name:     "mint",
		synopsis: "mint <secret-file> <tenant> [ttl]",
		summary:  "mint a tenant bearer token (local, no server)",
		detail: `Purely local — no server connection. Signs a bearer token for the
tenant with the shared secret (docs/TENANCY.md), valid for ttl
(Go duration, default 1h), and prints it. Pass the token to other
verbs with -token, to matrixd with -lookup-token, or to the wire API
via Client.SetToken.`,
	},
	{
		name:     "peers",
		synopsis: "peers",
		summary:  "list live peers from the -lookup server",
		detail: `Talks to the lookup registry (-lookup, not -addr) and prints each
live peer's address, liveness age, and reported load: inflight,
queued, running, capacity (docs/FEDERATION.md).`,
	},
	{
		name:     "render",
		synopsis: "render [-dot] <file.xml>",
		summary:  "render a DGL document as a tree (or DOT)",
		detail: `Purely local — no server connection. Parses the document and prints
its flow as an indented tree, or with -dot as a Graphviz digraph.`,
	},
	{
		name:     "help",
		synopsis: "help [-markdown] [verb]",
		summary:  "show usage, per-verb detail, or the README table",
		detail: `Without arguments, the usage screen. With a verb name, that verb's
synopsis and detail. With -markdown, the verb table embedded in
README.md's CLI section — regenerate the section from this output
when verbs change; the CI docs job checks every verb is listed there.`,
	},
}

func findVerb(name string) *verb {
	for i := range verbs {
		if verbs[i].name == name {
			return &verbs[i]
		}
	}
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: dgfctl [-addr host:port] [-user name] <command> [args]\n\ncommands:\n")
	for _, v := range verbs {
		fmt.Fprintf(os.Stderr, "  %-28s %s\n", v.synopsis, v.summary)
	}
	fmt.Fprintf(os.Stderr, "\n\"dgfctl help <command>\" explains one command in detail.\n")
	os.Exit(2)
}

// verbUsage reports a bad invocation of one verb: its synopsis and
// detail, not the whole usage screen.
func verbUsage(name string) {
	v := findVerb(name)
	fmt.Fprintf(os.Stderr, "usage: dgfctl [-addr host:port] [-user name] %s\n\n%s\n", v.synopsis, v.detail)
	os.Exit(2)
}

// markdownTable renders the verb table as the GitHub-flavored markdown
// embedded in README.md's CLI section.
func markdownTable() string {
	var b strings.Builder
	b.WriteString("| verb | does |\n|---|---|\n")
	for _, v := range verbs {
		b.WriteString("| `" + v.synopsis + "` | " + v.summary + " |\n")
	}
	return b.String()
}

// extractOpt removes the first occurrence of opt from args, returning
// the remaining args and whether it was present, so a verb's option is
// accepted before or after its positional argument.
func extractOpt(args []string, opt string) ([]string, bool) {
	for i, a := range args {
		if a == opt {
			return append(append([]string{}, args[:i]...), args[i+1:]...), true
		}
	}
	return args, false
}

func runHelp(args []string) {
	args, markdown := extractOpt(args, "-markdown")
	if markdown {
		fmt.Print(markdownTable())
		return
	}
	if len(args) == 0 {
		usage()
	}
	v := findVerb(args[0])
	if v == nil {
		fmt.Fprintf(os.Stderr, "dgfctl: unknown command %q\n\n", args[0])
		usage()
	}
	fmt.Printf("usage: dgfctl [-addr host:port] [-user name] %s\n\n%s\n", v.synopsis, v.detail)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7401", "matrix server address")
	lookupAddr := flag.String("lookup", "127.0.0.1:7400", "lookup server address (peers command)")
	user := flag.String("user", "admin", "grid user for status queries")
	token := flag.String("token", "", "tenant bearer token offered on every request (mint one with \"dgfctl mint\"; docs/TENANCY.md)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	if args[0] == "help" {
		runHelp(args[1:])
		return
	}

	// render is purely local: no server connection needed.
	if args[0] == "render" {
		rest, dot := extractOpt(args[1:], "-dot")
		if len(rest) != 1 {
			verbUsage("render")
		}
		data, err := os.ReadFile(rest[0])
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		req, err := dgl.ParseRequest(data)
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		if req.Flow == nil {
			log.Fatal("dgfctl: document has no flow to render")
		}
		if dot {
			fmt.Print(dgl.Dot(req.Flow))
		} else {
			fmt.Print(dgl.Tree(req.Flow))
		}
		return
	}

	// mint is purely local: it signs a token with the shared secret.
	if args[0] == "mint" {
		if len(args) < 3 || len(args) > 4 {
			verbUsage("mint")
		}
		secret, err := tenant.LoadSecret(args[1])
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		auth, err := tenant.NewAuthority(secret)
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		ttl := time.Hour
		if len(args) == 4 {
			if ttl, err = time.ParseDuration(args[3]); err != nil {
				log.Fatalf("dgfctl: bad ttl: %v", err)
			}
		}
		tok, err := auth.Mint(args[2], ttl)
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		fmt.Println(tok)
		return
	}

	// peers talks to the lookup registry, not a matrix server.
	if args[0] == "peers" {
		if len(args) != 1 {
			verbUsage("peers")
		}
		lc, err := wire.DialLookup(*lookupAddr)
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		defer lc.Close()
		infos, err := lc.ListInfos()
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		if len(infos) == 0 {
			fmt.Println("(no live peers)")
			return
		}
		fmt.Printf("%-16s %-22s %8s %9s %7s %8s %8s\n",
			"PEER", "ADDRESS", "AGE", "INFLIGHT", "QUEUED", "RUNNING", "CAPACITY")
		for _, p := range infos {
			fmt.Printf("%-16s %-22s %7.1fs %9d %7d %8d %8d\n",
				p.Name, p.Addr, p.AgeSeconds,
				p.Load.Inflight, p.Load.Queued, p.Load.Running, p.Load.Capacity)
		}
		return
	}

	if findVerb(args[0]) == nil {
		fmt.Fprintf(os.Stderr, "dgfctl: unknown command %q\n\n", args[0])
		usage()
	}

	client, err := wire.Dial(*addr)
	if err != nil {
		log.Fatalf("dgfctl: %v", err)
	}
	defer client.Close()
	client.SetToken(*token)
	// Negotiate up-front: a 1.2+ server multiplexes, a 1.4 server
	// carries payloads in the binary codec (docs/CODEC.md), and a 1.7
	// server verifies the -token and pins the session identity. Any
	// failure just leaves the session on the serial/text baseline.
	_, _ = client.Hello()

	switch args[0] {
	case "submit":
		rest, async := extractOpt(args[1:], "-async")
		rest, local := extractOpt(rest, "-local")
		if len(rest) != 1 {
			verbUsage("submit")
		}
		data, err := os.ReadFile(rest[0])
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		req, err := dgl.DecodeRequest(data)
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		var opts []wire.SubmitOption
		if async {
			opts = append(opts, wire.WithAsync())
		}
		if local {
			opts = append(opts, wire.WithRoute(wire.RouteLocal))
		}
		res, err := client.Submit(context.Background(), req, opts...)
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		if serr := res.Err(); serr != nil {
			log.Fatalf("dgfctl: server: %v", serr)
		}
		if ack := res.Response.Ack; ack != nil && ack.Valid {
			fmt.Printf("accepted: id=%s status=%s\n", ack.ID, ack.Status)
			return
		}
		printStatus(res.Response.Status, 0)
	case "status":
		rest, detail := extractOpt(args[1:], "-detail")
		if len(rest) != 1 {
			verbUsage("status")
		}
		st, err := client.Status(*user, rest[0], detail)
		if err != nil && errors.Is(err, dgferr.ErrNotFound) {
			// Auto-follow on a sharded network: ask the server who owns
			// the id, dial the owner, and retry there.
			if info, oerr := client.Owner(rest[0]); oerr == nil && info.Addr != "" && info.Addr != *addr {
				if oc, derr := wire.Dial(info.Addr); derr == nil {
					defer oc.Close()
					_, _ = oc.Hello()
					if ost, serr := oc.Status(*user, rest[0], detail); serr == nil {
						fmt.Printf("(followed to owner %s at %s)\n", info.Peer, info.Addr)
						// Surface the owner's replication role: whether the
						// answer came from a replicating owner or from a
						// follower that promoted the flow after a failover.
						if ri, rerr := oc.Repl(); rerr == nil && ri != nil {
							fmt.Printf("(replication: %s)\n", replSummary(ri))
						}
						st, err = ost, nil
					}
				}
			}
		}
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		printStatus(st, 0)
	case "owner":
		if len(args) != 2 {
			verbUsage("owner")
		}
		info, err := client.Owner(args[1])
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		shardCol := fmt.Sprintf("%d", info.Shard)
		if info.Shard < 0 {
			shardCol = "-"
		}
		fmt.Printf("%-16s %-22s %-6s %s\n", "PEER", "ADDRESS", "SHARD", "SOURCE")
		fmt.Printf("%-16s %-22s %-6s %s\n", info.Peer, info.Addr, shardCol, info.Source)
	case "pause", "resume", "cancel":
		if len(args) != 2 {
			verbUsage(args[0])
		}
		var err error
		switch args[0] {
		case "pause":
			err = client.Pause(args[1])
		case "resume":
			err = client.Resume(args[1])
		case "cancel":
			err = client.Cancel(args[1])
		}
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		fmt.Printf("%s: ok\n", args[0])
	case "restart":
		if len(args) != 2 {
			verbUsage("restart")
		}
		id, err := client.Restart(args[1])
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		fmt.Printf("restarted as %s\n", id)
	case "list":
		rows, err := client.List()
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		if len(rows) == 0 {
			fmt.Println("(no executions)")
			return
		}
		for _, row := range rows {
			fmt.Printf("%-24s %-20s %-10s %s\n", row.ID, row.Name, row.State, row.User)
		}
	case "metrics":
		snap, err := client.Metrics()
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		printMetrics(snap)
	case "repl":
		info, err := client.Repl()
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		printRepl(info)
	case "tenants":
		limit := 0
		if len(args) == 2 {
			n, perr := strconv.Atoi(args[1])
			if perr != nil || n < 0 {
				verbUsage("tenants")
			}
			limit = n
		} else if len(args) > 2 {
			verbUsage("tenants")
		}
		info, err := client.Tenants(limit)
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		printTenants(info)
	case "vdata":
		sub := "stats"
		if len(args) > 1 {
			sub = args[1]
		}
		switch {
		case sub == "stats" && len(args) <= 2:
			info, err := client.VdataStats()
			if err != nil {
				log.Fatalf("dgfctl: %v", err)
			}
			printVdataStats(info)
		case sub == "lookup" && len(args) == 3:
			ent, ok, err := client.VdataLookup(*user, args[2])
			if err != nil {
				log.Fatalf("dgfctl: %v", err)
			}
			if !ok {
				fmt.Println("(no derivation for that key)")
				return
			}
			printVdataEntry(ent)
		case sub == "invalidate" && len(args) == 3:
			removed, err := client.VdataInvalidate(*user, args[2])
			if err != nil {
				log.Fatalf("dgfctl: %v", err)
			}
			fmt.Printf("invalidated: %d entry(ies) removed\n", removed)
		default:
			verbUsage("vdata")
		}
	case "store":
		info, err := client.StoreStats()
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		printStore(info)
	case "compact":
		info, err := client.Compact()
		if err != nil {
			log.Fatalf("dgfctl: %v", err)
		}
		if c := info.Compaction; c != nil {
			fmt.Printf("compacted: %d segment(s) -> 1, %d record(s) -> %d (%d dropped)\n",
				c.SegmentsBefore, c.RecordsBefore, c.RecordsKept, c.RecordsDropped)
		}
		printStore(info)
	}
}

// printRepl renders the replication role the "repl" control verb
// returns.
func printRepl(info *wire.ReplInfo) {
	fmt.Printf("mode: %s\n", info.Mode)
	fmt.Printf("seq:  %d (last durable record)\n", info.Seq)
	if len(info.Followers) == 0 {
		fmt.Println("followers: (none)")
	} else {
		fmt.Println("followers:")
		fmt.Printf("  %-16s %10s %10s\n", "PEER", "ACKED", "LAG")
		for _, f := range info.Followers {
			lag := int64(info.Seq) - int64(f.AckedSeq)
			if lag < 0 {
				lag = 0
			}
			fmt.Printf("  %-16s %10d %10d\n", f.Peer, f.AckedSeq, lag)
		}
	}
	if len(info.Sources) == 0 {
		fmt.Println("replicas held: (none)")
		return
	}
	fmt.Println("replicas held:")
	fmt.Printf("  %-16s %10s %6s %s\n", "SOURCE", "LASTSEQ", "LIVE", "PROMOTED")
	for _, s := range info.Sources {
		fmt.Printf("  %-16s %10d %6d %v\n", s.Source, s.LastSeq, s.Live, s.Promoted)
	}
}

func printTenants(info *wire.TenantsInfo) {
	onOff := func(b bool) string {
		if b {
			return "on"
		}
		return "off"
	}
	fmt.Printf("tenancy: %s  auth: %s  require: %s  registered: %d\n",
		onOff(info.Enabled), onOff(info.Auth), onOff(info.Require), info.Registered)
	if len(info.Tenants) == 0 {
		fmt.Println("(no active tenants)")
		return
	}
	fmt.Printf("%-24s %8s %8s %12s %8s\n", "TENANT", "WEIGHT", "FLOWS", "STOREBYTES", "DELEG")
	for _, t := range info.Tenants {
		fmt.Printf("%-24s %8.2f %8d %12d %8d\n",
			t.Name, t.Weight, t.Flows, t.StoreBytes, t.Delegations)
	}
}

// printVdataStats renders the catalog shape the "vdata stats"
// sub-operation returns.
func printVdataStats(info *wire.VdataInfo) {
	if !info.Enabled {
		fmt.Println("vdata: disabled (no derivation catalog attached)")
		return
	}
	durable := "memory-only"
	if info.Durable {
		durable = "durable"
	}
	fmt.Printf("vdata: enabled (%s)\n", durable)
	fmt.Printf("entries:       %d\n", info.Entries)
	fmt.Printf("tenants:       %d\n", info.Tenants)
	fmt.Printf("publishes:     %d\n", info.Publishes)
	fmt.Printf("invalidations: %d\n", info.Invalidations)
}

// printVdataEntry renders one memoized derivation from "vdata lookup".
func printVdataEntry(ent *vdata.Entry) {
	fmt.Printf("key:     %s\n", ent.Key)
	fmt.Printf("tenant:  %s\n", ent.Tenant)
	fmt.Printf("op:      %s\n", ent.Op)
	if len(ent.Inputs) > 0 {
		fmt.Printf("inputs:  %s\n", strings.Join(ent.Inputs, ", "))
	}
	if len(ent.Params) > 0 {
		keys := make([]string, 0, len(ent.Params))
		for k := range ent.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("param:   %s=%s\n", k, ent.Params[k])
		}
	}
	if len(ent.Outputs) > 0 {
		fmt.Printf("outputs: %s\n", strings.Join(ent.Outputs, ", "))
	}
	if ent.Result != "" {
		fmt.Printf("result:  %s\n", ent.Result)
	}
	if ent.Peer != "" {
		fmt.Printf("peer:    %s\n", ent.Peer)
	}
	if ent.Unix > 0 {
		fmt.Printf("derived: %s\n", time.Unix(ent.Unix, 0).UTC().Format(time.RFC3339))
	}
}

// replSummary renders a one-line replication role for status
// auto-follow output.
func replSummary(info *wire.ReplInfo) string {
	var b strings.Builder
	fmt.Fprintf(&b, "mode=%s seq=%d", info.Mode, info.Seq)
	for _, f := range info.Followers {
		fmt.Fprintf(&b, " follower=%s@%d", f.Peer, f.AckedSeq)
	}
	for _, s := range info.Sources {
		if s.Promoted {
			fmt.Fprintf(&b, " promoted=%s@%d", s.Source, s.LastSeq)
		}
	}
	return b.String()
}

// printStore renders the store summary the "store"/"compact" control
// verbs return.
func printStore(info *wire.StoreInfo) {
	fmt.Printf("segments:       %d\n", info.Segments)
	fmt.Printf("records:        %d\n", info.Records)
	fmt.Printf("replay records: %d (last open)\n", info.ReplayRecords)
	fmt.Printf("live:           %d\n", info.Live)
	fmt.Printf("passivated:     %d\n", info.Passivated)
	fmt.Printf("resident:       %d\n", info.Resident)
	fmt.Printf("snapshot lag:   %d record(s)\n", info.SnapshotLag)
	if info.Failed != "" {
		fmt.Printf("FAILED:         %s (store rejects appends; restart matrixd)\n", info.Failed)
	}
}

// printMetrics renders a snapshot as aligned name{labels} value rows.
func printMetrics(snap *obs.Snapshot) {
	fmt.Printf("at %s\n", snap.At.UTC().Format(time.RFC3339))
	if len(snap.Counters) > 0 {
		fmt.Println("\ncounters:")
		for _, p := range snap.Counters {
			fmt.Printf("  %-48s %d\n", series(p.Name, p.Labels), p.Value)
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Println("\ngauges:")
		for _, p := range snap.Gauges {
			fmt.Printf("  %-48s %d\n", series(p.Name, p.Labels), p.Value)
		}
	}
	if len(snap.Histograms) > 0 {
		fmt.Println("\nhistograms:")
		for _, h := range snap.Histograms {
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			fmt.Printf("  %-48s count=%d mean=%.6g min=%.6g max=%.6g\n",
				series(h.Name, h.Labels), h.Count, mean, h.Min, h.Max)
		}
	}
}

func series(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+labels[k])
	}
	return name + "{" + strings.Join(parts, ",") + "}"
}

func printStatus(st *dgl.FlowStatus, depth int) {
	if st == nil {
		fmt.Println("(no status)")
		return
	}
	fmt.Printf("%s%s\n", strings.Repeat("  ", depth), st.Summary())
	for i := range st.Children {
		printStatus(&st.Children[i], depth+1)
	}
}
