package datagridflow

// bench_test.go holds one testing.B benchmark per experiment (E1–E11).
// Each bench runs the same code path as `dgfbench -exp <id>` at Small
// scale, so `go test -bench=.` regenerates every figure/claim quickly
// and `cmd/dgfbench` (Full scale) produces the numbers recorded in
// EXPERIMENTS.md. Per-package micro-benchmarks live next to the code
// they measure.

import (
	"fmt"
	"testing"

	"datagridflow/internal/experiments"
)

func benchExperiment(b *testing.B, run func(experiments.Scale) (*experiments.Report, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := run(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkE1FlowRoundTrip(b *testing.B)    { benchExperiment(b, experiments.E1FlowSchema) }
func BenchmarkE2RequestRoundTrip(b *testing.B) { benchExperiment(b, experiments.E2RequestSchema) }
func BenchmarkE3ControlPatterns(b *testing.B)  { benchExperiment(b, experiments.E3ControlPatterns) }
func BenchmarkE4AsyncStatus(b *testing.B)      { benchExperiment(b, experiments.E4AsyncStatus) }
func BenchmarkE5Scalability(b *testing.B)      { benchExperiment(b, experiments.E5Scalability) }
func BenchmarkE6ImplodingStar(b *testing.B)    { benchExperiment(b, experiments.E6ImplodingStar) }
func BenchmarkE7ExplodingStar(b *testing.B)    { benchExperiment(b, experiments.E7ExplodingStar) }
func BenchmarkE8Triggers(b *testing.B)         { benchExperiment(b, experiments.E8Triggers) }
func BenchmarkE9Planner(b *testing.B)          { benchExperiment(b, experiments.E9Planner) }
func BenchmarkE10LongRun(b *testing.B)         { benchExperiment(b, experiments.E10LongRun) }
func BenchmarkE11HSMvsILM(b *testing.B)        { benchExperiment(b, experiments.E11HSMvsILM) }

// BenchmarkFacadeFlow measures the canonical public-API round trip: a
// three-step flow built, validated and executed per iteration.
func BenchmarkFacadeFlow(b *testing.B) {
	grid := NewGrid(GridOptions{})
	if err := grid.RegisterResource(NewResource("disk", "sdsc", Disk, 0)); err != nil {
		b.Fatal(err)
	}
	if err := grid.CreateCollectionAll(grid.Admin(), "/grid"); err != nil {
		b.Fatal(err)
	}
	engine := NewEngine(grid)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		flow := NewFlow("bench").
			Step("ingest", Op(OpIngest, map[string]string{
				"path": fmt.Sprintf("/grid/f%d", i), "size": "1024", "resource": "disk",
			})).
			Step("tag", Op(OpSetMeta, map[string]string{
				"path": fmt.Sprintf("/grid/f%d", i), "attr": "k", "value": "v",
			})).Flow()
		exec, err := engine.Run(grid.Admin(), flow)
		if err != nil {
			b.Fatal(err)
		}
		if err := exec.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}
