package dgms

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"datagridflow/internal/namespace"
	"datagridflow/internal/provenance"
	"datagridflow/internal/sim"
	"datagridflow/internal/vfs"
)

// testGrid builds a three-domain grid: sdsc (disk+parallel-fs), cern
// (disk) and archive.org (tape), with a /grid tree writable by "user".
func testGrid(t *testing.T) *Grid {
	t.Helper()
	g := New(Options{})
	for _, r := range []*vfs.Resource{
		vfs.New("sdsc-disk", "sdsc", vfs.Disk, 0),
		vfs.New("sdsc-gpfs", "sdsc", vfs.ParallelFS, 0),
		vfs.New("cern-disk", "cern", vfs.Disk, 0),
		vfs.New("tape", "archive.org", vfs.Archive, 0),
	} {
		if err := g.RegisterResource(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.CreateCollectionAll(g.Admin(), "/grid/data"); err != nil {
		t.Fatal(err)
	}
	if err := g.Namespace().SetPermission("/grid", "user", namespace.PermWrite); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRegisterResource(t *testing.T) {
	g := testGrid(t)
	if err := g.RegisterResource(vfs.New("sdsc-disk", "sdsc", vfs.Disk, 0)); err == nil {
		t.Errorf("duplicate resource accepted")
	}
	if _, err := g.Resource("nope"); !errors.Is(err, ErrNoResource) {
		t.Errorf("unknown resource: %v", err)
	}
	if got := len(g.Resources()); got != 4 {
		t.Errorf("Resources = %d", got)
	}
	if got := g.ResourcesInDomain("sdsc"); len(got) != 2 {
		t.Errorf("ResourcesInDomain(sdsc) = %d", len(got))
	}
	doms := g.Domains()
	if len(doms) != 3 || doms[0] != "archive.org" {
		t.Errorf("Domains = %v", doms)
	}
}

func TestIngestAndGet(t *testing.T) {
	g := testGrid(t)
	data := []byte("earthquake waveform")
	if err := g.Ingest("user", "/grid/data/wave.dat", int64(len(data)), data, "sdsc-disk"); err != nil {
		t.Fatal(err)
	}
	e, err := g.Namespace().Lookup("/grid/data/wave.dat")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Replicas) != 1 || e.Replicas[0].Resource != "sdsc-disk" || e.Replicas[0].Checksum == "" {
		t.Errorf("replica record: %+v", e.Replicas)
	}
	got, err := g.Get("user", "", "/grid/data/wave.dat")
	if err != nil || string(got) != string(data) {
		t.Errorf("Get = %q, %v", got, err)
	}
	// Cross-domain read charges the network.
	if _, err := g.Get("user", "cern", "/grid/data/wave.dat"); err != nil {
		t.Fatal(err)
	}
	if g.Network().Traffic("sdsc", "cern") != int64(len(data)) {
		t.Errorf("cross-domain read not metered: %d", g.Network().Traffic("sdsc", "cern"))
	}
	// Clock advanced by the simulated IO.
	if !g.Clock().Now().After(sim.Epoch) {
		t.Errorf("clock did not advance")
	}
	// Meter charged the resource.
	if g.Meter().Ops("sdsc-disk") == 0 {
		t.Errorf("meter not charged")
	}
}

func TestIngestErrors(t *testing.T) {
	g := testGrid(t)
	if err := g.Ingest("user", "/grid/data/a", 1, nil, "nope"); !errors.Is(err, ErrNoResource) {
		t.Errorf("bad resource: %v", err)
	}
	if err := g.Ingest("stranger", "/grid/data/a", 1, nil, "sdsc-disk"); !errors.Is(err, namespace.ErrDenied) {
		t.Errorf("no permission: %v", err)
	}
	if err := g.Ingest("user", "/grid/data/a", 1, nil, "sdsc-disk"); err != nil {
		t.Fatal(err)
	}
	if err := g.Ingest("user", "/grid/data/a", 1, nil, "sdsc-disk"); !errors.Is(err, namespace.ErrExists) {
		t.Errorf("duplicate path: %v", err)
	}
	// Physical failure rolls back the logical entry.
	full := vfs.New("tiny", "sdsc", vfs.Disk, 10)
	if err := g.RegisterResource(full); err != nil {
		t.Fatal(err)
	}
	if err := g.Ingest("user", "/grid/data/big", 100, nil, "tiny"); !errors.Is(err, vfs.ErrCapacity) {
		t.Errorf("capacity error: %v", err)
	}
	if g.Namespace().Exists("/grid/data/big") {
		t.Errorf("failed ingest left logical entry behind")
	}
	// Failure recorded in provenance.
	if n := g.Provenance().Count(provenance.Filter{Outcome: provenance.OutcomeError}); n == 0 {
		t.Errorf("no error provenance recorded")
	}
}

func TestReplicateMigrateTrim(t *testing.T) {
	g := testGrid(t)
	path := "/grid/data/set1"
	if err := g.Ingest("user", path, 1<<20, nil, "sdsc-disk"); err != nil {
		t.Fatal(err)
	}
	if err := g.Replicate("user", path, "cern-disk"); err != nil {
		t.Fatal(err)
	}
	reps, _ := g.Namespace().Replicas(path)
	if len(reps) != 2 {
		t.Fatalf("replicas = %v", reps)
	}
	// Replication moved bytes sdsc→cern.
	if g.Network().Traffic("sdsc", "cern") != 1<<20 {
		t.Errorf("replication traffic = %d", g.Network().Traffic("sdsc", "cern"))
	}
	// Checksum carried to the new replica.
	for _, r := range reps {
		if r.Checksum == "" {
			t.Errorf("replica %s missing checksum", r.Resource)
		}
	}
	// Migrate sdsc→tape leaves cern + tape.
	if err := g.Migrate("user", path, "sdsc-disk", "tape"); err != nil {
		t.Fatal(err)
	}
	reps, _ = g.Namespace().Replicas(path)
	if len(reps) != 2 {
		t.Fatalf("after migrate: %v", reps)
	}
	names := map[string]bool{}
	for _, r := range reps {
		names[r.Resource] = true
	}
	if !names["cern-disk"] || !names["tape"] {
		t.Errorf("migrate placement: %v", names)
	}
	// Physical object removed from source.
	src, _ := g.Resource("sdsc-disk")
	if src.Count() != 0 {
		t.Errorf("source still holds %d objects", src.Count())
	}
	// Trim down to one replica; refuse the last.
	if err := g.Trim("user", path, "cern-disk", false); err != nil {
		t.Fatal(err)
	}
	if err := g.Trim("user", path, "tape", false); !errors.Is(err, ErrLastReplica) {
		t.Errorf("last replica trim: %v", err)
	}
	if err := g.Trim("user", path, "cern-disk", false); !errors.Is(err, ErrNoReplica) {
		t.Errorf("trim missing replica: %v", err)
	}
	// Migrate to same resource is a no-op.
	if err := g.Migrate("user", path, "tape", "tape"); err != nil {
		t.Errorf("self migrate: %v", err)
	}
	// Migrate from resource without replica fails.
	if err := g.Migrate("user", path, "cern-disk", "sdsc-disk"); !errors.Is(err, ErrNoReplica) {
		t.Errorf("migrate without source: %v", err)
	}
	// Migrate when destination already holds a replica just trims source.
	if err := g.Replicate("user", path, "sdsc-disk"); err != nil {
		t.Fatal(err)
	}
	if err := g.Migrate("user", path, "sdsc-disk", "tape"); err != nil {
		t.Fatal(err)
	}
	reps, _ = g.Namespace().Replicas(path)
	if len(reps) != 1 || reps[0].Resource != "tape" {
		t.Errorf("migrate onto existing replica: %v", reps)
	}
}

func TestDelete(t *testing.T) {
	g := testGrid(t)
	path := "/grid/data/tmp"
	if err := g.Ingest("user", path, 100, nil, "sdsc-disk"); err != nil {
		t.Fatal(err)
	}
	if err := g.Replicate("user", path, "tape"); err != nil {
		t.Fatal(err)
	}
	if err := g.Delete("user", path); err != nil {
		t.Fatal(err)
	}
	if g.Namespace().Exists(path) {
		t.Errorf("logical entry survived delete")
	}
	for _, name := range []string{"sdsc-disk", "tape"} {
		r, _ := g.Resource(name)
		if r.Count() != 0 {
			t.Errorf("%s still holds objects", name)
		}
	}
	if err := g.Delete("user", path); err == nil {
		t.Errorf("double delete succeeded")
	}
}

func TestGetPrefersFastReplica(t *testing.T) {
	g := testGrid(t)
	path := "/grid/data/hot"
	if err := g.Ingest("user", path, 1<<20, nil, "tape"); err != nil {
		t.Fatal(err)
	}
	if err := g.Replicate("user", path, "sdsc-gpfs"); err != nil {
		t.Fatal(err)
	}
	rep, res, err := g.pickSourceReplica(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resource != "sdsc-gpfs" || res.Class() != vfs.ParallelFS {
		t.Errorf("picked %s, want sdsc-gpfs", rep.Resource)
	}
	// Take the fast replica offline: falls back to tape.
	fast, _ := g.Resource("sdsc-gpfs")
	fast.SetOffline(true)
	rep, _, err = g.pickSourceReplica(path)
	if err != nil || rep.Resource != "tape" {
		t.Errorf("offline fallback: %v, %v", rep.Resource, err)
	}
	fast.SetOffline(false)
	// All offline → ErrNoReplica.
	tape, _ := g.Resource("tape")
	fast.SetOffline(true)
	tape.SetOffline(true)
	if _, _, err := g.pickSourceReplica(path); !errors.Is(err, ErrNoReplica) {
		t.Errorf("all offline: %v", err)
	}
}

func TestVerifyFixity(t *testing.T) {
	g := testGrid(t)
	path := "/grid/data/doc"
	data := []byte("library holdings")
	if err := g.Ingest("user", path, int64(len(data)), data, "sdsc-disk"); err != nil {
		t.Fatal(err)
	}
	if err := g.Replicate("user", path, "cern-disk"); err != nil {
		t.Fatal(err)
	}
	res, err := g.Verify("user", path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("Verify = %v", res)
	}
	for _, r := range res {
		if !r.OK || r.Actual == "" || r.Expected != r.Actual {
			t.Errorf("fixity failed: %+v", r)
		}
	}
	// Synthetic objects verify too (pseudo-digests are stable).
	if err := g.Ingest("user", "/grid/data/syn", 1<<20, nil, "sdsc-disk"); err != nil {
		t.Fatal(err)
	}
	if err := g.Replicate("user", "/grid/data/syn", "tape"); err != nil {
		t.Fatal(err)
	}
	res, err = g.Verify("user", "/grid/data/syn")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if !r.OK {
			t.Errorf("synthetic fixity failed: %+v", r)
		}
	}
}

func TestMetaAndSearch(t *testing.T) {
	g := testGrid(t)
	if err := g.Ingest("user", "/grid/data/a.dat", 10, nil, "sdsc-disk"); err != nil {
		t.Fatal(err)
	}
	if err := g.SetMeta("user", "/grid/data/a.dat", "type", "waveform"); err != nil {
		t.Fatal(err)
	}
	if err := g.SetMeta("stranger", "/grid/data/a.dat", "x", "y"); !errors.Is(err, namespace.ErrDenied) {
		t.Errorf("stranger meta: %v", err)
	}
	got, err := g.Search("user", namespace.Query{
		ObjectsOnly: true,
		Conditions:  []namespace.Condition{{Attr: "type", Op: namespace.OpEq, Value: "waveform"}},
	})
	if err != nil || len(got) != 1 {
		t.Errorf("Search = %v, %v", got, err)
	}
	// A user without read permission sees nothing.
	got, err = g.Search("stranger", namespace.Query{ObjectsOnly: true})
	if err != nil || len(got) != 0 {
		t.Errorf("stranger search = %v, %v", got, err)
	}
}

func TestMoveLogical(t *testing.T) {
	g := testGrid(t)
	if err := g.Ingest("user", "/grid/data/old", 10, nil, "sdsc-disk"); err != nil {
		t.Fatal(err)
	}
	if err := g.Move("user", "/grid/data/old", "/grid/data/new"); err != nil {
		t.Fatal(err)
	}
	// Physical id unchanged — locating the bytes still works via replicas.
	if _, err := g.Get("user", "", "/grid/data/new"); err != nil {
		t.Errorf("Get after move: %v", err)
	}
	if err := g.Move("stranger", "/grid/data/new", "/grid/data/x"); !errors.Is(err, namespace.ErrDenied) {
		t.Errorf("stranger move: %v", err)
	}
}

func TestEventsAndVeto(t *testing.T) {
	g := testGrid(t)
	var seen []string
	g.Bus().Subscribe(After, func(ev Event) error {
		seen = append(seen, string(ev.Type)+":"+ev.Path)
		return nil
	}, EventIngest, EventReplicate)
	if err := g.Ingest("user", "/grid/data/e1", 5, nil, "sdsc-disk"); err != nil {
		t.Fatal(err)
	}
	if err := g.Replicate("user", "/grid/data/e1", "tape"); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != "ingest:/grid/data/e1" {
		t.Errorf("events = %v", seen)
	}
	// Before handler vetoes deletes.
	g.Bus().Subscribe(Before, func(ev Event) error {
		return fmt.Errorf("retention policy forbids delete")
	}, EventDelete)
	err := g.Delete("user", "/grid/data/e1")
	if !errors.Is(err, ErrVetoed) {
		t.Errorf("veto: %v", err)
	}
	if !g.Namespace().Exists("/grid/data/e1") {
		t.Errorf("vetoed delete still removed the object")
	}
}

func TestBusOrderingPolicies(t *testing.T) {
	b := NewBus()
	var order []int
	for i := 1; i <= 3; i++ {
		i := i
		b.Subscribe(After, func(Event) error {
			order = append(order, i)
			return nil
		})
	}
	if err := b.Publish(Event{Type: EventIngest, Phase: After}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[1 2 3]" {
		t.Errorf("subscription order = %v", order)
	}
	order = nil
	b.SetDeliveryOrder(OrderReverse, 0)
	_ = b.Publish(Event{Type: EventIngest, Phase: After})
	if fmt.Sprint(order) != "[3 2 1]" {
		t.Errorf("reverse order = %v", order)
	}
	// Shuffled order is deterministic for a fixed seed.
	b.SetDeliveryOrder(OrderShuffled, 7)
	order = nil
	_ = b.Publish(Event{Type: EventIngest, Phase: After})
	first := fmt.Sprint(order)
	b.SetDeliveryOrder(OrderShuffled, 7)
	order = nil
	_ = b.Publish(Event{Type: EventIngest, Phase: After})
	if fmt.Sprint(order) != first {
		t.Errorf("shuffled order not reproducible: %v vs %v", first, order)
	}
}

func TestBusSubscribeFilterAndErrors(t *testing.T) {
	b := NewBus()
	calls := 0
	id := b.Subscribe(After, func(Event) error {
		calls++
		return errors.New("handler failed")
	}, EventIngest)
	_ = b.Publish(Event{Type: EventDelete, Phase: After})  // filtered out
	_ = b.Publish(Event{Type: EventIngest, Phase: Before}) // wrong phase
	_ = b.Publish(Event{Type: EventIngest, Phase: After})
	if calls != 1 {
		t.Errorf("calls = %d", calls)
	}
	errs := b.AfterErrors()
	if len(errs) != 1 {
		t.Errorf("AfterErrors = %v", errs)
	}
	if len(b.AfterErrors()) != 0 {
		t.Errorf("AfterErrors should drain")
	}
	b.Unsubscribe(id)
	b.Unsubscribe(999) // unknown id ignored
	if b.SubscriberCount() != 0 {
		t.Errorf("SubscriberCount = %d", b.SubscriberCount())
	}
	_ = b.Publish(Event{Type: EventIngest, Phase: After})
	if calls != 1 {
		t.Errorf("unsubscribed handler ran")
	}
}

func TestProvenanceTrail(t *testing.T) {
	g := testGrid(t)
	path := "/grid/data/audited"
	if err := g.Ingest("user", path, 50, nil, "sdsc-disk"); err != nil {
		t.Fatal(err)
	}
	if err := g.Replicate("user", path, "cern-disk"); err != nil {
		t.Fatal(err)
	}
	if err := g.Migrate("user", path, "sdsc-disk", "tape"); err != nil {
		t.Fatal(err)
	}
	recs := g.Provenance().Query(provenance.Filter{TargetPrefix: path, Outcome: provenance.OutcomeOK})
	var actions []string
	for _, r := range recs {
		actions = append(actions, r.Action)
	}
	// ingest, replicate, then migrate (which itself records replicate+trim).
	want := []string{"ingest", "replicate", "replicate", "trim", "migrate"}
	if fmt.Sprint(actions) != fmt.Sprint(want) {
		t.Errorf("provenance actions = %v, want %v", actions, want)
	}
	// Timestamps are monotone non-decreasing.
	for i := 1; i < len(recs); i++ {
		if recs[i].Time.Before(recs[i-1].Time) {
			t.Errorf("provenance time went backwards at %d", i)
		}
	}
}

func TestCollectionOps(t *testing.T) {
	g := testGrid(t)
	if err := g.CreateCollection("user", "/grid/data/sub"); err != nil {
		t.Fatal(err)
	}
	if err := g.CreateCollection("stranger", "/grid/data/sub2"); !errors.Is(err, namespace.ErrDenied) {
		t.Errorf("stranger mkdir: %v", err)
	}
	if err := g.CreateCollectionAll("stranger", "/grid/deep/a/b"); !errors.Is(err, namespace.ErrDenied) {
		t.Errorf("stranger mkdir -p: %v", err)
	}
	if err := g.CreateCollectionAll("user", "/grid/deep/a/b"); err != nil {
		t.Fatal(err)
	}
	if !g.Namespace().Exists("/grid/deep/a/b") {
		t.Errorf("mkdir -p failed")
	}
}

func TestChecksumOnIngestDisabled(t *testing.T) {
	off := false
	g := New(Options{ChecksumOnIngest: &off})
	if err := g.RegisterResource(vfs.New("d", "x", vfs.Disk, 0)); err != nil {
		t.Fatal(err)
	}
	if err := g.CreateCollectionAll(g.Admin(), "/grid"); err != nil {
		t.Fatal(err)
	}
	if err := g.Ingest(g.Admin(), "/grid/a", 10, nil, "d"); err != nil {
		t.Fatal(err)
	}
	reps, _ := g.Namespace().Replicas("/grid/a")
	if reps[0].Checksum != "" {
		t.Errorf("checksum recorded despite option off")
	}
}

func TestUserDomain(t *testing.T) {
	g := testGrid(t)
	if d := g.userDomain("alice@sdsc"); d != "sdsc" {
		t.Errorf("userDomain = %q", d)
	}
	if d := g.userDomain("alice"); d != "" {
		t.Errorf("userDomain bare = %q", d)
	}
}

func TestSimulatedTimeAccounting(t *testing.T) {
	// 1 GiB to tape at 30 MiB/s should take ≈ 34 s + 30 s mount; check the
	// virtual clock reflects the archive's slowness.
	g := testGrid(t)
	start := g.Clock().Now()
	if err := g.Ingest("user", "/grid/data/big", 1<<30, nil, "tape"); err != nil {
		t.Fatal(err)
	}
	elapsed := g.Clock().Now().Sub(start)
	if elapsed < time.Minute {
		t.Errorf("tape ingest too fast: %v", elapsed)
	}
}

func BenchmarkIngest(b *testing.B) {
	g := New(Options{})
	if err := g.RegisterResource(vfs.New("d", "x", vfs.Disk, 0)); err != nil {
		b.Fatal(err)
	}
	if err := g.CreateCollectionAll(g.Admin(), "/grid"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := g.Ingest(g.Admin(), fmt.Sprintf("/grid/o%d", i), 1<<20, nil, "d"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplicate(b *testing.B) {
	g := New(Options{})
	_ = g.RegisterResource(vfs.New("src", "a", vfs.Disk, 0))
	_ = g.RegisterResource(vfs.New("dst", "b", vfs.Disk, 0))
	if err := g.CreateCollectionAll(g.Admin(), "/grid"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if err := g.Ingest(g.Admin(), fmt.Sprintf("/grid/o%d", i), 1<<20, nil, "src"); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := g.Replicate(g.Admin(), fmt.Sprintf("/grid/o%d", i), "dst"); err != nil {
			b.Fatal(err)
		}
	}
}
