// Package dgms implements the Data Grid Management System — the SRB
// analog the paper builds datagridflows on. It federates physical storage
// resources (vfs) under a logical namespace (namespace), records every
// operation (provenance), charges simulated cost (sim) and publishes
// namespace-change events that datagrid triggers subscribe to.
package dgms

import (
	"sync"
	"time"

	"datagridflow/internal/sim"
)

// EventType names a namespace-changing operation.
type EventType string

// Namespace event types published by the grid.
const (
	EventIngest     EventType = "ingest"
	EventReplicate  EventType = "replicate"
	EventMigrate    EventType = "migrate"
	EventTrim       EventType = "trim"
	EventDelete     EventType = "delete"
	EventCollection EventType = "collection"
	EventMetaSet    EventType = "meta-set"
	EventMove       EventType = "move"
	// EventAccess fires after a successful read (Get). It is not a
	// namespace *change*, but ILM's domain-value model feeds on it:
	// "as the domain value of certain data grows" is observed through
	// access patterns.
	EventAccess EventType = "access"
)

// Phase distinguishes pre- and post-operation delivery; the paper notes
// "datagrid triggers could be triggered before or after events complete".
type Phase int

// Delivery phases.
const (
	// Before fires prior to the operation; a handler error vetoes it.
	Before Phase = iota
	// After fires once the operation has completed successfully.
	After
)

// String returns "before" or "after".
func (p Phase) String() string {
	if p == Before {
		return "before"
	}
	return "after"
}

// Event describes one namespace change.
type Event struct {
	Type   EventType
	Phase  Phase
	Path   string
	User   string
	Time   time.Time
	Detail map[string]string // resource names, sizes, attribute values...
}

// Handler receives events. Returning a non-nil error from a Before
// handler vetoes the operation; errors from After handlers are collected
// by the bus but do not undo the operation (datagrid processes are not
// transactional — paper §2.2).
type Handler func(Event) error

// DeliveryOrder controls the order in which multiple subscribers see the
// same event. The paper flags this as an open issue ("different results
// might be produced based on the order in which triggers defined by
// multiple users are processed"); experiment E8 measures exactly that, so
// the order is pluggable.
type DeliveryOrder int

// Delivery orders.
const (
	// OrderSubscription delivers in subscription order (deterministic).
	OrderSubscription DeliveryOrder = iota
	// OrderReverse delivers in reverse subscription order.
	OrderReverse
	// OrderShuffled delivers in a seeded pseudo-random order per event.
	OrderShuffled
)

type subscription struct {
	id      int64
	types   map[EventType]bool // nil = all types
	phase   Phase
	handler Handler
}

// Bus is the event bus. It is safe for concurrent use; delivery happens
// synchronously on the publisher's goroutine so Before handlers can veto.
type Bus struct {
	mu     sync.RWMutex
	nextID int64
	subs   []subscription
	order  DeliveryOrder
	rng    *sim.Rand

	afterErrs []error
}

// NewBus returns a bus with deterministic subscription-order delivery.
func NewBus() *Bus {
	return &Bus{order: OrderSubscription, rng: sim.NewRand(1)}
}

// SetDeliveryOrder changes how concurrent subscribers are ordered; the
// seed feeds OrderShuffled.
func (b *Bus) SetDeliveryOrder(o DeliveryOrder, seed int64) {
	b.mu.Lock()
	b.order = o
	b.rng = sim.NewRand(seed)
	b.mu.Unlock()
}

// Subscribe registers a handler for the given phase and event types (no
// types = all). It returns an id for Unsubscribe.
func (b *Bus) Subscribe(phase Phase, handler Handler, types ...EventType) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	sub := subscription{id: b.nextID, phase: phase, handler: handler}
	if len(types) > 0 {
		sub.types = make(map[EventType]bool, len(types))
		for _, t := range types {
			sub.types[t] = true
		}
	}
	b.subs = append(b.subs, sub)
	return b.nextID
}

// Unsubscribe removes the handler with the given id; unknown ids are
// ignored.
func (b *Bus) Unsubscribe(id int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, s := range b.subs {
		if s.id == id {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			return
		}
	}
}

// Publish delivers ev to matching subscribers in the configured order.
// For Before events the first handler error stops delivery and is
// returned (the veto). For After events all handlers run; their errors
// are recorded and retrievable via AfterErrors.
func (b *Bus) Publish(ev Event) error {
	b.mu.RLock()
	matching := make([]subscription, 0, len(b.subs))
	for _, s := range b.subs {
		if s.phase != ev.Phase {
			continue
		}
		if s.types != nil && !s.types[ev.Type] {
			continue
		}
		matching = append(matching, s)
	}
	order := b.order
	rng := b.rng
	b.mu.RUnlock()

	switch order {
	case OrderReverse:
		for i, j := 0, len(matching)-1; i < j; i, j = i+1, j-1 {
			matching[i], matching[j] = matching[j], matching[i]
		}
	case OrderShuffled:
		perm := rng.Perm(len(matching))
		shuffled := make([]subscription, len(matching))
		for i, p := range perm {
			shuffled[i] = matching[p]
		}
		matching = shuffled
	}

	for _, s := range matching {
		if err := s.handler(ev); err != nil {
			if ev.Phase == Before {
				return err
			}
			b.mu.Lock()
			b.afterErrs = append(b.afterErrs, err)
			b.mu.Unlock()
		}
	}
	return nil
}

// AfterErrors drains and returns errors raised by After handlers since
// the last call.
func (b *Bus) AfterErrors() []error {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := b.afterErrs
	b.afterErrs = nil
	return out
}

// SubscriberCount returns the number of live subscriptions.
func (b *Bus) SubscriberCount() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.subs)
}
