package dgms

import (
	"fmt"
	"sort"
	"sync"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/fault"
	"datagridflow/internal/namespace"
	"datagridflow/internal/obs"
	"datagridflow/internal/provenance"
	"datagridflow/internal/sim"
	"datagridflow/internal/vfs"
)

// Sentinel errors for grid operations. Each wraps its dgferr class so
// callers can match against the public taxonomy.
var (
	// ErrNoResource reports an unknown logical resource name.
	ErrNoResource = dgferr.Mark(dgferr.ErrNotFound, "dgms: unknown resource")
	// ErrNoReplica reports that no usable replica of an object exists —
	// typically every holder is offline, so it classifies as transient.
	ErrNoReplica = dgferr.Mark(dgferr.ErrResourceDown, "dgms: no usable replica")
	// ErrLastReplica reports a trim that would drop the only replica.
	ErrLastReplica = dgferr.Mark(dgferr.ErrInvalid, "dgms: refusing to trim last replica")
	// ErrVetoed reports an operation vetoed by a Before trigger.
	ErrVetoed = dgferr.Mark(dgferr.ErrPermission, "dgms: operation vetoed")
)

// Options configure a Grid.
type Options struct {
	// Admin is the root owner of the namespace. Default "admin".
	Admin string
	// Clock drives simulated time. Default: virtual clock at sim.Epoch.
	Clock sim.Clock
	// Network models inter-domain links. Default: sim.NewNetwork().
	Network *sim.Network
	// Provenance receives operation records. Default: in-memory store.
	Provenance *provenance.Store
	// ChecksumOnIngest computes and records an MD5 digest for every new
	// replica (costs a simulated read). Default true — fixity on ingest
	// is the UCSD library scenario.
	ChecksumOnIngest *bool
	// Obs receives metrics and trace events from every component built
	// on this grid (engine, wire, triggers, ILM, scheduler). Default:
	// the process-wide obs.Default() registry. Tests that assert on
	// metric values should inject a fresh registry here.
	Obs *obs.Registry
	// Fault is an optional fault-injection plan evaluated on every
	// storage operation. Default nil: no faults.
	Fault *fault.Injector
}

// Grid is the Data Grid Management System: a single logical namespace
// federating storage resources from many administrative domains.
type Grid struct {
	admin string
	clock sim.Clock
	net   *sim.Network
	meter *sim.Meter
	ns    *namespace.Namespace
	prov  *provenance.Store
	bus   *Bus
	obs   *obs.Registry

	checksumOnIngest bool

	mu        sync.RWMutex
	resources map[string]*vfs.Resource
	fault     *fault.Injector
}

// New creates a grid. The zero Options value gives a fully in-memory,
// virtually clocked grid suitable for tests and experiments.
func New(opts Options) *Grid {
	if opts.Admin == "" {
		opts.Admin = "admin"
	}
	if opts.Clock == nil {
		opts.Clock = sim.NewVirtualClock(sim.Epoch)
	}
	if opts.Network == nil {
		opts.Network = sim.NewNetwork()
	}
	if opts.Provenance == nil {
		opts.Provenance = provenance.NewMemory()
	}
	cs := true
	if opts.ChecksumOnIngest != nil {
		cs = *opts.ChecksumOnIngest
	}
	if opts.Obs == nil {
		opts.Obs = obs.Default()
	}
	if opts.Fault != nil {
		opts.Fault.SetObs(opts.Obs)
	}
	return &Grid{
		admin:            opts.Admin,
		clock:            opts.Clock,
		net:              opts.Network,
		meter:            sim.NewMeter(),
		ns:               namespace.New(opts.Admin),
		prov:             opts.Provenance,
		bus:              NewBus(),
		obs:              opts.Obs,
		checksumOnIngest: cs,
		resources:        make(map[string]*vfs.Resource),
		fault:            opts.Fault,
	}
}

// Admin returns the namespace administrator user.
func (g *Grid) Admin() string { return g.admin }

// Clock returns the grid's clock.
func (g *Grid) Clock() sim.Clock { return g.clock }

// Network returns the inter-domain network model.
func (g *Grid) Network() *sim.Network { return g.net }

// Meter returns the grid's cost meter (busy time/bytes/ops per resource).
func (g *Grid) Meter() *sim.Meter { return g.meter }

// Namespace exposes the logical namespace for read-side queries. Mutations
// must go through Grid methods so that events, provenance and cost
// accounting stay consistent.
func (g *Grid) Namespace() *namespace.Namespace { return g.ns }

// Provenance returns the provenance store.
func (g *Grid) Provenance() *provenance.Store { return g.prov }

// Bus returns the namespace event bus.
func (g *Grid) Bus() *Bus { return g.bus }

// Obs returns the observability registry every component built on this
// grid emits metrics and trace events into.
func (g *Grid) Obs() *obs.Registry { return g.obs }

// SetFault attaches (or, with nil, detaches) a fault-injection plan.
// The injector's metrics are routed into the grid registry.
func (g *Grid) SetFault(in *fault.Injector) {
	if in != nil {
		in.SetObs(g.obs)
	}
	g.mu.Lock()
	g.fault = in
	g.mu.Unlock()
}

// Fault returns the attached fault injector, or nil.
func (g *Grid) Fault() *fault.Injector {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.fault
}

// faultCheck consults the fault plan before a storage operation against
// the named resource.
func (g *Grid) faultCheck(resource string) error {
	return g.Fault().CheckOp(resource)
}

// RegisterResource maps a physical storage system into the grid's logical
// resource namespace — the paper's "each SRB storage server ... maps that
// particular physical storage system into the data grid logical resource
// namespace".
func (g *Grid) RegisterResource(r *vfs.Resource) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.resources[r.Name()]; ok {
		return fmt.Errorf("dgms: resource %q already registered", r.Name())
	}
	g.resources[r.Name()] = r
	return nil
}

// Resource returns the named logical resource.
func (g *Grid) Resource(name string) (*vfs.Resource, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	r, ok := g.resources[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoResource, name)
	}
	return r, nil
}

// Resources returns all registered resources sorted by name.
func (g *Grid) Resources() []*vfs.Resource {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]*vfs.Resource, 0, len(g.resources))
	for _, r := range g.resources {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// ResourcesInDomain returns the resources owned by one administrative
// domain, sorted by name.
func (g *Grid) ResourcesInDomain(domain string) []*vfs.Resource {
	var out []*vfs.Resource
	for _, r := range g.Resources() {
		if r.Domain() == domain {
			out = append(out, r)
		}
	}
	return out
}

// Domains returns the distinct administrative domains with registered
// resources, sorted.
func (g *Grid) Domains() []string {
	seen := map[string]bool{}
	for _, r := range g.Resources() {
		seen[r.Domain()] = true
	}
	out := make([]string, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// record appends a provenance record stamped with the grid clock.
func (g *Grid) record(actor, action, target, outcome, errText string, detail map[string]string) {
	_, _ = g.prov.Append(provenance.Record{
		Time:    g.clock.Now(),
		Actor:   actor,
		Action:  action,
		Target:  target,
		Outcome: outcome,
		Err:     errText,
		Detail:  detail,
	})
}

func (g *Grid) recordErr(actor, action, target string, err error) {
	g.record(actor, action, target, provenance.OutcomeError, err.Error(), nil)
}

// publish2 runs the Before/After pair around op. If the Before phase is
// vetoed the operation does not run and ErrVetoed (wrapping the veto) is
// returned.
func (g *Grid) publish2(ev Event, op func() error) error {
	ev.Time = g.clock.Now()
	ev.Phase = Before
	if err := g.bus.Publish(ev); err != nil {
		return fmt.Errorf("%w: %v", ErrVetoed, err)
	}
	if err := op(); err != nil {
		return err
	}
	ev.Phase = After
	ev.Time = g.clock.Now()
	_ = g.bus.Publish(ev)
	return nil
}
