package dgms

import (
	"fmt"
	"strconv"

	"datagridflow/internal/namespace"
	"datagridflow/internal/provenance"
	"datagridflow/internal/vfs"
)

// physicalID derives the id an object's replica uses inside a resource's
// flat store. Logical paths are unique grid-wide, so the path itself is a
// valid physical id; keeping them equal makes debugging dumps readable.
func physicalID(path string) string { return path }

// CreateCollection creates one collection level; the user needs write
// permission on the parent.
func (g *Grid) CreateCollection(user, path string) error {
	if err := g.ns.Check(namespace.Parent(path), user, namespace.PermWrite); err != nil {
		g.recordErr(user, "collection.create", path, err)
		return err
	}
	return g.createCollection(user, path, false)
}

// CreateCollectionAll creates a collection and any missing ancestors.
// Permission is checked on the deepest existing ancestor.
func (g *Grid) CreateCollectionAll(user, path string) error {
	anc := path
	for anc != "/" && !g.ns.Exists(anc) {
		anc = namespace.Parent(anc)
	}
	if err := g.ns.Check(anc, user, namespace.PermWrite); err != nil {
		g.recordErr(user, "collection.create", path, err)
		return err
	}
	return g.createCollection(user, path, true)
}

func (g *Grid) createCollection(user, path string, all bool) error {
	domain := g.userDomain(user)
	err := g.publish2(Event{Type: EventCollection, Path: path, User: user}, func() error {
		if all {
			return g.ns.MkCollectionAll(path, user, domain, g.clock.Now())
		}
		return g.ns.MkCollection(path, user, domain, g.clock.Now())
	})
	if err != nil {
		g.recordErr(user, "collection.create", path, err)
		return err
	}
	g.record(user, "collection.create", path, provenance.OutcomeOK, "", nil)
	return nil
}

// userDomain reports the domain a user acts from. The simulation keeps
// this simple: "user@domain" names carry their domain; otherwise the
// user's home domain is unknown ("").
func (g *Grid) userDomain(user string) string {
	for i := 0; i < len(user); i++ {
		if user[i] == '@' {
			return user[i+1:]
		}
	}
	return ""
}

// Ingest writes a new data object: logical entry, one physical replica on
// the named resource, optional fixity digest, event, provenance, cost.
// data may be nil for synthetic (size-only) objects.
func (g *Grid) Ingest(user, path string, size int64, data []byte, resource string) error {
	res, err := g.Resource(resource)
	if err != nil {
		g.recordErr(user, "ingest", path, err)
		return err
	}
	if err := g.ns.Check(namespace.Parent(path), user, namespace.PermWrite); err != nil {
		g.recordErr(user, "ingest", path, err)
		return err
	}
	if err := g.faultCheck(resource); err != nil {
		g.recordErr(user, "ingest", path, err)
		return err
	}
	detail := map[string]string{"resource": resource, "size": strconv.FormatInt(size, 10)}
	err = g.publish2(Event{Type: EventIngest, Path: path, User: user, Detail: detail}, func() error {
		if err := g.ns.CreateObject(path, user, res.Domain(), size, g.clock.Now()); err != nil {
			return err
		}
		d, err := res.Put(physicalID(path), size, data, g.clock.Now())
		if err != nil {
			_ = g.ns.Remove(path) // roll back the logical entry
			return err
		}
		g.clock.Sleep(d)
		g.meter.Charge(resource, d, size)
		rep := namespace.Replica{Resource: resource, PhysicalID: physicalID(path), StoredAt: g.clock.Now()}
		if g.checksumOnIngest {
			sum, cd, err := res.Checksum(physicalID(path))
			if err != nil {
				return err
			}
			g.clock.Sleep(cd)
			g.meter.Charge(resource, cd, size)
			rep.Checksum = sum
		}
		return g.ns.AddReplica(path, rep)
	})
	if err != nil {
		g.recordErr(user, "ingest", path, err)
		return err
	}
	g.record(user, "ingest", path, provenance.OutcomeOK, "", detail)
	return nil
}

// pickSourceReplica returns the first online replica of path, preferring
// faster storage classes so reads come from disk rather than tape when
// both exist.
func (g *Grid) pickSourceReplica(path string) (namespace.Replica, *vfs.Resource, error) {
	reps, err := g.ns.Replicas(path)
	if err != nil {
		return namespace.Replica{}, nil, err
	}
	var best namespace.Replica
	var bestRes *vfs.Resource
	for _, rep := range reps {
		res, err := g.Resource(rep.Resource)
		if err != nil || res.Offline() {
			continue
		}
		if bestRes == nil || res.Class() < bestRes.Class() {
			best, bestRes = rep, res
		}
	}
	if bestRes == nil {
		return namespace.Replica{}, nil, fmt.Errorf("%w: %s", ErrNoReplica, path)
	}
	return best, bestRes, nil
}

// Replicate copies an object onto another resource: read at the best
// available source replica, transfer across the inter-domain network,
// write at the destination.
func (g *Grid) Replicate(user, path, toResource string) error {
	return g.ReplicateFrom(user, path, "", toResource)
}

// ReplicateFrom is Replicate with an explicit source replica — the
// primitive staged (tiered) distribution needs, where tier N must pull
// from tier N-1 rather than from the origin. An empty fromResource
// selects the best source automatically.
func (g *Grid) ReplicateFrom(user, path, fromResource, toResource string) error {
	dst, err := g.Resource(toResource)
	if err != nil {
		g.recordErr(user, "replicate", path, err)
		return err
	}
	if err := g.ns.Check(path, user, namespace.PermWrite); err != nil {
		g.recordErr(user, "replicate", path, err)
		return err
	}
	detail := map[string]string{"to": toResource}
	err = g.publish2(Event{Type: EventReplicate, Path: path, User: user, Detail: detail}, func() error {
		srcRep, src, err := g.sourceReplica(path, fromResource)
		if err != nil {
			return err
		}
		if err := g.faultCheck(srcRep.Resource); err != nil {
			return err
		}
		if err := g.faultCheck(toResource); err != nil {
			return err
		}
		detail["from"] = srcRep.Resource
		data, rd, err := src.Get(srcRep.PhysicalID)
		if err != nil {
			return err
		}
		info, _ := src.Stat(srcRep.PhysicalID)
		g.clock.Sleep(rd)
		g.meter.Charge(srcRep.Resource, rd, info.Size)
		td, err := g.net.RecordTransfer(src.Domain(), dst.Domain(), info.Size)
		if err != nil {
			return err
		}
		g.clock.Sleep(td)
		wd, err := dst.Put(physicalID(path), info.Size, data, g.clock.Now())
		if err != nil {
			return err
		}
		g.clock.Sleep(wd)
		g.meter.Charge(toResource, wd, info.Size)
		return g.ns.AddReplica(path, namespace.Replica{
			Resource:   toResource,
			PhysicalID: physicalID(path),
			Checksum:   srcRep.Checksum,
			StoredAt:   g.clock.Now(),
		})
	})
	if err != nil {
		g.recordErr(user, "replicate", path, err)
		return err
	}
	g.record(user, "replicate", path, provenance.OutcomeOK, "", detail)
	return nil
}

// sourceReplica resolves the replica to read from: the named resource
// when given (must exist and be online), otherwise the best available.
func (g *Grid) sourceReplica(path, fromResource string) (namespace.Replica, *vfs.Resource, error) {
	if fromResource == "" {
		return g.pickSourceReplica(path)
	}
	reps, err := g.ns.Replicas(path)
	if err != nil {
		return namespace.Replica{}, nil, err
	}
	for _, rep := range reps {
		if rep.Resource != fromResource {
			continue
		}
		res, err := g.Resource(fromResource)
		if err != nil {
			return namespace.Replica{}, nil, err
		}
		if res.Offline() {
			return namespace.Replica{}, nil, fmt.Errorf("%w: %s source %s offline", ErrNoReplica, path, fromResource)
		}
		return rep, res, nil
	}
	return namespace.Replica{}, nil, fmt.Errorf("%w: %s has no replica on %s", ErrNoReplica, path, fromResource)
}

// Trim removes the replica on the named resource. It refuses to remove
// the last remaining replica unless force is set (the delete path).
func (g *Grid) Trim(user, path, resource string, force bool) error {
	if err := g.ns.Check(path, user, namespace.PermWrite); err != nil {
		g.recordErr(user, "trim", path, err)
		return err
	}
	detail := map[string]string{"resource": resource}
	err := g.publish2(Event{Type: EventTrim, Path: path, User: user, Detail: detail}, func() error {
		reps, err := g.ns.Replicas(path)
		if err != nil {
			return err
		}
		var target *namespace.Replica
		for i := range reps {
			if reps[i].Resource == resource {
				target = &reps[i]
				break
			}
		}
		if target == nil {
			return fmt.Errorf("%w: %s has no replica on %s", ErrNoReplica, path, resource)
		}
		if len(reps) <= 1 && !force {
			return fmt.Errorf("%w: %s on %s", ErrLastReplica, path, resource)
		}
		if err := g.faultCheck(resource); err != nil {
			return err
		}
		res, err := g.Resource(resource)
		if err != nil {
			return err
		}
		d, err := res.Delete(target.PhysicalID)
		if err != nil {
			return err
		}
		g.clock.Sleep(d)
		g.meter.Charge(resource, d, 0)
		return g.ns.RemoveReplica(path, resource)
	})
	if err != nil {
		g.recordErr(user, "trim", path, err)
		return err
	}
	g.record(user, "trim", path, provenance.OutcomeOK, "", detail)
	return nil
}

// Migrate moves an object's replica from one resource to another: a
// replicate to the destination followed by a trim at the source. This is
// the primitive ILM placement changes are built from.
func (g *Grid) Migrate(user, path, fromResource, toResource string) error {
	if fromResource == toResource {
		return nil
	}
	detail := map[string]string{"from": fromResource, "to": toResource}
	err := g.publish2(Event{Type: EventMigrate, Path: path, User: user, Detail: detail}, func() error {
		reps, err := g.ns.Replicas(path)
		if err != nil {
			return err
		}
		hasFrom, hasTo := false, false
		for _, r := range reps {
			if r.Resource == fromResource {
				hasFrom = true
			}
			if r.Resource == toResource {
				hasTo = true
			}
		}
		if !hasFrom {
			return fmt.Errorf("%w: %s has no replica on %s", ErrNoReplica, path, fromResource)
		}
		if !hasTo {
			if err := g.Replicate(user, path, toResource); err != nil {
				return err
			}
		}
		return g.Trim(user, path, fromResource, false)
	})
	if err != nil {
		g.recordErr(user, "migrate", path, err)
		return err
	}
	g.record(user, "migrate", path, provenance.OutcomeOK, "", detail)
	return nil
}

// RegisterInPlace maps data that already exists on a physical resource
// into the logical namespace without moving bytes — the SRB deployment
// model: "multiple independent organizations deploy the SRB middleware
// on top of their existing physical storage resources without any
// changes to the existing system". The physical object (by physicalID)
// must exist on the resource; its size is taken from the store and a
// digest is recorded when ChecksumOnIngest is on.
func (g *Grid) RegisterInPlace(user, path, resource, physID string) error {
	res, err := g.Resource(resource)
	if err != nil {
		g.recordErr(user, "register", path, err)
		return err
	}
	info, ok := res.Stat(physID)
	if !ok {
		err := fmt.Errorf("%w: physical object %q on %s", ErrNoReplica, physID, resource)
		g.recordErr(user, "register", path, err)
		return err
	}
	if err := g.faultCheck(resource); err != nil {
		g.recordErr(user, "register", path, err)
		return err
	}
	if err := g.ns.Check(namespace.Parent(path), user, namespace.PermWrite); err != nil {
		g.recordErr(user, "register", path, err)
		return err
	}
	detail := map[string]string{"resource": resource, "physicalID": physID}
	err = g.publish2(Event{Type: EventIngest, Path: path, User: user, Detail: detail}, func() error {
		if err := g.ns.CreateObject(path, user, res.Domain(), info.Size, g.clock.Now()); err != nil {
			return err
		}
		rep := namespace.Replica{Resource: resource, PhysicalID: physID, StoredAt: g.clock.Now()}
		if g.checksumOnIngest {
			sum, cd, err := res.Checksum(physID)
			if err != nil {
				_ = g.ns.Remove(path)
				return err
			}
			g.clock.Sleep(cd)
			g.meter.Charge(resource, cd, info.Size)
			rep.Checksum = sum
		}
		if err := g.ns.AddReplica(path, rep); err != nil {
			_ = g.ns.Remove(path)
			return err
		}
		return nil
	})
	if err != nil {
		g.recordErr(user, "register", path, err)
		return err
	}
	g.record(user, "register", path, provenance.OutcomeOK, "", detail)
	return nil
}

// Delete removes the object entirely: all physical replicas and the
// logical entry.
func (g *Grid) Delete(user, path string) error {
	if err := g.ns.Check(path, user, namespace.PermWrite); err != nil {
		g.recordErr(user, "delete", path, err)
		return err
	}
	err := g.publish2(Event{Type: EventDelete, Path: path, User: user}, func() error {
		reps, err := g.ns.Replicas(path)
		if err != nil {
			return err
		}
		for _, rep := range reps {
			res, err := g.Resource(rep.Resource)
			if err != nil {
				return err
			}
			d, err := res.Delete(rep.PhysicalID)
			if err != nil {
				return err
			}
			g.clock.Sleep(d)
			g.meter.Charge(rep.Resource, d, 0)
			if err := g.ns.RemoveReplica(path, rep.Resource); err != nil {
				return err
			}
		}
		return g.ns.Remove(path)
	})
	if err != nil {
		g.recordErr(user, "delete", path, err)
		return err
	}
	g.record(user, "delete", path, provenance.OutcomeOK, "", nil)
	return nil
}

// Get reads the object's bytes from the best online replica. The caller's
// domain determines the network leg; pass "" for a client co-located with
// the replica. Synthetic objects return nil data but still charge the
// simulated read and transfer.
func (g *Grid) Get(user, fromDomain, path string) ([]byte, error) {
	if err := g.ns.Check(path, user, namespace.PermRead); err != nil {
		g.recordErr(user, "get", path, err)
		return nil, err
	}
	rep, res, err := g.pickSourceReplica(path)
	if err != nil {
		g.recordErr(user, "get", path, err)
		return nil, err
	}
	if err := g.faultCheck(rep.Resource); err != nil {
		g.recordErr(user, "get", path, err)
		return nil, err
	}
	data, rd, err := res.Get(rep.PhysicalID)
	if err != nil {
		g.recordErr(user, "get", path, err)
		return nil, err
	}
	info, _ := res.Stat(rep.PhysicalID)
	g.clock.Sleep(rd)
	g.meter.Charge(rep.Resource, rd, info.Size)
	if fromDomain != "" && fromDomain != res.Domain() {
		td, err := g.net.RecordTransfer(res.Domain(), fromDomain, info.Size)
		if err != nil {
			g.recordErr(user, "get", path, err)
			return nil, err
		}
		g.clock.Sleep(td)
	}
	g.record(user, "get", path, provenance.OutcomeOK, "", map[string]string{"resource": rep.Resource})
	_ = g.bus.Publish(Event{
		Type: EventAccess, Phase: After, Path: path, User: user, Time: g.clock.Now(),
		Detail: map[string]string{"resource": rep.Resource, "domain": fromDomain},
	})
	return data, nil
}

// VerifyResult reports the fixity state of one replica.
type VerifyResult struct {
	Resource string
	Expected string // digest recorded at write time ("" if never recorded)
	Actual   string
	OK       bool
}

// Verify recomputes every replica's checksum and compares it against the
// digest recorded at write time — the data-integrity flow run for the
// UCSD Libraries in the paper.
func (g *Grid) Verify(user, path string) ([]VerifyResult, error) {
	if err := g.ns.Check(path, user, namespace.PermRead); err != nil {
		g.recordErr(user, "verify", path, err)
		return nil, err
	}
	reps, err := g.ns.Replicas(path)
	if err != nil {
		g.recordErr(user, "verify", path, err)
		return nil, err
	}
	out := make([]VerifyResult, 0, len(reps))
	for _, rep := range reps {
		res, err := g.Resource(rep.Resource)
		if err != nil {
			return nil, err
		}
		if err := g.faultCheck(rep.Resource); err != nil {
			g.recordErr(user, "verify", path, err)
			return nil, err
		}
		sum, d, err := res.Checksum(rep.PhysicalID)
		if err != nil {
			g.recordErr(user, "verify", path, err)
			return nil, err
		}
		info, _ := res.Stat(rep.PhysicalID)
		g.clock.Sleep(d)
		g.meter.Charge(rep.Resource, d, info.Size)
		ok := rep.Checksum == "" || rep.Checksum == sum
		out = append(out, VerifyResult{Resource: rep.Resource, Expected: rep.Checksum, Actual: sum, OK: ok})
	}
	g.record(user, "verify", path, provenance.OutcomeOK, "", map[string]string{"replicas": strconv.Itoa(len(out))})
	return out, nil
}

// SetMeta attaches user-defined metadata to an entry and publishes the
// meta-set event triggers listen for.
func (g *Grid) SetMeta(user, path, attr, value string) error {
	if err := g.ns.Check(path, user, namespace.PermWrite); err != nil {
		g.recordErr(user, "meta.set", path, err)
		return err
	}
	detail := map[string]string{"attr": attr, "value": value}
	err := g.publish2(Event{Type: EventMetaSet, Path: path, User: user, Detail: detail}, func() error {
		return g.ns.SetMeta(path, attr, value)
	})
	if err != nil {
		g.recordErr(user, "meta.set", path, err)
		return err
	}
	g.record(user, "meta.set", path, provenance.OutcomeOK, "", detail)
	return nil
}

// Move renames a logical path; physical replicas are untouched (their
// physical ids keep the original name), demonstrating location
// independence.
func (g *Grid) Move(user, src, dst string) error {
	if err := g.ns.Check(src, user, namespace.PermWrite); err != nil {
		g.recordErr(user, "move", src, err)
		return err
	}
	detail := map[string]string{"dst": dst}
	err := g.publish2(Event{Type: EventMove, Path: src, User: user, Detail: detail}, func() error {
		return g.ns.Move(src, dst)
	})
	if err != nil {
		g.recordErr(user, "move", src, err)
		return err
	}
	g.record(user, "move", src, provenance.OutcomeOK, "", detail)
	return nil
}

// Search runs a metadata query against the namespace, filtered to entries
// the user can read.
func (g *Grid) Search(user string, q namespace.Query) ([]namespace.Entry, error) {
	all, err := g.ns.Search(q)
	if err != nil {
		return nil, err
	}
	out := all[:0]
	for _, e := range all {
		if g.ns.Check(e.Path, user, namespace.PermRead) == nil {
			out = append(out, e)
		}
	}
	return out, nil
}
