package dgms

import (
	"errors"
	"testing"

	"datagridflow/internal/namespace"
	"datagridflow/internal/provenance"
)

func TestRegisterInPlace(t *testing.T) {
	g := testGrid(t)
	disk, _ := g.Resource("sdsc-disk")
	// Legacy data written outside the grid.
	if _, err := disk.Put("hpss/archive/0042", 9, []byte("old bytes"), g.Clock().Now()); err != nil {
		t.Fatal(err)
	}
	if err := g.RegisterInPlace("user", "/grid/data/onboarded", "sdsc-disk", "hpss/archive/0042"); err != nil {
		t.Fatal(err)
	}
	e, err := g.Namespace().Lookup("/grid/data/onboarded")
	if err != nil {
		t.Fatal(err)
	}
	if e.Size != 9 || len(e.Replicas) != 1 || e.Replicas[0].PhysicalID != "hpss/archive/0042" {
		t.Errorf("entry = %+v", e)
	}
	if e.Replicas[0].Checksum == "" {
		t.Errorf("fixity digest not recorded at registration")
	}
	// No second physical object appeared.
	if disk.Count() != 1 {
		t.Errorf("register copied data: %d objects", disk.Count())
	}
	// Reads and verification work against the foreign physical id.
	data, err := g.Get("user", "", "/grid/data/onboarded")
	if err != nil || string(data) != "old bytes" {
		t.Errorf("Get = %q, %v", data, err)
	}
	results, err := g.Verify("user", "/grid/data/onboarded")
	if err != nil || len(results) != 1 || !results[0].OK {
		t.Errorf("Verify = %+v, %v", results, err)
	}
	// Error paths.
	if err := g.RegisterInPlace("user", "/grid/data/x", "nope", "id"); !errors.Is(err, ErrNoResource) {
		t.Errorf("bad resource: %v", err)
	}
	if err := g.RegisterInPlace("user", "/grid/data/x", "sdsc-disk", "missing"); !errors.Is(err, ErrNoReplica) {
		t.Errorf("missing physical: %v", err)
	}
	if err := g.RegisterInPlace("stranger", "/grid/data/x", "sdsc-disk", "hpss/archive/0042"); !errors.Is(err, namespace.ErrDenied) {
		t.Errorf("stranger: %v", err)
	}
	if err := g.RegisterInPlace("user", "/grid/data/onboarded", "sdsc-disk", "hpss/archive/0042"); !errors.Is(err, namespace.ErrExists) {
		t.Errorf("duplicate path: %v", err)
	}
	// Provenance recorded.
	if n := g.Provenance().Count(provenance.Filter{Action: "register", Outcome: provenance.OutcomeOK}); n != 1 {
		t.Errorf("register provenance = %d", n)
	}
}

func TestReplicateFromExplicitSource(t *testing.T) {
	g := testGrid(t)
	path := "/grid/data/staged"
	if err := g.Ingest("user", path, 1<<20, nil, "sdsc-disk"); err != nil {
		t.Fatal(err)
	}
	if err := g.Replicate("user", path, "cern-disk"); err != nil {
		t.Fatal(err)
	}
	g.Network().Reset()
	// Pin the source to cern: traffic must flow cern→archive.org even
	// though sdsc would be picked automatically (same class, earlier).
	if err := g.ReplicateFrom("user", path, "cern-disk", "tape"); err != nil {
		t.Fatal(err)
	}
	if got := g.Network().Traffic("cern", "archive.org"); got != 1<<20 {
		t.Errorf("pinned-source traffic = %d", got)
	}
	if got := g.Network().Traffic("sdsc", "archive.org"); got != 0 {
		t.Errorf("auto source used despite pin: %d", got)
	}
	// Pinned source without a replica fails.
	if err := g.ReplicateFrom("user", path, "sdsc-gpfs", "tape"); !errors.Is(err, ErrNoReplica) {
		t.Errorf("pin without replica: %v", err)
	}
	// Pinned source offline fails.
	cern, _ := g.Resource("cern-disk")
	cern.SetOffline(true)
	if err := g.ReplicateFrom("user", path, "cern-disk", "sdsc-gpfs"); !errors.Is(err, ErrNoReplica) {
		t.Errorf("pin offline: %v", err)
	}
	cern.SetOffline(false)
}

func TestAccessEventPublished(t *testing.T) {
	g := testGrid(t)
	if err := g.Ingest("user", "/grid/data/read-me", 10, nil, "sdsc-disk"); err != nil {
		t.Fatal(err)
	}
	var events []Event
	g.Bus().Subscribe(After, func(ev Event) error {
		events = append(events, ev)
		return nil
	}, EventAccess)
	if _, err := g.Get("user", "cern", "/grid/data/read-me"); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("access events = %d", len(events))
	}
	ev := events[0]
	if ev.Path != "/grid/data/read-me" || ev.User != "user" ||
		ev.Detail["resource"] != "sdsc-disk" || ev.Detail["domain"] != "cern" {
		t.Errorf("event = %+v", ev)
	}
	// Failed reads publish nothing.
	if _, err := g.Get("stranger", "", "/grid/data/read-me"); err == nil {
		t.Fatal("stranger read allowed")
	}
	if len(events) != 1 {
		t.Errorf("failed read published an access event")
	}
}

func TestPhaseString(t *testing.T) {
	if Before.String() != "before" || After.String() != "after" {
		t.Errorf("phase names wrong")
	}
}

func TestGetErrorPaths(t *testing.T) {
	g := testGrid(t)
	// Unknown path.
	if _, err := g.Get("user", "", "/grid/data/none"); err == nil {
		t.Errorf("missing object read")
	}
	// Permission denied.
	if err := g.Ingest("user", "/grid/data/p", 10, nil, "sdsc-disk"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Get("stranger", "", "/grid/data/p"); !errors.Is(err, namespace.ErrDenied) {
		t.Errorf("stranger get: %v", err)
	}
	// All replicas offline.
	disk, _ := g.Resource("sdsc-disk")
	disk.SetOffline(true)
	if _, err := g.Get("user", "", "/grid/data/p"); !errors.Is(err, ErrNoReplica) {
		t.Errorf("offline get: %v", err)
	}
	disk.SetOffline(false)
}

func TestVerifyDetectsCorruption(t *testing.T) {
	g := testGrid(t)
	path := "/grid/data/rotting"
	if err := g.Ingest("user", path, 5, []byte("bytes"), "sdsc-disk"); err != nil {
		t.Fatal(err)
	}
	if err := g.Replicate("user", path, "cern-disk"); err != nil {
		t.Fatal(err)
	}
	cern, _ := g.Resource("cern-disk")
	if err := cern.Corrupt(path); err != nil {
		t.Fatal(err)
	}
	results, err := g.Verify("user", path)
	if err != nil {
		t.Fatal(err)
	}
	good, bad := 0, 0
	for _, r := range results {
		if r.OK {
			good++
		} else {
			bad++
			if r.Resource != "cern-disk" {
				t.Errorf("wrong replica flagged: %+v", r)
			}
		}
	}
	if good != 1 || bad != 1 {
		t.Errorf("verify results = %+v", results)
	}
	// Verify denied without read permission.
	if _, err := g.Verify("stranger", path); !errors.Is(err, namespace.ErrDenied) {
		t.Errorf("stranger verify: %v", err)
	}
}
