// Package namespace implements the datagrid logical namespace: the
// location-independent view of collections, data objects, replicas,
// user-defined metadata and access controls that the paper calls "data
// virtualization".
//
// The namespace holds *names and records only* — logical paths, replica
// pointers into physical resources, attribute/value metadata and ACLs.
// Bytes live in vfs resources; the DGMS layer keeps the two consistent.
package namespace

import (
	"fmt"
	"strings"

	"datagridflow/internal/dgferr"
)

// Sentinel errors for namespace operations. Each wraps its dgferr class,
// so errors.Is works against both the package sentinel and the public
// taxonomy (datagridflow.ErrNotFound, ...).
var (
	// ErrNotFound reports a missing path.
	ErrNotFound = dgferr.Mark(dgferr.ErrNotFound, "namespace: not found")
	// ErrExists reports a name collision.
	ErrExists = dgferr.Mark(dgferr.ErrExists, "namespace: already exists")
	// ErrNotCollection reports an object used where a collection is needed.
	ErrNotCollection = dgferr.Mark(dgferr.ErrInvalid, "namespace: not a collection")
	// ErrNotObject reports a collection used where an object is needed.
	ErrNotObject = dgferr.Mark(dgferr.ErrInvalid, "namespace: not a data object")
	// ErrNotEmpty reports a non-recursive remove of a non-empty collection.
	ErrNotEmpty = dgferr.Mark(dgferr.ErrInvalid, "namespace: collection not empty")
	// ErrBadPath reports a malformed logical path.
	ErrBadPath = dgferr.Mark(dgferr.ErrInvalid, "namespace: bad path")
	// ErrDenied reports an access-control rejection.
	ErrDenied = dgferr.Mark(dgferr.ErrPermission, "namespace: permission denied")
)

// CleanPath normalizes a logical path: it must be absolute, components are
// separated by single slashes, "." and empty components collapse, and ".."
// is rejected (grid paths are not relative).
func CleanPath(p string) (string, error) {
	if p == "" || p[0] != '/' {
		return "", fmt.Errorf("%w: %q must be absolute", ErrBadPath, p)
	}
	parts := strings.Split(p, "/")
	out := make([]string, 0, len(parts))
	for _, part := range parts {
		switch part {
		case "", ".":
			continue
		case "..":
			return "", fmt.Errorf("%w: %q contains '..'", ErrBadPath, p)
		}
		out = append(out, part)
	}
	if len(out) == 0 {
		return "/", nil
	}
	return "/" + strings.Join(out, "/"), nil
}

// SplitPath returns the cleaned components of an absolute path; "/" yields
// an empty slice.
func SplitPath(p string) ([]string, error) {
	clean, err := CleanPath(p)
	if err != nil {
		return nil, err
	}
	if clean == "/" {
		return nil, nil
	}
	return strings.Split(clean[1:], "/"), nil
}

// Parent returns the parent path of p ("/" is its own parent).
func Parent(p string) string {
	clean, err := CleanPath(p)
	if err != nil || clean == "/" {
		return "/"
	}
	i := strings.LastIndexByte(clean, '/')
	if i == 0 {
		return "/"
	}
	return clean[:i]
}

// Base returns the last component of p ("" for the root).
func Base(p string) string {
	clean, err := CleanPath(p)
	if err != nil || clean == "/" {
		return ""
	}
	return clean[strings.LastIndexByte(clean, '/')+1:]
}

// Join concatenates path components under a base path.
func Join(base string, elems ...string) string {
	return base + "/" + strings.Join(elems, "/")
}
