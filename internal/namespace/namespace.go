package namespace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Replica records one physical copy of a logical object: which logical
// resource holds it and under which physical id, plus the fixity digest
// recorded when it was written.
type Replica struct {
	// Resource is the logical resource name holding the copy.
	Resource string
	// PhysicalID is the object id within that resource's store.
	PhysicalID string
	// Checksum is the MD5 recorded at write time ("" if never computed).
	Checksum string
	// StoredAt is when the replica was created (simulated time).
	StoredAt time.Time
}

// EntryKind distinguishes collections from data objects.
type EntryKind int

// Entry kinds.
const (
	KindCollection EntryKind = iota
	KindObject
)

// String returns "collection" or "object".
func (k EntryKind) String() string {
	if k == KindCollection {
		return "collection"
	}
	return "object"
}

// Entry is a read-only view of a namespace node, returned by lookups and
// listings. Maps and slices are copies; mutating them does not affect the
// namespace.
type Entry struct {
	Path     string
	Kind     EntryKind
	Owner    string
	Domain   string // owning administrative domain
	Size     int64  // objects only
	Created  time.Time
	Metadata map[string]string
	Replicas []Replica // objects only
}

type node struct {
	name     string
	kind     EntryKind
	owner    string
	domain   string
	size     int64
	created  time.Time
	meta     map[string]string
	replicas []Replica
	children map[string]*node // collections only
	acl      map[string]Perm  // explicit grants; inherited from ancestors
}

func (n *node) entry(path string) Entry {
	e := Entry{
		Path:    path,
		Kind:    n.kind,
		Owner:   n.owner,
		Domain:  n.domain,
		Size:    n.size,
		Created: n.created,
	}
	if len(n.meta) > 0 {
		e.Metadata = make(map[string]string, len(n.meta))
		for k, v := range n.meta {
			e.Metadata[k] = v
		}
	}
	if len(n.replicas) > 0 {
		e.Replicas = append([]Replica(nil), n.replicas...)
	}
	return e
}

// Namespace is the thread-safe logical namespace tree.
type Namespace struct {
	mu   sync.RWMutex
	root *node
}

// New returns a namespace containing only the root collection, owned by
// the given administrator.
func New(admin string) *Namespace {
	return &Namespace{root: &node{
		name:     "/",
		kind:     KindCollection,
		owner:    admin,
		children: make(map[string]*node),
		meta:     make(map[string]string),
		acl:      map[string]Perm{admin: PermOwn},
	}}
}

// resolve walks to the node at path. Caller must hold at least RLock.
func (ns *Namespace) resolve(path string) (*node, []*node, error) {
	parts, err := SplitPath(path)
	if err != nil {
		return nil, nil, err
	}
	cur := ns.root
	ancestors := []*node{cur}
	for _, part := range parts {
		if cur.kind != KindCollection {
			return nil, nil, fmt.Errorf("%w: %s", ErrNotCollection, path)
		}
		next, ok := cur.children[part]
		if !ok {
			return nil, nil, fmt.Errorf("%w: %s", ErrNotFound, path)
		}
		cur = next
		ancestors = append(ancestors, cur)
	}
	return cur, ancestors, nil
}

// MkCollection creates a collection at path; the parent must exist.
func (ns *Namespace) MkCollection(path, owner, domain string, now time.Time) error {
	clean, err := CleanPath(path)
	if err != nil {
		return err
	}
	if clean == "/" {
		return fmt.Errorf("%w: /", ErrExists)
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	parent, _, err := ns.resolve(Parent(clean))
	if err != nil {
		return err
	}
	if parent.kind != KindCollection {
		return fmt.Errorf("%w: %s", ErrNotCollection, Parent(clean))
	}
	name := Base(clean)
	if _, ok := parent.children[name]; ok {
		return fmt.Errorf("%w: %s", ErrExists, clean)
	}
	parent.children[name] = &node{
		name:     name,
		kind:     KindCollection,
		owner:    owner,
		domain:   domain,
		created:  now,
		children: make(map[string]*node),
		meta:     make(map[string]string),
	}
	return nil
}

// MkCollectionAll creates a collection and any missing ancestors, like
// `mkdir -p`. Existing collections along the way are left untouched.
func (ns *Namespace) MkCollectionAll(path, owner, domain string, now time.Time) error {
	parts, err := SplitPath(path)
	if err != nil {
		return err
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	cur := ns.root
	for _, part := range parts {
		if cur.kind != KindCollection {
			return fmt.Errorf("%w: %s", ErrNotCollection, part)
		}
		next, ok := cur.children[part]
		if !ok {
			next = &node{
				name:     part,
				kind:     KindCollection,
				owner:    owner,
				domain:   domain,
				created:  now,
				children: make(map[string]*node),
				meta:     make(map[string]string),
			}
			cur.children[part] = next
		}
		cur = next
	}
	if cur.kind != KindCollection {
		return fmt.Errorf("%w: %s", ErrNotCollection, path)
	}
	return nil
}

// CreateObject registers a logical data object. The parent collection must
// exist. The object starts with no replicas; the DGMS adds one per
// physical copy it writes.
func (ns *Namespace) CreateObject(path, owner, domain string, size int64, now time.Time) error {
	clean, err := CleanPath(path)
	if err != nil {
		return err
	}
	if clean == "/" {
		return fmt.Errorf("%w: cannot create object at /", ErrBadPath)
	}
	if size < 0 {
		return fmt.Errorf("%w: negative size", ErrBadPath)
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	parent, _, err := ns.resolve(Parent(clean))
	if err != nil {
		return err
	}
	if parent.kind != KindCollection {
		return fmt.Errorf("%w: %s", ErrNotCollection, Parent(clean))
	}
	name := Base(clean)
	if _, ok := parent.children[name]; ok {
		return fmt.Errorf("%w: %s", ErrExists, clean)
	}
	parent.children[name] = &node{
		name:    name,
		kind:    KindObject,
		owner:   owner,
		domain:  domain,
		size:    size,
		created: now,
		meta:    make(map[string]string),
	}
	return nil
}

// Lookup returns the entry at path.
func (ns *Namespace) Lookup(path string) (Entry, error) {
	clean, err := CleanPath(path)
	if err != nil {
		return Entry{}, err
	}
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	n, _, err := ns.resolve(clean)
	if err != nil {
		return Entry{}, err
	}
	return n.entry(clean), nil
}

// Exists reports whether path names a collection or object.
func (ns *Namespace) Exists(path string) bool {
	_, err := ns.Lookup(path)
	return err == nil
}

// List returns the entries directly inside the collection at path, sorted
// by name.
func (ns *Namespace) List(path string) ([]Entry, error) {
	clean, err := CleanPath(path)
	if err != nil {
		return nil, err
	}
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	n, _, err := ns.resolve(clean)
	if err != nil {
		return nil, err
	}
	if n.kind != KindCollection {
		return nil, fmt.Errorf("%w: %s", ErrNotCollection, clean)
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Entry, 0, len(names))
	base := clean
	if base == "/" {
		base = ""
	}
	for _, name := range names {
		out = append(out, n.children[name].entry(base+"/"+name))
	}
	return out, nil
}

// Walk visits every entry under root (depth-first, children in name
// order), calling fn with each. Returning a non-nil error from fn aborts
// the walk and is returned.
func (ns *Namespace) Walk(root string, fn func(Entry) error) error {
	clean, err := CleanPath(root)
	if err != nil {
		return err
	}
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	n, _, err := ns.resolve(clean)
	if err != nil {
		return err
	}
	return walkNode(n, clean, fn)
}

func walkNode(n *node, path string, fn func(Entry) error) error {
	if err := fn(n.entry(path)); err != nil {
		return err
	}
	if n.kind != KindCollection {
		return nil
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	base := path
	if base == "/" {
		base = ""
	}
	for _, name := range names {
		if err := walkNode(n.children[name], base+"/"+name, fn); err != nil {
			return err
		}
	}
	return nil
}

// Remove deletes the object at path. Collections need RemoveCollection.
func (ns *Namespace) Remove(path string) error {
	clean, err := CleanPath(path)
	if err != nil {
		return err
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	n, _, err := ns.resolve(clean)
	if err != nil {
		return err
	}
	if n.kind != KindObject {
		return fmt.Errorf("%w: %s", ErrNotObject, clean)
	}
	parent, _, err := ns.resolve(Parent(clean))
	if err != nil {
		return err
	}
	delete(parent.children, Base(clean))
	return nil
}

// RemoveCollection deletes the collection at path. Unless recursive is
// set, the collection must be empty.
func (ns *Namespace) RemoveCollection(path string, recursive bool) error {
	clean, err := CleanPath(path)
	if err != nil {
		return err
	}
	if clean == "/" {
		return fmt.Errorf("%w: cannot remove /", ErrBadPath)
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	n, _, err := ns.resolve(clean)
	if err != nil {
		return err
	}
	if n.kind != KindCollection {
		return fmt.Errorf("%w: %s", ErrNotCollection, clean)
	}
	if !recursive && len(n.children) > 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, clean)
	}
	parent, _, err := ns.resolve(Parent(clean))
	if err != nil {
		return err
	}
	delete(parent.children, Base(clean))
	return nil
}

// Move renames src to dst (both full paths). The destination parent must
// exist and dst must not. Replicas, metadata and ACLs travel with the
// node: this is the data-virtualization property — physical storage is
// untouched by logical reorganization.
func (ns *Namespace) Move(src, dst string) error {
	cs, err := CleanPath(src)
	if err != nil {
		return err
	}
	cd, err := CleanPath(dst)
	if err != nil {
		return err
	}
	if cs == "/" || cd == "/" {
		return fmt.Errorf("%w: cannot move the root", ErrBadPath)
	}
	if cd == cs || strings.HasPrefix(cd, cs+"/") {
		return fmt.Errorf("%w: cannot move %s into itself", ErrBadPath, cs)
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	n, _, err := ns.resolve(cs)
	if err != nil {
		return err
	}
	dstParent, _, err := ns.resolve(Parent(cd))
	if err != nil {
		return err
	}
	if dstParent.kind != KindCollection {
		return fmt.Errorf("%w: %s", ErrNotCollection, Parent(cd))
	}
	if _, ok := dstParent.children[Base(cd)]; ok {
		return fmt.Errorf("%w: %s", ErrExists, cd)
	}
	srcParent, _, err := ns.resolve(Parent(cs))
	if err != nil {
		return err
	}
	delete(srcParent.children, Base(cs))
	n.name = Base(cd)
	dstParent.children[n.name] = n
	return nil
}

// AddReplica appends a replica record to the object at path. Duplicate
// (resource) entries are rejected: the grid keeps at most one replica of
// an object per logical resource.
func (ns *Namespace) AddReplica(path string, rep Replica) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	n, err := ns.objectNode(path)
	if err != nil {
		return err
	}
	for _, r := range n.replicas {
		if r.Resource == rep.Resource {
			return fmt.Errorf("%w: replica of %s on %s", ErrExists, path, rep.Resource)
		}
	}
	n.replicas = append(n.replicas, rep)
	return nil
}

// RemoveReplica deletes the replica on the named resource.
func (ns *Namespace) RemoveReplica(path, resource string) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	n, err := ns.objectNode(path)
	if err != nil {
		return err
	}
	for i, r := range n.replicas {
		if r.Resource == resource {
			n.replicas = append(n.replicas[:i], n.replicas[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("%w: replica of %s on %s", ErrNotFound, path, resource)
}

// Replicas returns the replica records of the object at path.
func (ns *Namespace) Replicas(path string) ([]Replica, error) {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	n, err := ns.objectNode(path)
	if err != nil {
		return nil, err
	}
	return append([]Replica(nil), n.replicas...), nil
}

func (ns *Namespace) objectNode(path string) (*node, error) {
	clean, err := CleanPath(path)
	if err != nil {
		return nil, err
	}
	n, _, err := ns.resolve(clean)
	if err != nil {
		return nil, err
	}
	if n.kind != KindObject {
		return nil, fmt.Errorf("%w: %s", ErrNotObject, clean)
	}
	return n, nil
}

// SetMeta sets one user-defined metadata attribute on the entry at path.
func (ns *Namespace) SetMeta(path, attr, value string) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	n, _, err := ns.resolve(path)
	if err != nil {
		return err
	}
	n.meta[attr] = value
	return nil
}

// DeleteMeta removes a metadata attribute; removing a missing attribute
// is a no-op.
func (ns *Namespace) DeleteMeta(path, attr string) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	n, _, err := ns.resolve(path)
	if err != nil {
		return err
	}
	delete(n.meta, attr)
	return nil
}

// GetMeta returns one metadata attribute and whether it is set.
func (ns *Namespace) GetMeta(path, attr string) (string, bool, error) {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	n, _, err := ns.resolve(path)
	if err != nil {
		return "", false, err
	}
	v, ok := n.meta[attr]
	return v, ok, nil
}

// Stats summarizes the namespace.
type Stats struct {
	Collections int
	Objects     int
	TotalBytes  int64
	Replicas    int
}

// Stats walks the whole tree and returns aggregate counts.
func (ns *Namespace) Stats() Stats {
	var s Stats
	_ = ns.Walk("/", func(e Entry) error {
		if e.Kind == KindCollection {
			s.Collections++
		} else {
			s.Objects++
			s.TotalBytes += e.Size
			s.Replicas += len(e.Replicas)
		}
		return nil
	})
	return s
}
