package namespace

import "fmt"

// Perm is an access level on a namespace entry. Levels are ordered: a
// higher level implies all lower ones (Own ⊃ Write ⊃ Read).
type Perm int

// Access levels.
const (
	// PermNone grants nothing (used to revoke inherited access).
	PermNone Perm = iota
	// PermRead allows reading data and listing collections.
	PermRead
	// PermWrite allows creating, replicating and modifying entries.
	PermWrite
	// PermOwn allows everything including permission changes.
	PermOwn
)

// String returns the permission name.
func (p Perm) String() string {
	switch p {
	case PermNone:
		return "none"
	case PermRead:
		return "read"
	case PermWrite:
		return "write"
	case PermOwn:
		return "own"
	default:
		return fmt.Sprintf("perm(%d)", int(p))
	}
}

// Allows reports whether holding p satisfies a requirement of q.
func (p Perm) Allows(q Perm) bool { return p >= q }

// SetPermission grants user the given level on the entry at path. Grants
// are inherited by descendants unless a descendant carries its own entry
// for the same user (which may be PermNone, revoking access below).
func (ns *Namespace) SetPermission(path, user string, p Perm) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	n, _, err := ns.resolve(path)
	if err != nil {
		return err
	}
	if n.acl == nil {
		n.acl = make(map[string]Perm)
	}
	n.acl[user] = p
	return nil
}

// Wildcard is the ACL user entry matching every user; granting it makes
// an entry (and, via inheritance, its subtree) public at that level.
const Wildcard = "*"

// Permission returns the effective access level of user on path: the
// deepest explicit grant on the path from the root, or the entry's
// ownership. Owners of an entry always hold PermOwn on it. A grant to
// the Wildcard user applies to everyone, but a same-depth grant naming
// the user specifically takes precedence.
func (ns *Namespace) Permission(path, user string) (Perm, error) {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	n, ancestors, err := ns.resolve(path)
	if err != nil {
		return PermNone, err
	}
	if n.owner == user {
		return PermOwn, nil
	}
	eff := PermNone
	found := false
	for _, a := range ancestors {
		if a.acl == nil {
			continue
		}
		if p, ok := a.acl[user]; ok {
			eff = p // deepest explicit grant wins
			found = true
		} else if p, ok := a.acl[Wildcard]; ok {
			eff = p
			found = true
		}
	}
	if !found {
		return PermNone, nil
	}
	return eff, nil
}

// Check returns nil when user holds at least `need` on path, and a
// ErrDenied-wrapped error otherwise.
func (ns *Namespace) Check(path, user string, need Perm) error {
	p, err := ns.Permission(path, user)
	if err != nil {
		return err
	}
	if !p.Allows(need) {
		return fmt.Errorf("%w: %s needs %s on %s (has %s)", ErrDenied, user, need, path, p)
	}
	return nil
}
