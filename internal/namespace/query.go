package namespace

import (
	"fmt"
	"strconv"
	"strings"
)

// QueryOp is a comparison operator in a metadata query condition.
type QueryOp string

// Supported operators. Numeric comparisons apply when both sides parse as
// numbers; otherwise lexical string comparison is used.
const (
	OpEq       QueryOp = "="
	OpNe       QueryOp = "!="
	OpLt       QueryOp = "<"
	OpLe       QueryOp = "<="
	OpGt       QueryOp = ">"
	OpGe       QueryOp = ">="
	OpContains QueryOp = "contains"
	OpPrefix   QueryOp = "prefix"
	OpSuffix   QueryOp = "suffix"
	OpExists   QueryOp = "exists"
)

// Condition is one predicate over an entry. Attr may be a user-defined
// metadata attribute or one of the built-in pseudo-attributes:
// "name" (base name), "path", "owner", "domain", "size", "kind".
type Condition struct {
	Attr  string
	Op    QueryOp
	Value string
}

// Query is a conjunction of conditions, optionally restricted to a kind.
type Query struct {
	// Scope restricts the search to entries under this collection
	// (default "/").
	Scope string
	// Conditions must all hold (AND semantics, like SRB metadata queries).
	Conditions []Condition
	// ObjectsOnly skips collections when set.
	ObjectsOnly bool
	// Limit bounds the number of results (0 = unlimited).
	Limit int
}

func (c Condition) matches(e Entry) (bool, error) {
	var have string
	var ok bool
	switch c.Attr {
	case "name":
		have, ok = Base(e.Path), true
	case "path":
		have, ok = e.Path, true
	case "owner":
		have, ok = e.Owner, true
	case "domain":
		have, ok = e.Domain, true
	case "kind":
		have, ok = e.Kind.String(), true
	case "size":
		have, ok = strconv.FormatInt(e.Size, 10), true
	default:
		have, ok = e.Metadata[c.Attr]
	}
	if c.Op == OpExists {
		return ok, nil
	}
	if !ok {
		return false, nil
	}
	switch c.Op {
	case OpEq:
		return compareVals(have, c.Value) == 0, nil
	case OpNe:
		return compareVals(have, c.Value) != 0, nil
	case OpLt:
		return compareVals(have, c.Value) < 0, nil
	case OpLe:
		return compareVals(have, c.Value) <= 0, nil
	case OpGt:
		return compareVals(have, c.Value) > 0, nil
	case OpGe:
		return compareVals(have, c.Value) >= 0, nil
	case OpContains:
		return strings.Contains(have, c.Value), nil
	case OpPrefix:
		return strings.HasPrefix(have, c.Value), nil
	case OpSuffix:
		return strings.HasSuffix(have, c.Value), nil
	default:
		return false, fmt.Errorf("namespace: unknown query operator %q", c.Op)
	}
}

func compareVals(a, b string) int {
	fa, errA := strconv.ParseFloat(a, 64)
	fb, errB := strconv.ParseFloat(b, 64)
	if errA == nil && errB == nil {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a, b)
}

// Search evaluates q and returns matching entries in walk (name) order.
// This is the namespace analog of an SRB metadata query — the primitive
// that datagrid triggers and ILM policies select their working sets with.
func (ns *Namespace) Search(q Query) ([]Entry, error) {
	scope := q.Scope
	if scope == "" {
		scope = "/"
	}
	var out []Entry
	err := ns.Walk(scope, func(e Entry) error {
		if q.ObjectsOnly && e.Kind != KindObject {
			return nil
		}
		for _, c := range q.Conditions {
			ok, err := c.matches(e)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		out = append(out, e)
		if q.Limit > 0 && len(out) >= q.Limit {
			return errStopWalk
		}
		return nil
	})
	if err != nil && err != errStopWalk {
		return nil, err
	}
	return out, nil
}

// errStopWalk is a sentinel for early termination of Walk from Search.
var errStopWalk = fmt.Errorf("namespace: stop walk")
