package namespace

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"datagridflow/internal/sim"
)

func newNS(t *testing.T) *Namespace {
	t.Helper()
	ns := New("admin")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(ns.MkCollectionAll("/home/scec/runs", "scec-admin", "sdsc", sim.Epoch))
	must(ns.MkCollectionAll("/home/library", "librarian", "ucsd", sim.Epoch))
	must(ns.CreateObject("/home/scec/runs/wave1.dat", "scientist", "sdsc", 1<<20, sim.Epoch))
	must(ns.CreateObject("/home/scec/runs/wave2.dat", "scientist", "sdsc", 2<<20, sim.Epoch))
	must(ns.CreateObject("/home/library/book.pdf", "librarian", "ucsd", 4096, sim.Epoch))
	return ns
}

func TestCleanPath(t *testing.T) {
	good := map[string]string{
		"/":           "/",
		"/a":          "/a",
		"/a/b/c":      "/a/b/c",
		"/a//b/":      "/a/b",
		"/./a/./b":    "/a/b",
		"//":          "/",
		"/a/b/../c/x": "", // rejected below
	}
	for in, want := range good {
		got, err := CleanPath(in)
		if strings.Contains(in, "..") {
			if err == nil {
				t.Errorf("CleanPath(%q) should reject '..'", in)
			}
			continue
		}
		if err != nil || got != want {
			t.Errorf("CleanPath(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "relative", "a/b"} {
		if _, err := CleanPath(bad); !errors.Is(err, ErrBadPath) {
			t.Errorf("CleanPath(%q) = %v, want ErrBadPath", bad, err)
		}
	}
}

func TestPathHelpers(t *testing.T) {
	if Parent("/a/b/c") != "/a/b" || Parent("/a") != "/" || Parent("/") != "/" {
		t.Errorf("Parent wrong")
	}
	if Base("/a/b/c") != "c" || Base("/") != "" {
		t.Errorf("Base wrong")
	}
	if Join("/a", "b", "c") != "/a/b/c" {
		t.Errorf("Join wrong")
	}
	parts, err := SplitPath("/x/y")
	if err != nil || len(parts) != 2 || parts[0] != "x" {
		t.Errorf("SplitPath = %v, %v", parts, err)
	}
	parts, err = SplitPath("/")
	if err != nil || parts != nil {
		t.Errorf("SplitPath(/) = %v, %v", parts, err)
	}
}

func TestLookupAndList(t *testing.T) {
	ns := newNS(t)
	e, err := ns.Lookup("/home/scec/runs/wave1.dat")
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != KindObject || e.Size != 1<<20 || e.Owner != "scientist" || e.Domain != "sdsc" {
		t.Errorf("Lookup = %+v", e)
	}
	if !ns.Exists("/home/scec") || ns.Exists("/nope") {
		t.Errorf("Exists wrong")
	}
	list, err := ns.List("/home/scec/runs")
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].Path != "/home/scec/runs/wave1.dat" {
		t.Errorf("List = %+v", list)
	}
	if _, err := ns.List("/home/scec/runs/wave1.dat"); !errors.Is(err, ErrNotCollection) {
		t.Errorf("List on object: %v", err)
	}
	if _, err := ns.Lookup("/no/such"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Lookup missing: %v", err)
	}
	// Root listing works.
	rl, err := ns.List("/")
	if err != nil || len(rl) != 1 || rl[0].Path != "/home" {
		t.Errorf("List(/) = %+v, %v", rl, err)
	}
}

func TestCreateErrors(t *testing.T) {
	ns := newNS(t)
	if err := ns.MkCollection("/home/scec", "x", "d", sim.Epoch); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate collection: %v", err)
	}
	if err := ns.MkCollection("/", "x", "d", sim.Epoch); !errors.Is(err, ErrExists) {
		t.Errorf("mk /: %v", err)
	}
	if err := ns.MkCollection("/a/b/c", "x", "d", sim.Epoch); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing parent: %v", err)
	}
	if err := ns.CreateObject("/home/library/book.pdf", "x", "d", 1, sim.Epoch); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate object: %v", err)
	}
	if err := ns.CreateObject("/home/library/book.pdf/sub", "x", "d", 1, sim.Epoch); !errors.Is(err, ErrNotCollection) {
		t.Errorf("object as parent: %v", err)
	}
	if err := ns.CreateObject("/x", "u", "d", -5, sim.Epoch); !errors.Is(err, ErrBadPath) {
		t.Errorf("negative size: %v", err)
	}
	if err := ns.CreateObject("/", "u", "d", 5, sim.Epoch); !errors.Is(err, ErrBadPath) {
		t.Errorf("object at root: %v", err)
	}
	// MkCollectionAll through an object fails.
	if err := ns.MkCollectionAll("/home/library/book.pdf/deep", "x", "d", sim.Epoch); !errors.Is(err, ErrNotCollection) {
		t.Errorf("MkCollectionAll through object: %v", err)
	}
	// MkCollectionAll landing exactly on an object fails.
	if err := ns.MkCollectionAll("/home/library/book.pdf", "x", "d", sim.Epoch); !errors.Is(err, ErrNotCollection) {
		t.Errorf("MkCollectionAll onto object: %v", err)
	}
}

func TestRemove(t *testing.T) {
	ns := newNS(t)
	if err := ns.Remove("/home/scec/runs"); !errors.Is(err, ErrNotObject) {
		t.Errorf("Remove collection via Remove: %v", err)
	}
	if err := ns.Remove("/home/scec/runs/wave1.dat"); err != nil {
		t.Fatal(err)
	}
	if ns.Exists("/home/scec/runs/wave1.dat") {
		t.Errorf("object still exists after Remove")
	}
	if err := ns.RemoveCollection("/home/scec", false); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("non-empty non-recursive: %v", err)
	}
	if err := ns.RemoveCollection("/home/scec", true); err != nil {
		t.Fatal(err)
	}
	if ns.Exists("/home/scec") {
		t.Errorf("collection still exists")
	}
	if err := ns.RemoveCollection("/", true); !errors.Is(err, ErrBadPath) {
		t.Errorf("remove root: %v", err)
	}
	if err := ns.RemoveCollection("/home/library/book.pdf", false); !errors.Is(err, ErrNotCollection) {
		t.Errorf("RemoveCollection on object: %v", err)
	}
}

func TestMove(t *testing.T) {
	ns := newNS(t)
	if err := ns.AddReplica("/home/scec/runs/wave1.dat", Replica{Resource: "disk1", PhysicalID: "p1"}); err != nil {
		t.Fatal(err)
	}
	if err := ns.Move("/home/scec/runs/wave1.dat", "/home/library/wave1.dat"); err != nil {
		t.Fatal(err)
	}
	if ns.Exists("/home/scec/runs/wave1.dat") {
		t.Errorf("source still present")
	}
	reps, err := ns.Replicas("/home/library/wave1.dat")
	if err != nil || len(reps) != 1 || reps[0].Resource != "disk1" {
		t.Errorf("replicas did not travel: %v, %v", reps, err)
	}
	// Moving a collection into itself is rejected.
	if err := ns.Move("/home", "/home/sub"); !errors.Is(err, ErrBadPath) {
		t.Errorf("move into self: %v", err)
	}
	if err := ns.Move("/home/library", "/home/scec/runs/wave2.dat/x"); !errors.Is(err, ErrNotCollection) {
		t.Errorf("move under object: %v", err)
	}
	if err := ns.Move("/home/library/book.pdf", "/home/library/wave1.dat"); !errors.Is(err, ErrExists) {
		t.Errorf("move onto existing: %v", err)
	}
	// Destination under a missing collection fails.
	if err := ns.Move("/home/library/book.pdf", "/nonexistent/book.pdf"); !errors.Is(err, ErrNotFound) {
		t.Errorf("move to missing parent: %v", err)
	}
}

func TestMoveCollectionSubtree(t *testing.T) {
	ns := newNS(t)
	if err := ns.Move("/home/scec", "/home/scec2"); err != nil {
		t.Fatal(err)
	}
	if !ns.Exists("/home/scec2/runs/wave1.dat") {
		t.Errorf("subtree lost in move")
	}
}

func TestReplicas(t *testing.T) {
	ns := newNS(t)
	path := "/home/scec/runs/wave1.dat"
	if err := ns.AddReplica(path, Replica{Resource: "disk1", PhysicalID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := ns.AddReplica(path, Replica{Resource: "tape1", PhysicalID: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := ns.AddReplica(path, Replica{Resource: "disk1", PhysicalID: "c"}); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate resource replica: %v", err)
	}
	reps, _ := ns.Replicas(path)
	if len(reps) != 2 {
		t.Fatalf("Replicas = %v", reps)
	}
	if err := ns.RemoveReplica(path, "disk1"); err != nil {
		t.Fatal(err)
	}
	if err := ns.RemoveReplica(path, "disk1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("remove missing replica: %v", err)
	}
	reps, _ = ns.Replicas(path)
	if len(reps) != 1 || reps[0].Resource != "tape1" {
		t.Errorf("after remove: %v", reps)
	}
	if _, err := ns.Replicas("/home/scec/runs"); !errors.Is(err, ErrNotObject) {
		t.Errorf("Replicas on collection: %v", err)
	}
	if err := ns.AddReplica("/home/scec/runs", Replica{Resource: "r"}); !errors.Is(err, ErrNotObject) {
		t.Errorf("AddReplica on collection: %v", err)
	}
}

func TestMetadata(t *testing.T) {
	ns := newNS(t)
	path := "/home/scec/runs/wave1.dat"
	if err := ns.SetMeta(path, "experiment", "TeraShake"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := ns.GetMeta(path, "experiment")
	if err != nil || !ok || v != "TeraShake" {
		t.Errorf("GetMeta = %q, %v, %v", v, ok, err)
	}
	if err := ns.DeleteMeta(path, "experiment"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := ns.GetMeta(path, "experiment"); ok {
		t.Errorf("meta survived delete")
	}
	if err := ns.DeleteMeta(path, "never-set"); err != nil {
		t.Errorf("deleting unset meta should be a no-op: %v", err)
	}
	if err := ns.SetMeta("/missing", "a", "b"); !errors.Is(err, ErrNotFound) {
		t.Errorf("SetMeta missing: %v", err)
	}
	// Entry views must be copies.
	_ = ns.SetMeta(path, "k", "v")
	e, _ := ns.Lookup(path)
	e.Metadata["k"] = "tampered"
	e2, _ := ns.Lookup(path)
	if e2.Metadata["k"] != "v" {
		t.Errorf("Lookup leaked internal map")
	}
}

func TestWalk(t *testing.T) {
	ns := newNS(t)
	var paths []string
	err := ns.Walk("/", func(e Entry) error {
		paths = append(paths, e.Path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/", "/home", "/home/library", "/home/library/book.pdf",
		"/home/scec", "/home/scec/runs", "/home/scec/runs/wave1.dat", "/home/scec/runs/wave2.dat"}
	if strings.Join(paths, ";") != strings.Join(want, ";") {
		t.Errorf("Walk order:\n got %v\nwant %v", paths, want)
	}
	// Abort propagates.
	sentinel := errors.New("stop")
	err = ns.Walk("/", func(e Entry) error { return sentinel })
	if err != sentinel {
		t.Errorf("Walk abort = %v", err)
	}
}

func TestStats(t *testing.T) {
	ns := newNS(t)
	_ = ns.AddReplica("/home/library/book.pdf", Replica{Resource: "r1"})
	s := ns.Stats()
	if s.Collections != 5 || s.Objects != 3 || s.Replicas != 1 {
		t.Errorf("Stats = %+v", s)
	}
	if s.TotalBytes != 1<<20+2<<20+4096 {
		t.Errorf("TotalBytes = %d", s.TotalBytes)
	}
}

func TestPermissions(t *testing.T) {
	ns := newNS(t)
	// Owner of an entry always has own.
	if err := ns.Check("/home/scec/runs/wave1.dat", "scientist", PermOwn); err != nil {
		t.Errorf("owner check: %v", err)
	}
	// Stranger has nothing.
	if err := ns.Check("/home/scec/runs/wave1.dat", "stranger", PermRead); !errors.Is(err, ErrDenied) {
		t.Errorf("stranger: %v", err)
	}
	// Grant read on an ancestor; inherited below.
	if err := ns.SetPermission("/home/scec", "collab", PermRead); err != nil {
		t.Fatal(err)
	}
	if err := ns.Check("/home/scec/runs/wave2.dat", "collab", PermRead); err != nil {
		t.Errorf("inherited read: %v", err)
	}
	if err := ns.Check("/home/scec/runs/wave2.dat", "collab", PermWrite); !errors.Is(err, ErrDenied) {
		t.Errorf("read does not imply write: %v", err)
	}
	// Deeper explicit revoke wins over inherited grant.
	if err := ns.SetPermission("/home/scec/runs", "collab", PermNone); err != nil {
		t.Fatal(err)
	}
	if err := ns.Check("/home/scec/runs/wave2.dat", "collab", PermRead); !errors.Is(err, ErrDenied) {
		t.Errorf("revoke should win: %v", err)
	}
	// But sibling paths unaffected.
	if err := ns.Check("/home/scec", "collab", PermRead); err != nil {
		t.Errorf("sibling read lost: %v", err)
	}
	// Admin owns the root and so the root itself.
	if p, _ := ns.Permission("/", "admin"); p != PermOwn {
		t.Errorf("admin root perm = %v", p)
	}
	// Perm helpers.
	if !PermOwn.Allows(PermRead) || PermRead.Allows(PermWrite) {
		t.Errorf("Allows ordering wrong")
	}
	for _, p := range []Perm{PermNone, PermRead, PermWrite, PermOwn, Perm(9)} {
		if p.String() == "" {
			t.Errorf("empty perm name")
		}
	}
}

func TestSearch(t *testing.T) {
	ns := newNS(t)
	_ = ns.SetMeta("/home/scec/runs/wave1.dat", "stage", "raw")
	_ = ns.SetMeta("/home/scec/runs/wave2.dat", "stage", "processed")

	got, err := ns.Search(Query{Conditions: []Condition{{Attr: "stage", Op: OpEq, Value: "raw"}}})
	if err != nil || len(got) != 1 || got[0].Path != "/home/scec/runs/wave1.dat" {
		t.Errorf("Search stage=raw: %v, %v", got, err)
	}
	got, _ = ns.Search(Query{ObjectsOnly: true, Conditions: []Condition{{Attr: "size", Op: OpGt, Value: "1000000"}}})
	if len(got) != 2 {
		t.Errorf("size query: %v", got)
	}
	got, _ = ns.Search(Query{ObjectsOnly: true, Conditions: []Condition{{Attr: "name", Op: OpSuffix, Value: ".pdf"}}})
	if len(got) != 1 || got[0].Path != "/home/library/book.pdf" {
		t.Errorf("suffix query: %v", got)
	}
	got, _ = ns.Search(Query{Scope: "/home/scec", ObjectsOnly: true})
	if len(got) != 2 {
		t.Errorf("scoped query: %v", got)
	}
	got, _ = ns.Search(Query{ObjectsOnly: true, Limit: 1})
	if len(got) != 1 {
		t.Errorf("limit ignored: %v", got)
	}
	got, _ = ns.Search(Query{Conditions: []Condition{{Attr: "stage", Op: OpExists}}})
	if len(got) != 2 {
		t.Errorf("exists query: %v", got)
	}
	got, _ = ns.Search(Query{Conditions: []Condition{{Attr: "owner", Op: OpEq, Value: "librarian"}, {Attr: "kind", Op: OpEq, Value: "object"}}})
	if len(got) != 1 {
		t.Errorf("AND query: %v", got)
	}
	if _, err := ns.Search(Query{Conditions: []Condition{{Attr: "name", Op: "bogus"}}}); err == nil {
		t.Errorf("bogus operator accepted")
	}
	if _, err := ns.Search(Query{Scope: "/missing"}); !errors.Is(err, ErrNotFound) {
		t.Errorf("bad scope: %v", err)
	}
	// Prefix & contains & ne & le/ge/lt coverage.
	ops := []Condition{
		{Attr: "path", Op: OpPrefix, Value: "/home/scec"},
		{Attr: "path", Op: OpContains, Value: "runs"},
		{Attr: "name", Op: OpNe, Value: "wave1.dat"},
		{Attr: "size", Op: OpGe, Value: "2097152"},
		{Attr: "size", Op: OpLe, Value: "2097152"},
	}
	got, err = ns.Search(Query{ObjectsOnly: true, Conditions: ops})
	if err != nil || len(got) != 1 || got[0].Path != "/home/scec/runs/wave2.dat" {
		t.Errorf("compound query: %v, %v", got, err)
	}
	got, _ = ns.Search(Query{ObjectsOnly: true, Conditions: []Condition{{Attr: "size", Op: OpLt, Value: "5000"}}})
	if len(got) != 1 {
		t.Errorf("lt query: %v", got)
	}
}

// Property: MkCollectionAll is idempotent and Lookup finds every prefix.
func TestQuickMkAll(t *testing.T) {
	f := func(raw []byte) bool {
		// Build a random but valid path of 1-6 short components.
		if len(raw) == 0 {
			return true
		}
		var parts []string
		for i, b := range raw {
			if i >= 6 {
				break
			}
			parts = append(parts, fmt.Sprintf("c%d", b%16))
		}
		p := "/" + strings.Join(parts, "/")
		ns := New("admin")
		if err := ns.MkCollectionAll(p, "u", "d", sim.Epoch); err != nil {
			return false
		}
		if err := ns.MkCollectionAll(p, "u", "d", sim.Epoch); err != nil {
			return false // idempotent
		}
		cur := ""
		for _, part := range parts {
			cur += "/" + part
			if !ns.Exists(cur) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: CleanPath is idempotent.
func TestQuickCleanIdempotent(t *testing.T) {
	f := func(s string) bool {
		p, err := CleanPath("/" + s)
		if err != nil {
			return true // rejected inputs are fine
		}
		p2, err := CleanPath(p)
		return err == nil && p2 == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkLookupDeep(b *testing.B) {
	ns := New("admin")
	path := "/a/b/c/d/e/f/g/h"
	if err := ns.MkCollectionAll(path, "u", "d", sim.Epoch); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ns.Lookup(path); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchMeta(b *testing.B) {
	ns := New("admin")
	if err := ns.MkCollectionAll("/data", "u", "d", sim.Epoch); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		p := fmt.Sprintf("/data/f%04d", i)
		if err := ns.CreateObject(p, "u", "d", int64(i), sim.Epoch); err != nil {
			b.Fatal(err)
		}
		if i%10 == 0 {
			_ = ns.SetMeta(p, "hot", "true")
		}
	}
	q := Query{ObjectsOnly: true, Conditions: []Condition{{Attr: "hot", Op: OpEq, Value: "true"}}}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		got, err := ns.Search(q)
		if err != nil || len(got) != 100 {
			b.Fatalf("got %d, %v", len(got), err)
		}
	}
}

func TestWildcardPermission(t *testing.T) {
	ns := newNS(t)
	if err := ns.SetPermission("/home/library", Wildcard, PermRead); err != nil {
		t.Fatal(err)
	}
	if err := ns.Check("/home/library/book.pdf", "anyone-at-all", PermRead); err != nil {
		t.Errorf("wildcard read: %v", err)
	}
	if err := ns.Check("/home/library/book.pdf", "anyone-at-all", PermWrite); !errors.Is(err, ErrDenied) {
		t.Errorf("wildcard should not grant write: %v", err)
	}
	// A specific same-depth grant beats the wildcard.
	if err := ns.SetPermission("/home/library", "vip", PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := ns.Check("/home/library/book.pdf", "vip", PermWrite); err != nil {
		t.Errorf("specific grant overridden by wildcard: %v", err)
	}
	// A deeper wildcard revoke closes the subtree to strangers.
	if err := ns.SetPermission("/home/library/book.pdf", Wildcard, PermNone); err != nil {
		t.Fatal(err)
	}
	if err := ns.Check("/home/library/book.pdf", "anyone-at-all", PermRead); !errors.Is(err, ErrDenied) {
		t.Errorf("deep wildcard revoke ignored: %v", err)
	}
}
