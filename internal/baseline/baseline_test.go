package baseline

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"datagridflow/internal/dgl"
	"datagridflow/internal/dgms"
	"datagridflow/internal/expr"
	"datagridflow/internal/ilm"
	"datagridflow/internal/matrix"
	"datagridflow/internal/namespace"
	"datagridflow/internal/vfs"
)

func newGrid(t testing.TB) *dgms.Grid {
	t.Helper()
	g := dgms.New(dgms.Options{})
	for _, r := range []*vfs.Resource{
		vfs.New("disk", "sdsc", vfs.Disk, 0),
		vfs.New("tape", "archive", vfs.Archive, 0),
	} {
		if err := g.RegisterResource(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.CreateCollectionAll(g.Admin(), "/grid"); err != nil {
		t.Fatal(err)
	}
	if err := g.Namespace().SetPermission("/grid", "user", namespace.PermWrite); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCronScriptRun(t *testing.T) {
	g := newGrid(t)
	var order []string
	s := &CronScript{Name: "nightly", Ops: []ScriptOp{
		func(g *dgms.Grid) error { order = append(order, "a"); return nil },
		func(g *dgms.Grid) error { order = append(order, "b"); return nil },
	}}
	if err := s.Run(g); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[a b]" || s.RunsSucceeded != 1 || s.OpsExecuted != 2 {
		t.Errorf("order=%v stats=%+v", order, s)
	}
}

func TestCronScriptAbortsAndReruns(t *testing.T) {
	g := newGrid(t)
	failures := 2
	executed := map[string]int{}
	s := &CronScript{Name: "flaky", Ops: []ScriptOp{
		func(g *dgms.Grid) error { executed["setup"]++; return nil },
		func(g *dgms.Grid) error {
			executed["transfer"]++
			if failures > 0 {
				failures--
				return errors.New("network down")
			}
			return nil
		},
		func(g *dgms.Grid) error { executed["cleanup"]++; return nil },
	}}
	if err := s.RunUntilSuccess(g, time.Hour, 10); err != nil {
		t.Fatal(err)
	}
	// The defining inefficiency: setup re-ran on every attempt.
	if executed["setup"] != 3 || executed["transfer"] != 3 || executed["cleanup"] != 1 {
		t.Errorf("re-execution counts = %v", executed)
	}
	if s.RunsAttempted != 3 || s.RunsSucceeded != 1 {
		t.Errorf("stats = %+v", s)
	}
	// Never-succeeding script gives up after maxRuns.
	bad := &CronScript{Name: "doomed", Ops: []ScriptOp{
		func(g *dgms.Grid) error { return errors.New("always") },
	}}
	if err := bad.RunUntilSuccess(g, time.Minute, 3); err == nil {
		t.Errorf("doomed script succeeded")
	}
	if bad.RunsAttempted != 3 {
		t.Errorf("attempts = %d", bad.RunsAttempted)
	}
}

func TestCronScriptWindow(t *testing.T) {
	g := newGrid(t)
	// Window opens at 20:00; clock starts at midnight... sim.Epoch is
	// 00:00, which is inside a 20→6 window. Use a day window instead.
	s := &CronScript{
		Name:   "windowed",
		Window: ilm.Window{StartHour: 9, EndHour: 17},
		Ops:    []ScriptOp{func(g *dgms.Grid) error { return nil }},
	}
	start := g.Clock().Now() // 00:00 UTC
	if err := s.RunUntilSuccess(g, time.Hour, 5); err != nil {
		t.Fatal(err)
	}
	ranAt := g.Clock().Now()
	if ranAt.Sub(start) < 9*time.Hour {
		t.Errorf("script ran outside the window at %v", ranAt)
	}
}

func TestClientEngineRunsFlows(t *testing.T) {
	g := newGrid(t)
	c := NewClientEngine(g, "user")
	flow := dgl.NewFlow("pipeline").
		Var("base", "/grid/data").
		SubFlow(dgl.NewFlow("setup").
			Step("mk", dgl.Op(dgl.OpMakeCollection, map[string]string{"path": "$base"}))).
		SubFlow(dgl.NewFlow("load").ForEachIn("f", "a,b,c").
			Step("ingest", dgl.Op(dgl.OpIngest, map[string]string{
				"path": "$base/$f", "size": "100", "resource": "disk",
			}))).
		SubFlow(dgl.NewFlow("protect").Parallel().
			Step("rep-a", dgl.Op(dgl.OpReplicate, map[string]string{"path": "$base/a", "to": "tape"})).
			Step("rep-b", dgl.Op(dgl.OpReplicate, map[string]string{"path": "$base/b", "to": "tape"}))).Flow()
	if err := c.Run(flow); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/grid/data/a", "/grid/data/b", "/grid/data/c"} {
		if !g.Namespace().Exists(p) {
			t.Errorf("%s missing", p)
		}
	}
	reps, _ := g.Namespace().Replicas("/grid/data/a")
	if len(reps) != 2 {
		t.Errorf("replicas = %d", len(reps))
	}
	if c.StepsExecuted != 6 {
		t.Errorf("StepsExecuted = %d", c.StepsExecuted)
	}
}

func TestClientEngineWhileAndVars(t *testing.T) {
	g := newGrid(t)
	c := NewClientEngine(g, "user")
	// The client engine supports literal setVariable only; drive the
	// loop with an inline count instead.
	flow := dgl.NewFlow("loop").
		SubFlow(dgl.NewFlow("body").Repeat("i", 3).
			Step("touch", dgl.Op(dgl.OpMakeCollection, map[string]string{"path": "/grid/it$i"}))).Flow()
	if err := c.Run(flow); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !g.Namespace().Exists(fmt.Sprintf("/grid/it%d", i)) {
			t.Errorf("iteration %d missing", i)
		}
	}
}

func TestClientEngineCrashLosesState(t *testing.T) {
	g := newGrid(t)
	c := NewClientEngine(g, "user")
	b := dgl.NewFlow("job")
	for i := 0; i < 10; i++ {
		b.Step(fmt.Sprintf("s%d", i), dgl.Op(dgl.OpIngest, map[string]string{
			"path": fmt.Sprintf("/grid/f%d", i), "size": "10", "resource": "disk",
		}))
	}
	flow := b.Flow()
	c.CrashAfter = 4
	if err := c.Run(flow); !errors.Is(err, ErrClientCrashed) {
		t.Fatalf("crash = %v", err)
	}
	firstRun := c.StepsExecuted
	if firstRun != 5 { // 4 completed + the fatal 5th attempt
		t.Errorf("steps before crash = %d", firstRun)
	}
	// Recovery: a fresh run must re-attempt everything (state was only in
	// the dead client). Completed ingests surface as "already exists" and
	// are tolerated, but they still cost a step execution each.
	c.CrashAfter = 0
	if err := c.Run(flow); err != nil {
		t.Fatal(err)
	}
	total := c.StepsExecuted
	if total != firstRun+10 {
		t.Errorf("recovery executed %d steps, want full re-run (%d)", total-firstRun, 10)
	}
	for i := 0; i < 10; i++ {
		if !g.Namespace().Exists(fmt.Sprintf("/grid/f%d", i)) {
			t.Errorf("f%d missing after recovery", i)
		}
	}
}

// TestServerVsClientRecovery contrasts the matrix engine's checkpointed
// restart with the client engine's from-scratch re-run on the same
// document — the E10 comparison in miniature.
func TestServerVsClientRecovery(t *testing.T) {
	mkFlow := func(prefix string, n int) dgl.Flow {
		b := dgl.NewFlow("job")
		for i := 0; i < n; i++ {
			b.Step(fmt.Sprintf("s%d", i), dgl.Op(dgl.OpIngest, map[string]string{
				"path": fmt.Sprintf("%s/f%d", prefix, i), "size": "10", "resource": "disk",
			}))
		}
		return b.Flow()
	}
	// Server side: fail step 5 once, restart skips 0-4.
	g1 := newGrid(t)
	e := matrix.NewEngine(g1)
	attempted := 0
	shouldFail := true
	e.RegisterOp("maybe", func(c *matrix.OpContext) error {
		attempted++
		if shouldFail {
			return errors.New("outage")
		}
		return nil
	})
	sb := dgl.NewFlow("job")
	for i := 0; i < 5; i++ {
		sb.Step(fmt.Sprintf("s%d", i), dgl.Op(dgl.OpIngest, map[string]string{
			"path": fmt.Sprintf("/grid/s/f%d", i), "size": "10", "resource": "disk",
		}))
	}
	sb.Step("gate", dgl.Op("maybe", nil))
	if err := g1.CreateCollectionAll(g1.Admin(), "/grid/s"); err != nil {
		t.Fatal(err)
	}
	ex, err := e.Run("user", sb.Flow())
	if err != nil {
		t.Fatal(err)
	}
	_ = ex.Wait()
	shouldFail = false
	ex2, err := e.Restart(ex.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex2.Wait(); err != nil {
		t.Fatal(err)
	}
	serverRedundant := 0 // ingest steps re-executed by the server engine
	st := ex2.Status(true)
	for _, child := range st.Children {
		if child.Kind == "step" && child.State == "succeeded" && child.Name != "gate" {
			serverRedundant++
		}
	}
	// Client side: crash after 5 of 10 steps, full re-run.
	g2 := newGrid(t)
	c := NewClientEngine(g2, "user")
	if err := g2.CreateCollectionAll(g2.Admin(), "/grid/c"); err != nil {
		t.Fatal(err)
	}
	flow := mkFlow("/grid/c", 10)
	c.CrashAfter = 5
	_ = c.Run(flow)
	c.CrashAfter = 0
	if err := c.Run(flow); err != nil {
		t.Fatal(err)
	}
	clientRedundant := c.StepsExecuted - 10 - 1 // total minus useful minus the crash attempt
	if serverRedundant != 0 {
		t.Errorf("server re-executed %d completed steps", serverRedundant)
	}
	if clientRedundant <= 0 {
		t.Errorf("client redundant work = %d, expected > 0", clientRedundant)
	}
}

func TestClientEngineUnsupported(t *testing.T) {
	g := newGrid(t)
	c := NewClientEngine(g, "user")
	sw := dgl.NewFlow("sw").SwitchOn("'x'").Step("s", dgl.Op(dgl.OpNoop, nil)).Flow()
	if err := c.Run(sw); err == nil {
		t.Errorf("switch should be unsupported client-side")
	}
	q := dgl.NewFlow("q").ForEachQuery("p", dgl.NSQuery{Scope: "/grid"}).
		Step("s", dgl.Op(dgl.OpNoop, nil)).Flow()
	if err := c.Run(q); err == nil {
		t.Errorf("query iteration should be unsupported client-side")
	}
	bad := dgl.NewFlow("b").Step("s", dgl.Op("mystery", nil)).Flow()
	if err := c.Run(bad); err == nil {
		t.Errorf("unknown op accepted")
	}
	failFlow := dgl.NewFlow("f").Step("s", dgl.Op(dgl.OpFail, nil)).Flow()
	if err := c.Run(failFlow); err == nil {
		t.Errorf("fail op succeeded")
	}
	// onError=continue tolerated.
	contFlow := dgl.NewFlow("f").
		StepWith(dgl.Step{Name: "s", OnError: dgl.OnErrorContinue, Operation: dgl.Operation{Type: dgl.OpFail}}).
		Step("after", dgl.Op(dgl.OpNoop, nil)).Flow()
	if err := c.Run(contFlow); err != nil {
		t.Errorf("continue policy: %v", err)
	}
}

func TestClientEngineOps(t *testing.T) {
	g := newGrid(t)
	c := NewClientEngine(g, "user")
	flow := dgl.NewFlow("all").
		Step("mk", dgl.Op(dgl.OpMakeCollection, map[string]string{"path": "/grid/x"})).
		Step("ingest", dgl.Op(dgl.OpIngest, map[string]string{"path": "/grid/x/a", "size": "64", "resource": "disk"})).
		Step("meta", dgl.Op(dgl.OpSetMeta, map[string]string{"path": "/grid/x/a", "attr": "k", "value": "v"})).
		Step("rep", dgl.Op(dgl.OpReplicate, map[string]string{"path": "/grid/x/a", "to": "tape"})).
		Step("verify", dgl.Op(dgl.OpVerify, map[string]string{"path": "/grid/x/a"})).
		Step("trim", dgl.Op(dgl.OpTrim, map[string]string{"path": "/grid/x/a", "resource": "tape"})).
		Step("mv", dgl.Op(dgl.OpMove, map[string]string{"src": "/grid/x/a", "dst": "/grid/x/b"})).
		Step("exec", dgl.Op(dgl.OpExec, map[string]string{"command": "c", "cpuSeconds": "2"})).
		Step("sleep", dgl.Op(dgl.OpSleep, map[string]string{"duration": "1s"})).
		Step("del", dgl.Op(dgl.OpDelete, map[string]string{"path": "/grid/x/b"})).Flow()
	if err := c.Run(flow); err != nil {
		t.Fatal(err)
	}
	if g.Namespace().Exists("/grid/x/b") {
		t.Errorf("delete failed")
	}
	if g.Meter().Busy("client-compute") != 2*time.Second {
		t.Errorf("exec not charged")
	}
}

func TestClientEngineWhileLoop(t *testing.T) {
	g := newGrid(t)
	c := NewClientEngine(g, "user")
	flow := dgl.NewFlow("w").
		Var("n", "0").
		SubFlow(dgl.NewFlow("body").WhileLoop("$n < 3").
			Step("mk", dgl.Op(dgl.OpMakeCollection, map[string]string{"path": "/grid/w$n"})).
			Step("inc", dgl.Op(dgl.OpSetVariable, map[string]string{"name": "n", "value": "x"}))).Flow()
	// The client engine's setVariable is literal-only, so drive the loop
	// break by overwriting n with a non-numeric value... which makes
	// "$n < 3" false on the second check ("x" vs numeric compare is
	// lexical: "x" > "3"). The loop runs once.
	if err := c.Run(flow); err != nil {
		t.Fatal(err)
	}
	if !g.Namespace().Exists("/grid/w0") {
		t.Errorf("first iteration missing")
	}
	if g.Namespace().Exists("/grid/w1") {
		t.Errorf("loop did not stop")
	}
	// Condition errors propagate.
	bad := dgl.NewFlow("w").Flow()
	bad.Logic.Control = dgl.While
	bad.Logic.Condition = "1/0 > 0"
	bad.Steps = []dgl.Step{{Name: "s", Operation: dgl.Operation{Type: dgl.OpNoop}}}
	if err := c.Run(bad); err == nil {
		t.Errorf("condition error swallowed")
	}
	// Variable interpolation errors propagate.
	badVar := dgl.NewFlow("v").Var("x", "${unterminated").Step("s", dgl.Op(dgl.OpNoop, nil)).Flow()
	if err := c.Run(badVar); err == nil {
		t.Errorf("bad variable accepted")
	}
	// forEach without iterate.
	noIter := dgl.NewFlow("fe").Flow()
	noIter.Logic.Control = dgl.ForEach
	noIter.Steps = []dgl.Step{{Name: "s", Operation: dgl.Operation{Type: dgl.OpNoop}}}
	if err := c.Run(noIter); err == nil {
		t.Errorf("forEach without iterate accepted")
	}
	// setVariable without name.
	noName := dgl.NewFlow("sv").Step("s", dgl.Op(dgl.OpSetVariable, map[string]string{"value": "1"})).Flow()
	if err := c.Run(noName); err == nil {
		t.Errorf("setVariable without name accepted")
	}
	// Bad sleep duration.
	badSleep := dgl.NewFlow("sl").Step("s", dgl.Op(dgl.OpSleep, map[string]string{"duration": "zz"})).Flow()
	if err := c.Run(badSleep); err == nil {
		t.Errorf("bad sleep accepted")
	}
}

func TestScopeEnvSet(t *testing.T) {
	outer := NewScopeEnv(nil)
	outer.vars["a"] = expr.Int(1)
	inner := NewScopeEnv(outer)
	inner.Set("a", expr.Int(5)) // updates outer binding
	if v, _ := outer.Lookup("a"); !v.Equal(expr.Int(5)) {
		t.Errorf("Set missed declaring scope")
	}
	inner.Set("fresh", expr.Int(7)) // declares locally
	if _, ok := outer.Lookup("fresh"); ok {
		t.Errorf("local binding leaked")
	}
	if v, ok := inner.Lookup("fresh"); !ok || !v.Equal(expr.Int(7)) {
		t.Errorf("local binding lost")
	}
}

func TestSplitListAndTrim(t *testing.T) {
	got := splitList(" a, b ,, c\t,")
	if fmt.Sprint(got) != "[a b c]" {
		t.Errorf("splitList = %v", got)
	}
	if trimSpace("  ") != "" || trimSpace("\tx ") != "x" || trimSpace("") != "" {
		t.Errorf("trimSpace wrong")
	}
}
