// Package baseline implements the two comparators the paper itself
// names, with exactly the limitations it ascribes to them:
//
//   - CronScript (§2.1: "some simple datagrid ILM processes can be
//     implemented using simple scripts and cron jobs"): a hard-wired
//     sequential script run on a schedule. It has no checkpointing — a
//     failure aborts the run and the next cron slot re-runs *everything*
//     — no mid-run status, and no provenance beyond an exit code.
//
//   - ClientEngine (§5: "GridAnt is a client-side workflow engine ...
//     the state information of the workflow is managed at the client
//     side"): a DGL interpreter whose entire execution state lives in
//     the client process. If the client dies, the state dies with it;
//     recovery is a from-scratch re-run that re-attempts every step.
//
// Experiments E6 and E10 quantify these against the matrix engine.
package baseline

import (
	"errors"
	"fmt"
	"time"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/dgl"
	"datagridflow/internal/dgms"
	"datagridflow/internal/expr"
	"datagridflow/internal/ilm"
)

// ScriptOp is one hard-wired step of a cron script.
type ScriptOp func(g *dgms.Grid) error

// CronScript is a sequential script run from cron. It aborts on the
// first error (shell `set -e`) and keeps no state between runs.
type CronScript struct {
	Name string
	Ops  []ScriptOp

	// Window gates runs (the admin schedules cron for the night shift).
	Window ilm.Window

	// RunsAttempted, RunsSucceeded and OpsExecuted count activity across
	// all runs, including every redundantly re-executed op.
	RunsAttempted int
	RunsSucceeded int
	OpsExecuted   int
}

// Run executes the script once, top to bottom. On failure it returns the
// error with no record of partial progress — the defining limitation.
func (s *CronScript) Run(g *dgms.Grid) error {
	s.RunsAttempted++
	for _, op := range s.Ops {
		s.OpsExecuted++
		if err := op(g); err != nil {
			return fmt.Errorf("baseline: script %s aborted: %w", s.Name, err)
		}
	}
	s.RunsSucceeded++
	return nil
}

// RunUntilSuccess models the operational reality of a failing cron job:
// every interval inside the window the script re-runs from the top until
// one run completes or maxRuns is exhausted. The grid's clock advances
// by `interval` between attempts.
func (s *CronScript) RunUntilSuccess(g *dgms.Grid, interval time.Duration, maxRuns int) error {
	var lastErr error
	for i := 0; i < maxRuns; i++ {
		now := g.Clock().Now()
		if !s.Window.Contains(now) {
			next := s.Window.NextOpen(now)
			g.Clock().Sleep(next.Sub(now))
		}
		if lastErr = s.Run(g); lastErr == nil {
			return nil
		}
		g.Clock().Sleep(interval)
	}
	return fmt.Errorf("baseline: script %s never succeeded in %d runs: %w", s.Name, maxRuns, lastErr)
}

// ErrClientCrashed simulates the client process dying mid-workflow.
var ErrClientCrashed = errors.New("baseline: client engine crashed")

// ClientEngine interprets DGL flows with all state in the client
// process (the GridAnt model). It supports the sequential, parallel
// (serialized — a single client walks the DAG), forEach-inline and while
// patterns, enough to run the same documents the matrix runs in the
// comparison experiments.
type ClientEngine struct {
	grid *dgms.Grid
	user string

	// CrashAfter kills the client after that many executed steps
	// (0 = never). The crash loses the in-memory progress map.
	CrashAfter int

	// StepsExecuted counts every step attempt across all runs, including
	// the redundant re-execution after crashes.
	StepsExecuted int

	// progress is the in-memory completion set — deliberately NOT
	// persisted anywhere.
	progress map[string]bool
}

// NewClientEngine builds a client-side engine over a grid.
func NewClientEngine(g *dgms.Grid, user string) *ClientEngine {
	return &ClientEngine{grid: g, user: user}
}

// Run interprets the flow. A crash (per CrashAfter) returns
// ErrClientCrashed and discards the progress map — a subsequent Run
// starts from zero knowledge, re-attempting completed steps. Steps whose
// re-execution fails with "already exists" are tolerated (the hard-wired
// script idiom of `|| true`), which is precisely the wasted work the
// experiment measures.
func (c *ClientEngine) Run(flow dgl.Flow) error {
	c.progress = make(map[string]bool) // fresh client process
	err := c.runFlow(&flow, NewScopeEnv(nil), "/"+flow.Name)
	if err != nil {
		c.progress = nil // the crash loses everything
	}
	return err
}

// ScopeEnv is a minimal variable scope for the client interpreter.
type ScopeEnv struct {
	vars   map[string]expr.Value
	parent *ScopeEnv
}

// NewScopeEnv creates a scope.
func NewScopeEnv(parent *ScopeEnv) *ScopeEnv {
	return &ScopeEnv{vars: map[string]expr.Value{}, parent: parent}
}

// Lookup implements expr.Env.
func (s *ScopeEnv) Lookup(name string) (expr.Value, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if v, ok := cur.vars[name]; ok {
			return v, true
		}
	}
	return expr.Null, false
}

// Set assigns in the nearest declaring scope, else locally.
func (s *ScopeEnv) Set(name string, v expr.Value) {
	for cur := s; cur != nil; cur = cur.parent {
		if _, ok := cur.vars[name]; ok {
			cur.vars[name] = v
			return
		}
	}
	s.vars[name] = v
}

func (c *ClientEngine) runFlow(f *dgl.Flow, env *ScopeEnv, path string) error {
	scope := NewScopeEnv(env)
	for _, v := range f.Variables {
		val, err := expr.Interpolate(v.Value, scope)
		if err != nil {
			return err
		}
		scope.vars[v.Name] = expr.String(val)
	}
	switch f.Logic.Control {
	case dgl.Sequential, dgl.Parallel: // a single client serializes both
		return c.runChildren(f, scope, path)
	case dgl.While:
		cond, err := expr.Parse(f.Logic.Condition)
		if err != nil {
			return err
		}
		for i := 0; ; i++ {
			if i > 1_000_000 {
				return errors.New("baseline: while guard tripped")
			}
			ok, err := cond.EvalBool(scope)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if err := c.runChildren(f, scope, fmt.Sprintf("%s[%d]", path, i)); err != nil {
				return err
			}
		}
	case dgl.ForEach:
		it := f.Logic.Iterate
		if it == nil {
			return errors.New("baseline: forEach without iterate")
		}
		var items []string
		switch {
		case it.In != "":
			raw, err := expr.Interpolate(it.In, scope)
			if err != nil {
				return err
			}
			for _, p := range splitList(raw) {
				items = append(items, p)
			}
		case it.Times > 0:
			for i := 0; i < it.Times; i++ {
				items = append(items, fmt.Sprint(i))
			}
		default:
			return errors.New("baseline: client engine supports inline/times iteration only")
		}
		for i, item := range items {
			iter := NewScopeEnv(scope)
			iter.vars[it.Var] = expr.String(item)
			if err := c.runChildren(f, iter, fmt.Sprintf("%s[%d]", path, i)); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("baseline: client engine does not support %q", f.Logic.Control)
	}
}

func splitList(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			item := trimSpace(s[start:i])
			if item != "" {
				out = append(out, item)
			}
			start = i + 1
		}
	}
	return out
}

func trimSpace(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}

func (c *ClientEngine) runChildren(f *dgl.Flow, env *ScopeEnv, path string) error {
	for i := range f.Flows {
		if err := c.runFlow(&f.Flows[i], env, path+"/"+f.Flows[i].Name); err != nil {
			return err
		}
	}
	for i := range f.Steps {
		if err := c.runStep(&f.Steps[i], env, path+"/"+f.Steps[i].Name); err != nil {
			return err
		}
	}
	return nil
}

func (c *ClientEngine) runStep(st *dgl.Step, env *ScopeEnv, path string) error {
	key := path // in-memory only; gone after a crash
	if c.progress[key] {
		return nil
	}
	c.StepsExecuted++
	if c.CrashAfter > 0 && c.StepsExecuted > c.CrashAfter {
		return ErrClientCrashed
	}
	params := map[string]string{}
	for _, p := range st.Operation.Params {
		v, err := expr.Interpolate(p.Value, env)
		if err != nil {
			return err
		}
		params[p.Name] = v
	}
	err := c.execOp(st.Operation.Type, params, env)
	if err != nil {
		// Tolerate effects of a previous incarnation's partial progress.
		if errors.Is(err, dgms.ErrVetoed) {
			return err
		}
		if isAlreadyDone(err) {
			c.progress[key] = true
			return nil
		}
		if st.OnError == dgl.OnErrorContinue {
			return nil
		}
		return err
	}
	c.progress[key] = true
	return nil
}

func isAlreadyDone(err error) bool {
	// Duplicate ingests/collections/replicas all carry the Exists class.
	return errors.Is(err, dgferr.ErrExists)
}

func (c *ClientEngine) execOp(typ string, p map[string]string, env *ScopeEnv) error {
	g := c.grid
	switch typ {
	case dgl.OpNoop:
		return nil
	case dgl.OpFail:
		return errors.New(orDefault(p["message"], "fail operation"))
	case dgl.OpSleep:
		d, err := time.ParseDuration(orDefault(p["duration"], "1s"))
		if err != nil {
			return err
		}
		g.Clock().Sleep(d)
		return nil
	case dgl.OpMakeCollection:
		return g.CreateCollectionAll(c.user, p["path"])
	case dgl.OpIngest:
		var size int64
		fmt.Sscanf(orDefault(p["size"], "0"), "%d", &size)
		return g.Ingest(c.user, p["path"], size, nil, p["resource"])
	case dgl.OpReplicate:
		return g.ReplicateFrom(c.user, p["path"], p["from"], p["to"])
	case dgl.OpMigrate:
		return g.Migrate(c.user, p["path"], p["from"], p["to"])
	case dgl.OpTrim:
		return g.Trim(c.user, p["path"], p["resource"], p["force"] == "true")
	case dgl.OpDelete:
		return g.Delete(c.user, p["path"])
	case dgl.OpVerify:
		_, err := g.Verify(c.user, p["path"])
		return err
	case dgl.OpSetMeta:
		return g.SetMeta(c.user, p["path"], p["attr"], p["value"])
	case dgl.OpMove:
		return g.Move(c.user, p["src"], p["dst"])
	case dgl.OpExec:
		var cpu float64
		fmt.Sscanf(orDefault(p["cpuSeconds"], "1"), "%f", &cpu)
		d := time.Duration(cpu * float64(time.Second))
		g.Clock().Sleep(d)
		g.Meter().Charge(orDefault(p["lane"], "client-compute"), d, 0)
		return nil
	case dgl.OpSetVariable:
		if p["name"] == "" {
			return errors.New("baseline: setVariable needs name")
		}
		env.Set(p["name"], expr.String(p["value"]))
		return nil
	default:
		return fmt.Errorf("baseline: unsupported operation %q", typ)
	}
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
