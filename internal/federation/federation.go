// Package federation is the distributed execution plane of the
// datagridflow network: it turns a set of matrixd peers — until now
// federated only for status queries — into one grid that executes
// together. A flow submitted to any peer can have whole subflows
// (parallel branches, parallel foreach shards, stored-procedure calls)
// delegated to other peers over the wire protocol's kind-4 delegate
// frame, with placement decided by a pluggable scheduler policy fed by
// heartbeat load gossip, and ownership failing over to a surviving peer
// when the executing peer dies mid-subflow.
//
// The package sits between internal/matrix (it implements
// matrix.Delegator) and internal/wire (it speaks through wire.Peer's
// pooled clients and heartbeats through the lookup registry). Protocol,
// placement and failover semantics are specified in docs/FEDERATION.md;
// metrics in docs/METRICS.md.
package federation

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/dgl"
	"datagridflow/internal/matrix"
	"datagridflow/internal/provenance"
	"datagridflow/internal/scheduler"
	"datagridflow/internal/wire"
)

// Config tunes a Federation.
type Config struct {
	// Policy places delegated subflows. Default scheduler.LeastLoaded.
	Policy scheduler.PlacementPolicy
	// HeartbeatInterval paces lease renewal and load gossip against the
	// lookup registry (wall clock). Default 5s.
	HeartbeatInterval time.Duration
	// MinSteps is the smallest subflow (by step count, recursive) worth
	// delegating; smaller ones run inline in the parent. Default 1.
	MinSteps int
	// MaxAttempts bounds placement attempts (distinct peers tried,
	// including failovers) before the subflow settles locally. Default 3.
	MaxAttempts int
	// Backoff is the wall-clock pause between failover attempts.
	// Default 200ms.
	Backoff time.Duration
	// DrainGrace bounds how long Close waits for in-flight delegations
	// to finish before cancelling them. Default 5s.
	DrainGrace time.Duration
	// LocalSlots bounds subflows executing locally on this peer via the
	// federation (whether placement picked the local peer or remote
	// attempts were exhausted) — sized to the wire server's admission
	// capacity by default, so every peer offers the same concurrency to
	// the federation whether work arrives over the wire or from a local
	// parent.
	LocalSlots int
	// DeadFor quarantines a peer after a transport failure: it is not
	// offered to placement again until the window passes (its heartbeat
	// re-registering it in the meantime). Default 3x HeartbeatInterval.
	DeadFor time.Duration
}

// Federation runs the delegation plane of one peer. Create with New,
// wire in with Start, shut down with Close.
type Federation struct {
	peer *wire.Peer
	cfg  Config

	ctx    context.Context
	cancel context.CancelFunc
	stopHB chan struct{}
	hbWg   sync.WaitGroup
	wg     sync.WaitGroup // in-flight delegations

	localSlots chan struct{}

	mu     sync.Mutex
	closed bool
	gossip []wire.PeerInfo
	dead   map[string]time.Time // peer -> quarantined until
}

// New builds a federation over a started-or-about-to-start peer.
func New(peer *wire.Peer, cfg Config) *Federation {
	if cfg.Policy == nil {
		cfg.Policy = scheduler.LeastLoaded{}
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 5 * time.Second
	}
	if cfg.MinSteps <= 0 {
		cfg.MinSteps = 1
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 200 * time.Millisecond
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 5 * time.Second
	}
	if cfg.LocalSlots <= 0 {
		cfg.LocalSlots = peer.Server().Admission().Capacity()
	}
	if cfg.DeadFor <= 0 {
		cfg.DeadFor = 3 * cfg.HeartbeatInterval
	}
	f := &Federation{
		peer:       peer,
		cfg:        cfg,
		stopHB:     make(chan struct{}),
		localSlots: make(chan struct{}, cfg.LocalSlots),
		dead:       make(map[string]time.Time),
	}
	f.ctx, f.cancel = context.WithCancel(context.Background())
	return f
}

// Start attaches the federation to its engine (as the Delegator),
// sends an immediate heartbeat, and begins the heartbeat loop. Call
// after Peer.Start — heartbeats need the registered address.
func (f *Federation) Start() {
	f.peer.Engine().SetDelegator(f)
	f.beat()
	f.hbWg.Add(1)
	go f.heartbeatLoop()
}

// heartbeatLoop renews the peer's lookup lease with its load on every
// tick, keeping the local gossip table fresh.
func (f *Federation) heartbeatLoop() {
	defer f.hbWg.Done()
	t := time.NewTicker(f.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			f.beat()
		case <-f.stopHB:
			return
		}
	}
}

// beat sends one heartbeat and refreshes the gossip table.
func (f *Federation) beat() {
	o := f.peer.Engine().Obs()
	infos, err := f.peer.Heartbeat(f.load())
	if err != nil {
		o.Counter("federation_heartbeat_errors_total").Inc()
		return
	}
	o.Counter("federation_heartbeats_total").Inc()
	o.Gauge("federation_peers_alive").Set(int64(len(infos)))
	f.mu.Lock()
	f.gossip = infos
	f.mu.Unlock()
	// Sharded networks: the heartbeat doubles as the rebalance tick.
	// Membership just refreshed, so re-derive the desired shard set and
	// claim/drain the difference — this is how ownership fails over to
	// surviving peers after a death and spreads back out after a join.
	if f.peer.ShardManager() != nil {
		members := make([]string, 0, len(infos))
		for _, info := range infos {
			members = append(members, info.Name)
		}
		f.peer.RebalanceShards(members)
	}
}

// load snapshots this peer's self-reported figures: admission pool
// state, running executions, hosted resources — the gossip other peers
// rank it by.
func (f *Federation) load() scheduler.PeerLoad {
	adm := f.peer.Server().Admission()
	eng := f.peer.Engine()
	var resources []string
	for _, r := range eng.Grid().Resources() {
		resources = append(resources, r.Name())
	}
	return scheduler.PeerLoad{
		Inflight:  int64(adm.Inflight()),
		Queued:    int64(adm.Waiting()),
		Running:   eng.Obs().Gauge("matrix_executions_running").Value(),
		Capacity:  int64(adm.Capacity()),
		Resources: resources,
	}
}

// candidates builds the placement slate: this peer (with live local
// load) plus every gossiped peer that is neither quarantined nor
// already tried.
func (f *Federation) candidates(tried map[string]bool) []scheduler.Candidate {
	now := time.Now()
	f.mu.Lock()
	gossip := f.gossip
	var out []scheduler.Candidate
	seenSelf := false
	for _, info := range gossip {
		if tried[info.Name] {
			continue
		}
		if until, dead := f.dead[info.Name]; dead && now.Before(until) && info.Name != f.peer.Name {
			continue
		}
		if info.Name == f.peer.Name {
			seenSelf = true
			continue // appended below with live load
		}
		out = append(out, scheduler.Candidate{Name: info.Name, Load: info.Load})
	}
	f.mu.Unlock()
	if (seenSelf || len(gossip) == 0) && !tried[f.peer.Name] {
		out = append(out, scheduler.Candidate{Name: f.peer.Name, Load: f.load()})
	}
	return out
}

// markDead quarantines a peer after a transport failure and drops its
// pooled connection so the next use re-resolves.
func (f *Federation) markDead(name string) {
	f.mu.Lock()
	f.dead[name] = time.Now().Add(f.cfg.DeadFor)
	f.mu.Unlock()
	f.peer.DropClient(name)
}

// countSteps counts steps recursively — the MinSteps yardstick.
func countSteps(fl *dgl.Flow) int {
	n := len(fl.Steps)
	for i := range fl.Flows {
		n += countSteps(&fl.Flows[i])
	}
	return n
}

// record writes a federation provenance record stamped by the grid
// clock.
func (f *Federation) record(r provenance.Record) {
	grid := f.peer.Engine().Grid()
	r.Time = grid.Clock().Now()
	_, _ = grid.Provenance().Append(r)
}

// Delegate implements matrix.Delegator: place the subflow, run it —
// remotely over a delegate frame, or locally under the federation's
// slot pool — and fail over to the next candidate when the executing
// peer dies mid-run. Deterministic flow failures (the subflow itself
// erred on a live peer) do not fail over; they propagate typed.
func (f *Federation) Delegate(ctx context.Context, req matrix.DelegateRequest) (*matrix.DelegateResponse, error) {
	f.mu.Lock()
	closed := f.closed
	f.mu.Unlock()
	if closed {
		return nil, matrix.ErrDelegateLocal
	}
	if countSteps(&req.Flow) < f.cfg.MinSteps {
		return nil, matrix.ErrDelegateLocal
	}
	if reg := f.peer.Server().TenantRegistry(); reg != nil {
		// Delegation-slot quota (docs/TENANCY.md): an over-quota tenant
		// keeps its subflow — it runs inline in the parent, it is never
		// dropped. The registry counts the rejection
		// (tenant_quota_rejections_total{resource="delegations"}).
		if err := reg.AcquireDelegation(req.User); err != nil {
			return nil, matrix.ErrDelegateLocal
		}
		defer reg.ReleaseDelegation(req.User)
	}
	f.wg.Add(1)
	defer f.wg.Done()
	// Merge the caller's context with the federation's lifetime so Close
	// can release in-flight delegations.
	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(f.ctx, cancel)
	defer stop()

	o := f.peer.Engine().Obs()
	o.StartSpan("delegate", req.Flow.Name, req.ParentNode, nil)
	resp, err := f.place(dctx, req)
	outcome := "ok"
	switch {
	case err != nil:
		outcome = "error"
	case resp.Err != nil:
		outcome = "flow-error"
	}
	peerName := ""
	if resp != nil {
		peerName = resp.Peer
	}
	o.EndSpan("delegate", req.Flow.Name, req.ParentNode, map[string]string{
		"outcome": outcome, "peer": peerName,
	})
	return resp, err
}

// place drives the placement/failover loop for one subflow.
func (f *Federation) place(ctx context.Context, req matrix.DelegateRequest) (*matrix.DelegateResponse, error) {
	o := f.peer.Engine().Obs()
	tried := make(map[string]bool)
	for attempt := 0; attempt < f.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("%w: delegation cancelled: %v", dgferr.ErrCancelled, err)
		}
		cands := f.candidates(tried)
		hint := req.Hint
		if f.cfg.Policy.Name() == scheduler.VdataLocalityName && req.VdataHint != "" {
			// vdata-locality routes on a holder peer name, not a resource
			// name (docs/VDATA.md).
			hint = req.VdataHint
		}
		pick, ok := f.cfg.Policy.Pick(f.peer.Name, hint, cands)
		if !ok {
			break // slate exhausted: settle locally
		}
		tried[pick] = true
		if pick == f.peer.Name {
			return f.runLocal(ctx, req)
		}
		resp, retry := f.runRemote(ctx, pick, req)
		if resp != nil {
			return resp, nil
		}
		if !retry {
			// Unsupported peer (pre-1.3): silently move on, no backoff —
			// nothing was sent, nothing failed.
			continue
		}
		// Transport failure: quarantine, note the failover, back off a
		// beat (the next candidate may share the cause), try again.
		f.markDead(pick)
		o.Counter("federation_failovers_total", "peer", pick).Inc()
		f.record(provenance.Record{
			Actor: f.peer.Name, Action: "deleg.failover",
			FlowID: req.ParentExec, StepID: req.ParentNode, Target: pick,
			Outcome: provenance.OutcomeError,
			Detail:  map[string]string{"flow": req.Flow.Name},
		})
		select {
		case <-time.After(f.cfg.Backoff):
		case <-ctx.Done():
			return nil, fmt.Errorf("%w: delegation cancelled: %v", dgferr.ErrCancelled, ctx.Err())
		}
	}
	return f.runLocal(ctx, req)
}

// runRemote sends one delegate frame to the named peer. It returns a
// settled response (success or deterministic flow failure), or
// (nil, retry) — retry=true for transport/peer-death failures that
// should fail over, retry=false for peers that never got the frame
// (pre-1.3, or currently unreachable through the lookup registry).
func (f *Federation) runRemote(ctx context.Context, name string, req matrix.DelegateRequest) (*matrix.DelegateResponse, bool) {
	o := f.peer.Engine().Obs()
	client, err := f.peer.Client(name)
	if err != nil {
		// Could not even connect: treat as peer death.
		return nil, true
	}
	if !client.CanDelegate() {
		// Mixed-version federation: the peer negotiated < 1.3. Never send
		// the frame — it stays a valid status-forwarding peer.
		o.Counter("federation_unsupported_peers_total", "peer", name).Inc()
		return nil, false
	}
	doc, err := dgl.Marshal(dgl.NewAsyncRequest(req.User, "", req.Flow))
	if err != nil {
		return nil, false // unmarshalable flow will not improve elsewhere
	}
	res, err := client.Delegate(ctx, wire.Delegate{
		User:       req.User,
		Token:      req.Token,
		Request:    string(doc),
		Origin:     f.peer.Name,
		ParentExec: req.ParentExec,
		ParentNode: req.ParentNode,
	})
	if err == nil {
		o.Counter("federation_delegations_total", "peer", name).Inc()
		return f.settled(name, res, nil), false
	}
	if res == nil {
		// Transport failure: the connection died with the frame in
		// flight. The remote may or may not have run the subflow — the
		// at-least-once caveat (docs/FEDERATION.md).
		return nil, true
	}
	// The remote answered. A cancelled or capacity class means the peer
	// is shutting down or saturated — the work should move; anything
	// else is the subflow's own deterministic failure and must propagate.
	if ctx.Err() == nil && (errors.Is(err, dgferr.ErrCancelled) || errors.Is(err, dgferr.ErrCapacity) || errors.Is(err, dgferr.ErrResourceDown)) {
		return nil, true
	}
	o.Counter("federation_delegations_total", "peer", name).Inc()
	return f.settled(name, res, err), false
}

// settled builds the Delegator response from a delegate reply.
func (f *Federation) settled(peerName string, res *wire.DelegateResult, flowErr error) *matrix.DelegateResponse {
	out := &matrix.DelegateResponse{Peer: peerName, RemoteID: res.ID, Err: flowErr}
	if res.Status != "" {
		if st, err := dgl.ParseFlowStatus([]byte(res.Status)); err == nil {
			out.Status = st
		}
	}
	return out
}

// runLocal executes the subflow on this peer's engine, under the
// federation's local slot pool — so a peer running its own delegations
// has exactly the same subflow concurrency it offers remote peers
// through wire admission.
func (f *Federation) runLocal(ctx context.Context, req matrix.DelegateRequest) (*matrix.DelegateResponse, error) {
	o := f.peer.Engine().Obs()
	select {
	case f.localSlots <- struct{}{}:
	case <-ctx.Done():
		return nil, fmt.Errorf("%w: delegation cancelled: %v", dgferr.ErrCancelled, ctx.Err())
	}
	defer func() { <-f.localSlots }()
	exec, err := f.peer.Engine().Start(req.User, req.Flow)
	if err != nil {
		return nil, err
	}
	o.Counter("federation_delegations_total", "peer", f.peer.Name).Inc()
	werr := exec.WaitContext(ctx)
	if ctx.Err() != nil {
		exec.Cancel()
		select {
		case <-exec.Done():
		case <-time.After(f.cfg.DrainGrace):
		}
		return nil, fmt.Errorf("%w: delegation cancelled: %v", dgferr.ErrCancelled, ctx.Err())
	}
	st := exec.Status(true)
	return &matrix.DelegateResponse{
		Peer:     f.peer.Name,
		RemoteID: exec.ID,
		Status:   &st,
		Err:      werr,
	}, nil
}

// Beat forces one immediate heartbeat/gossip refresh — tests and
// experiments use it to synchronize membership deterministically
// instead of sleeping through HeartbeatInterval.
func (f *Federation) Beat() { f.beat() }

// Peers snapshots the latest gossip table — the live federation as the
// lookup registry last reported it.
func (f *Federation) Peers() []wire.PeerInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]wire.PeerInfo(nil), f.gossip...)
}

// Close shuts the federation down deterministically: new delegations
// decline to local/inline immediately; in-flight ones get DrainGrace to
// finish, then are cancelled (remote peers release the work via their
// delegate contexts); the heartbeat loop stops. The peer itself is not
// closed — callers own that ordering (federation first, then peer).
func (f *Federation) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.mu.Unlock()
	f.peer.Engine().SetDelegator(nil)
	close(f.stopHB)
	done := make(chan struct{})
	go func() { f.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(f.cfg.DrainGrace):
		f.cancel()
		<-done
	}
	f.cancel()
	f.hbWg.Wait()
}
