package federation

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/dgl"
	"datagridflow/internal/dgms"
	"datagridflow/internal/matrix"
	"datagridflow/internal/obs"
	"datagridflow/internal/provenance"
	"datagridflow/internal/scheduler"
	"datagridflow/internal/vdata"
	"datagridflow/internal/wire"
)

// testPeer is one federated matrixd stood up in-process on loopback TCP.
type testPeer struct {
	name string
	reg  *obs.Registry
	grid *dgms.Grid
	eng  *matrix.Engine
	peer *wire.Peer
	fed  *Federation
}

func startLookup(t *testing.T) string {
	t.Helper()
	ls := wire.NewLookupServer()
	addr, err := ls.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ls.Close)
	return addr
}

func newTestPeer(t *testing.T, name, lookupAddr string, scfg wire.ServerConfig, fcfg Config) *testPeer {
	t.Helper()
	reg := obs.NewRegistry()
	g := dgms.New(dgms.Options{Obs: reg})
	e := matrix.NewEngineConfig(g, matrix.Config{IDPrefix: name + ":", MaxParallel: 16})
	p := wire.NewPeerConfig(name, e, scfg)
	if _, err := p.Start("127.0.0.1:0", lookupAddr); err != nil {
		t.Fatal(err)
	}
	fed := New(p, fcfg)
	fed.Start()
	t.Cleanup(func() { fed.Close(); p.Close() })
	return &testPeer{name: name, reg: reg, grid: g, eng: e, peer: p, fed: fed}
}

// sync lets every peer see the completed roster: one round to gossip
// registrations, one to read everyone else's.
func syncBeats(peers ...*testPeer) {
	for range [2]int{} {
		for _, p := range peers {
			p.fed.Beat()
		}
	}
}

// fanout builds a parent with n parallel subflows of `steps` setVariable
// steps each.
func fanout(n, steps int) dgl.Flow {
	b := dgl.NewFlow("parent").Parallel()
	for i := 0; i < n; i++ {
		sub := dgl.NewFlow(fmt.Sprintf("sub-%d", i))
		for j := 0; j < steps; j++ {
			sub.Step(fmt.Sprintf("set-%d", j), dgl.Op(dgl.OpSetVariable, map[string]string{
				"name": fmt.Sprintf("v%d", j), "value": "x",
			}))
		}
		b.SubFlow(sub)
	}
	return b.Flow()
}

// pinTo aims every delegation at one peer while it is a candidate.
type pinTo struct{ target string }

func (p *pinTo) Name() string { return "pin-to" }

func (p *pinTo) Pick(local, hint string, cands []scheduler.Candidate) (string, bool) {
	for _, c := range cands {
		if c.Name == p.target {
			return p.target, true
		}
	}
	return scheduler.LeastLoaded{}.Pick(local, hint, cands)
}

func delegations(p *testPeer, peerName string) int64 {
	return p.reg.Counter("federation_delegations_total", "peer", peerName).Value()
}

// TestFederationSpreadsSubflows: two peers, round-robin placement — the
// parallel subflows land on both, every child completes, and the
// delegated ones resolve to peer-B execution ids.
func TestFederationSpreadsSubflows(t *testing.T) {
	lookup := startLookup(t)
	a := newTestPeer(t, "fedA", lookup, wire.ServerConfig{MaxInflight: 4},
		Config{Policy: &scheduler.RoundRobin{}, HeartbeatInterval: time.Minute})
	b := newTestPeer(t, "fedB", lookup, wire.ServerConfig{MaxInflight: 4},
		Config{Policy: &scheduler.RoundRobin{}, HeartbeatInterval: time.Minute})
	syncBeats(a, b)

	if peers := a.fed.Peers(); len(peers) != 2 {
		t.Fatalf("gossip = %+v", peers)
	}
	ex, err := a.eng.Start("user", fanout(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	// Round-robin over {fedA, fedB}: half the subflows go remote.
	if got := delegations(a, "fedB"); got != 2 {
		t.Errorf("remote delegations = %d, want 2", got)
	}
	if got := delegations(a, "fedA"); got != 2 {
		t.Errorf("local delegations = %d, want 2", got)
	}
	st := ex.Status(true)
	remote := 0
	for _, ch := range st.Children {
		if ch.State != "succeeded" {
			t.Errorf("child %s state = %s", ch.Name, ch.State)
		}
		if strings.HasPrefix(ch.Delegated, "fedB:") {
			remote++
		}
	}
	if remote != 2 {
		t.Errorf("children on fedB = %d, want 2", remote)
	}
	// The hand-off is journaled in provenance on the delegating side.
	if n := a.grid.Provenance().Count(provenance.Filter{Action: "deleg.start"}); n != 4 {
		t.Errorf("deleg.start records = %d", n)
	}
}

// TestFederationCrashFailover kills the executing peer mid-subflow: the
// delegating peer must see the transport failure, quarantine the dead
// peer, and re-place the subflow so the flow still completes — with the
// failover visible in metrics and provenance.
func TestFederationCrashFailover(t *testing.T) {
	lookup := startLookup(t)
	a := newTestPeer(t, "fedA", lookup, wire.ServerConfig{MaxInflight: 4},
		Config{Policy: &pinTo{target: "fedB"}, HeartbeatInterval: time.Minute, Backoff: 10 * time.Millisecond})
	b := newTestPeer(t, "fedB", lookup, wire.ServerConfig{MaxInflight: 4, DelegateGrace: 50 * time.Millisecond},
		Config{HeartbeatInterval: time.Minute})

	// The subflow's first step blocks on B (and only B) until released;
	// on A it completes immediately, so the failover re-run succeeds.
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	entered := make(chan struct{}, 1)
	b.eng.RegisterOp("gate", func(c *matrix.OpContext) error {
		select {
		case entered <- struct{}{}:
		default:
		}
		select {
		case <-release:
		case <-time.After(10 * time.Second):
		}
		return nil
	})
	a.eng.RegisterOp("gate", func(c *matrix.OpContext) error { return nil })
	syncBeats(a, b)

	flow := dgl.NewFlow("parent").Parallel().
		SubFlow(dgl.NewFlow("sub").
			Step("hold", dgl.Op("gate", nil)).
			Step("after", dgl.Op(dgl.OpNoop, nil))).Flow()
	ex, err := a.eng.Start("user", flow)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("delegation never reached fedB")
	}
	// Crash B: heartbeats stop, server torn down, no graceful unregister.
	b.fed.Close()
	b.peer.Server().Close()

	if err := ex.Wait(); err != nil {
		t.Fatalf("flow did not survive peer crash: %v", err)
	}
	st := ex.Status(true)
	if got := st.Children[0].Delegated; !strings.HasPrefix(got, "fedA:") {
		t.Errorf("surviving owner = %q, want fedA", got)
	}
	if n := a.reg.Counter("federation_failovers_total", "peer", "fedB").Value(); n != 1 {
		t.Errorf("failover metric = %d", n)
	}
	if n := a.grid.Provenance().Count(provenance.Filter{Action: "deleg.failover"}); n != 1 {
		t.Errorf("deleg.failover provenance records = %d", n)
	}
	// The dead peer is quarantined out of the next slate.
	for _, c := range a.fed.candidates(map[string]bool{}) {
		if c.Name == "fedB" {
			t.Error("crashed peer still offered to placement")
		}
	}
}

// TestFederationMixedVersionFallsBackLocal federates a 1.3 peer with a
// 1.2 peer: placement may pick the old peer, but the delegate frame is
// never sent — the subflow silently runs locally and the flow completes
// without a single wire error.
func TestFederationMixedVersionFallsBackLocal(t *testing.T) {
	lookup := startLookup(t)
	a := newTestPeer(t, "newA", lookup, wire.ServerConfig{MaxInflight: 4},
		Config{Policy: &pinTo{target: "oldB"}, HeartbeatInterval: time.Minute})
	// oldB advertises protocol 1.2: mux yes, delegate no.
	b := newTestPeer(t, "oldB", lookup, wire.ServerConfig{MaxInflight: 4, ProtoMinor: 2},
		Config{HeartbeatInterval: time.Minute})
	syncBeats(a, b)

	ex, err := a.eng.Start("user", fanout(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err != nil {
		t.Fatalf("mixed-version flow failed: %v", err)
	}
	st := ex.Status(true)
	for _, ch := range st.Children {
		if ch.State != "succeeded" {
			t.Errorf("child %s state = %s", ch.Name, ch.State)
		}
		if strings.HasPrefix(ch.Delegated, "oldB:") {
			t.Errorf("subflow ran on the 1.2 peer: %q", ch.Delegated)
		}
	}
	if n := a.reg.Counter("federation_unsupported_peers_total", "peer", "oldB").Value(); n == 0 {
		t.Error("unsupported-peer fallback not counted")
	}
	if got := delegations(a, "oldB"); got != 0 {
		t.Errorf("delegations to 1.2 peer = %d", got)
	}
	// Silent fallback: no failover noise either — the peer is healthy,
	// just old.
	if n := a.reg.Counter("federation_failovers_total", "peer", "oldB").Value(); n != 0 {
		t.Errorf("failovers against healthy 1.2 peer = %d", n)
	}
	if n := a.grid.Provenance().Count(provenance.Filter{Action: "deleg.failover"}); n != 0 {
		t.Errorf("deleg.failover records = %d", n)
	}
}

// TestFederationMinStepsDeclines: subflows under the MinSteps threshold
// answer ErrDelegateLocal so the engine runs them inline.
func TestFederationMinStepsDeclines(t *testing.T) {
	lookup := startLookup(t)
	a := newTestPeer(t, "minA", lookup, wire.ServerConfig{MaxInflight: 4},
		Config{MinSteps: 3, HeartbeatInterval: time.Minute})

	small := dgl.NewFlow("small").Step("s", dgl.Op(dgl.OpNoop, nil)).Flow()
	if _, err := a.fed.Delegate(context.Background(), matrix.DelegateRequest{
		User: "user", Flow: small,
	}); !errors.Is(err, matrix.ErrDelegateLocal) {
		t.Errorf("small subflow = %v, want ErrDelegateLocal", err)
	}
	// Over the threshold it places (here: on itself, the only peer).
	big := fanout(1, 3).Flows[0]
	resp, err := a.fed.Delegate(context.Background(), matrix.DelegateRequest{
		User: "user", Flow: big,
	})
	if err != nil || resp.Peer != "minA" {
		t.Errorf("big subflow: resp=%+v err=%v", resp, err)
	}
}

// TestFederationCloseDrains: Close declines new work immediately and
// returns once in-flight delegations settle; after Close the federation
// answers ErrDelegateLocal.
func TestFederationCloseDrains(t *testing.T) {
	lookup := startLookup(t)
	a := newTestPeer(t, "drainA", lookup, wire.ServerConfig{MaxInflight: 4},
		Config{HeartbeatInterval: time.Minute, DrainGrace: 2 * time.Second})

	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	a.eng.RegisterOp("gate", func(c *matrix.OpContext) error {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
		return nil
	})
	flow := dgl.NewFlow("held").Step("hold", dgl.Op("gate", nil)).Flow()
	var wg sync.WaitGroup
	wg.Add(1)
	var resp *matrix.DelegateResponse
	var derr error
	go func() {
		defer wg.Done()
		resp, derr = a.fed.Delegate(context.Background(), matrix.DelegateRequest{User: "user", Flow: flow})
	}()
	<-entered

	closed := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release) // the in-flight delegation finishes inside DrainGrace
	}()
	go func() { a.fed.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the in-flight delegation drained")
	}
	wg.Wait()
	if derr != nil || resp == nil || resp.Err != nil {
		t.Errorf("drained delegation: resp=%+v err=%v", resp, derr)
	}
	// Closed federation declines everything.
	if _, err := a.fed.Delegate(context.Background(), matrix.DelegateRequest{
		User: "user", Flow: fanout(1, 2).Flows[0],
	}); !errors.Is(err, matrix.ErrDelegateLocal) {
		t.Errorf("post-Close Delegate = %v, want ErrDelegateLocal", err)
	}
	// Idempotent.
	a.fed.Close()
}

// TestFederationCloseCancelsStuckDelegation: when an in-flight local
// delegation outlives DrainGrace, Close cancels it and still returns.
func TestFederationCloseCancelsStuckDelegation(t *testing.T) {
	lookup := startLookup(t)
	a := newTestPeer(t, "stuckA", lookup, wire.ServerConfig{MaxInflight: 4},
		Config{HeartbeatInterval: time.Minute, DrainGrace: 100 * time.Millisecond})
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	entered := make(chan struct{}, 1)
	a.eng.RegisterOp("gate", func(c *matrix.OpContext) error {
		select {
		case entered <- struct{}{}:
		default:
		}
		select {
		case <-release:
		case <-time.After(10 * time.Second):
		}
		return nil
	})
	flow := dgl.NewFlow("held").
		Step("hold", dgl.Op("gate", nil)).
		Step("after", dgl.Op(dgl.OpNoop, nil)).Flow()
	done := make(chan error, 1)
	go func() {
		_, err := a.fed.Delegate(context.Background(), matrix.DelegateRequest{User: "user", Flow: flow})
		done <- err
	}()
	<-entered
	closed := make(chan struct{})
	go func() { a.fed.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a stuck delegation past DrainGrace")
	}
	select {
	case err := <-done:
		if !errors.Is(err, dgferr.ErrCancelled) {
			t.Errorf("stuck delegation err = %v, want cancelled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled delegation never returned")
	}
}

// TestFederationHeartbeatErrors: a dead lookup turns beats into counted
// errors instead of panics or stale success.
func TestFederationHeartbeatErrors(t *testing.T) {
	ls := wire.NewLookupServer()
	addr, err := ls.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a := newTestPeer(t, "hbA", addr, wire.ServerConfig{MaxInflight: 4},
		Config{HeartbeatInterval: time.Minute})
	before := a.reg.Counter("federation_heartbeats_total").Value()
	ls.Close()
	a.fed.Beat()
	if a.reg.Counter("federation_heartbeat_errors_total").Value() == 0 {
		t.Error("heartbeat against dead lookup not counted as error")
	}
	if got := a.reg.Counter("federation_heartbeats_total").Value(); got != before {
		t.Errorf("successful-beat counter moved on failure: %d -> %d", before, got)
	}
}

// TestFederationNoGoroutineLeak stands a cluster up, pushes work through
// it, tears it down, and insists the goroutine count returns to the
// baseline — the deterministic-shutdown acceptance check.
func TestFederationNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	func() {
		ls := wire.NewLookupServer()
		addr, err := ls.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ls.Close()
		var peers []*testPeer
		for i := 0; i < 3; i++ {
			reg := obs.NewRegistry()
			g := dgms.New(dgms.Options{Obs: reg})
			e := matrix.NewEngineConfig(g, matrix.Config{IDPrefix: fmt.Sprintf("lk%d:", i), MaxParallel: 16})
			p := wire.NewPeerConfig(fmt.Sprintf("lk%d", i), e, wire.ServerConfig{MaxInflight: 4})
			if _, err := p.Start("127.0.0.1:0", addr); err != nil {
				t.Fatal(err)
			}
			fed := New(p, Config{Policy: &scheduler.RoundRobin{}, HeartbeatInterval: 20 * time.Millisecond})
			fed.Start()
			peers = append(peers, &testPeer{name: p.Name, reg: reg, grid: g, eng: e, peer: p, fed: fed})
		}
		syncBeats(peers...)
		ex, err := peers[0].eng.Start("user", fanout(6, 2))
		if err != nil {
			t.Fatal(err)
		}
		if err := ex.Wait(); err != nil {
			t.Fatal(err)
		}
		for _, p := range peers {
			p.fed.Close()
			p.peer.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline=%d now=%d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// newVdataTestPeer is newTestPeer with a memory-only derivation catalog
// attached (wire.Peer.EnableVdata), for the vdata-locality tests.
func newVdataTestPeer(t *testing.T, name, lookupAddr string, fcfg Config) *testPeer {
	t.Helper()
	reg := obs.NewRegistry()
	g := dgms.New(dgms.Options{Obs: reg})
	e := matrix.NewEngineConfig(g, matrix.Config{IDPrefix: name + ":", MaxParallel: 16})
	cat, err := vdata.Open("", reg)
	if err != nil {
		t.Fatal(err)
	}
	p := wire.NewPeerConfig(name, e, wire.ServerConfig{MaxInflight: 4})
	p.EnableVdata(cat)
	if _, err := p.Start("127.0.0.1:0", lookupAddr); err != nil {
		t.Fatal(err)
	}
	fed := New(p, fcfg)
	fed.Start()
	t.Cleanup(func() { fed.Close(); p.Close() })
	return &testPeer{name: name, reg: reg, grid: g, eng: e, peer: p, fed: fed}
}

// pureSubParent wraps one pure exec subflow in a parallel parent — the
// delegable unit for the vdata-locality routing test.
func pureSubParent() dgl.Flow {
	sub := dgl.NewFlow("derive").
		PureStep("fft", dgl.Op(dgl.OpExec, map[string]string{
			"command": "fft raw", "cpuSeconds": "5", "resultVar": "spectrum",
		}), "/grid/derived/spectrum.dat")
	return dgl.NewFlow("parent").Parallel().SubFlow(sub).Flow()
}

// TestFederationVdataLocalityRoutesToHolder: peerB holds the memoized
// derivation; peerA's vdata-locality placement routes the pure subflow
// to it, where it hits peerB's catalog instead of recomputing.
func TestFederationVdataLocalityRoutesToHolder(t *testing.T) {
	lookup := startLookup(t)
	a := newVdataTestPeer(t, "vdA", lookup,
		Config{Policy: scheduler.VdataLocality{}, HeartbeatInterval: time.Minute})
	b := newVdataTestPeer(t, "vdB", lookup,
		Config{Policy: scheduler.VdataLocality{}, HeartbeatInterval: time.Minute})
	syncBeats(a, b)

	// peerB computes (and announces) the derivation.
	sub := dgl.NewFlow("derive").
		PureStep("fft", dgl.Op(dgl.OpExec, map[string]string{
			"command": "fft raw", "cpuSeconds": "5", "resultVar": "spectrum",
		}), "/grid/derived/spectrum.dat").Flow()
	ex, err := b.eng.Run("user", sub)
	if err != nil || ex.Err() != nil {
		t.Fatalf("peerB cold run: %v / %v", err, ex.Err())
	}

	// peerA's parent delegates the same pure subflow: the placement hint
	// resolves vdB as holder through the registry and routes it there.
	ex, err = a.eng.Start("user", pureSubParent())
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := delegations(a, "vdB"); got != 1 {
		t.Fatalf("delegations to holder = %d, want 1", got)
	}
	// The subflow hit on the holder — no recomputation anywhere.
	if got := b.reg.Counter("vdata_hits_total").Value(); got != 1 {
		t.Errorf("holder vdata_hits_total = %d, want 1", got)
	}
	if got := a.reg.Counter("vdata_hits_total").Value(); got != 0 {
		t.Errorf("delegator vdata_hits_total = %d, want 0", got)
	}
}
