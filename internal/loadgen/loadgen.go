// Package loadgen is the wire-protocol load harness behind
// `dgfbench -load`: it stands up an in-process matrix server on a real
// TCP socket and measures DGL request throughput and latency across
// the protocol's transfer modes — serial (pre-1.2, one request in
// flight per connection), pipelined (1.2 multiplexed framing) and
// batch (N flows per frame) — plus an open-loop phase that paces
// requests at a target rate and reports the latency distribution.
//
// The workload is a synchronous flow whose single step sleeps for
// Options.StepLatency on a real clock, standing in for the
// long-running grid operations of the paper (a replication, a
// third-party transfer): the response returns only when the flow
// completes, so server-side latency is visible to the client. Serial
// throughput is then bounded by one latency per round trip while the
// pipelined session overlaps Inflight of them — the speedup ratio
// measures latency hiding, which is what the multiplexed protocol
// exists for, and is stable across machines with different core
// counts (a single-core CI runner shows the same ratio as a laptop).
// docs/BENCH.md records the schema and the gating rationale.
package loadgen

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"datagridflow/internal/dgl"
	"datagridflow/internal/dgms"
	"datagridflow/internal/federation"
	"datagridflow/internal/matrix"
	"datagridflow/internal/namespace"
	"datagridflow/internal/scheduler"
	"datagridflow/internal/shard"
	"datagridflow/internal/sim"
	"datagridflow/internal/vfs"
	"datagridflow/internal/wire"
)

// Options sizes a load run. The zero value is not runnable; use
// Defaults or SmallDefaults as a starting point.
type Options struct {
	// Small marks the CI-sized preset in the report.
	Small bool
	// Duration is the measuring window of each closed-loop phase.
	Duration time.Duration
	// Conns is the number of client connections per phase.
	Conns int
	// Inflight is the number of concurrent requests per connection in
	// the pipelined phase.
	Inflight int
	// BatchSize is the number of flows per batch frame.
	BatchSize int
	// TargetRPS paces the open-loop phase; 0 skips it.
	TargetRPS int
	// StepLatency is the simulated grid-operation latency each flow
	// sleeps for, on a real clock.
	StepLatency time.Duration
	// MaxInflight caps the server worker pool (0 = server default).
	MaxInflight int
	// FederatedPeers adds an optional federated phase: a lookup server
	// plus this many federated peers, with the workload's parallel
	// subflows delegated from the first peer (docs/FEDERATION.md). 0 (the
	// default) skips the phase, leaving the BENCH_wire.json schema
	// unchanged.
	FederatedPeers int
	// ShardedPeers adds an optional sharded any-peer phase: a shard-lease
	// lookup plus this many sharded peers, with sync sleep flows
	// submitted to every peer and routed to their shard owners
	// (docs/FEDERATION.md, "Sharded ownership"). 0 (the default) skips
	// the phase.
	ShardedPeers int
}

// Defaults is the full-scale preset.
func Defaults() Options {
	return Options{
		Duration:    2 * time.Second,
		Conns:       2,
		Inflight:    16,
		BatchSize:   32,
		TargetRPS:   500,
		StepLatency: 4 * time.Millisecond,
		MaxInflight: 128,
	}
}

// SmallDefaults is the CI-sized preset (sub-second phases).
func SmallDefaults() Options {
	return Options{
		Small:       true,
		Duration:    400 * time.Millisecond,
		Conns:       1,
		Inflight:    8,
		BatchSize:   16,
		TargetRPS:   200,
		StepLatency: 2 * time.Millisecond,
		MaxInflight: 128,
	}
}

// ModeResult is one phase's measurement.
type ModeResult struct {
	Mode     string  `json:"mode"`
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	Seconds  float64 `json:"seconds"`
	RPS      float64 `json:"rps"`
	P50ms    float64 `json:"p50_ms"`
	P95ms    float64 `json:"p95_ms"`
	P99ms    float64 `json:"p99_ms"`
}

// Report is the artifact `dgfbench -load` writes as BENCH_wire.json.
// Ratios, not absolute RPS, are the gated quantities: they compare two
// phases of the same run on the same machine, so they survive CI
// runners of wildly different speeds (docs/BENCH.md).
type Report struct {
	Small       bool   `json:"small"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	StepLatency string `json:"step_latency"`
	Conns       int    `json:"conns"`
	Inflight    int    `json:"inflight"`
	BatchSize   int    `json:"batch_size"`

	Serial      ModeResult `json:"serial"`
	Pipelined   ModeResult `json:"pipelined"`
	AsyncSerial ModeResult `json:"async_serial"`
	Batch       ModeResult `json:"batch"`
	// The codec phases submit a variable-heavy flow asynchronously over
	// identical muxed sessions, once pinned to the text encodings
	// (DisableBinary) and once on the 1.4 binary codec — the pairwise
	// comparison that isolates encode/decode cost (docs/CODEC.md).
	AsyncCodecJSON ModeResult  `json:"async_codec_json"`
	AsyncCodecBin  ModeResult  `json:"async_codec_bin"`
	BatchCodecJSON ModeResult  `json:"batch_codec_json"`
	BatchCodecBin  ModeResult  `json:"batch_codec_bin"`
	OpenLoop       *ModeResult `json:"open_loop,omitempty"`
	// Federated is present only when Options.FederatedPeers >= 2.
	Federated      *ModeResult `json:"federated,omitempty"`
	FederatedPeers int         `json:"federated_peers,omitempty"`
	// Sharded is present only when Options.ShardedPeers >= 2.
	Sharded      *ModeResult `json:"sharded,omitempty"`
	ShardedPeers int         `json:"sharded_peers,omitempty"`

	// SpeedupPipelined is pipelined RPS over serial RPS: the latency-
	// hiding win of multiplexed framing. SpeedupBatch is batch flows/s
	// over async-serial flows/s: the framing-amortization win of the
	// batch verb. SpeedupCodecAsync and SpeedupCodecBatch are the binary
	// codec's throughput over the text encodings on the same workload —
	// the gated quantities for the 1.4 codec.
	SpeedupPipelined  float64 `json:"speedup_pipelined"`
	SpeedupBatch      float64 `json:"speedup_batch"`
	SpeedupCodecAsync float64 `json:"speedup_codec_async"`
	SpeedupCodecBatch float64 `json:"speedup_codec_batch"`
}

// String renders the report as the human-readable table dgfbench
// prints before writing the JSON artifact.
func (r *Report) String() string {
	var b []byte
	line := func(m ModeResult) {
		b = fmt.Appendf(b, "%-12s %8d req %5d err %9.0f req/s  p50 %6.2fms  p95 %6.2fms  p99 %6.2fms\n",
			m.Mode, m.Requests, m.Errors, m.RPS, m.P50ms, m.P95ms, m.P99ms)
	}
	b = fmt.Appendf(b, "== wire load (conns=%d inflight=%d batch=%d step=%s gomaxprocs=%d) ==\n",
		r.Conns, r.Inflight, r.BatchSize, r.StepLatency, r.GoMaxProcs)
	line(r.Serial)
	line(r.Pipelined)
	line(r.AsyncSerial)
	line(r.Batch)
	line(r.AsyncCodecJSON)
	line(r.AsyncCodecBin)
	line(r.BatchCodecJSON)
	line(r.BatchCodecBin)
	if r.OpenLoop != nil {
		line(*r.OpenLoop)
	}
	if r.Federated != nil {
		line(*r.Federated)
	}
	if r.Sharded != nil {
		line(*r.Sharded)
	}
	b = fmt.Appendf(b, "speedup: pipelined/serial = %.2fx, batch/async-serial = %.2fx\n",
		r.SpeedupPipelined, r.SpeedupBatch)
	b = fmt.Appendf(b, "codec:   async bin/json = %.2fx, batch bin/json = %.2fx\n",
		r.SpeedupCodecAsync, r.SpeedupCodecBatch)
	return string(b)
}

// harness is one in-process server plus the grid it runs on.
type harness struct {
	engine *matrix.Engine
	server *wire.Server
	addr   string
}

func newHarness(opts Options) (*harness, error) {
	// Real clock: the sleep step must consume wall time for server-side
	// latency to exist (the default virtual clock completes sleeps
	// instantly).
	g := dgms.New(dgms.Options{Clock: sim.RealClock{}})
	if err := g.RegisterResource(vfs.New("bench-disk", "local", vfs.Disk, 0)); err != nil {
		return nil, err
	}
	if err := g.CreateCollectionAll(g.Admin(), "/grid"); err != nil {
		return nil, err
	}
	if err := g.Namespace().SetPermission("/grid", "*", namespace.PermWrite); err != nil {
		return nil, err
	}
	e := matrix.NewEngine(g)
	s := wire.NewServerConfig(e, wire.ServerConfig{MaxInflight: opts.MaxInflight})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return &harness{engine: e, server: s, addr: addr}, nil
}

func (h *harness) close() { h.server.Close() }

// sleepFlow is the workload: one step of simulated grid latency.
func sleepFlow(d time.Duration) dgl.Flow {
	return dgl.NewFlow("load").
		Step("op", dgl.Op(dgl.OpSleep, map[string]string{"duration": d.String()})).Flow()
}

// codecFlow is the codec-phase workload: a flow whose document is
// dominated by variables — realistic datagrid requests carry dataset
// paths, replica locations and transfer parameters as flow variables —
// so the phase measures request encode/decode cost, not step execution
// (the single step is a noop).
func codecFlow() dgl.Flow {
	b := dgl.NewFlow("codec-load")
	for i := 0; i < 8; i++ {
		// Few variables, large values: the engine's per-entry scope cost
		// stays flat (string headers are copied, not bytes) while the
		// text encodings pay escape-and-parse per byte — isolating the
		// codec's advantage on realistic replica-catalog payloads.
		locs := make([]byte, 0, 8<<10)
		for r := 0; r < 60; r++ {
			if r > 0 {
				locs = append(locs, ',')
			}
			locs = append(locs, fmt.Sprintf(
				"srb://replica-%02d.npaci.edu/home/collections/run-2026/partition-%02d/objects.dat?replica=%d&checksum=md5:%08x&verify=true",
				r, i, r, uint32(i*131+r))...)
		}
		b.Var(fmt.Sprintf("dataset.partition.%02d", i), string(locs))
	}
	return b.Step("op", dgl.Op(dgl.OpNoop, nil)).Flow()
}

// batchLoop closed-loops SubmitBatch over the clients for one window,
// counting each batch item as a request.
func batchLoop(clients []*wire.Client, reqs []*dgl.Request, window time.Duration) (time.Duration, *collector) {
	col := &collector{}
	deadline := time.Now().Add(window)
	start := time.Now()
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *wire.Client) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				t0 := time.Now()
				resps, err := c.SubmitBatch(context.Background(), "bench", reqs)
				if err != nil {
					col.fail()
					return
				}
				per := time.Since(t0) / time.Duration(len(resps))
				for range resps {
					col.ok(per)
				}
			}
		}(c)
	}
	wg.Wait()
	return time.Since(start), col
}

// collector accumulates per-request latencies across workers.
type collector struct {
	mu        sync.Mutex
	latencies []time.Duration
	errors    int
}

func (c *collector) ok(d time.Duration) {
	c.mu.Lock()
	c.latencies = append(c.latencies, d)
	c.mu.Unlock()
}

func (c *collector) fail() {
	c.mu.Lock()
	c.errors++
	c.mu.Unlock()
}

func (c *collector) result(mode string, elapsed time.Duration) ModeResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	sort.Slice(c.latencies, func(i, j int) bool { return c.latencies[i] < c.latencies[j] })
	pct := func(p float64) float64 {
		if len(c.latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(c.latencies)-1))
		return float64(c.latencies[i]) / float64(time.Millisecond)
	}
	return ModeResult{
		Mode:     mode,
		Requests: len(c.latencies),
		Errors:   c.errors,
		Seconds:  elapsed.Seconds(),
		RPS:      float64(len(c.latencies)) / elapsed.Seconds(),
		P50ms:    pct(0.50),
		P95ms:    pct(0.95),
		P99ms:    pct(0.99),
	}
}

// runFederated stands up a lookup server plus FederatedPeers federated
// peers, then closed-loops parallel sleep flows — 4 subflows of one
// sleep step each — against the first peer over a multiplexed
// connection. Each completed flow counts its 4 subflows as requests.
func runFederated(opts Options) (*ModeResult, error) {
	lookup := wire.NewLookupServer()
	lookupAddr, err := lookup.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer lookup.Close()
	const subflows = 4
	var peers []*wire.Peer
	var feds []*federation.Federation
	defer func() {
		for _, f := range feds {
			f.Close()
		}
		for _, p := range peers {
			p.Close()
		}
	}()
	var firstAddr string
	for i := 0; i < opts.FederatedPeers; i++ {
		h, err := newHarness(opts)
		if err != nil {
			return nil, err
		}
		h.server.Close() // the peer brings its own listener
		name := fmt.Sprintf("bench%d", i)
		peer := wire.NewPeerConfig(name, h.engine, wire.ServerConfig{MaxInflight: opts.MaxInflight})
		addr, err := peer.Start("127.0.0.1:0", lookupAddr)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			firstAddr = addr
		}
		fed := federation.New(peer, federation.Config{
			Policy:            &scheduler.RoundRobin{},
			HeartbeatInterval: 100 * time.Millisecond,
		})
		fed.Start()
		peers = append(peers, peer)
		feds = append(feds, fed)
	}
	for range [2]int{} { // deterministic membership before measuring
		for _, f := range feds {
			f.Beat()
		}
	}
	b := dgl.NewFlow("fedload").Parallel()
	for i := 0; i < subflows; i++ {
		b.SubFlow(dgl.NewFlow(fmt.Sprintf("shard-%d", i)).
			Step("op", dgl.Op(dgl.OpSleep, map[string]string{"duration": opts.StepLatency.String()})))
	}
	flow := b.Flow()
	clients, err := dialN(firstAddr, opts.Conns, true)
	if err != nil {
		return nil, err
	}
	defer closeAll(clients)
	elapsed, col := closedLoop(clients, opts.Inflight, opts.Duration, func(c *wire.Client) error {
		_, err := c.SubmitFlow("bench", flow)
		return err
	})
	// A request above is one flow of `subflows` subflows; rescale so RPS
	// counts subflows.
	col.mu.Lock()
	scaled := append([]time.Duration(nil), col.latencies...)
	for range [subflows - 1]int{} {
		scaled = append(scaled, col.latencies...)
	}
	col.latencies = scaled
	col.mu.Unlock()
	res := col.result(fmt.Sprintf("federated:%d", opts.FederatedPeers), elapsed)
	return &res, nil
}

// runSharded stands up a shard-lease lookup plus ShardedPeers sharded
// peers and closed-loops synchronous sleep flows against every peer at
// once: users rotate so the routing keys spread over the shard space,
// and each peer routes what it does not own to the owner (wire 1.5
// kind-5 frames). RPS counts completed flows network-wide — the
// any-peer submit capacity of the sharded topology.
func runSharded(opts Options) (*ModeResult, error) {
	const shards = 32
	lookup := wire.NewLookupServer()
	lookup.SetShards(shards)
	lookupAddr, err := lookup.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer lookup.Close()
	var peers []*wire.Peer
	var names []string
	defer func() {
		for _, p := range peers {
			p.Close()
		}
	}()
	var clients []*wire.Client
	for i := 0; i < opts.ShardedPeers; i++ {
		h, err := newHarness(opts)
		if err != nil {
			closeAll(clients)
			return nil, err
		}
		h.server.Close() // the peer brings its own listener
		name := fmt.Sprintf("bench%d", i)
		engine := h.engine
		peer := wire.NewPeerConfig(name, engine, wire.ServerConfig{MaxInflight: opts.MaxInflight})
		peer.EnableSharding(shard.NewManager(shard.Config{
			Self:   name,
			Shards: shards,
			Resident: func(id string) bool {
				_, ok := engine.Execution(id)
				return ok
			},
		}))
		addr, err := peer.Start("127.0.0.1:0", lookupAddr)
		if err != nil {
			closeAll(clients)
			return nil, err
		}
		peers = append(peers, peer)
		names = append(names, name)
		cs, err := dialN(addr, opts.Conns, true)
		if err != nil {
			closeAll(clients)
			return nil, err
		}
		clients = append(clients, cs...)
	}
	defer closeAll(clients)
	// Two rebalance rounds settle ring ownership deterministically: the
	// first releases what the ring moved away, the second claims it.
	for range [2]int{} {
		for _, p := range peers {
			p.RebalanceShards(names)
		}
	}
	flow := sleepFlow(opts.StepLatency)
	var seq atomic.Int64
	elapsed, col := closedLoop(clients, opts.Inflight, opts.Duration, func(c *wire.Client) error {
		// Rotating users spread the routing keys over the shard space, so
		// submissions fan out to every owner instead of one shard.
		req := dgl.NewRequest(fmt.Sprintf("bench%d", seq.Add(1)%64), "", flow)
		res, err := c.Submit(context.Background(), req)
		if err != nil {
			return err
		}
		return res.Err()
	})
	res := col.result(fmt.Sprintf("sharded:%d", opts.ShardedPeers), elapsed)
	return &res, nil
}

// dialN opens n connections, negotiating mux when hello is true.
func dialN(addr string, n int, hello bool) ([]*wire.Client, error) {
	clients := make([]*wire.Client, 0, n)
	for i := 0; i < n; i++ {
		c, err := wire.Dial(addr)
		if err == nil && hello {
			_, err = c.Hello()
		}
		if err != nil {
			for _, prev := range clients {
				prev.Close()
			}
			return nil, err
		}
		clients = append(clients, c)
	}
	return clients, nil
}

func closeAll(clients []*wire.Client) {
	for _, c := range clients {
		c.Close()
	}
}

// closedLoop runs `workers` goroutines per client, each issuing
// requests back to back via issue until the window closes.
func closedLoop(clients []*wire.Client, workers int, window time.Duration,
	issue func(*wire.Client) error) (time.Duration, *collector) {
	col := &collector{}
	deadline := time.Now().Add(window)
	start := time.Now()
	var wg sync.WaitGroup
	for _, c := range clients {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(c *wire.Client) {
				defer wg.Done()
				for time.Now().Before(deadline) {
					t0 := time.Now()
					if err := issue(c); err != nil {
						col.fail()
						return // a broken connection ends this worker
					}
					col.ok(time.Since(t0))
				}
			}(c)
		}
	}
	wg.Wait()
	return time.Since(start), col
}

// Run executes the load experiment and returns the report.
func Run(opts Options) (*Report, error) {
	if opts.Conns <= 0 || opts.Inflight <= 0 || opts.BatchSize <= 0 || opts.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: options must be positive (got %+v)", opts)
	}
	h, err := newHarness(opts)
	if err != nil {
		return nil, err
	}
	defer h.close()

	flow := sleepFlow(opts.StepLatency)
	syncReq := func(c *wire.Client) error {
		_, err := c.SubmitFlow("bench", flow)
		return err
	}
	asyncReq := func(c *wire.Client) error {
		_, err := c.SubmitAsync("bench", flow)
		return err
	}

	rep := &Report{
		Small:       opts.Small,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		StepLatency: opts.StepLatency.String(),
		Conns:       opts.Conns,
		Inflight:    opts.Inflight,
		BatchSize:   opts.BatchSize,
	}

	// Phase 1 — serial: pre-1.2 framing, one request in flight per
	// connection. No Hello, so the session never upgrades.
	serialClients, err := dialN(h.addr, opts.Conns, false)
	if err != nil {
		return nil, err
	}
	elapsed, col := closedLoop(serialClients, 1, opts.Duration, syncReq)
	closeAll(serialClients)
	rep.Serial = col.result("serial", elapsed)
	h.engine.Prune(0)

	// Phase 2 — pipelined: same connection count, multiplexed framing,
	// Inflight concurrent requests per connection.
	muxClients, err := dialN(h.addr, opts.Conns, true)
	if err != nil {
		return nil, err
	}
	elapsed, col = closedLoop(muxClients, opts.Inflight, opts.Duration, syncReq)
	rep.Pipelined = col.result("pipelined", elapsed)
	h.engine.Prune(0)

	// Phase 3 — async-serial: the batch comparison baseline. Async
	// submits return on registration, so this measures per-frame
	// overhead without the step latency.
	asyncClients, err := dialN(h.addr, opts.Conns, false)
	if err != nil {
		closeAll(muxClients)
		return nil, err
	}
	elapsed, col = closedLoop(asyncClients, 1, opts.Duration, asyncReq)
	closeAll(asyncClients)
	rep.AsyncSerial = col.result("async-serial", elapsed)
	h.engine.Prune(0)

	// Phase 4 — batch: BatchSize async flows per frame over the muxed
	// connections. Each batch call counts BatchSize requests.
	reqs := make([]*dgl.Request, opts.BatchSize)
	for i := range reqs {
		reqs[i] = dgl.NewAsyncRequest("bench", "", flow)
	}
	elapsed, col = batchLoop(muxClients, reqs, opts.Duration)
	rep.Batch = col.result("batch", elapsed)
	h.engine.Prune(0)

	// Phases 4b/4c — codec: the variable-heavy workload submitted
	// asynchronously and in batches over paired muxed sessions, text
	// encodings vs the 1.4 binary codec. Everything else — framing,
	// connection count, inflight — is identical, so the RPS ratio is the
	// codec's win alone. A steady-state pruner runs throughout: each
	// completed carrier flow retains its (large) variable map until
	// pruned, and without continuous pruning the faster encoding would
	// measure its own heap growth instead of encode/decode cost — a
	// long-run grid prunes finished flows continuously anyway.
	cflow := codecFlow()
	codecReq := func(c *wire.Client) error {
		_, err := c.SubmitAsync("bench", cflow)
		return err
	}
	// The codec phases run a longer window than the protocol phases:
	// the carrier requests are large, so per-window sample counts are
	// lower and a single GC pause would otherwise swing the ratio.
	codecWindow := 2 * opts.Duration
	codecReqs := make([]*dgl.Request, opts.BatchSize)
	for i := range codecReqs {
		codecReqs[i] = dgl.NewAsyncRequest("bench", "", cflow)
	}
	pruneStop := make(chan struct{})
	var pruneWG sync.WaitGroup
	pruneWG.Add(1)
	go func() {
		defer pruneWG.Done()
		t := time.NewTicker(50 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-pruneStop:
				return
			case <-t.C:
				h.engine.Prune(0)
			}
		}
	}()
	for _, phase := range []struct {
		binary     bool
		asyncRes   *ModeResult
		batchRes   *ModeResult
		asyncLabel string
		batchLabel string
	}{
		{false, &rep.AsyncCodecJSON, &rep.BatchCodecJSON, "async-codec-json", "batch-codec-json"},
		{true, &rep.AsyncCodecBin, &rep.BatchCodecBin, "async-codec-bin", "batch-codec-bin"},
	} {
		clients, err := dialN(h.addr, opts.Conns, true)
		if err != nil {
			closeAll(muxClients)
			return nil, err
		}
		if !phase.binary {
			for _, c := range clients {
				c.DisableBinary()
			}
		}
		runtime.GC() // level the heap between paired phases
		elapsed, col = closedLoop(clients, opts.Inflight, codecWindow, codecReq)
		*phase.asyncRes = col.result(phase.asyncLabel, elapsed)
		h.engine.Prune(0)
		runtime.GC()
		elapsed, col = batchLoop(clients, codecReqs, codecWindow)
		*phase.batchRes = col.result(phase.batchLabel, elapsed)
		h.engine.Prune(0)
		closeAll(clients)
	}
	close(pruneStop)
	pruneWG.Wait()

	// Phase 5 — open loop: fire sync requests at TargetRPS over the
	// muxed connections regardless of completions, so queueing delay
	// shows up in the latency percentiles instead of hiding behind a
	// closed loop's self-throttling.
	if opts.TargetRPS > 0 {
		olCol := &collector{}
		interval := time.Second / time.Duration(opts.TargetRPS)
		ticker := time.NewTicker(interval)
		olDeadline := time.Now().Add(opts.Duration)
		olStart := time.Now()
		var olWG sync.WaitGroup
		i := 0
		for now := range ticker.C {
			if !now.Before(olDeadline) {
				break
			}
			c := muxClients[i%len(muxClients)]
			i++
			olWG.Add(1)
			go func(c *wire.Client) {
				defer olWG.Done()
				t0 := time.Now()
				if err := syncReq(c); err != nil {
					olCol.fail()
					return
				}
				olCol.ok(time.Since(t0))
			}(c)
		}
		ticker.Stop()
		olWG.Wait()
		ol := olCol.result("open-loop", time.Since(olStart))
		rep.OpenLoop = &ol
	}
	closeAll(muxClients)

	// Phase 6 (optional) — federated: the same sleep workload as a
	// parallel flow whose subflows the first peer's federation delegates
	// across FederatedPeers peers. Requests count subflows, so RPS is
	// comparable to the other phases' flows/s.
	if opts.FederatedPeers >= 2 {
		fed, err := runFederated(opts)
		if err != nil {
			return nil, err
		}
		rep.Federated = fed
		rep.FederatedPeers = opts.FederatedPeers
	}

	// Phase 7 (optional) — sharded: sync sleep flows submitted to every
	// peer of a sharded topology and routed to their shard owners.
	if opts.ShardedPeers >= 2 {
		sh, err := runSharded(opts)
		if err != nil {
			return nil, err
		}
		rep.Sharded = sh
		rep.ShardedPeers = opts.ShardedPeers
	}

	if rep.Serial.RPS > 0 {
		rep.SpeedupPipelined = rep.Pipelined.RPS / rep.Serial.RPS
	}
	if rep.AsyncSerial.RPS > 0 {
		rep.SpeedupBatch = rep.Batch.RPS / rep.AsyncSerial.RPS
	}
	if rep.AsyncCodecJSON.RPS > 0 {
		rep.SpeedupCodecAsync = rep.AsyncCodecBin.RPS / rep.AsyncCodecJSON.RPS
	}
	if rep.BatchCodecJSON.RPS > 0 {
		rep.SpeedupCodecBatch = rep.BatchCodecBin.RPS / rep.BatchCodecJSON.RPS
	}
	return rep, nil
}
