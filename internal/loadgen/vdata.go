// Virtual-data load phase (`dgfbench -vdata`, experiment E18): proves
// the derivation catalog's two headline claims with one in-process run
// (docs/VDATA.md).
//
// Warm-pass elision: a set of distinct pure transformations runs cold
// against a durable catalog, then runs again. The warm pass must hit
// the catalog for (nearly) every step — the gated hit rate — and
// finish a large multiple faster than the cold pass, because a hit
// costs one catalog read instead of the transformation's compute time.
// The catalog is then closed and reopened to prove the derivations
// survive restart (replayed_entries).
//
// Cross-peer reuse: two wire peers share a lookup registry. PeerA
// computes the derivation set; peerB then runs the same flows, each
// local miss resolving the holder through the registry and grafting
// the entry over wire 1.8's vdata verb. PeerB's pass must beat cold
// execution — fetching a memoized result across the fleet is cheaper
// than recomputing it — with every reuse counted in
// vdata_remote_hits_total.
package loadgen

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"time"

	"datagridflow/internal/dgl"
	"datagridflow/internal/dgms"
	"datagridflow/internal/matrix"
	"datagridflow/internal/namespace"
	"datagridflow/internal/obs"
	"datagridflow/internal/sim"
	"datagridflow/internal/vdata"
	"datagridflow/internal/vfs"
	"datagridflow/internal/wire"
)

// VdataOptions sizes the virtual-data phase. Use VdataDefaults or
// VdataSmallDefaults as a starting point.
type VdataOptions struct {
	// Small marks the CI-sized preset in the report.
	Small bool
	// Flows is the number of distinct pure derivations in the set.
	Flows int
	// StepLatency is each transformation's simulated compute time (real
	// wall clock, so elision shows up as wall-clock speedup).
	StepLatency time.Duration
}

// VdataDefaults is the full-scale preset.
func VdataDefaults() VdataOptions {
	return VdataOptions{Flows: 32, StepLatency: 20 * time.Millisecond}
}

// VdataSmallDefaults is the CI-sized preset.
func VdataSmallDefaults() VdataOptions {
	return VdataOptions{Small: true, Flows: 12, StepLatency: 10 * time.Millisecond}
}

// VdataReport is the artifact `dgfbench -vdata` writes as
// BENCH_vdata.json; the CI vdata job gates on it (docs/BENCH.md).
type VdataReport struct {
	Small       bool   `json:"small"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	Flows       int    `json:"flows"`
	StepLatency string `json:"step_latency"`

	// Warm-pass elision against a durable catalog. HitRate is the gated
	// quantity (warm-pass hits / flows); WarmSpeedup = ColdMs/WarmMs.
	ColdMs      float64 `json:"cold_ms"`
	WarmMs      float64 `json:"warm_ms"`
	HitRate     float64 `json:"hit_rate"`
	WarmSpeedup float64 `json:"warm_speedup"`
	// Entries is the catalog population after the passes;
	// ReplayedEntries is the population after close + reopen — equality
	// proves the derivations are durable, not resident-only.
	Entries         int `json:"entries"`
	ReplayedEntries int `json:"replayed_entries"`

	// Cross-peer reuse: peerA computes RemoteColdMs, peerB reuses in
	// RemoteMs with RemoteHits wire grafts. RemoteSpeedup =
	// RemoteColdMs/RemoteMs — fleet reuse must beat recomputation.
	RemoteColdMs  float64 `json:"remote_cold_ms"`
	RemoteMs      float64 `json:"remote_ms"`
	RemoteHits    int     `json:"remote_hits"`
	RemoteSpeedup float64 `json:"remote_speedup"`
}

// String renders the report as the human-readable table dgfbench
// prints before writing the JSON artifact.
func (r *VdataReport) String() string {
	var b []byte
	b = fmt.Appendf(b, "== vdata load (%d flows, step=%s, gomaxprocs=%d) ==\n",
		r.Flows, r.StepLatency, r.GoMaxProcs)
	b = fmt.Appendf(b, "warm elision: cold %.0fms -> warm %.0fms (%.1fx), hit rate %.2f\n",
		r.ColdMs, r.WarmMs, r.WarmSpeedup, r.HitRate)
	b = fmt.Appendf(b, "durability: %d entries, %d replayed after reopen\n",
		r.Entries, r.ReplayedEntries)
	b = fmt.Appendf(b, "cross-peer: cold %.0fms -> reuse %.0fms (%.1fx), %d remote hits\n",
		r.RemoteColdMs, r.RemoteMs, r.RemoteSpeedup, r.RemoteHits)
	return string(b)
}

// vdataGrid builds a real-clock grid on its own metrics registry —
// wall time matters here, and counters must not cross phases.
func vdataGrid(name string) (*dgms.Grid, *obs.Registry, error) {
	reg := obs.NewRegistry()
	g := dgms.New(dgms.Options{Clock: sim.RealClock{}, Obs: reg})
	if err := g.RegisterResource(vfs.New("vdata-"+name, "local", vfs.Disk, 0)); err != nil {
		return nil, nil, err
	}
	if err := g.CreateCollectionAll(g.Admin(), "/grid"); err != nil {
		return nil, nil, err
	}
	if err := g.Namespace().SetPermission("/grid", "*", namespace.PermWrite); err != nil {
		return nil, nil, err
	}
	return g, reg, nil
}

// vdataFlow is the i-th distinct pure transformation of the set.
func vdataFlow(i int, latency time.Duration) dgl.Flow {
	return dgl.NewFlow(fmt.Sprintf("derive-%d", i)).
		PureStep("transform", dgl.Op(dgl.OpExec, map[string]string{
			"command":    fmt.Sprintf("transform /grid/raw/part-%d", i),
			"cpuSeconds": strconv.FormatFloat(latency.Seconds(), 'f', -1, 64),
			"resultVar":  "derived",
		}), fmt.Sprintf("/grid/derived/part-%d.dat", i)).
		Flow()
}

// runVdataSet runs the whole derivation set sequentially and returns
// the wall-clock milliseconds.
func runVdataSet(e *matrix.Engine, opts VdataOptions) (float64, error) {
	t0 := time.Now()
	for i := 0; i < opts.Flows; i++ {
		ex, err := e.Run("user", vdataFlow(i, opts.StepLatency))
		if err != nil {
			return 0, err
		}
		if err := ex.Err(); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(t0).Microseconds()) / 1000, nil
}

// RunVdata executes the virtual-data phase and returns the report.
func RunVdata(opts VdataOptions) (*VdataReport, error) {
	if opts.Flows <= 0 || opts.StepLatency <= 0 {
		return nil, fmt.Errorf("loadgen: vdata options must be positive (got %+v)", opts)
	}
	rep := &VdataReport{
		Small:       opts.Small,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Flows:       opts.Flows,
		StepLatency: opts.StepLatency.String(),
	}

	// Phase 1 — warm-pass elision against a durable catalog.
	dir, err := os.MkdirTemp("", "vdata-bench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	g, reg, err := vdataGrid("local")
	if err != nil {
		return nil, err
	}
	cat, err := vdata.Open(dir, reg)
	if err != nil {
		return nil, err
	}
	e := matrix.NewEngine(g)
	e.SetVdata(cat)
	if rep.ColdMs, err = runVdataSet(e, opts); err != nil {
		return nil, err
	}
	if rep.WarmMs, err = runVdataSet(e, opts); err != nil {
		return nil, err
	}
	rep.HitRate = float64(reg.Counter("vdata_hits_total").Value()) / float64(opts.Flows)
	if rep.WarmMs > 0 {
		rep.WarmSpeedup = rep.ColdMs / rep.WarmMs
	}
	rep.Entries = cat.Len()

	// Durability: reopen the log and count what replays.
	if err := cat.Close(); err != nil {
		return nil, err
	}
	reopened, err := vdata.Open(dir, obs.NewRegistry())
	if err != nil {
		return nil, err
	}
	rep.ReplayedEntries = reopened.Len()
	if err := reopened.Close(); err != nil {
		return nil, err
	}

	// Phase 2 — cross-peer reuse over wire 1.8 and the lookup registry.
	ls := wire.NewLookupServer()
	ls.SetObs(obs.NewRegistry())
	lookupAddr, err := ls.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ls.Close()
	newPeer := func(name string) (*wire.Peer, *matrix.Engine, *obs.Registry, error) {
		pg, preg, err := vdataGrid(name)
		if err != nil {
			return nil, nil, nil, err
		}
		pe := matrix.NewEngineConfig(pg, matrix.Config{IDPrefix: name + ":"})
		pcat, err := vdata.Open("", preg)
		if err != nil {
			return nil, nil, nil, err
		}
		p := wire.NewPeer(name, pe)
		p.EnableVdata(pcat)
		if _, err := p.Start("127.0.0.1:0", lookupAddr); err != nil {
			return nil, nil, nil, err
		}
		return p, pe, preg, nil
	}
	pa, ea, _, err := newPeer("peerA")
	if err != nil {
		return nil, err
	}
	defer pa.Close()
	pb, eb, regB, err := newPeer("peerB")
	if err != nil {
		return nil, err
	}
	defer pb.Close()
	if rep.RemoteColdMs, err = runVdataSet(ea, opts); err != nil {
		return nil, err
	}
	if rep.RemoteMs, err = runVdataSet(eb, opts); err != nil {
		return nil, err
	}
	rep.RemoteHits = int(regB.Counter("vdata_remote_hits_total").Value())
	if rep.RemoteMs > 0 {
		rep.RemoteSpeedup = rep.RemoteColdMs / rep.RemoteMs
	}
	return rep, nil
}
