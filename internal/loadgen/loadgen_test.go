package loadgen

import (
	"encoding/json"
	"testing"
	"time"
)

// tinyOptions keeps the harness run under a second for unit testing.
func tinyOptions() Options {
	return Options{
		Small:       true,
		Duration:    150 * time.Millisecond,
		Conns:       1,
		Inflight:    4,
		BatchSize:   4,
		TargetRPS:   100,
		StepLatency: time.Millisecond,
	}
}

func TestRunProducesReport(t *testing.T) {
	rep, err := Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []ModeResult{rep.Serial, rep.Pipelined, rep.AsyncSerial, rep.Batch} {
		if m.Requests == 0 {
			t.Errorf("phase %s measured zero requests", m.Mode)
		}
		if m.Errors != 0 {
			t.Errorf("phase %s had %d errors", m.Mode, m.Errors)
		}
		if m.RPS <= 0 {
			t.Errorf("phase %s RPS = %v", m.Mode, m.RPS)
		}
		if m.P99ms < m.P50ms {
			t.Errorf("phase %s p99 %.2f < p50 %.2f", m.Mode, m.P99ms, m.P50ms)
		}
	}
	if rep.OpenLoop == nil || rep.OpenLoop.Requests == 0 {
		t.Error("open-loop phase missing or empty")
	}
	// The load point of the whole exercise: pipelining overlaps the
	// step latency that serial mode pays per round trip. Even this tiny
	// configuration shows a clear multiple.
	if rep.SpeedupPipelined < 2 {
		t.Errorf("pipelined speedup = %.2fx, want >= 2x even at tiny scale", rep.SpeedupPipelined)
	}
	if rep.SpeedupBatch <= 0 {
		t.Errorf("batch speedup = %.2f", rep.SpeedupBatch)
	}
	// The report must round-trip as the BENCH_wire.json artifact.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.SpeedupPipelined != rep.SpeedupPipelined {
		t.Error("speedup lost in JSON round trip")
	}
	if rep.String() == "" {
		t.Error("empty table rendering")
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Fatal("zero options accepted")
	}
}
