package loadgen

import (
	"testing"
	"time"
)

// TestRunTenantIsolation runs the multi-tenant phase at reduced scale
// and checks the report's gated invariants: the registry footprint is
// measured, no steady-phase quota rejection fires (the tenants have
// weights but no limits), the positive-control breach does fire, and
// the weight-1 lanes are not starved by the 10x aggressor. The
// threshold here is looser than benchgate's 0.6 — a CI box under -race
// adds scheduling noise the bench run does not see.
func TestRunTenantIsolation(t *testing.T) {
	opts := TenantSmallDefaults()
	opts.Duration = 600 * time.Millisecond
	opts.RegistryTenants = 10_000
	rep, err := RunTenant(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	if rep.RegistryBytesPerTenant <= 0 {
		t.Error("registry footprint not measured")
	}
	if rep.FalseRejections != 0 {
		t.Errorf("steady phase saw %d quota rejections; tenants have no limits", rep.FalseRejections)
	}
	if rep.BreachRejections == 0 {
		t.Error("positive control drew no rejections: quota enforcement is dead")
	}
	if len(rep.Lanes) != 1+opts.FairTenants {
		t.Fatalf("lanes = %d, want %d", len(rep.Lanes), 1+opts.FairTenants)
	}
	if rep.TotalFlows == 0 {
		t.Fatal("no flows completed")
	}
	if rep.MinFairAttained < 0.4 {
		t.Errorf("worst 1x tenant attained %.2f of fair share; aggressor starved it", rep.MinFairAttained)
	}
}

// TestRunTenantRejectsBadOptions covers the option validation.
func TestRunTenantRejectsBadOptions(t *testing.T) {
	if _, err := RunTenant(TenantOptions{}); err == nil {
		t.Fatal("zero options accepted")
	}
}
