// Multi-tenant load phase (`dgfbench -tenant`, experiment E17): proves
// the tenancy plane's two headline claims with one in-process run.
//
// Registry scale: 100k+ synthetic tenants registered with distinct
// quotas, with the per-tenant heap footprint measured — the registry
// must admit planet-scale tenant populations without a resident-memory
// story of its own (docs/TENANCY.md).
//
// Isolation: a deliberately narrow server (small MaxInflight, so
// admission is the bottleneck) shared by one flooding 10x-weight
// aggressor and several 1x tenants, everyone backlogged. Under flat
// FIFO the aggressor's extra workers would take a proportional share of
// the grant stream; under weighted deficit round-robin each tenant's
// share converges on weight/Σweights regardless of how many waiters it
// parks. The gated quantity is the worst 1x tenant's attained fraction
// of its fair share — ≥0.6 means a 10x aggressor cannot starve 1x
// tenants (benchgate, docs/BENCH.md).
//
// The same run doubles as the quota false-positive check: the isolation
// tenants have weights but no resource limits, so any quota rejection
// during the steady phase is a false rejection (gated at zero), and a
// positive-control subphase floods a deliberately tiny quota to prove
// enforcement is actually live rather than silently disabled.
package loadgen

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"datagridflow/internal/obs"
	"datagridflow/internal/tenant"
	"datagridflow/internal/wire"
)

// TenantOptions sizes the multi-tenant phase. Use TenantDefaults or
// TenantSmallDefaults as a starting point.
type TenantOptions struct {
	// Small marks the CI-sized preset in the report.
	Small bool
	// Duration is the isolation phase's measuring window.
	Duration time.Duration
	// RegistryTenants is the synthetic tenant population registered for
	// the footprint measurement (the acceptance floor is 100k).
	RegistryTenants int
	// FairTenants is the number of weight-1 tenants sharing the server
	// with the aggressor.
	FairTenants int
	// AggressorWeight is the aggressor's scheduling weight.
	AggressorWeight float64
	// WorkersPerTenant is the closed-loop worker count per fair tenant;
	// the aggressor runs 4x as many (it floods).
	WorkersPerTenant int
	// StepLatency is the simulated grid-operation latency per flow.
	StepLatency time.Duration
	// MaxInflight caps the server worker pool. Kept small on purpose:
	// the phase measures admission scheduling, so admission must be the
	// bottleneck.
	MaxInflight int
}

// TenantDefaults is the full-scale preset.
func TenantDefaults() TenantOptions {
	return TenantOptions{
		Duration:         3 * time.Second,
		RegistryTenants:  120_000,
		FairTenants:      4,
		AggressorWeight:  10,
		WorkersPerTenant: 8,
		StepLatency:      3 * time.Millisecond,
		MaxInflight:      4,
	}
}

// TenantSmallDefaults is the CI-sized preset. The registry population
// stays at the acceptance floor — registering tenants is cheap, and
// shrinking it would measure a different footprint curve.
func TenantSmallDefaults() TenantOptions {
	return TenantOptions{
		Small:            true,
		Duration:         1200 * time.Millisecond,
		RegistryTenants:  100_000,
		FairTenants:      4,
		AggressorWeight:  10,
		WorkersPerTenant: 6,
		StepLatency:      2 * time.Millisecond,
		MaxInflight:      4,
	}
}

// TenantLane is one tenant's outcome in the isolation phase.
type TenantLane struct {
	Name    string  `json:"name"`
	Weight  float64 `json:"weight"`
	Workers int     `json:"workers"`
	Flows   int     `json:"flows"`
	// Share is the lane's fraction of all completed flows; FairShare is
	// weight/Σweights; Attained is Share/FairShare (1.0 = exactly fair).
	Share     float64 `json:"share"`
	FairShare float64 `json:"fair_share"`
	Attained  float64 `json:"attained"`
}

// TenantReport is the artifact `dgfbench -tenant` writes as
// BENCH_tenant.json; the CI tenancy job gates on it (docs/BENCH.md).
type TenantReport struct {
	Small       bool    `json:"small"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	Duration    string  `json:"duration"`
	StepLatency string  `json:"step_latency"`
	MaxInflight int     `json:"max_inflight"`
	AggressorW  float64 `json:"aggressor_weight"`

	// Registry footprint: RegistryTenants registered with distinct
	// quotas, heap growth divided by the population.
	RegistryTenants        int     `json:"registry_tenants"`
	RegistryBytesPerTenant float64 `json:"registry_bytes_per_tenant"`
	RegistryMB             float64 `json:"registry_mb"`

	// Isolation phase: Lanes[0] is the aggressor, the rest are the fair
	// tenants. MinFairAttained is the gated quantity — the worst 1x
	// lane's attained fraction of its weight-proportional fair share.
	Lanes           []TenantLane `json:"lanes"`
	TotalFlows      int          `json:"total_flows"`
	MinFairAttained float64      `json:"min_fair_attained"`

	// FalseRejections counts quota rejections in the steady phase, where
	// no tenant has a resource limit — must be 0. SubmitErrors counts
	// every other error (transport, timeout) for information.
	FalseRejections int `json:"false_rejections"`
	SubmitErrors    int `json:"submit_errors"`
	// BreachRejections is the positive control: rejections observed when
	// a 2-flow quota is flooded — must be >= 1 or enforcement is dead.
	BreachRejections int `json:"breach_rejections"`
}

// String renders the report as the human-readable table dgfbench
// prints before writing the JSON artifact.
func (r *TenantReport) String() string {
	var b []byte
	b = fmt.Appendf(b, "== tenant load (window=%s inflight=%d step=%s gomaxprocs=%d) ==\n",
		r.Duration, r.MaxInflight, r.StepLatency, r.GoMaxProcs)
	b = fmt.Appendf(b, "registry: %d tenants, %.0f B/tenant, %.1f MB total\n",
		r.RegistryTenants, r.RegistryBytesPerTenant, r.RegistryMB)
	for _, l := range r.Lanes {
		b = fmt.Appendf(b, "%-12s w=%-5.1f workers=%-3d %6d flows  share %5.1f%%  fair %5.1f%%  attained %.2f\n",
			l.Name, l.Weight, l.Workers, l.Flows, l.Share*100, l.FairShare*100, l.Attained)
	}
	b = fmt.Appendf(b, "isolation: worst 1x tenant attained %.2f of fair share (gate >= 0.60)\n", r.MinFairAttained)
	b = fmt.Appendf(b, "quotas: %d false rejections (steady), %d other errors, %d breach rejections (positive control)\n",
		r.FalseRejections, r.SubmitErrors, r.BreachRejections)
	return string(b)
}

// measureRegistryFootprint registers n synthetic tenants with distinct
// quotas and returns the heap growth per tenant. The registry and obs
// counters are local so the measurement does not leak gauges into the
// process-wide snapshot.
func measureRegistryFootprint(n int) (perTenant float64, totalMB float64) {
	reg := tenant.NewRegistry(tenant.Quota{}, obs.NewRegistry())
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	for i := 0; i < n; i++ {
		// Varied quotas so no sharing trick can flatter the number: each
		// tenant's Quota is a distinct value.
		reg.Register(fmt.Sprintf("t%07d", i), tenant.Quota{
			Weight:        float64(1 + i%8),
			MaxFlows:      64 + i%512,
			MaxStoreBytes: int64(1<<20 + i),
			SubmitRate:    float64(10 + i%100),
		})
	}
	runtime.GC()
	runtime.ReadMemStats(&m1)
	grown := float64(m1.HeapAlloc) - float64(m0.HeapAlloc)
	if grown < 0 {
		grown = 0
	}
	runtime.KeepAlive(reg)
	return grown / float64(n), grown / (1 << 20)
}

// quotaRejected reports whether an error message observed at the
// client is a tenancy quota rejection (as opposed to a transport
// failure or an engine error).
func quotaRejected(msg string) bool {
	return strings.Contains(msg, "quota") || strings.Contains(msg, "rate exceeded")
}

// RunTenant executes the multi-tenant phase and returns the report.
func RunTenant(opts TenantOptions) (*TenantReport, error) {
	if opts.Duration <= 0 || opts.FairTenants <= 0 || opts.WorkersPerTenant <= 0 ||
		opts.MaxInflight <= 0 || opts.RegistryTenants <= 0 {
		return nil, fmt.Errorf("loadgen: tenant options must be positive (got %+v)", opts)
	}
	rep := &TenantReport{
		Small:           opts.Small,
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		Duration:        opts.Duration.String(),
		StepLatency:     opts.StepLatency.String(),
		MaxInflight:     opts.MaxInflight,
		AggressorW:      opts.AggressorWeight,
		RegistryTenants: opts.RegistryTenants,
	}

	// Phase 1 — registry footprint at population scale.
	rep.RegistryBytesPerTenant, rep.RegistryMB = measureRegistryFootprint(opts.RegistryTenants)

	// Phase 2 — isolation. One narrow server, tokens verified, weights
	// enforced; every lane floods it with more demand than its share.
	h, err := newHarness(Options{MaxInflight: opts.MaxInflight})
	if err != nil {
		return nil, err
	}
	defer h.close()
	auth, err := tenant.NewAuthority([]byte("loadgen-tenant-bench-secret"))
	if err != nil {
		return nil, err
	}
	treg := tenant.NewRegistry(tenant.Quota{}, obs.NewRegistry())
	h.server.SetTenancy(auth, treg, true)

	type lane struct {
		name    string
		weight  float64
		workers int
		flows   atomic.Int64
	}
	lanes := []*lane{{name: "aggressor", weight: opts.AggressorWeight, workers: 4 * opts.WorkersPerTenant}}
	for i := 0; i < opts.FairTenants; i++ {
		lanes = append(lanes, &lane{name: fmt.Sprintf("fair%d", i), weight: 1, workers: opts.WorkersPerTenant})
	}
	for _, l := range lanes {
		// Weights only — no resource limits, so the steady phase must see
		// zero quota rejections.
		treg.Register(l.name, tenant.Quota{Weight: l.weight})
	}

	flow := sleepFlow(opts.StepLatency)
	var falseRejects, otherErrs atomic.Int64
	deadline := time.Now().Add(opts.Duration)
	var wg sync.WaitGroup
	var clients []*wire.Client
	defer func() { closeAll(clients) }()
	for _, l := range lanes {
		tok, err := auth.Mint(l.name, time.Hour)
		if err != nil {
			return nil, err
		}
		c, err := wire.Dial(h.addr)
		if err != nil {
			return nil, err
		}
		clients = append(clients, c)
		c.SetToken(tok)
		if _, err := c.Hello(); err != nil {
			return nil, err
		}
		for w := 0; w < l.workers; w++ {
			wg.Add(1)
			go func(l *lane) {
				defer wg.Done()
				for time.Now().Before(deadline) {
					resp, err := c.SubmitFlow(l.name, flow)
					if err != nil {
						otherErrs.Add(1)
						return // a broken connection ends this worker
					}
					if resp.Error != "" {
						if quotaRejected(resp.Error) {
							falseRejects.Add(1)
						} else {
							otherErrs.Add(1)
						}
						continue
					}
					l.flows.Add(1)
				}
			}(l)
		}
	}
	wg.Wait()

	var sumW float64
	total := 0
	for _, l := range lanes {
		sumW += l.weight
		total += int(l.flows.Load())
	}
	rep.TotalFlows = total
	rep.MinFairAttained = 1
	for _, l := range lanes {
		tl := TenantLane{
			Name: l.name, Weight: l.weight, Workers: l.workers,
			Flows: int(l.flows.Load()), FairShare: l.weight / sumW,
		}
		if total > 0 {
			tl.Share = float64(tl.Flows) / float64(total)
			tl.Attained = tl.Share / tl.FairShare
		}
		rep.Lanes = append(rep.Lanes, tl)
		if l.weight == 1 && tl.Attained < rep.MinFairAttained {
			rep.MinFairAttained = tl.Attained
		}
	}
	rep.FalseRejections = int(falseRejects.Load())
	rep.SubmitErrors = int(otherErrs.Load())

	// Phase 3 — positive control: a 2-flow quota flooded with async
	// long-ish sleeps must draw rejections, proving enforcement was live
	// during the phases above rather than silently disabled.
	treg.Register("breach", tenant.Quota{Weight: 1, MaxFlows: 2})
	btok, err := auth.Mint("breach", time.Hour)
	if err != nil {
		return nil, err
	}
	bc, err := wire.Dial(h.addr)
	if err != nil {
		return nil, err
	}
	defer bc.Close()
	bc.SetToken(btok)
	if _, err := bc.Hello(); err != nil {
		return nil, err
	}
	hold := sleepFlow(300 * time.Millisecond)
	for i := 0; i < 24; i++ {
		if _, err := bc.SubmitAsync("breach", hold); err != nil {
			if quotaRejected(err.Error()) {
				rep.BreachRejections++
			} else {
				rep.SubmitErrors++
			}
		}
	}
	return rep, nil
}
