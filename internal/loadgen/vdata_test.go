package loadgen

import (
	"testing"
	"time"
)

// TestRunVdataSmoke runs a tiny vdata phase end to end and checks the
// claims the benchgate vdata rule will gate.
func TestRunVdataSmoke(t *testing.T) {
	rep, err := RunVdata(VdataOptions{Flows: 4, StepLatency: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.HitRate < 1 {
		t.Errorf("hit rate = %.2f, want 1.00 on the warm pass", rep.HitRate)
	}
	if rep.WarmSpeedup <= 1 {
		t.Errorf("warm speedup = %.2f, want > 1", rep.WarmSpeedup)
	}
	if rep.ReplayedEntries != rep.Entries || rep.Entries != 4 {
		t.Errorf("durability: entries=%d replayed=%d, want 4/4", rep.Entries, rep.ReplayedEntries)
	}
	if rep.RemoteHits != 4 {
		t.Errorf("remote hits = %d, want 4", rep.RemoteHits)
	}
	if rep.RemoteSpeedup <= 1 {
		t.Errorf("remote speedup = %.2f, want > 1", rep.RemoteSpeedup)
	}
	if rep.String() == "" {
		t.Error("empty render")
	}
}

func TestRunVdataRejectsBadOptions(t *testing.T) {
	if _, err := RunVdata(VdataOptions{}); err == nil {
		t.Error("zero options accepted")
	}
}
