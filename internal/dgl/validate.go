package dgl

import (
	"fmt"
	"strings"
	"time"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/expr"
)

// ErrInvalid wraps all validation failures. It carries the
// dgferr.ErrInvalid class for the public taxonomy.
var ErrInvalid = dgferr.Mark(dgferr.ErrInvalid, "dgl: invalid document")

func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
}

// Validate checks a request for structural soundness before execution:
// the Flow/StatusQuery choice, control-pattern requirements, child
// homogeneity, name uniqueness, condition syntax and operation types.
// Validation mirrors what an XML-Schema validator would enforce plus the
// semantic constraints the schema cannot express.
func (r *Request) Validate() error {
	if (r.Flow == nil) == (r.StatusQuery == nil) {
		return invalidf("request must contain exactly one of flow or flowStatusQuery")
	}
	if r.User.Name == "" {
		return invalidf("gridUser.name is required")
	}
	if r.StatusQuery != nil {
		if r.StatusQuery.ID == "" {
			return invalidf("flowStatusQuery.id is required")
		}
		return nil
	}
	return ValidateFlow(r.Flow, nil)
}

// ValidateFlow checks one flow tree. extraOps lists additional operation
// types registered with the executing engine (domain-specific
// extensions); pass nil to accept only built-ins.
func ValidateFlow(f *Flow, extraOps map[string]bool) error {
	return validateFlow(f, "/"+f.Name, extraOps)
}

func validateFlow(f *Flow, path string, extraOps map[string]bool) error {
	if f.Name == "" {
		return invalidf("flow at %s has no name", path)
	}
	if len(f.Flows) > 0 && len(f.Steps) > 0 {
		return invalidf("flow %s mixes sub-flows and steps", path)
	}
	if err := validateVariables(f.Variables, path); err != nil {
		return err
	}
	// Control pattern requirements.
	switch f.Logic.Control {
	case Sequential, Parallel:
		if f.Logic.Condition != "" {
			return invalidf("flow %s: %s control takes no condition", path, f.Logic.Control)
		}
		if f.Logic.Iterate != nil {
			return invalidf("flow %s: %s control takes no iterate", path, f.Logic.Control)
		}
	case While:
		if f.Logic.Condition == "" {
			return invalidf("flow %s: while requires a condition", path)
		}
		if f.Logic.Iterate != nil {
			return invalidf("flow %s: while takes no iterate", path)
		}
		if _, err := expr.Parse(f.Logic.Condition); err != nil {
			return invalidf("flow %s: bad while condition: %v", path, err)
		}
	case Switch:
		if f.Logic.Condition == "" {
			return invalidf("flow %s: switch requires a condition", path)
		}
		if f.Logic.Iterate != nil {
			return invalidf("flow %s: switch takes no iterate", path)
		}
		if _, err := expr.Parse(f.Logic.Condition); err != nil {
			return invalidf("flow %s: bad switch condition: %v", path, err)
		}
	case ForEach:
		it := f.Logic.Iterate
		if it == nil {
			return invalidf("flow %s: forEach requires iterate", path)
		}
		if it.Var == "" {
			return invalidf("flow %s: iterate.var is required", path)
		}
		sources := 0
		if it.In != "" {
			sources++
		}
		if it.Times > 0 {
			sources++
		}
		if it.Query != nil {
			sources++
		}
		if sources != 1 {
			return invalidf("flow %s: iterate needs exactly one of in, times, query", path)
		}
		if it.Times < 0 {
			return invalidf("flow %s: iterate.times must be non-negative", path)
		}
	case "":
		return invalidf("flow %s: flowLogic.control is required", path)
	default:
		return invalidf("flow %s: unknown control %q", path, f.Logic.Control)
	}
	if err := validateRules(f.Logic.Rules, path, extraOps); err != nil {
		return err
	}
	// Children: unique names within the flow, each child valid.
	seen := map[string]bool{}
	for i := range f.Flows {
		child := &f.Flows[i]
		if seen[child.Name] {
			return invalidf("flow %s: duplicate child name %q", path, child.Name)
		}
		seen[child.Name] = true
		if err := validateFlow(child, path+"/"+child.Name, extraOps); err != nil {
			return err
		}
	}
	for i := range f.Steps {
		st := &f.Steps[i]
		if seen[st.Name] {
			return invalidf("flow %s: duplicate child name %q", path, st.Name)
		}
		seen[st.Name] = true
		if err := validateStep(st, path+"/"+st.Name, extraOps); err != nil {
			return err
		}
	}
	return nil
}

func validateStep(s *Step, path string, extraOps map[string]bool) error {
	if s.Name == "" {
		return invalidf("step at %s has no name", path)
	}
	switch s.OnError {
	case "", OnErrorAbort, OnErrorContinue, OnErrorRetry:
	default:
		return invalidf("step %s: unknown onError %q", path, s.OnError)
	}
	if s.Retries < 0 {
		return invalidf("step %s: negative retries", path)
	}
	if s.OnError != OnErrorRetry && s.Retries > 0 {
		return invalidf("step %s: retries set but onError is %q", path, s.OnError)
	}
	if s.OnError != OnErrorRetry && (s.Backoff != "" || s.MaxBackoff != "") {
		return invalidf("step %s: backoff set but onError is %q", path, s.OnError)
	}
	if s.MaxBackoff != "" && s.Backoff == "" {
		return invalidf("step %s: maxBackoff without backoff", path)
	}
	for _, a := range []struct{ name, val string }{
		{"backoff", s.Backoff}, {"maxBackoff", s.MaxBackoff}, {"timeout", s.Timeout},
	} {
		if a.val == "" {
			continue
		}
		d, err := time.ParseDuration(a.val)
		if err != nil {
			return invalidf("step %s: bad %s %q: %v", path, a.name, a.val, err)
		}
		if d < 0 {
			return invalidf("step %s: negative %s", path, a.name)
		}
	}
	if s.Pure && len(s.OutputList()) == 0 {
		return invalidf("step %s: pure step declares no outputs", path)
	}
	for _, out := range s.OutputList() {
		if out == "" {
			return invalidf("step %s: empty path in outputs", path)
		}
	}
	if err := validateVariables(s.Variables, path); err != nil {
		return err
	}
	if err := validateRules(s.Rules, path, extraOps); err != nil {
		return err
	}
	return validateOperation(&s.Operation, path, extraOps)
}

// OutputList parses the step's comma-separated outputs attribute into
// trimmed logical paths. Interior empty items are preserved so
// validation can reject them ("a,,b" is a typo, not two outputs).
func (s *Step) OutputList() []string {
	if strings.TrimSpace(s.Outputs) == "" {
		return nil
	}
	parts := strings.Split(s.Outputs, ",")
	outs := make([]string, 0, len(parts))
	for _, p := range parts {
		outs = append(outs, strings.TrimSpace(p))
	}
	return outs
}

// RetryTiming is a Step's parsed retry-timing attributes.
type RetryTiming struct {
	// Backoff is the base retry delay; zero retries immediately.
	Backoff time.Duration
	// MaxBackoff caps exponential growth; zero means uncapped.
	MaxBackoff time.Duration
	// Timeout bounds one attempt; zero means unbounded.
	Timeout time.Duration
}

// Timing parses the step's duration attributes. Unset — or, on an
// unvalidated document, malformed — attributes come back zero.
func (s *Step) Timing() RetryTiming {
	parse := func(v string) time.Duration {
		if v == "" {
			return 0
		}
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return 0
		}
		return d
	}
	return RetryTiming{
		Backoff:    parse(s.Backoff),
		MaxBackoff: parse(s.MaxBackoff),
		Timeout:    parse(s.Timeout),
	}
}

func validateVariables(vars []Variable, path string) error {
	seen := map[string]bool{}
	for _, v := range vars {
		if v.Name == "" {
			return invalidf("%s: variable with empty name", path)
		}
		if seen[v.Name] {
			return invalidf("%s: duplicate variable %q", path, v.Name)
		}
		seen[v.Name] = true
	}
	return nil
}

func validateRules(rules []Rule, path string, extraOps map[string]bool) error {
	seen := map[string]bool{}
	for _, r := range rules {
		if r.Name == "" {
			return invalidf("%s: rule with empty name", path)
		}
		if seen[r.Name] {
			return invalidf("%s: duplicate rule %q", path, r.Name)
		}
		seen[r.Name] = true
		if r.Condition == "" {
			return invalidf("%s: rule %q has no condition", path, r.Name)
		}
		if _, err := expr.Parse(r.Condition); err != nil {
			return invalidf("%s: rule %q condition: %v", path, r.Name, err)
		}
		if len(r.Actions) == 0 {
			return invalidf("%s: rule %q has no actions", path, r.Name)
		}
		actionNames := map[string]bool{}
		for _, a := range r.Actions {
			if a.Name == "" {
				return invalidf("%s: rule %q has an unnamed action", path, r.Name)
			}
			if actionNames[a.Name] {
				return invalidf("%s: rule %q duplicate action %q", path, r.Name, a.Name)
			}
			actionNames[a.Name] = true
			if a.Operation != nil {
				if err := validateOperation(a.Operation, path+"#"+r.Name, extraOps); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func validateOperation(o *Operation, path string, extraOps map[string]bool) error {
	if o.Type == "" {
		return invalidf("%s: operation has no type", path)
	}
	if !builtinOps[o.Type] && !extraOps[o.Type] {
		return invalidf("%s: unknown operation type %q", path, o.Type)
	}
	seen := map[string]bool{}
	for _, p := range o.Params {
		if p.Name == "" {
			return invalidf("%s: operation %s has an unnamed param", path, o.Type)
		}
		if seen[p.Name] {
			return invalidf("%s: operation %s duplicate param %q", path, o.Type, p.Name)
		}
		seen[p.Name] = true
	}
	return nil
}
