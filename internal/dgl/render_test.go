package dgl

import (
	"strings"
	"testing"
)

func TestTreeRender(t *testing.T) {
	f := sampleFlow()
	out := Tree(&f)
	for _, want := range []string{
		"scec-pipeline [sequential]",
		"vars(remaining,tier)",
		"rule:beforeEntry",
		"rule:afterExit",
		`ingest-stage [forEach file in "a.dat,b.dat,c.dat"]`,
		"fixity [parallel]",
		"drain [while $remaining > 0]",
		"route [switch $tier]",
		"ingest-one · ingest",
		"├─", "└─",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tree missing %q:\n%s", want, out)
		}
	}
	// Fault policies annotated.
	s := NewFlow("x").StepWith(Step{
		Name: "retry-me", OnError: OnErrorRetry, Retries: 3,
		Operation: Operation{Type: OpNoop},
	}).Flow()
	out = Tree(&s)
	if !strings.Contains(out, "onError=retry×3") {
		t.Errorf("retry annotation missing:\n%s", out)
	}
	// Parallel forEach annotation.
	p := NewFlow("p").Repeat("i", 4).ParallelIterations().Step("s", Op(OpNoop, nil)).Flow()
	out = Tree(&p)
	if !strings.Contains(out, "i in 0..3 parallel") {
		t.Errorf("parallel iterate annotation missing:\n%s", out)
	}
	// Query iteration annotation.
	q := NewFlow("q").ForEachQuery("f", NSQuery{Scope: "/grid"}).Step("s", Op(OpNoop, nil)).Flow()
	if !strings.Contains(Tree(&q), "f in query(/grid)") {
		t.Errorf("query annotation missing")
	}
}

func TestDotRender(t *testing.T) {
	f := sampleFlow()
	out := Dot(&f)
	for _, want := range []string{
		"digraph datagridflow",
		"subgraph cluster_f",
		"label=\"scec-pipeline [sequential]",
		"->", // sequencing edges exist
		"verify-a",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot missing %q:\n%s", want, out)
		}
	}
	// Parallel flows draw no internal sequencing edges between siblings.
	p := NewFlow("par").Parallel().
		Step("a", Op(OpNoop, nil)).
		Step("b", Op(OpNoop, nil)).Flow()
	out = Dot(&p)
	if strings.Contains(out, "s1 -> s2") {
		t.Errorf("parallel flow sequenced its children:\n%s", out)
	}
	// Sequential flows do.
	sq := NewFlow("seq").
		Step("a", Op(OpNoop, nil)).
		Step("b", Op(OpNoop, nil)).Flow()
	out = Dot(&sq)
	if !strings.Contains(out, "s1 -> s2") {
		t.Errorf("sequential flow missing edge:\n%s", out)
	}
	// Balanced braces (parseable by dot).
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Errorf("unbalanced braces:\n%s", out)
	}
}
