package dgl

import (
	"encoding/xml"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// sampleFlow builds the kind of document the paper's Appendix A
// describes: nested flows, every control pattern, variables, rules.
func sampleFlow() Flow {
	ingest := NewFlow("ingest-stage").
		ForEachIn("file", "a.dat,b.dat,c.dat").
		Step("ingest-one", Op(OpIngest, map[string]string{
			"path": "/grid/scec/$file", "size": "1048576", "resource": "sdsc-disk",
		})).Flow()

	checksum := NewFlow("fixity").
		Parallel().
		Step("verify-a", Op(OpVerify, map[string]string{"path": "/grid/scec/a.dat"})).
		Step("verify-b", Op(OpVerify, map[string]string{"path": "/grid/scec/b.dat"})).Flow()

	retry := NewFlow("drain").
		WhileLoop("$remaining > 0").
		Step("dec", Op(OpSetVariable, map[string]string{"name": "remaining", "value": "$remaining - 1"})).Flow()

	route := NewFlow("route").
		SwitchOn("$tier").
		SubFlow(NewFlow("hot").Step("to-gpfs", Op(OpNoop, nil))).
		SubFlow(NewFlow("default").Step("to-tape", Op(OpNoop, nil))).Flow()

	root := NewFlow("scec-pipeline").
		Var("remaining", "3").
		Var("tier", "hot").
		OnEntry(Op(OpSetMeta, map[string]string{"path": "/grid/scec", "attr": "state", "value": "running"})).
		OnExit(Op(OpSetMeta, map[string]string{"path": "/grid/scec", "attr": "state", "value": "done"})).
		SubFlow(&FlowBuilder{flow: ingest}).
		SubFlow(&FlowBuilder{flow: checksum}).
		SubFlow(&FlowBuilder{flow: retry}).
		SubFlow(&FlowBuilder{flow: route}).Flow()
	return root
}

// TestE1FlowRoundTrip reproduces Figure 1: the full Flow structure
// survives an XML round trip exactly.
func TestE1FlowRoundTrip(t *testing.T) {
	f := sampleFlow()
	if err := ValidateFlow(&f, nil); err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(&f)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "<flowLogic>") || !strings.Contains(string(b), "<control>forEach</control>") {
		t.Errorf("marshalled XML missing schema elements:\n%s", b)
	}
	var back Flow
	if err := xml.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, back) {
		t.Errorf("round trip changed the flow:\nbefore: %+v\nafter:  %+v", f, back)
	}
}

// TestE2RequestRoundTrip reproduces Figure 2: DataGridRequest with
// document metadata, grid user, VO and the Flow/FlowStatusQuery choice.
func TestE2RequestRoundTrip(t *testing.T) {
	req := NewAsyncRequest("jonw", "SCEC", sampleFlow())
	req.Metadata.Description = "SCEC ingest pipeline"
	req.Metadata.CreatedAt = "2005-08-01T00:00:00Z"
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req.Flow, back.Flow) || back.User != req.User || !back.Async {
		t.Errorf("request round trip mismatch")
	}
	// Status-query variant.
	sq := NewStatusRequest("jonw", "req-42", true)
	b2, err := Marshal(sq)
	if err != nil {
		t.Fatal(err)
	}
	back2, err := ParseRequest(b2)
	if err != nil {
		t.Fatal(err)
	}
	if back2.StatusQuery == nil || back2.StatusQuery.ID != "req-42" || !back2.StatusQuery.Detail {
		t.Errorf("status query round trip: %+v", back2.StatusQuery)
	}
}

// TestE4ResponseRoundTrip reproduces Figure 4: DataGridResponse with ack
// and status-tree variants.
func TestE4ResponseRoundTrip(t *testing.T) {
	resp := &Response{Ack: &Ack{ID: "req-7", Status: "pending", Valid: true, Message: "queued"}}
	b, err := Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseResponse(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.Ack == nil || back.Ack.ID != "req-7" || !back.Ack.Valid {
		t.Errorf("ack round trip: %+v", back.Ack)
	}
	st := &Response{Status: &FlowStatus{
		ID: "f1", Name: "root", Kind: "flow", State: "running",
		Children: []FlowStatus{
			{ID: "f1.1", Name: "s1", Kind: "step", State: "succeeded"},
			{ID: "f1.2", Name: "s2", Kind: "step", State: "failed", Error: "disk full"},
		},
	}}
	b2, err := Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	back2, err := ParseResponse(b2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Status, back2.Status) {
		t.Errorf("status round trip mismatch:\n%+v\n%+v", st.Status, back2.Status)
	}
	if _, err := ParseResponse([]byte("<not-xml")); err == nil {
		t.Errorf("bad response XML accepted")
	}
}

func TestFlowStatusHelpers(t *testing.T) {
	s := FlowStatus{ID: "a", Name: "root", Kind: "flow", State: "running", Children: []FlowStatus{
		{ID: "b", Name: "x", Kind: "step", State: "succeeded"},
		{ID: "c", Name: "y", Kind: "flow", State: "running", Children: []FlowStatus{
			{ID: "d", Name: "z", Kind: "step", State: "pending"},
		}},
	}}
	n, ok := s.Find("d")
	if !ok || n.Name != "z" {
		t.Errorf("Find(d) = %+v, %v", n, ok)
	}
	if _, ok := s.Find("zz"); ok {
		t.Errorf("Find(zz) should miss")
	}
	counts := s.CountByState()
	if counts["running"] != 2 || counts["succeeded"] != 1 || counts["pending"] != 1 {
		t.Errorf("CountByState = %v", counts)
	}
	if !strings.Contains(s.Summary(), "root") {
		t.Errorf("Summary = %q", s.Summary())
	}
	e := FlowStatus{ID: "e", Name: "bad", Kind: "step", State: "failed", Error: "boom"}
	if !strings.Contains(e.Summary(), "boom") {
		t.Errorf("Summary should include error: %q", e.Summary())
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Flow)
	}{
		{"empty flow name", func(f *Flow) { f.Name = "" }},
		{"no control", func(f *Flow) { f.Logic.Control = "" }},
		{"unknown control", func(f *Flow) { f.Logic.Control = "zigzag" }},
		{"sequential with condition", func(f *Flow) { f.Logic.Condition = "1" }},
		{"sequential with iterate", func(f *Flow) { f.Logic.Iterate = &Iterate{Var: "x", Times: 1} }},
		{"mixed children", func(f *Flow) {
			f.Flows = append(f.Flows, Flow{Name: "sub", Logic: FlowLogic{Control: Sequential}})
		}},
		{"duplicate step names", func(f *Flow) { f.Steps = append(f.Steps, f.Steps[0]) }},
		{"step without operation type", func(f *Flow) { f.Steps[0].Operation.Type = "" }},
		{"unknown operation", func(f *Flow) { f.Steps[0].Operation.Type = "teleport" }},
		{"unnamed param", func(f *Flow) {
			f.Steps[0].Operation.Params = append(f.Steps[0].Operation.Params, Param{Name: "", Value: "x"})
		}},
		{"duplicate param", func(f *Flow) {
			f.Steps[0].Operation.Params = append(f.Steps[0].Operation.Params,
				Param{Name: "p", Value: "1"}, Param{Name: "p", Value: "2"})
		}},
		{"empty variable name", func(f *Flow) { f.Variables = append(f.Variables, Variable{Name: ""}) }},
		{"duplicate variable", func(f *Flow) {
			f.Variables = append(f.Variables, Variable{Name: "v"}, Variable{Name: "v"})
		}},
		{"bad onError", func(f *Flow) { f.Steps[0].OnError = "explode" }},
		{"negative retries", func(f *Flow) { f.Steps[0].OnError = OnErrorRetry; f.Steps[0].Retries = -1 }},
		{"retries without retry policy", func(f *Flow) { f.Steps[0].Retries = 2 }},
		{"empty step name", func(f *Flow) { f.Steps[0].Name = "" }},
	}
	for _, tc := range cases {
		f := NewFlow("ok").Step("s1", Op(OpNoop, map[string]string{"k": "v"})).Flow()
		tc.mut(&f)
		if err := ValidateFlow(&f, nil); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", tc.name, err)
		}
	}
}

func TestValidateControlPatterns(t *testing.T) {
	// while requires a parseable condition.
	f := NewFlow("w").WhileLoop("$$$bad((").Step("s", Op(OpNoop, nil)).Flow()
	if err := ValidateFlow(&f, nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("bad while condition: %v", err)
	}
	f = NewFlow("w").WhileLoop("").Step("s", Op(OpNoop, nil)).Flow()
	f.Logic.Control = While
	if err := ValidateFlow(&f, nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("missing while condition: %v", err)
	}
	// switch requires condition.
	f = NewFlow("sw").Step("s", Op(OpNoop, nil)).Flow()
	f.Logic.Control = Switch
	if err := ValidateFlow(&f, nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("missing switch condition: %v", err)
	}
	// forEach source constraints.
	f = NewFlow("fe").Step("s", Op(OpNoop, nil)).Flow()
	f.Logic.Control = ForEach
	if err := ValidateFlow(&f, nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("missing iterate: %v", err)
	}
	f.Logic.Iterate = &Iterate{Var: ""}
	if err := ValidateFlow(&f, nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("missing var: %v", err)
	}
	f.Logic.Iterate = &Iterate{Var: "x"}
	if err := ValidateFlow(&f, nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("no source: %v", err)
	}
	f.Logic.Iterate = &Iterate{Var: "x", In: "a,b", Times: 2}
	if err := ValidateFlow(&f, nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("two sources: %v", err)
	}
	f.Logic.Iterate = &Iterate{Var: "x", Times: -1}
	if err := ValidateFlow(&f, nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative times: %v", err)
	}
	// while with iterate is invalid.
	f = NewFlow("wi").WhileLoop("true").Step("s", Op(OpNoop, nil)).Flow()
	f.Logic.Iterate = &Iterate{Var: "x", Times: 1}
	if err := ValidateFlow(&f, nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("while with iterate: %v", err)
	}
	// switch with iterate is invalid.
	f = NewFlow("si").SwitchOn("$x").Step("s", Op(OpNoop, nil)).Flow()
	f.Logic.Iterate = &Iterate{Var: "x", Times: 1}
	if err := ValidateFlow(&f, nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("switch with iterate: %v", err)
	}
}

func TestValidateRules(t *testing.T) {
	mk := func(r Rule) error {
		f := NewFlow("f").Rule(r).Step("s", Op(OpNoop, nil)).Flow()
		return ValidateFlow(&f, nil)
	}
	good := Rule{Name: "r1", Condition: "$x > 1", Actions: []Action{{Name: "true", Operation: &Operation{Type: OpNoop}}}}
	if err := mk(good); err != nil {
		t.Errorf("good rule rejected: %v", err)
	}
	bads := []Rule{
		{Name: "", Condition: "1", Actions: []Action{{Name: "a"}}},
		{Name: "r", Condition: "", Actions: []Action{{Name: "a"}}},
		{Name: "r", Condition: "((", Actions: []Action{{Name: "a"}}},
		{Name: "r", Condition: "1", Actions: nil},
		{Name: "r", Condition: "1", Actions: []Action{{Name: ""}}},
		{Name: "r", Condition: "1", Actions: []Action{{Name: "a"}, {Name: "a"}}},
		{Name: "r", Condition: "1", Actions: []Action{{Name: "a", Operation: &Operation{Type: "bogus"}}}},
	}
	for i, r := range bads {
		if err := mk(r); !errors.Is(err, ErrInvalid) {
			t.Errorf("bad rule %d accepted: %v", i, err)
		}
	}
	// Duplicate rule names.
	f := NewFlow("f").Rule(good).Rule(good).Step("s", Op(OpNoop, nil)).Flow()
	if err := ValidateFlow(&f, nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("duplicate rules accepted: %v", err)
	}
}

func TestValidateRequest(t *testing.T) {
	flow := NewFlow("f").Step("s", Op(OpNoop, nil)).Flow()
	// Both flow and status query.
	r := NewRequest("u", "", flow)
	r.StatusQuery = &StatusQuery{ID: "x"}
	if err := r.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("both choices accepted: %v", err)
	}
	// Neither.
	r2 := &Request{User: GridUser{Name: "u"}}
	if err := r2.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty choice accepted: %v", err)
	}
	// Missing user.
	r3 := NewRequest("", "", flow)
	if err := r3.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("missing user accepted: %v", err)
	}
	// Status query without id.
	r4 := NewStatusRequest("u", "", false)
	if err := r4.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty status id accepted: %v", err)
	}
	// ParseRequest validates.
	if _, err := ParseRequest([]byte("<dataGridRequest></dataGridRequest>")); !errors.Is(err, ErrInvalid) {
		t.Errorf("invalid request parsed: %v", err)
	}
	if _, err := ParseRequest([]byte("not xml at all")); err == nil {
		t.Errorf("garbage parsed")
	}
}

func TestExtensionOps(t *testing.T) {
	f := NewFlow("f").Step("s", Op("extractMetadata", map[string]string{"path": "/x"})).Flow()
	if err := ValidateFlow(&f, nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("extension op accepted without registration: %v", err)
	}
	if err := ValidateFlow(&f, map[string]bool{"extractMetadata": true}); err != nil {
		t.Errorf("registered extension rejected: %v", err)
	}
	if !IsBuiltinOp(OpIngest) || IsBuiltinOp("extractMetadata") {
		t.Errorf("IsBuiltinOp wrong")
	}
}

func TestOperationHelpers(t *testing.T) {
	o := Op(OpIngest, map[string]string{"b": "2", "a": "1"})
	// Deterministic param order.
	if o.Params[0].Name != "a" || o.Params[1].Name != "b" {
		t.Errorf("param order: %+v", o.Params)
	}
	if v, ok := o.Param("a"); !ok || v != "1" {
		t.Errorf("Param(a) = %q, %v", v, ok)
	}
	if _, ok := o.Param("z"); ok {
		t.Errorf("Param(z) should miss")
	}
	if o.ParamOr("z", "dflt") != "dflt" || o.ParamOr("a", "x") != "1" {
		t.Errorf("ParamOr wrong")
	}
	m := o.ParamMap()
	if len(m) != 2 || m["b"] != "2" {
		t.Errorf("ParamMap = %v", m)
	}
	var empty Operation
	if empty.ParamMap() != nil {
		t.Errorf("empty ParamMap should be nil")
	}
}

func TestFlowHelpers(t *testing.T) {
	f := sampleFlow()
	names := f.ChildNames()
	if fmt.Sprint(names) != "[ingest-stage fixity drain route]" {
		t.Errorf("ChildNames = %v", names)
	}
	// ingest-stage has 1 step, fixity 2, drain 1, route 2 (one per subflow).
	if got := f.CountSteps(); got != 6 {
		t.Errorf("CountSteps = %d", got)
	}
	r, ok := FindRule(f.Logic.Rules, RuleBeforeEntry)
	if !ok || r.Name != RuleBeforeEntry {
		t.Errorf("FindRule missed beforeEntry")
	}
	if _, ok := FindRule(f.Logic.Rules, "nope"); ok {
		t.Errorf("FindRule false positive")
	}
	if !strings.Contains(NewRequest("u", "vo", f).String(), "dataGridRequest") {
		t.Errorf("Request.String not XML")
	}
}

// Property: any flow built from a generated spec survives the XML round
// trip unchanged.
func TestQuickFlowRoundTrip(t *testing.T) {
	f := func(names []string, par bool, nVars uint8) bool {
		b := NewFlow("root")
		if par {
			b.Parallel()
		}
		for i := 0; i < int(nVars%5); i++ {
			b.Var(fmt.Sprintf("v%d", i), fmt.Sprintf("val%d", i))
		}
		seen := map[string]bool{}
		for i, n := range names {
			if i >= 8 {
				break
			}
			name := fmt.Sprintf("s%d_%x", i, len(n))
			if seen[name] {
				continue
			}
			seen[name] = true
			b.Step(name, Op(OpNoop, map[string]string{"idx": fmt.Sprint(i)}))
		}
		flow := b.Flow()
		data, err := Marshal(&flow)
		if err != nil {
			return false
		}
		var back Flow
		if err := xml.Unmarshal(data, &back); err != nil {
			return false
		}
		return reflect.DeepEqual(flow, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkE1FlowRoundTrip(b *testing.B) {
	f := sampleFlow()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := Marshal(&f)
		if err != nil {
			b.Fatal(err)
		}
		var back Flow
		if err := xml.Unmarshal(data, &back); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2RequestRoundTrip(b *testing.B) {
	req := NewAsyncRequest("jonw", "SCEC", sampleFlow())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := Marshal(req)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ParseRequest(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidate(b *testing.B) {
	f := sampleFlow()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ValidateFlow(&f, nil); err != nil {
			b.Fatal(err)
		}
	}
}
