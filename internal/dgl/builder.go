package dgl

import "strings"

// builder.go implements the programmatic API the paper requires
// ("Programmatic API to define these datagrid ILM ... programmatic
// interface for interaction by other systems"). It is a fluent layer over
// the document types: each method returns the builder so flows compose
// without intermediate variables, and Build validates the result.

// FlowBuilder assembles a Flow.
type FlowBuilder struct {
	flow Flow
}

// NewFlow starts a sequential flow with the given name.
func NewFlow(name string) *FlowBuilder {
	return &FlowBuilder{flow: Flow{Name: name, Logic: FlowLogic{Control: Sequential}}}
}

// Parallel sets the parallel control pattern.
func (b *FlowBuilder) Parallel() *FlowBuilder {
	b.flow.Logic.Control = Parallel
	return b
}

// Sequential sets the sequential control pattern (the default).
func (b *FlowBuilder) Sequential() *FlowBuilder {
	b.flow.Logic.Control = Sequential
	return b
}

// WhileLoop sets a while control with the given condition.
func (b *FlowBuilder) WhileLoop(condition string) *FlowBuilder {
	b.flow.Logic.Control = While
	b.flow.Logic.Condition = condition
	return b
}

// ForEachIn sets a forEach control iterating over an inline
// comma-separated list bound to loopVar.
func (b *FlowBuilder) ForEachIn(loopVar, list string) *FlowBuilder {
	b.flow.Logic.Control = ForEach
	b.flow.Logic.Iterate = &Iterate{Var: loopVar, In: list}
	return b
}

// Repeat sets a forEach control running the body n times with loopVar
// bound to the iteration index.
func (b *FlowBuilder) Repeat(loopVar string, n int) *FlowBuilder {
	b.flow.Logic.Control = ForEach
	b.flow.Logic.Iterate = &Iterate{Var: loopVar, Times: n}
	return b
}

// ForEachQuery sets a forEach control iterating over the logical paths
// matched by a datagrid query.
func (b *FlowBuilder) ForEachQuery(loopVar string, q NSQuery) *FlowBuilder {
	b.flow.Logic.Control = ForEach
	b.flow.Logic.Iterate = &Iterate{Var: loopVar, Query: &q}
	return b
}

// ParallelIterations marks the flow's forEach iterations to run
// concurrently. It must follow ForEachIn, Repeat or ForEachQuery.
func (b *FlowBuilder) ParallelIterations() *FlowBuilder {
	if b.flow.Logic.Iterate != nil {
		b.flow.Logic.Iterate.Parallel = true
	}
	return b
}

// SwitchOn sets a switch control: the condition's string value selects
// the child to run (falling back to a child named "default").
func (b *FlowBuilder) SwitchOn(condition string) *FlowBuilder {
	b.flow.Logic.Control = Switch
	b.flow.Logic.Condition = condition
	return b
}

// Var declares a variable in the flow's scope.
func (b *FlowBuilder) Var(name, value string) *FlowBuilder {
	b.flow.Variables = append(b.flow.Variables, Variable{Name: name, Value: value})
	return b
}

// Rule attaches a user-defined rule to the flow's logic.
func (b *FlowBuilder) Rule(r Rule) *FlowBuilder {
	b.flow.Logic.Rules = append(b.flow.Logic.Rules, r)
	return b
}

// OnEntry attaches a beforeEntry rule that always runs op.
func (b *FlowBuilder) OnEntry(op Operation) *FlowBuilder {
	return b.Rule(Rule{
		Name:      RuleBeforeEntry,
		Condition: "true",
		Actions:   []Action{{Name: "true", Operation: &op}},
	})
}

// OnExit attaches an afterExit rule that always runs op.
func (b *FlowBuilder) OnExit(op Operation) *FlowBuilder {
	return b.Rule(Rule{
		Name:      RuleAfterExit,
		Condition: "true",
		Actions:   []Action{{Name: "true", Operation: &op}},
	})
}

// Step appends a step child executing op with the default fault policy.
func (b *FlowBuilder) Step(name string, op Operation) *FlowBuilder {
	b.flow.Steps = append(b.flow.Steps, Step{Name: name, Operation: op})
	return b
}

// PureStep appends a pure (memoizable) step deriving the declared
// outputs: an engine with a virtual-data catalog (docs/VDATA.md) skips
// re-derivation when the catalog already holds the step's result.
func (b *FlowBuilder) PureStep(name string, op Operation, outputs ...string) *FlowBuilder {
	b.flow.Steps = append(b.flow.Steps, Step{
		Name: name, Operation: op, Pure: true, Outputs: strings.Join(outputs, ","),
	})
	return b
}

// StepWith appends a fully specified step child.
func (b *FlowBuilder) StepWith(s Step) *FlowBuilder {
	b.flow.Steps = append(b.flow.Steps, s)
	return b
}

// SubFlow appends a sub-flow child built by another builder.
func (b *FlowBuilder) SubFlow(sub *FlowBuilder) *FlowBuilder {
	b.flow.Flows = append(b.flow.Flows, sub.flow)
	return b
}

// Flow returns the flow without validating (for composing into a larger
// document that is validated as a whole).
func (b *FlowBuilder) Flow() Flow { return b.flow }

// Build validates and returns the flow.
func (b *FlowBuilder) Build() (*Flow, error) {
	f := b.flow
	if err := ValidateFlow(&f, nil); err != nil {
		return nil, err
	}
	return &f, nil
}

// NewRequest wraps a flow in a DataGridRequest ready for submission.
func NewRequest(user, vo string, flow Flow) *Request {
	return &Request{
		Metadata: DocumentMeta{CreatedBy: user},
		User:     GridUser{Name: user, VO: vo},
		Flow:     &flow,
	}
}

// NewAsyncRequest is NewRequest with asynchronous execution requested.
func NewAsyncRequest(user, vo string, flow Flow) *Request {
	r := NewRequest(user, vo, flow)
	r.Async = true
	return r
}

// NewStatusRequest builds a FlowStatusQuery request for the given
// flow/step/request id.
func NewStatusRequest(user, id string, detail bool) *Request {
	return &Request{
		User:        GridUser{Name: user},
		StatusQuery: &StatusQuery{ID: id, Detail: detail},
	}
}
