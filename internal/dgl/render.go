package dgl

// render.go visualizes flows. The paper's architecture includes a
// Datagridflow IDE (Kepler/VERGIL with MoML) for authoring and viewing
// gridflows; a GUI is out of scope here, but the same role — letting a
// human see the structure they wrote — is served by two renderers: an
// ASCII tree for terminals (dgfctl render) and a Graphviz DOT document
// for everything else.

import (
	"fmt"
	"strings"
)

// Tree renders the flow as an indented ASCII tree annotated with each
// flow's control pattern, loop configuration, variables and rules.
func Tree(f *Flow) string {
	var sb strings.Builder
	renderTree(&sb, f, "", true, true)
	return sb.String()
}

func flowLabel(f *Flow) string {
	label := fmt.Sprintf("%s [%s", f.Name, f.Logic.Control)
	switch f.Logic.Control {
	case While, Switch:
		label += " " + f.Logic.Condition
	case ForEach:
		if it := f.Logic.Iterate; it != nil {
			switch {
			case it.In != "":
				label += fmt.Sprintf(" %s in %q", it.Var, it.In)
			case it.Times > 0:
				label += fmt.Sprintf(" %s in 0..%d", it.Var, it.Times-1)
			case it.Query != nil:
				label += fmt.Sprintf(" %s in query(%s)", it.Var, it.Query.Scope)
			}
			if it.Parallel {
				label += " parallel"
			}
		}
	}
	label += "]"
	if len(f.Variables) > 0 {
		names := make([]string, len(f.Variables))
		for i, v := range f.Variables {
			names[i] = v.Name
		}
		label += " vars(" + strings.Join(names, ",") + ")"
	}
	for _, r := range f.Logic.Rules {
		label += " rule:" + r.Name
	}
	return label
}

func stepLabel(s *Step) string {
	label := fmt.Sprintf("%s · %s", s.Name, s.Operation.Type)
	var parts []string
	for _, p := range s.Operation.Params {
		parts = append(parts, p.Name+"="+p.Value)
	}
	if len(parts) > 0 {
		label += "(" + strings.Join(parts, ", ") + ")"
	}
	if s.OnError != "" && s.OnError != OnErrorAbort {
		label += " onError=" + s.OnError
		if s.Retries > 0 {
			label += fmt.Sprintf("×%d", s.Retries)
		}
	}
	return label
}

func renderTree(sb *strings.Builder, f *Flow, prefix string, isLast, isRoot bool) {
	childPrefix := prefix
	if isRoot {
		fmt.Fprintf(sb, "%s\n", flowLabel(f))
	} else {
		connector, next := branchParts(prefix, isLast)
		fmt.Fprintf(sb, "%s%s\n", connector, flowLabel(f))
		childPrefix = next
	}
	n := len(f.Flows) + len(f.Steps)
	for i := range f.Flows {
		renderTree(sb, &f.Flows[i], childPrefix, i == n-1, false)
	}
	for i := range f.Steps {
		last := len(f.Flows)+i == n-1
		connector, _ := branchParts(childPrefix, last)
		fmt.Fprintf(sb, "%s%s\n", connector, stepLabel(&f.Steps[i]))
	}
}

func branchParts(prefix string, isLast bool) (connector, childPrefix string) {
	if isLast {
		return prefix + "└─ ", prefix + "   "
	}
	return prefix + "├─ ", prefix + "│  "
}

// Dot renders the flow as a Graphviz digraph: flows are clusters, steps
// are boxes, and sequential order is drawn with edges.
func Dot(f *Flow) string {
	var sb strings.Builder
	sb.WriteString("digraph datagridflow {\n")
	sb.WriteString("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n")
	var n int
	renderDot(&sb, f, "f", &n)
	sb.WriteString("}\n")
	return sb.String()
}

// renderDot emits one flow as a cluster, returning the node ids of its
// children in document order for sequencing edges.
func renderDot(sb *strings.Builder, f *Flow, id string, n *int) []string {
	fmt.Fprintf(sb, "  subgraph cluster_%s {\n", id)
	fmt.Fprintf(sb, "    label=%q;\n", flowLabel(f))
	var childHeads []string
	var prevTail string
	sequential := f.Logic.Control != Parallel
	link := func(head string) {
		childHeads = append(childHeads, head)
		if sequential && prevTail != "" {
			fmt.Fprintf(sb, "    %s -> %s;\n", prevTail, head)
		}
		prevTail = head
	}
	for i := range f.Flows {
		*n++
		subID := fmt.Sprintf("%s_%d", id, *n)
		heads := renderDot(sb, &f.Flows[i], subID, n)
		if len(heads) > 0 {
			link(heads[0])
		}
	}
	for i := range f.Steps {
		*n++
		nodeID := fmt.Sprintf("s%d", *n)
		fmt.Fprintf(sb, "    %s [label=%q];\n", nodeID, stepLabel(&f.Steps[i]))
		link(nodeID)
	}
	sb.WriteString("  }\n")
	return childHeads
}
