package dgl

import (
	"errors"
	"reflect"
	"testing"
)

func TestValidatePureRequiresOutputs(t *testing.T) {
	f := NewFlow("p").StepWith(Step{
		Name: "derive", Pure: true,
		Operation: Operation{Type: "noop"},
	}).Flow()
	if err := ValidateFlow(&f, nil); !errors.Is(err, ErrInvalid) {
		t.Fatalf("pure step without outputs validated: %v", err)
	}

	ok := NewFlow("p").PureStep("derive", Operation{Type: "noop"}, "/out/a").Flow()
	if err := ValidateFlow(&ok, nil); err != nil {
		t.Fatalf("pure step with outputs rejected: %v", err)
	}

	// Outputs on an impure step are legal (declarative only).
	impure := NewFlow("p").StepWith(Step{
		Name: "s", Outputs: "/out/a",
		Operation: Operation{Type: "noop"},
	}).Flow()
	if err := ValidateFlow(&impure, nil); err != nil {
		t.Fatalf("impure step with outputs rejected: %v", err)
	}
}

func TestValidateOutputsRejectsEmptyPaths(t *testing.T) {
	for _, outs := range []string{"/out/a,,/out/b", ",/out/a", "/out/a,"} {
		f := NewFlow("p").StepWith(Step{
			Name: "s", Pure: true, Outputs: outs,
			Operation: Operation{Type: "noop"},
		}).Flow()
		if err := ValidateFlow(&f, nil); !errors.Is(err, ErrInvalid) {
			t.Fatalf("outputs %q validated: %v", outs, err)
		}
	}
	// Pure with only whitespace in outputs is still "no outputs".
	f := NewFlow("p").StepWith(Step{
		Name: "s", Pure: true, Outputs: "   ",
		Operation: Operation{Type: "noop"},
	}).Flow()
	if err := ValidateFlow(&f, nil); !errors.Is(err, ErrInvalid) {
		t.Fatalf("whitespace outputs validated: %v", err)
	}
}

func TestOutputListParsing(t *testing.T) {
	s := Step{Outputs: " /out/a , /out/b "}
	if got := s.OutputList(); !reflect.DeepEqual(got, []string{"/out/a", "/out/b"}) {
		t.Fatalf("OutputList = %q", got)
	}
	var empty Step
	if got := empty.OutputList(); got != nil {
		t.Fatalf("empty outputs parsed to %q", got)
	}
}

// A pure step built programmatically must survive the XML round trip
// with its attributes intact.
func TestPureStepRoundTrip(t *testing.T) {
	flow := NewFlow("dag").
		PureStep("fft", Operation{Type: "exec", Params: []Param{{Name: "command", Value: "fft /in"}}},
			"/out/spectrum", "/out/phase").
		Step("publish", Operation{Type: "exec", Params: []Param{{Name: "command", Value: "publish"}}}).
		Flow()
	req := NewRequest("physicist", "vo", flow)
	data, err := Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	st := back.Flow.Steps[0]
	if !st.Pure || st.Outputs != "/out/spectrum,/out/phase" {
		t.Fatalf("round trip lost pure attrs: %+v", st)
	}
	if back.Flow.Steps[1].Pure {
		t.Fatal("impure step came back pure")
	}
	// Parsed documents must be stable under a second round trip.
	data2, err := Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	back2, err := ParseRequest(data2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, back2) {
		t.Fatal("round trip changed the document")
	}
}
