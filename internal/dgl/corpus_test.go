package dgl

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestCorpusValid parses every hand-authored valid document in
// testdata/, validates it, and re-marshals it losslessly — the corpus a
// dgfctl user would submit.
func TestCorpusValid(t *testing.T) {
	files, err := filepath.Glob("testdata/*.xml")
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus missing: %v, %v", files, err)
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			req, err := ParseRequest(data)
			if strings.Contains(file, "invalid-") {
				if !errors.Is(err, ErrInvalid) {
					t.Fatalf("invalid document accepted: %v", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			// Round trip through Marshal.
			out, err := Marshal(req)
			if err != nil {
				t.Fatal(err)
			}
			back, err := ParseRequest(out)
			if err != nil {
				t.Fatalf("re-parse: %v", err)
			}
			if !reflect.DeepEqual(req, back) {
				t.Errorf("round trip changed the document")
			}
		})
	}
}

// TestCorpusSCECShape pins down the structure of the flagship document.
func TestCorpusSCECShape(t *testing.T) {
	data, err := os.ReadFile("testdata/scec-pipeline.xml")
	if err != nil {
		t.Fatal(err)
	}
	req, err := ParseRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	if !req.Async || req.User.VO != "SCEC" || req.User.Name != "jonw" {
		t.Errorf("header = %+v %+v", req.Async, req.User)
	}
	f := req.Flow
	if f.Name != "scec-pipeline" || len(f.Variables) != 1 || f.Variables[0].Name != "archive" {
		t.Errorf("root flow = %+v", f)
	}
	if len(f.Logic.Rules) != 2 {
		t.Errorf("rules = %d", len(f.Logic.Rules))
	}
	per := f.Flows[0]
	if per.Logic.Control != ForEach || per.Logic.Iterate == nil || per.Logic.Iterate.Query == nil {
		t.Fatalf("per-file logic = %+v", per.Logic)
	}
	q := per.Logic.Iterate.Query
	if q.Scope != "/grid/scec" || !q.ObjectsOnly || len(q.Conditions) != 1 || q.Conditions[0].Attr != "stage" {
		t.Errorf("query = %+v", q)
	}
	if len(per.Steps) != 4 {
		t.Fatalf("steps = %d", len(per.Steps))
	}
	if per.Steps[1].OnError != OnErrorRetry || per.Steps[1].Retries != 2 {
		t.Errorf("retry step = %+v", per.Steps[1])
	}
	if per.Steps[3].OnError != OnErrorContinue {
		t.Errorf("continue step = %+v", per.Steps[3])
	}
	if v, _ := per.Steps[3].Operation.Param("to"); v != "$archive" {
		t.Errorf("archive target = %q", v)
	}
}

// TestCorpusStatusQueryShape checks the FlowStatusQuery document.
func TestCorpusStatusQueryShape(t *testing.T) {
	data, err := os.ReadFile("testdata/status-query.xml")
	if err != nil {
		t.Fatal(err)
	}
	req, err := ParseRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	if req.Flow != nil || req.StatusQuery == nil {
		t.Fatalf("choice = %+v", req)
	}
	if req.StatusQuery.ID != "dgf-000001/scec-pipeline/per-file" || !req.StatusQuery.Detail {
		t.Errorf("query = %+v", req.StatusQuery)
	}
}
