// Package dgl implements the Data Grid Language — the paper's XML-schema
// language for describing, querying and managing datagridflows ("just as
// SQL is used for databases, an analog is needed for datagrids").
//
// The type structure mirrors the paper's figures:
//
//   - Figure 2, DataGridRequest: document metadata, grid user and virtual
//     organization, and a choice of Flow or FlowStatusQuery.
//   - Figure 1, Flow: Variables, FlowLogic and Children (sub-flows or
//     steps, never both), recursively composable.
//   - Figure 3, FlowLogic: a control pattern (sequential, parallel, while,
//     forEach, switch) plus UserDefinedRules, including the special
//     beforeEntry and afterExit rules.
//   - Figure 4, DataGridResponse: a RequestAcknowledgement for
//     asynchronous requests or a FlowStatus tree for status queries.
//
// Documents marshal to and from XML with encoding/xml; programmatic
// construction uses the Builder in builder.go.
package dgl

import (
	"encoding/xml"
	"fmt"
	"strings"
)

// Control is a flow's execution pattern (Figure 3).
type Control string

// The control patterns DGL supports. They match the paper's list:
// "sequentially, in parallel, while loop, for-each loop, switch-case".
const (
	// Sequential runs children in document order.
	Sequential Control = "sequential"
	// Parallel runs children concurrently and joins before exit.
	Parallel Control = "parallel"
	// While re-runs the children as long as the condition holds.
	While Control = "while"
	// ForEach runs the children once per item, binding the loop variable.
	ForEach Control = "forEach"
	// Switch evaluates the condition and runs the child whose name equals
	// the result (falling back to a child named "default").
	Switch Control = "switch"
)

// Route preference values (Request.Route) on sharded networks.
const (
	// RouteAuto lets the accepting peer forward the flow to its shard
	// owner — the default for an empty Route.
	RouteAuto = "auto"
	// RouteLocal pins the flow to the accepting peer; the sharding
	// layer neither forwards it nor rejects it for foreign ownership.
	RouteLocal = "local"
)

// Request is a DGL Data Grid Request (Figure 2).
type Request struct {
	XMLName xml.Name `xml:"dataGridRequest"`
	// Async requests are acknowledged immediately with a request id; the
	// flow executes in the background and is polled via FlowStatusQuery.
	Async bool `xml:"async,attr,omitempty"`
	// Route is the submission's placement preference on a sharded
	// datagridflow network: RouteAuto (or empty) lets the accepting
	// peer forward the flow to its shard owner, RouteLocal pins it to
	// the accepting peer. Non-sharded deployments ignore it.
	Route string `xml:"route,attr,omitempty"`
	// Token is the tenant bearer token authenticating the submission
	// (wire >= 1.7, docs/TENANCY.md). An extension attribute, not part
	// of the paper's schema: absent means anonymous, and pre-tenant
	// deployments ignore it entirely.
	Token string `xml:"token,attr,omitempty"`
	// Metadata documents the request itself.
	Metadata DocumentMeta `xml:"documentMetadata"`
	// User identifies the submitting grid user and virtual organization.
	User GridUser `xml:"gridUser"`
	// Exactly one of Flow or StatusQuery must be present.
	Flow        *Flow        `xml:"flow,omitempty"`
	StatusQuery *StatusQuery `xml:"flowStatusQuery,omitempty"`
}

// DocumentMeta carries provenance about the DGL document itself.
type DocumentMeta struct {
	CreatedBy   string `xml:"createdBy,omitempty"`
	CreatedAt   string `xml:"createdAt,omitempty"`
	Description string `xml:"description,omitempty"`
}

// GridUser names the requesting user and their virtual organization.
type GridUser struct {
	Name string `xml:"name"`
	VO   string `xml:"virtualOrganization,omitempty"`
}

// StatusQuery asks for the execution status of a flow, step or whole
// request "at any level of granularity": the ID may be a request id, a
// flow id or a step id.
type StatusQuery struct {
	ID string `xml:"id"`
	// Detail requests the full subtree rather than a one-line summary.
	Detail bool `xml:"detail,omitempty"`
}

// Flow is the recursive control structure of Figure 1. Its children are
// either sub-flows or steps — never both, per the paper's schema.
type Flow struct {
	Name string `xml:"name,attr"`
	// Variables declared in this flow's scope.
	Variables []Variable `xml:"variables>variable,omitempty"`
	// Logic dictates how children execute and carries the user rules.
	Logic FlowLogic `xml:"flowLogic"`
	// Flows or Steps are the children (mutually exclusive).
	Flows []Flow `xml:"flow,omitempty"`
	Steps []Step `xml:"step,omitempty"`
}

// Variable is one scoped variable declaration.
type Variable struct {
	Name  string `xml:"name,attr"`
	Value string `xml:",chardata"`
}

// FlowLogic (Figure 3) selects the control structure and holds the
// user-defined rules, including the beforeEntry/afterExit hooks.
type FlowLogic struct {
	Control Control `xml:"control"`
	// Condition is the while-loop guard or the switch selector. It is an
	// expr-language expression over the flow's variable scope.
	Condition string `xml:"condition,omitempty"`
	// Iterate configures forEach loops.
	Iterate *Iterate `xml:"iterate,omitempty"`
	// Rules are the user-defined ECA rules. Rules named RuleBeforeEntry
	// and RuleAfterExit run around the flow; others run when explicitly
	// referenced.
	Rules []Rule `xml:"userDefinedRule,omitempty"`
}

// Names of the rules the engine fires implicitly (paper, Appendix A).
const (
	// RuleBeforeEntry runs before a flow starts executing.
	RuleBeforeEntry = "beforeEntry"
	// RuleAfterExit runs after a flow finishes executing.
	RuleAfterExit = "afterExit"
)

// Iterate configures a forEach flow: bind Var for each item of exactly
// one source — an inline comma-separated list, a repeat count, or a
// datagrid metadata query (the paper's "processed according to a datagrid
// query" iteration).
type Iterate struct {
	// Var is the loop variable bound in the children's scope.
	Var string `xml:"var,attr"`
	// Parallel runs iterations concurrently instead of sequentially.
	// Each iteration still gets its own scope and status subtree, so
	// the paper's "execution of each iteration at a different location"
	// holds: iterations late-bind independently.
	Parallel bool `xml:"parallel,attr,omitempty"`
	// In is an inline comma-separated item list (interpolated).
	In string `xml:"in,omitempty"`
	// Times repeats the body Times times, binding Var to 0..Times-1.
	Times int `xml:"times,omitempty"`
	// Query iterates over the logical paths matching a namespace query.
	Query *NSQuery `xml:"query,omitempty"`
}

// NSQuery is a DGL-level datagrid metadata query.
type NSQuery struct {
	Scope       string      `xml:"scope,attr,omitempty"`
	ObjectsOnly bool        `xml:"objectsOnly,attr,omitempty"`
	Conditions  []QueryCond `xml:"where,omitempty"`
}

// QueryCond is one predicate of an NSQuery.
type QueryCond struct {
	Attr  string `xml:"attr,attr"`
	Op    string `xml:"op,attr"`
	Value string `xml:"value,attr,omitempty"`
}

// Rule is a UserDefinedRule: "similar to a switch statement ... one
// condition and can have one or more Actions. ... The Actions are
// executed if the condition statement evaluates to the name of the
// action." A boolean condition selects the action named "true"/"false".
type Rule struct {
	Name      string   `xml:"name,attr"`
	Condition string   `xml:"condition"` // the tCondition
	Actions   []Action `xml:"action,omitempty"`
}

// Action is one named arm of a rule. It carries a single operation.
type Action struct {
	Name      string     `xml:"name,attr"`
	Operation *Operation `xml:"operation,omitempty"`
}

// Step (Figure 1) is a concrete task: a single Operation plus optional
// scoped variables and rules, with fault-handling attributes ("Fault
// handling information ... could also be provided in the execution
// logic").
type Step struct {
	Name string `xml:"name,attr"`
	// OnError selects the fault policy: "abort" (default), "continue",
	// or "retry" (honouring Retries).
	OnError string `xml:"onError,attr,omitempty"`
	// Retries bounds retry attempts when OnError is "retry".
	Retries int `xml:"retries,attr,omitempty"`
	// Backoff is the base delay between retry attempts, growing
	// exponentially (base, 2*base, 4*base, ... with deterministic
	// jitter), charged to the virtual clock. Go duration syntax
	// ("500ms", "30s"). Empty means retry immediately.
	Backoff string `xml:"backoff,attr,omitempty"`
	// MaxBackoff caps the exponential growth of Backoff.
	MaxBackoff string `xml:"maxBackoff,attr,omitempty"`
	// Timeout bounds one attempt's virtual-clock duration; an attempt
	// that exceeds it fails with the timeout class (retryable).
	Timeout string `xml:"timeout,attr,omitempty"`
	// Pure marks the step a pure derivation: its operation is a
	// deterministic function of its inputs and parameter bindings, so
	// an engine with a virtual-data catalog (docs/VDATA.md) may skip
	// execution when the derivation is already recorded and graft the
	// memoized result. A pure step must declare Outputs.
	Pure bool `xml:"pure,attr,omitempty"`
	// Outputs declares the comma-separated logical paths a pure step
	// derives; the catalog indexes them so deleting an output
	// invalidates the memoized derivation.
	Outputs string `xml:"outputs,attr,omitempty"`
	// Variables declared in the step's scope.
	Variables []Variable `xml:"variables>variable,omitempty"`
	// Rules fire around the step like a flow's (beforeEntry/afterExit).
	Rules []Rule `xml:"userDefinedRule,omitempty"`
	// Operation is the atomic action the step performs.
	Operation Operation `xml:"operation"`
}

// Fault policies for Step.OnError.
const (
	OnErrorAbort    = "abort"
	OnErrorContinue = "continue"
	OnErrorRetry    = "retry"
)

// Operation is an atomic datagrid or business-logic action, identified by
// type with named parameters.
type Operation struct {
	Type   string  `xml:"type,attr"`
	Params []Param `xml:"param,omitempty"`
}

// Param is one named operation parameter; values are interpolated against
// the variable scope just before execution (late binding).
type Param struct {
	Name  string `xml:"name,attr"`
	Value string `xml:",chardata"`
}

// Operation types built into the language. The set is extensible —
// "DGL is an XML-Schema specification that can be extended for
// domain-specific operations" — via engine-registered handlers.
const (
	// Datagrid operations (execute against the DGMS).
	OpIngest         = "ingest"
	OpReplicate      = "replicate"
	OpMigrate        = "migrate"
	OpTrim           = "trim"
	OpDelete         = "delete"
	OpVerify         = "verify"
	OpSetMeta        = "setMeta"
	OpMakeCollection = "makeCollection"
	OpMove           = "move"
	// OpRegister maps pre-existing physical data into the namespace
	// without moving bytes (the SRB register-in-place deployment model).
	OpRegister = "register"
	// OpCall invokes a stored procedure held by the executing engine
	// (the paper's "datagrid stored procedures").
	OpCall = "call"
	// OpExec runs business logic (a binary in the paper; simulated CPU
	// seconds here) on a grid compute resource.
	OpExec = "exec"
	// OpSetVariable assigns a flow variable from an expression.
	OpSetVariable = "setVariable"
	// OpSleep advances simulated time (maintenance windows, backoff).
	OpSleep = "sleep"
	// OpNoop does nothing; useful as a switch default or placeholder.
	OpNoop = "noop"
	// OpFail always fails; used to exercise fault handling.
	OpFail = "fail"
	// OpResumeFlow resurrects a passivated execution from the engine's
	// flow-state store and (by default) resumes it — the operation
	// trigger actions use to wake a long-sleeping flow when its event
	// finally arrives (docs/STORE.md).
	OpResumeFlow = "resumeFlow"
)

// builtinOps lists the operation types Validate accepts without a custom
// handler registration.
var builtinOps = map[string]bool{
	OpIngest: true, OpReplicate: true, OpMigrate: true, OpTrim: true,
	OpDelete: true, OpVerify: true, OpSetMeta: true, OpMakeCollection: true,
	OpMove: true, OpRegister: true, OpCall: true, OpExec: true,
	OpSetVariable: true, OpSleep: true, OpNoop: true, OpFail: true,
	OpResumeFlow: true,
}

// IsBuiltinOp reports whether t is one of the built-in operation types.
func IsBuiltinOp(t string) bool { return builtinOps[t] }

// Param returns the value of the named parameter and whether it is set.
func (o *Operation) Param(name string) (string, bool) {
	for _, p := range o.Params {
		if p.Name == name {
			return p.Value, true
		}
	}
	return "", false
}

// ParamOr returns the named parameter or a default.
func (o *Operation) ParamOr(name, def string) string {
	if v, ok := o.Param(name); ok {
		return v
	}
	return def
}

// ParamMap returns all parameters as a map (later duplicates win).
func (o *Operation) ParamMap() map[string]string {
	if len(o.Params) == 0 {
		return nil
	}
	m := make(map[string]string, len(o.Params))
	for _, p := range o.Params {
		m[p.Name] = p.Value
	}
	return m
}

// Op constructs an Operation from a type and a param map, with
// deterministic parameter order.
func Op(typ string, params map[string]string) Operation {
	o := Operation{Type: typ}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		o.Params = append(o.Params, Param{Name: k, Value: params[k]})
	}
	return o
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Rule lookup helpers.

// FindRule returns the rule with the given name, if present.
func FindRule(rules []Rule, name string) (Rule, bool) {
	for _, r := range rules {
		if r.Name == name {
			return r, true
		}
	}
	return Rule{}, false
}

// Marshal renders any DGL document (Request, Response, Flow...) as
// indented XML with a header line.
func Marshal(v any) ([]byte, error) {
	b, err := xml.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("dgl: marshal: %w", err)
	}
	return append([]byte(xml.Header), b...), nil
}

// ParseRequest decodes a DataGridRequest from XML and validates it
// against the built-in operation set.
func ParseRequest(data []byte) (*Request, error) {
	req, err := DecodeRequest(data)
	if err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return req, nil
}

// DecodeRequest decodes a DataGridRequest without validating it. Servers
// use this so validation can run against the executing engine's full
// operation registry (built-ins plus extensions) rather than built-ins
// only.
func DecodeRequest(data []byte) (*Request, error) {
	var req Request
	if err := xml.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("dgl: parse request: %w", err)
	}
	return &req, nil
}

// ParseResponse decodes a DataGridResponse from XML.
func ParseResponse(data []byte) (*Response, error) {
	var resp Response
	if err := xml.Unmarshal(data, &resp); err != nil {
		return nil, fmt.Errorf("dgl: parse response: %w", err)
	}
	return &resp, nil
}

// ParseFlowStatus decodes a flowStatus tree from XML — the payload of a
// delegate reply crossing the peer network.
func ParseFlowStatus(data []byte) (*FlowStatus, error) {
	var st FlowStatus
	if err := xml.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("dgl: parse flow status: %w", err)
	}
	return &st, nil
}

// String renders the request as XML (best effort; errors yield a
// diagnostic string).
func (r *Request) String() string {
	b, err := Marshal(r)
	if err != nil {
		return fmt.Sprintf("<invalid request: %v>", err)
	}
	return string(b)
}

// ChildNames returns the names of a flow's children in document order.
func (f *Flow) ChildNames() []string {
	var out []string
	for i := range f.Flows {
		out = append(out, f.Flows[i].Name)
	}
	for i := range f.Steps {
		out = append(out, f.Steps[i].Name)
	}
	return out
}

// CountSteps returns the total number of steps in the flow tree.
func (f *Flow) CountSteps() int {
	n := len(f.Steps)
	for i := range f.Flows {
		n += f.Flows[i].CountSteps()
	}
	return n
}

// Response is a DGL Data Grid Response (Figure 4): an acknowledgement for
// asynchronous requests, a status tree for queries, or an error.
type Response struct {
	XMLName xml.Name    `xml:"dataGridResponse"`
	Ack     *Ack        `xml:"requestAcknowledgement,omitempty"`
	Status  *FlowStatus `xml:"flowStatus,omitempty"`
	Error   string      `xml:"error,omitempty"`
}

// Ack acknowledges an asynchronous request: "Request Acknowledgement
// contains a unique identifier for each request and the initial status of
// the request and its validity."
type Ack struct {
	ID      string `xml:"id"`
	Status  string `xml:"status"`
	Valid   bool   `xml:"valid"`
	Message string `xml:"message,omitempty"`
}

// FlowStatus is one node of a status tree. IDs are unique per execution
// and shareable: "The identifier for any particular task or flow can be
// shared with all other processes."
type FlowStatus struct {
	ID       string `xml:"id,attr"`
	Name     string `xml:"name,attr"`
	Kind     string `xml:"kind,attr"` // "flow" or "step"
	State    string `xml:"state,attr"`
	Started  string `xml:"started,attr,omitempty"`
	Finished string `xml:"finished,attr,omitempty"`
	// Delegated names the remote execution id when this subtree ran on
	// another peer ("peerB:dgf-000042"); its children carry remote ids.
	Delegated string       `xml:"delegated,attr,omitempty"`
	Error     string       `xml:"error,omitempty"`
	Children  []FlowStatus `xml:"status,omitempty"`
}

// Find returns the status node with the given id in the subtree.
func (s *FlowStatus) Find(id string) (*FlowStatus, bool) {
	if s.ID == id {
		return s, true
	}
	for i := range s.Children {
		if n, ok := s.Children[i].Find(id); ok {
			return n, true
		}
	}
	return nil, false
}

// CountByState tallies the states of every node in the subtree.
func (s *FlowStatus) CountByState() map[string]int {
	out := map[string]int{}
	var walk func(*FlowStatus)
	walk = func(n *FlowStatus) {
		out[n.State]++
		for i := range n.Children {
			walk(&n.Children[i])
		}
	}
	walk(s)
	return out
}

// Summary renders a one-line human-readable summary of the node.
func (s *FlowStatus) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s [%s] %s", s.Kind, s.Name, s.ID, s.State)
	if s.Error != "" {
		fmt.Fprintf(&sb, " error=%q", s.Error)
	}
	return sb.String()
}
