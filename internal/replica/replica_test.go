package replica

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"datagridflow/internal/obs"
	"datagridflow/internal/store"
)

func snapRec(id string) store.Record {
	return store.Record{Type: store.TypeExecSnap, ID: id, Request: "<req/>"}
}

func endRec(id string) store.Record {
	return store.Record{Type: store.TypeExecEnd, ID: id}
}

// taps turns records into the TapRecord batch the store would hand the
// sender, numbering from first.
func taps(first uint64, recs ...store.Record) []store.TapRecord {
	out := make([]store.TapRecord, len(recs))
	for i, r := range recs {
		out[i] = store.TapRecord{Seq: first + uint64(i), Rec: r}
	}
	return out
}

func mustBlock(t *testing.T, binary bool, recs ...store.Record) []byte {
	t.Helper()
	block, err := EncodeBlock(recs, binary)
	if err != nil {
		t.Fatal(err)
	}
	return block
}

func newTestReceiver(t *testing.T, binary bool, reg *obs.Registry) *Receiver {
	t.Helper()
	recv, err := NewReceiver(ReceiverConfig{Dir: t.TempDir(), Binary: binary, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(recv.Close)
	return recv
}

// liveIDs promotes source on recv and returns the sorted live entry ids.
func liveIDs(t *testing.T, recv *Receiver, source string) []string {
	t.Helper()
	entries, err := recv.Promote(source)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, len(entries))
	for _, e := range entries {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

func TestEncodeDecodeBlock(t *testing.T) {
	recs := []store.Record{snapRec("a"), endRec("a"), snapRec("b")}
	for _, binary := range []bool{false, true} {
		block, err := EncodeBlock(recs, binary)
		if err != nil {
			t.Fatalf("binary=%v: %v", binary, err)
		}
		got, err := DecodeBlock(block)
		if err != nil {
			t.Fatalf("binary=%v: %v", binary, err)
		}
		if len(got) != len(recs) {
			t.Fatalf("binary=%v: %d records, want %d", binary, len(got), len(recs))
		}
		for i := range recs {
			if got[i].Type != recs[i].Type || got[i].ID != recs[i].ID {
				t.Fatalf("binary=%v record %d: %+v != %+v", binary, i, got[i], recs[i])
			}
		}
	}
	if recs, err := DecodeBlock(nil); err != nil || recs != nil {
		t.Fatalf("empty block: %v %v", recs, err)
	}
}

func TestDecodeBlockDamage(t *testing.T) {
	jsonBlock := mustBlock(t, false, snapRec("a"), snapRec("b"))
	if _, err := DecodeBlock(jsonBlock[:len(jsonBlock)-1]); err == nil {
		t.Fatal("unterminated JSON block decoded without error")
	}
	binBlock := mustBlock(t, true, snapRec("a"), snapRec("b"))
	if _, err := DecodeBlock(binBlock[:len(binBlock)-3]); err == nil {
		t.Fatal("truncated binary block decoded without error")
	}
}

func TestParseAckMode(t *testing.T) {
	for _, ok := range []string{"quorum", "chain", "async"} {
		if _, err := ParseAckMode(ok); err != nil {
			t.Fatalf("%s: %v", ok, err)
		}
	}
	if _, err := ParseAckMode("paxos"); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestSelectFollowers(t *testing.T) {
	members := []string{"c", "a", "b", "d", "a", ""}
	got := SelectFollowers("b", members, 2)
	if !reflect.DeepEqual(got, []string{"c", "d"}) {
		t.Fatalf("successors of b: %v", got)
	}
	// Deterministic in the member set regardless of order.
	if again := SelectFollowers("b", []string{"d", "c", "b", "a"}, 2); !reflect.DeepEqual(again, got) {
		t.Fatalf("order-dependent placement: %v vs %v", again, got)
	}
	// Wraps, never self, clamps to the available peers.
	if got := SelectFollowers("d", members, 5); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("wrap: %v", got)
	}
	// A self not present in members still gets its insertion-point ring.
	if got := SelectFollowers("bb", members, 1); !reflect.DeepEqual(got, []string{"c"}) {
		t.Fatalf("absent self: %v", got)
	}
	if got := SelectFollowers("a", nil, 1); got != nil {
		t.Fatalf("no members: %v", got)
	}
	if got := SelectFollowers("a", members, 0); got != nil {
		t.Fatalf("n=0: %v", got)
	}
}

func TestReceiverAppendAndPromote(t *testing.T) {
	recv := newTestReceiver(t, false, nil)
	ack := recv.Apply(Frame{Op: OpAppend, Source: "own", Seq: 1, Count: 2,
		Block: mustBlock(t, false, snapRec("f1"), snapRec("f2"))})
	if !ack.OK || ack.AckSeq != 2 {
		t.Fatalf("append ack: %+v", ack)
	}
	ack = recv.Apply(Frame{Op: OpAppend, Source: "own", Seq: 3, Count: 1,
		Block: mustBlock(t, false, endRec("f2"))})
	if !ack.OK || ack.AckSeq != 3 {
		t.Fatalf("append ack: %+v", ack)
	}
	srcs := recv.Sources()
	if len(srcs) != 1 || srcs[0].Source != "own" || srcs[0].LastSeq != 3 || srcs[0].Live != 1 || srcs[0].Promoted {
		t.Fatalf("sources: %+v", srcs)
	}
	if ids := liveIDs(t, recv, "own"); !reflect.DeepEqual(ids, []string{"f1"}) {
		t.Fatalf("live after promotion: %v", ids)
	}
	// Promotion is once per source.
	if again, err := recv.Promote("own"); err != nil || again != nil {
		t.Fatalf("second promotion: %v %v", again, err)
	}
	if !recv.Sources()[0].Promoted {
		t.Fatal("source not marked promoted")
	}
}

func TestReceiverRejectsBadFrames(t *testing.T) {
	recv := newTestReceiver(t, false, nil)
	if ack := recv.Apply(Frame{Op: OpAppend, Source: "../evil", Seq: 1, Count: 1}); ack.OK || ack.Error == "" {
		t.Fatalf("path-escaping source accepted: %+v", ack)
	}
	if ack := recv.Apply(Frame{Op: "compact", Source: "own", Seq: 1}); ack.OK || ack.Error == "" {
		t.Fatalf("unknown op accepted: %+v", ack)
	}
	if ack := recv.Apply(Frame{Op: OpAppend, Source: "own", Seq: 1, Count: 0}); ack.OK || ack.Error == "" {
		t.Fatalf("empty append accepted: %+v", ack)
	}
	if ack := recv.Apply(Frame{Op: OpAppend, Source: "own", Seq: 1, Count: 2,
		Block: mustBlock(t, false, snapRec("only-one"))}); ack.OK || ack.Error == "" {
		t.Fatalf("count/block mismatch accepted: %+v", ack)
	}
	if _, err := recv.Promote(".."); err == nil {
		t.Fatal("path-escaping promotion accepted")
	}
}

// TestReceiverDuplicateAfterReconnect covers the sender-retry shape: a
// reconnecting sender replays its last unacknowledged frame, and the
// receiver must acknowledge without double-applying.
func TestReceiverDuplicateAfterReconnect(t *testing.T) {
	reg := obs.NewRegistry()
	recv := newTestReceiver(t, false, reg)
	frame := Frame{Op: OpAppend, Source: "own", Seq: 1, Count: 2,
		Block: mustBlock(t, false, snapRec("f1"), endRec("f1"))}
	if ack := recv.Apply(frame); !ack.OK || ack.AckSeq != 2 {
		t.Fatalf("first apply: %+v", ack)
	}
	// Same frame again, as after an ack lost to a dropped connection.
	if ack := recv.Apply(frame); !ack.OK || ack.AckSeq != 2 {
		t.Fatalf("duplicate apply: %+v", ack)
	}
	if got := reg.Counter("repl_duplicate_frames_total").Value(); got != 1 {
		t.Fatalf("repl_duplicate_frames_total = %d, want 1", got)
	}
	// The flow ended exactly once: nothing live, nothing resurrected.
	if ids := liveIDs(t, recv, "own"); len(ids) != 0 {
		t.Fatalf("live after duplicate: %v", ids)
	}
}

// TestReceiverOverlapAppliesSuffix covers a coalesced retry frame that
// straddles the cursor: only the unseen suffix may apply.
func TestReceiverOverlapAppliesSuffix(t *testing.T) {
	recv := newTestReceiver(t, false, nil)
	if ack := recv.Apply(Frame{Op: OpAppend, Source: "own", Seq: 1, Count: 2,
		Block: mustBlock(t, false, snapRec("f1"), snapRec("f2"))}); !ack.OK {
		t.Fatalf("seed: %+v", ack)
	}
	// Seq 1-3 against cursor 2: f1/f2 are dupes, end(f1) is new.
	ack := recv.Apply(Frame{Op: OpAppend, Source: "own", Seq: 1, Count: 3,
		Block: mustBlock(t, false, snapRec("f1"), snapRec("f2"), endRec("f1"))})
	if !ack.OK || ack.AckSeq != 3 {
		t.Fatalf("overlap apply: %+v", ack)
	}
	if ids := liveIDs(t, recv, "own"); !reflect.DeepEqual(ids, []string{"f2"}) {
		t.Fatalf("live after overlap: %v", ids)
	}
}

func TestReceiverGapThenSnapshotHeals(t *testing.T) {
	reg := obs.NewRegistry()
	recv := newTestReceiver(t, false, reg)
	ack := recv.Apply(Frame{Op: OpAppend, Source: "own", Seq: 7, Count: 1,
		Block: mustBlock(t, false, snapRec("f7"))})
	if ack.OK || !ack.NeedSnapshot || ack.AckSeq != 0 {
		t.Fatalf("gap ack: %+v", ack)
	}
	if got := reg.Counter("repl_gap_snapshots_total").Value(); got != 1 {
		t.Fatalf("repl_gap_snapshots_total = %d", got)
	}
	// Snapshot current through 6 rebuilds the replica; the append retries.
	snap := Frame{Op: OpSnapshot, Source: "own", Seq: 6, Count: 2,
		Block: mustBlock(t, false, snapRec("f5"), snapRec("f6"))}
	if ack := recv.Apply(snap); !ack.OK || ack.AckSeq != 6 {
		t.Fatalf("snapshot ack: %+v", ack)
	}
	if ack := recv.Apply(Frame{Op: OpAppend, Source: "own", Seq: 7, Count: 1,
		Block: mustBlock(t, false, snapRec("f7"))}); !ack.OK || ack.AckSeq != 7 {
		t.Fatalf("post-snapshot append: %+v", ack)
	}
	if ids := liveIDs(t, recv, "own"); !reflect.DeepEqual(ids, []string{"f5", "f6", "f7"}) {
		t.Fatalf("live after heal: %v", ids)
	}
	if got := reg.Counter("repl_snapshots_applied_total").Value(); got != 1 {
		t.Fatalf("repl_snapshots_applied_total = %d", got)
	}
}

// TestMixedCodecReplication crosses the encodings both ways: a JSON
// owner's blocks land in a binary replica store and vice versa — the
// receiver sniffs each block and re-appends through its own store.
func TestMixedCodecReplication(t *testing.T) {
	for _, tc := range []struct {
		name                  string
		ownerBin, followerBin bool
	}{
		{"json-owner-binary-follower", false, true},
		{"binary-owner-json-follower", true, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			recv := newTestReceiver(t, tc.followerBin, nil)
			ack := recv.Apply(Frame{Op: OpAppend, Source: "own", Seq: 1, Count: 3,
				Block: mustBlock(t, tc.ownerBin, snapRec("f1"), snapRec("f2"), endRec("f2"))})
			if !ack.OK || ack.AckSeq != 3 {
				t.Fatalf("apply: %+v", ack)
			}
			if ids := liveIDs(t, recv, "own"); !reflect.DeepEqual(ids, []string{"f1"}) {
				t.Fatalf("live: %v", ids)
			}
		})
	}
}

// senderTo builds a quorum-or-other sender wired straight into recv, as
// the wire layer would, with an optional snapshot source.
func senderTo(t *testing.T, recv *Receiver, mode AckMode, reg *obs.Registry, snap func() (Frame, error)) *Sender {
	t.Helper()
	s := NewSender(SenderConfig{
		Source: "own",
		Mode:   mode,
		Send: func(peer string, f Frame) (Ack, error) {
			return recv.Apply(f), nil
		},
		Snapshot: snap,
		Obs:      reg,
	})
	t.Cleanup(s.Close)
	return s
}

func waitAcked(t *testing.T, s *Sender, peer string, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, f := range s.Status() {
			if f.Peer == peer && f.AckedSeq >= seq {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("follower %s never acked seq %d: %+v", peer, seq, s.Status())
}

func TestSenderQuorumRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	recv := newTestReceiver(t, false, reg)
	s := senderTo(t, recv, ModeQuorum, reg, nil)
	s.SetFollowers([]string{"f1"})
	if got := s.Followers(); !reflect.DeepEqual(got, []string{"f1"}) {
		t.Fatalf("followers: %v", got)
	}
	wait := s.Replicate(taps(1, snapRec("x"), endRec("x")))
	if wait == nil {
		t.Fatal("commit-point batch returned no wait")
	}
	wait()
	if got := reg.Counter("repl_acks_total").Value(); got != 1 {
		t.Fatalf("repl_acks_total = %d", got)
	}
	if s.LastSeq() != 2 {
		t.Fatalf("lastSeq = %d", s.LastSeq())
	}
	waitAcked(t, s, "f1", 2)
	if ids := liveIDs(t, recv, "own"); len(ids) != 0 {
		t.Fatalf("live: %v", ids)
	}
}

// TestSenderCommitPointGate: a batch with no terminal/passivation
// record streams without a wait — the next commit point's cumulative
// ack covers it.
func TestSenderCommitPointGate(t *testing.T) {
	recv := newTestReceiver(t, false, nil)
	s := senderTo(t, recv, ModeQuorum, nil, nil)
	s.SetFollowers([]string{"f1"})
	if wait := s.Replicate(taps(1, store.Record{Type: store.TypeExecStart, ID: "x"})); wait != nil {
		t.Fatal("mid-flight batch demanded a wait")
	}
	if wait := s.Replicate(taps(2, store.Record{Type: store.TypeExecPassivate, ID: "x"})); wait == nil {
		t.Fatal("passivation batch returned no wait")
	} else {
		wait()
	}
	waitAcked(t, s, "f1", 2)
}

func TestSenderAsyncNeverWaits(t *testing.T) {
	recv := newTestReceiver(t, false, nil)
	s := senderTo(t, recv, ModeAsync, nil, nil)
	s.SetFollowers([]string{"f1"})
	if wait := s.Replicate(taps(1, snapRec("x"), endRec("x"))); wait != nil {
		t.Fatal("async mode returned a wait")
	}
	waitAcked(t, s, "f1", 2)
}

func TestSenderNoFollowersNoWait(t *testing.T) {
	recv := newTestReceiver(t, false, nil)
	s := senderTo(t, recv, ModeQuorum, nil, nil)
	if wait := s.Replicate(taps(1, endRec("x"))); wait != nil {
		t.Fatal("followerless sender returned a wait")
	}
	if wait := s.Replicate(nil); wait != nil {
		t.Fatal("empty batch returned a wait")
	}
}

// TestSenderChainForwards: chain mode sends to the head only; the head
// relays down the chain before acking upstream.
func TestSenderChainForwards(t *testing.T) {
	regTail := obs.NewRegistry()
	tail := newTestReceiver(t, false, regTail)
	head, err := NewReceiver(ReceiverConfig{
		Dir: t.TempDir(),
		Forward: func(peer string, f Frame) (Ack, error) {
			if peer != "f2" {
				return Ack{}, fmt.Errorf("forwarded to %s, want f2", peer)
			}
			return tail.Apply(f), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(head.Close)
	s := NewSender(SenderConfig{
		Source: "own",
		Mode:   ModeChain,
		Send: func(peer string, f Frame) (Ack, error) {
			if peer != "f1" {
				return Ack{}, fmt.Errorf("chain mode sent to %s, want head f1", peer)
			}
			return head.Apply(f), nil
		},
	})
	t.Cleanup(s.Close)
	s.SetFollowers([]string{"f1", "f2"})
	wait := s.Replicate(taps(1, snapRec("x"), endRec("x")))
	if wait == nil {
		t.Fatal("chain commit point returned no wait")
	}
	wait()
	deadline := time.Now().Add(5 * time.Second)
	for {
		srcs := tail.Sources()
		if len(srcs) == 1 && srcs[0].LastSeq == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tail never caught up: %+v", srcs)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSenderAckTimeoutDegradesToAsync: a follower slower than the ack
// budget must slow the owner by at most AckTimeout, not halt it.
func TestSenderAckTimeoutDegradesToAsync(t *testing.T) {
	reg := obs.NewRegistry()
	release := make(chan struct{})
	s := NewSender(SenderConfig{
		Source:     "own",
		Mode:       ModeQuorum,
		AckTimeout: 20 * time.Millisecond,
		Send: func(peer string, f Frame) (Ack, error) {
			<-release
			return Ack{OK: true, AckSeq: f.Seq + uint64(f.Count) - 1}, nil
		},
		Obs: reg,
	})
	s.SetFollowers([]string{"slow"})
	wait := s.Replicate(taps(1, endRec("x")))
	if wait == nil {
		t.Fatal("no wait")
	}
	done := make(chan struct{})
	go func() { wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("wait did not time out")
	}
	if got := reg.Counter("repl_ack_timeouts_total").Value(); got != 1 {
		t.Fatalf("repl_ack_timeouts_total = %d", got)
	}
	close(release)
	s.Close()
}

// TestSenderFailedDeliveryCountsFailure: a dead follower fails the
// quorum wait promptly (no timeout needed — the error is definitive).
func TestSenderFailedDeliveryCountsFailure(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewSender(SenderConfig{
		Source: "own",
		Mode:   ModeQuorum,
		Send: func(peer string, f Frame) (Ack, error) {
			return Ack{}, errors.New("connection refused")
		},
		Obs: reg,
	})
	t.Cleanup(s.Close)
	s.SetFollowers([]string{"dead"})
	wait := s.Replicate(taps(1, endRec("x")))
	if wait == nil {
		t.Fatal("no wait")
	}
	wait()
	if got := reg.Counter("repl_ack_failures_total").Value(); got != 1 {
		t.Fatalf("repl_ack_failures_total = %d", got)
	}
	if got := reg.Counter("repl_send_errors_total", "peer", "dead").Value(); got == 0 {
		t.Fatal("repl_send_errors_total not counted")
	}
}

// TestSenderOutboxOverflowDrops: a follower that can't drain its outbox
// has frames dropped (and will re-sync by snapshot), never blocking the
// owner's append path.
func TestSenderOutboxOverflowDrops(t *testing.T) {
	reg := obs.NewRegistry()
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	s := NewSender(SenderConfig{
		Source:     "own",
		Mode:       ModeAsync,
		QueueDepth: 1,
		Send: func(peer string, f Frame) (Ack, error) {
			once.Do(func() { close(started) })
			<-gate
			return Ack{OK: true, AckSeq: f.Seq + uint64(f.Count) - 1}, nil
		},
		Obs: reg,
	})
	s.SetFollowers([]string{"stuck"})
	s.Replicate(taps(1, snapRec("a"))) // occupies the worker
	<-started
	s.Replicate(taps(2, snapRec("b"))) // fills the queue
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("repl_frames_dropped_total", "peer", "stuck").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("overflow never dropped")
		}
		s.Replicate(taps(3, snapRec("c"))) // must be dropped or queued, never block
	}
	close(gate)
	s.Close()
}

// TestSenderShipsSnapshotOnGap: a cold follower's first ack reports a
// gap; the sender ships a snapshot, then the original frame.
func TestSenderShipsSnapshotOnGap(t *testing.T) {
	reg := obs.NewRegistry()
	recv := newTestReceiver(t, false, reg)
	snap := func() (Frame, error) {
		// State current through seq 4: two live flows.
		return Frame{Seq: 4, Count: 2, Block: mustBlock(t, false, snapRec("f1"), snapRec("f2"))}, nil
	}
	s := senderTo(t, recv, ModeQuorum, reg, snap)
	s.SetFollowers([]string{"f1"})
	wait := s.Replicate(taps(5, endRec("f2")))
	if wait == nil {
		t.Fatal("no wait")
	}
	wait()
	waitAcked(t, s, "f1", 5)
	if got := reg.Counter("repl_snapshots_shipped_total").Value(); got != 1 {
		t.Fatalf("repl_snapshots_shipped_total = %d", got)
	}
	if ids := liveIDs(t, recv, "own"); !reflect.DeepEqual(ids, []string{"f1"}) {
		t.Fatalf("live after snapshot+append: %v", ids)
	}
}

// TestSenderCoalescesContiguousFrames: batches that queue behind an
// in-flight round trip merge into one frame — group commit applied to
// the network.
func TestSenderCoalescesContiguousFrames(t *testing.T) {
	reg := obs.NewRegistry()
	recv := newTestReceiver(t, false, reg)
	gate := make(chan struct{})
	first := make(chan struct{})
	var once sync.Once
	s := NewSender(SenderConfig{
		Source: "own",
		Mode:   ModeAsync,
		Send: func(peer string, f Frame) (Ack, error) {
			once.Do(func() { close(first) })
			<-gate
			return recv.Apply(f), nil
		},
		Obs: reg,
	})
	t.Cleanup(s.Close)
	s.SetFollowers([]string{"f1"})
	s.Replicate(taps(1, snapRec("a")))
	<-first // worker is mid-delivery; what follows queues
	s.Replicate(taps(2, snapRec("b")))
	s.Replicate(taps(3, snapRec("c")))
	close(gate)
	waitAcked(t, s, "f1", 3)
	if got := reg.Counter("repl_frames_coalesced_total").Value(); got == 0 {
		t.Fatal("queued contiguous frames never coalesced")
	}
	if srcs := recv.Sources(); srcs[0].LastSeq != 3 || srcs[0].Live != 3 {
		t.Fatalf("receiver after coalesced delivery: %+v", srcs)
	}
}

func TestSenderSetFollowersReplacesSet(t *testing.T) {
	recv := newTestReceiver(t, false, nil)
	s := senderTo(t, recv, ModeQuorum, nil, nil)
	s.SetFollowers([]string{"f1", "f2", "f1", "", "own"})
	if got := s.Followers(); !reflect.DeepEqual(got, []string{"f1", "f2"}) {
		t.Fatalf("followers (dedup, no self/empty): %v", got)
	}
	s.SetFollowers([]string{"f2"})
	if got := s.Followers(); !reflect.DeepEqual(got, []string{"f2"}) {
		t.Fatalf("followers after shrink: %v", got)
	}
	s.Close()
	s.SetFollowers([]string{"f3"})
	if got := s.Followers(); got != nil {
		t.Fatalf("followers after close: %v", got)
	}
}

// TestReceiverRestartHealsBySnapshot: a restarted receiver's cursors
// reset to 0, so the next streamed frame is a gap and the owner ships a
// snapshot — the documented re-sync path.
func TestReceiverRestartHealsBySnapshot(t *testing.T) {
	dir := t.TempDir()
	recv, err := NewReceiver(ReceiverConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if ack := recv.Apply(Frame{Op: OpAppend, Source: "own", Seq: 1, Count: 1,
		Block: mustBlock(t, false, snapRec("f1"))}); !ack.OK {
		t.Fatalf("seed: %+v", ack)
	}
	recv.Close()

	again, err := NewReceiver(ReceiverConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(again.Close)
	// The replica directory was rediscovered, promotable even cold.
	srcs := again.Sources()
	if len(srcs) != 1 || srcs[0].Source != "own" || srcs[0].LastSeq != 0 || srcs[0].Live != 1 {
		t.Fatalf("rediscovered sources: %+v", srcs)
	}
	ack := again.Apply(Frame{Op: OpAppend, Source: "own", Seq: 2, Count: 1,
		Block: mustBlock(t, false, endRec("f1"))})
	if ack.OK || !ack.NeedSnapshot {
		t.Fatalf("restarted cursor accepted a streamed frame: %+v", ack)
	}
}
