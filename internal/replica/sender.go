package replica

import (
	"sync"
	"sync/atomic"
	"time"

	"datagridflow/internal/obs"
	"datagridflow/internal/store"
)

// SenderConfig configures a Sender.
type SenderConfig struct {
	// Source names this peer; every frame carries it so receivers keep
	// one replica store per source.
	Source string
	// Mode selects how many follower acks an append waits for.
	Mode AckMode
	// Binary selects the block encoding (the owner's store encoding).
	Binary bool
	// AckTimeout bounds how long a quorum/chain append waits before
	// degrading to async for that batch (repl_ack_timeouts_total).
	// Default 2s. A dead follower must slow the owner, not halt it —
	// the gap it accrues is healed by snapshot on reconnect.
	AckTimeout time.Duration
	// QueueDepth bounds each follower's outbox. A follower that falls
	// further behind has frames dropped (repl_frames_dropped_total) and
	// re-syncs by snapshot. Default 4096.
	QueueDepth int
	// Send delivers one frame to a named follower and returns its ack.
	Send func(peer string, f Frame) (Ack, error)
	// Snapshot builds a catch-up snapshot frame (Op, Source, Seq and
	// Block unset — the sender fills Source and Chain).
	Snapshot func() (Frame, error)
	// Obs receives the repl_* metrics. Optional.
	Obs *obs.Registry
}

// FollowerStatus is one follower's replication position, for the
// `dgfctl repl` verb.
type FollowerStatus struct {
	Peer     string `json:"peer"`
	AckedSeq uint64 `json:"ackedSeq"`
}

// Sender fans the store's replication tap out to the follower set. One
// goroutine per follower drains an ordered outbox, so a slow follower
// never blocks the others; the tap call itself blocks only for the acks
// the configured mode demands.
type Sender struct {
	cfg SenderConfig

	mu      sync.Mutex
	order   []string // follower names in placement order (chain order)
	outbox  map[string]*outbox
	lastSeq uint64 // highest seq handed to Replicate
	closed  bool
}

type outbox struct {
	peer    string
	jobs    chan senderJob
	quit    chan struct{}
	done    chan struct{}
	lastAck atomic.Uint64
}

type senderJob struct {
	frame Frame
	// ack, when non-nil, receives one true/false per delivery attempt
	// (buffered by the caller to the fan-out width).
	ack chan bool
}

// NewSender starts a sender with no followers; SetFollowers arms it.
func NewSender(cfg SenderConfig) *Sender {
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 2 * time.Second
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4096
	}
	if cfg.Mode == "" {
		cfg.Mode = ModeQuorum
	}
	return &Sender{cfg: cfg, outbox: map[string]*outbox{}}
}

// SetFollowers replaces the follower set (placement order = chain
// order). New followers start cold: their first frame reports a gap and
// triggers a snapshot ship. Removed followers' outboxes stop.
func (s *Sender) SetFollowers(names []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	keep := make(map[string]bool, len(names))
	for _, n := range names {
		if n == "" || n == s.cfg.Source || keep[n] {
			continue
		}
		keep[n] = true
		if s.outbox[n] == nil {
			ob := &outbox{
				peer: n,
				jobs: make(chan senderJob, s.cfg.QueueDepth),
				quit: make(chan struct{}),
				done: make(chan struct{}),
			}
			s.outbox[n] = ob
			go s.run(ob)
		}
	}
	for n, ob := range s.outbox {
		if !keep[n] {
			close(ob.quit)
			delete(s.outbox, n)
		}
	}
	s.order = s.order[:0]
	for _, n := range names {
		if keep[n] {
			s.order = append(s.order, n)
			keep[n] = false // dedupe: record each follower once
		}
	}
}

// Followers returns the current follower names in placement order.
func (s *Sender) Followers() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// Status reports each follower's last acknowledged sequence.
func (s *Sender) Status() []FollowerStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]FollowerStatus, 0, len(s.order))
	for _, n := range s.order {
		if ob := s.outbox[n]; ob != nil {
			out = append(out, FollowerStatus{Peer: n, AckedSeq: ob.lastAck.Load()})
		}
	}
	return out
}

// LastSeq returns the highest sequence the tap has handed the sender.
func (s *Sender) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq
}

// Close stops every outbox worker and waits for them to exit.
func (s *Sender) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	workers := make([]*outbox, 0, len(s.outbox))
	for n, ob := range s.outbox {
		close(ob.quit)
		workers = append(workers, ob)
		delete(s.outbox, n)
	}
	s.order = nil
	s.mu.Unlock()
	for _, ob := range workers {
		<-ob.done
	}
}

// Replicate is the store tap (store.SetTap): it turns one batch of
// durable records into an append frame and enqueues it per the ack
// mode's fan-out. The returned wait function — nil when nothing needs
// waiting on — blocks until enough follower acks arrive (quorum: a
// majority of the follower set; chain: the head of the chain; async:
// none). The enqueue/wait split lets the store release its ordering
// lock before waiting, so concurrent appenders' round trips overlap.
// Called with batches in strict sequence order.
func (s *Sender) Replicate(batch []store.TapRecord) func() {
	if len(batch) == 0 {
		return nil
	}
	recs := make([]store.Record, len(batch))
	for i, tr := range batch {
		recs[i] = tr.Rec
	}
	block, err := EncodeBlock(recs, s.cfg.Binary)
	if err != nil {
		s.count("repl_encode_errors_total")
		return nil
	}
	f := Frame{
		Op:     OpAppend,
		Source: s.cfg.Source,
		Seq:    batch[0].Seq,
		Count:  len(batch),
		Block:  block,
	}

	s.mu.Lock()
	s.lastSeq = batch[len(batch)-1].Seq
	var targets []*outbox
	need := 0
	switch s.cfg.Mode {
	case ModeChain:
		if len(s.order) > 0 {
			if head := s.outbox[s.order[0]]; head != nil {
				f.Chain = append([]string(nil), s.order[1:]...)
				targets = append(targets, head)
				need = 1
			}
		}
	default: // quorum and async fan out to every follower
		for _, n := range s.order {
			if ob := s.outbox[n]; ob != nil {
				targets = append(targets, ob)
			}
		}
		if s.cfg.Mode == ModeQuorum {
			need = (len(targets) + 1) / 2 // majority of the follower set
		}
	}
	s.mu.Unlock()
	if len(targets) == 0 {
		return nil
	}
	// Wait only at commit points. Acks are cumulative by sequence, so a
	// batch carrying no record that completes a promise to a caller
	// (terminal outcome, passivation) streams without blocking its
	// appender — the next commit-point wait covers the whole prefix.
	// This is log shipping's classic shape: the stream pipelines, the
	// sync points are where durability was promised.
	if need > 0 && !hasCommitPoint(batch) {
		need = 0
	}

	var ack chan bool
	if need > 0 {
		ack = make(chan bool, len(targets))
	}
	enqueued := 0
	for _, ob := range targets {
		select {
		case ob.jobs <- senderJob{frame: f, ack: ack}:
			enqueued++
		default:
			// Outbox full: the follower is too far behind for streaming.
			// Drop — the gap it sees next forces a snapshot re-sync.
			s.count("repl_frames_dropped_total", "peer", ob.peer)
		}
	}
	s.count("repl_frames_sent_total")
	if need == 0 || enqueued == 0 {
		return nil
	}
	if need > enqueued {
		need = enqueued
	}
	return func() {
		timer := time.NewTimer(s.cfg.AckTimeout)
		defer timer.Stop()
		got := 0
		for pending := enqueued; got < need && pending > 0; {
			select {
			case ok := <-ack:
				pending--
				if ok {
					got++
				}
			case <-timer.C:
				// Degrade to async for this batch rather than stalling the
				// owner's append path on a dead follower.
				s.count("repl_ack_timeouts_total")
				return
			}
		}
		if got >= need {
			s.count("repl_acks_total")
		} else {
			s.count("repl_ack_failures_total")
		}
	}
}

// hasCommitPoint reports whether the batch carries a record that
// completes a promise to a caller: a terminal outcome (a synchronous
// submitter is about to be told the flow finished) or a passivation
// (the caller is about to be told the flow is parked resumably).
// Start/step records are progress, not promises — a mid-flight flow
// has acknowledged nothing to anyone yet.
func hasCommitPoint(batch []store.TapRecord) bool {
	for _, tr := range batch {
		switch tr.Rec.Type {
		case store.TypeExecEnd, store.TypeExecPassivate:
			return true
		}
	}
	return false
}

// run drains one follower's outbox in order.
func (s *Sender) run(ob *outbox) {
	defer close(ob.done)
	for {
		select {
		case <-ob.quit:
			// Unblock any Replicate still waiting on queued jobs.
			for {
				select {
				case j := <-ob.jobs:
					if j.ack != nil {
						j.ack <- false
					}
				default:
					return
				}
			}
		case j := <-ob.jobs:
			s.drainBatch(ob, j)
		}
	}
}

// drainBatch delivers one job plus everything that queued behind it
// while the previous round trip was in flight — coalescing contiguous
// append frames into one frame per round trip. This is group commit
// applied to the network: without it, delivery is one RTT per store
// group commit and the owner's append throughput caps at 1/RTT; with
// it, the RTT amortizes over however many batches accumulated, the
// same way the fsync it mirrors amortizes over concurrent appenders.
func (s *Sender) drainBatch(ob *outbox, first senderJob) {
	run := []senderJob{first}
	flush := func() {
		if len(run) == 0 {
			return
		}
		f := run[0].frame
		if len(run) > 1 {
			merged := make([]byte, 0, len(f.Block)*len(run))
			merged = append(merged, f.Block...)
			for _, j := range run[1:] {
				merged = append(merged, j.frame.Block...)
				f.Count += j.frame.Count
			}
			f.Block = merged
			s.count("repl_frames_coalesced_total")
		}
		ok := s.deliver(ob, f)
		for _, j := range run {
			if j.ack != nil {
				j.ack <- ok
			}
		}
		run = run[:0]
	}
	for {
		select {
		case j := <-ob.jobs:
			last := run[len(run)-1].frame
			if !(last.Op == OpAppend && j.frame.Op == OpAppend &&
				j.frame.Seq == last.Seq+uint64(last.Count) &&
				sameChain(run[0].frame.Chain, j.frame.Chain)) {
				// Non-contiguous or non-append: flush what we have and
				// start a fresh run (blocks only concatenate when the
				// records are consecutive in the durable order).
				flush()
			}
			run = append(run, j)
		default:
			flush()
			return
		}
	}
}

func sameChain(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// deliver sends one frame, shipping a snapshot first when the follower
// reports a gap (cold follower, dropped frames, or follower restart).
func (s *Sender) deliver(ob *outbox, f Frame) bool {
	ack, err := s.cfg.Send(ob.peer, f)
	if err != nil {
		s.count("repl_send_errors_total", "peer", ob.peer)
		return false
	}
	if ack.NeedSnapshot && s.cfg.Snapshot != nil {
		snap, serr := s.cfg.Snapshot()
		if serr != nil {
			s.count("repl_snapshot_errors_total")
			return false
		}
		snap.Op = OpSnapshot
		snap.Source = s.cfg.Source
		snap.Chain = f.Chain
		sack, serr := s.cfg.Send(ob.peer, snap)
		if serr != nil || !sack.OK {
			s.count("repl_send_errors_total", "peer", ob.peer)
			return false
		}
		s.count("repl_snapshots_shipped_total")
		ob.lastAck.Store(sack.AckSeq)
		if f.Seq+uint64(f.Count)-1 <= sack.AckSeq {
			// The snapshot already covers this frame.
			s.gaugeLag(ob)
			return true
		}
		ack, err = s.cfg.Send(ob.peer, f)
		if err != nil || ack.NeedSnapshot {
			s.count("repl_send_errors_total", "peer", ob.peer)
			return false
		}
	}
	if !ack.OK {
		s.count("repl_apply_rejected_total", "peer", ob.peer)
		return false
	}
	ob.lastAck.Store(ack.AckSeq)
	s.gaugeLag(ob)
	return true
}

func (s *Sender) gaugeLag(ob *outbox) {
	if s.cfg.Obs == nil {
		return
	}
	s.mu.Lock()
	last := s.lastSeq
	s.mu.Unlock()
	acked := ob.lastAck.Load()
	lag := int64(0)
	if last > acked {
		lag = int64(last - acked)
	}
	s.cfg.Obs.Gauge("repl_follower_lag_records", "peer", ob.peer).Set(lag)
	s.cfg.Obs.Gauge("repl_follower_acked_seq", "peer", ob.peer).Set(int64(acked))
}

func (s *Sender) count(name string, labels ...string) {
	if s.cfg.Obs != nil {
		s.cfg.Obs.Counter(name, labels...).Inc()
	}
}
