package replica

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"datagridflow/internal/obs"
	"datagridflow/internal/store"
)

// ReceiverConfig configures a Receiver.
type ReceiverConfig struct {
	// Dir is the replica root; each source gets <Dir>/<source>.
	Dir string
	// Binary selects the replica stores' segment encoding — independent
	// of what the owners send, since every block is sniffed and
	// re-appended (mixed-codec replication).
	Binary bool
	// Forward delivers a chain-mode frame to the next hop. Optional;
	// nil disables chain forwarding (the chain truncates here).
	Forward func(peer string, f Frame) (Ack, error)
	// Obs receives the repl_* metrics. Optional.
	Obs *obs.Registry
}

// SourceStatus is one replicated source's position, for `dgfctl repl`.
type SourceStatus struct {
	Source   string `json:"source"`
	LastSeq  uint64 `json:"lastSeq"`
	Live     int    `json:"live"`
	Promoted bool   `json:"promoted"`
}

// Receiver applies replicate frames into one real store.Store per
// source under Dir. Using a full store — not a raw segment copy — means
// torn-tail repair, per-segment encoding sniffing and O(live) recovery
// all come for free at promotion time: Promote is just Live() on the
// replica.
type Receiver struct {
	cfg ReceiverConfig

	mu      sync.Mutex
	sources map[string]*source
	closed  bool
}

type source struct {
	mu sync.Mutex
	st *store.Store
	// lastSeq is the highest contiguous owner sequence applied. It is
	// not persisted: a receiver restart reports 0, the next frame is a
	// gap, and the owner re-syncs by snapshot.
	lastSeq  uint64
	promoted bool
}

// NewReceiver opens a receiver, discovering replica stores left on disk
// by a previous run — their entries remain promotable even though their
// cursors restart at 0.
func NewReceiver(cfg ReceiverConfig) (*Receiver, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("replica: receiver needs a directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("replica: %w", err)
	}
	r := &Receiver{cfg: cfg, sources: map[string]*source{}}
	ents, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("replica: %w", err)
	}
	for _, ent := range ents {
		if ent.IsDir() {
			r.sources[ent.Name()] = &source{}
		}
	}
	return r, nil
}

// validSource rejects source names that would escape Dir.
func validSource(name string) bool {
	return name != "" && name != "." && name != ".." &&
		!strings.ContainsAny(name, "/\\")
}

// open lazily opens (or creates) the replica store for a source.
// Caller holds src.mu.
func (r *Receiver) open(name string, src *source) error {
	if src.st != nil {
		return nil
	}
	// RelaxedSync: a replica acks on the OS write, not the fsync — the
	// primary's copy and the gap→snapshot re-sync are its durability
	// backstop, and waiting out an fsync per frame would put a disk
	// flush on every quorum-acked owner append.
	st, err := store.Open(filepath.Join(r.cfg.Dir, name), store.Options{
		Binary:      r.cfg.Binary,
		Obs:         r.cfg.Obs,
		RelaxedSync: true,
	})
	if err != nil {
		return err
	}
	src.st = st
	return nil
}

func (r *Receiver) source(name string) (*source, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, fmt.Errorf("replica: receiver closed")
	}
	src := r.sources[name]
	if src == nil {
		src = &source{}
		r.sources[name] = src
	}
	return src, nil
}

// Apply folds one replicate frame into the source's replica store and
// returns the ack the sender acts on. Idempotent under replays: a frame
// whose records are all at or below the cursor is acknowledged without
// re-applying (duplicate-frame delivery after a reconnect), an
// overlapping frame applies only its unseen suffix, and a frame beyond
// the cursor requests a snapshot.
func (r *Receiver) Apply(f Frame) Ack {
	if !validSource(f.Source) {
		return Ack{Error: fmt.Sprintf("replica: bad source %q", f.Source)}
	}
	src, err := r.source(f.Source)
	if err != nil {
		return Ack{Error: err.Error()}
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	var ack Ack
	switch f.Op {
	case OpSnapshot:
		ack = r.applySnapshot(src, f)
	case OpAppend:
		ack = r.applyAppend(src, f)
	default:
		return Ack{Error: fmt.Sprintf("replica: unknown op %q", f.Op)}
	}
	if ack.OK {
		r.count("repl_frames_applied_total", "op", f.Op)
		if r.cfg.Obs != nil {
			r.cfg.Obs.Gauge("repl_source_last_seq", "source", f.Source).Set(int64(src.lastSeq))
		}
		// Chain mode: relay down the chain before the upstream sees our
		// ack. A broken link degrades that link to async (metric below)
		// rather than failing the whole chain — the downstream heals by
		// snapshot when the link returns.
		if len(f.Chain) > 0 && r.cfg.Forward != nil {
			fwd := f
			fwd.Chain = f.Chain[1:]
			if _, ferr := r.cfg.Forward(f.Chain[0], fwd); ferr != nil {
				r.count("repl_chain_forward_errors_total")
			}
		}
	}
	return ack
}

// applySnapshot discards the replica and rebuilds it from the frame.
// Caller holds src.mu.
func (r *Receiver) applySnapshot(src *source, f Frame) Ack {
	recs, err := DecodeBlock(f.Block)
	if err != nil {
		return Ack{Error: err.Error()}
	}
	if src.st != nil {
		_ = src.st.Close()
		src.st = nil
	}
	dir := filepath.Join(r.cfg.Dir, f.Source)
	if err := os.RemoveAll(dir); err != nil {
		return Ack{Error: fmt.Sprintf("replica: reset %s: %v", f.Source, err)}
	}
	if err := r.open(f.Source, src); err != nil {
		return Ack{Error: err.Error()}
	}
	if err := src.st.AppendBatch(recs); err != nil {
		return Ack{Error: err.Error()}
	}
	src.lastSeq = f.Seq
	src.promoted = false
	r.count("repl_snapshots_applied_total")
	return Ack{OK: true, AckSeq: src.lastSeq}
}

// applyAppend applies an append frame at the cursor. Caller holds
// src.mu.
func (r *Receiver) applyAppend(src *source, f Frame) Ack {
	if f.Count <= 0 {
		return Ack{Error: "replica: empty append frame"}
	}
	end := f.Seq + uint64(f.Count) - 1
	if end <= src.lastSeq {
		// Replayed duplicate (sender retry after reconnect): already
		// applied, ack idempotently.
		r.count("repl_duplicate_frames_total")
		return Ack{OK: true, AckSeq: src.lastSeq}
	}
	if f.Seq > src.lastSeq+1 {
		// Gap: cold follower, dropped frames upstream, or our restart.
		r.count("repl_gap_snapshots_total")
		return Ack{OK: false, AckSeq: src.lastSeq, NeedSnapshot: true}
	}
	recs, err := DecodeBlock(f.Block)
	if err != nil {
		return Ack{Error: err.Error()}
	}
	if len(recs) != f.Count {
		return Ack{Error: fmt.Sprintf("replica: frame claims %d records, block holds %d", f.Count, len(recs))}
	}
	if skip := src.lastSeq + 1 - f.Seq; skip > 0 {
		recs = recs[skip:] // overlap: apply only the unseen suffix
	}
	if err := r.open(f.Source, src); err != nil {
		return Ack{Error: err.Error()}
	}
	if err := src.st.AppendBatch(recs); err != nil {
		return Ack{Error: err.Error()}
	}
	src.lastSeq = end
	return Ack{OK: true, AckSeq: src.lastSeq}
}

// Sources reports every replicated source, sorted by name.
func (r *Receiver) Sources() []SourceStatus {
	r.mu.Lock()
	names := make([]string, 0, len(r.sources))
	for n := range r.sources {
		names = append(names, n)
	}
	r.mu.Unlock()
	sort.Strings(names)
	out := make([]SourceStatus, 0, len(names))
	for _, n := range names {
		src, err := r.source(n)
		if err != nil {
			break
		}
		src.mu.Lock()
		st := SourceStatus{Source: n, LastSeq: src.lastSeq, Promoted: src.promoted}
		if src.st == nil {
			// Opening replays the replica (repairing any torn tail), so
			// Live counts are accurate even for rediscovered directories.
			_ = r.open(n, src)
		}
		if src.st != nil {
			st.Live = len(src.st.Live())
		}
		src.mu.Unlock()
		out = append(out, st)
	}
	return out
}

// Promote marks a dead source's replica taken over and returns its live
// entries for adoption. Opening the replica store replays it with the
// same torn-tail repair a primary gets, so a follower that crashed
// mid-write still promotes from its last acknowledged record. The
// second and later calls return nil — promotion is once per source.
func (r *Receiver) Promote(name string) ([]store.Entry, error) {
	if !validSource(name) {
		return nil, fmt.Errorf("replica: bad source %q", name)
	}
	src, err := r.source(name)
	if err != nil {
		return nil, err
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	if src.promoted {
		return nil, nil
	}
	if err := r.open(name, src); err != nil {
		return nil, err
	}
	src.promoted = true
	r.count("repl_promotions_total")
	return src.st.Live(), nil
}

// Close closes every replica store.
func (r *Receiver) Close() {
	r.mu.Lock()
	r.closed = true
	srcs := make([]*source, 0, len(r.sources))
	for _, src := range r.sources {
		srcs = append(srcs, src)
	}
	r.mu.Unlock()
	for _, src := range srcs {
		src.mu.Lock()
		if src.st != nil {
			_ = src.st.Close()
			src.st = nil
		}
		src.mu.Unlock()
	}
}

func (r *Receiver) count(name string, labels ...string) {
	if r.cfg.Obs != nil {
		r.cfg.Obs.Counter(name, labels...).Inc()
	}
}
