package replica

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"sync"
	"testing"

	"datagridflow/internal/obs"
	"datagridflow/internal/sim"
	"datagridflow/internal/store"
)

// chaosSeed returns the fault-plan seed for this run: DGF_CHAOS_SEED
// when set (the replication-chaos CI lane pins it per run so every run
// explores a new deterministic schedule), a fixed default otherwise.
// The seed is logged so any failure reproduces with
// DGF_CHAOS_SEED=<seed> go test ./internal/replica.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(1)
	if env := os.Getenv("DGF_CHAOS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("DGF_CHAOS_SEED %q: %v", env, err)
		}
		seed = v
	}
	t.Logf("chaos seed %d", seed)
	return seed
}

// TestTornTailPromotion crashes a follower mid-write: the replica
// store's last segment is truncated mid-record, as an OS crash under
// RelaxedSync can leave it. Promotion opens the replica through the
// store's replay, which repairs the torn tail — the follower promotes
// from its last intact record instead of failing.
func TestTornTailPromotion(t *testing.T) {
	dir := t.TempDir()
	recv, err := NewReceiver(ReceiverConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if ack := recv.Apply(Frame{Op: OpAppend, Source: "own", Seq: 1, Count: 3,
		Block: mustBlock(t, false, snapRec("f1"), snapRec("f2"), endRec("f1"))}); !ack.OK {
		t.Fatalf("seed: %+v", ack)
	}
	recv.Close()

	// Tear the tail: cut the final record (end f1) in half.
	seg := filepath.Join(dir, "own", "seg-00000001.log")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	tail := len(data)
	// Position of the last record's start: the byte after the
	// second-to-last newline.
	newlines := 0
	for i := len(data) - 2; i >= 0; i-- { // -2 skips the final terminator
		if data[i] == '\n' {
			newlines++
			tail = i + 1
			break
		}
	}
	if newlines == 0 {
		t.Fatal("segment has fewer records than expected")
	}
	torn := data[:tail+(len(data)-tail)/2] // half of the last record
	if err := os.WriteFile(seg, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	again, err := NewReceiver(ReceiverConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(again.Close)
	ids := liveIDs(t, again, "own")
	// end(f1) was torn away, so the repaired replica sees f1 and f2
	// both live — exactly the state as of the last intact record.
	if !reflect.DeepEqual(ids, []string{"f1", "f2"}) {
		t.Fatalf("live after torn-tail promotion: %v", ids)
	}
}

// chaosNet wraps a Receiver with a fault plan: deliveries fail while
// the plan says the link is down. Swapping the receiver models a
// follower crash-restart (cursor state lost, disk kept or lost).
type chaosNet struct {
	mu   sync.Mutex
	recv *Receiver
	down bool
	// snapCrash, when armed, fails the next snapshot delivery AFTER the
	// receiver applied it — the owner crashing mid-snapshot-ship: the
	// ack is lost in flight and the owner never records the ship.
	snapCrash bool
}

func (n *chaosNet) send(peer string, f Frame) (Ack, error) {
	n.mu.Lock()
	recv, down := n.recv, n.down
	crash := n.snapCrash && f.Op == OpSnapshot
	if crash {
		n.snapCrash = false
	}
	n.mu.Unlock()
	if down {
		return Ack{}, errors.New("chaos: partitioned")
	}
	ack := recv.Apply(f)
	if crash {
		return Ack{}, errors.New("chaos: owner crashed mid-snapshot-ship")
	}
	return ack, nil
}

func (n *chaosNet) set(recv *Receiver, down bool) {
	n.mu.Lock()
	n.recv = recv
	n.down = down
	n.mu.Unlock()
}

// chaosOwner drives a sender with a live flow population, tracking
// which flows a completed quorum wait has durably promised. The mutex
// mirrors the store's own locking: snapshot() runs on the sender's
// outbox goroutine while step() runs on the test's.
type chaosOwner struct {
	s    *Sender
	mu   sync.Mutex
	seq  uint64
	live map[string]bool
}

func (o *chaosOwner) step(recs ...store.Record) func() {
	o.mu.Lock()
	batch := make([]store.TapRecord, len(recs))
	for i, r := range recs {
		o.seq++
		batch[i] = store.TapRecord{Seq: o.seq, Rec: r}
		switch r.Type {
		case store.TypeExecSnap:
			o.live[r.ID] = true
		case store.TypeExecEnd:
			delete(o.live, r.ID)
		}
	}
	o.mu.Unlock()
	return o.s.Replicate(batch)
}

func (o *chaosOwner) snapshot() (Frame, error) {
	o.mu.Lock()
	ids := make([]string, 0, len(o.live))
	for id := range o.live {
		ids = append(ids, id)
	}
	seq := o.seq
	o.mu.Unlock()
	sort.Strings(ids)
	recs := make([]store.Record, len(ids))
	for i, id := range ids {
		recs[i] = snapRec(id)
	}
	block, err := EncodeBlock(recs, false)
	if err != nil {
		return Frame{}, err
	}
	return Frame{Seq: seq, Count: len(recs), Block: block}, nil
}

// runChaos drives flows through a faulty link per the seeded plan,
// then heals the link, quiesces, and checks convergence: the follower
// holds exactly the owner's live set at the owner's cursor.
func runChaos(t *testing.T, seed int64, plan func(r *sim.Rand, net *chaosNet, round int)) {
	t.Helper()
	r := sim.NewRand(seed)
	reg := obs.NewRegistry()
	net := &chaosNet{}
	recv, err := NewReceiver(ReceiverConfig{Dir: t.TempDir(), Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { net.recv.Close() })
	net.set(recv, false)

	own := &chaosOwner{live: map[string]bool{}}
	own.s = NewSender(SenderConfig{
		Source:   "own",
		Mode:     ModeQuorum,
		Send:     net.send,
		Snapshot: own.snapshot,
		Obs:      reg,
	})
	t.Cleanup(own.s.Close)
	own.s.SetFollowers([]string{"f1"})

	const rounds = 40
	for round := 0; round < rounds; round++ {
		plan(r, net, round)
		id := fmt.Sprintf("flow%d", round)
		own.step(snapRec(id)) // start: no commit point, streams
		if r.Intn(2) == 0 {   // half the flows finish
			if wait := own.step(endRec(id)); wait != nil {
				wait()
			}
		}
	}

	// Heal and quiesce: one final commit point must converge the
	// follower (healing by snapshot if the fault window left a gap).
	net.mu.Lock()
	net.down = false
	net.snapCrash = false
	net.mu.Unlock()
	if fin := own.step(snapRec("final"), endRec("final")); fin != nil {
		fin()
	}
	own.mu.Lock()
	seq := own.seq
	want := make([]string, 0, len(own.live))
	for id := range own.live {
		want = append(want, id)
	}
	own.mu.Unlock()
	sort.Strings(want)
	waitAcked(t, own.s, "f1", seq)
	got := liveIDs(t, net.recv, "own")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("diverged after chaos:\n follower %v\n owner    %v", got, want)
	}
	t.Logf("converged: %d live flows, seq %d, snapshots %d, drops %d, send errors %d",
		len(want), own.seq,
		reg.Counter("repl_snapshots_shipped_total").Value(),
		reg.Counter("repl_frames_dropped_total", "peer", "f1").Value(),
		reg.Counter("repl_send_errors_total", "peer", "f1").Value())
}

// TestChaosPartition flaps the owner→follower link at seeded rounds.
// Frames sent into the partition fail; on heal the follower's gap
// forces a snapshot re-sync, and the final state must converge.
func TestChaosPartition(t *testing.T) {
	runChaos(t, chaosSeed(t), func(r *sim.Rand, net *chaosNet, round int) {
		if r.Intn(4) == 0 { // flip link state roughly every 4 rounds
			net.mu.Lock()
			net.down = !net.down
			net.mu.Unlock()
		}
	})
}

// TestChaosFollowerCrashMidCatchup crash-restarts the follower at
// seeded rounds — sometimes mid-catch-up, with its disk wiped, so the
// restarted receiver re-syncs from nothing by snapshot.
func TestChaosFollowerCrashMidCatchup(t *testing.T) {
	dir := t.TempDir()
	n := 0
	runChaos(t, chaosSeed(t)+1, func(r *sim.Rand, net *chaosNet, round int) {
		if r.Intn(8) != 0 {
			return
		}
		n++
		net.mu.Lock()
		old := net.recv
		net.mu.Unlock()
		old.Close()
		recv, err := NewReceiver(ReceiverConfig{Dir: filepath.Join(dir, fmt.Sprintf("boot%d", n))})
		if err != nil {
			t.Fatal(err)
		}
		net.set(recv, false)
	})
}

// TestChaosOwnerCrashMidSnapshotShip arms the snapshot-crash fault at
// seeded rounds: the follower applies the snapshot but the owner never
// sees the ack (it "crashed" mid-ship). The sender retries from
// scratch — re-applied snapshots and replayed frames must stay
// idempotent and still converge.
func TestChaosOwnerCrashMidSnapshotShip(t *testing.T) {
	runChaos(t, chaosSeed(t)+2, func(r *sim.Rand, net *chaosNet, round int) {
		net.mu.Lock()
		// Blink the link for single rounds so the follower keeps
		// accruing gaps — every heal needs a snapshot, and the armed
		// fault crashes the owner mid-ship on a seeded subset of them.
		net.down = r.Intn(3) == 0
		if r.Intn(2) == 0 {
			net.snapCrash = true
		}
		net.mu.Unlock()
	})
}
