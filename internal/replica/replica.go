// Package replica streams a store's lifecycle record log to follower
// peers and rebuilds it there, so a shard owner's flows survive the
// owner's disk (docs/REPLICATION.md).
//
// The package is transport-agnostic: a Sender turns the store's
// replication tap (store.SetTap) into ordered Frames and hands them to
// a Send callback; a Receiver applies Frames into per-source replica
// stores and answers with Acks. The wire layer (internal/wire) carries
// Frames as kind-6 replicate frames and provides the callbacks; tests
// connect Sender to Receiver directly.
//
// Frames travel in the owner's encoding (JSONL or binary frames — the
// same block bytes the owner's segment writer produces); the receiver
// sniffs each block's first byte and re-appends through its own store,
// so a JSON owner can replicate to a binary follower and vice versa.
package replica

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"datagridflow/internal/codec"
	"datagridflow/internal/store"
)

// Frame ops.
const (
	// OpAppend carries Count records starting at sequence Seq.
	OpAppend = "append"
	// OpSnapshot carries a full live-state snapshot current through
	// sequence Seq; the receiver discards its replica of Source and
	// rebuilds it from the block.
	OpSnapshot = "snapshot"
)

// Frame is one replicate message: a block of lifecycle records (or a
// snapshot) from Source's store, positioned by sequence number.
type Frame struct {
	Op     string `json:"op"`
	Source string `json:"source"`
	// Seq is the sequence number of the first record in an append
	// block, or the sequence the snapshot is current through.
	Seq   uint64 `json:"seq"`
	Count int    `json:"count"`
	// Block holds the records in the sender's store encoding — JSONL
	// or binary frames, sniffed by the receiver per block.
	Block []byte `json:"block,omitempty"`
	// Chain lists downstream followers (chain ack mode): the receiver
	// forwards the frame to Chain[0] with Chain[1:] before acking.
	Chain []string `json:"chain,omitempty"`
}

// Ack is the receiver's reply to one Frame.
type Ack struct {
	OK bool `json:"ok"`
	// AckSeq is the highest contiguous sequence the receiver holds for
	// the frame's source after applying it.
	AckSeq uint64 `json:"ackSeq"`
	// NeedSnapshot reports a sequence gap: the receiver is missing
	// records below Frame.Seq and needs a snapshot to catch up.
	NeedSnapshot bool   `json:"needSnapshot,omitempty"`
	Error        string `json:"error,omitempty"`
}

// AckMode selects how many follower acknowledgements an owner append
// waits for (docs/REPLICATION.md, "Ack modes").
type AckMode string

// Ack modes.
const (
	// ModeAsync replicates in the background; Append never waits.
	ModeAsync AckMode = "async"
	// ModeQuorum waits for a majority of the follower set.
	ModeQuorum AckMode = "quorum"
	// ModeChain sends to the first follower only, which forwards down
	// the chain; Append waits for the head's ack.
	ModeChain AckMode = "chain"
)

// ParseAckMode validates a -repl-ack flag value.
func ParseAckMode(s string) (AckMode, error) {
	switch AckMode(s) {
	case ModeAsync, ModeQuorum, ModeChain:
		return AckMode(s), nil
	}
	return "", fmt.Errorf("replica: unknown ack mode %q (want quorum, chain or async)", s)
}

// EncodeBlock serializes records the way the owner's segment writer
// would — newline-terminated JSON or binary record frames — so the
// receiver's per-block sniffing sees exactly the segment formats it
// already knows.
func EncodeBlock(recs []store.Record, binary bool) ([]byte, error) {
	if binary {
		enc := codec.GetEncoder()
		defer codec.PutEncoder(enc)
		for i := range recs {
			codec.AppendRecordFrame(enc, &recs[i])
		}
		return append([]byte(nil), enc.Bytes()...), nil
	}
	var block []byte
	for i := range recs {
		data, err := json.Marshal(recs[i])
		if err != nil {
			return nil, err
		}
		block = append(block, data...)
		block = append(block, '\n')
	}
	return block, nil
}

// DecodeBlock sniffs a block's encoding from its first byte and decodes
// its records. Unlike segment replay there is no crash-torn tail to
// forgive: a truncated frame or unterminated line means the block was
// damaged in transit and is an error.
func DecodeBlock(block []byte) ([]store.Record, error) {
	if len(block) == 0 {
		return nil, nil
	}
	if block[0] == codec.Magic {
		sc := codec.NewFrameScanner(bytes.NewReader(block))
		var recs []store.Record
		for {
			_, payload, err := sc.Next()
			if err == io.EOF {
				return recs, nil
			}
			if err != nil {
				return nil, fmt.Errorf("replica: block frame %d: %w", len(recs)+1, err)
			}
			rec, err := codec.DecodeRecord(payload)
			if err != nil {
				return nil, fmt.Errorf("replica: block frame %d: %w", len(recs)+1, err)
			}
			recs = append(recs, rec)
		}
	}
	var recs []store.Record
	for n, line := range strings.Split(string(block), "\n") {
		if line == "" {
			continue
		}
		var rec store.Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("replica: block line %d: %w", n+1, err)
		}
		recs = append(recs, rec)
	}
	if !bytes.HasSuffix(block, []byte("\n")) {
		return nil, fmt.Errorf("replica: block has unterminated final line")
	}
	return recs, nil
}

// SelectFollowers picks n followers for self from the live member set:
// the ring successors of self in sorted name order, wrapping, never
// self. Deterministic in the member set, so every peer computes the
// same placement from the same gossip — and because successors differ
// per peer, a follower is always anti-affine to the owner it backs.
func SelectFollowers(self string, members []string, n int) []string {
	if n <= 0 {
		return nil
	}
	uniq := make(map[string]bool, len(members))
	var sorted []string
	for _, m := range members {
		if m == "" || m == self || uniq[m] {
			continue
		}
		uniq[m] = true
		sorted = append(sorted, m)
	}
	sort.Strings(sorted)
	if len(sorted) == 0 {
		return nil
	}
	// Position self in the sorted ring (it may not be present; its
	// insertion point serves the same purpose) and take successors.
	at := sort.SearchStrings(sorted, self)
	if n > len(sorted) {
		n = len(sorted)
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, sorted[(at+i)%len(sorted)])
	}
	return out
}
