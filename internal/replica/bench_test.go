package replica

import (
	"fmt"
	"testing"

	"datagridflow/internal/store"
)

// BenchmarkApplyAppend times the receiver's ack path: decode one block
// and fold it into the replica store. This is the follower-side half of
// every quorum round trip.
func BenchmarkApplyAppend(b *testing.B) {
	recv, err := NewReceiver(ReceiverConfig{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer recv.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := store.Record{Type: store.TypeExecSnap, ID: fmt.Sprintf("x%d", i)}
		block, err := EncodeBlock([]store.Record{rec}, false)
		if err != nil {
			b.Fatal(err)
		}
		ack := recv.Apply(Frame{Op: OpAppend, Source: "src", Seq: uint64(i + 1), Count: 1, Block: block})
		if !ack.OK {
			b.Fatalf("ack: %+v", ack)
		}
	}
}

// BenchmarkSenderLoopback times the sender machinery end to end with a
// zero-cost transport: outbox hand-off, coalescing, ack fan-in. The
// delta against the full wire round trip (BenchmarkReplicateRoundTrip
// in internal/wire) is the transport's share.
func BenchmarkSenderLoopback(b *testing.B) {
	s := NewSender(SenderConfig{
		Source: "src",
		Mode:   ModeQuorum,
		Send: func(peer string, f Frame) (Ack, error) {
			return Ack{OK: true, AckSeq: f.Seq + uint64(f.Count) - 1}, nil
		},
	})
	defer s.Close()
	s.SetFollowers([]string{"f1"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := store.TapRecord{Seq: uint64(i + 1), Rec: store.Record{Type: store.TypeExecSnap, ID: "x"}}
		if wait := s.Replicate([]store.TapRecord{rec}); wait != nil {
			wait()
		}
	}
}
