package tenant

import (
	"errors"
	"strings"
	"testing"
	"time"

	"datagridflow/internal/dgferr"
)

func newTestAuthority(t *testing.T) *Authority {
	t.Helper()
	a, err := NewAuthority([]byte("test-secret"))
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	return a
}

func TestMintVerifyRoundTrip(t *testing.T) {
	a := newTestAuthority(t)
	for _, name := range []string{"alice", "a.b.c", "vo/ligo", "anon", "üñîçødé"} {
		tok, err := a.Mint(name, time.Minute)
		if err != nil {
			t.Fatalf("Mint(%q): %v", name, err)
		}
		got, err := a.Verify(tok)
		if err != nil {
			t.Fatalf("Verify(%q token): %v", name, err)
		}
		if got != name {
			t.Fatalf("Verify = %q, want %q", got, name)
		}
	}
}

func TestAuthorityRejectsEmpty(t *testing.T) {
	if _, err := NewAuthority(nil); !errors.Is(err, dgferr.ErrInvalid) {
		t.Fatalf("empty secret: got %v, want ErrInvalid", err)
	}
	a := newTestAuthority(t)
	if _, err := a.Mint("", time.Minute); !errors.Is(err, dgferr.ErrInvalid) {
		t.Fatalf("empty tenant: got %v, want ErrInvalid", err)
	}
}

func TestVerifyRejectsForgery(t *testing.T) {
	a := newTestAuthority(t)
	b, err := NewAuthority([]byte("other-secret"))
	if err != nil {
		t.Fatal(err)
	}
	tok, err := a.Mint("alice", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"wrong key":       tok, // verified against b below
		"garbage":         "not-a-token",
		"empty":           "",
		"bad prefix":      "dgt9" + tok[4:],
		"truncated":       tok[:len(tok)-5],
		"extra field":     tok + ".x",
		"tampered tenant": swapField(tok, 1, "Ym9i"), // b64("bob")
		"tampered expiry": swapField(tok, 2, "9999999999"),
		"tampered sig":    swapField(tok, 3, strings.Repeat("A", 43)),
		"bad b64 tenant":  swapField(tok, 1, "!!!"),
	}
	for name, bad := range cases {
		auth := a
		if name == "wrong key" {
			auth = b
		}
		got, err := auth.Verify(bad)
		if !errors.Is(err, ErrToken) || !errors.Is(err, dgferr.ErrAuth) {
			t.Errorf("%s: Verify = (%q, %v), want ErrToken/ErrAuth", name, got, err)
		}
	}
}

// swapField replaces dot-separated field i of a token.
func swapField(tok string, i int, v string) string {
	parts := strings.Split(tok, ".")
	parts[i] = v
	return strings.Join(parts, ".")
}

func TestTokenExpiryAndClockSkew(t *testing.T) {
	a := newTestAuthority(t)
	base := time.Unix(1_700_000_000, 0)
	now := base
	a.SetClock(func() time.Time { return now })
	a.SetSkew(30 * time.Second)

	tok, err := a.Mint("alice", time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	// Fresh: valid.
	if _, err := a.Verify(tok); err != nil {
		t.Fatalf("fresh token: %v", err)
	}
	// Just past expiry but inside the skew window: still valid — a
	// verifier whose clock runs ahead must not reject live tokens.
	now = base.Add(time.Minute + 29*time.Second)
	if _, err := a.Verify(tok); err != nil {
		t.Fatalf("inside skew window: %v", err)
	}
	// Past expiry + skew: expired, typed.
	now = base.Add(time.Minute + 31*time.Second)
	if _, err := a.Verify(tok); !errors.Is(err, ErrExpired) {
		t.Fatalf("past skew: got %v, want ErrExpired", err)
	}
	if _, err := a.Verify(tok); !errors.Is(err, dgferr.ErrAuth) {
		t.Fatal("expired token must carry the auth class")
	}
	// A verifier whose clock runs *behind* the minter accepts tokens
	// that look future-dated — skew is symmetric by construction since
	// only the expiry instant is checked.
	now = base.Add(-10 * time.Minute)
	if _, err := a.Verify(tok); err != nil {
		t.Fatalf("verifier behind minter: %v", err)
	}
}

func TestSetSkewClampsNegative(t *testing.T) {
	a := newTestAuthority(t)
	base := time.Unix(1_700_000_000, 0)
	now := base
	a.SetClock(func() time.Time { return now })
	a.SetSkew(-time.Hour)
	tok, err := a.Mint("alice", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	now = base.Add(59 * time.Second)
	if _, err := a.Verify(tok); err != nil {
		t.Fatalf("negative skew must clamp to zero, not reject live tokens: %v", err)
	}
	now = base.Add(61 * time.Second)
	if _, err := a.Verify(tok); !errors.Is(err, ErrExpired) {
		t.Fatalf("zero skew past expiry: got %v, want ErrExpired", err)
	}
}

func TestMintDefaultTTL(t *testing.T) {
	a := newTestAuthority(t)
	base := time.Unix(1_700_000_000, 0)
	now := base
	a.SetClock(func() time.Time { return now })
	tok, err := a.Mint("alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	now = base.Add(59 * time.Minute)
	if _, err := a.Verify(tok); err != nil {
		t.Fatalf("default TTL should be an hour: %v", err)
	}
}

func TestVerifyConcurrent(t *testing.T) {
	// Verification is lock-free over immutable state; exercised under
	// -race to prove it.
	a := newTestAuthority(t)
	tok, err := a.Mint("alice", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 200; j++ {
				if _, err := a.Verify(tok); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
