package tenant

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/obs"
)

// Config is the JSON document matrixd's -tenant-conf flag loads:
//
//	{
//	  "require": false,
//	  "defaults": {"weight": 1, "max_flows": 256, "submit_rate": 100},
//	  "tenants":  {"alice": {"weight": 10}, "batch": {"submit_rate": 5}}
//	}
//
// Every Quota field is optional; zero means unlimited (Quota docs).
type Config struct {
	// Require rejects untokened submissions instead of admitting them
	// under the anonymous tenant.
	Require bool `json:"require,omitempty"`
	// Defaults is the quota unregistered tenants fall back to.
	Defaults Quota `json:"defaults,omitempty"`
	// Tenants pins per-tenant quota overrides.
	Tenants map[string]Quota `json:"tenants,omitempty"`
}

// LoadConfig reads and validates a Config document from path.
func LoadConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant config: %w", err)
	}
	var c Config
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("%w: tenant config %s: %v", dgferr.ErrInvalid, path, err)
	}
	for name, q := range c.Tenants {
		if name == "" {
			return nil, fmt.Errorf("%w: tenant config %s: empty tenant name (use %q for the anonymous tenant)", dgferr.ErrInvalid, path, Anon)
		}
		if q.Weight < 0 || q.SubmitRate < 0 || q.MaxFlows < 0 ||
			q.MaxStoreBytes < 0 || q.MaxDelegations < 0 || q.SubmitBurst < 0 {
			return nil, fmt.Errorf("%w: tenant config %s: negative bound for tenant %q", dgferr.ErrInvalid, path, name)
		}
	}
	return &c, nil
}

// Build constructs a Registry from the config: defaults applied, every
// configured tenant registered.
func (c *Config) Build(reg *obs.Registry) *Registry {
	r := NewRegistry(c.Defaults, reg)
	for name, q := range c.Tenants {
		r.Register(name, q)
	}
	return r
}

// LoadSecret reads an HMAC secret from a key file (matrixd's
// -tenant-auth flag): the file's contents, trailing whitespace
// stripped, become the authority key.
func LoadSecret(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant secret: %w", err)
	}
	secret := []byte(strings.TrimRight(string(data), "\r\n\t "))
	if len(secret) == 0 {
		return nil, fmt.Errorf("%w: tenant secret %s is empty", dgferr.ErrInvalid, path)
	}
	return secret, nil
}
