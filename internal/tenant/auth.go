// Package tenant is the multi-tenant control plane of the datagridflow
// reproduction. The paper's DfMS is explicitly a shared facility — "a
// broker managing concurrent long-run processes on behalf of many
// users" (§3.1) — and the dataflowgrid requirements target 10k+
// parallel users with GridAuthX-style token exchange. This package
// supplies the two halves of that plane:
//
//   - Authority: mints and verifies HMAC-signed bearer tokens that bind
//     a wire connection (and every submit/route/delegate frame on it)
//     to an authenticated tenant identity (auth.go);
//   - Registry: tracks per-tenant quotas — flows in flight, store
//     bytes, delegation slots, submit rate — and the scheduling weight
//     the admission scheduler's deficit round-robin consumes
//     (registry.go).
//
// The wire layer threads both through the server (docs/TENANCY.md);
// matrixd wires them from -tenant-auth / -tenant-conf flags.
package tenant

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base64"
	"fmt"
	"strconv"
	"strings"
	"time"

	"datagridflow/internal/dgferr"
)

// Token format (docs/TENANCY.md):
//
//	dgt1.<b64url(tenant)>.<expiry-unix>.<b64url(HMAC-SHA256(secret, "dgt1.<b64url(tenant)>.<expiry-unix>"))>
//
// The tenant name is base64url-encoded so names containing '.' cannot
// forge extra fields; the signature covers the literal prefix string,
// so neither field can be swapped without re-signing. "dgt1" versions
// the scheme: a future algorithm change mints dgt2 tokens and verifies
// both during a rollover window.
const tokenPrefix = "dgt1"

// Typed sentinels for the two ways verification fails. Both belong to
// the auth class so they survive the wire (errors.Is against
// dgferr.ErrAuth holds on the client side).
var (
	// ErrToken: malformed or forged token (bad format, bad signature).
	ErrToken = dgferr.Mark(dgferr.ErrAuth, "tenant: invalid token")
	// ErrExpired: well-formed and correctly signed, but past its expiry
	// beyond the authority's clock-skew allowance.
	ErrExpired = dgferr.Mark(dgferr.ErrAuth, "tenant: token expired")
)

// DefaultSkew is the clock-skew allowance applied to token expiry when
// the authority is not configured otherwise: a token is accepted until
// expiry+skew, absorbing modest clock drift between minting and
// verifying hosts.
const DefaultSkew = 30 * time.Second

// Authority mints and verifies bearer tokens for tenant identities. It
// is keyed off a shared secret (every peer in a deployment loads the
// same key file, so any peer can verify any peer's tokens — federated
// hops re-verify rather than re-mint). All methods are safe for
// concurrent use after construction; SetClock/SetSkew are
// construction-time knobs only.
type Authority struct {
	secret []byte
	skew   time.Duration
	now    func() time.Time
}

// NewAuthority builds an authority around a shared HMAC secret. The
// secret must be non-empty; the zero-length key would make every
// signature forgeable by construction.
func NewAuthority(secret []byte) (*Authority, error) {
	if len(secret) == 0 {
		return nil, fmt.Errorf("%w: empty authority secret", dgferr.ErrInvalid)
	}
	k := make([]byte, len(secret))
	copy(k, secret)
	return &Authority{secret: k, skew: DefaultSkew, now: time.Now}, nil
}

// SetSkew overrides the clock-skew allowance (construction time only).
// d < 0 is clamped to zero.
func (a *Authority) SetSkew(d time.Duration) {
	if d < 0 {
		d = 0
	}
	a.skew = d
}

// SetClock overrides the time source (construction time only; tests).
func (a *Authority) SetClock(now func() time.Time) {
	if now != nil {
		a.now = now
	}
}

// Mint issues a token asserting the tenant identity until now+ttl.
// ttl <= 0 defaults to one hour.
func (a *Authority) Mint(tenant string, ttl time.Duration) (string, error) {
	if tenant == "" {
		return "", fmt.Errorf("%w: empty tenant name", dgferr.ErrInvalid)
	}
	if ttl <= 0 {
		ttl = time.Hour
	}
	exp := a.now().Add(ttl).Unix()
	body := tokenPrefix + "." +
		base64.RawURLEncoding.EncodeToString([]byte(tenant)) + "." +
		strconv.FormatInt(exp, 10)
	return body + "." + a.sign(body), nil
}

// Verify checks a token's format, signature and expiry, returning the
// asserted tenant name. Signature is checked before expiry so a forged
// token never learns whether its expiry guess was plausible.
func (a *Authority) Verify(token string) (string, error) {
	parts := strings.Split(token, ".")
	if len(parts) != 4 || parts[0] != tokenPrefix {
		return "", ErrToken
	}
	body := parts[0] + "." + parts[1] + "." + parts[2]
	if !hmac.Equal([]byte(a.sign(body)), []byte(parts[3])) {
		return "", ErrToken
	}
	name, err := base64.RawURLEncoding.DecodeString(parts[1])
	if err != nil || len(name) == 0 {
		return "", ErrToken
	}
	exp, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return "", ErrToken
	}
	if a.now().After(time.Unix(exp, 0).Add(a.skew)) {
		return "", ErrExpired
	}
	return string(name), nil
}

// sign returns the base64url HMAC-SHA256 of body under the secret.
func (a *Authority) sign(body string) string {
	m := hmac.New(sha256.New, a.secret)
	m.Write([]byte(body))
	return base64.RawURLEncoding.EncodeToString(m.Sum(nil))
}
