package tenant

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/obs"
)

func TestCanonical(t *testing.T) {
	if Canonical("") != Anon {
		t.Fatalf("empty identity must map to %q", Anon)
	}
	if Canonical("alice") != "alice" {
		t.Fatal("named identity must pass through")
	}
	if Canonical(Anon) != Anon {
		t.Fatal("the reserved name maps onto itself (documented collision)")
	}
}

func TestRegistryDefaultsAndWeights(t *testing.T) {
	r := NewRegistry(Quota{Weight: 2}, obs.NewRegistry())
	if w := r.Weight("unknown"); w != 2 {
		t.Fatalf("unregistered tenant weight = %v, want default 2", w)
	}
	r.Register("alice", Quota{Weight: 10})
	if w := r.Weight("alice"); w != 10 {
		t.Fatalf("alice weight = %v, want 10", w)
	}
	r.Register("zero", Quota{})
	if w := r.Weight("zero"); w != 1 {
		t.Fatalf("zero weight must normalize to 1, got %v", w)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
}

func TestFlowQuota(t *testing.T) {
	o := obs.NewRegistry()
	r := NewRegistry(Quota{}, o)
	r.Register("alice", Quota{MaxFlows: 2})

	if err := r.BeginFlow("alice"); err != nil {
		t.Fatal(err)
	}
	if err := r.BeginFlow("alice"); err != nil {
		t.Fatal(err)
	}
	err := r.BeginFlow("alice")
	if !errors.Is(err, ErrFlowQuota) || !errors.Is(err, dgferr.ErrQuota) {
		t.Fatalf("over quota: got %v, want ErrFlowQuota/ErrQuota", err)
	}
	if got := o.Gauge("tenant_flows_inflight").Value(); got != 2 {
		t.Fatalf("tenant_flows_inflight = %d, want 2", got)
	}
	if got := o.Counter("tenant_quota_rejections_total", "resource", "flows").Value(); got != 1 {
		t.Fatalf("rejections{flows} = %d, want 1", got)
	}
	r.EndFlow("alice")
	if err := r.BeginFlow("alice"); err != nil {
		t.Fatalf("after EndFlow: %v", err)
	}
	// Unlimited tenants never reject.
	for i := 0; i < 100; i++ {
		if err := r.BeginFlow("bob"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEndFlowFloorsAtZero(t *testing.T) {
	o := obs.NewRegistry()
	r := NewRegistry(Quota{}, o)
	r.EndFlow("ghost") // never began: must not underflow
	if got := o.Gauge("tenant_flows_inflight").Value(); got != 0 {
		t.Fatalf("inflight after spurious EndFlow = %d, want 0", got)
	}
}

func TestStoreQuotaGatesNewFlows(t *testing.T) {
	o := obs.NewRegistry()
	r := NewRegistry(Quota{}, o)
	r.Register("alice", Quota{MaxStoreBytes: 1000})

	if err := r.BeginFlow("alice"); err != nil {
		t.Fatal(err)
	}
	// Charges always land (durability: running flows keep appending)...
	r.ChargeStore("alice", 600)
	r.ChargeStore("alice", 600)
	if got := o.Gauge("tenant_bytes_stored").Value(); got != 1200 {
		t.Fatalf("tenant_bytes_stored = %d, want 1200", got)
	}
	// ...but the next flow admission is refused.
	err := r.BeginFlow("alice")
	if !errors.Is(err, ErrStoreQuota) {
		t.Fatalf("over byte quota: got %v, want ErrStoreQuota", err)
	}
	// Compaction reclaims space and re-opens admission.
	r.ChargeStore("alice", -900)
	if err := r.BeginFlow("alice"); err != nil {
		t.Fatalf("after compaction: %v", err)
	}
	// Reclaim below zero floors at zero.
	r.ChargeStore("alice", -10_000)
	if got := o.Gauge("tenant_bytes_stored").Value(); got != 0 {
		t.Fatalf("floored footprint gauge = %d, want 0", got)
	}
}

func TestDelegationQuota(t *testing.T) {
	r := NewRegistry(Quota{}, obs.NewRegistry())
	r.Register("alice", Quota{MaxDelegations: 1})
	if err := r.AcquireDelegation("alice"); err != nil {
		t.Fatal(err)
	}
	if err := r.AcquireDelegation("alice"); !errors.Is(err, ErrDelegationQuota) {
		t.Fatalf("over slots: got %v, want ErrDelegationQuota", err)
	}
	r.ReleaseDelegation("alice")
	if err := r.AcquireDelegation("alice"); err != nil {
		t.Fatalf("after release: %v", err)
	}
	r.ReleaseDelegation("ghost") // no underflow
}

func TestSubmitRateBucket(t *testing.T) {
	r := NewRegistry(Quota{}, obs.NewRegistry())
	base := time.Unix(1_700_000_000, 0)
	now := base
	r.SetClock(func() time.Time { return now })
	r.Register("alice", Quota{SubmitRate: 10, SubmitBurst: 2})

	// Burst of 2, then empty.
	if err := r.AllowSubmit("alice"); err != nil {
		t.Fatal(err)
	}
	if err := r.AllowSubmit("alice"); err != nil {
		t.Fatal(err)
	}
	if err := r.AllowSubmit("alice"); !errors.Is(err, ErrRate) {
		t.Fatalf("empty bucket: got %v, want ErrRate", err)
	}
	// 100ms at 10/s refills one token.
	now = now.Add(100 * time.Millisecond)
	if err := r.AllowSubmit("alice"); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	if err := r.AllowSubmit("alice"); !errors.Is(err, ErrRate) {
		t.Fatal("refill must not exceed elapsed*rate")
	}
	// A long idle period caps at burst, not unbounded credit.
	now = now.Add(time.Hour)
	if err := r.AllowSubmit("alice"); err != nil {
		t.Fatal(err)
	}
	if err := r.AllowSubmit("alice"); err != nil {
		t.Fatal(err)
	}
	if err := r.AllowSubmit("alice"); !errors.Is(err, ErrRate) {
		t.Fatal("bucket must cap at burst")
	}
	// Zero-rate tenants are unlimited.
	for i := 0; i < 100; i++ {
		if err := r.AllowSubmit("unlimited"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSnapshotOrdersByActivity(t *testing.T) {
	r := NewRegistry(Quota{}, obs.NewRegistry())
	r.Register("idle", Quota{Weight: 3})
	for i := 0; i < 3; i++ {
		mustBegin(t, r, "busy")
	}
	mustBegin(t, r, "light")
	r.ChargeStore("heavy", 512)

	rows := r.Snapshot(0)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	if rows[0].Name != "busy" || rows[0].Flows != 3 {
		t.Fatalf("top row = %+v, want busy/3", rows[0])
	}
	if rows[1].Name != "light" {
		t.Fatalf("second row = %+v, want light", rows[1])
	}
	if rows[2].Name != "heavy" || rows[2].StoreBytes != 512 {
		t.Fatalf("third row = %+v, want heavy/512B", rows[2])
	}
	if rows[3].Name != "idle" || rows[3].Weight != 3 {
		t.Fatalf("idle registered row = %+v, want idle weight 3", rows[3])
	}

	if got := r.Snapshot(2); len(got) != 2 || got[0].Name != "busy" {
		t.Fatalf("limited snapshot = %+v", got)
	}
}

func mustBegin(t *testing.T, r *Registry, name string) {
	t.Helper()
	if err := r.BeginFlow(name); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry(Quota{MaxFlows: 1 << 20}, obs.NewRegistry())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("t%d", g%4)
			for i := 0; i < 200; i++ {
				if err := r.BeginFlow(name); err == nil {
					r.ChargeStore(name, 10)
					r.EndFlow(name)
				}
				_ = r.AllowSubmit(name)
				if err := r.AcquireDelegation(name); err == nil {
					r.ReleaseDelegation(name)
				}
				r.Register(name, Quota{Weight: float64(i%3 + 1)})
				_ = r.Weight(name)
				_ = r.Snapshot(3)
			}
		}(g)
	}
	wg.Wait()
}

func TestHundredKTenantRegistration(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := NewRegistry(Quota{}, obs.NewRegistry())
	for i := 0; i < 100_000; i++ {
		r.Register(fmt.Sprintf("tenant-%06d", i), Quota{Weight: float64(i%10 + 1)})
	}
	if r.Len() != 100_000 {
		t.Fatalf("Len = %d, want 100000", r.Len())
	}
	if w := r.Weight("tenant-000009"); w != 10 {
		t.Fatalf("weight lookup = %v, want 10", w)
	}
	if rows := r.Snapshot(5); len(rows) != 5 {
		t.Fatalf("snapshot of 100k registry = %d rows, want 5", len(rows))
	}
}
