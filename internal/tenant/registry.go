package tenant

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/obs"
)

// Anon is the reserved tenant every anonymous identity maps onto: an
// empty user name, a pre-1.7 peer that cannot send tokens, or an
// unauthenticated connection when the server does not require tokens.
// A grid user literally named "anon" therefore shares this tenant's
// quota and weight — the name is reserved, and the collision is by
// design (docs/TENANCY.md).
const Anon = "anon"

// Canonical maps an identity onto its tenant name: empty becomes the
// reserved Anon tenant, everything else passes through.
func Canonical(name string) string {
	if name == "" {
		return Anon
	}
	return name
}

// Typed quota rejections, one sentinel per resource. All belong to the
// quota class, so clients see errors.Is(err, dgferr.ErrQuota) across
// the wire and retry policies fail fast instead of hammering.
var (
	// ErrFlowQuota: the tenant is at its flows-in-flight bound.
	ErrFlowQuota = dgferr.Mark(dgferr.ErrQuota, "tenant: flows-in-flight quota exceeded")
	// ErrStoreQuota: the tenant's lifecycle-store footprint is at its
	// byte bound; new flows are refused until compaction shrinks it.
	ErrStoreQuota = dgferr.Mark(dgferr.ErrQuota, "tenant: store bytes quota exceeded")
	// ErrDelegationQuota: the tenant holds all its delegation slots.
	ErrDelegationQuota = dgferr.Mark(dgferr.ErrQuota, "tenant: delegation slots exhausted")
	// ErrRate: the tenant's submit token bucket is empty.
	ErrRate = dgferr.Mark(dgferr.ErrQuota, "tenant: submit rate exceeded")
)

// Quota is one tenant's resource bounds and scheduling weight. The zero
// value of any field means "unlimited" (weight: default 1), so the zero
// Quota is a fully open tenant — quotas are opt-in per deployment.
type Quota struct {
	// Weight is the tenant's share in the admission scheduler's
	// weighted deficit round-robin. <= 0 defaults to 1.
	Weight float64 `json:"weight,omitempty"`
	// MaxFlows bounds concurrently in-flight (non-terminal) flows.
	MaxFlows int `json:"max_flows,omitempty"`
	// MaxStoreBytes bounds the tenant's lifecycle-store footprint.
	// Checked at flow admission: records of already-admitted flows are
	// never dropped (durability outranks the quota; docs/TENANCY.md).
	MaxStoreBytes int64 `json:"max_store_bytes,omitempty"`
	// MaxDelegations bounds concurrently delegated subflows.
	MaxDelegations int `json:"max_delegations,omitempty"`
	// SubmitRate bounds flow submissions per second (token bucket).
	SubmitRate float64 `json:"submit_rate,omitempty"`
	// SubmitBurst is the bucket depth; <= 0 defaults to
	// max(1, SubmitRate) so a fresh tenant can always burst one second
	// of its steady rate.
	SubmitBurst int `json:"submit_burst,omitempty"`
}

// weight returns the normalized scheduling weight.
func (q Quota) weight() float64 {
	if q.Weight <= 0 {
		return 1
	}
	return q.Weight
}

// burst returns the normalized token-bucket depth.
func (q Quota) burst() float64 {
	if q.SubmitBurst > 0 {
		return float64(q.SubmitBurst)
	}
	if q.SubmitRate > 1 {
		return q.SubmitRate
	}
	return 1
}

// usage is one tenant's live consumption. Guarded by its own mutex so
// 100k tenants do not serialize on a registry-wide lock; the registry's
// RWMutex only guards the maps.
type usage struct {
	mu          sync.Mutex
	flows       int
	delegations int
	storeBytes  int64
	tokens      float64 // submit token bucket level
	last        time.Time
	primed      bool // bucket initialized to burst on first use
}

// Info is one tenant's row in the `tenants` control verb reply and the
// dgfctl tenants table.
type Info struct {
	Name        string  `json:"name"`
	Weight      float64 `json:"weight"`
	Flows       int     `json:"flows"`
	StoreBytes  int64   `json:"store_bytes"`
	Delegations int     `json:"delegations"`
}

// Registry tracks registered tenants, their quotas and their live
// usage, and emits the aggregate tenant metrics of docs/METRICS.md.
// Unknown tenants are admitted under the default quota (auto-admission
// keeps pre-tenant deployments working); Register pins a custom quota.
// All methods are safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	defaults Quota
	quotas   map[string]Quota
	usages   map[string]*usage
	now      func() time.Time

	reg        *obs.Registry
	inflight   *obs.Gauge // tenant_flows_inflight
	stored     *obs.Gauge // tenant_bytes_stored
	registered *obs.Gauge // tenant_registered
}

// NewRegistry builds a registry whose unregistered tenants fall back to
// defaults. A nil obs registry falls back to obs.Default().
func NewRegistry(defaults Quota, reg *obs.Registry) *Registry {
	if reg == nil {
		reg = obs.Default()
	}
	return &Registry{
		defaults:   defaults,
		quotas:     make(map[string]Quota),
		usages:     make(map[string]*usage),
		now:        time.Now,
		reg:        reg,
		inflight:   reg.Gauge("tenant_flows_inflight"),
		stored:     reg.Gauge("tenant_bytes_stored"),
		registered: reg.Gauge("tenant_registered"),
	}
}

// SetClock overrides the time source (construction time only; tests).
func (r *Registry) SetClock(now func() time.Time) {
	if now != nil {
		r.now = now
	}
}

// Register pins a custom quota (and weight) for a tenant, replacing any
// previous registration.
func (r *Registry) Register(name string, q Quota) {
	name = Canonical(name)
	r.mu.Lock()
	if _, ok := r.quotas[name]; !ok {
		r.registered.Add(1)
	}
	r.quotas[name] = q
	r.mu.Unlock()
}

// Len returns the number of explicitly registered tenants.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.quotas)
}

// Quota returns the effective quota for a tenant (registered or the
// registry default).
func (r *Registry) Quota(name string) Quota {
	r.mu.RLock()
	q, ok := r.quotas[Canonical(name)]
	r.mu.RUnlock()
	if !ok {
		return r.defaults
	}
	return q
}

// Weight returns the tenant's scheduling weight — the admission
// scheduler's WeightFn (scheduler.Admission.SetWeightFn).
func (r *Registry) Weight(name string) float64 {
	return r.Quota(name).weight()
}

// use returns (creating if needed) the tenant's usage record.
func (r *Registry) use(name string) *usage {
	r.mu.RLock()
	u, ok := r.usages[name]
	r.mu.RUnlock()
	if ok {
		return u
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if u, ok := r.usages[name]; ok {
		return u
	}
	u = &usage{}
	r.usages[name] = u
	return u
}

// reject counts one quota rejection against a resource and returns err.
func (r *Registry) reject(resource string, err error, name string) error {
	r.reg.Counter("tenant_quota_rejections_total", "resource", resource).Inc()
	return fmt.Errorf("%w (tenant %q)", err, name)
}

// AllowSubmit charges one flow submission against the tenant's token
// bucket, rejecting with ErrRate when the bucket is empty. Unlimited
// (zero-rate) quotas always pass.
func (r *Registry) AllowSubmit(name string) error {
	name = Canonical(name)
	q := r.Quota(name)
	if q.SubmitRate <= 0 {
		return nil
	}
	u := r.use(name)
	now := r.now()
	u.mu.Lock()
	defer u.mu.Unlock()
	burst := q.burst()
	if !u.primed {
		u.tokens, u.last, u.primed = burst, now, true
	}
	if el := now.Sub(u.last).Seconds(); el > 0 {
		u.tokens += el * q.SubmitRate
		if u.tokens > burst {
			u.tokens = burst
		}
		u.last = now
	}
	if u.tokens < 1 {
		return r.reject("submit_rate", ErrRate, name)
	}
	u.tokens--
	return nil
}

// BeginFlow admits one flow into flight, enforcing the flows-in-flight
// bound and the store-byte bound (a tenant over its lifecycle-store
// footprint cannot start new flows — the store-append checkpoint is at
// admission so records of running flows are never dropped). Every nil
// return must be paired with exactly one EndFlow.
func (r *Registry) BeginFlow(name string) error {
	name = Canonical(name)
	q := r.Quota(name)
	u := r.use(name)
	u.mu.Lock()
	defer u.mu.Unlock()
	if q.MaxFlows > 0 && u.flows >= q.MaxFlows {
		return r.reject("flows", ErrFlowQuota, name)
	}
	if q.MaxStoreBytes > 0 && u.storeBytes >= q.MaxStoreBytes {
		return r.reject("store_bytes", ErrStoreQuota, name)
	}
	u.flows++
	r.inflight.Add(1)
	return nil
}

// EndFlow returns a flow's in-flight slot (terminal state reached).
func (r *Registry) EndFlow(name string) {
	u := r.use(Canonical(name))
	u.mu.Lock()
	if u.flows > 0 {
		u.flows--
		r.inflight.Add(-1)
	}
	u.mu.Unlock()
}

// ChargeStore accounts n appended lifecycle-store bytes to the tenant.
// Negative n (compaction reclaimed space) shrinks the footprint, floored
// at zero. The charge always succeeds — enforcement happens at the next
// BeginFlow (see MaxStoreBytes).
func (r *Registry) ChargeStore(name string, n int64) {
	if n == 0 {
		return
	}
	u := r.use(Canonical(name))
	u.mu.Lock()
	before := u.storeBytes
	u.storeBytes += n
	if u.storeBytes < 0 {
		u.storeBytes = 0
	}
	r.stored.Add(u.storeBytes - before)
	u.mu.Unlock()
}

// AcquireDelegation claims one delegation slot, rejecting with
// ErrDelegationQuota when the tenant holds all of its slots. Every nil
// return must be paired with exactly one ReleaseDelegation.
func (r *Registry) AcquireDelegation(name string) error {
	name = Canonical(name)
	q := r.Quota(name)
	u := r.use(name)
	u.mu.Lock()
	defer u.mu.Unlock()
	if q.MaxDelegations > 0 && u.delegations >= q.MaxDelegations {
		return r.reject("delegations", ErrDelegationQuota, name)
	}
	u.delegations++
	return nil
}

// ReleaseDelegation returns a delegation slot.
func (r *Registry) ReleaseDelegation(name string) {
	u := r.use(Canonical(name))
	u.mu.Lock()
	if u.delegations > 0 {
		u.delegations--
	}
	u.mu.Unlock()
}

// Snapshot returns up to limit tenant rows ordered by activity (flows
// in flight, then store bytes, then name) — the `tenants` control verb
// reply. limit <= 0 means all active-or-registered tenants; tenants
// with neither usage nor registration never appear.
func (r *Registry) Snapshot(limit int) []Info {
	r.mu.RLock()
	rows := make([]Info, 0, len(r.usages))
	seen := make(map[string]bool, len(r.usages))
	for name, u := range r.usages {
		u.mu.Lock()
		rows = append(rows, Info{
			Name: name, Flows: u.flows, StoreBytes: u.storeBytes,
			Delegations: u.delegations,
		})
		u.mu.Unlock()
		seen[name] = true
	}
	// Registered-but-idle tenants appear only when they fit the limit
	// budget anyway; with 100k registered synthetic tenants the verb
	// must not serialize the world.
	if limit <= 0 || len(rows) < limit {
		for name := range r.quotas {
			if !seen[name] {
				rows = append(rows, Info{Name: name})
				if limit > 0 && len(rows) >= limit {
					break
				}
			}
		}
	}
	r.mu.RUnlock()
	for i := range rows {
		rows[i].Weight = r.Quota(rows[i].Name).weight()
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Flows != rows[j].Flows {
			return rows[i].Flows > rows[j].Flows
		}
		if rows[i].StoreBytes != rows[j].StoreBytes {
			return rows[i].StoreBytes > rows[j].StoreBytes
		}
		return rows[i].Name < rows[j].Name
	})
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	return rows
}
