package tenant

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/obs"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadConfigAndBuild(t *testing.T) {
	p := writeFile(t, "tenants.json", `{
		"require": true,
		"defaults": {"weight": 1, "max_flows": 8},
		"tenants": {
			"alice": {"weight": 10, "submit_rate": 100},
			"batch": {"max_store_bytes": 4096}
		}
	}`)
	c, err := LoadConfig(p)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Require {
		t.Fatal("require not parsed")
	}
	r := c.Build(obs.NewRegistry())
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if w := r.Weight("alice"); w != 10 {
		t.Fatalf("alice weight = %v", w)
	}
	if q := r.Quota("unknown"); q.MaxFlows != 8 {
		t.Fatalf("defaults not applied: %+v", q)
	}
}

func TestLoadConfigRejects(t *testing.T) {
	cases := map[string]string{
		"bad json":      `{`,
		"unknown field": `{"tenant": {}}`,
		"empty name":    `{"tenants": {"": {"weight": 2}}}`,
		"negative":      `{"tenants": {"a": {"max_flows": -1}}}`,
	}
	for name, body := range cases {
		p := writeFile(t, "bad.json", body)
		if _, err := LoadConfig(p); !errors.Is(err, dgferr.ErrInvalid) {
			t.Errorf("%s: got %v, want ErrInvalid", name, err)
		}
	}
	if _, err := LoadConfig(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file must error")
	}
}

func TestLoadSecret(t *testing.T) {
	p := writeFile(t, "key", "s3cret\n")
	got, err := LoadSecret(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "s3cret" {
		t.Fatalf("secret = %q, want trailing newline stripped", got)
	}
	empty := writeFile(t, "empty", "\n\n")
	if _, err := LoadSecret(empty); !errors.Is(err, dgferr.ErrInvalid) {
		t.Fatalf("empty secret: got %v, want ErrInvalid", err)
	}
	if _, err := LoadSecret(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing file must error")
	}
}
