package shard

import (
	"sync"
	"testing"
	"time"
)

func TestLeaseClaimExclusiveWhileLive(t *testing.T) {
	lt := NewLeaseTable(8)
	now := time.Unix(1000, 0)
	ttl := 10 * time.Second

	if h, ok := lt.Claim(3, "siteA", now, ttl); !ok || h != "siteA" {
		t.Fatalf("first claim = %q, %v", h, ok)
	}
	// A live lease refuses other claimants and names the holder.
	if h, ok := lt.Claim(3, "siteB", now.Add(time.Second), ttl); ok || h != "siteA" {
		t.Fatalf("contended claim = %q, %v, want refused by siteA", h, ok)
	}
	// Re-claim by the holder renews.
	if _, ok := lt.Claim(3, "siteA", now.Add(5*time.Second), ttl); !ok {
		t.Fatalf("holder re-claim refused")
	}
	// After expiry anyone can take it.
	if h, ok := lt.Claim(3, "siteB", now.Add(30*time.Second), ttl); !ok || h != "siteB" {
		t.Fatalf("post-expiry claim = %q, %v", h, ok)
	}
}

func TestLeaseClaimRejectsBadInput(t *testing.T) {
	lt := NewLeaseTable(4)
	now := time.Unix(0, 0)
	if _, ok := lt.Claim(-1, "a", now, time.Second); ok {
		t.Errorf("negative shard granted")
	}
	if _, ok := lt.Claim(4, "a", now, time.Second); ok {
		t.Errorf("out-of-range shard granted")
	}
	if _, ok := lt.Claim(0, "", now, time.Second); ok {
		t.Errorf("empty holder granted")
	}
	if lt.Shards() != 4 {
		t.Errorf("Shards() = %d", lt.Shards())
	}
}

func TestLeaseRenewAndOwners(t *testing.T) {
	lt := NewLeaseTable(8)
	now := time.Unix(1000, 0)
	ttl := 10 * time.Second
	lt.Claim(0, "siteA", now, ttl)
	lt.Claim(1, "siteA", now, ttl)
	lt.Claim(2, "siteB", now, ttl)

	// Renew extends every lease the holder has, even after expiry.
	late := now.Add(15 * time.Second)
	if n := lt.Renew("siteA", late, ttl); n != 2 {
		t.Fatalf("Renew = %d leases, want 2", n)
	}
	owners := lt.Owners(late.Add(time.Second))
	if owners[0] != "siteA" || owners[1] != "siteA" {
		t.Errorf("renewed leases not live: %v", owners)
	}
	if _, live := owners[2]; live {
		t.Errorf("siteB's expired lease still shown live: %v", owners)
	}
	// But an expired lease another peer reclaimed is no longer siteA's
	// to renew.
	lt.Claim(0, "siteB", late.Add(20*time.Second), ttl)
	if n := lt.Renew("siteA", late.Add(21*time.Second), ttl); n != 1 {
		t.Errorf("Renew after reclaim = %d, want 1 (shard 1 only)", n)
	}
}

func TestLeaseRelease(t *testing.T) {
	lt := NewLeaseTable(8)
	now := time.Unix(0, 0)
	lt.Claim(0, "siteA", now, time.Minute)
	lt.Claim(1, "siteA", now, time.Minute)
	if lt.Release(0, "siteB") {
		t.Errorf("released another peer's lease")
	}
	if !lt.Release(0, "siteA") {
		t.Errorf("holder release refused")
	}
	if n := lt.ReleaseAll("siteA"); n != 1 {
		t.Errorf("ReleaseAll = %d, want 1", n)
	}
	if got := lt.Owners(now.Add(time.Second)); len(got) != 0 {
		t.Errorf("owners after release = %v", got)
	}
}

// TestLeaseConcurrentExpiryExclusive hammers one expiring shard from
// many claimants concurrently (run under -race): at most one claim per
// round may be granted, and the granted holder must match what
// contenders are refused with.
func TestLeaseConcurrentExpiryExclusive(t *testing.T) {
	lt := NewLeaseTable(1)
	ttl := 10 * time.Second
	base := time.Unix(1000, 0)
	for round := 0; round < 50; round++ {
		// Each round starts past the previous round's expiry, so the
		// shard is up for grabs again.
		now := base.Add(time.Duration(round) * time.Minute)
		var wg sync.WaitGroup
		grants := make(chan string, 8)
		for p := 0; p < 8; p++ {
			holder := string(rune('A' + p))
			wg.Add(1)
			go func() {
				defer wg.Done()
				if h, ok := lt.Claim(0, holder, now, ttl); ok {
					grants <- h
				}
			}()
		}
		wg.Wait()
		close(grants)
		var winners []string
		for h := range grants {
			winners = append(winners, h)
		}
		if len(winners) != 1 {
			t.Fatalf("round %d: %d claims granted (%v), want exactly 1", round, len(winners), winners)
		}
		if h, ok := lt.Claim(0, "intruder", now.Add(time.Second), ttl); ok || h != winners[0] {
			t.Fatalf("round %d: live lease not exclusive (refusal names %q, winner %q)", round, h, winners[0])
		}
	}
}
