package shard

import (
	"sync"
	"time"
)

// LeaseTable is the registry-side half of shard ownership: a map of
// shard → (holder, expiry) with claim/renew/release semantics. The
// lookup server embeds one; peers talk to it over the lookup protocol
// ("claim"/"release" ops, docs/WIRE.md §"Lookup protocol").
//
// A lease is exclusive while live: Claim grants a shard only when it
// is unheld, expired, or already held by the claimant (a re-claim
// renews). Renew extends every lease a holder has — it rides the
// holder's heartbeat. ReleaseAll frees a holder's leases at once —
// the eviction path when a peer dies and its registry entry times
// out, and the clean path on unregister. That tie between the peer
// lease and its shard leases is what makes dead-owner shards
// reclaimable within one TTL with no coordinator.
type LeaseTable struct {
	mu     sync.Mutex
	shards int
	leases map[int]lease
}

// lease is one granted shard lease.
type lease struct {
	holder  string
	expires time.Time
}

// NewLeaseTable sizes a table for shards shards.
func NewLeaseTable(shards int) *LeaseTable {
	return &LeaseTable{shards: shards, leases: make(map[int]lease)}
}

// Shards returns the configured shard count.
func (t *LeaseTable) Shards() int { return t.shards }

// Claim attempts to grant shard to holder for ttl from now. It
// succeeds when the shard is unheld, its lease has expired, or holder
// already holds it (renewal). It returns the resulting holder — the
// claimant on success, the live holder on refusal — and whether the
// claim was granted. Out-of-range shards are refused with an empty
// holder.
func (t *LeaseTable) Claim(shard int, holder string, now time.Time, ttl time.Duration) (string, bool) {
	if shard < 0 || shard >= t.shards || holder == "" {
		return "", false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if cur, ok := t.leases[shard]; ok && cur.holder != holder && cur.expires.After(now) {
		return cur.holder, false
	}
	t.leases[shard] = lease{holder: holder, expires: now.Add(ttl)}
	return holder, true
}

// Renew extends every lease held by holder to now+ttl, returning how
// many it renewed. Expired leases still renew — the holder heartbeat
// arriving a beat late does not silently drop ownership unless
// another peer claimed in between (in which case the lease is no
// longer "held by holder" and is untouched).
func (t *LeaseTable) Renew(holder string, now time.Time, ttl time.Duration) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for s, l := range t.leases {
		if l.holder == holder {
			t.leases[s] = lease{holder: holder, expires: now.Add(ttl)}
			n++
		}
	}
	return n
}

// Release frees shard if holder holds it (live or expired), reporting
// whether a lease was released. Releasing another peer's lease is
// refused — drain is voluntary, not a steal.
func (t *LeaseTable) Release(shard int, holder string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cur, ok := t.leases[shard]; ok && cur.holder == holder {
		delete(t.leases, shard)
		return true
	}
	return false
}

// ReleaseAll frees every lease held by holder, returning the count —
// the eviction and unregister path.
func (t *LeaseTable) ReleaseAll(holder string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for s, l := range t.leases {
		if l.holder == holder {
			delete(t.leases, s)
			n++
		}
	}
	return n
}

// Owners snapshots the live (unexpired) shard → holder map.
func (t *LeaseTable) Owners(now time.Time) map[int]string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int]string, len(t.leases))
	for s, l := range t.leases {
		if l.expires.After(now) {
			out[s] = l.holder
		}
	}
	return out
}
