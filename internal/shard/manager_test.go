package shard

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"datagridflow/internal/obs"
)

func newTestManager(self string, shards int) *Manager {
	return NewManager(Config{Self: self, Shards: shards, Obs: obs.NewRegistry()})
}

func TestManagerDesiredCoversAllShardsAcrossPeers(t *testing.T) {
	const shards = 64
	members := []string{"siteA", "siteB", "siteC"}
	seen := make(map[int]string)
	for _, self := range members {
		m := newTestManager(self, shards)
		for _, s := range m.Desired(members) {
			if prev, dup := seen[s]; dup {
				t.Fatalf("shard %d desired by both %s and %s", s, prev, self)
			}
			seen[s] = self
		}
	}
	if len(seen) != shards {
		t.Fatalf("peers together desire %d/%d shards", len(seen), shards)
	}
}

func TestManagerSetOwnersDerivesOwned(t *testing.T) {
	m := newTestManager("siteA", 8)
	m.SetOwners(map[int]string{0: "siteA", 1: "siteB", 5: "siteA"})
	if got := fmt.Sprint(m.Owned()); got != "[0 5]" {
		t.Errorf("Owned() = %s", got)
	}
	if !m.Owns(5) || m.Owns(1) || m.Owns(7) {
		t.Errorf("Owns wrong: owns5=%v owns1=%v owns7=%v", m.Owns(5), m.Owns(1), m.Owns(7))
	}
	if h, ok := m.OwnerOfShard(1); !ok || h != "siteB" {
		t.Errorf("OwnerOfShard(1) = %q, %v", h, ok)
	}
	key := RoutingKeyFor(m, 5)
	if h, s, ok := m.OwnerOf(key); !ok || h != "siteA" || s != 5 {
		t.Errorf("OwnerOf(%q) = %q, %d, %v", key, h, s, ok)
	}
}

// RoutingKeyFor brute-forces a key that lands on the given shard.
func RoutingKeyFor(m *Manager, shard int) string {
	for i := 0; ; i++ {
		key := fmt.Sprintf("user/flow%d", i)
		if m.ShardOf(key) == shard {
			return key
		}
	}
}

func TestManagerTracking(t *testing.T) {
	m := newTestManager("siteA", 8)
	m.Track("exec1", 3)
	m.Track("exec2", 3)
	m.Track("exec3", 5)
	if s, ok := m.TrackedShard("exec1"); !ok || s != 3 {
		t.Errorf("TrackedShard(exec1) = %d, %v", s, ok)
	}
	if got := fmt.Sprint(m.Tracked(3)); got != "[exec1 exec2]" {
		t.Errorf("Tracked(3) = %s", got)
	}
	m.Untrack("exec2")
	if got := fmt.Sprint(m.Tracked(3)); got != "[exec1]" {
		t.Errorf("Tracked(3) after Untrack = %s", got)
	}
}

// TestManagerRebalanceLifecycle drives two managers through a join:
// siteA alone claims everything, then siteB joins and siteA drains the
// shards the ring hands over, releasing their leases so siteB's next
// claim succeeds.
func TestManagerRebalanceLifecycle(t *testing.T) {
	const shards = 32
	lt := NewLeaseTable(shards)
	now := time.Unix(1000, 0)
	ttl := time.Minute
	registry := func(self string) (func([]int) (map[int]string, error), func([]int) error) {
		claim := func(ss []int) (map[int]string, error) {
			for _, s := range ss {
				lt.Claim(s, self, now, ttl)
			}
			return lt.Owners(now), nil
		}
		release := func(ss []int) error {
			for _, s := range ss {
				lt.Release(s, self)
			}
			return nil
		}
		return claim, release
	}

	resident := map[string]bool{"a:1": true, "a:2": true}
	a := NewManager(Config{
		Self: "siteA", Shards: shards, Obs: obs.NewRegistry(),
		Resident: func(id string) bool { return resident[id] },
	})
	claimA, releaseA := registry("siteA")
	if !a.Rebalance([]string{"siteA"}, claimA, releaseA, nil) {
		t.Fatalf("solo rebalance reported no change")
	}
	if len(a.Owned()) != shards {
		t.Fatalf("solo peer owns %d/%d shards", len(a.Owned()), shards)
	}

	// Track two flows on shards siteA will and will not keep.
	b := newTestManager("siteB", shards)
	desiredB := b.Desired([]string{"siteA", "siteB"})
	if len(desiredB) == 0 {
		t.Fatalf("siteB desires nothing after join")
	}
	keptByA := a.Desired([]string{"siteA", "siteB"})
	a.Track("a:1", desiredB[0])
	a.Track("a:2", keptByA[0])
	a.Track("a:gone", desiredB[0]) // no longer resident: pruned, not drained

	var drained []string
	drain := func(s int, ids []string) { drained = append(drained, ids...) }
	if !a.Rebalance([]string{"siteA", "siteB"}, claimA, releaseA, drain) {
		t.Fatalf("join rebalance reported no change")
	}
	sort.Strings(drained)
	if fmt.Sprint(drained) != "[a:1]" {
		t.Errorf("drained = %v, want [a:1] (resident flow on a handed-over shard)", drained)
	}
	if got := fmt.Sprint(a.Owned()); got != fmt.Sprint(keptByA) {
		t.Errorf("siteA owns %s after join, ring says %v", got, keptByA)
	}

	// siteB's claim now succeeds: siteA released the handed-over leases.
	claimB, releaseB := registry("siteB")
	b.Rebalance([]string{"siteA", "siteB"}, claimB, releaseB, nil)
	if got := fmt.Sprint(b.Owned()); got != fmt.Sprint(desiredB) {
		t.Errorf("siteB owns %s, ring says %v", got, desiredB)
	}
	// Steady state: nothing changes, Rebalance says so.
	if a.Rebalance([]string{"siteA", "siteB"}, claimA, releaseA, drain) {
		t.Errorf("steady-state rebalance reported change")
	}
}

func TestManagerRebalanceRegistryUnreachable(t *testing.T) {
	m := newTestManager("siteA", 8)
	m.SetOwners(map[int]string{2: "siteA", 3: "siteB"})
	failing := func([]int) (map[int]string, error) { return nil, errors.New("down") }
	if m.Rebalance([]string{"siteA"}, failing, nil, nil) {
		t.Errorf("rebalance against a dead registry reported change")
	}
	// The last adopted routing map survives for forwarding.
	if h, ok := m.OwnerOfShard(3); !ok || h != "siteB" {
		t.Errorf("routing map lost on registry outage: %q, %v", h, ok)
	}
}

func TestManagerDefaults(t *testing.T) {
	m := NewManager(Config{Self: "x", Shards: 4})
	if m.Self() != "x" || m.Shards() != 4 {
		t.Errorf("Self/Shards = %q/%d", m.Self(), m.Shards())
	}
	if m.cfg.VNodes != DefaultVNodes || m.cfg.Seed != DefaultSeed || m.cfg.Obs == nil {
		t.Errorf("defaults not applied: %+v", m.cfg)
	}
}
