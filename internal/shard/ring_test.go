package shard

import (
	"fmt"
	"testing"
)

func TestShardOfDeterministicAndInRange(t *testing.T) {
	const shards = 64
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("user%d/flow%d", i%7, i)
		s := ShardOf(key, shards)
		if s < 0 || s >= shards {
			t.Fatalf("ShardOf(%q) = %d out of range", key, s)
		}
		if again := ShardOf(key, shards); again != s {
			t.Fatalf("ShardOf(%q) not deterministic: %d then %d", key, s, again)
		}
	}
	if ShardOf("anything", 0) != 0 {
		t.Errorf("ShardOf with 0 shards should pin to 0")
	}
}

func TestRingIsPureFunctionOfMemberSet(t *testing.T) {
	a := NewRing([]string{"siteA", "siteB", "siteC"}, 0, 0)
	b := NewRing([]string{"siteC", "siteA", "siteB", "siteA", ""}, 0, 0)
	for s := 0; s < 256; s++ {
		oa, oka := a.OwnerOfShard(s)
		ob, okb := b.OwnerOfShard(s)
		if oa != ob || oka != okb {
			t.Fatalf("shard %d: order-dependent placement %q vs %q", s, oa, ob)
		}
	}
	if got := fmt.Sprint(a.Members()); got != "[siteA siteB siteC]" {
		t.Errorf("Members() = %s", got)
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil, 0, 0)
	if _, ok := empty.Owner("k"); ok {
		t.Errorf("empty ring claimed an owner")
	}
	solo := NewRing([]string{"only"}, 0, 0)
	for s := 0; s < 32; s++ {
		if o, ok := solo.OwnerOfShard(s); !ok || o != "only" {
			t.Fatalf("single-member ring: shard %d owned by %q", s, o)
		}
	}
}

func TestRingSeedChangesPlacement(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	base := NewRing(members, 0, DefaultSeed).Assign(256)
	other := NewRing(members, 0, DefaultSeed+1).Assign(256)
	moved := 0
	for s, o := range base {
		if other[s] != o {
			moved++
		}
	}
	if moved == 0 {
		t.Errorf("different seeds produced identical placement")
	}
}

func TestRingDistributionRoughlyEven(t *testing.T) {
	const shards = 1024
	members := []string{"a", "b", "c", "d"}
	counts := make(map[string]int)
	for _, owner := range NewRing(members, 0, 0).Assign(shards) {
		counts[owner]++
	}
	ideal := shards / len(members)
	for m, n := range counts {
		// With 64 vnodes the spread stays well within 2x of even.
		if n < ideal/2 || n > ideal*2 {
			t.Errorf("member %s owns %d shards (ideal %d)", m, n, ideal)
		}
	}
	if len(counts) != len(members) {
		t.Errorf("only %d of %d members own shards", len(counts), len(members))
	}
}

// TestRingMovementBounded is the consistent-hashing contract: adding or
// removing one member of n moves about K/n of the K shards, not a full
// reshuffle (modulo hashing would move ~(n-1)/n of them).
func TestRingMovementBounded(t *testing.T) {
	const shards = 1024
	members := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	before := NewRing(members, 0, 0).Assign(shards)

	join := NewRing(append([]string{"i"}, members...), 0, 0).Assign(shards)
	moved := 0
	for s, o := range before {
		if join[s] != o {
			moved++
		}
	}
	// Ideal movement on join of the 9th member is K/9 ≈ 114. Allow 2.5x
	// slack for vnode variance; the point is it is nowhere near K.
	if max := shards * 5 / 18; moved > max {
		t.Errorf("join moved %d/%d shards, want <= %d (~K/n)", moved, shards, max)
	}
	// Everything that moved must have moved TO the joiner.
	for s, o := range join {
		if before[s] != o && o != "i" {
			t.Errorf("shard %d moved %s -> %s on an unrelated member", s, before[s], o)
		}
	}

	leave := NewRing(members[1:], 0, 0).Assign(shards)
	moved = 0
	for s, o := range before {
		if leave[s] != o {
			moved++
			if o != "a" {
				t.Errorf("shard %d moved %s -> %s but %s never left", s, o, leave[s], o)
			}
		}
	}
	if max := shards * 5 / 16; moved > max {
		t.Errorf("leave moved %d/%d shards, want <= %d (~K/n)", moved, shards, max)
	}
}
