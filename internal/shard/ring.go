// Package shard partitions the flow-id space of a datagridflow network
// across its live peers, so that any peer can accept a submission and
// route it to the peer that owns it — the structural unlock for
// additive capacity the ROADMAP names ("millions of users").
//
// The package has three pieces:
//
//   - Ring: a consistent-hash ring with virtual nodes over the live
//     peer set. Every peer builds the same ring from the same member
//     list (the hash is seeded and deterministic), so all peers agree
//     on the *desired* owner of every shard without coordination.
//   - LeaseTable: TTL ownership leases, held by the lookup registry.
//     The ring says who should own a shard; the lease says who does.
//     A lease renews with its holder's heartbeat and is released when
//     the holder drains or is evicted — claim → heartbeat → drain.
//   - Manager: the per-peer reconciler. On every gossip refresh it
//     claims the shards the ring assigns to this peer, adopts the
//     registry's authoritative owner map for routing, and drains the
//     shards it holds but should no longer (parking their idle flows
//     via store passivation before releasing the lease).
//
// Keys are mapped to a fixed number of shards (FNV-64a), and shards —
// not raw keys — are placed on the ring, so the routing table every
// peer gossips is a small dense map instead of a per-flow directory.
// Semantics are specified in docs/FEDERATION.md ("Sharded ownership").
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultSeed is the ring hash seed every peer uses unless configured
// otherwise. All peers of one network must share a seed, or they will
// disagree about shard placement.
const DefaultSeed uint64 = 0xd6f5_10ad_9e3b_0001

// DefaultVNodes is the virtual-node count per member. More virtual
// nodes smooth the shard distribution (stddev shrinks ~1/sqrt(v)) at
// the cost of a larger sorted point list; 64 keeps placement within a
// few percent of even for small federations.
const DefaultVNodes = 64

// ShardOf maps a routing key to a shard index in [0, shards) by
// finalized FNV-64a. Deterministic everywhere: every peer, every
// process, every restart maps the same key to the same shard.
func ShardOf(key string, shards int) int {
	if shards <= 0 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(mix64(h.Sum64()) % uint64(shards))
}

// mix64 is the murmur3 finalizer. Raw FNV-64a barely avalanches the
// high bits of short, similar keys ("shard-0000" … "shard-1023" land
// within 2^-20 of each other), which collapses ring placement onto
// whoever owns the lowest virtual nodes; one multiply-xor cascade
// spreads them across the full 64-bit circle.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec4a
	x ^= x >> 33
	return x
}

// point is one virtual node on the ring.
type point struct {
	hash   uint64
	member string
}

// Ring is a consistent-hash ring with virtual nodes. Build one from
// the live member set; Owner walks clockwise from a key's hash to the
// first virtual node. Adding or removing one member moves only the
// keys that hashed into the vanished (or newly claimed) arcs — about
// K/n of them — which is what bounds ownership churn on membership
// change (tested in ring_test.go).
type Ring struct {
	points  []point
	members []string
}

// NewRing builds a ring over members with vnodes virtual nodes per
// member (DefaultVNodes if <= 0) under the given seed. The member
// order does not matter; the ring is a pure function of the member
// set, vnodes and seed.
func NewRing(members []string, vnodes int, seed uint64) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{points: make([]point, 0, len(members)*vnodes)}
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		r.members = append(r.members, m)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: vnodeHash(m, v, seed), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.member < b.member // deterministic tie-break
	})
	sort.Strings(r.members)
	return r
}

// vnodeHash positions one virtual node: FNV-64a of the seed bytes,
// the member name and the virtual-node ordinal.
func vnodeHash(member string, v int, seed uint64) uint64 {
	h := fnv.New64a()
	var sb [8]byte
	for i := 0; i < 8; i++ {
		sb[i] = byte(seed >> (8 * i))
	}
	h.Write(sb[:])
	h.Write([]byte(member))
	fmt.Fprintf(h, "#%d", v)
	return mix64(h.Sum64())
}

// Members returns the ring's member set, sorted.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Owner returns the member owning a raw key (the first virtual node at
// or clockwise after the key's hash). ok is false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	h := fnv.New64a()
	h.Write([]byte(key))
	return r.ownerOfHash(mix64(h.Sum64()))
}

// OwnerOfShard returns the member the ring assigns shard to.
func (r *Ring) OwnerOfShard(shard int) (string, bool) {
	return r.Owner(shardKey(shard))
}

func (r *Ring) ownerOfHash(h uint64) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is circular
	}
	return r.points[i].member, true
}

// Assign places every shard in [0, shards) on the ring, returning the
// desired owner map all peers agree on.
func (r *Ring) Assign(shards int) map[int]string {
	out := make(map[int]string, shards)
	for s := 0; s < shards; s++ {
		if m, ok := r.OwnerOfShard(s); ok {
			out[s] = m
		}
	}
	return out
}

// shardKey is the ring key of a shard index.
func shardKey(shard int) string {
	return fmt.Sprintf("shard-%04d", shard)
}
