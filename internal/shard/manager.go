package shard

import (
	"sort"
	"sync"

	"datagridflow/internal/obs"
)

// Config tunes a Manager.
type Config struct {
	// Self is this peer's name (the identity leases are claimed under).
	Self string
	// Shards is the shard count of the network. Every peer and the
	// lookup registry must agree on it.
	Shards int
	// VNodes is the virtual-node count per ring member (DefaultVNodes
	// if <= 0).
	VNodes int
	// Seed is the ring hash seed (DefaultSeed if 0).
	Seed uint64
	// Obs receives the shard metrics (obs.Default() if nil):
	// shard_owned_flows, shard_owned_shards, shard_rebalances_total.
	Obs *obs.Registry
	// Resident reports whether an execution id is still resident on
	// this peer's engine — the Manager prunes its tracked-flow table
	// with it on every rebalance. Optional.
	Resident func(execID string) bool
}

// Manager is the per-peer shard reconciler: it tracks which shards
// this peer holds leases for, the registry's authoritative owner map
// (for routing), and which resident flows were accepted under which
// shard (for drain hand-off). wire.Peer drives it from the federation
// heartbeat: SetOwners adopts each gossip refresh, and Rebalance runs
// the claim → drain cycle whenever membership allows.
type Manager struct {
	cfg Config

	mu     sync.Mutex
	owned  map[int]bool   // shards whose lease this peer holds
	owners map[int]string // registry's live shard → holder map
	track  map[string]int // execID → shard, for owned accepts
}

// NewManager builds a manager. Shards must be > 0 and Self non-empty.
func NewManager(cfg Config) *Manager {
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.Seed == 0 {
		cfg.Seed = DefaultSeed
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.Default()
	}
	return &Manager{
		cfg:    cfg,
		owned:  make(map[int]bool),
		owners: make(map[int]string),
		track:  make(map[string]int),
	}
}

// Self returns the peer name the manager claims leases under.
func (m *Manager) Self() string { return m.cfg.Self }

// Shards returns the network's shard count.
func (m *Manager) Shards() int { return m.cfg.Shards }

// ShardOf maps a routing key to its shard.
func (m *Manager) ShardOf(key string) int { return ShardOf(key, m.cfg.Shards) }

// Desired computes the shards the ring assigns to this peer over the
// given live member set, sorted.
func (m *Manager) Desired(members []string) []int {
	ring := NewRing(members, m.cfg.VNodes, m.cfg.Seed)
	var out []int
	for s := 0; s < m.cfg.Shards; s++ {
		if owner, ok := ring.OwnerOfShard(s); ok && owner == m.cfg.Self {
			out = append(out, s)
		}
	}
	return out
}

// SetOwners adopts the registry's live shard → holder map — the
// routing table every peer uses to pick a submit's destination. The
// peer's own owned set is re-derived from it: a lease the registry no
// longer shows under this peer (expired and reclaimed) is dropped.
func (m *Manager) SetOwners(owners map[int]string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.owners = make(map[int]string, len(owners))
	owned := make(map[int]bool)
	for s, h := range owners {
		m.owners[s] = h
		if h == m.cfg.Self {
			owned[s] = true
		}
	}
	m.owned = owned
	m.gaugesLocked()
}

// Owns reports whether this peer holds shard's lease.
func (m *Manager) Owns(shard int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.owned[shard]
}

// Owned returns the shards this peer holds, sorted.
func (m *Manager) Owned() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, 0, len(m.owned))
	for s := range m.owned {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// OwnerOfShard returns the live holder of shard from the adopted
// registry map.
func (m *Manager) OwnerOfShard(shard int) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.owners[shard]
	return h, ok
}

// OwnerOf resolves a routing key to its shard's live holder.
func (m *Manager) OwnerOf(key string) (holder string, shard int, ok bool) {
	shard = m.ShardOf(key)
	holder, ok = m.OwnerOfShard(shard)
	return holder, shard, ok
}

// Track records that execID was accepted on this peer under shard —
// the drain index. Untracked automatically once the execution is no
// longer resident (see Config.Resident).
func (m *Manager) Track(execID string, shard int) {
	m.mu.Lock()
	m.track[execID] = shard
	m.gaugesLocked()
	m.mu.Unlock()
}

// Untrack forgets one tracked execution.
func (m *Manager) Untrack(execID string) {
	m.mu.Lock()
	delete(m.track, execID)
	m.gaugesLocked()
	m.mu.Unlock()
}

// TrackedShard returns the shard execID was accepted under, if this
// peer tracked the accept.
func (m *Manager) TrackedShard(execID string) (int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.track[execID]
	return s, ok
}

// Tracked returns the tracked executions of one shard.
func (m *Manager) Tracked(shard int) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for id, s := range m.track {
		if s == shard {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Rebalance runs one claim → drain cycle against the lease authority:
//
//  1. prune the tracked-flow table of executions no longer resident;
//  2. claim every shard the ring (over members) assigns to this peer —
//     claim also renews leases already held;
//  3. adopt the owner map the claim reply returned;
//  4. drain every shard this peer holds but the ring no longer assigns
//     to it: hand its tracked flows to drain (the caller parks them
//     via store passivation) and release the lease.
//
// claim and release talk to the lookup registry; drain may be nil.
// Rebalance reports whether the owned set changed (and counts it in
// shard_rebalances_total).
func (m *Manager) Rebalance(
	members []string,
	claim func(shards []int) (map[int]string, error),
	release func(shards []int) error,
	drain func(shard int, execIDs []string),
) bool {
	m.pruneTracked()
	desired := m.Desired(members)
	before := m.Owned()

	owners, err := claim(desired)
	if err != nil {
		return false // registry unreachable: keep routing on the last map
	}
	m.SetOwners(owners)

	// Drain: held before, no longer desired, and still shown under us
	// (a lease another peer already took needs no release).
	want := make(map[int]bool, len(desired))
	for _, s := range desired {
		want[s] = true
	}
	var drop []int
	for _, s := range before {
		if !want[s] && m.Owns(s) {
			drop = append(drop, s)
		}
	}
	if len(drop) > 0 {
		for _, s := range drop {
			if drain != nil {
				drain(s, m.Tracked(s))
			}
		}
		if release != nil {
			_ = release(drop)
		}
		m.mu.Lock()
		for _, s := range drop {
			delete(m.owned, s)
			delete(m.owners, s)
		}
		m.gaugesLocked()
		m.mu.Unlock()
	}

	after := m.Owned()
	changed := !equalInts(before, after)
	if changed {
		m.cfg.Obs.Counter("shard_rebalances_total").Inc()
	}
	return changed
}

// pruneTracked drops tracked executions that are no longer resident.
func (m *Manager) pruneTracked() {
	if m.cfg.Resident == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for id := range m.track {
		if !m.cfg.Resident(id) {
			delete(m.track, id)
		}
	}
	m.gaugesLocked()
}

// gaugesLocked refreshes the ownership gauges. Caller holds m.mu.
func (m *Manager) gaugesLocked() {
	m.cfg.Obs.Gauge("shard_owned_shards").Set(int64(len(m.owned)))
	m.cfg.Obs.Gauge("shard_owned_flows").Set(int64(len(m.track)))
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
