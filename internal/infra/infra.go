// Package infra implements the Infrastructure Description Language the
// paper's DfMS architecture names: an XML description of each domain's
// storage and compute resources, inter-domain links and the SLAs the
// domain is willing to support. System administrators own these
// documents ("assuring them full autonomous control over what resources
// are shared with other grid users and at what SLAs"); the scheduler
// consumes them to convert abstract execution logic into
// infrastructure-based execution logic.
package infra

import (
	"encoding/xml"
	"errors"
	"fmt"
	"time"

	"datagridflow/internal/dgms"
	"datagridflow/internal/sim"
	"datagridflow/internal/vfs"
)

// ErrInvalid wraps all description validation failures.
var ErrInvalid = errors.New("infra: invalid description")

// Description is the root document: the infrastructure of one grid.
type Description struct {
	XMLName xml.Name `xml:"infrastructure"`
	Name    string   `xml:"name,attr,omitempty"`
	Domains []Domain `xml:"domain"`
	Links   []Link   `xml:"link,omitempty"`
}

// Domain describes one administrative domain's shared resources.
type Domain struct {
	Name    string    `xml:"name,attr"`
	Storage []Storage `xml:"storageResource,omitempty"`
	Compute []Compute `xml:"computeResource,omitempty"`
	SLAs    []SLA     `xml:"sla,omitempty"`
}

// Storage describes one storage resource a domain shares.
type Storage struct {
	Name string `xml:"name,attr"`
	// Class is "memory", "parallel-fs", "disk" or "archive".
	Class string `xml:"class,attr"`
	// CapacityGB bounds the resource (0 = unlimited).
	CapacityGB int64 `xml:"capacityGB,attr,omitempty"`
}

// Compute describes one compute resource (cluster or node pool).
type Compute struct {
	Name string `xml:"name,attr"`
	// Nodes is the pool size; tasks occupy one node each.
	Nodes int `xml:"nodes,attr"`
	// Power scales CPU time: a task needing S cpu-seconds takes S/Power
	// wall seconds on one node here. 1.0 is the reference machine.
	Power float64 `xml:"power,attr"`
}

// SLA describes a service level the domain offers: which users it
// prefers, which storage classes it exposes to them, and a scheduling
// priority (higher = preferred by the broker when costs tie).
type SLA struct {
	Name     string   `xml:"name,attr"`
	Users    []string `xml:"user,omitempty"`
	Classes  []string `xml:"class,omitempty"`
	Priority int      `xml:"priority,attr,omitempty"`
}

// Link describes a directed inter-domain network path.
type Link struct {
	From string `xml:"from,attr"`
	To   string `xml:"to,attr"`
	// BandwidthMBps is the sustained rate in MiB/s.
	BandwidthMBps float64 `xml:"bandwidthMBps,attr"`
	// LatencyMs is the per-transfer setup cost in milliseconds.
	LatencyMs float64 `xml:"latencyMs,attr,omitempty"`
	// Symmetric installs both directions.
	Symmetric bool `xml:"symmetric,attr,omitempty"`
}

// Parse decodes and validates a description.
func Parse(data []byte) (*Description, error) {
	var d Description
	if err := xml.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("infra: parse: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Marshal renders the description as indented XML.
func (d *Description) Marshal() ([]byte, error) {
	b, err := xml.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), b...), nil
}

// classFromString maps a class name to the vfs storage class.
func classFromString(s string) (vfs.Class, error) {
	switch s {
	case "memory":
		return vfs.Memory, nil
	case "parallel-fs":
		return vfs.ParallelFS, nil
	case "disk":
		return vfs.Disk, nil
	case "archive":
		return vfs.Archive, nil
	default:
		return 0, fmt.Errorf("%w: unknown storage class %q", ErrInvalid, s)
	}
}

// Validate checks structural soundness: unique names, known classes,
// positive node counts, links referencing declared domains.
func (d *Description) Validate() error {
	if len(d.Domains) == 0 {
		return fmt.Errorf("%w: no domains", ErrInvalid)
	}
	domains := map[string]bool{}
	resNames := map[string]bool{}
	for _, dom := range d.Domains {
		if dom.Name == "" {
			return fmt.Errorf("%w: domain with empty name", ErrInvalid)
		}
		if domains[dom.Name] {
			return fmt.Errorf("%w: duplicate domain %q", ErrInvalid, dom.Name)
		}
		domains[dom.Name] = true
		for _, s := range dom.Storage {
			if s.Name == "" {
				return fmt.Errorf("%w: storage with empty name in %s", ErrInvalid, dom.Name)
			}
			if resNames[s.Name] {
				return fmt.Errorf("%w: duplicate resource %q", ErrInvalid, s.Name)
			}
			resNames[s.Name] = true
			if _, err := classFromString(s.Class); err != nil {
				return err
			}
			if s.CapacityGB < 0 {
				return fmt.Errorf("%w: negative capacity on %q", ErrInvalid, s.Name)
			}
		}
		for _, c := range dom.Compute {
			if c.Name == "" {
				return fmt.Errorf("%w: compute with empty name in %s", ErrInvalid, dom.Name)
			}
			if resNames[c.Name] {
				return fmt.Errorf("%w: duplicate resource %q", ErrInvalid, c.Name)
			}
			resNames[c.Name] = true
			if c.Nodes <= 0 {
				return fmt.Errorf("%w: compute %q needs nodes > 0", ErrInvalid, c.Name)
			}
			if c.Power <= 0 {
				return fmt.Errorf("%w: compute %q needs power > 0", ErrInvalid, c.Name)
			}
		}
	}
	for _, l := range d.Links {
		if !domains[l.From] || !domains[l.To] {
			return fmt.Errorf("%w: link %s→%s references unknown domain", ErrInvalid, l.From, l.To)
		}
		if l.BandwidthMBps <= 0 {
			return fmt.Errorf("%w: link %s→%s needs bandwidth > 0", ErrInvalid, l.From, l.To)
		}
	}
	return nil
}

// Apply registers the described storage resources and network links on a
// grid. It returns the compute inventory for the scheduler (the grid
// itself only manages storage).
func (d *Description) Apply(g *dgms.Grid) ([]ComputeNode, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	var nodes []ComputeNode
	for _, dom := range d.Domains {
		for _, s := range dom.Storage {
			class, err := classFromString(s.Class)
			if err != nil {
				return nil, err
			}
			res := vfs.New(s.Name, dom.Name, class, s.CapacityGB<<30)
			if err := g.RegisterResource(res); err != nil {
				return nil, err
			}
		}
		for _, c := range dom.Compute {
			nodes = append(nodes, ComputeNode{
				Name: c.Name, Domain: dom.Name, Nodes: c.Nodes, Power: c.Power,
			})
		}
	}
	for _, l := range d.Links {
		link := sim.Link{
			Bandwidth: l.BandwidthMBps * (1 << 20),
			Latency:   time.Duration(l.LatencyMs * float64(time.Millisecond)),
		}
		if l.Symmetric {
			g.Network().SetSymmetric(l.From, l.To, link)
		} else {
			g.Network().SetLink(l.From, l.To, link)
		}
	}
	return nodes, nil
}

// ComputeNode is the scheduler's view of one compute pool.
type ComputeNode struct {
	Name   string
	Domain string
	Nodes  int
	Power  float64
}

// SLAFor returns the highest-priority SLA in the description that admits
// the given user (an SLA with no Users admits everyone), and whether any
// does.
func (d *Description) SLAFor(domain, user string) (SLA, bool) {
	var best SLA
	found := false
	for _, dom := range d.Domains {
		if dom.Name != domain {
			continue
		}
		for _, sla := range dom.SLAs {
			admits := len(sla.Users) == 0
			for _, u := range sla.Users {
				if u == user {
					admits = true
				}
			}
			if admits && (!found || sla.Priority > best.Priority) {
				best, found = sla, true
			}
		}
	}
	return best, found
}
