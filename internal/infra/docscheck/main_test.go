package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsConsistent runs the real checker against the real tree:
// the repository must pass its own docs gate.
func TestRepoIsConsistent(t *testing.T) {
	problems, err := check("../../..")
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	for _, p := range problems {
		t.Errorf("%s", p)
	}
}

// TestCatchesUndocumentedFlag builds a minimal fake repo with one flag
// that no document mentions and one that README covers.
func TestCatchesUndocumentedFlag(t *testing.T) {
	root := fakeRepo(t, map[string]string{
		"cmd/srv/main.go": `package main
import "flag"
func main() {
	flag.String("addr", "", "listen address")
	flag.Bool("turbo-mode", false, "undocumented")
}`,
		"README.md":       "Run srv with `-addr` set.\n",
		"docs/METRICS.md": "",
	})
	problems, err := check(root)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "-turbo-mode") {
		t.Fatalf("want exactly the -turbo-mode problem, got %q", problems)
	}
}

// TestCatchesUndocumentedMetric registers a metric the docs lack.
func TestCatchesUndocumentedMetric(t *testing.T) {
	root := fakeRepo(t, map[string]string{
		"cmd/srv/main.go": "package main\nfunc main() {}",
		"internal/x/x.go": `package x
type reg struct{}
func (reg) Counter(name string) {}
func emit(r reg) {
	r.Counter("frames_total")
	r.Counter("drops_total")
}`,
		"README.md":       "",
		"docs/METRICS.md": "| `frames_total` | counter |\n",
	})
	problems, err := check(root)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "drops_total") {
		t.Fatalf("want exactly the drops_total problem, got %q", problems)
	}
}

// TestFlagTokenBoundaries: -o must not be satisfied by -open.
func TestFlagTokenBoundaries(t *testing.T) {
	if mentionsFlag("use -open for demo mode", "o") {
		t.Fatal("-open must not satisfy -o")
	}
	if !mentionsFlag("write the report with -o out.json", "o") {
		t.Fatal("-o should be found as a standalone token")
	}
	if !mentionsFlag("`-o` writes the report", "o") {
		t.Fatal("backticked -o should be found")
	}
}

// fakeRepo materializes files under a temp root. A cmd/dgfctl/main.go
// with no verbs is added if absent so the verb check has its input.
func fakeRepo(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	if _, ok := files["cmd/dgfctl/main.go"]; !ok {
		files["cmd/dgfctl/main.go"] = "package main\nfunc main() {}"
	}
	for rel, content := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}
