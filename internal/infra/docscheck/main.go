// Command docscheck keeps the documentation honest. It fails (exit 1)
// when the code and the prose disagree:
//
//   - every flag registered in cmd/*/main.go must be mentioned, as
//     -flagname, somewhere in README.md or docs/*.md;
//   - every metric registered through the obs registry must appear as
//     a `backticked` name in docs/METRICS.md (the same contract
//     internal/obs's contract test enforces, rechecked here so the CI
//     docs job stands alone);
//   - every dgfctl verb must appear in README.md's CLI table (the
//     table is `dgfctl help -markdown` verbatim).
//
// CI runs it from the repository root in the docs job:
//
//	go run ./internal/infra/docscheck
//	go run ./internal/infra/docscheck -root /path/to/repo
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

var (
	flagRe   = regexp.MustCompile(`flag\.(?:String|Bool|Int|Int64|Uint|Uint64|Float64|Duration)\(\s*"([A-Za-z][A-Za-z0-9_.-]*)"`)
	metricRe = regexp.MustCompile(`\.(?:Counter|Gauge|Histogram|HistogramBuckets)\(\s*"([a-z][a-z0-9_]*)"`)
	verbRe   = regexp.MustCompile(`(?m)^\s*name:\s*"([a-z]+)",$`)
)

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()
	problems, err := check(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(1)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "docscheck: %s\n", p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// check returns one message per code/documentation mismatch.
func check(root string) ([]string, error) {
	corpus, err := docCorpus(root)
	if err != nil {
		return nil, err
	}
	var problems []string

	flags, err := cmdFlags(root)
	if err != nil {
		return nil, err
	}
	for _, f := range flags {
		if !mentionsFlag(corpus, f.name) {
			problems = append(problems,
				fmt.Sprintf("%s registers -%s but neither README.md nor docs/*.md mentions it", f.binary, f.name))
		}
	}

	metricsDoc, err := os.ReadFile(filepath.Join(root, "docs", "METRICS.md"))
	if err != nil {
		return nil, err
	}
	metrics, err := sourceMetrics(root)
	if err != nil {
		return nil, err
	}
	for _, m := range metrics {
		if !strings.Contains(string(metricsDoc), "`"+m+"`") {
			problems = append(problems,
				fmt.Sprintf("metric %s is registered in code but missing from docs/METRICS.md", m))
		}
	}

	readme, err := os.ReadFile(filepath.Join(root, "README.md"))
	if err != nil {
		return nil, err
	}
	ctl, err := os.ReadFile(filepath.Join(root, "cmd", "dgfctl", "main.go"))
	if err != nil {
		return nil, err
	}
	for _, m := range verbRe.FindAllStringSubmatch(string(ctl), -1) {
		// The README table rows open with "| `<verb>" because each
		// synopsis starts with its verb name.
		if !strings.Contains(string(readme), "| `"+m[1]) {
			problems = append(problems,
				fmt.Sprintf("dgfctl verb %q is missing from README.md's CLI table (regenerate it with `dgfctl help -markdown`)", m[1]))
		}
	}

	sort.Strings(problems)
	return problems, nil
}

type cmdFlag struct {
	binary string // e.g. "cmd/matrixd"
	name   string // e.g. "store-dir"
}

// cmdFlags scans every cmd/*/main.go for flag registrations.
func cmdFlags(root string) ([]cmdFlag, error) {
	mains, err := filepath.Glob(filepath.Join(root, "cmd", "*", "main.go"))
	if err != nil {
		return nil, err
	}
	if len(mains) == 0 {
		return nil, fmt.Errorf("no cmd/*/main.go under %s", root)
	}
	var flags []cmdFlag
	for _, path := range mains {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		binary := filepath.ToSlash(filepath.Join("cmd", filepath.Base(filepath.Dir(path))))
		for _, m := range flagRe.FindAllStringSubmatch(string(data), -1) {
			flags = append(flags, cmdFlag{binary: binary, name: m[1]})
		}
	}
	return flags, nil
}

// sourceMetrics scans non-test Go sources for obs metric registrations,
// mirroring internal/obs's contract test.
func sourceMetrics(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", "docs":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range metricRe.FindAllStringSubmatch(string(data), -1) {
			seen[m[1]] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// docCorpus concatenates README.md and every docs/*.md.
func docCorpus(root string) (string, error) {
	paths, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		return "", err
	}
	paths = append(paths, filepath.Join(root, "README.md"))
	var b strings.Builder
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return "", err
		}
		b.Write(data)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// mentionsFlag reports whether the corpus contains -name as a distinct
// token: preceded by start-of-text or a non-word character, and not
// running into a longer flag name (so -o does not match -open).
func mentionsFlag(corpus, name string) bool {
	re := regexp.MustCompile(`(^|[^-\w])-` + regexp.QuoteMeta(name) + `($|[^-\w])`)
	return re.MatchString(corpus)
}
