package infra

import (
	"errors"
	"strings"
	"testing"
	"time"

	"datagridflow/internal/dgms"
)

func sampleDesc() *Description {
	return &Description{
		Name: "teragrid",
		Domains: []Domain{
			{
				Name: "sdsc",
				Storage: []Storage{
					{Name: "sdsc-gpfs", Class: "parallel-fs", CapacityGB: 100},
					{Name: "sdsc-tape", Class: "archive"},
				},
				Compute: []Compute{{Name: "sdsc-cluster", Nodes: 8, Power: 1.0}},
				SLAs: []SLA{
					{Name: "public", Priority: 1},
					{Name: "scec-gold", Users: []string{"scec"}, Priority: 10},
				},
			},
			{
				Name:    "ncsa",
				Storage: []Storage{{Name: "ncsa-disk", Class: "disk"}},
				Compute: []Compute{{Name: "ncsa-cluster", Nodes: 4, Power: 2.0}},
			},
		},
		Links: []Link{
			{From: "sdsc", To: "ncsa", BandwidthMBps: 40, LatencyMs: 30, Symmetric: true},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	d := sampleDesc()
	b, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `<storageResource name="sdsc-gpfs"`) {
		t.Errorf("marshal output missing elements:\n%s", b)
	}
	back, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Domains) != 2 || back.Domains[0].Storage[0].Name != "sdsc-gpfs" {
		t.Errorf("round trip: %+v", back)
	}
	if back.Links[0].BandwidthMBps != 40 || !back.Links[0].Symmetric {
		t.Errorf("link round trip: %+v", back.Links[0])
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Description)
	}{
		{"no domains", func(d *Description) { d.Domains = nil }},
		{"empty domain name", func(d *Description) { d.Domains[0].Name = "" }},
		{"duplicate domain", func(d *Description) { d.Domains[1].Name = "sdsc" }},
		{"empty storage name", func(d *Description) { d.Domains[0].Storage[0].Name = "" }},
		{"duplicate resource", func(d *Description) { d.Domains[1].Storage[0].Name = "sdsc-gpfs" }},
		{"bad class", func(d *Description) { d.Domains[0].Storage[0].Class = "floppy" }},
		{"negative capacity", func(d *Description) { d.Domains[0].Storage[0].CapacityGB = -1 }},
		{"empty compute name", func(d *Description) { d.Domains[0].Compute[0].Name = "" }},
		{"zero nodes", func(d *Description) { d.Domains[0].Compute[0].Nodes = 0 }},
		{"zero power", func(d *Description) { d.Domains[0].Compute[0].Power = 0 }},
		{"compute name collides with storage", func(d *Description) { d.Domains[0].Compute[0].Name = "ncsa-disk" }},
		{"link to unknown domain", func(d *Description) { d.Links[0].To = "mars" }},
		{"zero bandwidth", func(d *Description) { d.Links[0].BandwidthMBps = 0 }},
	}
	for _, tc := range cases {
		d := sampleDesc()
		tc.mut(d)
		if err := d.Validate(); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
	if _, err := Parse([]byte("<oops")); err == nil {
		t.Errorf("bad XML accepted")
	}
}

func TestApply(t *testing.T) {
	g := dgms.New(dgms.Options{})
	nodes, err := sampleDesc().Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 {
		t.Fatalf("nodes = %+v", nodes)
	}
	if len(g.Resources()) != 3 {
		t.Errorf("resources = %d", len(g.Resources()))
	}
	gpfs, err := g.Resource("sdsc-gpfs")
	if err != nil {
		t.Fatal(err)
	}
	if gpfs.Capacity() != 100<<30 || gpfs.Domain() != "sdsc" {
		t.Errorf("gpfs = cap %d domain %s", gpfs.Capacity(), gpfs.Domain())
	}
	// Link installed both ways: 100 MiB at 40 MiB/s = 2.5 s + 30 ms.
	d1, err := g.Network().TransferTime("sdsc", "ncsa", 100<<20)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := g.Network().TransferTime("ncsa", "sdsc", 100<<20)
	want := 2500*time.Millisecond + 30*time.Millisecond
	if d1 != want || d2 != want {
		t.Errorf("link times = %v, %v, want %v", d1, d2, want)
	}
	// Applying again fails on duplicate resources.
	if _, err := sampleDesc().Apply(g); err == nil {
		t.Errorf("double apply accepted")
	}
	// Invalid descriptions refuse to apply.
	bad := sampleDesc()
	bad.Domains[0].Storage[0].Class = "floppy"
	if _, err := bad.Apply(dgms.New(dgms.Options{})); err == nil {
		t.Errorf("invalid apply accepted")
	}
}

func TestSLAFor(t *testing.T) {
	d := sampleDesc()
	sla, ok := d.SLAFor("sdsc", "scec")
	if !ok || sla.Name != "scec-gold" {
		t.Errorf("scec SLA = %+v, %v", sla, ok)
	}
	sla, ok = d.SLAFor("sdsc", "randomuser")
	if !ok || sla.Name != "public" {
		t.Errorf("public SLA = %+v, %v", sla, ok)
	}
	if _, ok := d.SLAFor("ncsa", "anyone"); ok {
		t.Errorf("ncsa has no SLAs")
	}
	if _, ok := d.SLAFor("mars", "anyone"); ok {
		t.Errorf("unknown domain has SLA")
	}
}
