// Command benchgate compares a fresh BENCH_wire.json load report
// against the committed baseline and fails (exit 1) when the run
// regresses. It is the CI bench job's gate:
//
//	go run ./internal/infra/benchgate -baseline BENCH_wire.json -current out.json
//	go run ./internal/infra/benchgate -baseline BENCH_wire.json -current out.json -max-regress 0.20 -min-speedup 3.0
//
// The gated quantities are the report's speedup *ratios*
// (pipelined/serial, batch/async-serial), not absolute RPS: a ratio
// compares two phases of the same run on the same machine, so it is
// stable across CI runners of very different speeds, while absolute
// throughput is printed for information only (docs/BENCH.md). A run
// fails when
//
//   - speedup_pipelined falls below -min-speedup (the protocol's
//     headline claim: pipelining must hide at least that multiple of
//     the per-request latency), or
//   - a gated speedup ratio drops more than -max-regress (fraction)
//     below the committed baseline's ratio.
//
// Output is a benchstat-style old/new/delta table. stdlib only.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"datagridflow/internal/loadgen"
)

func load(path string) (*loadgen.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep loadgen.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// row is one gated or informational comparison.
type row struct {
	name     string
	old, new float64
	unit     string
	gated    bool
}

// gate renders the old/new/delta table and counts gate failures.
func gate(base, cur *loadgen.Report, maxRegress, minSpeedup float64) (string, int) {
	rows := []row{
		{"speedup/pipelined", base.SpeedupPipelined, cur.SpeedupPipelined, "x", true},
		{"speedup/batch", base.SpeedupBatch, cur.SpeedupBatch, "x", true},
		{"rps/serial", base.Serial.RPS, cur.Serial.RPS, "req/s", false},
		{"rps/pipelined", base.Pipelined.RPS, cur.Pipelined.RPS, "req/s", false},
		{"rps/batch", base.Batch.RPS, cur.Batch.RPS, "req/s", false},
		{"p99/pipelined", base.Pipelined.P99ms, cur.Pipelined.P99ms, "ms", false},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %14s %14s %8s\n", "metric", "old", "new", "delta")
	failures := 0
	for _, r := range rows {
		delta := 0.0
		if r.old != 0 {
			delta = (r.new - r.old) / r.old * 100
		}
		verdict := ""
		if r.gated && r.old > 0 && r.new < r.old*(1-maxRegress) {
			verdict = "  REGRESSION"
			failures++
		}
		fmt.Fprintf(&b, "%-20s %9.2f %-4s %9.2f %-4s %+7.1f%%%s\n", r.name, r.old, r.unit, r.new, r.unit, delta, verdict)
	}
	if cur.SpeedupPipelined < minSpeedup {
		fmt.Fprintf(&b, "\nFAIL: speedup_pipelined %.2fx below the %.1fx floor\n", cur.SpeedupPipelined, minSpeedup)
		failures++
	}
	return b.String(), failures
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_wire.json", "committed baseline report")
	currentPath := flag.String("current", "", "fresh report to judge (required)")
	maxRegress := flag.Float64("max-regress", 0.20, "max allowed fractional drop of a speedup ratio vs baseline")
	minSpeedup := flag.Float64("min-speedup", 3.0, "absolute floor for speedup_pipelined")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: baseline: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: current: %v\n", err)
		os.Exit(2)
	}
	table, failures := gate(base, cur, *maxRegress, *minSpeedup)
	fmt.Print(table)
	if failures > 0 {
		fmt.Printf("\nbenchgate: %d gate failure(s) (max-regress %.0f%%, min-speedup %.1fx)\n",
			failures, *maxRegress*100, *minSpeedup)
		os.Exit(1)
	}
	fmt.Printf("\nbenchgate: OK (pipelined %.2fx >= %.1fx, ratios within %.0f%% of baseline)\n",
		cur.SpeedupPipelined, *minSpeedup, *maxRegress*100)
}
