// Command benchgate compares fresh benchmark reports against their
// committed baselines and fails (exit 1) when a run regresses. It is
// the CI bench job's gate:
//
//	go run ./internal/infra/benchgate -baseline BENCH_wire.json -current out.json
//	go run ./internal/infra/benchgate -store-baseline BENCH_store.json -store-current store.json
//	go run ./internal/infra/benchgate -shard-baseline BENCH_shard.json -shard-current shard.json
//	go run ./internal/infra/benchgate -repl-baseline BENCH_repl.json -repl-current repl.json
//	go run ./internal/infra/benchgate -tenant-baseline BENCH_tenant.json -tenant-current tenant.json
//	go run ./internal/infra/benchgate -vdata-baseline BENCH_vdata.json -vdata-current vdata.json
//	go run ./internal/infra/benchgate -baseline BENCH_wire.json -current out.json \
//	    -store-baseline BENCH_store.json -store-current store.json \
//	    -shard-baseline BENCH_shard.json -shard-current shard.json \
//	    -repl-baseline BENCH_repl.json -repl-current repl.json
//
// Wire gate (-baseline/-current, the BENCH_wire.json load report): the
// gated quantities are the report's speedup *ratios* (pipelined/serial,
// batch/async-serial), not absolute RPS: a ratio compares two phases of
// the same run on the same machine, so it is stable across CI runners
// of very different speeds, while absolute throughput is printed for
// information only (docs/BENCH.md). A run fails when
//
//   - speedup_pipelined falls below -min-speedup (the protocol's
//     headline claim: pipelining must hide at least that multiple of
//     the per-request latency),
//   - speedup_codec_async or speedup_codec_batch falls below
//     -min-codec-speedup (the 1.4 binary codec's claim: at least that
//     multiple of the text encodings on the variable-heavy workload,
//     docs/CODEC.md), or
//   - a gated speedup ratio drops more than -max-regress (fraction)
//     below the committed baseline's ratio.
//
// Store gate (-store-baseline/-store-current, the BENCH_store.json E14
// report): gates the flow-state store's claims (docs/STORE.md) the same
// ratio-first way. A run fails when
//
//   - replayReduction (journal records / store replay records on
//     restart) falls below -min-reduction,
//   - codecReplaySpeedup (binary vs JSONL segment replay on identical
//     snapshot streams) falls below -min-codec-speedup,
//   - residentAfterSweep exceeds 1% of the flow population (passivation
//     must actually evict idle flows from memory),
//   - residentAfterRecovery exceeds the same bound (a restart must not
//     re-inflate passivated flows), or
//   - replayReduction drops more than -max-regress below the baseline.
//
// Shard gate (-shard-baseline/-shard-current, the BENCH_shard.json E15
// report): gates the sharded-ownership claims (docs/FEDERATION.md,
// "Sharded ownership"). A run fails when
//
//   - speedup_4peer (any-peer throughput at 4 sharded peers over 1
//     peer) falls below -min-shard-scaling,
//   - a gated scaling ratio (speedup_2peer, speedup_4peer,
//     speedup_vs_single_owner) drops more than -max-regress below the
//     baseline,
//   - failover_ms exceeds the baseline by more than
//     -max-failover-regress (fraction) — lease takeover after an owner
//     death must stay bounded by the registry TTL, or
//   - the failover invariants break: the survivor did not take the
//     dead owner's lease, a submission errored during the takeover
//     window (any-peer submit must stay available), or a completed
//     flow of the dead owner was re-executed on the survivor
//     (replayed_from_genesis must be 0 — placement moves, history does
//     not).
//
// Repl gate (-repl-baseline/-repl-current, the BENCH_repl.json E16
// report): gates the replicated lifecycle store's claims
// (docs/REPLICATION.md) with absolute invariants — a replication bug is
// a data-loss bug, so these are not ratio-relative. A run fails when
//
//   - quorum_overhead_frac exceeds -max-repl-overhead (the headline
//     claim: quorum-acked submits cost at most that fraction over
//     bare submits),
//   - lost_flows is nonzero (a flow whose records the follower
//     acknowledged before the owner died must reappear on the
//     survivor — zero acknowledged-record loss),
//   - promoted_flows is zero while acked_live_flows is not (the
//     follower never promoted its replica),
//   - snapshots_shipped is zero (the catch-up path never exercised:
//     the cold/behind follower must have healed by snapshot), or
//   - takeover_ms exceeds the baseline by more than
//     -max-takeover-regress (fraction) — promotion replays the replica
//     in O(live flows), so takeover time must stay bounded.
//
// Tenant gate (-tenant-baseline/-tenant-current, the BENCH_tenant.json
// E17 report): gates the multi-tenant control plane's claims
// (docs/TENANCY.md) with absolute invariants — scheduling fairness and
// quota fidelity are correctness properties, not speedups. A run fails
// when
//
//   - min_fair_attained falls below -min-isolation (the headline
//     claim: under a flooding 10x-weight aggressor, every 1x tenant
//     must still attain at least that fraction of its
//     weight-proportional fair share),
//   - false_rejections is nonzero (a tenant with no resource limits
//     was quota-rejected in the steady phase),
//   - breach_rejections is zero (the positive control drew no
//     rejections, so enforcement was dead while fairness was
//     measured), or
//   - registry_tenants is below 100000 (the footprint was not
//     measured at the claimed population scale).
//
// Vdata gate (-vdata-baseline/-vdata-current, the BENCH_vdata.json
// E18 report): gates the virtual-data catalog's claims
// (docs/VDATA.md). A run fails when
//
//   - hit_rate falls below -min-vdata-hitrate (the warm pass must
//     find its derivations memoized),
//   - warm_speedup falls below -min-vdata-speedup (elision must
//     actually pay),
//   - replayed_entries differs from entries (derivations must survive
//     a catalog close + reopen),
//   - remote_hits is below the flow count (cross-peer reuse must
//     account for every derivation, counted in
//     vdata_remote_hits_total),
//   - remote_speedup falls below -min-vdata-remote-speedup (fetching
//     a memoized result across the fleet must beat recomputing it),
//     or
//   - a gated speedup ratio drops more than -max-regress below the
//     baseline.
//
// Each gate runs when its -*current flag is given; at least one is
// required. Output is a benchstat-style old/new/delta table per gate.
// stdlib only.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"datagridflow/internal/experiments"
	"datagridflow/internal/loadgen"
)

func load(path string) (*loadgen.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep loadgen.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func loadStore(path string) (*experiments.StoreBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep experiments.StoreBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func loadShard(path string) (*experiments.ShardBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep experiments.ShardBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func loadRepl(path string) (*experiments.ReplBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep experiments.ReplBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func loadVdata(path string) (*loadgen.VdataReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep loadgen.VdataReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func loadTenant(path string) (*loadgen.TenantReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep loadgen.TenantReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// row is one gated or informational comparison.
type row struct {
	name     string
	old, new float64
	unit     string
	gated    bool
}

// table renders rows benchstat-style, counting -max-regress failures on
// the gated ones.
func table(rows []row, maxRegress float64) (string, int) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %14s %14s %8s\n", "metric", "old", "new", "delta")
	failures := 0
	for _, r := range rows {
		delta := 0.0
		if r.old != 0 {
			delta = (r.new - r.old) / r.old * 100
		}
		verdict := ""
		if r.gated && r.old > 0 && r.new < r.old*(1-maxRegress) {
			verdict = "  REGRESSION"
			failures++
		}
		fmt.Fprintf(&b, "%-20s %9.2f %-4s %9.2f %-4s %+7.1f%%%s\n", r.name, r.old, r.unit, r.new, r.unit, delta, verdict)
	}
	return b.String(), failures
}

// gate renders the wire old/new/delta table and counts gate failures.
func gate(base, cur *loadgen.Report, maxRegress, minSpeedup, minCodec float64) (string, int) {
	out, failures := table([]row{
		{"speedup/pipelined", base.SpeedupPipelined, cur.SpeedupPipelined, "x", true},
		{"speedup/batch", base.SpeedupBatch, cur.SpeedupBatch, "x", true},
		{"speedup/codec-async", base.SpeedupCodecAsync, cur.SpeedupCodecAsync, "x", true},
		{"speedup/codec-batch", base.SpeedupCodecBatch, cur.SpeedupCodecBatch, "x", true},
		{"rps/serial", base.Serial.RPS, cur.Serial.RPS, "req/s", false},
		{"rps/pipelined", base.Pipelined.RPS, cur.Pipelined.RPS, "req/s", false},
		{"rps/batch", base.Batch.RPS, cur.Batch.RPS, "req/s", false},
		{"rps/codec-async-bin", base.AsyncCodecBin.RPS, cur.AsyncCodecBin.RPS, "req/s", false},
		{"rps/codec-batch-bin", base.BatchCodecBin.RPS, cur.BatchCodecBin.RPS, "req/s", false},
		{"p99/pipelined", base.Pipelined.P99ms, cur.Pipelined.P99ms, "ms", false},
	}, maxRegress)
	var b strings.Builder
	b.WriteString(out)
	if cur.SpeedupPipelined < minSpeedup {
		fmt.Fprintf(&b, "\nFAIL: speedup_pipelined %.2fx below the %.1fx floor\n", cur.SpeedupPipelined, minSpeedup)
		failures++
	}
	if cur.SpeedupCodecAsync < minCodec {
		fmt.Fprintf(&b, "\nFAIL: speedup_codec_async %.2fx below the %.1fx floor\n", cur.SpeedupCodecAsync, minCodec)
		failures++
	}
	if cur.SpeedupCodecBatch < minCodec {
		fmt.Fprintf(&b, "\nFAIL: speedup_codec_batch %.2fx below the %.1fx floor\n", cur.SpeedupCodecBatch, minCodec)
		failures++
	}
	return b.String(), failures
}

// gateStore renders the store old/new/delta table and counts gate
// failures. The resident bound is absolute (1% of flows), not
// baseline-relative: residency near zero makes percentage deltas
// meaningless.
func gateStore(base, cur *experiments.StoreBenchReport, maxRegress, minReduction, minCodec float64) (string, int) {
	out, failures := table([]row{
		{"replay/reduction", base.ReplayReduction, cur.ReplayReduction, "x", true},
		{"codec/replay", base.CodecReplaySpeedup, cur.CodecReplaySpeedup, "x", true},
		{"replay/records", float64(base.StoreReplayRecords), float64(cur.StoreReplayRecords), "rec", false},
		{"journal/records", float64(base.JournalRecords), float64(cur.JournalRecords), "rec", false},
		{"resident/sweep", float64(base.ResidentAfterSweep), float64(cur.ResidentAfterSweep), "exec", false},
		{"resident/recovery", float64(base.ResidentAfterRecovery), float64(cur.ResidentAfterRecovery), "exec", false},
		{"journal/scan", base.JournalScanMs, cur.JournalScanMs, "ms", false},
		{"store/open+recover", base.StoreOpenMs + base.RecoverMs, cur.StoreOpenMs + cur.RecoverMs, "ms", false},
	}, maxRegress)
	var b strings.Builder
	b.WriteString(out)
	if cur.ReplayReduction < minReduction {
		fmt.Fprintf(&b, "\nFAIL: replay reduction %.2fx below the %.1fx floor\n", cur.ReplayReduction, minReduction)
		failures++
	}
	if cur.CodecReplaySpeedup < minCodec {
		fmt.Fprintf(&b, "\nFAIL: codec replay speedup %.2fx below the %.1fx floor\n", cur.CodecReplaySpeedup, minCodec)
		failures++
	}
	residentMax := cur.Flows / 100
	if cur.ResidentAfterSweep > residentMax {
		fmt.Fprintf(&b, "\nFAIL: %d of %d flows still resident after passivation (bound: %d)\n",
			cur.ResidentAfterSweep, cur.Flows, residentMax)
		failures++
	}
	if cur.ResidentAfterRecovery > residentMax {
		fmt.Fprintf(&b, "\nFAIL: restart re-inflated %d of %d flows (bound: %d)\n",
			cur.ResidentAfterRecovery, cur.Flows, residentMax)
		failures++
	}
	if cur.ResurrectedOK != 1 {
		fmt.Fprintf(&b, "\nFAIL: sampled passivated flow did not resurrect after restart\n")
		failures++
	}
	return b.String(), failures
}

// gateShard renders the shard old/new/delta table and counts gate
// failures. Scaling ratios gate the usual ratio-first way; failover
// time gates against its own regression bound (it is bounded by the
// registry TTL, not machine speed, so -max-regress would be too tight),
// and the failover invariants are absolute.
func gateShard(base, cur *experiments.ShardBenchReport, maxRegress, minScaling, maxFailoverRegress float64) (string, int) {
	out, failures := table([]row{
		{"speedup/2peer", base.Speedup2, cur.Speedup2, "x", true},
		{"speedup/4peer", base.Speedup4, cur.Speedup4, "x", true},
		{"speedup/vs-funnel", base.SpeedupVsSingleOwner, cur.SpeedupVsSingleOwner, "x", true},
		{"rate/1peer", base.Rate1, cur.Rate1, "f/s", false},
		{"rate/4peer", base.Rate4, cur.Rate4, "f/s", false},
		{"rate/single-owner", base.RateSingleOwner, cur.RateSingleOwner, "f/s", false},
		{"failover/takeover", base.FailoverMs, cur.FailoverMs, "ms", false},
		{"failover/accepted", float64(base.AcceptedDuringFailover), float64(cur.AcceptedDuringFailover), "req", false},
	}, maxRegress)
	var b strings.Builder
	b.WriteString(out)
	if cur.Speedup4 < minScaling {
		fmt.Fprintf(&b, "\nFAIL: speedup_4peer %.2fx below the %.1fx floor\n", cur.Speedup4, minScaling)
		failures++
	}
	if base.FailoverMs > 0 && cur.FailoverMs > base.FailoverMs*(1+maxFailoverRegress) {
		fmt.Fprintf(&b, "\nFAIL: failover takeover %.0fms exceeds baseline %.0fms by more than %.0f%%\n",
			cur.FailoverMs, base.FailoverMs, maxFailoverRegress*100)
		failures++
	}
	if !cur.TakeoverOwned {
		fmt.Fprintf(&b, "\nFAIL: survivor never took over the dead owner's lease\n")
		failures++
	}
	if cur.FailoverSubmitErrors > 0 {
		fmt.Fprintf(&b, "\nFAIL: %d submissions errored during the failover window (any-peer submit must stay available)\n",
			cur.FailoverSubmitErrors)
		failures++
	}
	if cur.ReplayedFromGenesis > 0 {
		fmt.Fprintf(&b, "\nFAIL: %d of the dead owner's completed flows replayed from genesis on the survivor\n",
			cur.ReplayedFromGenesis)
		failures++
	}
	return b.String(), failures
}

// gateRepl renders the repl old/new/delta table and counts gate
// failures. Every check is absolute (or bounded against the baseline's
// takeover time): replication's claims are invariants, not speedups —
// "no overhead regression" is meaningless next to "no acknowledged
// record may be lost".
func gateRepl(base, cur *experiments.ReplBenchReport, maxOverhead, maxTakeoverRegress float64) (string, int) {
	out, failures := table([]row{
		{"rate/plain", base.RatePlain, cur.RatePlain, "f/s", false},
		{"rate/quorum", base.RateQuorum, cur.RateQuorum, "f/s", false},
		{"overhead/quorum", base.QuorumOverheadFrac * 100, cur.QuorumOverheadFrac * 100, "%", false},
		{"takeover/time", base.TakeoverMs, cur.TakeoverMs, "ms", false},
		{"takeover/acked", float64(base.AckedLiveFlows), float64(cur.AckedLiveFlows), "flow", false},
		{"takeover/promoted", float64(base.PromotedFlows), float64(cur.PromotedFlows), "flow", false},
		{"catchup/snapshots", float64(base.SnapshotsShipped), float64(cur.SnapshotsShipped), "snap", false},
	}, 0)
	var b strings.Builder
	b.WriteString(out)
	if cur.QuorumOverheadFrac > maxOverhead {
		fmt.Fprintf(&b, "\nFAIL: quorum submit overhead %.1f%% exceeds the %.0f%% bound\n",
			cur.QuorumOverheadFrac*100, maxOverhead*100)
		failures++
	}
	if cur.LostFlows > 0 {
		fmt.Fprintf(&b, "\nFAIL: %d of %d acknowledged live flows lost after promotion (must be 0)\n",
			cur.LostFlows, cur.AckedLiveFlows)
		failures++
	}
	if cur.AckedLiveFlows > 0 && cur.PromotedFlows == 0 {
		fmt.Fprintf(&b, "\nFAIL: follower never promoted its replica (%d acked live flows at the kill)\n",
			cur.AckedLiveFlows)
		failures++
	}
	if cur.SnapshotsShipped < 1 {
		fmt.Fprintf(&b, "\nFAIL: no catch-up snapshot shipped (the behind-follower heal path never ran)\n")
		failures++
	}
	if base.TakeoverMs > 0 && cur.TakeoverMs > base.TakeoverMs*(1+maxTakeoverRegress) {
		fmt.Fprintf(&b, "\nFAIL: takeover %.0fms exceeds baseline %.0fms by more than %.0f%%\n",
			cur.TakeoverMs, base.TakeoverMs, maxTakeoverRegress*100)
		failures++
	}
	return b.String(), failures
}

// gateTenant renders the tenant old/new/delta table and counts gate
// failures. Every check is absolute: isolation and quota fidelity are
// invariants of the scheduler, not machine-speed-dependent ratios.
func gateTenant(base, cur *loadgen.TenantReport, minIsolation float64) (string, int) {
	out, failures := table([]row{
		{"isolation/worst-1x", base.MinFairAttained, cur.MinFairAttained, "x", false},
		{"registry/tenants", float64(base.RegistryTenants), float64(cur.RegistryTenants), "ten", false},
		{"registry/bytes", base.RegistryBytesPerTenant, cur.RegistryBytesPerTenant, "B", false},
		{"flows/total", float64(base.TotalFlows), float64(cur.TotalFlows), "flow", false},
		{"quota/breach-hits", float64(base.BreachRejections), float64(cur.BreachRejections), "rej", false},
	}, 0)
	var b strings.Builder
	b.WriteString(out)
	if cur.MinFairAttained < minIsolation {
		fmt.Fprintf(&b, "\nFAIL: worst 1x tenant attained %.2f of fair share, below the %.2f floor (aggressor starvation)\n",
			cur.MinFairAttained, minIsolation)
		failures++
	}
	if cur.FalseRejections > 0 {
		fmt.Fprintf(&b, "\nFAIL: %d quota rejections in the steady phase (tenants had no limits — must be 0)\n",
			cur.FalseRejections)
		failures++
	}
	if cur.BreachRejections == 0 {
		fmt.Fprintf(&b, "\nFAIL: the positive-control quota breach drew no rejections (enforcement is dead)\n")
		failures++
	}
	if cur.RegistryTenants < 100000 {
		fmt.Fprintf(&b, "\nFAIL: registry measured at %d tenants, below the 100000 population floor\n",
			cur.RegistryTenants)
		failures++
	}
	return b.String(), failures
}

// gateVdata renders the vdata old/new/delta table and counts gate
// failures (docs/VDATA.md). The hit rate, durability and remote-hit
// accounting are absolute invariants; the two speedups get low
// absolute floors (elision and fleet reuse must actually pay) plus the
// shared ratio-regression check against the baseline.
func gateVdata(base, cur *loadgen.VdataReport, maxRegress, minHitRate, minWarmSpeedup, minRemoteSpeedup float64) (string, int) {
	out, failures := table([]row{
		{"elision/hit-rate", base.HitRate, cur.HitRate, "x", false},
		{"elision/warm-speedup", base.WarmSpeedup, cur.WarmSpeedup, "x", true},
		{"cross-peer/speedup", base.RemoteSpeedup, cur.RemoteSpeedup, "x", true},
		{"cross-peer/hits", float64(base.RemoteHits), float64(cur.RemoteHits), "hit", false},
		{"catalog/entries", float64(base.Entries), float64(cur.Entries), "ent", false},
	}, maxRegress)
	var b strings.Builder
	b.WriteString(out)
	if cur.HitRate < minHitRate {
		fmt.Fprintf(&b, "\nFAIL: warm-pass hit rate %.2f below the %.2f floor (memoization missed)\n",
			cur.HitRate, minHitRate)
		failures++
	}
	if cur.WarmSpeedup < minWarmSpeedup {
		fmt.Fprintf(&b, "\nFAIL: warm speedup %.2fx below the %.1fx floor (elision did not pay)\n",
			cur.WarmSpeedup, minWarmSpeedup)
		failures++
	}
	if cur.ReplayedEntries != cur.Entries {
		fmt.Fprintf(&b, "\nFAIL: %d of %d entries replayed after reopen (derivations must survive restart)\n",
			cur.ReplayedEntries, cur.Entries)
		failures++
	}
	if cur.RemoteHits < cur.Flows {
		fmt.Fprintf(&b, "\nFAIL: %d remote hits for %d flows (fleet reuse incomplete)\n",
			cur.RemoteHits, cur.Flows)
		failures++
	}
	if cur.RemoteSpeedup < minRemoteSpeedup {
		fmt.Fprintf(&b, "\nFAIL: cross-peer reuse %.2fx below the %.1fx floor (fetching lost to recomputing)\n",
			cur.RemoteSpeedup, minRemoteSpeedup)
		failures++
	}
	return b.String(), failures
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_wire.json", "committed wire baseline report")
	currentPath := flag.String("current", "", "fresh wire report to judge (enables the wire gate)")
	storeBaselinePath := flag.String("store-baseline", "BENCH_store.json", "committed store baseline report")
	storeCurrentPath := flag.String("store-current", "", "fresh store report to judge (enables the store gate)")
	shardBaselinePath := flag.String("shard-baseline", "BENCH_shard.json", "committed shard baseline report")
	shardCurrentPath := flag.String("shard-current", "", "fresh shard report to judge (enables the shard gate)")
	replBaselinePath := flag.String("repl-baseline", "BENCH_repl.json", "committed replication baseline report")
	replCurrentPath := flag.String("repl-current", "", "fresh replication report to judge (enables the repl gate)")
	tenantBaselinePath := flag.String("tenant-baseline", "BENCH_tenant.json", "committed tenant baseline report")
	tenantCurrentPath := flag.String("tenant-current", "", "fresh tenant report to judge (enables the tenant gate)")
	maxRegress := flag.Float64("max-regress", 0.20, "max allowed fractional drop of a gated ratio vs baseline")
	minSpeedup := flag.Float64("min-speedup", 3.0, "absolute floor for speedup_pipelined")
	minReduction := flag.Float64("min-reduction", 10.0, "absolute floor for the store's restart replay reduction")
	minCodec := flag.Float64("min-codec-speedup", 5.0, "absolute floor for the binary codec's speedup ratios (wire async/batch, store replay)")
	minShardScaling := flag.Float64("min-shard-scaling", 2.0, "absolute floor for any-peer throughput scaling at 4 sharded peers (speedup_4peer)")
	maxFailoverRegress := flag.Float64("max-failover-regress", 1.0, "max allowed fractional growth of the failover takeover time vs baseline")
	maxReplOverhead := flag.Float64("max-repl-overhead", 0.15, "absolute bound on the quorum-ack submit overhead fraction")
	maxTakeoverRegress := flag.Float64("max-takeover-regress", 1.0, "max allowed fractional growth of the replication takeover time vs baseline")
	minIsolation := flag.Float64("min-isolation", 0.6, "absolute floor for the worst 1x tenant's attained fraction of its fair share under a 10x aggressor")
	vdataBaselinePath := flag.String("vdata-baseline", "BENCH_vdata.json", "committed vdata baseline report")
	vdataCurrentPath := flag.String("vdata-current", "", "fresh vdata report to judge (enables the vdata gate)")
	minVdataHitRate := flag.Float64("min-vdata-hitrate", 0.9, "absolute floor for the warm-pass derivation hit rate")
	minVdataSpeedup := flag.Float64("min-vdata-speedup", 2.0, "absolute floor for the warm-pass elision speedup")
	minVdataRemote := flag.Float64("min-vdata-remote-speedup", 1.2, "absolute floor for the cross-peer reuse speedup over cold execution")
	flag.Parse()
	if *currentPath == "" && *storeCurrentPath == "" && *shardCurrentPath == "" && *replCurrentPath == "" && *tenantCurrentPath == "" && *vdataCurrentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: at least one of -current / -store-current / -shard-current / -repl-current / -tenant-current / -vdata-current is required")
		os.Exit(2)
	}
	failures := 0
	if *currentPath != "" {
		base, err := load(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: baseline: %v\n", err)
			os.Exit(2)
		}
		cur, err := load(*currentPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: current: %v\n", err)
			os.Exit(2)
		}
		out, n := gate(base, cur, *maxRegress, *minSpeedup, *minCodec)
		fmt.Printf("== wire (%s) ==\n%s", *currentPath, out)
		if n == 0 {
			fmt.Printf("\nwire: OK (pipelined %.2fx >= %.1fx, ratios within %.0f%% of baseline)\n",
				cur.SpeedupPipelined, *minSpeedup, *maxRegress*100)
		}
		failures += n
	}
	if *storeCurrentPath != "" {
		base, err := loadStore(*storeBaselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: store baseline: %v\n", err)
			os.Exit(2)
		}
		cur, err := loadStore(*storeCurrentPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: store current: %v\n", err)
			os.Exit(2)
		}
		if *currentPath != "" {
			fmt.Println()
		}
		out, n := gateStore(base, cur, *maxRegress, *minReduction, *minCodec)
		fmt.Printf("== store (%s) ==\n%s", *storeCurrentPath, out)
		if n == 0 {
			fmt.Printf("\nstore: OK (reduction %.2fx >= %.1fx, resident %d/%d, within %.0f%% of baseline)\n",
				cur.ReplayReduction, *minReduction, cur.ResidentAfterSweep, cur.Flows, *maxRegress*100)
		}
		failures += n
	}
	if *shardCurrentPath != "" {
		base, err := loadShard(*shardBaselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: shard baseline: %v\n", err)
			os.Exit(2)
		}
		cur, err := loadShard(*shardCurrentPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: shard current: %v\n", err)
			os.Exit(2)
		}
		if *currentPath != "" || *storeCurrentPath != "" {
			fmt.Println()
		}
		out, n := gateShard(base, cur, *maxRegress, *minShardScaling, *maxFailoverRegress)
		fmt.Printf("== shard (%s) ==\n%s", *shardCurrentPath, out)
		if n == 0 {
			fmt.Printf("\nshard: OK (4-peer scaling %.2fx >= %.1fx, failover %.0fms, accepted %d, replayed 0)\n",
				cur.Speedup4, *minShardScaling, cur.FailoverMs, cur.AcceptedDuringFailover)
		}
		failures += n
	}
	if *replCurrentPath != "" {
		base, err := loadRepl(*replBaselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: repl baseline: %v\n", err)
			os.Exit(2)
		}
		cur, err := loadRepl(*replCurrentPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: repl current: %v\n", err)
			os.Exit(2)
		}
		if *currentPath != "" || *storeCurrentPath != "" || *shardCurrentPath != "" {
			fmt.Println()
		}
		out, n := gateRepl(base, cur, *maxReplOverhead, *maxTakeoverRegress)
		fmt.Printf("== repl (%s) ==\n%s", *replCurrentPath, out)
		if n == 0 {
			fmt.Printf("\nrepl: OK (overhead %.1f%% <= %.0f%%, takeover %.0fms, acked %d, lost 0, snapshots %d)\n",
				cur.QuorumOverheadFrac*100, *maxReplOverhead*100, cur.TakeoverMs,
				cur.AckedLiveFlows, cur.SnapshotsShipped)
		}
		failures += n
	}
	if *tenantCurrentPath != "" {
		base, err := loadTenant(*tenantBaselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: tenant baseline: %v\n", err)
			os.Exit(2)
		}
		cur, err := loadTenant(*tenantCurrentPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: tenant current: %v\n", err)
			os.Exit(2)
		}
		if *currentPath != "" || *storeCurrentPath != "" || *shardCurrentPath != "" || *replCurrentPath != "" {
			fmt.Println()
		}
		out, n := gateTenant(base, cur, *minIsolation)
		fmt.Printf("== tenant (%s) ==\n%s", *tenantCurrentPath, out)
		if n == 0 {
			fmt.Printf("\ntenant: OK (worst 1x attained %.2f >= %.2f, false rejections 0, breach %d, registry %d)\n",
				cur.MinFairAttained, *minIsolation, cur.BreachRejections, cur.RegistryTenants)
		}
		failures += n
	}
	if *vdataCurrentPath != "" {
		base, err := loadVdata(*vdataBaselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: vdata baseline: %v\n", err)
			os.Exit(2)
		}
		cur, err := loadVdata(*vdataCurrentPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: vdata current: %v\n", err)
			os.Exit(2)
		}
		if *currentPath != "" || *storeCurrentPath != "" || *shardCurrentPath != "" || *replCurrentPath != "" || *tenantCurrentPath != "" {
			fmt.Println()
		}
		out, n := gateVdata(base, cur, *maxRegress, *minVdataHitRate, *minVdataSpeedup, *minVdataRemote)
		fmt.Printf("== vdata (%s) ==\n%s", *vdataCurrentPath, out)
		if n == 0 {
			fmt.Printf("\nvdata: OK (hit rate %.2f >= %.2f, warm %.1fx, replayed %d/%d, remote %.1fx with %d hits)\n",
				cur.HitRate, *minVdataHitRate, cur.WarmSpeedup,
				cur.ReplayedEntries, cur.Entries, cur.RemoteSpeedup, cur.RemoteHits)
		}
		failures += n
	}
	if failures > 0 {
		fmt.Printf("\nbenchgate: %d gate failure(s) (max-regress %.0f%%)\n", failures, *maxRegress*100)
		os.Exit(1)
	}
	fmt.Println("\nbenchgate: OK")
}
