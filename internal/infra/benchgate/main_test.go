package main

import (
	"strings"
	"testing"

	"datagridflow/internal/loadgen"
)

func report(pipelined, batch float64) *loadgen.Report {
	return &loadgen.Report{
		Serial:           loadgen.ModeResult{Mode: "serial", RPS: 400},
		Pipelined:        loadgen.ModeResult{Mode: "pipelined", RPS: 400 * pipelined, P99ms: 5},
		AsyncSerial:      loadgen.ModeResult{Mode: "async-serial", RPS: 7000},
		Batch:            loadgen.ModeResult{Mode: "batch", RPS: 7000 * batch},
		SpeedupPipelined: pipelined,
		SpeedupBatch:     batch,
	}
}

func TestGatePasses(t *testing.T) {
	table, failures := gate(report(6.0, 1.1), report(5.8, 1.05), 0.20, 3.0)
	if failures != 0 {
		t.Fatalf("clean run failed the gate:\n%s", table)
	}
	if !strings.Contains(table, "speedup/pipelined") {
		t.Errorf("table missing gated row:\n%s", table)
	}
}

func TestGateCatchesRatioRegression(t *testing.T) {
	// Pipelined ratio drops 40% — beyond the 20% allowance.
	table, failures := gate(report(6.0, 1.1), report(3.6, 1.1), 0.20, 3.0)
	if failures == 0 {
		t.Fatalf("40%% ratio drop passed the gate:\n%s", table)
	}
	if !strings.Contains(table, "REGRESSION") {
		t.Errorf("table does not flag the regression:\n%s", table)
	}
}

func TestGateEnforcesSpeedupFloor(t *testing.T) {
	// Within 20% of a weak baseline but below the absolute 3x floor.
	table, failures := gate(report(3.2, 1.1), report(2.7, 1.1), 0.20, 3.0)
	if failures == 0 {
		t.Fatalf("sub-floor speedup passed the gate:\n%s", table)
	}
	if !strings.Contains(table, "floor") {
		t.Errorf("table does not report the floor violation:\n%s", table)
	}
}

func TestGateIgnoresAbsoluteRPSSwings(t *testing.T) {
	// Same ratios on a machine 10x slower: absolute RPS collapses but
	// the gate — which judges ratios only — must pass.
	slow := report(6.0, 1.1)
	slow.Serial.RPS = 40
	slow.Pipelined.RPS = 240
	slow.Batch.RPS = 700
	table, failures := gate(report(6.0, 1.1), slow, 0.20, 3.0)
	if failures != 0 {
		t.Fatalf("absolute RPS drop failed the ratio gate:\n%s", table)
	}
}
