package main

import (
	"strings"
	"testing"

	"datagridflow/internal/experiments"
	"datagridflow/internal/loadgen"
)

func report(pipelined, batch float64) *loadgen.Report {
	return &loadgen.Report{
		Serial:            loadgen.ModeResult{Mode: "serial", RPS: 400},
		Pipelined:         loadgen.ModeResult{Mode: "pipelined", RPS: 400 * pipelined, P99ms: 5},
		AsyncSerial:       loadgen.ModeResult{Mode: "async-serial", RPS: 7000},
		Batch:             loadgen.ModeResult{Mode: "batch", RPS: 7000 * batch},
		AsyncCodecJSON:    loadgen.ModeResult{Mode: "async-codec-json", RPS: 300},
		AsyncCodecBin:     loadgen.ModeResult{Mode: "async-codec-bin", RPS: 3000},
		BatchCodecJSON:    loadgen.ModeResult{Mode: "batch-codec-json", RPS: 400},
		BatchCodecBin:     loadgen.ModeResult{Mode: "batch-codec-bin", RPS: 4000},
		SpeedupPipelined:  pipelined,
		SpeedupBatch:      batch,
		SpeedupCodecAsync: 10.0,
		SpeedupCodecBatch: 10.0,
	}
}

func storeReport(reduction, codecSpeedup float64) *experiments.StoreBenchReport {
	return &experiments.StoreBenchReport{
		Flows:                 4000,
		JournalRecords:        36000,
		StoreReplayRecords:    1200,
		ReplayReduction:       reduction,
		ResidentAfterSweep:    10,
		ResidentAfterRecovery: 10,
		ResurrectedOK:         1,
		CodecReplayRecords:    4000,
		CodecJSONOpenMs:       260,
		CodecBinOpenMs:        260 / codecSpeedup,
		CodecReplaySpeedup:    codecSpeedup,
	}
}

func TestGatePasses(t *testing.T) {
	table, failures := gate(report(6.0, 1.1), report(5.8, 1.05), 0.20, 3.0, 5.0)
	if failures != 0 {
		t.Fatalf("clean run failed the gate:\n%s", table)
	}
	if !strings.Contains(table, "speedup/pipelined") {
		t.Errorf("table missing gated row:\n%s", table)
	}
	if !strings.Contains(table, "speedup/codec-async") || !strings.Contains(table, "speedup/codec-batch") {
		t.Errorf("table missing codec rows:\n%s", table)
	}
}

func TestGateCatchesRatioRegression(t *testing.T) {
	// Pipelined ratio drops 40% — beyond the 20% allowance.
	table, failures := gate(report(6.0, 1.1), report(3.6, 1.1), 0.20, 3.0, 5.0)
	if failures == 0 {
		t.Fatalf("40%% ratio drop passed the gate:\n%s", table)
	}
	if !strings.Contains(table, "REGRESSION") {
		t.Errorf("table does not flag the regression:\n%s", table)
	}
}

func TestGateEnforcesSpeedupFloor(t *testing.T) {
	// Within 20% of a weak baseline but below the absolute 3x floor.
	table, failures := gate(report(3.2, 1.1), report(2.7, 1.1), 0.20, 3.0, 5.0)
	if failures == 0 {
		t.Fatalf("sub-floor speedup passed the gate:\n%s", table)
	}
	if !strings.Contains(table, "floor") {
		t.Errorf("table does not report the floor violation:\n%s", table)
	}
}

func TestGateCatchesCodecRegression(t *testing.T) {
	// Codec batch ratio collapses from 10x to 6x: still above the 5x
	// floor, but a 40% drop vs the committed baseline must fail.
	cur := report(6.0, 1.1)
	cur.SpeedupCodecBatch = 6.0
	table, failures := gate(report(6.0, 1.1), cur, 0.20, 3.0, 5.0)
	if failures == 0 {
		t.Fatalf("40%% codec ratio drop passed the gate:\n%s", table)
	}
	if !strings.Contains(table, "REGRESSION") {
		t.Errorf("table does not flag the codec regression:\n%s", table)
	}
}

func TestGateEnforcesCodecFloor(t *testing.T) {
	// Both runs report a weak codec ratio, so there is no relative
	// regression — the absolute 5x floor has to catch it.
	base := report(6.0, 1.1)
	base.SpeedupCodecAsync = 4.5
	cur := report(6.0, 1.1)
	cur.SpeedupCodecAsync = 4.4
	table, failures := gate(base, cur, 0.20, 3.0, 5.0)
	if failures == 0 {
		t.Fatalf("sub-floor codec speedup passed the gate:\n%s", table)
	}
	if !strings.Contains(table, "speedup_codec_async") {
		t.Errorf("table does not report the codec floor violation:\n%s", table)
	}
}

func TestGateIgnoresAbsoluteRPSSwings(t *testing.T) {
	// Same ratios on a machine 10x slower: absolute RPS collapses but
	// the gate — which judges ratios only — must pass.
	slow := report(6.0, 1.1)
	slow.Serial.RPS = 40
	slow.Pipelined.RPS = 240
	slow.Batch.RPS = 700
	slow.AsyncCodecBin.RPS = 300
	slow.BatchCodecBin.RPS = 400
	table, failures := gate(report(6.0, 1.1), slow, 0.20, 3.0, 5.0)
	if failures != 0 {
		t.Fatalf("absolute RPS drop failed the ratio gate:\n%s", table)
	}
}

func TestStoreGatePasses(t *testing.T) {
	table, failures := gateStore(storeReport(30, 8), storeReport(29, 7.8), 0.20, 10.0, 5.0)
	if failures != 0 {
		t.Fatalf("clean store run failed the gate:\n%s", table)
	}
	if !strings.Contains(table, "codec/replay") {
		t.Errorf("table missing codec replay row:\n%s", table)
	}
}

func TestStoreGateEnforcesCodecFloor(t *testing.T) {
	table, failures := gateStore(storeReport(30, 4.5), storeReport(30, 4.5), 0.20, 10.0, 5.0)
	if failures == 0 {
		t.Fatalf("sub-floor codec replay speedup passed the gate:\n%s", table)
	}
	if !strings.Contains(table, "codec replay speedup") {
		t.Errorf("table does not report the codec floor violation:\n%s", table)
	}
}

func tenantReport(minFair float64, falseRej, breach, tenants int) *loadgen.TenantReport {
	return &loadgen.TenantReport{
		RegistryTenants:        tenants,
		RegistryBytesPerTenant: 130,
		TotalFlows:             800,
		MinFairAttained:        minFair,
		FalseRejections:        falseRej,
		BreachRejections:       breach,
		Lanes: []loadgen.TenantLane{
			{Name: "aggressor", Weight: 10, Attained: 1.0},
			{Name: "fair0", Weight: 1, Attained: minFair},
		},
	}
}

func TestTenantGatePasses(t *testing.T) {
	table, failures := gateTenant(tenantReport(0.95, 0, 20, 120000), tenantReport(0.92, 0, 18, 120000), 0.6)
	if failures != 0 {
		t.Fatalf("clean tenant run failed the gate:\n%s", table)
	}
	if !strings.Contains(table, "isolation/worst-1x") {
		t.Errorf("table missing isolation row:\n%s", table)
	}
}

func TestTenantGateEnforcesIsolationFloor(t *testing.T) {
	table, failures := gateTenant(tenantReport(0.95, 0, 20, 120000), tenantReport(0.4, 0, 20, 120000), 0.6)
	if failures == 0 {
		t.Fatalf("starved 1x tenant passed the gate:\n%s", table)
	}
	if !strings.Contains(table, "starvation") {
		t.Errorf("table does not report the starvation:\n%s", table)
	}
}

func TestTenantGateCatchesQuotaDefects(t *testing.T) {
	// A false rejection in the steady phase and a dead positive control
	// must each fail independently.
	if table, failures := gateTenant(tenantReport(0.95, 0, 20, 120000), tenantReport(0.95, 3, 20, 120000), 0.6); failures == 0 {
		t.Fatalf("false rejections passed the gate:\n%s", table)
	}
	if table, failures := gateTenant(tenantReport(0.95, 0, 20, 120000), tenantReport(0.95, 0, 0, 120000), 0.6); failures == 0 {
		t.Fatalf("dead quota enforcement passed the gate:\n%s", table)
	}
	if table, failures := gateTenant(tenantReport(0.95, 0, 20, 120000), tenantReport(0.95, 0, 20, 50000), 0.6); failures == 0 {
		t.Fatalf("under-scale registry passed the gate:\n%s", table)
	}
}

func vdataReport(hitRate, warm, remote float64, entries, replayed, hits int) *loadgen.VdataReport {
	return &loadgen.VdataReport{
		Flows: entries, StepLatency: "20ms",
		ColdMs: 640, WarmMs: 640 / warm, HitRate: hitRate, WarmSpeedup: warm,
		Entries: entries, ReplayedEntries: replayed,
		RemoteColdMs: 640, RemoteMs: 640 / remote, RemoteHits: hits, RemoteSpeedup: remote,
	}
}

func TestVdataGatePasses(t *testing.T) {
	table, failures := gateVdata(vdataReport(1, 400, 150, 32, 32, 32),
		vdataReport(0.97, 380, 140, 32, 32, 32), 0.20, 0.9, 2.0, 1.2)
	if failures != 0 {
		t.Fatalf("clean vdata run failed the gate:\n%s", table)
	}
	if !strings.Contains(table, "elision/warm-speedup") {
		t.Errorf("table missing warm-speedup row:\n%s", table)
	}
}

func TestVdataGateEnforcesFloors(t *testing.T) {
	base := vdataReport(1, 400, 150, 32, 32, 32)
	// Each claim must fail independently: missed hits, unpaid elision,
	// lost durability, incomplete fleet reuse, reuse slower than cold.
	if table, failures := gateVdata(base, vdataReport(0.5, 400, 150, 32, 32, 32), 0.20, 0.9, 2.0, 1.2); failures == 0 {
		t.Fatalf("sub-floor hit rate passed the gate:\n%s", table)
	}
	if table, failures := gateVdata(base, vdataReport(1, 1.5, 150, 32, 32, 32), 0.20, 0.9, 2.0, 1.2); failures == 0 {
		t.Fatalf("sub-floor warm speedup passed the gate:\n%s", table)
	}
	if table, failures := gateVdata(base, vdataReport(1, 400, 150, 32, 20, 32), 0.20, 0.9, 2.0, 1.2); failures == 0 {
		t.Fatalf("lost replay entries passed the gate:\n%s", table)
	}
	if table, failures := gateVdata(base, vdataReport(1, 400, 150, 32, 32, 5), 0.20, 0.9, 2.0, 1.2); failures == 0 {
		t.Fatalf("incomplete remote reuse passed the gate:\n%s", table)
	}
	if table, failures := gateVdata(base, vdataReport(1, 400, 0.8, 32, 32, 32), 0.20, 0.9, 2.0, 1.2); failures == 0 {
		t.Fatalf("reuse slower than cold passed the gate:\n%s", table)
	}
}

func TestVdataGateCatchesRatioRegression(t *testing.T) {
	table, failures := gateVdata(vdataReport(1, 400, 150, 32, 32, 32),
		vdataReport(1, 100, 150, 32, 32, 32), 0.20, 0.9, 2.0, 1.2)
	if failures == 0 {
		t.Fatalf("75%% warm-speedup drop passed the gate:\n%s", table)
	}
	if !strings.Contains(table, "REGRESSION") {
		t.Errorf("table does not flag the regression:\n%s", table)
	}
}
