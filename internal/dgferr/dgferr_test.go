package dgferr

import (
	"errors"
	"fmt"
	"testing"
)

func TestClassOfAndRetryable(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		class     *Class
		retryable bool
	}{
		{"nil", nil, nil, false},
		{"unclassified", errors.New("boom"), nil, true},
		{"resource-down", fmt.Errorf("op: %w", ErrResourceDown), ErrResourceDown, true},
		{"timeout", fmt.Errorf("op: %w", ErrTimeout), ErrTimeout, true},
		{"not-found", fmt.Errorf("op: %w", ErrNotFound), ErrNotFound, false},
		{"exists", fmt.Errorf("op: %w", ErrExists), ErrExists, false},
		{"permission", fmt.Errorf("op: %w", ErrPermission), ErrPermission, false},
		{"capacity", fmt.Errorf("op: %w", ErrCapacity), ErrCapacity, false},
		{"invalid", fmt.Errorf("op: %w", ErrInvalid), ErrInvalid, false},
		{"cancelled", fmt.Errorf("op: %w", ErrCancelled), ErrCancelled, false},
		{"protocol", fmt.Errorf("op: %w", ErrProtocol), ErrProtocol, false},
		{"exhausted", fmt.Errorf("op: %w", ErrRetryExhausted), ErrRetryExhausted, false},
		{"marked", Mark(ErrResourceDown, "vfs: offline"), ErrResourceDown, true},
		{"deep wrap", fmt.Errorf("a: %w", fmt.Errorf("b: %w", ErrTimeout)), ErrTimeout, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ClassOf(tc.err); got != tc.class {
				t.Errorf("ClassOf = %v, want %v", got, tc.class)
			}
			if got := Retryable(tc.err); got != tc.retryable {
				t.Errorf("Retryable = %v, want %v", got, tc.retryable)
			}
		})
	}
}

func TestClassPriority(t *testing.T) {
	// A retry-exhausted error wrapping the transient cause must classify
	// (and encode) as retry-exhausted, not as the inner class.
	err := fmt.Errorf("%w: step s after 3 attempts: %w", ErrRetryExhausted,
		fmt.Errorf("ingest: %w", ErrResourceDown))
	if !errors.Is(err, ErrRetryExhausted) || !errors.Is(err, ErrResourceDown) {
		t.Fatalf("double wrap lost a class: %v", err)
	}
	if got := ClassOf(err); got != ErrRetryExhausted {
		t.Errorf("ClassOf = %v, want ErrRetryExhausted", got)
	}
	if Retryable(err) {
		t.Errorf("exhausted error is retryable")
	}
}

func TestMark(t *testing.T) {
	sentinel := Mark(ErrResourceDown, "vfs: resource offline")
	wrapped := fmt.Errorf("ingest f1: %w", sentinel)
	if !errors.Is(wrapped, sentinel) {
		t.Errorf("identity comparison against the package sentinel failed")
	}
	if !errors.Is(wrapped, ErrResourceDown) {
		t.Errorf("class comparison failed")
	}
	if sentinel.Error() != "vfs: resource offline" {
		t.Errorf("Error() = %q", sentinel.Error())
	}
	var cls *Class
	if !errors.As(wrapped, &cls) || cls != ErrResourceDown {
		t.Errorf("errors.As = %v", cls)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, c := range classes {
		err := fmt.Errorf("something failed: %w", c)
		s := Encode(err)
		want := "dgferr:" + c.Code() + ": " + err.Error()
		if s != want {
			t.Errorf("Encode(%s) = %q, want %q", c.Code(), s, want)
		}
		back := Decode(s)
		if !errors.Is(back, c) {
			t.Errorf("Decode(%q) lost class %s", s, c.Code())
		}
		if Retryable(back) != Retryable(err) {
			t.Errorf("retryability changed over the wire for %s", c.Code())
		}
	}
}

func TestEncodeDecodeEdgeCases(t *testing.T) {
	if Encode(nil) != "" {
		t.Errorf("Encode(nil) = %q", Encode(nil))
	}
	if Decode("") != nil {
		t.Errorf("Decode(\"\") != nil")
	}
	// Unclassified errors pass through as plain strings.
	plain := errors.New("just text")
	if got := Encode(plain); got != "just text" {
		t.Errorf("Encode(plain) = %q", got)
	}
	back := Decode("just text")
	if back == nil || back.Error() != "just text" || ClassOf(back) != nil {
		t.Errorf("Decode(plain) = %v", back)
	}
	// An unknown code degrades to an opaque error, not a panic.
	odd := Decode("dgferr:future-class: something")
	if odd == nil || ClassOf(odd) != nil {
		t.Errorf("Decode(unknown code) = %v", odd)
	}
}
