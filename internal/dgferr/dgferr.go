// Package dgferr defines the public error taxonomy of the datagridflow
// reproduction. Every component (namespace, vfs, dgms, matrix, wire)
// classifies its failures against the sentinel classes here, so callers
// program against errors.Is(err, dgferr.ErrResourceDown) instead of
// matching strings — and so the retry machinery can distinguish
// transient faults (worth retrying) from permanent ones (fail fast).
//
// The taxonomy survives the wire: Encode prefixes an error string with a
// stable class code, and Decode on the receiving side rebuilds an error
// for which errors.Is against the same sentinel still holds. The root
// package re-exports every sentinel (datagridflow.ErrNotFound, ...).
package dgferr

import (
	"errors"
	"strings"
)

// Class is an error class sentinel. It compares by identity (errors.Is)
// and carries the stable wire code for the class.
type Class struct {
	code string
	msg  string
}

// Error implements error.
func (c *Class) Error() string { return c.msg }

// Code returns the stable wire token for the class ("not-found", ...).
func (c *Class) Code() string { return c.code }

// The error classes. Transient classes (ErrResourceDown, ErrTimeout) are
// retryable; the rest are permanent and fail fast under a retry policy.
var (
	// ErrRetryExhausted marks a step or request that failed after its
	// retry budget was spent. It wraps the final attempt's error.
	ErrRetryExhausted = &Class{"retry-exhausted", "retries exhausted"}
	// ErrProtocol marks a wire protocol version or framing mismatch.
	ErrProtocol = &Class{"protocol", "protocol mismatch"}
	// ErrPermission marks an operation denied by ACLs or vetoed.
	ErrPermission = &Class{"permission", "permission denied"}
	// ErrNotFound marks a missing path, object, resource or execution.
	ErrNotFound = &Class{"not-found", "not found"}
	// ErrExists marks a collision with an existing entry or replica.
	ErrExists = &Class{"exists", "already exists"}
	// ErrCapacity marks a resource that is full.
	ErrCapacity = &Class{"capacity", "capacity exceeded"}
	// ErrInvalid marks a malformed document, path or argument.
	ErrInvalid = &Class{"invalid", "invalid"}
	// ErrCancelled marks an execution stopped by Cancel or a context.
	ErrCancelled = &Class{"cancelled", "cancelled"}
	// ErrTimeout marks a step or request that exceeded its deadline.
	// Transient: the operation may succeed on a retry.
	ErrTimeout = &Class{"timeout", "timed out"}
	// ErrResourceDown marks a storage resource, peer or link that is
	// offline or flaking. Transient: retry policies wait it out.
	ErrResourceDown = &Class{"resource-down", "resource unavailable"}
	// ErrAuth marks a missing, malformed, expired or forged tenant
	// token. Permanent: retrying with the same credentials cannot help.
	ErrAuth = &Class{"auth", "authentication failed"}
	// ErrQuota marks a tenant resource bound exceeded (flows in flight,
	// store bytes, delegation slots, submit rate). Permanent for retry
	// purposes: the caller must shed load or wait out its rate window,
	// not hammer the same request.
	ErrQuota = &Class{"quota", "quota exceeded"}
)

// classes lists every sentinel in Encode priority order: when an error
// chain carries several classes (ErrRetryExhausted wrapping
// ErrResourceDown), the first match here becomes the wire code.
var classes = []*Class{
	ErrRetryExhausted, ErrProtocol, ErrAuth, ErrQuota, ErrPermission,
	ErrNotFound, ErrExists, ErrCapacity, ErrInvalid, ErrCancelled,
	ErrTimeout, ErrResourceDown,
}

// fatal marks the classes a retry policy must not burn attempts on.
var fatal = map[*Class]bool{
	ErrRetryExhausted: true, ErrProtocol: true, ErrAuth: true,
	ErrQuota: true, ErrPermission: true, ErrNotFound: true,
	ErrExists: true, ErrCapacity: true, ErrInvalid: true,
	ErrCancelled: true,
}

// ClassOf returns the highest-priority class in err's chain, or nil.
func ClassOf(err error) *Class {
	if err == nil {
		return nil
	}
	for _, c := range classes {
		if errors.Is(err, c) {
			return c
		}
	}
	return nil
}

// Retryable reports whether a retry policy should re-attempt after err.
// Transient classes (ErrResourceDown, ErrTimeout) are retryable;
// permanent classes are not; unclassified errors default to retryable —
// an unknown failure is assumed transient, matching the engine's
// historical behaviour for user-defined operations.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if c := ClassOf(err); c != nil {
		return !fatal[c]
	}
	return true
}

// marked is an error bound to a class: Error() is the message alone,
// Unwrap exposes the class for errors.Is/As.
type marked struct {
	class *Class
	msg   string
}

func (m *marked) Error() string { return m.msg }
func (m *marked) Unwrap() error { return m.class }

// Mark builds a sentinel error belonging to a class. Packages use it for
// their own sentinels — vfs.ErrOffline = dgferr.Mark(ErrResourceDown,
// "vfs: resource offline") — so identity comparison against the package
// sentinel and class comparison against the taxonomy both work.
func Mark(class *Class, msg string) error { return &marked{class: class, msg: msg} }

// wirePrefix starts every encoded error string. The full format is
// "dgferr:<code>: <message>".
const wirePrefix = "dgferr:"

// Encode renders err for wire transport, prefixing the message with the
// chain's class code so the far side can rebuild a typed error.
// Unclassified errors pass through as their plain message.
func Encode(err error) string {
	if err == nil {
		return ""
	}
	if c := ClassOf(err); c != nil {
		return wirePrefix + c.code + ": " + err.Error()
	}
	return err.Error()
}

// Decode parses a wire error string back into an error. Encoded strings
// yield an error satisfying errors.Is against the encoded class; plain
// strings yield an opaque error. Empty input yields nil.
func Decode(s string) error {
	if s == "" {
		return nil
	}
	if rest, ok := strings.CutPrefix(s, wirePrefix); ok {
		if code, msg, ok := strings.Cut(rest, ": "); ok {
			for _, c := range classes {
				if c.code == code {
					return &marked{class: c, msg: msg}
				}
			}
		}
	}
	return errors.New(s)
}
