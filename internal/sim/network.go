package sim

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Link describes one direction of a network path between two domains.
type Link struct {
	// Bandwidth in bytes per second. Zero means the link is unusable.
	Bandwidth float64
	// Latency is the fixed per-transfer round-trip setup cost.
	Latency time.Duration
}

// Network models the wide-area links between grid administrative domains.
// It substitutes for the real WAN between sites (SDSC, CERN, CCLRC, ...):
// transfer durations are computed from per-pair bandwidth/latency, and all
// traffic is metered so experiments can report bytes moved per link.
//
// Lookups fall back from the specific pair to the network default, so a
// sparse configuration ("everything is 10 MB/s except the CERN→tier1
// trunks") stays small.
type Network struct {
	mu      sync.RWMutex
	links   map[string]Link // key: src + "→" + dst
	def     Link
	traffic map[string]int64 // bytes moved per directed pair
}

// DefaultBandwidth is the fallback link speed: 10 MB/s, a realistic
// 2005-era inter-site rate.
const DefaultBandwidth = 10 << 20

// NewNetwork returns a network where every pair uses the default link
// (10 MB/s, 50 ms) until overridden with SetLink.
func NewNetwork() *Network {
	return &Network{
		links:   make(map[string]Link),
		def:     Link{Bandwidth: DefaultBandwidth, Latency: 50 * time.Millisecond},
		traffic: make(map[string]int64),
	}
}

func pairKey(src, dst string) string { return src + "\x00" + dst }

// SetDefault replaces the fallback link used for unconfigured pairs.
func (n *Network) SetDefault(l Link) {
	n.mu.Lock()
	n.def = l
	n.mu.Unlock()
}

// SetLink configures the directed link from src to dst.
func (n *Network) SetLink(src, dst string, l Link) {
	n.mu.Lock()
	n.links[pairKey(src, dst)] = l
	n.mu.Unlock()
}

// SetSymmetric configures both directions between a and b.
func (n *Network) SetSymmetric(a, b string, l Link) {
	n.SetLink(a, b, l)
	n.SetLink(b, a, l)
}

// LinkBetween returns the effective link from src to dst. Transfers within
// one domain use an implicit LAN link (1 GB/s, 1 ms).
func (n *Network) LinkBetween(src, dst string) Link {
	if src == dst {
		return Link{Bandwidth: 1 << 30, Latency: time.Millisecond}
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	if l, ok := n.links[pairKey(src, dst)]; ok {
		return l
	}
	return n.def
}

// TransferTime returns the simulated duration of moving `bytes` from src
// to dst, or an error if no usable link exists.
func (n *Network) TransferTime(src, dst string, bytes int64) (time.Duration, error) {
	l := n.LinkBetween(src, dst)
	if l.Bandwidth <= 0 {
		return 0, fmt.Errorf("sim: no usable link %s→%s", src, dst)
	}
	secs := float64(bytes) / l.Bandwidth
	return l.Latency + time.Duration(secs*float64(time.Second)), nil
}

// RecordTransfer charges `bytes` of traffic to the src→dst pair and
// returns the simulated transfer duration.
func (n *Network) RecordTransfer(src, dst string, bytes int64) (time.Duration, error) {
	d, err := n.TransferTime(src, dst, bytes)
	if err != nil {
		return 0, err
	}
	n.mu.Lock()
	n.traffic[pairKey(src, dst)] += bytes
	n.mu.Unlock()
	return d, nil
}

// Traffic returns total bytes recorded from src to dst.
func (n *Network) Traffic(src, dst string) int64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.traffic[pairKey(src, dst)]
}

// TotalTraffic returns the total bytes recorded across all pairs.
func (n *Network) TotalTraffic() int64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var sum int64
	for _, b := range n.traffic {
		sum += b
	}
	return sum
}

// TrafficReport lists per-pair traffic sorted by descending bytes; ties
// break on the pair name so output is deterministic.
func (n *Network) TrafficReport() []PairTraffic {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]PairTraffic, 0, len(n.traffic))
	for k, b := range n.traffic {
		var src, dst string
		for i := 0; i < len(k); i++ {
			if k[i] == 0 {
				src, dst = k[:i], k[i+1:]
				break
			}
		}
		out = append(out, PairTraffic{Src: src, Dst: dst, Bytes: b})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// Reset clears the traffic meters (links stay configured).
func (n *Network) Reset() {
	n.mu.Lock()
	n.traffic = make(map[string]int64)
	n.mu.Unlock()
}

// PairTraffic is one row of a traffic report.
type PairTraffic struct {
	Src, Dst string
	Bytes    int64
}

// String formats the row for experiment output.
func (p PairTraffic) String() string {
	return fmt.Sprintf("%s→%s: %s", p.Src, p.Dst, FormatBytes(p.Bytes))
}

// FormatBytes renders a byte count in human units (KiB/MiB/GiB/TiB).
func FormatBytes(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(b)/float64(div), "KMGT"[exp])
}
