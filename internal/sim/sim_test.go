package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualClock(t *testing.T) {
	c := NewVirtualClock(Epoch)
	if !c.Now().Equal(Epoch) {
		t.Fatalf("start = %v, want %v", c.Now(), Epoch)
	}
	c.Sleep(90 * time.Second)
	if got := c.Now().Sub(Epoch); got != 90*time.Second {
		t.Errorf("after Sleep: %v", got)
	}
	c.Advance(time.Hour)
	if got := c.Now().Sub(Epoch); got != time.Hour+90*time.Second {
		t.Errorf("after Advance: %v", got)
	}
	c.Sleep(-time.Hour)
	if got := c.Now().Sub(Epoch); got != time.Hour+90*time.Second {
		t.Errorf("negative sleep must be a no-op: %v", got)
	}
	c.Set(Epoch) // earlier — ignored
	if got := c.Now().Sub(Epoch); got != time.Hour+90*time.Second {
		t.Errorf("Set backwards must be ignored: %v", got)
	}
	later := Epoch.Add(48 * time.Hour)
	c.Set(later)
	if !c.Now().Equal(later) {
		t.Errorf("Set forward failed: %v", c.Now())
	}
}

func TestVirtualClockConcurrent(t *testing.T) {
	c := NewVirtualClock(Epoch)
	done := make(chan struct{})
	const n, per = 16, 100
	for i := 0; i < n; i++ {
		go func() {
			for j := 0; j < per; j++ {
				c.Sleep(time.Millisecond)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		<-done
	}
	if got := c.Now().Sub(Epoch); got != n*per*time.Millisecond {
		t.Errorf("concurrent advances lost: %v", got)
	}
}

func TestRealClock(t *testing.T) {
	var c Clock = RealClock{}
	t0 := c.Now()
	c.Sleep(time.Millisecond)
	if !c.Now().After(t0) {
		t.Errorf("real clock did not advance")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Int63n(1000) != b.Int63n(1000) {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	c := NewRand(43)
	same := true
	for i := 0; i < 20; i++ {
		if NewRand(42).Int63n(1<<40) != c.Int63n(1<<40) {
			same = false
		}
	}
	if same {
		t.Errorf("different seeds should diverge")
	}
}

func TestRandDistributions(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		if v := r.Uniform(5, 10); v < 5 || v >= 10 {
			t.Fatalf("Uniform out of range: %v", v)
		}
		if s := r.FileSize(1<<20, 1.0); s < 1 || s > 1<<40 {
			t.Fatalf("FileSize out of range: %d", s)
		}
		if e := r.Exp(3.0); e < 0 {
			t.Fatalf("Exp negative: %v", e)
		}
		if z := r.Zipf(100, 1.2); z >= 100 {
			t.Fatalf("Zipf out of range: %d", z)
		}
	}
	// Median sanity for log-normal file sizes: half the mass near median.
	var below int
	for i := 0; i < 2000; i++ {
		if r.FileSize(1<<20, 1.0) < 1<<20 {
			below++
		}
	}
	if below < 800 || below > 1200 {
		t.Errorf("log-normal median off: %d/2000 below median", below)
	}
	p := r.Perm(10)
	seen := map[int]bool{}
	for _, v := range p {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Perm not a permutation: %v", p)
	}
	if x := Pick(r, []string{"only"}); x != "only" {
		t.Errorf("Pick singleton = %q", x)
	}
}

func TestNetworkDefaults(t *testing.T) {
	n := NewNetwork()
	// Intra-domain is a fast LAN.
	lan := n.LinkBetween("sdsc", "sdsc")
	if lan.Bandwidth < DefaultBandwidth {
		t.Errorf("intra-domain link should be fast, got %v", lan.Bandwidth)
	}
	// Unconfigured pair gets the default.
	d, err := n.TransferTime("sdsc", "cern", 10<<20)
	if err != nil {
		t.Fatal(err)
	}
	want := 50*time.Millisecond + time.Second // 10 MiB at 10 MiB/s + latency
	if d != want {
		t.Errorf("TransferTime = %v, want %v", d, want)
	}
}

func TestNetworkConfiguredLinks(t *testing.T) {
	n := NewNetwork()
	n.SetSymmetric("cern", "fnal", Link{Bandwidth: 100 << 20, Latency: 100 * time.Millisecond})
	d1, _ := n.TransferTime("cern", "fnal", 100<<20)
	d2, _ := n.TransferTime("fnal", "cern", 100<<20)
	if d1 != d2 {
		t.Errorf("symmetric link asymmetric: %v vs %v", d1, d2)
	}
	if d1 != 100*time.Millisecond+time.Second {
		t.Errorf("configured link time = %v", d1)
	}
	n.SetLink("a", "b", Link{Bandwidth: 0})
	if _, err := n.TransferTime("a", "b", 1); err == nil {
		t.Errorf("zero-bandwidth link should error")
	}
	n.SetDefault(Link{Bandwidth: 1 << 20, Latency: 0})
	d3, _ := n.TransferTime("x", "y", 1<<20)
	if d3 != time.Second {
		t.Errorf("new default not honored: %v", d3)
	}
}

func TestNetworkTrafficAccounting(t *testing.T) {
	n := NewNetwork()
	if _, err := n.RecordTransfer("a", "b", 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := n.RecordTransfer("a", "b", 500); err != nil {
		t.Fatal(err)
	}
	if _, err := n.RecordTransfer("b", "c", 300); err != nil {
		t.Fatal(err)
	}
	if got := n.Traffic("a", "b"); got != 1500 {
		t.Errorf("Traffic(a,b) = %d", got)
	}
	if got := n.TotalTraffic(); got != 1800 {
		t.Errorf("TotalTraffic = %d", got)
	}
	rep := n.TrafficReport()
	if len(rep) != 2 || rep[0].Src != "a" || rep[0].Dst != "b" || rep[0].Bytes != 1500 {
		t.Errorf("TrafficReport = %v", rep)
	}
	if rep[0].String() == "" {
		t.Errorf("PairTraffic.String empty")
	}
	n.Reset()
	if n.TotalTraffic() != 0 {
		t.Errorf("Reset did not clear traffic")
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	m.Charge("disk1", 2*time.Second, 100)
	m.Charge("disk1", 3*time.Second, 200)
	m.Charge("disk2", 4*time.Second, 50)
	if m.Busy("disk1") != 5*time.Second {
		t.Errorf("Busy(disk1) = %v", m.Busy("disk1"))
	}
	if m.Makespan() != 5*time.Second {
		t.Errorf("Makespan = %v", m.Makespan())
	}
	if m.TotalWork() != 9*time.Second {
		t.Errorf("TotalWork = %v", m.TotalWork())
	}
	if m.TotalBytes() != 350 || m.Bytes("disk2") != 50 {
		t.Errorf("bytes accounting wrong")
	}
	if m.TotalOps() != 3 || m.Ops("disk1") != 2 {
		t.Errorf("ops accounting wrong")
	}
	if len(m.Lanes()) != 2 {
		t.Errorf("Lanes = %v", m.Lanes())
	}
	m.Reset()
	if m.TotalOps() != 0 || m.Makespan() != 0 {
		t.Errorf("Reset did not clear meter")
	}
}

func TestFormatBytes(t *testing.T) {
	tests := []struct {
		in   int64
		want string
	}{
		{512, "512 B"},
		{2048, "2.0 KiB"},
		{5 << 20, "5.0 MiB"},
		{3 << 30, "3.0 GiB"},
		{2 << 40, "2.0 TiB"},
	}
	for _, tt := range tests {
		if got := FormatBytes(tt.in); got != tt.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

// Property: transfer time is monotone in bytes for any positive-bandwidth
// link, and never below latency.
func TestQuickTransferMonotone(t *testing.T) {
	n := NewNetwork()
	f := func(a, b uint32) bool {
		x, y := int64(a%(1<<30)), int64(b%(1<<30))
		if x > y {
			x, y = y, x
		}
		dx, err1 := n.TransferTime("p", "q", x)
		dy, err2 := n.TransferTime("p", "q", y)
		if err1 != nil || err2 != nil {
			return false
		}
		return dx <= dy && dx >= n.LinkBetween("p", "q").Latency
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: meter makespan ≤ total work, and total bytes is the sum of
// per-lane charges.
func TestQuickMeterInvariants(t *testing.T) {
	f := func(charges []uint16) bool {
		m := NewMeter()
		var sum int64
		for i, c := range charges {
			lane := string(rune('a' + i%5))
			m.Charge(lane, time.Duration(c)*time.Millisecond, int64(c))
			sum += int64(c)
		}
		return m.Makespan() <= m.TotalWork() && m.TotalBytes() == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkTransferTime(b *testing.B) {
	n := NewNetwork()
	n.SetLink("a", "b", Link{Bandwidth: 100 << 20, Latency: 10 * time.Millisecond})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := n.TransferTime("a", "b", 1<<20); err != nil {
			b.Fatal(err)
		}
	}
}
