package sim

import (
	"sync"
	"time"
)

// Meter accumulates simulated cost along named lanes. A lane is anything
// that does work serially — a storage resource, a compute node, a network
// link. Charging work to a lane extends that lane's busy time; the
// simulated makespan of a parallel phase is the maximum busy time across
// lanes, while total work is the sum.
//
// This is how the reproduction accounts for parallelism without running a
// full discrete-event scheduler: the engines decide *what* runs *where*,
// and the meter turns those decisions into the same aggregate numbers a
// testbed would report (makespan, per-resource utilization, bytes, ops).
type Meter struct {
	mu    sync.Mutex
	busy  map[string]time.Duration
	bytes map[string]int64
	ops   map[string]int64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{
		busy:  make(map[string]time.Duration),
		bytes: make(map[string]int64),
		ops:   make(map[string]int64),
	}
}

// Charge adds d of busy time, b bytes and one operation to the lane.
func (m *Meter) Charge(lane string, d time.Duration, b int64) {
	m.mu.Lock()
	m.busy[lane] += d
	m.bytes[lane] += b
	m.ops[lane]++
	m.mu.Unlock()
}

// Busy returns the accumulated busy time of the lane.
func (m *Meter) Busy(lane string) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.busy[lane]
}

// Bytes returns the accumulated bytes of the lane.
func (m *Meter) Bytes(lane string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes[lane]
}

// Ops returns the operation count of the lane.
func (m *Meter) Ops(lane string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops[lane]
}

// Makespan returns the maximum busy time across all lanes: the simulated
// wall-clock of a phase where all lanes proceed in parallel.
func (m *Meter) Makespan() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	var max time.Duration
	for _, d := range m.busy {
		if d > max {
			max = d
		}
	}
	return max
}

// TotalWork returns the sum of busy time across lanes (serialized cost).
func (m *Meter) TotalWork() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum time.Duration
	for _, d := range m.busy {
		sum += d
	}
	return sum
}

// TotalBytes returns the sum of bytes across lanes.
func (m *Meter) TotalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum int64
	for _, b := range m.bytes {
		sum += b
	}
	return sum
}

// TotalOps returns the sum of operations across lanes.
func (m *Meter) TotalOps() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum int64
	for _, o := range m.ops {
		sum += o
	}
	return sum
}

// Lanes returns the names of all lanes that received at least one charge.
func (m *Meter) Lanes() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.busy))
	for lane := range m.busy {
		out = append(out, lane)
	}
	return out
}

// Reset clears all accumulated charges.
func (m *Meter) Reset() {
	m.mu.Lock()
	m.busy = make(map[string]time.Duration)
	m.bytes = make(map[string]int64)
	m.ops = make(map[string]int64)
	m.mu.Unlock()
}
