package sim

import (
	"math"
	"math/rand"
	"sync"
)

// Rand is a deterministic random source with the distributions the
// workload generators need. It is safe for concurrent use.
type Rand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRand returns a Rand seeded with seed. The same seed always produces
// the same sequence, which keeps experiments reproducible.
func NewRand(seed int64) *Rand {
	return &Rand{rng: rand.New(rand.NewSource(seed))}
}

// Int63n returns a uniform integer in [0, n). n must be > 0.
func (r *Rand) Int63n(n int64) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Int63n(n)
}

// Intn returns a uniform integer in [0, n). n must be > 0.
func (r *Rand) Intn(n int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Intn(n)
}

// Float64 returns a uniform float in [0, 1).
func (r *Rand) Float64() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Float64()
}

// Uniform returns a uniform float in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// LogNormal samples a log-normal value with the given parameters of the
// underlying normal (mu, sigma). File-size distributions in scientific
// archives are classically log-normal: many small metadata files, a long
// tail of multi-gigabyte datasets.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	r.mu.Lock()
	n := r.rng.NormFloat64()
	r.mu.Unlock()
	return math.Exp(mu + sigma*n)
}

// FileSize samples a file size in bytes with median `median` and the given
// spread (sigma of the underlying normal; 1.0 is a realistic archive mix).
// The result is clamped to [1, 1<<40].
func (r *Rand) FileSize(median int64, sigma float64) int64 {
	v := r.LogNormal(math.Log(float64(median)), sigma)
	if v < 1 {
		v = 1
	}
	if v > 1<<40 {
		v = 1 << 40
	}
	return int64(v)
}

// Exp samples an exponential value with the given mean, for interarrival
// times of ingests and trigger events.
func (r *Rand) Exp(mean float64) float64 {
	r.mu.Lock()
	e := r.rng.ExpFloat64()
	r.mu.Unlock()
	return e * mean
}

// Zipf returns a Zipf-distributed integer in [0, n) with exponent s > 1.
// Access popularity across collections is Zipfian: a few hot collections
// absorb most reads, which is exactly what domain-value ILM policies key on.
func (r *Rand) Zipf(n uint64, s float64) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	z := rand.NewZipf(r.rng, s, 1, n-1)
	return z.Uint64()
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Perm(n)
}

// Pick returns a uniformly random element of the non-empty slice.
func Pick[T any](r *Rand, xs []T) T {
	return xs[r.Intn(len(xs))]
}
