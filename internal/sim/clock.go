// Package sim provides the simulation substrate the reproduction runs on:
// a virtual clock, deterministic random distributions for workload
// synthesis, a wide-area network model between grid domains, and cost
// meters that account simulated time, bytes and money.
//
// The paper's substrate is the production SRB datagrid (petabytes across
// SDSC, CERN, CCLRC, ...). We do not have that hardware; every storage and
// network operation in this repository instead charges simulated cost
// through this package, so experiments measure the *decisions* the
// datagridflow systems make (what moved where, how often, in what order)
// rather than the speed of the laptop running them.
package sim

import (
	"sync"
	"time"
)

// Clock abstracts time so engines run identically against wall-clock time
// (production) and simulated time (tests, benchmarks, experiments).
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep advances this clock by d. On the real clock it blocks; on the
	// virtual clock it advances the timeline immediately.
	Sleep(d time.Duration)
}

// RealClock is the wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// VirtualClock is a thread-safe simulated clock. Sleep advances the clock
// instead of blocking, so million-step simulations finish in milliseconds
// while still producing meaningful timestamps for provenance records and
// ILM schedules.
//
// Concurrent sleepers serialize their advances; simulations that need true
// parallel-makespan accounting use Meter, which tracks per-lane busy time.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock returns a VirtualClock starting at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Epoch is the default start instant for simulations: a fixed, readable
// date so provenance logs and experiment output are reproducible.
var Epoch = time.Date(2005, time.August, 1, 0, 0, 0, 0, time.UTC)

// Now implements Clock.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock by advancing the clock d into the future.
// Negative durations are ignored.
func (c *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Advance moves the clock forward by d (alias of Sleep, reads better at
// call sites that drive the simulation rather than model work).
func (c *VirtualClock) Advance(d time.Duration) { c.Sleep(d) }

// Set jumps the clock to t if t is later than the current time; earlier
// values are ignored so time never flows backwards.
func (c *VirtualClock) Set(t time.Time) {
	c.mu.Lock()
	if t.After(c.now) {
		c.now = t
	}
	c.mu.Unlock()
}
