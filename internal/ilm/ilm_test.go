package ilm

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"datagridflow/internal/dgms"
	"datagridflow/internal/matrix"
	"datagridflow/internal/namespace"
	"datagridflow/internal/sim"
	"datagridflow/internal/vfs"
)

func TestValueModelDecay(t *testing.T) {
	m := NewValueModel()
	t0 := sim.Epoch
	m.Record("/a", t0)
	m.Record("/a", t0)
	if got := m.AccessMass("/a", t0); got != 2 {
		t.Errorf("mass = %v", got)
	}
	// One half-life later the mass has halved.
	if got := m.AccessMass("/a", t0.Add(m.HalfLife)); got < 0.99 || got > 1.01 {
		t.Errorf("decayed mass = %v, want ≈1", got)
	}
	// Recording after decay compounds correctly.
	m.Record("/a", t0.Add(m.HalfLife))
	if got := m.AccessMass("/a", t0.Add(m.HalfLife)); got < 1.99 || got > 2.01 {
		t.Errorf("mass after re-access = %v, want ≈2", got)
	}
	// Unknown paths have zero mass.
	if m.AccessMass("/nope", t0) != 0 {
		t.Errorf("unknown path has mass")
	}
	m.Forget("/a")
	if m.AccessMass("/a", t0) != 0 {
		t.Errorf("Forget failed")
	}
}

func TestValueScoring(t *testing.T) {
	m := NewValueModel()
	t0 := sim.Epoch
	// Fresh and hot data scores high.
	for i := 0; i < 10; i++ {
		m.Record("/hot", t0)
	}
	hot := m.Value("/hot", t0, t0)
	// Stale, never-accessed data scores low.
	cold := m.Value("/cold", t0.Add(-365*24*time.Hour), t0)
	if hot < 70 {
		t.Errorf("hot value = %v", hot)
	}
	if cold > 5 {
		t.Errorf("cold value = %v", cold)
	}
	if hot <= cold {
		t.Errorf("ordering violated: hot %v <= cold %v", hot, cold)
	}
	// Freshly created but unaccessed sits in between.
	mid := m.Value("/new", t0, t0)
	if mid <= cold || mid >= hot {
		t.Errorf("fresh-unaccessed value = %v not between %v and %v", mid, cold, hot)
	}
}

// Property: Value is always within [0, 100] and monotone in access count.
func TestQuickValueBounds(t *testing.T) {
	f := func(accesses uint8, ageDays uint16) bool {
		m := NewValueModel()
		t0 := sim.Epoch
		created := t0.Add(-time.Duration(ageDays) * 24 * time.Hour)
		prev := -1.0
		for i := 0; i <= int(accesses%20); i++ {
			v := m.Value("/p", created, t0)
			if v < 0 || v > 100 || v < prev {
				return false
			}
			prev = v
			m.Record("/p", t0)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWindow(t *testing.T) {
	// Night window 20→06.
	night := Window{StartHour: 20, EndHour: 6}
	day := func(h int) time.Time {
		return time.Date(2005, 8, 1, h, 0, 0, 0, time.UTC) // a Monday
	}
	if night.Contains(day(12)) {
		t.Errorf("noon inside night window")
	}
	if !night.Contains(day(22)) || !night.Contains(day(3)) {
		t.Errorf("night hours outside window")
	}
	if night.Contains(day(6)) {
		t.Errorf("end hour should be exclusive")
	}
	// NextOpen from noon lands at 20:00 same day.
	next := night.NextOpen(day(12))
	if next.Hour() != 20 || next.Day() != 1 {
		t.Errorf("NextOpen = %v", next)
	}
	// Already open: unchanged.
	if got := night.NextOpen(day(22)); !got.Equal(day(22)) {
		t.Errorf("NextOpen inside window = %v", got)
	}
	// Weekend-only window.
	weekend := Window{Days: []time.Weekday{time.Saturday, time.Sunday}}
	if weekend.Contains(day(12)) { // Monday
		t.Errorf("Monday inside weekend window")
	}
	sat := weekend.NextOpen(day(12))
	if sat.Weekday() != time.Saturday {
		t.Errorf("NextOpen weekend = %v (%v)", sat, sat.Weekday())
	}
	// AlwaysOpen contains everything.
	if !AlwaysOpen.Contains(day(0)) || !AlwaysOpen.NextOpen(day(5)).Equal(day(5)) {
		t.Errorf("AlwaysOpen broken")
	}
	// Wrapping window with day restriction: Friday 20:00 → Saturday 03:00
	// belongs to Friday's opening.
	friNight := Window{StartHour: 20, EndHour: 6, Days: []time.Weekday{time.Friday}}
	fri22 := time.Date(2005, 8, 5, 22, 0, 0, 0, time.UTC) // Friday
	sat03 := time.Date(2005, 8, 6, 3, 0, 0, 0, time.UTC)  // Saturday small hours
	mon03 := time.Date(2005, 8, 1, 3, 0, 0, 0, time.UTC)  // Monday small hours
	if !friNight.Contains(fri22) || !friNight.Contains(sat03) {
		t.Errorf("Friday-night window misses its own hours")
	}
	if friNight.Contains(mon03) {
		t.Errorf("Monday 03:00 inside Friday-night window")
	}
}

// ilmGrid builds a grid with hot/cold tiers and a set of objects on disk.
func ilmGrid(t testing.TB, n int) (*dgms.Grid, *matrix.Engine) {
	t.Helper()
	g := dgms.New(dgms.Options{})
	for _, r := range []*vfs.Resource{
		vfs.New("gpfs", "sdsc", vfs.ParallelFS, 0),
		vfs.New("disk", "sdsc", vfs.Disk, 0),
		vfs.New("tape", "archive", vfs.Archive, 0),
	} {
		if err := g.RegisterResource(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.CreateCollectionAll(g.Admin(), "/grid/data"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("/grid/data/f%03d", i)
		if err := g.Ingest(g.Admin(), path, 1<<20, nil, "disk"); err != nil {
			t.Fatal(err)
		}
	}
	return g, matrix.NewEngine(g)
}

func TestPolicyPlanAndExecute(t *testing.T) {
	g, e := ilmGrid(t, 9)
	model := NewValueModel()
	now := g.Clock().Now()
	// Make f000..f002 hot, leave f003..f005 warm (fresh), f006..f008 cold
	// (backdate by forcing value via metadata instead for determinism).
	for i := 0; i < 3; i++ {
		for j := 0; j < 10; j++ {
			model.Record(fmt.Sprintf("/grid/data/f%03d", i), now)
		}
	}
	// Use MetaValuer for exact control of bands.
	for i := 0; i < 9; i++ {
		v := "50"
		if i < 3 {
			v = "90"
		} else if i >= 6 {
			v = "5"
		}
		if err := g.SetMeta(g.Admin(), fmt.Sprintf("/grid/data/f%03d", i), "value", v); err != nil {
			t.Fatal(err)
		}
	}
	pol := Policy{
		Name:  "tiering",
		Owner: g.Admin(),
		Scope: "/grid/data",
		Tiers: []Tier{
			{MinValue: 70, Resource: "gpfs"},
			{MinValue: 20, Resource: "disk"},
			{MinValue: 0, Resource: "tape"},
		},
	}
	decisions, stats, err := pol.Plan(g, MetaValuer{}, now)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Examined != 9 {
		t.Errorf("examined = %d", stats.Examined)
	}
	// 3 hot move to gpfs, 3 warm stay on disk, 3 cold move to tape.
	if stats.Migrates != 6 || stats.Deletes != 0 {
		t.Errorf("stats = %+v, decisions = %+v", stats, decisions)
	}
	if stats.BytesToMove != 6<<20 {
		t.Errorf("bytes = %d", stats.BytesToMove)
	}
	// Execute the compiled flow.
	flow := pol.Compile(decisions)
	ex, err := e.Run(g.Admin(), flow)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	gpfs, _ := g.Resource("gpfs")
	tape, _ := g.Resource("tape")
	disk, _ := g.Resource("disk")
	if gpfs.Count() != 3 || tape.Count() != 3 || disk.Count() != 3 {
		t.Errorf("placement: gpfs=%d disk=%d tape=%d", gpfs.Count(), disk.Count(), tape.Count())
	}
	// Re-planning after execution is a fixpoint: nothing to move.
	decisions, stats, err = pol.Plan(g, MetaValuer{}, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != 0 {
		t.Errorf("plan not idempotent: %+v", decisions)
	}
}

func TestPolicyDelete(t *testing.T) {
	g, e := ilmGrid(t, 4)
	for i := 0; i < 4; i++ {
		v := "50"
		if i >= 2 {
			v = "1"
		}
		if err := g.SetMeta(g.Admin(), fmt.Sprintf("/grid/data/f%03d", i), "value", v); err != nil {
			t.Fatal(err)
		}
	}
	pol := Policy{
		Name: "purge", Owner: g.Admin(), Scope: "/grid/data",
		Tiers:       []Tier{{MinValue: 0, Resource: "disk"}},
		DeleteBelow: 10,
	}
	decisions, stats, err := pol.Plan(g, MetaValuer{}, g.Clock().Now())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Deletes != 2 {
		t.Errorf("deletes = %d", stats.Deletes)
	}
	ex, err := e.Run(g.Admin(), pol.Compile(decisions))
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	if g.Namespace().Exists("/grid/data/f003") || !g.Namespace().Exists("/grid/data/f001") {
		t.Errorf("purge hit the wrong objects")
	}
}

func TestPolicyKeepReplica(t *testing.T) {
	g, e := ilmGrid(t, 2)
	for i := 0; i < 2; i++ {
		if err := g.SetMeta(g.Admin(), fmt.Sprintf("/grid/data/f%03d", i), "value", "90"); err != nil {
			t.Fatal(err)
		}
	}
	pol := Policy{
		Name: "defensive", Owner: g.Admin(), Scope: "/grid/data",
		Tiers:       []Tier{{MinValue: 70, Resource: "gpfs"}, {MinValue: 0, Resource: "disk"}},
		KeepReplica: true,
	}
	decisions, stats, err := pol.Plan(g, MetaValuer{}, g.Clock().Now())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replicas != 2 || stats.Migrates != 0 {
		t.Errorf("stats = %+v", stats)
	}
	ex, err := e.Run(g.Admin(), pol.Compile(decisions))
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	reps, _ := g.Namespace().Replicas("/grid/data/f000")
	if len(reps) != 2 {
		t.Errorf("replicas = %v", reps)
	}
}

func TestImplodingStar(t *testing.T) {
	g, e := ilmGrid(t, 5)
	flow, err := ImplodingStar(g, g.Admin(), "/grid/data", "tape", true)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := e.Run(g.Admin(), flow)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	tape, _ := g.Resource("tape")
	disk, _ := g.Resource("disk")
	if tape.Count() != 5 || disk.Count() != 0 {
		t.Errorf("imploding star placement: tape=%d disk=%d", tape.Count(), disk.Count())
	}
	// Second run is a no-op (already archived).
	flow2, err := ImplodingStar(g, g.Admin(), "/grid/data", "tape", true)
	if err != nil {
		t.Fatal(err)
	}
	if flow2.CountSteps() != 0 {
		t.Errorf("imploding star not idempotent: %d steps", flow2.CountSteps())
	}
}

func TestExplodingStar(t *testing.T) {
	g := dgms.New(dgms.Options{})
	// CERN-like topology: source plus two tiers.
	resources := []*vfs.Resource{
		vfs.New("cern", "cern", vfs.Disk, 0),
		vfs.New("fnal", "fnal", vfs.Disk, 0),
		vfs.New("in2p3", "in2p3", vfs.Disk, 0),
		vfs.New("ufl", "ufl", vfs.Disk, 0),
		vfs.New("caltech", "caltech", vfs.Disk, 0),
	}
	for _, r := range resources {
		if err := g.RegisterResource(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.CreateCollectionAll(g.Admin(), "/grid/cms"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := g.Ingest(g.Admin(), fmt.Sprintf("/grid/cms/run%d", i), 1<<20, nil, "cern"); err != nil {
			t.Fatal(err)
		}
	}
	e := matrix.NewEngine(g)
	flow, err := ExplodingStar(g, g.Admin(), "/grid/cms",
		[][]string{{"fnal", "in2p3"}, {"ufl", "caltech"}})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := e.Run(g.Admin(), flow)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	// Every object now has 5 replicas.
	for i := 0; i < 4; i++ {
		reps, _ := g.Namespace().Replicas(fmt.Sprintf("/grid/cms/run%d", i))
		if len(reps) != 5 {
			t.Errorf("run%d replicas = %d", i, len(reps))
		}
	}
	// Staging: tier-2 pulled from tier-1, so CERN's outbound traffic is
	// only the tier-1 fan-out (2 resources × 4 objects × 1 MiB), not all 4.
	cernOut := g.Network().Traffic("cern", "fnal") + g.Network().Traffic("cern", "in2p3") +
		g.Network().Traffic("cern", "ufl") + g.Network().Traffic("cern", "caltech")
	if cernOut != 8<<20 {
		t.Errorf("CERN outbound = %d bytes, want tier-1 only (8 MiB)", cernOut)
	}
	tier1Out := g.Network().Traffic("fnal", "ufl") + g.Network().Traffic("fnal", "caltech") +
		g.Network().Traffic("in2p3", "ufl") + g.Network().Traffic("in2p3", "caltech")
	if tier1Out != 8<<20 {
		t.Errorf("tier-1 outbound = %d bytes, want 8 MiB", tier1Out)
	}
}

func TestMetaValuer(t *testing.T) {
	e := namespace.Entry{Metadata: map[string]string{"value": "42.5", "prio": "7"}}
	if got := (MetaValuer{}).Value(e, time.Time{}); got != 42.5 {
		t.Errorf("default attr = %v", got)
	}
	if got := (MetaValuer{Attr: "prio"}).Value(e, time.Time{}); got != 7 {
		t.Errorf("custom attr = %v", got)
	}
	if got := (MetaValuer{Attr: "missing"}).Value(e, time.Time{}); got != 0 {
		t.Errorf("missing attr = %v", got)
	}
}

func TestModelValuer(t *testing.T) {
	m := NewValueModel()
	now := sim.Epoch
	m.Record("/x", now)
	e := namespace.Entry{Path: "/x", Created: now}
	if got := (ModelValuer{Model: m}).Value(e, now); got <= 0 {
		t.Errorf("ModelValuer = %v", got)
	}
}

func TestPlanBadScope(t *testing.T) {
	g, _ := ilmGrid(t, 1)
	pol := Policy{Name: "x", Owner: g.Admin(), Scope: "/missing"}
	if _, _, err := pol.Plan(g, MetaValuer{}, g.Clock().Now()); err == nil {
		t.Errorf("bad scope accepted")
	}
	if _, err := ImplodingStar(g, g.Admin(), "/missing", "tape", false); err == nil {
		t.Errorf("imploding star bad scope accepted")
	}
	if _, err := ExplodingStar(g, g.Admin(), "/missing", nil); err == nil {
		t.Errorf("exploding star bad scope accepted")
	}
}

func BenchmarkE6PlanLargeCollection(b *testing.B) {
	g, _ := ilmGrid(b, 2000)
	for i := 0; i < 2000; i++ {
		v := fmt.Sprint(i % 100)
		if err := g.SetMeta(g.Admin(), fmt.Sprintf("/grid/data/f%03d", i), "value", v); err != nil {
			b.Fatal(err)
		}
	}
	pol := Policy{
		Name: "bench", Owner: g.Admin(), Scope: "/grid/data",
		Tiers: []Tier{{MinValue: 70, Resource: "gpfs"}, {MinValue: 20, Resource: "disk"}, {MinValue: 0, Resource: "tape"}},
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := pol.Plan(g, MetaValuer{}, g.Clock().Now()); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: NextOpen always returns an instant inside the window (when
// reachable within the search horizon), and Contains is consistent with
// the window's own definition of wrap-around.
func TestQuickWindowNextOpen(t *testing.T) {
	f := func(startH, endH uint8, dayPick uint8, hourOffset uint16) bool {
		w := Window{StartHour: int(startH % 24), EndHour: int(endH % 24)}
		if dayPick%3 == 0 { // sometimes restrict to a single weekday
			w.Days = []time.Weekday{time.Weekday(dayPick % 7)}
		}
		start := sim.Epoch.Add(time.Duration(hourOffset%500) * time.Hour)
		next := w.NextOpen(start)
		if next.Before(start) {
			return false
		}
		return w.Contains(next)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the tier selected for a value is always the highest band at
// or below it.
func TestQuickTargetTier(t *testing.T) {
	pol := Policy{Tiers: []Tier{
		{MinValue: 80, Resource: "a"},
		{MinValue: 40, Resource: "b"},
		{MinValue: 0, Resource: "c"},
	}}
	f := func(raw uint16) bool {
		v := float64(raw % 101)
		got := pol.targetTier(v)
		switch {
		case v >= 80:
			return got == "a"
		case v >= 40:
			return got == "b"
		default:
			return got == "c"
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
