package ilm

// xml.go gives ILM policies the interoperable XML form the paper
// requires: "One major requirement is to provide an interoperable
// description of the datagrid ILM processes. A standard format could be
// used across all the related systems ... Such a standard based on an
// XML Schema would allow programmatic interaction of all the systems."
//
// A policy document names its scope, tiers, deletion bound, valuer and
// execution window; Parse validates it and Build instantiates the
// runnable Policy plus the configured Valuer.

import (
	"encoding/xml"
	"errors"
	"fmt"
	"time"
)

// ErrInvalidPolicy wraps all policy-document validation failures.
var ErrInvalidPolicy = errors.New("ilm: invalid policy document")

// PolicyDoc is the XML form of an ILM policy.
type PolicyDoc struct {
	XMLName xml.Name `xml:"ilmPolicy"`
	Name    string   `xml:"name,attr"`
	Owner   string   `xml:"owner,attr"`
	Scope   string   `xml:"scope,attr"`
	// Valuer selects the scoring model: "domain-value" (access + freshness),
	// "freshness" (HSM behaviour) or "metadata" (curator-assigned).
	Valuer ValuerDoc `xml:"valuer"`
	Tiers  []TierDoc `xml:"tier"`
	// DeleteBelow removes objects scoring under the bound (0 = never).
	DeleteBelow float64 `xml:"deleteBelow,omitempty"`
	// KeepReplica replicates instead of migrating.
	KeepReplica bool `xml:"keepReplica,omitempty"`
	// Window bounds execution ("" fields = always open).
	Window *WindowDoc `xml:"window,omitempty"`
}

// ValuerDoc configures the scoring model.
type ValuerDoc struct {
	Kind string `xml:"kind,attr"`
	// Attr names the metadata attribute for kind="metadata".
	Attr string `xml:"attr,attr,omitempty"`
	// HalfLifeHours tunes the domain-value access decay (0 = default).
	HalfLifeHours float64 `xml:"halfLifeHours,attr,omitempty"`
	// FreshnessScaleHours tunes the freshness decay (0 = default).
	FreshnessScaleHours float64 `xml:"freshnessScaleHours,attr,omitempty"`
}

// TierDoc is one value band.
type TierDoc struct {
	MinValue float64 `xml:"minValue,attr"`
	Resource string  `xml:"resource,attr"`
}

// WindowDoc is the XML form of an execution window.
type WindowDoc struct {
	StartHour int `xml:"startHour,attr"`
	EndHour   int `xml:"endHour,attr"`
	// Days is a comma-free list of weekday elements ("Saturday", ...).
	Days []string `xml:"day,omitempty"`
}

// Valuer kinds.
const (
	ValuerDomainValue = "domain-value"
	ValuerFreshness   = "freshness"
	ValuerMetadata    = "metadata"
)

// ParsePolicy decodes and validates a policy document.
func ParsePolicy(data []byte) (*PolicyDoc, error) {
	var doc PolicyDoc
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("ilm: parse policy: %w", err)
	}
	if err := doc.Validate(); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Marshal renders the document as indented XML.
func (d *PolicyDoc) Marshal() ([]byte, error) {
	b, err := xml.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), b...), nil
}

var weekdays = map[string]time.Weekday{
	"Sunday": time.Sunday, "Monday": time.Monday, "Tuesday": time.Tuesday,
	"Wednesday": time.Wednesday, "Thursday": time.Thursday,
	"Friday": time.Friday, "Saturday": time.Saturday,
}

// Validate checks the document's constraints.
func (d *PolicyDoc) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("%w: name required", ErrInvalidPolicy)
	}
	if d.Owner == "" {
		return fmt.Errorf("%w: owner required", ErrInvalidPolicy)
	}
	if d.Scope == "" {
		return fmt.Errorf("%w: scope required", ErrInvalidPolicy)
	}
	switch d.Valuer.Kind {
	case ValuerDomainValue, ValuerFreshness, ValuerMetadata:
	case "":
		return fmt.Errorf("%w: valuer kind required", ErrInvalidPolicy)
	default:
		return fmt.Errorf("%w: unknown valuer %q", ErrInvalidPolicy, d.Valuer.Kind)
	}
	if len(d.Tiers) == 0 && d.DeleteBelow <= 0 {
		return fmt.Errorf("%w: policy has neither tiers nor a delete bound", ErrInvalidPolicy)
	}
	seen := map[float64]bool{}
	for _, t := range d.Tiers {
		if t.Resource == "" {
			return fmt.Errorf("%w: tier without resource", ErrInvalidPolicy)
		}
		if t.MinValue < 0 || t.MinValue > 100 {
			return fmt.Errorf("%w: tier minValue %v out of [0,100]", ErrInvalidPolicy, t.MinValue)
		}
		if seen[t.MinValue] {
			return fmt.Errorf("%w: duplicate tier bound %v", ErrInvalidPolicy, t.MinValue)
		}
		seen[t.MinValue] = true
	}
	if d.DeleteBelow < 0 || d.DeleteBelow > 100 {
		return fmt.Errorf("%w: deleteBelow out of [0,100]", ErrInvalidPolicy)
	}
	if d.Window != nil {
		w := d.Window
		if w.StartHour < 0 || w.StartHour > 23 || w.EndHour < 0 || w.EndHour > 23 {
			return fmt.Errorf("%w: window hours out of range", ErrInvalidPolicy)
		}
		for _, day := range w.Days {
			if _, ok := weekdays[day]; !ok {
				return fmt.Errorf("%w: unknown weekday %q", ErrInvalidPolicy, day)
			}
		}
	}
	return nil
}

// Build instantiates the runnable Policy and its Valuer. For the
// domain-value kind the returned model must be fed with accesses
// (TrackAccesses); it is also returned so the caller can wire it up.
func (d *PolicyDoc) Build() (Policy, Valuer, *ValueModel, error) {
	if err := d.Validate(); err != nil {
		return Policy{}, nil, nil, err
	}
	pol := Policy{
		Name:        d.Name,
		Owner:       d.Owner,
		Scope:       d.Scope,
		DeleteBelow: d.DeleteBelow,
		KeepReplica: d.KeepReplica,
	}
	for _, t := range d.Tiers {
		pol.Tiers = append(pol.Tiers, Tier{MinValue: t.MinValue, Resource: t.Resource})
	}
	if d.Window != nil {
		pol.Window = Window{StartHour: d.Window.StartHour, EndHour: d.Window.EndHour}
		for _, day := range d.Window.Days {
			pol.Window.Days = append(pol.Window.Days, weekdays[day])
		}
	}
	switch d.Valuer.Kind {
	case ValuerFreshness:
		scale := time.Duration(d.Valuer.FreshnessScaleHours * float64(time.Hour))
		return pol, FreshnessValuer{Scale: scale}, nil, nil
	case ValuerMetadata:
		return pol, MetaValuer{Attr: d.Valuer.Attr}, nil, nil
	default: // domain-value
		model := NewValueModel()
		if d.Valuer.HalfLifeHours > 0 {
			model.HalfLife = time.Duration(d.Valuer.HalfLifeHours * float64(time.Hour))
		}
		if d.Valuer.FreshnessScaleHours > 0 {
			model.FreshnessScale = time.Duration(d.Valuer.FreshnessScaleHours * float64(time.Hour))
		}
		return pol, ModelValuer{Model: model}, model, nil
	}
}
