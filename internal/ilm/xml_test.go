package ilm

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

func samplePolicyXML() string {
	return `<?xml version="1.0" encoding="UTF-8"?>
<ilmPolicy name="hospital-archive" owner="archiver" scope="/grid/hospitals">
  <valuer kind="domain-value" halfLifeHours="168" freshnessScaleHours="720"></valuer>
  <tier minValue="60" resource="gpfs"></tier>
  <tier minValue="15" resource="disk"></tier>
  <tier minValue="0" resource="tape"></tier>
  <deleteBelow>0</deleteBelow>
  <window startHour="20" endHour="6">
    <day>Saturday</day>
    <day>Sunday</day>
  </window>
</ilmPolicy>`
}

func TestParsePolicy(t *testing.T) {
	doc, err := ParsePolicy([]byte(samplePolicyXML()))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Name != "hospital-archive" || doc.Owner != "archiver" || len(doc.Tiers) != 3 {
		t.Errorf("doc = %+v", doc)
	}
	pol, valuer, model, err := doc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if model == nil {
		t.Fatal("domain-value build should return the model")
	}
	if model.HalfLife != 168*time.Hour || model.FreshnessScale != 720*time.Hour {
		t.Errorf("model tuning = %v, %v", model.HalfLife, model.FreshnessScale)
	}
	if _, ok := valuer.(ModelValuer); !ok {
		t.Errorf("valuer = %T", valuer)
	}
	if len(pol.Tiers) != 3 || pol.Tiers[0].Resource != "gpfs" {
		t.Errorf("tiers = %+v", pol.Tiers)
	}
	if pol.Window.StartHour != 20 || len(pol.Window.Days) != 2 || pol.Window.Days[0] != time.Saturday {
		t.Errorf("window = %+v", pol.Window)
	}
	// Round trip.
	out, err := doc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParsePolicy(out)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, doc) {
		t.Errorf("round trip changed the document:\n%+v\n%+v", doc, back)
	}
	if !strings.Contains(string(out), `kind="domain-value"`) {
		t.Errorf("marshal missing valuer:\n%s", out)
	}
}

func TestParsePolicyOtherValuers(t *testing.T) {
	fresh := `<ilmPolicy name="hsm" owner="admin" scope="/grid">
  <valuer kind="freshness" freshnessScaleHours="24"></valuer>
  <tier minValue="0" resource="tape"></tier>
</ilmPolicy>`
	doc, err := ParsePolicy([]byte(fresh))
	if err != nil {
		t.Fatal(err)
	}
	_, valuer, model, err := doc.Build()
	if err != nil {
		t.Fatal(err)
	}
	fv, ok := valuer.(FreshnessValuer)
	if !ok || fv.Scale != 24*time.Hour || model != nil {
		t.Errorf("freshness build = %T %+v %v", valuer, valuer, model)
	}
	meta := `<ilmPolicy name="curated" owner="admin" scope="/grid">
  <valuer kind="metadata" attr="businessValue"></valuer>
  <tier minValue="0" resource="tape"></tier>
</ilmPolicy>`
	doc, err = ParsePolicy([]byte(meta))
	if err != nil {
		t.Fatal(err)
	}
	_, valuer, _, err = doc.Build()
	if err != nil {
		t.Fatal(err)
	}
	mv, ok := valuer.(MetaValuer)
	if !ok || mv.Attr != "businessValue" {
		t.Errorf("metadata build = %T %+v", valuer, valuer)
	}
}

func TestParsePolicyRejects(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*PolicyDoc)
	}{
		{"no name", func(d *PolicyDoc) { d.Name = "" }},
		{"no owner", func(d *PolicyDoc) { d.Owner = "" }},
		{"no scope", func(d *PolicyDoc) { d.Scope = "" }},
		{"no valuer", func(d *PolicyDoc) { d.Valuer.Kind = "" }},
		{"bad valuer", func(d *PolicyDoc) { d.Valuer.Kind = "astrology" }},
		{"no tiers or delete", func(d *PolicyDoc) { d.Tiers = nil; d.DeleteBelow = 0 }},
		{"tier without resource", func(d *PolicyDoc) { d.Tiers[0].Resource = "" }},
		{"tier out of range", func(d *PolicyDoc) { d.Tiers[0].MinValue = 150 }},
		{"duplicate tier", func(d *PolicyDoc) { d.Tiers[1].MinValue = d.Tiers[0].MinValue }},
		{"deleteBelow out of range", func(d *PolicyDoc) { d.DeleteBelow = 200 }},
		{"bad window hour", func(d *PolicyDoc) { d.Window.StartHour = 25 }},
		{"bad weekday", func(d *PolicyDoc) { d.Window.Days = []string{"Caturday"} }},
	}
	for _, tc := range mutations {
		doc, err := ParsePolicy([]byte(samplePolicyXML()))
		if err != nil {
			t.Fatal(err)
		}
		tc.mut(doc)
		if err := doc.Validate(); !errors.Is(err, ErrInvalidPolicy) {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
	if _, err := ParsePolicy([]byte("<not-xml")); err == nil {
		t.Errorf("bad XML accepted")
	}
	// Delete-only policies (no tiers) are legal.
	purge := `<ilmPolicy name="purge" owner="admin" scope="/grid">
  <valuer kind="freshness"></valuer>
  <deleteBelow>5</deleteBelow>
</ilmPolicy>`
	if _, err := ParsePolicy([]byte(purge)); err != nil {
		t.Errorf("delete-only policy rejected: %v", err)
	}
}

// TestPolicyDocEndToEnd runs a parsed policy document through the
// runner: XML → Policy+Valuer → plan → DGL → execution.
func TestPolicyDocEndToEnd(t *testing.T) {
	g, e := ilmGrid(t, 4)
	docXML := `<ilmPolicy name="from-xml" owner="` + g.Admin() + `" scope="/grid/data">
  <valuer kind="metadata"></valuer>
  <tier minValue="50" resource="gpfs"></tier>
  <tier minValue="0" resource="tape"></tier>
</ilmPolicy>`
	doc, err := ParsePolicy([]byte(docXML))
	if err != nil {
		t.Fatal(err)
	}
	pol, valuer, _, err := doc.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		v := "90"
		if i >= 2 {
			v = "10"
		}
		if err := g.SetMeta(g.Admin(), fmt.Sprintf("/grid/data/f%03d", i), "value", v); err != nil {
			t.Fatal(err)
		}
	}
	runner := NewRunner(g, e, pol, valuer)
	res, err := runner.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Migrates != 4 {
		t.Errorf("migrates = %d", res.Stats.Migrates)
	}
	gpfs, _ := g.Resource("gpfs")
	tape, _ := g.Resource("tape")
	if gpfs.Count() != 2 || tape.Count() != 2 {
		t.Errorf("placement gpfs=%d tape=%d", gpfs.Count(), tape.Count())
	}
}
