// Package ilm implements datagrid Information Lifecycle Management
// (paper §2.1): placement and retention driven by the *business value* of
// data rather than mere freshness. The package provides
//
//   - a domain-value model (accesses raise value, time decays it);
//   - tiering policies that map value bands to storage resources;
//   - a planner that compiles a policy into a DGL flow of
//     migrate/replicate/trim/delete steps — ILM processes *are*
//     datagridflows, executed by the matrix engine with full
//     pause/restart/status/provenance support;
//   - generators for the paper's two topologies: the imploding star
//     (archiver domain pulls everything in, e.g. BBSRC-CCLRC) and the
//     exploding star (tiered push from the producing domain, e.g. the
//     CERN CMS experiment); and
//   - execution windows ("an ILM process could only be run at some
//     domains during non-working hours or on weekends").
package ilm

import (
	"math"
	"sync"
	"time"
)

// ValueModel tracks the domain value of logical paths. Each access adds
// one unit that decays exponentially with the configured half-life; the
// value combines the decayed access mass with the object's freshness.
// Values live in [0, 100].
type ValueModel struct {
	// HalfLife of one access's contribution. Default 7 days.
	HalfLife time.Duration
	// FreshnessScale is the age at which the freshness component has
	// decayed to 1/e. Default 30 days.
	FreshnessScale time.Duration
	// AccessWeight and FreshWeight apportion the 100-point scale between
	// access mass and freshness. Defaults 70/30.
	AccessWeight, FreshWeight float64

	mu   sync.Mutex
	mass map[string]decayed
}

type decayed struct {
	value float64   // access mass at time `at`
	at    time.Time // last update instant
}

// NewValueModel returns a model with the default parameters.
func NewValueModel() *ValueModel {
	return &ValueModel{
		HalfLife:       7 * 24 * time.Hour,
		FreshnessScale: 30 * 24 * time.Hour,
		AccessWeight:   70,
		FreshWeight:    30,
		mass:           make(map[string]decayed),
	}
}

func (m *ValueModel) decayFactor(dt time.Duration) float64 {
	if dt <= 0 {
		return 1
	}
	return math.Exp2(-float64(dt) / float64(m.HalfLife))
}

// Record notes one access to path at the given instant.
func (m *ValueModel) Record(path string, at time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.mass[path]
	if d.at.IsZero() {
		m.mass[path] = decayed{value: 1, at: at}
		return
	}
	d.value = d.value*m.decayFactor(at.Sub(d.at)) + 1
	d.at = at
	m.mass[path] = d
}

// AccessMass returns the decayed access count of path as of now.
func (m *ValueModel) AccessMass(path string, now time.Time) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.mass[path]
	if !ok {
		return 0
	}
	return d.value * m.decayFactor(now.Sub(d.at))
}

// Value scores path in [0, 100] combining access mass and the freshness
// of the object created at `created`. The paper's observation — "a high
// value of data freshness will automatically yield a high business value"
// — is the FreshWeight term; the AccessWeight term captures domain
// interest beyond freshness.
func (m *ValueModel) Value(path string, created, now time.Time) float64 {
	mass := m.AccessMass(path, now)
	accessScore := mass / (mass + 3) // saturating: 3 recent accesses ≈ 0.5
	age := now.Sub(created)
	fresh := math.Exp(-float64(age) / float64(m.FreshnessScale))
	v := m.AccessWeight*accessScore + m.FreshWeight*fresh
	if v < 0 {
		return 0
	}
	if v > 100 {
		return 100
	}
	return v
}

// Forget drops the access history of path (e.g. after deletion).
func (m *ValueModel) Forget(path string) {
	m.mu.Lock()
	delete(m.mass, path)
	m.mu.Unlock()
}

// Window is a recurring execution window: ILM flows run only inside it.
// Hours are local to the window's reference clock; StartHour == EndHour
// means always open; StartHour > EndHour wraps past midnight (the classic
// "non-working hours" window, e.g. 20→6).
type Window struct {
	// StartHour and EndHour bound the window, [Start, End).
	StartHour, EndHour int
	// Days restricts the window to the listed weekdays (empty = all).
	// For wrapping windows the day is judged at the window's opening.
	Days []time.Weekday
}

// AlwaysOpen is the window that never closes.
var AlwaysOpen = Window{}

func (w Window) dayAllowed(d time.Weekday) bool {
	if len(w.Days) == 0 {
		return true
	}
	for _, x := range w.Days {
		if x == d {
			return true
		}
	}
	return false
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Time) bool {
	if w.StartHour == w.EndHour {
		return w.dayAllowed(t.Weekday())
	}
	h := t.Hour()
	if w.StartHour < w.EndHour {
		return h >= w.StartHour && h < w.EndHour && w.dayAllowed(t.Weekday())
	}
	// Wrapping window: open late t.Weekday(), or early in the morning of
	// the day after an allowed opening.
	if h >= w.StartHour {
		return w.dayAllowed(t.Weekday())
	}
	if h < w.EndHour {
		return w.dayAllowed(t.Add(-24 * time.Hour).Weekday())
	}
	return false
}

// NextOpen returns the earliest instant at or after t inside the window.
// The search is bounded to 15 days; a window that never opens within that
// horizon returns t unchanged (degenerate Days configuration).
func (w Window) NextOpen(t time.Time) time.Time {
	if w.Contains(t) {
		return t
	}
	// Advance to the next top of hour, then hour by hour.
	cur := t.Truncate(time.Hour).Add(time.Hour)
	for i := 0; i < 15*24; i++ {
		if w.Contains(cur) {
			return cur
		}
		cur = cur.Add(time.Hour)
	}
	return t
}
