package ilm

import (
	"fmt"
	"time"

	"datagridflow/internal/dgms"
	"datagridflow/internal/matrix"
	"datagridflow/internal/provenance"
)

// TrackAccesses subscribes the value model to the grid's access events,
// closing the loop the paper describes: domain users read data, the
// data's domain value grows, and ILM placement follows. It returns the
// subscription id (pass to Bus().Unsubscribe to stop tracking).
func TrackAccesses(g *dgms.Grid, m *ValueModel) int64 {
	return g.Bus().Subscribe(dgms.After, func(ev dgms.Event) error {
		m.Record(ev.Path, ev.Time)
		return nil
	}, dgms.EventAccess)
}

// CycleResult summarizes one ILM pass.
type CycleResult struct {
	// StartedAt is when the pass actually ran (after window gating).
	StartedAt time.Time
	// Stats is the planner summary for the pass.
	Stats PlanStats
	// Decisions carried out (after execution; failed steps remain
	// visible in the flow's status and provenance, not here).
	Decisions []Decision
	// ExecID is the matrix execution that applied the plan ("" if the
	// plan was empty).
	ExecID string
}

// Runner drives a policy as a long-run process: each cycle waits for
// the policy's execution window, plans against current values, compiles
// the plan to DGL and executes it on the engine. The runner is
// deliberately synchronous over a simulated clock — a production
// deployment would run one cycle per cron-like tick; experiments run
// many simulated days in milliseconds.
type Runner struct {
	Policy Policy
	Valuer Valuer
	// Interval between cycle starts (default 24h).
	Interval time.Duration

	grid   *dgms.Grid
	engine *matrix.Engine
}

// NewRunner builds a runner for one policy.
func NewRunner(g *dgms.Grid, e *matrix.Engine, p Policy, v Valuer) *Runner {
	return &Runner{Policy: p, Valuer: v, Interval: 24 * time.Hour, grid: g, engine: e}
}

// RunCycle executes one pass: wait for the window, plan, apply.
func (r *Runner) RunCycle() (CycleResult, error) {
	clock := r.grid.Clock()
	now := clock.Now()
	if !r.Policy.Window.Contains(now) {
		next := r.Policy.Window.NextOpen(now)
		clock.Sleep(next.Sub(now))
		now = clock.Now()
	}
	decisions, stats, err := r.Policy.Plan(r.grid, r.Valuer, now)
	if err != nil {
		return CycleResult{}, err
	}
	o := r.grid.Obs()
	o.Counter("ilm_cycles_total", "policy", r.Policy.Name).Inc()
	o.Counter("ilm_objects_examined_total").Add(int64(stats.Examined))
	o.Counter("ilm_migrations_total").Add(int64(stats.Migrates))
	o.Counter("ilm_replications_total").Add(int64(stats.Replicas))
	o.Counter("ilm_deletions_total").Add(int64(stats.Deletes))
	o.Counter("ilm_bytes_tiered_total").Add(stats.BytesToMove)
	res := CycleResult{StartedAt: now, Stats: stats, Decisions: decisions}
	if len(decisions) == 0 {
		_, _ = r.grid.Provenance().Append(provenance.Record{
			Time: now, Actor: r.Policy.Owner, Action: "ilm.cycle",
			Target: r.Policy.Scope, Outcome: provenance.OutcomeSkipped,
			Detail: map[string]string{"policy": r.Policy.Name, "examined": fmt.Sprint(stats.Examined)},
		})
		return res, nil
	}
	flow := r.Policy.Compile(decisions)
	exec, err := r.engine.Run(r.Policy.Owner, flow)
	if err != nil {
		return CycleResult{}, err
	}
	if err := exec.Wait(); err != nil {
		return res, fmt.Errorf("ilm: cycle execution: %w", err)
	}
	res.ExecID = exec.ID
	_, _ = r.grid.Provenance().Append(provenance.Record{
		Time: clock.Now(), Actor: r.Policy.Owner, Action: "ilm.cycle",
		Target: r.Policy.Scope, FlowID: exec.ID,
		Detail: map[string]string{
			"policy":   r.Policy.Name,
			"examined": fmt.Sprint(stats.Examined),
			"migrates": fmt.Sprint(stats.Migrates),
			"deletes":  fmt.Sprint(stats.Deletes),
		},
	})
	return res, nil
}

// RunCycles runs n cycles, advancing the clock by Interval between
// cycle starts, and returns every cycle's result.
func (r *Runner) RunCycles(n int) ([]CycleResult, error) {
	clock := r.grid.Clock()
	out := make([]CycleResult, 0, n)
	for i := 0; i < n; i++ {
		cycleStart := clock.Now()
		res, err := r.RunCycle()
		if err != nil {
			return out, err
		}
		out = append(out, res)
		if i < n-1 {
			nextStart := cycleStart.Add(r.Interval)
			if now := clock.Now(); nextStart.After(now) {
				clock.Sleep(nextStart.Sub(now))
			}
		}
	}
	return out, nil
}
