package ilm

import (
	"fmt"
	"testing"
	"time"

	"datagridflow/internal/matrix"
	"datagridflow/internal/provenance"
)

// TestLifecycleOverSimulatedWeeks runs the full domain-value loop: data
// is ingested hot, some of it keeps being read, the rest cools off, and
// successive nightly ILM cycles move each object to the tier its value
// earns — the paper's §2.1 scenario end to end.
func TestLifecycleOverSimulatedWeeks(t *testing.T) {
	g, e := ilmGrid(t, 6)
	model := NewValueModel()
	sub := TrackAccesses(g, model)
	defer g.Bus().Unsubscribe(sub)

	pol := Policy{
		Name: "lifecycle", Owner: g.Admin(), Scope: "/grid/data",
		Tiers: []Tier{
			{MinValue: 60, Resource: "gpfs"},
			{MinValue: 15, Resource: "disk"},
			{MinValue: 0, Resource: "tape"},
		},
		Window: Window{StartHour: 20, EndHour: 6}, // nightly
	}
	runner := NewRunner(g, e, pol, ModelValuer{Model: model})
	runner.Interval = 24 * time.Hour

	// Users read f000..f002 every day; f003..f005 are never touched.
	readHotFiles := func() {
		for i := 0; i < 3; i++ {
			if _, err := g.Get(g.Admin(), "", fmt.Sprintf("/grid/data/f%03d", i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	var lastResults []CycleResult
	for day := 0; day < 45; day++ {
		readHotFiles()
		res, err := runner.RunCycle()
		if err != nil {
			t.Fatalf("day %d: %v", day, err)
		}
		lastResults = append(lastResults, res)
		// Advance to the next day.
		g.Clock().Sleep(24 * time.Hour)
	}
	// Every cycle ran inside the window.
	for i, res := range lastResults {
		h := res.StartedAt.Hour()
		if !(h >= 20 || h < 6) {
			t.Errorf("cycle %d ran at hour %d, outside the window", i, h)
		}
	}
	// Hot files live on the fast tier; cold files sank to tape.
	for i := 0; i < 6; i++ {
		path := fmt.Sprintf("/grid/data/f%03d", i)
		reps, err := g.Namespace().Replicas(path)
		if err != nil || len(reps) != 1 {
			t.Fatalf("%s replicas: %v, %v", path, reps, err)
		}
		if i < 3 && reps[0].Resource != "gpfs" {
			t.Errorf("hot %s on %s, want gpfs", path, reps[0].Resource)
		}
		if i >= 3 && reps[0].Resource != "tape" {
			t.Errorf("cold %s on %s, want tape", path, reps[0].Resource)
		}
	}
	// Cycles are auditable.
	if n := g.Provenance().Count(provenance.Filter{Action: "ilm.cycle"}); n != 45 {
		t.Errorf("ilm.cycle records = %d", n)
	}
	// Once placement converges, cycles become no-ops (skipped outcome).
	last := lastResults[len(lastResults)-1]
	if len(last.Decisions) != 0 {
		t.Errorf("final cycle still moving data: %+v", last.Decisions)
	}
}

func TestRunnerRunCycles(t *testing.T) {
	g, e := ilmGrid(t, 3)
	for i := 0; i < 3; i++ {
		if err := g.SetMeta(g.Admin(), fmt.Sprintf("/grid/data/f%03d", i), "value", "5"); err != nil {
			t.Fatal(err)
		}
	}
	pol := Policy{
		Name: "batch", Owner: g.Admin(), Scope: "/grid/data",
		Tiers: []Tier{{MinValue: 0, Resource: "tape"}},
	}
	runner := NewRunner(g, e, pol, MetaValuer{})
	runner.Interval = 48 * time.Hour
	results, err := runner.RunCycles(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	// First cycle migrates everything; later cycles are no-ops.
	if results[0].Stats.Migrates != 3 || results[0].ExecID == "" {
		t.Errorf("cycle 0 = %+v", results[0])
	}
	if results[1].Stats.Migrates != 0 || results[1].ExecID != "" {
		t.Errorf("cycle 1 = %+v", results[1])
	}
	// Interval honored: cycle starts are >= 48h apart.
	gap := results[1].StartedAt.Sub(results[0].StartedAt)
	if gap < 48*time.Hour {
		t.Errorf("cycle gap = %v", gap)
	}
}

func TestRunnerPlanError(t *testing.T) {
	g, e := ilmGrid(t, 1)
	pol := Policy{Name: "bad", Owner: g.Admin(), Scope: "/missing"}
	runner := NewRunner(g, e, pol, MetaValuer{})
	if _, err := runner.RunCycle(); err == nil {
		t.Errorf("bad scope accepted")
	}
}

func TestRunnerExecutionFailureSurfaces(t *testing.T) {
	g, _ := ilmGrid(t, 1)
	// An engine whose migrate handler is sabotaged still reports the
	// cycle result (continue-policy steps swallow per-object errors, so
	// force a flow-level failure by deleting the engine's target
	// resource from under the policy). Simplest: policy targets a
	// resource that exists at plan time but is offline at execution.
	e := matrix.NewEngine(g)
	if err := g.SetMeta(g.Admin(), "/grid/data/f000", "value", "90"); err != nil {
		t.Fatal(err)
	}
	pol := Policy{
		Name: "flaky", Owner: g.Admin(), Scope: "/grid/data",
		Tiers: []Tier{{MinValue: 70, Resource: "gpfs"}, {MinValue: 0, Resource: "disk"}},
	}
	gpfs, _ := g.Resource("gpfs")
	gpfs.SetOffline(true)
	runner := NewRunner(g, e, pol, MetaValuer{})
	res, err := runner.RunCycle()
	// Steps use onError=continue, so the flow itself succeeds while the
	// decision is recorded; the object must still be on disk.
	if err != nil {
		t.Fatalf("cycle error: %v", err)
	}
	if len(res.Decisions) != 1 {
		t.Fatalf("decisions = %+v", res.Decisions)
	}
	reps, _ := g.Namespace().Replicas("/grid/data/f000")
	if reps[0].Resource != "disk" {
		t.Errorf("object moved despite offline target: %v", reps)
	}
	// The failed step is in the execution's status tree.
	st, err := e.Status(res.ExecID, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.CountByState()["failed"] != 1 {
		t.Errorf("failed steps = %v", st.CountByState())
	}
	gpfs.SetOffline(false)
	// The next cycle completes the move.
	res2, err := runner.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Decisions) != 1 {
		t.Fatalf("recovery decisions = %+v", res2.Decisions)
	}
	reps, _ = g.Namespace().Replicas("/grid/data/f000")
	if reps[0].Resource != "gpfs" {
		t.Errorf("recovery did not complete the move: %v", reps)
	}
}

func TestTrackAccesses(t *testing.T) {
	g, _ := ilmGrid(t, 1)
	model := NewValueModel()
	sub := TrackAccesses(g, model)
	path := "/grid/data/f000"
	if _, err := g.Get(g.Admin(), "", path); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Get(g.Admin(), "", path); err != nil {
		t.Fatal(err)
	}
	if mass := model.AccessMass(path, g.Clock().Now()); mass < 1.9 {
		t.Errorf("access mass = %v, want ≈2", mass)
	}
	g.Bus().Unsubscribe(sub)
	if _, err := g.Get(g.Admin(), "", path); err != nil {
		t.Fatal(err)
	}
	if mass := model.AccessMass(path, g.Clock().Now()); mass > 2.1 {
		t.Errorf("unsubscribed model still fed: %v", mass)
	}
}
