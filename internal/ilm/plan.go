package ilm

import (
	"fmt"
	"math"
	"sort"
	"time"

	"datagridflow/internal/dgl"
	"datagridflow/internal/dgms"
	"datagridflow/internal/namespace"
)

// Tier maps a value band to a target resource: objects whose domain value
// is at least MinValue (and below the next-higher tier) belong on
// Resource.
type Tier struct {
	// MinValue is the inclusive lower bound of the band.
	MinValue float64
	// Resource is the logical resource that should hold the object.
	Resource string
}

// Policy is one datagrid ILM policy over a collection subtree.
type Policy struct {
	// Name labels the generated flows and provenance.
	Name string
	// Owner is the grid user the generated flow runs as.
	Owner string
	// Scope is the collection subtree the policy governs.
	Scope string
	// Tiers, highest MinValue first after normalization, map value bands
	// to resources. An object below every tier keeps its placement
	// unless DeleteBelow applies.
	Tiers []Tier
	// DeleteBelow removes objects whose value drops under this bound
	// (0 disables deletion — most archives never delete).
	DeleteBelow float64
	// KeepReplica, when set, replicates to the target tier and keeps the
	// old copy instead of migrating (defensive placement).
	KeepReplica bool
	// Window gates execution of the generated flow.
	Window Window
}

// Decision is one planned placement change.
type Decision struct {
	Path   string
	Action string // "migrate", "replicate", "delete"
	From   string // resource (migrate)
	To     string // resource (migrate/replicate)
	Value  float64
	Size   int64
}

// PlanStats aggregates a plan.
type PlanStats struct {
	Examined    int
	Migrates    int
	Replicas    int
	Deletes     int
	BytesToMove int64
}

// Valuer scores an object's domain value at a given instant.
type Valuer interface {
	Value(e namespace.Entry, now time.Time) float64
}

// ModelValuer adapts a ValueModel to the Valuer interface.
type ModelValuer struct{ Model *ValueModel }

// Value implements Valuer.
func (v ModelValuer) Value(e namespace.Entry, now time.Time) float64 {
	return v.Model.Value(e.Path, e.Created, now)
}

// FreshnessValuer scores by age alone — the traditional HSM behaviour
// the paper contrasts ILM against ("Unlike traditional Hierarchical
// Storage Management (HSM) solutions, which normally use data freshness
// as the most important attribute in determining data placement, ILM
// solutions use data value"). Experiment E11 ablates the two.
type FreshnessValuer struct {
	// Scale is the age at which the score decays to 1/e (default 30d).
	Scale time.Duration
}

// Value implements Valuer: 100 at age zero, decaying exponentially.
func (v FreshnessValuer) Value(e namespace.Entry, now time.Time) float64 {
	scale := v.Scale
	if scale <= 0 {
		scale = 30 * 24 * time.Hour
	}
	age := now.Sub(e.Created)
	if age < 0 {
		age = 0
	}
	return 100 * math.Exp(-float64(age)/float64(scale))
}

// MetaValuer reads the value from a metadata attribute (default "value"),
// for deployments where curators assign business value explicitly.
type MetaValuer struct{ Attr string }

// Value implements Valuer; objects without the attribute score 0.
func (v MetaValuer) Value(e namespace.Entry, _ time.Time) float64 {
	attr := v.Attr
	if attr == "" {
		attr = "value"
	}
	var f float64
	if s, ok := e.Metadata[attr]; ok {
		fmt.Sscanf(s, "%f", &f)
	}
	return f
}

// targetTier returns the resource the value band selects, or "" when no
// tier applies.
func (p *Policy) targetTier(value float64) string {
	best := ""
	bestMin := -1.0
	for _, t := range p.Tiers {
		if value >= t.MinValue && t.MinValue > bestMin {
			best, bestMin = t.Resource, t.MinValue
		}
	}
	return best
}

// Plan examines every object under the policy's scope, scores it with the
// valuer, and emits the placement changes needed. The result is both the
// decision list (for reporting) and a DGL flow that applies it — the
// "interoperable description of the datagrid ILM processes" the paper
// calls for, executable, pausable and auditable like any datagridflow.
func (p *Policy) Plan(g *dgms.Grid, valuer Valuer, now time.Time) ([]Decision, PlanStats, error) {
	var decisions []Decision
	var stats PlanStats
	entries, err := g.Namespace().Search(namespace.Query{Scope: p.Scope, ObjectsOnly: true})
	if err != nil {
		return nil, stats, err
	}
	for _, e := range entries {
		stats.Examined++
		value := valuer.Value(e, now)
		if p.DeleteBelow > 0 && value < p.DeleteBelow {
			decisions = append(decisions, Decision{
				Path: e.Path, Action: "delete", Value: value, Size: e.Size,
			})
			stats.Deletes++
			continue
		}
		target := p.targetTier(value)
		if target == "" || len(e.Replicas) == 0 {
			continue
		}
		onTarget := false
		for _, r := range e.Replicas {
			if r.Resource == target {
				onTarget = true
				break
			}
		}
		if onTarget {
			continue
		}
		if p.KeepReplica {
			decisions = append(decisions, Decision{
				Path: e.Path, Action: "replicate", To: target, Value: value, Size: e.Size,
			})
			stats.Replicas++
		} else {
			from := e.Replicas[0].Resource
			decisions = append(decisions, Decision{
				Path: e.Path, Action: "migrate", From: from, To: target, Value: value, Size: e.Size,
			})
			stats.Migrates++
		}
		stats.BytesToMove += e.Size
	}
	sort.Slice(decisions, func(i, j int) bool { return decisions[i].Path < decisions[j].Path })
	return decisions, stats, nil
}

// Compile renders a decision list as a DGL flow. Steps use
// onError=continue so one bad object does not strand the rest of the
// lifecycle pass; failures stay visible in step states and provenance.
func (p *Policy) Compile(decisions []Decision) dgl.Flow {
	b := dgl.NewFlow("ilm:" + p.Name)
	for i, d := range decisions {
		var op dgl.Operation
		switch d.Action {
		case "delete":
			op = dgl.Op(dgl.OpDelete, map[string]string{"path": d.Path})
		case "replicate":
			op = dgl.Op(dgl.OpReplicate, map[string]string{"path": d.Path, "to": d.To})
		default:
			op = dgl.Op(dgl.OpMigrate, map[string]string{"path": d.Path, "from": d.From, "to": d.To})
		}
		b.StepWith(dgl.Step{
			Name:      fmt.Sprintf("%s-%04d", d.Action, i),
			OnError:   dgl.OnErrorContinue,
			Operation: op,
		})
	}
	return b.Flow()
}

// ImplodingStar generates the archiver-domain flow: every object under
// scope is replicated onto archiveResource (the BBSRC pattern — "
// information from all the domains in the datagrid is finally pulled
// towards this domain"). When trimSources is set the source replicas are
// dropped afterwards, completing the pull.
func ImplodingStar(g *dgms.Grid, owner, scope, archiveResource string, trimSources bool) (dgl.Flow, error) {
	entries, err := g.Namespace().Search(namespace.Query{Scope: scope, ObjectsOnly: true})
	if err != nil {
		return dgl.Flow{}, err
	}
	b := dgl.NewFlow("imploding-star")
	for i, e := range entries {
		onArchive := false
		for _, r := range e.Replicas {
			if r.Resource == archiveResource {
				onArchive = true
			}
		}
		if onArchive {
			continue
		}
		if trimSources && len(e.Replicas) > 0 {
			b.StepWith(dgl.Step{
				Name:    fmt.Sprintf("pull-%04d", i),
				OnError: dgl.OnErrorContinue,
				Operation: dgl.Op(dgl.OpMigrate, map[string]string{
					"path": e.Path, "from": e.Replicas[0].Resource, "to": archiveResource,
				}),
			})
		} else {
			b.StepWith(dgl.Step{
				Name:    fmt.Sprintf("pull-%04d", i),
				OnError: dgl.OnErrorContinue,
				Operation: dgl.Op(dgl.OpReplicate, map[string]string{
					"path": e.Path, "to": archiveResource,
				}),
			})
		}
	}
	_ = owner
	return b.Flow(), nil
}

// ExplodingStar generates the tiered push flow of the CMS pattern: data
// produced at the source is "replicated in stages at different tiers
// across the globe". tiers[0] replicates from the source, tiers[1] from
// tiers[0], and so on; replication within one tier runs in parallel,
// tiers themselves run sequentially (each stage feeds the next).
func ExplodingStar(g *dgms.Grid, owner, scope string, tiers [][]string) (dgl.Flow, error) {
	entries, err := g.Namespace().Search(namespace.Query{Scope: scope, ObjectsOnly: true})
	if err != nil {
		return dgl.Flow{}, err
	}
	root := dgl.NewFlow("exploding-star")
	for ti, tierResources := range tiers {
		stage := dgl.NewFlow(fmt.Sprintf("tier-%d", ti+1)).Parallel()
		for ri, res := range tierResources {
			perRes := dgl.NewFlow(fmt.Sprintf("to-%s-%d", res, ri))
			for ei, e := range entries {
				params := map[string]string{"path": e.Path, "to": res}
				if ti > 0 {
					// Stage: pull from a tier-(N-1) replica, spreading
					// load round-robin across the previous tier.
					prev := tiers[ti-1]
					params["from"] = prev[(ri+ei)%len(prev)]
				}
				perRes.StepWith(dgl.Step{
					Name:      fmt.Sprintf("rep-%04d", ei),
					OnError:   dgl.OnErrorContinue,
					Operation: dgl.Op(dgl.OpReplicate, params),
				})
			}
			stage.SubFlow(perRes)
		}
		root.SubFlow(stage)
	}
	_ = owner
	return root.Flow(), nil
}
