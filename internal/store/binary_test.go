package store

import (
	"os"
	"path/filepath"
	"testing"

	"datagridflow/internal/codec"
)

// TestStoreBinaryAppendReplay round-trips a lifecycle through a binary
// store and a reopen.
func TestStoreBinaryAppendReplay(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Binary: true})
	appendAll(t, s,
		Record{Type: TypeExecStart, ID: "dgf-1", Request: "<dataGridRequest/>"},
		Record{Type: TypeStepDone, ID: "dgf-1", Node: "/f/a"},
		Record{Type: TypeExecSnap, ID: "dgf-2", Request: "<dataGridRequest/>",
			Vars: map[string]string{"k": "v"}, Done: []string{"/f/a"}, Paused: true},
	)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The segment on disk must actually be binary.
	data, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !codec.IsBinary(data) {
		t.Fatalf("segment is not binary: % x", data[:min(8, len(data))])
	}

	s2 := mustOpen(t, dir, Options{Binary: true})
	defer s2.Close()
	if got := s2.Stats().ReplayRecords; got != 3 {
		t.Fatalf("replayed %d records, want 3", got)
	}
	ent, ok := s2.Entry("dgf-2")
	if !ok || ent.Vars["k"] != "v" || !ent.Paused || len(ent.Done) != 1 {
		t.Fatalf("dgf-2 entry = %+v, %v", ent, ok)
	}
	ent, ok = s2.Entry("dgf-1")
	if !ok || ent.Request != "<dataGridRequest/>" {
		t.Fatalf("dgf-1 entry = %+v, %v", ent, ok)
	}
}

// TestStoreBinaryAppendBatch checks the vectored write path: one block,
// one group commit, every record indexed and replayable.
func TestStoreBinaryAppendBatch(t *testing.T) {
	for _, binary := range []bool{true, false} {
		dir := t.TempDir()
		s := mustOpen(t, dir, Options{Binary: binary})
		recs := append(lifecycle("dgf-1"),
			Record{Type: TypeExecStart, ID: "dgf-2", Request: "<dataGridRequest/>"},
			Record{Type: TypeStepDone, ID: "dgf-2", Node: "/f/a"},
		)
		if err := s.AppendBatch(recs); err != nil {
			t.Fatalf("binary=%v: %v", binary, err)
		}
		if got := s.Stats().Records; got != len(recs) {
			t.Fatalf("binary=%v: records = %d, want %d", binary, got, len(recs))
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s2 := mustOpen(t, dir, Options{Binary: binary})
		if got := s2.Stats().ReplayRecords; got != len(recs) {
			t.Fatalf("binary=%v: replayed %d, want %d", binary, got, len(recs))
		}
		ent, ok := s2.Entry("dgf-2")
		if !ok || len(ent.Done) != 1 {
			t.Fatalf("binary=%v: dgf-2 = %+v, %v", binary, ent, ok)
		}
		s2.Close()
	}
}

// TestStoreJSONDirectoryReplaysUnderBinary opens a directory written
// entirely in JSONL with Binary set: the old segments must replay
// unchanged, new appends must land in a fresh binary segment, and a
// compaction must leave a single binary segment.
func TestStoreJSONDirectoryReplaysUnderBinary(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	appendAll(t, s, lifecycle("dgf-1")...)
	appendAll(t, s,
		Record{Type: TypeExecStart, ID: "dgf-2", Request: "<dataGridRequest/>"},
		Record{Type: TypeStepDone, ID: "dgf-2", Node: "/f/a"},
	)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{Binary: true})
	if got := s2.Stats().ReplayRecords; got != 6 {
		t.Fatalf("replayed %d, want 6", got)
	}
	// The non-empty JSONL tail was sealed: appends go to a new segment.
	if got := s2.Stats().Segments; got != 2 {
		t.Fatalf("segments after mixed open = %d, want 2", got)
	}
	appendAll(t, s2, Record{Type: TypeStepDone, ID: "dgf-2", Node: "/f/b"})
	data, err := os.ReadFile(filepath.Join(dir, segName(2)))
	if err != nil {
		t.Fatal(err)
	}
	if !codec.IsBinary(data) {
		t.Fatal("new active segment is not binary")
	}
	// Compaction converts the survivors to the configured encoding.
	if _, err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if len(segs) != 1 {
		t.Fatalf("segments after compact = %v", segs)
	}
	data, err = os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !codec.IsBinary(data) {
		t.Fatal("compacted segment is not binary")
	}
	s3 := mustOpen(t, dir, Options{Binary: true})
	defer s3.Close()
	ent, ok := s3.Entry("dgf-2")
	if !ok || len(ent.Done) != 2 {
		t.Fatalf("dgf-2 after convert+compact = %+v, %v", ent, ok)
	}
	if _, ok := s3.Entry("dgf-1"); ok {
		t.Fatal("ended dgf-1 survived compaction")
	}
}

// TestStoreBinaryDirectoryReplaysUnderJSON is the reverse migration:
// a binary directory reopened with Binary unset keeps working.
func TestStoreBinaryDirectoryReplaysUnderJSON(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Binary: true})
	appendAll(t, s,
		Record{Type: TypeExecStart, ID: "dgf-1", Request: "<dataGridRequest/>"},
		Record{Type: TypeStepDone, ID: "dgf-1", Node: "/f/a"},
	)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if got := s2.Stats().ReplayRecords; got != 2 {
		t.Fatalf("replayed %d, want 2", got)
	}
	appendAll(t, s2, Record{Type: TypeStepDone, ID: "dgf-1", Node: "/f/b"})
	ent, _ := s2.Entry("dgf-1")
	if len(ent.Done) != 2 {
		t.Fatalf("entry = %+v", ent)
	}
}

// TestStoreBinaryTornTail truncates the active binary segment
// mid-frame and wants the reopen to discard the torn tail, repair the
// file, and accept new appends.
func TestStoreBinaryTornTail(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Binary: true})
	appendAll(t, s,
		Record{Type: TypeExecStart, ID: "dgf-1", Request: "<dataGridRequest/>"},
		Record{Type: TypeStepDone, ID: "dgf-1", Node: "/f/a"},
		Record{Type: TypeStepDone, ID: "dgf-1", Node: "/f/b"},
	)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segName(1))
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-3); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{Binary: true})
	if got := s2.Stats().ReplayRecords; got != 2 {
		t.Fatalf("replayed %d, want 2 (torn frame discarded)", got)
	}
	ent, _ := s2.Entry("dgf-1")
	if len(ent.Done) != 1 || ent.Done[0] != "/f/a" {
		t.Fatalf("entry = %+v", ent)
	}
	appendAll(t, s2, Record{Type: TypeStepDone, ID: "dgf-1", Node: "/f/c"})
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := mustOpen(t, dir, Options{Binary: true})
	defer s3.Close()
	ent, _ = s3.Entry("dgf-1")
	if len(ent.Done) != 2 {
		t.Fatalf("entry after repair+append = %+v", ent)
	}
}

// TestStoreBinaryRotation drives the active binary segment over
// SegmentMaxBytes and wants clean rotation and full replay.
func TestStoreBinaryRotation(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Binary: true, SegmentMaxBytes: 256})
	for i := 0; i < 8; i++ {
		appendAll(t, s, lifecycle(segName(i))...)
	}
	if got := s.Stats().Segments; got < 2 {
		t.Fatalf("segments = %d, want rotation", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{Binary: true})
	defer s2.Close()
	if got := s2.Stats().ReplayRecords; got != 32 {
		t.Fatalf("replayed %d, want 32", got)
	}
}
