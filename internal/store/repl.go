package store

// Replication cursor and tap (docs/REPLICATION.md).
//
// The store already emits an ordered, group-committed record stream;
// replication only needs a durable-order cursor over it. Every record
// that survives its fsync is assigned a monotonically increasing
// sequence number (replSeq) under s.mu, and — when a tap is attached —
// queued for delivery. Delivery happens outside s.mu, serialized by
// tapMu, so a blocking tap (quorum ack waiting on a follower) stalls
// the appender that owns the batch without deadlocking the store, and
// the tap always observes records in strict sequence order.

// TapRecord is one durable record paired with its replication sequence
// number.
type TapRecord struct {
	// Seq is the record's position in the durable order, starting at 1
	// for the first record made durable after Open. Sequence numbers
	// are per-process, not persisted: a reopened store restarts at 1,
	// and followers detect the discontinuity as a gap and re-sync by
	// snapshot.
	Seq uint64
	Rec Record
}

// SetTap attaches (or, with nil, detaches) the replication tap. The tap
// is invoked with batches of fsync-proven records in sequence order,
// outside the store's index lock, and returns a wait function (or nil):
// the two-phase shape lets the store hand off the batch under the
// ordering lock but wait for follower acknowledgements outside it, so
// concurrent appenders' ack round trips overlap instead of queueing.
// The Append/AppendBatch call whose records a batch carries does not
// return until the wait completes — that coupling is what makes a
// quorum-acked Append mean "durable here AND acknowledged by a
// follower".
func (s *Store) SetTap(fn func([]TapRecord) func()) {
	s.tapMu.Lock()
	defer s.tapMu.Unlock()
	s.mu.Lock()
	s.tap = fn
	if fn == nil {
		s.tapQueue = nil
	}
	s.mu.Unlock()
}

// ReplSeq returns the sequence number of the last durable record — the
// position a fully caught-up follower would have acknowledged.
func (s *Store) ReplSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replSeq
}

// flushTap delivers every queued tap record. Callers must NOT hold
// s.mu. tapMu makes hand-off single-file: two appenders that both
// proved records durable race to this point, but whichever wins the
// lock hands the whole queue (its own records and the loser's) to the
// tap in sequence order, and the loser finds an empty queue — its
// records were piggybacked on the winner's delivery, mirroring how
// group commit shares fsyncs.
//
// The ack wait happens outside tapMu: each deliverer parks its wait
// handle in tapWaits, and every flusher — deliverer or piggybacked —
// waits out the handles outstanding at its hand-off point, which by
// construction cover its own records. Round trips for successive
// batches therefore overlap, and the sender coalesces what queues
// behind an in-flight one.
func (s *Store) flushTap() {
	s.tapMu.Lock()
	s.mu.Lock()
	tap := s.tap
	batch := s.tapQueue
	s.tapQueue = nil
	s.mu.Unlock()
	var wait func()
	if tap != nil && len(batch) > 0 {
		wait = tap(batch) // ordered hand-off under tapMu
	}
	var handle chan struct{}
	if wait != nil {
		handle = make(chan struct{})
		s.tapWaits = append(s.tapWaits, handle)
	}
	pending := append([]chan struct{}(nil), s.tapWaits...)
	s.tapMu.Unlock()

	if wait != nil {
		wait()
		close(handle)
		s.tapMu.Lock()
		for i, h := range s.tapWaits {
			if h == handle {
				s.tapWaits = append(s.tapWaits[:i], s.tapWaits[i+1:]...)
				break
			}
		}
		s.tapMu.Unlock()
	}
	for _, h := range pending {
		if h != handle {
			<-h
		}
	}
}

// SnapshotRecords builds the follower catch-up payload: one merged
// exec.snap per live execution (exactly what Compact would write as the
// replacement segment) plus the replication sequence number the
// snapshot is current through. Records still pending their group commit
// carry no sequence number yet and are excluded on both sides — they
// will reach the follower through the tap with seq > the returned one.
func (s *Store) SnapshotRecords() ([]Record, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.opt.Now()
	var recs []Record
	for _, id := range s.order {
		st := s.index[id]
		if st == nil || st.ended || st.pruned {
			continue
		}
		vars := make(map[string]string, len(st.vars))
		for k, v := range st.vars {
			vars[k] = v
		}
		recs = append(recs, Record{
			Type: TypeExecSnap, ID: id, Time: now,
			Request: st.req, Vars: vars, Done: sortedKeys(st.done),
			Paused: st.paused, Passivated: st.passivated,
		})
	}
	return recs, s.replSeq
}
