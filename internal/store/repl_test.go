package store

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

func openTap(t *testing.T, opt Options) *Store {
	t.Helper()
	st, err := Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestTapSequenceOrder: the tap sees every durable record exactly once,
// numbered contiguously from 1, in order — across concurrent appenders
// and group-committed batches.
func TestTapSequenceOrder(t *testing.T) {
	st := openTap(t, Options{})
	var mu sync.Mutex
	var seen []TapRecord
	st.SetTap(func(batch []TapRecord) func() {
		mu.Lock()
		seen = append(seen, batch...)
		mu.Unlock()
		return nil
	})
	const workers, per = 4, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				if err := st.AppendBatch([]Record{
					{Type: TypeExecSnap, ID: id},
					{Type: TypeExecEnd, ID: id},
				}); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	want := workers * per * 2
	if len(seen) != want {
		t.Fatalf("tap saw %d records, want %d", len(seen), want)
	}
	for i, tr := range seen {
		if tr.Seq != uint64(i+1) {
			t.Fatalf("tap record %d has seq %d (out of order or gapped)", i, tr.Seq)
		}
	}
	if got := st.ReplSeq(); got != uint64(want) {
		t.Fatalf("ReplSeq = %d, want %d", got, want)
	}
}

// TestTapWaitBlocksAppend: an Append whose batch demands a wait must
// not return before the wait completes — that coupling is what makes a
// quorum-acked append a durability promise.
func TestTapWaitBlocksAppend(t *testing.T) {
	st := openTap(t, Options{})
	release := make(chan struct{})
	st.SetTap(func(batch []TapRecord) func() {
		return func() { <-release }
	})
	done := make(chan struct{})
	go func() {
		if err := st.Append(Record{Type: TypeExecSnap, ID: "x"}); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("append returned before the tap wait completed")
	case <-time.After(30 * time.Millisecond):
	}
	close(release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("append never returned after the wait released")
	}
}

// TestTapWaitsOverlap: with the two-phase tap, a second appender's
// hand-off proceeds while the first appender's wait is still pending —
// ack round trips overlap instead of queueing — and both appends
// complete once all waits release, in any order.
func TestTapWaitsOverlap(t *testing.T) {
	st := openTap(t, Options{})
	type waitReq struct {
		id      string
		release chan struct{}
	}
	handed := make(chan waitReq, 4)
	st.SetTap(func(batch []TapRecord) func() {
		req := waitReq{id: batch[0].Rec.ID, release: make(chan struct{})}
		handed <- req
		return func() { <-req.release }
	})
	appendDone := func(id string) chan struct{} {
		done := make(chan struct{})
		go func() {
			if err := st.Append(Record{Type: TypeExecSnap, ID: id}); err != nil {
				t.Error(err)
			}
			close(done)
		}()
		return done
	}
	d1 := appendDone("a")
	w1 := <-handed
	// First wait is pending; the second appender must still get its
	// batch handed off (possibly group-committed with nothing else).
	d2 := appendDone("b")
	var w2 waitReq
	select {
	case w2 = <-handed:
	case <-time.After(5 * time.Second):
		t.Fatal("second hand-off blocked behind the first wait")
	}
	// Release in reverse order: the piggyback bookkeeping must not
	// deadlock on completion order.
	close(w2.release)
	close(w1.release)
	for _, d := range []chan struct{}{d1, d2} {
		select {
		case <-d:
		case <-time.After(5 * time.Second):
			t.Fatal("append never completed")
		}
	}
	if w1.id == w2.id {
		t.Fatalf("both hand-offs carried %q", w1.id)
	}
}

// TestTapDetach: a nil tap detaches cleanly and drops queued delivery.
func TestTapDetach(t *testing.T) {
	st := openTap(t, Options{})
	calls := 0
	st.SetTap(func(batch []TapRecord) func() {
		calls++
		return nil
	})
	if err := st.Append(Record{Type: TypeExecSnap, ID: "x"}); err != nil {
		t.Fatal(err)
	}
	st.SetTap(nil)
	if err := st.Append(Record{Type: TypeExecSnap, ID: "y"}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("tap called %d times, want 1 (detached before the second append)", calls)
	}
	// Sequence numbers keep advancing while detached: a re-attached tap
	// resumes at the durable cursor, it does not restart.
	if got := st.ReplSeq(); got != 2 {
		t.Fatalf("ReplSeq = %d, want 2", got)
	}
}

// TestSnapshotRecords: the catch-up payload is one merged exec.snap per
// live execution — ended flows excluded — current through the cursor.
func TestSnapshotRecords(t *testing.T) {
	st := openTap(t, Options{})
	for _, rec := range []Record{
		{Type: TypeExecSnap, ID: "live1", Request: "<r/>", Vars: map[string]string{"k": "v"}},
		{Type: TypeExecSnap, ID: "done1"},
		{Type: TypeExecEnd, ID: "done1"},
		{Type: TypeExecSnap, ID: "live2", Done: []string{"step1"}},
	} {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	recs, seq := st.SnapshotRecords()
	if seq != 4 {
		t.Fatalf("snapshot seq = %d, want 4", seq)
	}
	var ids []string
	for _, r := range recs {
		if r.Type != TypeExecSnap {
			t.Fatalf("snapshot carries %s record", r.Type)
		}
		ids = append(ids, r.ID)
	}
	if !reflect.DeepEqual(ids, []string{"live1", "live2"}) {
		t.Fatalf("snapshot ids: %v", ids)
	}
	if recs[0].Vars["k"] != "v" || recs[0].Request != "<r/>" {
		t.Fatalf("snapshot lost state: %+v", recs[0])
	}
	if !reflect.DeepEqual(recs[1].Done, []string{"step1"}) {
		t.Fatalf("snapshot lost done set: %+v", recs[1])
	}
}

// TestRelaxedSyncDurability: a RelaxedSync store (the replica posture)
// still round-trips its records through close/reopen — it skips the
// fsync wait, not the write.
func TestRelaxedSyncDurability(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{RelaxedSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendBatch([]Record{
		{Type: TypeExecSnap, ID: "a"},
		{Type: TypeExecSnap, ID: "b"},
		{Type: TypeExecEnd, ID: "b"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	again, err := Open(dir, Options{RelaxedSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	live := again.Live()
	if len(live) != 1 || live[0].ID != "a" {
		t.Fatalf("live after reopen: %+v", live)
	}
}
