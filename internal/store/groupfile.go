package store

import (
	"fmt"
	"os"
	"sync"

	"datagridflow/internal/obs"
)

// GroupFile is an append-only file with group-committed durability:
// concurrent appenders write their lines immediately but share fsyncs.
// One appender becomes the syncer for everything written so far; the
// rest wait until a sync covers their line. Under N concurrent writers
// this turns N fsyncs into roughly one per batch without weakening the
// guarantee — Append returns only after the record is on stable
// storage.
//
// Both the matrix journal and the store's segments write through
// GroupFile; the PR 3 load harness showed the journal serializing
// throughput on per-record fsyncs, and this is the fix.
type GroupFile struct {
	mu   sync.Mutex
	cond *sync.Cond
	f    *os.File
	path string
	size int64

	writeSeq int64 // records written
	syncSeq  int64 // records proven on disk
	syncing  bool
	closed   bool
	err      error // sticky: first write/sync failure poisons the file

	wbuf []byte // reused staging buffer, guarded by mu

	reg *obs.Registry
}

// OpenGroupFile opens (creating if needed) path in append mode.
func OpenGroupFile(path string) (*GroupFile, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	size := int64(0)
	if st, err := f.Stat(); err == nil {
		size = st.Size()
	}
	g := &GroupFile{f: f, path: path, size: size}
	g.cond = sync.NewCond(&g.mu)
	return g, nil
}

// SetObs attaches a metrics registry; each group commit then counts
// toward journal_group_commits_total and the lines it covered toward
// journal_group_commit_records_total.
func (g *GroupFile) SetObs(reg *obs.Registry) {
	g.mu.Lock()
	g.reg = reg
	g.mu.Unlock()
}

// Path returns the file path.
func (g *GroupFile) Path() string { return g.path }

// Size returns the current byte size (initial size plus appends).
func (g *GroupFile) Size() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.size
}

// Write appends one line (a newline is added) and returns its commit
// ticket for Sync. The line is in the OS buffer but not yet durable.
func (g *GroupFile) Write(line []byte) (int64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.wbuf = append(g.wbuf[:0], line...)
	g.wbuf = append(g.wbuf, '\n')
	return g.writeLocked(g.wbuf, 1)
}

// WriteRaw appends one pre-framed record as-is (no newline — binary
// frames are self-delimiting) and returns its commit ticket.
func (g *GroupFile) WriteRaw(frame []byte) (int64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.writeLocked(frame, 1)
}

// WriteBlock appends a block of pre-serialized records — JSONL lines or
// binary frames, already framed by the caller — in ONE write syscall,
// and returns a commit ticket covering all of them. This is the
// vectored-write path: a batch encodes N records into one buffer, pays
// one write and (via Sync) one shared fsync, yet each record still
// counts toward the group-commit record metrics.
func (g *GroupFile) WriteBlock(block []byte, records int64) (int64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.writeLocked(block, records)
}

func (g *GroupFile) writeLocked(b []byte, records int64) (int64, error) {
	if g.closed {
		return 0, fmt.Errorf("store: %s: %w", g.path, os.ErrClosed)
	}
	if g.err != nil {
		return 0, g.err
	}
	if _, err := g.f.Write(b); err != nil {
		g.err = err
		g.cond.Broadcast()
		return 0, err
	}
	g.size += int64(len(b))
	g.writeSeq += records
	return g.writeSeq, nil
}

// Sync blocks until the line with the given ticket is durable. The
// first caller to arrive while no sync is running fsyncs on behalf of
// every line written so far; later callers piggyback on that commit.
func (g *GroupFile) Sync(ticket int64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		if g.err != nil {
			return g.err
		}
		if g.syncSeq >= ticket {
			return nil
		}
		if g.closed {
			return fmt.Errorf("store: %s: %w", g.path, os.ErrClosed)
		}
		if !g.syncing {
			g.syncing = true
			target := g.writeSeq
			covered := target - g.syncSeq
			g.mu.Unlock()
			err := g.f.Sync()
			g.mu.Lock()
			g.syncing = false
			if err != nil {
				g.err = err
			} else {
				g.syncSeq = target
				if g.reg != nil {
					g.reg.Counter("journal_group_commits_total").Inc()
					g.reg.Counter("journal_group_commit_records_total").Add(covered)
				}
			}
			g.cond.Broadcast()
			continue
		}
		g.cond.Wait()
	}
}

// Append writes one line and blocks until it is durable — Write + Sync.
func (g *GroupFile) Append(line []byte) error {
	ticket, err := g.Write(line)
	if err != nil {
		return err
	}
	return g.Sync(ticket)
}

// AppendRaw writes one pre-framed record and blocks until it is
// durable — WriteRaw + Sync.
func (g *GroupFile) AppendRaw(frame []byte) error {
	ticket, err := g.WriteRaw(frame)
	if err != nil {
		return err
	}
	return g.Sync(ticket)
}

// Close performs a final sync covering every written line, wakes all
// waiters and closes the file. Waiters whose lines made it to disk
// return nil; later Writes fail with os.ErrClosed.
func (g *GroupFile) Close() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.syncing {
		g.cond.Wait()
	}
	if g.closed {
		return nil
	}
	if g.err == nil && g.syncSeq < g.writeSeq {
		if err := g.f.Sync(); err != nil {
			g.err = err
		} else {
			g.syncSeq = g.writeSeq
		}
	}
	g.closed = true
	g.cond.Broadcast()
	return g.f.Close()
}
