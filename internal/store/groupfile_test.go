package store

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"datagridflow/internal/obs"
)

func readLines(t *testing.T, path string) []string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		out = append(out, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return out
}

func TestGroupFileAppendDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.log")
	g, err := OpenGroupFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := g.Append([]byte(fmt.Sprintf("line-%d", i))); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if got := g.Size(); got != int64(len("line-0\n")*3) {
		t.Fatalf("size = %d", got)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	lines := readLines(t, path)
	if len(lines) != 3 || lines[0] != "line-0" || lines[2] != "line-2" {
		t.Fatalf("lines = %q", lines)
	}
	// Close is idempotent; writes after close fail.
	if err := g.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := g.Write([]byte("x")); err == nil {
		t.Fatal("write after close succeeded")
	}
}

// TestGroupFileGroupCommit drives many concurrent appenders through one
// GroupFile and checks (a) every line lands on disk and (b) the fsync
// count is below the append count — concurrent commits were batched.
func TestGroupFileGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.log")
	g, err := OpenGroupFile(path)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	g.SetObs(reg)

	const writers, perWriter = 16, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := g.Append([]byte(fmt.Sprintf("w%02d-%03d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("append: %v", err)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	total := int64(writers * perWriter)
	lines := readLines(t, path)
	if int64(len(lines)) != total {
		t.Fatalf("lines on disk = %d, want %d", len(lines), total)
	}
	seen := make(map[string]bool, total)
	for _, l := range lines {
		if seen[l] {
			t.Fatalf("duplicate line %q", l)
		}
		seen[l] = true
	}
	commits := reg.Counter("journal_group_commits_total").Value()
	covered := reg.Counter("journal_group_commit_records_total").Value()
	if covered != total {
		t.Fatalf("covered records = %d, want %d", covered, total)
	}
	if commits < 1 || commits > total {
		t.Fatalf("commits = %d, outside [1, %d]", commits, total)
	}
	t.Logf("group commit: %d records in %d fsyncs (%.1f records/fsync)",
		total, commits, float64(covered)/float64(commits))
}

// TestGroupFileBatchedSync proves the batching contract deterministically:
// N writes followed by one Sync of the last ticket cost exactly one
// fsync, and earlier tickets are already covered.
func TestGroupFileBatchedSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.log")
	g, err := OpenGroupFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	reg := obs.NewRegistry()
	g.SetObs(reg)

	const n = 10
	tickets := make([]int64, n)
	for i := range tickets {
		tk, err := g.Write([]byte(fmt.Sprintf("b-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	if err := g.Sync(tickets[n-1]); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("journal_group_commits_total").Value(); got != 1 {
		t.Fatalf("commits after one sync = %d, want 1", got)
	}
	if got := reg.Counter("journal_group_commit_records_total").Value(); got != n {
		t.Fatalf("covered = %d, want %d", got, n)
	}
	// Earlier tickets ride the same commit: no further fsync.
	for _, tk := range tickets[:n-1] {
		if err := g.Sync(tk); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("journal_group_commits_total").Value(); got != 1 {
		t.Fatalf("commits after piggyback syncs = %d, want 1", got)
	}
}

func TestGroupFileCloseWakesWaiters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.log")
	g, err := OpenGroupFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ticket, err := g.Write([]byte("pending"))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- g.Sync(ticket) }()
	if err := g.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Close performed the final sync covering the line, so the waiter
	// must come back nil.
	if err := <-done; err != nil {
		t.Fatalf("sync after close: %v", err)
	}
}
