package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"datagridflow/internal/fault"
	"datagridflow/internal/obs"
	"datagridflow/internal/sim"
)

func mustOpen(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return s
}

func appendAll(t *testing.T, s *Store, recs ...Record) {
	t.Helper()
	for _, rec := range recs {
		if err := s.Append(rec); err != nil {
			t.Fatalf("append %s %s: %v", rec.Type, rec.ID, err)
		}
	}
}

// lifecycle returns the record stream of a small finished flow.
func lifecycle(id string) []Record {
	return []Record{
		{Type: TypeExecStart, ID: id, Request: "<dataGridRequest/>"},
		{Type: TypeStepDone, ID: id, Node: "/f/a"},
		{Type: TypeStepDone, ID: id, Node: "/f/b"},
		{Type: TypeExecEnd, ID: id},
	}
}

func TestStoreAppendReplay(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	appendAll(t, s,
		Record{Type: TypeExecStart, ID: "dgf-000001", Request: "<r1/>"},
		Record{Type: TypeStepDone, ID: "dgf-000001", Node: "/f/a"},
		Record{Type: TypeDelegDone, ID: "dgf-000001", Node: "/f/par", Peer: "peerB"},
	)
	appendAll(t, s, lifecycle("dgf-000002")...)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s = mustOpen(t, dir, Options{})
	defer s.Close()
	st := s.Stats()
	if st.ReplayRecords != 7 || st.Records != 7 {
		t.Fatalf("stats = %+v, want 7 replayed", st)
	}
	ent, ok := s.Entry("dgf-000001")
	if !ok {
		t.Fatal("dgf-000001 missing")
	}
	if ent.Request != "<r1/>" || len(ent.Done) != 2 || ent.Done[0] != "/f/a" || ent.Done[1] != "/f/par" {
		t.Fatalf("entry = %+v", ent)
	}
	if ent.Ended || ent.Passivated {
		t.Fatalf("entry flags = %+v", ent)
	}
	ent2, _ := s.Entry("dgf-000002")
	if !ent2.Ended {
		t.Fatalf("dgf-000002 not ended: %+v", ent2)
	}
	live := s.Live()
	if len(live) != 1 || live[0].ID != "dgf-000001" {
		t.Fatalf("live = %+v", live)
	}
	if ids := s.IDs(); len(ids) != 2 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestStoreSnapshotSupersedes(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	appendAll(t, s,
		Record{Type: TypeExecStart, ID: "x", Request: "<old/>"},
		Record{Type: TypeStepDone, ID: "x", Node: "/f/a"},
		Record{Type: TypeExecSnap, ID: "x", Request: "<new/>",
			Vars: map[string]string{"v": "1"}, Done: []string{"/f/a", "/f/b"}, Paused: true},
	)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, dir, Options{})
	defer s.Close()
	ent, _ := s.Entry("x")
	if ent.Request != "<new/>" || ent.Vars["v"] != "1" || !ent.Paused {
		t.Fatalf("entry = %+v", ent)
	}
	if len(ent.Done) != 2 {
		t.Fatalf("done = %v", ent.Done)
	}
	if s.Stats().SnapshotLag != 0 {
		t.Fatalf("snapshot lag = %d after snap", s.Stats().SnapshotLag)
	}
}

func TestStoreRotation(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentMaxBytes: 256})
	for i := 0; i < 20; i++ {
		appendAll(t, s, Record{Type: TypeExecStart, ID: fmt.Sprintf("dgf-%06d", i),
			Request: "<dataGridRequest padding='xxxxxxxxxxxxxxxx'/>"})
	}
	st := s.Stats()
	if st.Segments < 2 {
		t.Fatalf("segments = %d, want rotation", st.Segments)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if len(files) != st.Segments {
		t.Fatalf("on-disk segments = %d, stats say %d", len(files), st.Segments)
	}
	s = mustOpen(t, dir, Options{SegmentMaxBytes: 256})
	defer s.Close()
	if got := s.Stats().ReplayRecords; got != 20 {
		t.Fatalf("replayed = %d, want 20", got)
	}
	if len(s.Live()) != 20 {
		t.Fatalf("live = %d", len(s.Live()))
	}
}

func TestStoreCompact(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	now := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	s := mustOpen(t, dir, Options{SegmentMaxBytes: 512, Obs: reg,
		Now: func() time.Time { return now }})
	// Three finished flows, one live flow with history, one passivated.
	for i := 0; i < 3; i++ {
		appendAll(t, s, lifecycle(fmt.Sprintf("done-%d", i))...)
	}
	appendAll(t, s,
		Record{Type: TypeExecStart, ID: "live", Request: "<live/>"},
		Record{Type: TypeStepDone, ID: "live", Node: "/f/a"},
		Record{Type: TypeExecStart, ID: "idle", Request: "<idle/>"},
		Record{Type: TypeStepDone, ID: "idle", Node: "/f/a"},
		Record{Type: TypeExecSnap, ID: "idle", Request: "<idle/>",
			Vars: map[string]string{"n": "7"}, Done: []string{"/f/a"}},
		Record{Type: TypeExecPassivate, ID: "idle"},
	)
	before := s.Stats()
	cs, err := s.Compact()
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	if cs.SegmentsBefore != before.Segments || cs.RecordsBefore != before.Records {
		t.Fatalf("compact stats %+v disagree with %+v", cs, before)
	}
	if cs.RecordsKept != 2 {
		t.Fatalf("kept = %d, want 2 (live + idle)", cs.RecordsKept)
	}
	if cs.RecordsDropped != before.Records-2 {
		t.Fatalf("dropped = %d", cs.RecordsDropped)
	}
	after := s.Stats()
	if after.Segments != 1 || after.Records != 2 || after.Live != 2 || after.Passivated != 1 {
		t.Fatalf("post-compact stats = %+v", after)
	}
	if reg.Counter("store_compactions_total").Value() != 1 {
		t.Fatal("store_compactions_total not incremented")
	}
	// Appends continue on the compacted segment.
	appendAll(t, s, Record{Type: TypeStepDone, ID: "live", Node: "/f/b"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// One segment on disk; the merged snapshots carry everything.
	files, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if len(files) != 1 {
		t.Fatalf("segments on disk = %v", files)
	}
	s = mustOpen(t, dir, Options{})
	defer s.Close()
	if got := s.Stats().ReplayRecords; got != 3 {
		t.Fatalf("replayed after compact = %d, want 3", got)
	}
	ent, ok := s.Entry("idle")
	if !ok || !ent.Passivated || ent.Vars["n"] != "7" || len(ent.Done) != 1 {
		t.Fatalf("idle entry = %+v ok=%v", ent, ok)
	}
	liveEnt, _ := s.Entry("live")
	if len(liveEnt.Done) != 2 {
		t.Fatalf("live done = %v", liveEnt.Done)
	}
	if _, ok := s.Entry("done-0"); ok {
		t.Fatal("ended flow survived compaction")
	}
	if got := s.Stats().Passivated; got != 1 {
		t.Fatalf("passivated after reopen = %d", got)
	}
}

func TestStorePruneTombstone(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	appendAll(t, s,
		Record{Type: TypeExecStart, ID: "p", Request: "<p/>"},
		Record{Type: TypeExecSnap, ID: "p", Request: "<p/>", Done: []string{"/f/a"}},
		Record{Type: TypeExecPassivate, ID: "p"},
		Record{Type: TypeExecPrune, ID: "p"},
		Record{Type: TypeExecStart, ID: "keep", Request: "<k/>"},
	)
	if got := s.Stats().Passivated; got != 0 {
		t.Fatalf("passivated after prune = %d", got)
	}
	// Reopen first: the tombstone must hold across replay.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, dir, Options{})
	ent, ok := s.Entry("p")
	if !ok || !ent.Pruned {
		t.Fatalf("pruned entry = %+v ok=%v", ent, ok)
	}
	for _, e := range s.Live() {
		if e.ID == "p" {
			t.Fatal("pruned flow listed live")
		}
	}
	// Compact drops the tombstoned flow entirely; a further reopen must
	// not resurrect it.
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Entry("p"); ok {
		t.Fatal("pruned flow survived compaction")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, dir, Options{})
	defer s.Close()
	if _, ok := s.Entry("p"); ok {
		t.Fatal("pruned flow resurrected after compact+reopen")
	}
	if _, ok := s.Entry("keep"); !ok {
		t.Fatal("live flow lost by compaction")
	}
}

// TestStoreTornTail simulates a crash mid-append: the active segment
// ends in half a JSON line. Open must discard it, truncate the file to
// the last complete record, and accept new appends cleanly.
func TestStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	appendAll(t, s,
		Record{Type: TypeExecStart, ID: "a", Request: "<a/>"},
		Record{Type: TypeStepDone, ID: "a", Node: "/f/s1"},
	)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"step.done","id":"a","node":"/f/s2"`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(seg)

	s = mustOpen(t, dir, Options{})
	st := s.Stats()
	if st.ReplayRecords != 2 {
		t.Fatalf("replayed = %d, want torn tail discarded", st.ReplayRecords)
	}
	after, _ := os.Stat(seg)
	if after.Size() >= before.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d", before.Size(), after.Size())
	}
	ent, _ := s.Entry("a")
	if len(ent.Done) != 1 || ent.Done[0] != "/f/s1" {
		t.Fatalf("done = %v", ent.Done)
	}
	// New appends start on a clean boundary: a third reopen sees intact
	// JSON throughout.
	appendAll(t, s, Record{Type: TypeStepDone, ID: "a", Node: "/f/s3"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, dir, Options{})
	defer s.Close()
	ent, _ = s.Entry("a")
	if len(ent.Done) != 2 || ent.Done[1] != "/f/s3" {
		t.Fatalf("done after repair+append = %v", ent.Done)
	}
}

// TestStoreTornTailCompleteRecord reproduces the subtler crash shape: a
// single write() persisted the complete JSON of the final record but
// not its trailing newline. The record was never acknowledged — Append
// fsyncs the line and its newline as one write — so Open must treat it
// as torn even though it parses. Keeping the file unterminated would
// also let the next O_APPEND write concatenate onto the line, rendering
// the segment unreadable (or silently dropping an acknowledged record)
// on the restart after that.
func TestStoreTornTailCompleteRecord(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	appendAll(t, s,
		Record{Type: TypeExecStart, ID: "a", Request: "<a/>"},
		Record{Type: TypeStepDone, ID: "a", Node: "/f/s1"},
	)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Complete JSON, no terminating newline: parseable but torn.
	if _, err := f.WriteString(`{"type":"step.done","id":"a","node":"/f/s2"}`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(seg)

	s = mustOpen(t, dir, Options{})
	if got := s.Stats().ReplayRecords; got != 2 {
		t.Fatalf("replayed = %d, want unacknowledged tail discarded", got)
	}
	ent, _ := s.Entry("a")
	if len(ent.Done) != 1 || ent.Done[0] != "/f/s1" {
		t.Fatalf("done = %v, want /f/s2 dropped", ent.Done)
	}
	after, _ := os.Stat(seg)
	if after.Size() >= before.Size() {
		t.Fatalf("unterminated tail not truncated: %d -> %d", before.Size(), after.Size())
	}
	// New appends land on a clean boundary: every line parses on the
	// next reopen instead of merging with the torn record.
	appendAll(t, s, Record{Type: TypeStepDone, ID: "a", Node: "/f/s3"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, dir, Options{})
	defer s.Close()
	ent, _ = s.Entry("a")
	if len(ent.Done) != 2 || ent.Done[1] != "/f/s3" {
		t.Fatalf("done after repair+append = %v", ent.Done)
	}
}

// TestStoreCompactConcurrentAppend races Compact against appenders: an
// acknowledged record must survive compaction swapping segments out
// from under it (Compact flushes the pending group-commit queue into
// the merged snapshots before deleting history).
func TestStoreCompactConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentMaxBytes: 2048})
	var wg sync.WaitGroup
	const flows = 16
	for i := 0; i < flows; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("dgf-%06d", i)
			appendAll(t, s,
				Record{Type: TypeExecStart, ID: id, Request: "<r/>"},
				Record{Type: TypeStepDone, ID: id, Node: "/f/a"},
				Record{Type: TypeStepDone, ID: id, Node: "/f/b"},
			)
		}(i)
	}
	compacted := make(chan error, 1)
	go func() {
		for j := 0; j < 8; j++ {
			if _, err := s.Compact(); err != nil {
				compacted <- err
				return
			}
		}
		compacted <- nil
	}()
	wg.Wait()
	if err := <-compacted; err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, dir, Options{})
	defer s.Close()
	for i := 0; i < flows; i++ {
		id := fmt.Sprintf("dgf-%06d", i)
		ent, ok := s.Entry(id)
		if !ok || len(ent.Done) != 2 {
			t.Fatalf("%s after compact race = %+v ok=%v", id, ent, ok)
		}
	}
}

// TestStoreCrashDuringCompaction verifies the temp-file + rename
// discipline: a .tmp left by a crash mid-compaction is ignored and
// removed at Open, and the old segments stay authoritative.
func TestStoreCrashDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	appendAll(t, s, lifecycle("done-1")...)
	appendAll(t, s, Record{Type: TypeExecStart, ID: "live", Request: "<live/>"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A crashed compaction leaves a half-written replacement segment
	// under .tmp — including a torn line, the worst case.
	tmp := filepath.Join(dir, segName(2)+".tmp")
	if err := os.WriteFile(tmp, []byte(`{"type":"exec.snap","id":"bogus"`), 0o644); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, dir, Options{})
	defer s.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("tmp survived open: %v", err)
	}
	if _, ok := s.Entry("bogus"); ok {
		t.Fatal("tmp contents leaked into the index")
	}
	st := s.Stats()
	if st.ReplayRecords != 5 || st.Live != 1 {
		t.Fatalf("stats = %+v, old segments not authoritative", st)
	}
}

// TestStoreCrashDuringSnapshotSeeded replays the crash-mid-append case
// at positions chosen by a seeded fault plan (internal/fault), so the
// cut points vary but reproduce across runs. Whatever prefix survives
// must parse, and the torn suffix must be dropped exactly once.
func TestStoreCrashDuringSnapshotSeeded(t *testing.T) {
	plan, err := fault.ParsePlan([]byte(`{
		"seed": 42,
		"events": [{"target": "store", "kind": "resource-flaky", "at": "0s", "prob": 0.3}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	clock := sim.NewVirtualClock(time.Unix(0, 0))
	inj, err := fault.NewInjector(clock, *plan)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 8; trial++ {
		dir := t.TempDir()
		s := mustOpen(t, dir, Options{})
		var recs []Record
		for i := 0; i < 6; i++ {
			recs = append(recs, Record{Type: TypeExecSnap, ID: fmt.Sprintf("dgf-%06d", i),
				Request: "<r/>", Vars: map[string]string{"i": fmt.Sprint(i)}})
		}
		appendAll(t, s, recs...)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		// The injector's seeded roll picks whether this trial crashes
		// mid-record; the roll ordinal makes trials differ.
		crashed := inj.CheckOp("store") != nil
		seg := filepath.Join(dir, segName(1))
		if crashed {
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			// Cut inside the last record: everything after its first byte.
			lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
			keep := strings.Join(lines[:len(lines)-1], "\n")
			if len(lines) > 1 {
				keep += "\n"
			}
			keep += lines[len(lines)-1][:3] // torn prefix of the final record
			if err := os.WriteFile(seg, []byte(keep), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		s = mustOpen(t, dir, Options{})
		want := 6
		if crashed {
			want = 5
		}
		if got := s.Stats().ReplayRecords; got != want {
			t.Fatalf("trial %d (crashed=%v): replayed %d, want %d", trial, crashed, got, want)
		}
		// Survivors are fully usable snapshots.
		for i := 0; i < want; i++ {
			ent, ok := s.Entry(fmt.Sprintf("dgf-%06d", i))
			if !ok || ent.Vars["i"] != fmt.Sprint(i) {
				t.Fatalf("trial %d: entry %d = %+v ok=%v", trial, i, ent, ok)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStoreConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentMaxBytes: 4096})
	var wg sync.WaitGroup
	const flows = 24
	for i := 0; i < flows; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("dgf-%06d", i)
			appendAll(t, s,
				Record{Type: TypeExecStart, ID: id, Request: "<r/>"},
				Record{Type: TypeStepDone, ID: id, Node: "/f/a"},
				Record{Type: TypeExecSnap, ID: id, Request: "<r/>", Done: []string{"/f/a"}},
			)
		}(i)
	}
	wg.Wait()
	if got := s.Stats().Records; got != flows*3 {
		t.Fatalf("records = %d", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, dir, Options{})
	defer s.Close()
	if got := len(s.Live()); got != flows {
		t.Fatalf("live after reopen = %d", got)
	}
}

// TestStoreRecordCompat pins the JSONL encoding: a store segment line is
// exactly the journal's record shape plus the snapshot fields.
func TestStoreRecordCompat(t *testing.T) {
	rec := Record{Type: TypeStepDone, ID: "dgf-000001", Node: "/f/a"}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"type":"step.done","id":"dgf-000001","time":"0001-01-01T00:00:00Z","node":"/f/a"}`
	if string(data) != want {
		t.Fatalf("encoding drifted:\n got %s\nwant %s", data, want)
	}
}

func TestStoreClosedErrors(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Record{Type: TypeExecStart, ID: "x"}); err == nil {
		t.Fatal("append after close succeeded")
	}
	if _, err := s.Compact(); err == nil {
		t.Fatal("compact after close succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
