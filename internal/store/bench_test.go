package store

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"datagridflow/internal/obs"
)

// BenchmarkGroupFileAppendSerial is the pre-group-commit baseline: one
// goroutine, one fsync per record. Compare with
// BenchmarkGroupFileAppendParallel to see what commit sharing buys.
func BenchmarkGroupFileAppendSerial(b *testing.B) {
	g, err := OpenGroupFile(filepath.Join(b.TempDir(), "bench.log"))
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	line := []byte(`{"type":"step.done","id":"dgf-000001","node":"/f/s"}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Append(line); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupFileAppendParallel drives concurrent appenders through
// the group commit: every Append is still durable on return, but
// contemporaneous records share fsyncs. Reports fsyncs/op (1.0 would
// mean no batching).
func BenchmarkGroupFileAppendParallel(b *testing.B) {
	g, err := OpenGroupFile(filepath.Join(b.TempDir(), "bench.log"))
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	reg := obs.NewRegistry()
	g.SetObs(reg)
	line := []byte(`{"type":"step.done","id":"dgf-000001","node":"/f/s"}`)
	b.ReportAllocs()
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := g.Append(line); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	commits := reg.Counter("journal_group_commits_total").Value()
	if b.N > 0 {
		b.ReportMetric(float64(commits)/float64(b.N), "fsyncs/op")
	}
}

// BenchmarkStoreAppendParallel measures the full store append path —
// marshal, rotation check, index fold, group-committed write — under
// concurrency, the shape of a busy engine checkpointing many flows.
func BenchmarkStoreAppendParallel(b *testing.B) {
	s, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			rec := Record{Type: TypeStepDone, ID: fmt.Sprintf("dgf-%06d", i%64), Node: "/f/s"}
			if err := s.Append(rec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStoreOpenCompacted measures restart replay of a compacted
// store — the recovery cost E14 bounds to O(live executions).
func BenchmarkStoreOpenCompacted(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{Now: func() time.Time { return time.Unix(0, 0) }})
	if err != nil {
		b.Fatal(err)
	}
	req, _ := json.Marshal(map[string]string{"flow": "bench"})
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("dgf-%06d", i)
		if err := s.Append(Record{Type: TypeExecStart, ID: id, Request: string(req)}); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 5; j++ {
			if err := s.Append(Record{Type: TypeStepDone, ID: id, Node: fmt.Sprintf("/f/s%d", j)}); err != nil {
				b.Fatal(err)
			}
		}
	}
	if _, err := s.Compact(); err != nil {
		b.Fatal(err)
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s2, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if got := s2.Stats().ReplayRecords; got != 1000 {
			b.Fatalf("replayed %d", got)
		}
		s2.Close()
	}
}
