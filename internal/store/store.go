package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"datagridflow/internal/codec"
	"datagridflow/internal/obs"
)

// Options tunes a Store.
type Options struct {
	// SegmentMaxBytes rotates the active segment once it exceeds this
	// size. Default 8 MiB.
	SegmentMaxBytes int64
	// Now stamps compaction-written records. Default time.Now.
	Now func() time.Time
	// Obs receives the store_* metrics (docs/METRICS.md). Optional;
	// Engine.SetStore attaches its registry when nil.
	Obs *obs.Registry
	// Binary writes new segments in the internal/codec binary frame
	// encoding instead of JSONL (docs/CODEC.md). Existing segments keep
	// their encoding — Open sniffs each file's first byte — and a
	// non-empty active segment in the other encoding is sealed and a
	// fresh one started, so a directory converts incrementally (fully on
	// the next Compact) and can always be reopened with either setting.
	Binary bool
	// RelaxedSync folds appended records into the index after the OS
	// write without waiting for an fsync. Only for stores that are a
	// *secondary* copy with an upstream re-sync path — the replication
	// receiver's replica stores (docs/REPLICATION.md), whose cursor
	// restarts at zero on reopen and heals by snapshot. A crash can
	// lose or tear the unsynced tail; replay repairs the tear like any
	// torn tail, and the primary's copy restores the records. Never use
	// it for a store that is itself the system of record.
	RelaxedSync bool
}

// Store is a directory of segment files (JSONL or binary-framed,
// sniffed per file — see Options.Binary) plus an in-memory index of
// every execution's live state. All appends go to
// the active (highest-numbered) segment through a group-committed
// writer; Compact collapses the whole directory into one fresh segment
// holding a snapshot per live execution.
//
// Segment files are named seg-%08d.log and replayed in numeric order.
// Compaction writes the replacement segment as seg-%08d.log.tmp,
// fsyncs, then renames — a crash mid-compaction leaves either the old
// segments (tmp ignored and removed at Open) or the complete new one,
// never a half state.
type Store struct {
	dir string
	opt Options

	mu       sync.Mutex
	active   *GroupFile
	segs     []int // existing segment numbers, ascending; last is active
	index    map[string]*execState
	order    []string // index insertion order (exec.start order)
	closed   bool
	failed   error // sticky: first write/fsync failure poisons the store
	records  int   // live records across current segments (incl. replayed)
	replayed int   // records replayed at Open
	torn     int   // torn trailing lines discarded at Open
	// pending holds records written to the active segment but not yet
	// proven durable by a group commit, in write order. They fold into
	// the index only once an fsync covers them, so Entry/Live/Stats
	// never report state a reopen could not rebuild.
	pending []pendingRec
	// sinceSnap counts records appended since the last exec.snap — the
	// "snapshot lag" operators watch through dgfctl store.
	sinceSnap int
	passive   int // executions currently marked passivated

	// replSeq numbers every fsync-proven record, in durability order —
	// the replication cursor (repl.go). Assigned under s.mu in
	// applyDurableLocked whether or not a tap is attached, so a follower
	// attached late sees a gap and catches up by snapshot.
	replSeq uint64
	// tap receives durable records for replication; tapQueue buffers
	// them under s.mu and tapMu serializes hand-off so the tap observes
	// strict seq order, while ack waits run outside tapMu via tapWaits
	// (see flushTap).
	tap      func([]TapRecord) func()
	tapMu    sync.Mutex
	tapQueue []TapRecord
	tapWaits []chan struct{}
}

// pendingRec is one written-but-not-yet-synced record awaiting its
// group commit before it may enter the index.
type pendingRec struct {
	gw     *GroupFile
	ticket int64
	rec    Record
}

// execState is the index entry for one execution, folded from its
// records in replay order.
type execState struct {
	req        string
	vars       map[string]string
	done       map[string]bool
	paused     bool
	passivated bool
	ended      bool
	pruned     bool
	hasSnap    bool
}

// Entry is a point-in-time copy of an execution's indexed state.
type Entry struct {
	ID      string
	Request string
	Vars    map[string]string
	// Done lists the restart-stable node paths proven complete, sorted.
	Done       []string
	Paused     bool
	Passivated bool
	Ended      bool
	Pruned     bool
}

// Stats summarizes the store for operators (dgfctl store).
type Stats struct {
	// Segments is the number of on-disk segment files.
	Segments int `json:"segments"`
	// Records counts live records across the segments, including those
	// replayed at Open.
	Records int `json:"records"`
	// ReplayRecords is how many records Open replayed — the restart
	// cost this store bounds.
	ReplayRecords int `json:"replayRecords"`
	// Live counts executions that are neither ended nor pruned.
	Live int `json:"live"`
	// Passivated counts live executions evicted from engine memory.
	Passivated int `json:"passivated"`
	// SnapshotLag is the number of records appended since the last
	// snapshot — how much tail a crash right now would replay on top
	// of snapshots.
	SnapshotLag int `json:"snapshotLag"`
	// Failed carries the sticky write/fsync error that poisoned the
	// store, if any. A failed store rejects all further appends; its
	// index stays readable but frozen at the last durable record.
	Failed string `json:"failed,omitempty"`
}

// CompactStats reports one compaction.
type CompactStats struct {
	SegmentsBefore int `json:"segmentsBefore"`
	RecordsBefore  int `json:"recordsBefore"`
	// RecordsKept is the size of the replacement segment: one merged
	// snapshot per live execution.
	RecordsKept    int `json:"recordsKept"`
	RecordsDropped int `json:"recordsDropped"`
}

const segPattern = "seg-%08d.log"

func segName(n int) string { return fmt.Sprintf(segPattern, n) }

// Open opens (creating if needed) a store directory, removes temp
// files from interrupted compactions, and replays every segment into
// the index. A torn trailing line — the tail of a crash mid-append —
// is discarded, and truncated away in the active segment so new
// appends start on a clean line boundary.
func Open(dir string, opt Options) (*Store, error) {
	if opt.SegmentMaxBytes <= 0 {
		opt.SegmentMaxBytes = 8 << 20
	}
	if opt.Now == nil {
		opt.Now = time.Now
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opt: opt, index: map[string]*execState{}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if strings.HasSuffix(name, ".tmp") {
			// Interrupted compaction: the rename never happened, so the
			// old segments are still authoritative.
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		var n int
		if _, err := fmt.Sscanf(name, segPattern, &n); err == nil && segName(n) == name {
			s.segs = append(s.segs, n)
		}
	}
	sort.Ints(s.segs)
	for i, n := range s.segs {
		repair := i == len(s.segs)-1 // only the active segment is appended to
		if err := s.replaySegment(filepath.Join(dir, segName(n)), repair); err != nil {
			return nil, err
		}
	}
	if len(s.segs) == 0 {
		s.segs = []int{1}
	} else {
		// A segment holds exactly one encoding. If the tail segment is
		// non-empty and in the other encoding, seal it and start a fresh
		// one — its records were already replayed above.
		bin, empty, err := sniffEncoding(filepath.Join(dir, segName(s.segs[len(s.segs)-1])))
		if err != nil {
			return nil, err
		}
		if !empty && bin != opt.Binary {
			s.segs = append(s.segs, s.segs[len(s.segs)-1]+1)
		}
	}
	active, err := OpenGroupFile(filepath.Join(dir, segName(s.segs[len(s.segs)-1])))
	if err != nil {
		return nil, err
	}
	s.active = active
	s.records = s.replayed
	if opt.Obs != nil {
		s.SetObs(opt.Obs)
	}
	return s, nil
}

// SetObs attaches a metrics registry to the store and its active
// segment writer.
func (s *Store) SetObs(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.opt.Obs = reg
	if s.active != nil {
		s.active.SetObs(reg)
	}
	if reg != nil {
		reg.Gauge("store_recovery_replay_records").Set(int64(s.replayed))
		reg.Gauge("store_segments").Set(int64(len(s.segs)))
		reg.Gauge("store_passivated").Set(int64(s.passive))
	}
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// sniffEncoding reports whether the file holds binary frames (first
// byte is codec.Magic) or JSONL, and whether it is empty.
func sniffEncoding(path string) (binary, empty bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, false, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	var b [1]byte
	n, err := f.Read(b[:])
	if n == 0 {
		if err == io.EOF || err == nil {
			return false, true, nil
		}
		return false, false, fmt.Errorf("store: %s: %w", path, err)
	}
	return b[0] == codec.Magic, false, nil
}

// replaySegment folds one segment file into the index, sniffing the
// encoding from the file's first byte. When repair is set a torn tail —
// an unterminated JSONL line or a truncated binary frame — is truncated
// off the file.
func (s *Store) replaySegment(path string, repair bool) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	if first, err := r.Peek(1); err == nil && first[0] == codec.Magic {
		return s.replayBinarySegment(path, r, repair)
	}
	var offset, lineStart int64
	line := 0
	for {
		data, err := r.ReadBytes('\n')
		lineStart = offset
		offset += int64(len(data))
		if len(data) > 0 {
			line++
			trimmed := data
			if trimmed[len(trimmed)-1] == '\n' {
				trimmed = trimmed[:len(trimmed)-1]
			} else {
				// No terminating newline: the crash cut the final write()
				// short of its '\n'. The record was never acknowledged —
				// Append returns only after the line *including* its
				// newline is fsynced — so discard it even when the prefix
				// parses as complete JSON. Keeping the file unterminated
				// would also corrupt the next O_APPEND write, which would
				// concatenate onto this line.
				s.torn++
				if repair {
					if terr := os.Truncate(path, lineStart); terr != nil {
						return fmt.Errorf("store: truncate torn tail of %s: %w", path, terr)
					}
				}
				return nil
			}
			if len(trimmed) > 0 {
				var rec Record
				if uerr := json.Unmarshal(trimmed, &rec); uerr != nil {
					// Newline-terminated means the write completed, so
					// this is real corruption, not a crash artifact.
					return fmt.Errorf("store: %s line %d: %v", path, line, uerr)
				}
				s.apply(&rec, true)
				s.replayed++
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("store: %s: %w", path, err)
		}
	}
}

// replayBinarySegment folds a binary segment into the index. The frame
// scanner's torn/corrupt distinction mirrors the JSONL rules: a
// truncated trailing frame is the unacknowledged tail of a crash
// mid-append and is discarded (truncated away when repair is set); a
// complete frame that fails to decode is real corruption.
func (s *Store) replayBinarySegment(path string, r io.Reader, repair bool) error {
	sc := codec.NewFrameScanner(r)
	n := 0
	for {
		_, payload, err := sc.Next()
		if err == io.EOF {
			return nil
		}
		if errors.Is(err, codec.ErrTorn) {
			s.torn++
			if repair {
				if terr := os.Truncate(path, sc.Offset()); terr != nil {
					return fmt.Errorf("store: truncate torn tail of %s: %w", path, terr)
				}
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("store: %s: %w", path, err)
		}
		n++
		rec, err := codec.DecodeRecord(payload)
		if err != nil {
			return fmt.Errorf("store: %s frame %d: %v", path, n, err)
		}
		s.apply(&rec, true)
		s.replayed++
	}
}

// apply folds one record into the index. Caller holds s.mu (or is
// single-threaded replay). owned means rec's reference fields (the
// Vars map) belong to the store — replay passes true because decoded
// records are discarded right after apply, which lets a snapshot's
// variable map be adopted instead of copied; the append path passes
// false because its maps are still aliased by the caller.
func (s *Store) apply(rec *Record, owned bool) {
	st := s.index[rec.ID]
	if st == nil {
		if rec.Type != TypeExecStart && rec.Type != TypeExecSnap {
			// step.done etc. for an execution whose start was compacted
			// away after it ended — nothing to track.
			return
		}
		st = &execState{done: map[string]bool{}}
		s.index[rec.ID] = st
		s.order = append(s.order, rec.ID)
	}
	if (st.ended || st.pruned) && rec.Type != TypeExecPrune && rec.Type != TypeExecEnd {
		// A passivate racing the execution's natural completion loses:
		// once ended (or tombstoned), later snapshots and markers are
		// stale and must not revive the entry.
		return
	}
	switch rec.Type {
	case TypeExecStart:
		if rec.Request != "" {
			st.req = rec.Request
		}
	case TypeStepDone, TypeDelegDone:
		if rec.Node != "" {
			st.done[rec.Node] = true
		}
	case TypeExecSnap:
		if rec.Request != "" {
			st.req = rec.Request
		}
		if owned && rec.Vars != nil {
			st.vars = rec.Vars
		} else {
			st.vars = make(map[string]string, len(rec.Vars))
			for k, v := range rec.Vars {
				st.vars[k] = v
			}
		}
		st.done = make(map[string]bool, len(rec.Done))
		for _, n := range rec.Done {
			st.done[n] = true
		}
		st.paused = rec.Paused
		st.hasSnap = true
		if rec.Passivated && !st.passivated {
			st.passivated = true
			s.passive++
		}
	case TypeExecPassivate:
		if !st.passivated {
			st.passivated = true
			s.passive++
		}
		st.paused = rec.Paused
	case TypeExecResurrect:
		if st.passivated {
			st.passivated = false
			s.passive--
		}
	case TypeExecEnd:
		st.ended = true
		if st.passivated {
			st.passivated = false
			s.passive--
		}
	case TypeExecPrune:
		st.pruned = true
		if st.passivated {
			st.passivated = false
			s.passive--
		}
	}
}

// Append writes one record durably. Concurrent appends to the same
// segment share fsyncs (group commit); rotation happens transparently
// when the active segment exceeds SegmentMaxBytes. The record enters
// the in-memory index only after its group commit succeeds — a failed
// fsync poisons the store instead of letting the index run ahead of
// what a reopen would rebuild.
func (s *Store) Append(rec Record) error {
	var data []byte
	var enc *codec.Encoder
	if s.opt.Binary {
		enc = codec.GetEncoder()
		codec.AppendRecordFrame(enc, &rec)
		data = enc.Bytes()
	} else {
		var err error
		data, err = json.Marshal(rec)
		if err != nil {
			return err
		}
		data = append(data, '\n')
	}
	err := s.appendBlock(data, []Record{rec})
	if enc != nil {
		codec.PutEncoder(enc)
	}
	return err
}

// AppendBatch writes many records durably in one shot: the whole batch
// is serialized into one block, appended with a single write syscall
// (GroupFile.WriteBlock) and covered by one shared fsync. On the binary
// encoding this is the vectored-write fast path store replay benchmarks
// exercise; on JSONL it still collapses N syscalls into one.
func (s *Store) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	var block []byte
	var enc *codec.Encoder
	if s.opt.Binary {
		enc = codec.GetEncoder()
		for i := range recs {
			codec.AppendRecordFrame(enc, &recs[i])
		}
		block = enc.Bytes()
	} else {
		for i := range recs {
			data, err := json.Marshal(recs[i])
			if err != nil {
				return err
			}
			block = append(block, data...)
			block = append(block, '\n')
		}
	}
	err := s.appendBlock(block, recs)
	if enc != nil {
		codec.PutEncoder(enc)
	}
	return err
}

// appendBlock appends one serialized block covering recs (in order) and
// blocks until its group commit. The caller owns the block buffer; it
// is not retained past the write.
func (s *Store) appendBlock(block []byte, recs []Record) error {
	// Deliver whatever this append (or a rotation inside it) proved
	// durable to the replication tap once the store lock is released.
	// In quorum/chain ack modes the tap blocks until followers ack, so
	// Append returning success implies the records are replicated.
	defer s.flushTap()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("store: %s: %w", s.dir, os.ErrClosed)
	}
	if s.failed != nil {
		s.mu.Unlock()
		return s.failed
	}
	if s.active.Size() > 0 && s.active.Size()+int64(len(block)) > s.opt.SegmentMaxBytes {
		if err := s.rotate(); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	gw := s.active
	ticket, err := gw.WriteBlock(block, int64(len(recs)))
	if err != nil {
		s.poisonLocked(err)
		s.mu.Unlock()
		return err
	}
	for i := range recs {
		s.pending = append(s.pending, pendingRec{gw: gw, ticket: ticket, rec: recs[i]})
	}
	s.mu.Unlock()
	if !s.opt.RelaxedSync {
		if err := gw.Sync(ticket); err != nil {
			s.mu.Lock()
			s.poisonLocked(err)
			s.mu.Unlock()
			return err
		}
	}
	s.mu.Lock()
	s.drainLocked(gw, ticket)
	s.mu.Unlock()
	return nil
}

// poisonLocked records the first write/fsync failure as the store's
// sticky error and discards pending records — they were never proven
// durable, so folding them into the index would report state a reopen
// could not rebuild. Caller holds s.mu.
func (s *Store) poisonLocked(err error) {
	if s.failed == nil {
		s.failed = err
	}
	s.pending = nil
	if reg := s.opt.Obs; reg != nil {
		reg.Gauge("store_failed").Set(1)
	}
}

// drainLocked folds every pending record a completed sync has proven
// durable — written to gw with a ticket at or below the synced one —
// into the index, in write order. Pending entries always belong to the
// segment active at their write (rotation drains or poisons first), so
// a front entry on a different GroupFile means gw already rotated and
// drained. Caller holds s.mu.
func (s *Store) drainLocked(gw *GroupFile, ticket int64) {
	n := 0
	for _, p := range s.pending {
		if p.gw != gw || p.ticket > ticket {
			break
		}
		s.applyDurableLocked(&p.rec)
		n++
	}
	s.pending = s.pending[n:]
}

// applyDurableLocked folds one fsync-proven record into the index and
// its counters. Caller holds s.mu.
func (s *Store) applyDurableLocked(rec *Record) {
	s.apply(rec, false)
	s.records++
	s.replSeq++
	if s.tap != nil {
		s.tapQueue = append(s.tapQueue, TapRecord{Seq: s.replSeq, Rec: *rec})
	}
	if rec.Type == TypeExecSnap {
		s.sinceSnap = 0
	} else {
		s.sinceSnap++
	}
	if reg := s.opt.Obs; reg != nil {
		reg.Counter("store_records_total", "type", rec.Type).Inc()
		if rec.Type == TypeExecSnap {
			reg.Counter("store_snapshots_total").Inc()
		}
		reg.Gauge("store_passivated").Set(int64(s.passive))
	}
}

// rotate opens the next segment as active. Caller holds s.mu.
func (s *Store) rotate() error {
	next := s.segs[len(s.segs)-1] + 1
	nw, err := OpenGroupFile(filepath.Join(s.dir, segName(next)))
	if err != nil {
		return err
	}
	if s.opt.Obs != nil {
		nw.SetObs(s.opt.Obs)
	}
	old := s.active
	s.active = nw
	s.segs = append(s.segs, next)
	if s.opt.Obs != nil {
		s.opt.Obs.Gauge("store_segments").Set(int64(len(s.segs)))
	}
	if err := old.Close(); err != nil {
		s.poisonLocked(err)
		return err
	}
	// Close performed a final sync covering every line written, so all
	// records still pending on the old segment are durable — fold them
	// in before the new segment's appends start queueing.
	s.drainLocked(old, math.MaxInt64)
	return nil
}

// Compact rewrites the store as one fresh segment containing a merged
// snapshot per live execution — ended and pruned executions vanish,
// and every live execution's history (start + step tail + snapshots)
// collapses into a single exec.snap record. The new segment fully
// replaces the old ones: written as a temp file, fsynced, renamed into
// place, and only then are the old segments deleted. Recovery replay
// after a compaction is O(live executions).
func (s *Store) Compact() (CompactStats, error) {
	defer s.flushTap() // runs after the unlock below
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return CompactStats{}, fmt.Errorf("store: %s: %w", s.dir, os.ErrClosed)
	}
	if s.failed != nil {
		return CompactStats{}, s.failed
	}
	if len(s.pending) > 0 {
		// In-flight appends have not reached the index yet; compaction
		// snapshots the index and deletes the segments holding them, so
		// force their group commit and fold them in first.
		last := s.pending[len(s.pending)-1]
		if err := last.gw.Sync(last.ticket); err != nil {
			s.poisonLocked(err)
			return CompactStats{}, err
		}
		s.drainLocked(last.gw, last.ticket)
	}
	stats := CompactStats{SegmentsBefore: len(s.segs), RecordsBefore: s.records}
	next := s.segs[len(s.segs)-1] + 1
	final := filepath.Join(s.dir, segName(next))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return stats, fmt.Errorf("store: compact: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	now := s.opt.Now()
	kept := 0
	var liveOrder []string
	var enc *codec.Encoder
	if s.opt.Binary {
		enc = codec.GetEncoder()
		defer codec.PutEncoder(enc)
	}
	for _, id := range s.order {
		st := s.index[id]
		if st == nil || st.ended || st.pruned {
			continue
		}
		liveOrder = append(liveOrder, id)
		rec := Record{
			Type: TypeExecSnap, ID: id, Time: now,
			Request: st.req, Vars: st.vars, Done: sortedKeys(st.done),
			Paused: st.paused, Passivated: st.passivated,
		}
		// The replacement segment is written in the configured encoding:
		// compacting is also how a JSONL directory finishes converting.
		var err error
		if enc != nil {
			enc.Reset()
			codec.AppendRecordFrame(enc, &rec)
			_, err = w.Write(enc.Bytes())
		} else {
			var data []byte
			data, err = json.Marshal(rec)
			if err == nil {
				_, err = w.Write(append(data, '\n'))
			}
		}
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return stats, fmt.Errorf("store: compact: %w", err)
		}
		kept++
	}
	if err := w.Flush(); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return stats, fmt.Errorf("store: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return stats, fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return stats, fmt.Errorf("store: compact: %w", err)
	}
	s.syncDir()
	// The rename is the commit point: the new segment now supersedes
	// everything before it. Swap writers, then delete history.
	nw, err := OpenGroupFile(final)
	if err != nil {
		return stats, err
	}
	if s.opt.Obs != nil {
		nw.SetObs(s.opt.Obs)
	}
	oldActive, oldSegs := s.active, s.segs
	s.active = nw
	s.segs = []int{next}
	_ = oldActive.Close()
	for _, n := range oldSegs {
		_ = os.Remove(filepath.Join(s.dir, segName(n)))
	}
	s.syncDir()
	// Ended/pruned executions are gone from disk; drop them from the
	// index too so it mirrors what a reopen would rebuild.
	for _, id := range s.order {
		if st := s.index[id]; st != nil && (st.ended || st.pruned) {
			delete(s.index, id)
		}
	}
	s.order = liveOrder
	s.records = kept
	s.sinceSnap = 0
	stats.RecordsKept = kept
	stats.RecordsDropped = stats.RecordsBefore - kept
	if reg := s.opt.Obs; reg != nil {
		reg.Counter("store_compactions_total").Inc()
		reg.Gauge("store_segments").Set(int64(len(s.segs)))
	}
	return stats, nil
}

// syncDir fsyncs the store directory so segment renames and deletions
// survive a crash (best effort; some platforms reject directory sync).
func (s *Store) syncDir() {
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Entry returns the indexed state of one execution.
func (s *Store) Entry(id string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.index[id]
	if !ok {
		return Entry{}, false
	}
	return s.entryLocked(id, st), true
}

func (s *Store) entryLocked(id string, st *execState) Entry {
	vars := make(map[string]string, len(st.vars))
	for k, v := range st.vars {
		vars[k] = v
	}
	return Entry{
		ID: id, Request: st.req, Vars: vars, Done: sortedKeys(st.done),
		Paused: st.paused, Passivated: st.passivated,
		Ended: st.ended, Pruned: st.pruned,
	}
}

// Live returns every execution that is neither ended nor pruned, in
// exec.start order — the set recovery considers.
func (s *Store) Live() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Entry
	for _, id := range s.order {
		if st := s.index[id]; st != nil && !st.ended && !st.pruned {
			out = append(out, s.entryLocked(id, st))
		}
	}
	return out
}

// IDs returns every indexed execution id (live or not) — the engine
// advances its id counter past these after a restart so fresh
// executions never collide with recovered ones.
func (s *Store) IDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Stats snapshots the store's shape.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	live := 0
	for _, st := range s.index {
		if !st.ended && !st.pruned {
			live++
		}
	}
	st := Stats{
		Segments:      len(s.segs),
		Records:       s.records,
		ReplayRecords: s.replayed,
		Live:          live,
		Passivated:    s.passive,
		SnapshotLag:   s.sinceSnap,
	}
	if s.failed != nil {
		st.Failed = s.failed.Error()
	}
	return st
}

// Close syncs and closes the active segment.
func (s *Store) Close() error {
	defer s.flushTap() // runs after the unlock below
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.active.Close()
	if err == nil && s.failed == nil {
		// The final sync made every pending record durable.
		s.drainLocked(s.active, math.MaxInt64)
	}
	return err
}
