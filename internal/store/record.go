// Package store is the matrix engine's durable flow-state store — the
// subsystem that makes "days, months, or even years" long datagridflows
// operationally survivable. It extends the execution journal's
// append-only record stream with three mechanisms:
//
//   - snapshots: periodic exec.snap records capture an execution's
//     resumable state (request document, scope variables, completed-step
//     cursor including delegated subtrees) in a single self-contained
//     record;
//   - segments + compaction: the stream is rotated into bounded segment
//     files, and Compact rewrites the live state (latest snapshot per
//     execution plus its tail) into one fresh segment, deleting the
//     history — disk usage and recovery replay become O(live state)
//     instead of O(all records ever written);
//   - passivation: idle executions are marked exec.passivate and dropped
//     from engine memory; the store keeps everything needed to resurrect
//     them on demand (status query, trigger firing, wire request or
//     federation delegation — see internal/matrix).
//
// A segment holds records in one of two encodings, sniffed from the
// file's first byte when the store opens: the journal's JSONL encoding
// (one JSON object per line, readable by the same tooling as a journal
// file) or the binary frame encoding of internal/codec (docs/CODEC.md),
// which replays several times faster and is the default for new
// segments when Options.Binary is set. A directory may mix encodings
// segment by segment — existing JSON directories replay unchanged.
package store

import "datagridflow/internal/codec"

// Record is one lifecycle record of the store (and of the matrix
// journal — the encodings are identical by construction). The
// definition lives in internal/codec so the binary and JSONL encoders
// share it; this alias keeps store.Record the canonical name for the
// storage layers.
type Record = codec.Record

// Record types, re-exported from internal/codec (see codec.Record for
// the semantics of each).
const (
	TypeExecStart  = codec.TypeExecStart
	TypeStepDone   = codec.TypeStepDone
	TypeDelegStart = codec.TypeDelegStart
	TypeDelegDone  = codec.TypeDelegDone
	TypeExecEnd    = codec.TypeExecEnd

	TypeExecSnap      = codec.TypeExecSnap
	TypeExecPassivate = codec.TypeExecPassivate
	TypeExecResurrect = codec.TypeExecResurrect
	TypeExecPrune     = codec.TypeExecPrune
)
