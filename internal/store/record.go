// Package store is the matrix engine's durable flow-state store — the
// subsystem that makes "days, months, or even years" long datagridflows
// operationally survivable. It extends the execution journal's
// append-only record stream with three mechanisms:
//
//   - snapshots: periodic exec.snap records capture an execution's
//     resumable state (request document, scope variables, completed-step
//     cursor including delegated subtrees) in a single self-contained
//     record;
//   - segments + compaction: the stream is rotated into bounded segment
//     files, and Compact rewrites the live state (latest snapshot per
//     execution plus its tail) into one fresh segment, deleting the
//     history — disk usage and recovery replay become O(live state)
//     instead of O(all records ever written);
//   - passivation: idle executions are marked exec.passivate and dropped
//     from engine memory; the store keeps everything needed to resurrect
//     them on demand (status query, trigger firing, wire request or
//     federation delegation — see internal/matrix).
//
// The record encoding is the journal's JSONL encoding (one JSON object
// per line), so a store segment is readable by the same tooling as a
// journal file and the engine writes both through one code path.
package store

import "time"

// Record is one JSONL line of the store (and of the matrix journal —
// the encodings are identical by construction; internal/matrix aliases
// this type). The lifecycle types from the journal are retained
// unchanged; the store adds snapshot, passivation, resurrection and
// tombstone types.
type Record struct {
	Type string    `json:"type"`
	ID   string    `json:"id"` // execution id
	Time time.Time `json:"time"`
	// Request holds the marshaled DGL request document (exec.start,
	// exec.snap).
	Request string `json:"request,omitempty"`
	// Node is the restart-stable node path, e.g. "/pipeline/stage-in"
	// (step.done, deleg.start, deleg.done).
	Node string `json:"node,omitempty"`
	// Peer names the remote peer that completed a delegated subflow
	// (deleg.done).
	Peer string `json:"peer,omitempty"`
	// Err is the final error text, empty on success (exec.end).
	Err string `json:"err,omitempty"`
	// Vars snapshots the execution's root scope variables (exec.snap).
	Vars map[string]string `json:"vars,omitempty"`
	// Done lists the restart-stable node paths proven complete
	// (exec.snap) — steps, skipped steps, and whole delegated subtrees.
	Done []string `json:"done,omitempty"`
	// Paused records whether the execution was paused when the record
	// was written (exec.snap, exec.passivate); a resurrected execution
	// re-enters the paused state.
	Paused bool `json:"paused,omitempty"`
	// Passivated marks a compaction-merged snapshot of a passivated
	// execution (exec.snap written by Compact): one record carries both
	// the snapshot and the passivation marker.
	Passivated bool `json:"passivated,omitempty"`
}

// Record types. The first five are the journal's lifecycle types; the
// rest are store extensions. Readers must ignore types they do not
// know — old tooling skips snap/passivate/resurrect/prune lines.
const (
	TypeExecStart  = "exec.start"
	TypeStepDone   = "step.done"
	TypeDelegStart = "deleg.start"
	TypeDelegDone  = "deleg.done"
	TypeExecEnd    = "exec.end"

	// TypeExecSnap is a self-contained snapshot: Request + Vars + Done
	// (+ Paused). Replaying a snapshot supersedes every earlier record
	// of the execution.
	TypeExecSnap = "exec.snap"
	// TypeExecPassivate marks the execution as evicted from engine
	// memory; it is always preceded by a fresh exec.snap.
	TypeExecPassivate = "exec.passivate"
	// TypeExecResurrect marks a passivated execution as resident again
	// (it is running; a crash before its exec.end must resume it).
	TypeExecResurrect = "exec.resurrect"
	// TypeExecPrune is the tombstone for Engine.Prune: compaction drops
	// every record of a pruned execution, and recovery never resurrects
	// it.
	TypeExecPrune = "exec.prune"
)
