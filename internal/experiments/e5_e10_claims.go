package experiments

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"datagridflow/internal/baseline"
	"datagridflow/internal/dgl"
	"datagridflow/internal/dgms"
	"datagridflow/internal/ilm"
	"datagridflow/internal/infra"
	"datagridflow/internal/matrix"
	"datagridflow/internal/namespace"
	"datagridflow/internal/provenance"
	"datagridflow/internal/scheduler"
	"datagridflow/internal/sim"
	"datagridflow/internal/trigger"
	"datagridflow/internal/vfs"
	"datagridflow/internal/workload"
)

// E5Scalability quantifies the §3.1 scalability requirement: steps per
// flow, and concurrent flows per engine.
func E5Scalability(s Scale) (*Report, error) {
	r := &Report{
		ID: "E5", Title: "§3.1 — engine scalability (steps/flow, concurrent flows)",
		Header: []string{"dimension", "size", "wall", "steps/sec"},
	}
	_, e, err := newEngine()
	if err != nil {
		return nil, err
	}
	flowOf := func(n int) dgl.Flow {
		b := dgl.NewFlow("scale")
		for i := 0; i < n; i++ {
			b.Step(fmt.Sprintf("s%d", i), dgl.Op(dgl.OpNoop, nil))
		}
		return b.Flow()
	}
	sizes := []int{10, 100, pick(s, 1000, 10000)}
	for _, n := range sizes {
		flow := flowOf(n)
		t0 := time.Now()
		ex, err := e.Run("user", flow)
		if err != nil {
			return nil, err
		}
		if err := ex.Wait(); err != nil {
			return nil, err
		}
		wall := time.Since(t0)
		r.Row("steps/flow", fmt.Sprint(n), wall.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", float64(n)/wall.Seconds()))
	}
	conc := []int{1, 8, pick(s, 32, 256)}
	per := pick(s, 20, 50)
	for _, c := range conc {
		flow := flowOf(per)
		t0 := time.Now()
		execs := make([]*matrix.Execution, c)
		for i := range execs {
			ex, err := e.Start("user", flow)
			if err != nil {
				return nil, err
			}
			execs[i] = ex
		}
		for _, ex := range execs {
			if err := ex.Wait(); err != nil {
				return nil, err
			}
		}
		wall := time.Since(t0)
		total := c * per
		r.Row("concurrent flows", fmt.Sprintf("%d×%d", c, per),
			wall.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", float64(total)/wall.Seconds()))
	}
	return r, nil
}

// flakyOnce returns an op that fails exactly once (the injected outage),
// plus the equivalent cron-script closure.
func flakyOnce() (matrix.OpHandler, baseline.ScriptOp) {
	var mu sync.Mutex
	failed := false
	failOnce := func() error {
		mu.Lock()
		defer mu.Unlock()
		if !failed {
			failed = true
			return errors.New("injected outage")
		}
		return nil
	}
	return func(*matrix.OpContext) error { return failOnce() },
		func(*dgms.Grid) error { return failOnce() }
}

// e6Grid builds the BBSRC topology: hospital domains with local disk
// plus the archiver's tape silo, over slow hospital uplinks.
func e6Grid(hospitals int) (*dgms.Grid, error) {
	g := dgms.New(dgms.Options{})
	if err := g.RegisterResource(vfs.New("archive-tape", "archiver", vfs.Archive, 0)); err != nil {
		return nil, err
	}
	for h := 0; h < hospitals; h++ {
		domain := fmt.Sprintf("hospital%02d", h)
		if err := g.RegisterResource(vfs.New(domain+"-disk", domain, vfs.Disk, 0)); err != nil {
			return nil, err
		}
		g.Network().SetSymmetric(domain, "archiver", sim.Link{Bandwidth: 5 << 20, Latency: 80 * time.Millisecond})
	}
	return g, nil
}

// E6ImplodingStar compares the DfMS-managed archival flow against the
// cron-script baseline on the BBSRC imploding-star scenario, with one
// injected mid-run outage.
func E6ImplodingStar(s Scale) (*Report, error) {
	hospitals := pick(s, 3, 12)
	perHospital := pick(s, 6, 100)
	specsByDomain := workload.Hospitals(sim.NewRand(6), hospitals, perHospital)
	total := hospitals * perHospital
	outageAt := total / 2

	type result struct {
		attempts  int
		redundant int
		bytes     int64
		provOK    int
		archived  int
	}

	// --- DfMS: migration flow with a once-failing outage step, restart
	// with checkpoints after the failure.
	runMatrix := func() (result, error) {
		g, err := e6Grid(hospitals)
		if err != nil {
			return result{}, err
		}
		for domain, specs := range specsByDomain {
			if err := workload.Ingest(g, g.Admin(), domain+"-disk", specs); err != nil {
				return result{}, err
			}
		}
		g.Network().Reset()
		e := matrix.NewEngine(g)
		outage, _ := flakyOnce()
		e.RegisterOp("outage", outage)
		b := dgl.NewFlow("bbsrc-implode")
		i := 0
		for h := 0; h < hospitals; h++ {
			domain := fmt.Sprintf("hospital%02d", h)
			for _, spec := range specsByDomain[domain] {
				if i == outageAt {
					b.Step("outage", dgl.Op("outage", nil))
				}
				b.Step(fmt.Sprintf("pull-%05d", i), dgl.Op(dgl.OpMigrate, map[string]string{
					"path": spec.Path, "from": domain + "-disk", "to": "archive-tape",
				}))
				i++
			}
		}
		ex, err := e.Run(g.Admin(), b.Flow())
		if err != nil {
			return result{}, err
		}
		_ = ex.Wait() // fails at the outage
		ex2, err := e.Restart(ex.ID)
		if err != nil {
			return result{}, err
		}
		if err := ex2.Wait(); err != nil {
			return result{}, err
		}
		var res result
		res.bytes = g.Network().TotalTraffic()
		res.attempts = g.Provenance().Count(provenance.Filter{Action: "step.start"})
		res.redundant = g.Provenance().Count(provenance.Filter{Action: "migrate"}) - total
		res.provOK = g.Provenance().Count(provenance.Filter{Action: "migrate", Outcome: provenance.OutcomeOK})
		tape, _ := g.Resource("archive-tape")
		res.archived = tape.Count()
		return res, nil
	}

	// --- Cron baseline: hard-wired script, aborts at the outage, re-runs
	// from the top (tolerating already-migrated records at a cost).
	runCron := func() (result, error) {
		g, err := e6Grid(hospitals)
		if err != nil {
			return result{}, err
		}
		for domain, specs := range specsByDomain {
			if err := workload.Ingest(g, g.Admin(), domain+"-disk", specs); err != nil {
				return result{}, err
			}
		}
		g.Network().Reset()
		_, outage := flakyOnce()
		script := &baseline.CronScript{Name: "bbsrc-archive"}
		i := 0
		redundant := 0
		for h := 0; h < hospitals; h++ {
			domain := fmt.Sprintf("hospital%02d", h)
			for _, spec := range specsByDomain[domain] {
				if i == outageAt {
					script.Ops = append(script.Ops, outage)
				}
				path, from := spec.Path, domain+"-disk"
				script.Ops = append(script.Ops, func(g *dgms.Grid) error {
					err := g.Migrate(g.Admin(), path, from, "archive-tape")
					if errors.Is(err, dgms.ErrNoReplica) {
						redundant++ // `|| true` around the re-run
						return nil
					}
					return err
				})
				i++
			}
		}
		if err := script.RunUntilSuccess(g, time.Hour, 5); err != nil {
			return result{}, err
		}
		var res result
		res.bytes = g.Network().TotalTraffic()
		res.attempts = script.OpsExecuted
		res.redundant = redundant
		res.provOK = 0 // a script's only record is its exit code
		tape, _ := g.Resource("archive-tape")
		res.archived = tape.Count()
		return res, nil
	}

	m, err := runMatrix()
	if err != nil {
		return nil, err
	}
	c, err := runCron()
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "E6",
		Title:  fmt.Sprintf("§2.1 — BBSRC imploding star, %d records, outage at %d", total, outageAt),
		Header: []string{"engine", "archived", "op-attempts", "redundant", "bytes-moved", "provenance-records"},
	}
	r.Row("matrix (restart)", fmt.Sprint(m.archived), fmt.Sprint(m.attempts), fmt.Sprint(m.redundant),
		sim.FormatBytes(m.bytes), fmt.Sprint(m.provOK))
	r.Row("cron scripts", fmt.Sprint(c.archived), fmt.Sprint(c.attempts), fmt.Sprint(c.redundant),
		sim.FormatBytes(c.bytes), fmt.Sprint(c.provOK))
	if m.archived != total || c.archived != total {
		return nil, fmt.Errorf("E6: archive incomplete (%d/%d vs %d)", m.archived, c.archived, total)
	}
	if m.redundant != 0 {
		return nil, fmt.Errorf("E6: matrix re-executed %d migrations", m.redundant)
	}
	if c.redundant <= 0 {
		return nil, fmt.Errorf("E6: cron baseline showed no redundancy")
	}
	r.Note("matrix restart skipped all completed migrations; cron re-attempted %d", c.redundant)
	return r, nil
}

// e7Grid builds the CMS topology: tier-0 (cern) plus two tiers, with
// bandwidth falling off away from the source.
func e7Grid() (*dgms.Grid, [][]string, error) {
	g := dgms.New(dgms.Options{})
	domains := []string{"cern", "fnal", "in2p3", "ufl", "caltech"}
	for _, d := range domains {
		if err := g.RegisterResource(vfs.New(d, d, vfs.Disk, 0)); err != nil {
			return nil, nil, err
		}
	}
	fast := sim.Link{Bandwidth: 100 << 20, Latency: 50 * time.Millisecond}
	med := sim.Link{Bandwidth: 50 << 20, Latency: 30 * time.Millisecond}
	slow := sim.Link{Bandwidth: 10 << 20, Latency: 120 * time.Millisecond}
	for _, t1 := range []string{"fnal", "in2p3"} {
		g.Network().SetSymmetric("cern", t1, fast)
		for _, t2 := range []string{"ufl", "caltech"} {
			g.Network().SetSymmetric(t1, t2, med)
		}
	}
	for _, t2 := range []string{"ufl", "caltech"} {
		g.Network().SetSymmetric("cern", t2, slow)
	}
	tiers := [][]string{{"fnal", "in2p3"}, {"ufl", "caltech"}}
	return g, tiers, nil
}

// E7ExplodingStar measures the CMS tiered push: staged replication
// (tier N pulls from tier N-1) versus naive direct fan-out from the
// source, on identical topologies.
func E7ExplodingStar(s Scale) (*Report, error) {
	n := pick(s, 4, 32)
	specs := workload.CMSRuns(sim.NewRand(7), n)

	type result struct {
		cernOut int64
		total   int64
		elapsed time.Duration
	}
	load := func(g *dgms.Grid) error {
		if err := workload.Ingest(g, g.Admin(), "cern", specs); err != nil {
			return err
		}
		g.Network().Reset()
		return nil
	}
	measure := func(g *dgms.Grid, start time.Time) result {
		var out result
		for _, d := range []string{"fnal", "in2p3", "ufl", "caltech"} {
			out.cernOut += g.Network().Traffic("cern", d)
		}
		out.total = g.Network().TotalTraffic()
		out.elapsed = g.Clock().Now().Sub(start)
		return out
	}

	// Staged.
	g1, tiers, err := e7Grid()
	if err != nil {
		return nil, err
	}
	if err := load(g1); err != nil {
		return nil, err
	}
	e1 := matrix.NewEngine(g1)
	flow, err := ilm.ExplodingStar(g1, g1.Admin(), "/grid/cms", tiers)
	if err != nil {
		return nil, err
	}
	start := g1.Clock().Now()
	ex, err := e1.Run(g1.Admin(), flow)
	if err != nil {
		return nil, err
	}
	if err := ex.Wait(); err != nil {
		return nil, err
	}
	staged := measure(g1, start)

	// Naive: every replica pulled straight from CERN.
	g2, _, err := e7Grid()
	if err != nil {
		return nil, err
	}
	if err := load(g2); err != nil {
		return nil, err
	}
	e2 := matrix.NewEngine(g2)
	b := dgl.NewFlow("naive-fanout").Parallel()
	for ri, res := range []string{"fnal", "in2p3", "ufl", "caltech"} {
		per := dgl.NewFlow(fmt.Sprintf("to-%s-%d", res, ri))
		for ei, spec := range specs {
			per.Step(fmt.Sprintf("rep-%04d", ei), dgl.Op(dgl.OpReplicate, map[string]string{
				"path": spec.Path, "to": res, "from": "cern",
			}))
		}
		b.SubFlow(per)
	}
	start2 := g2.Clock().Now()
	ex2, err := e2.Run(g2.Admin(), b.Flow())
	if err != nil {
		return nil, err
	}
	if err := ex2.Wait(); err != nil {
		return nil, err
	}
	naive := measure(g2, start2)

	r := &Report{
		ID:     "E7",
		Title:  fmt.Sprintf("§2.1 — CMS exploding star, %d runs (%s)", n, sim.FormatBytes(workload.TotalBytes(specs))),
		Header: []string{"strategy", "cern-outbound", "total-traffic", "sim-elapsed"},
	}
	r.Row("staged tiers", sim.FormatBytes(staged.cernOut), sim.FormatBytes(staged.total), staged.elapsed.Round(time.Second).String())
	r.Row("direct fan-out", sim.FormatBytes(naive.cernOut), sim.FormatBytes(naive.total), naive.elapsed.Round(time.Second).String())
	if staged.cernOut >= naive.cernOut {
		return nil, fmt.Errorf("E7: staging did not reduce source egress (%d vs %d)", staged.cernOut, naive.cernOut)
	}
	r.Note("staging halves tier-0 egress: %d vs %d bytes", staged.cernOut, naive.cernOut)
	return r, nil
}

// E8Triggers measures trigger matching/firing throughput and the
// multi-user ordering divergence the paper flags as an open issue.
func E8Triggers(s Scale) (*Report, error) {
	r := &Report{
		ID: "E8", Title: "§2.2 — trigger throughput and ordering divergence",
		Header: []string{"measure", "value"},
	}
	// Throughput.
	g, e, err := newEngine()
	if err != nil {
		return nil, err
	}
	m := trigger.NewManager(g, e, 4, 8192)
	defer m.Close()
	nTrig := pick(s, 5, 20)
	for i := 0; i < nTrig; i++ {
		err := m.Define(trigger.Trigger{
			Name: fmt.Sprintf("t%d", i), Owner: "user",
			Events: []dgms.EventType{dgms.EventIngest}, Phase: dgms.After,
			Condition: fmt.Sprintf("endsWith($path, '.%03d')", i),
			Operations: []dgl.Operation{
				dgl.Op(dgl.OpSetMeta, map[string]string{"path": "$path", "attr": "classified", "value": fmt.Sprint(i)}),
			},
		})
		if err != nil {
			return nil, err
		}
	}
	nFiles := pick(s, 60, 2000)
	t0 := time.Now()
	for i := 0; i < nFiles; i++ {
		path := fmt.Sprintf("/grid/f%06d.%03d", i, i%nTrig)
		if err := g.Ingest("user", path, 1, nil, "sdsc-disk"); err != nil {
			return nil, err
		}
	}
	m.Flush()
	wall := time.Since(t0)
	fired := 0
	failed := 0
	for _, f := range m.Firings() {
		fired++
		if f.Err != nil {
			failed++
		}
	}
	r.Row("triggers defined", fmt.Sprint(nTrig))
	r.Row("events published", fmt.Sprint(nFiles))
	r.Row("firings", fmt.Sprint(fired))
	r.Row("failed actions", fmt.Sprint(failed))
	r.Row("events/sec", fmt.Sprintf("%.0f", float64(nFiles)/wall.Seconds()))
	if fired != nFiles || failed != 0 {
		return nil, fmt.Errorf("E8: fired %d/%d, failed %d", fired, nFiles, failed)
	}

	// Ordering divergence: two users' triggers contest one attribute.
	contested := pick(s, 10, 100)
	outcome := func(order dgms.DeliveryOrder, seed int64) (string, error) {
		g2, e2, err := newEngine()
		if err != nil {
			return "", err
		}
		g2.Bus().SetDeliveryOrder(order, seed)
		m2 := trigger.NewManager(g2, e2, 1, 8192)
		defer m2.Close()
		for _, who := range []string{"alice", "bob"} {
			if err := g2.Namespace().SetPermission("/grid", who, namespace.PermWrite); err != nil {
				return "", err
			}
			err := m2.Define(trigger.Trigger{
				Name: "classify-" + who, Owner: who,
				Events: []dgms.EventType{dgms.EventIngest}, Phase: dgms.After,
				Operations: []dgl.Operation{
					dgl.Op(dgl.OpSetMeta, map[string]string{"path": "$path", "attr": "class", "value": who}),
				},
			})
			if err != nil {
				return "", err
			}
		}
		winners := map[string]int{}
		for i := 0; i < contested; i++ {
			path := fmt.Sprintf("/grid/c%04d", i)
			if err := g2.Ingest("user", path, 1, nil, "sdsc-disk"); err != nil {
				return "", err
			}
			m2.Flush()
			v, _, _ := g2.Namespace().GetMeta(path, "class")
			winners[v]++
		}
		return fmt.Sprintf("alice=%d bob=%d", winners["alice"], winners["bob"]), nil
	}
	fwd, err := outcome(dgms.OrderSubscription, 0)
	if err != nil {
		return nil, err
	}
	rev, err := outcome(dgms.OrderReverse, 0)
	if err != nil {
		return nil, err
	}
	shuf, err := outcome(dgms.OrderShuffled, 99)
	if err != nil {
		return nil, err
	}
	r.Row("contested outcome (subscription order)", fwd)
	r.Row("contested outcome (reverse order)", rev)
	r.Row("contested outcome (shuffled order)", shuf)
	if fwd == rev {
		return nil, fmt.Errorf("E8: ordering had no observable effect")
	}
	r.Note("identical events, different trigger orderings, different final metadata — the paper's open issue, observed")
	return r, nil
}

// E9Planner compares placement strategies and measures the virtual-data
// shortcut.
func E9Planner(s Scale) (*Report, error) {
	nTasks := pick(s, 12, 120)
	mkRig := func() (*dgms.Grid, *scheduler.Broker, error) {
		g := dgms.New(dgms.Options{})
		desc := &infra.Description{
			Domains: []infra.Domain{
				{Name: "sdsc",
					Storage: []infra.Storage{{Name: "sdsc-disk", Class: "disk"}},
					Compute: []infra.Compute{{Name: "sdsc-cluster", Nodes: 4, Power: 1.0}}},
				{Name: "ncsa",
					Storage: []infra.Storage{{Name: "ncsa-disk", Class: "disk"}},
					Compute: []infra.Compute{{Name: "ncsa-cluster", Nodes: 4, Power: 2.0}}},
			},
			Links: []infra.Link{{From: "sdsc", To: "ncsa", BandwidthMBps: 5, LatencyMs: 50, Symmetric: true}},
		}
		nodes, err := desc.Apply(g)
		if err != nil {
			return nil, nil, err
		}
		if err := g.CreateCollectionAll(g.Admin(), "/grid/in"); err != nil {
			return nil, nil, err
		}
		rnd := sim.NewRand(9)
		for i := 0; i < nTasks; i++ {
			if err := g.Ingest(g.Admin(), fmt.Sprintf("/grid/in/d%04d", i), rnd.FileSize(256<<20, 0.5), nil, "sdsc-disk"); err != nil {
				return nil, nil, err
			}
		}
		g.Network().Reset()
		return g, scheduler.NewBroker(g, nodes, 31), nil
	}
	tasks := func() []*scheduler.Task {
		out := make([]*scheduler.Task, nTasks)
		for i := range out {
			t := &scheduler.Task{
				Name:           fmt.Sprintf("t%04d", i),
				Transformation: "analyze",
				Inputs:         []string{fmt.Sprintf("/grid/in/d%04d", i)},
				Output:         fmt.Sprintf("/grid/in/out%04d", i),
				OutputSize:     1 << 20,
				CPUSeconds:     60,
			}
			if i%3 == 0 { // a third are CPU-bound Monte Carlo style
				t.CPUSeconds = 7200
			}
			out[i] = t
		}
		return out
	}
	r := &Report{
		ID: "E9", Title: fmt.Sprintf("§2.3 — placement strategies over %d tasks", nTasks),
		Header: []string{"strategy", "data-moved", "makespan", "virtual-data-hits"},
	}
	var costMoved, randomMoved int64
	var costSpan, staticSpan time.Duration
	for _, strat := range []scheduler.Strategy{scheduler.CostBased, scheduler.RandomPlacement, scheduler.StaticPlacement} {
		g, b, err := mkRig()
		if err != nil {
			return nil, err
		}
		start := g.Clock().Now()
		for _, task := range tasks() {
			if _, err := b.Execute(task, strat, ""); err != nil {
				return nil, err
			}
		}
		moved := g.Network().TotalTraffic()
		span := b.Makespan(start)
		_, skipped := b.Stats()
		r.Row(strat.String(), sim.FormatBytes(moved), span.Round(time.Second).String(), fmt.Sprint(skipped))
		switch strat {
		case scheduler.CostBased:
			costMoved, costSpan = moved, span
		case scheduler.RandomPlacement:
			randomMoved = moved
		case scheduler.StaticPlacement:
			staticSpan = span
		}
	}
	// Shape assertions: the cost-based broker finishes no later than the
	// do-nothing static placement (which hoards everything on node 0) and
	// moves no more data than random placement.
	if costSpan > staticSpan {
		return nil, fmt.Errorf("E9: cost-based makespan %v exceeds static %v", costSpan, staticSpan)
	}
	if costMoved > randomMoved {
		return nil, fmt.Errorf("E9: cost-based moved more data (%d) than random (%d)", costMoved, randomMoved)
	}
	// Virtual data: re-submit the same derivations.
	g, b, err := mkRig()
	if err != nil {
		return nil, err
	}
	for _, task := range tasks() {
		if _, err := b.Execute(task, scheduler.CostBased, ""); err != nil {
			return nil, err
		}
	}
	for _, task := range tasks() { // identical derivations again
		if _, err := b.Execute(task, scheduler.CostBased, ""); err != nil {
			return nil, err
		}
	}
	executed, skipped := b.Stats()
	r.Row("cost-based + virtual data (2nd pass)", sim.FormatBytes(g.Network().TotalTraffic()),
		"-", fmt.Sprintf("%d/%d", skipped, executed+skipped))
	if skipped != int64(nTasks) {
		return nil, fmt.Errorf("E9: virtual data skipped %d, want %d", skipped, nTasks)
	}
	r.Note("second pass recomputed nothing: %d derivations served from the catalog", skipped)
	return r, nil
}

// E10LongRun measures long-run process control: pause responsiveness,
// restart redundancy (matrix vs the client-side GridAnt model), and
// provenance query latency as the log grows.
func E10LongRun(s Scale) (*Report, error) {
	r := &Report{
		ID: "E10", Title: "§3.1/§5 — long-run control: pause, restart, provenance",
		Header: []string{"measure", "condition", "value"},
	}
	// (a) Pause responsiveness: steps completed after the pause request.
	_, e, err := newEngine()
	if err != nil {
		return nil, err
	}
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	e.RegisterOp("gate", func(*matrix.OpContext) error {
		once.Do(func() { close(started) })
		<-release
		return nil
	})
	nSteps := pick(s, 30, 200)
	b := dgl.NewFlow("long")
	b.Step("gate", dgl.Op("gate", nil))
	for i := 0; i < nSteps; i++ {
		b.Step(fmt.Sprintf("s%d", i), dgl.Op(dgl.OpNoop, nil))
	}
	ex, err := e.Start("user", b.Flow())
	if err != nil {
		return nil, err
	}
	<-started
	ex.Pause()
	close(release)
	time.Sleep(10 * time.Millisecond)
	pausedSt := ex.Status(true)
	after := pausedSt.CountByState()[string(matrix.StateSucceeded)]
	r.Row("steps run after pause", fmt.Sprintf("%d pending", nSteps), fmt.Sprint(after))
	ex.Resume()
	if err := ex.Wait(); err != nil {
		return nil, err
	}
	if after > 1 {
		return nil, fmt.Errorf("E10: %d steps ran after pause", after)
	}

	// (b) Restart redundancy at three failure points.
	for _, frac := range []int{25, 50, 75} {
		total := pick(s, 20, 100)
		failAt := total * frac / 100
		// Matrix.
		gm, em, err := newEngine()
		if err != nil {
			return nil, err
		}
		matrixRuns := 0
		var mmu sync.Mutex
		failedOnce := false
		em.RegisterOp("counted", func(c *matrix.OpContext) error {
			mmu.Lock()
			defer mmu.Unlock()
			matrixRuns++
			if c.Params["i"] == fmt.Sprint(failAt) && !failedOnce {
				failedOnce = true
				return errors.New("outage")
			}
			return nil
		})
		fb := dgl.NewFlow("job")
		for i := 0; i < total; i++ {
			fb.Step(fmt.Sprintf("s%d", i), dgl.Op("counted", map[string]string{"i": fmt.Sprint(i)}))
		}
		exm, err := em.Run("user", fb.Flow())
		if err != nil {
			return nil, err
		}
		_ = exm.Wait()
		exm2, err := em.Restart(exm.ID)
		if err != nil {
			return nil, err
		}
		if err := exm2.Wait(); err != nil {
			return nil, err
		}
		matrixRedundant := matrixRuns - total - 1 // one extra attempt at the failing step
		_ = gm
		// Client engine (GridAnt model): crash at the same point, re-run.
		gc, err := newGrid()
		if err != nil {
			return nil, err
		}
		ce := baseline.NewClientEngine(gc, "user")
		cb := dgl.NewFlow("job")
		for i := 0; i < total; i++ {
			cb.Step(fmt.Sprintf("s%d", i), dgl.Op(dgl.OpMakeCollection, map[string]string{
				"path": fmt.Sprintf("/grid/w%d", i),
			}))
		}
		cflow := cb.Flow()
		ce.CrashAfter = failAt
		_ = ce.Run(cflow)
		ce.CrashAfter = 0
		if err := ce.Run(cflow); err != nil {
			return nil, err
		}
		clientRedundant := ce.StepsExecuted - total - 1
		r.Row("redundant step executions", fmt.Sprintf("failure at %d%%", frac),
			fmt.Sprintf("matrix=%d client-side=%d", matrixRedundant, clientRedundant))
		if matrixRedundant != 0 || clientRedundant <= 0 {
			return nil, fmt.Errorf("E10: redundancy matrix=%d client=%d at %d%%", matrixRedundant, clientRedundant, frac)
		}
	}

	// (c) Cross-process restart: the first "process" dies mid-flow with
	// its checkpoints only in a provenance file; a second process resumes
	// from the file alone.
	if err := func() error {
		dir, err := os.MkdirTemp("", "dgf-e10-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		provPath := filepath.Join(dir, "prov.jsonl")
		total := pick(s, 20, 100)
		failAt := total / 2
		mk := func(failing bool) (*matrix.Engine, *int, func(), error) {
			store, err := provenance.Open(provPath)
			if err != nil {
				return nil, nil, nil, err
			}
			g := dgms.New(dgms.Options{Provenance: store})
			if err := g.RegisterResource(vfs.New("d", "x", vfs.Disk, 0)); err != nil {
				store.Close()
				return nil, nil, nil, err
			}
			eng := matrix.NewEngine(g)
			runs := 0
			var mu sync.Mutex
			eng.RegisterOp("w", func(c *matrix.OpContext) error {
				mu.Lock()
				defer mu.Unlock()
				runs++
				if failing && c.Params["i"] == fmt.Sprint(failAt) {
					return errors.New("process death")
				}
				return nil
			})
			return eng, &runs, func() { store.Close() }, nil
		}
		doc := func() dgl.Flow {
			fb := dgl.NewFlow("durable")
			for i := 0; i < total; i++ {
				fb.Step(fmt.Sprintf("s%d", i), dgl.Op("w", map[string]string{"i": fmt.Sprint(i)}))
			}
			return fb.Flow()
		}
		e1, _, close1, err := mk(true)
		if err != nil {
			return err
		}
		ex, err := e1.Run("user", doc())
		if err != nil {
			close1()
			return err
		}
		_ = ex.Wait()
		_ = e1.Grid().Provenance().Flush()
		priorID := ex.ID
		close1()
		e2, runs2, close2, err := mk(false)
		if err != nil {
			return err
		}
		defer close2()
		ex2, err := e2.RestartFromProvenance(priorID, dgl.NewAsyncRequest("user", "", doc()))
		if err != nil {
			return err
		}
		if err := ex2.Wait(); err != nil {
			return err
		}
		remaining := total - failAt
		r.Row("cross-process restart", fmt.Sprintf("crash at %d/%d, new process", failAt, total),
			fmt.Sprintf("re-ran %d (remaining work %d)", *runs2, remaining))
		if *runs2 != remaining {
			return fmt.Errorf("cross-process restart re-ran %d, want %d", *runs2, remaining)
		}
		return nil
	}(); err != nil {
		return nil, fmt.Errorf("E10 cross-process: %w", err)
	}

	// (d) Provenance query latency vs log size.
	for _, size := range []int{1000, pick(s, 10000, 100000)} {
		store := provenance.NewMemory()
		for i := 0; i < size; i++ {
			if _, err := store.Append(provenance.Record{
				Time: sim.Epoch, Action: "op", FlowID: fmt.Sprintf("f%d", i%97),
			}); err != nil {
				return nil, err
			}
		}
		t0 := time.Now()
		const reps = 20
		for i := 0; i < reps; i++ {
			_ = store.Query(provenance.Filter{FlowID: "f13"})
		}
		r.Row("provenance query latency", fmt.Sprintf("%d records", size),
			(time.Since(t0) / reps).Round(time.Microsecond).String())
	}
	return r, nil
}
