package experiments

import (
	"fmt"

	"datagridflow/internal/loadgen"
)

// E17Tenant quantifies the multi-tenant control plane
// (docs/TENANCY.md):
//
//   - Registry scale: 100k+ synthetic tenants registered with distinct
//     quotas, heap footprint per tenant — the registry must admit
//     planet-scale tenant populations without a memory story.
//   - Isolation: one 10x-weight aggressor flooding a narrow server
//     (admission-bottlenecked) next to four 1x tenants. Weighted
//     deficit round-robin must hold every lane at weight/Σweights:
//     the worst 1x tenant's attained fraction of its fair share is
//     gated at ≥0.6 (benchgate, docs/BENCH.md).
//   - Quota fidelity: zero rejections in the steady phase (the lanes
//     have weights but no limits), and a positive-control breach of a
//     2-flow quota that must draw rejections — enforcement is proven
//     live, not assumed.
func E17Tenant(s Scale) (*Report, error) {
	rep, err := E17TenantBench(s)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID: "E17", Title: "multi-tenant control plane — registry scale & WFQ isolation",
		Header: []string{"scenario", "metric", "value"},
	}
	r.Row("registry", "tenants", fmt.Sprintf("%d", rep.RegistryTenants))
	r.Row("registry", "bytes/tenant", fmt.Sprintf("%.0f", rep.RegistryBytesPerTenant))
	r.Row("registry", "total MB", fmt.Sprintf("%.1f", rep.RegistryMB))
	for _, l := range rep.Lanes {
		r.Row("isolation", l.Name+" attained", fmt.Sprintf("%.2f (share %.1f%%, fair %.1f%%)",
			l.Attained, l.Share*100, l.FairShare*100))
	}
	r.Row("isolation", "worst 1x attained", fmt.Sprintf("%.2f", rep.MinFairAttained))
	r.Row("quotas", "false rejections", fmt.Sprintf("%d", rep.FalseRejections))
	r.Row("quotas", "breach rejections", fmt.Sprintf("%d", rep.BreachRejections))
	r.Note("workload: %s window, %d-deep server, one %gx aggressor (%d workers) vs %d 1x tenants; authenticated tokens, weights enforced by deficit round-robin",
		rep.Duration, rep.MaxInflight, rep.AggressorW, rep.Lanes[0].Workers, len(rep.Lanes)-1)
	r.Note("gate: worst 1x tenant >= 0.60 of fair share, false rejections == 0, breach rejections >= 1, tenants >= 100000 (internal/infra/benchgate)")
	return r, nil
}

// E17TenantBench runs the multi-tenant experiment and returns the
// machine-readable report `dgfbench -tenant` writes as
// BENCH_tenant.json.
func E17TenantBench(s Scale) (*loadgen.TenantReport, error) {
	opts := loadgen.TenantDefaults()
	if s == Small {
		opts = loadgen.TenantSmallDefaults()
	}
	return loadgen.RunTenant(opts)
}
