package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"datagridflow/internal/dgl"
	"datagridflow/internal/dgms"
	"datagridflow/internal/matrix"
	"datagridflow/internal/namespace"
	"datagridflow/internal/obs"
	"datagridflow/internal/shard"
	"datagridflow/internal/sim"
	"datagridflow/internal/vfs"
	"datagridflow/internal/wire"
)

// E15Shard quantifies sharded flow ownership (docs/FEDERATION.md,
// "Sharded ownership"):
//
//   - Any-peer scaling: a fixed per-peer client population submits
//     synchronous sleep flows to its local peer; the wire layer routes
//     each to its shard owner. Aggregate throughput at 1, 2 and 4 peers
//     measures how submission AND execution spread over the network.
//     The "single-owner" row is the counterfactual: the same 4-peer
//     network and the same offered load, but every shard leased to one
//     peer — the funnel sharding exists to remove.
//   - Failover: the owner of half the key space is killed without
//     drain. Submissions keyed to its shards must keep succeeding
//     (accepted locally by the surviving peer) throughout, the
//     survivor must take the leases over within the registry TTL, and
//     none of the dead peer's completed flows may be re-executed —
//     placement moves, history does not ("no replay from genesis").
func E15Shard(s Scale) (*Report, error) {
	rep, err := E15ShardBench(s)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID: "E15", Title: "sharded ownership — any-peer submit scaling & owner failover",
		Header: []string{"scenario", "peers", "flows/sec", "speedup", "routed/local"},
	}
	r.Row("any-peer", "1", fmt.Sprintf("%.0f", rep.Rate1), "1.00x", "-")
	r.Row("any-peer", "2", fmt.Sprintf("%.0f", rep.Rate2), fmt.Sprintf("%.2fx", rep.Speedup2), "-")
	r.Row("any-peer", "4", fmt.Sprintf("%.0f", rep.Rate4), fmt.Sprintf("%.2fx", rep.Speedup4),
		fmt.Sprintf("%d/%d", rep.Routed4, rep.Local4))
	r.Row("single-owner", "4", fmt.Sprintf("%.0f", rep.RateSingleOwner),
		fmt.Sprintf("%.2fx", rep.SpeedupVsSingleOwner), "(sharded/single-owner)")
	r.Row("failover", "2", "-",
		fmt.Sprintf("takeover %.0fms", rep.FailoverMs),
		fmt.Sprintf("accepted %d, errors %d, replayed %d",
			rep.AcceptedDuringFailover, rep.FailoverSubmitErrors, rep.ReplayedFromGenesis))
	r.Note("workload: %d sync flows per phase, one %gms sleep step each; %d shards; per-peer admission %d, %d submit workers per peer (workers < admission so two-slot routed submissions cannot deadlock)",
		rep.FlowsPerPhase, rep.StepMs, rep.Shards, rep.Capacity, rep.WorkersPerPeer)
	r.Note("single-owner row: same 4-peer network and offered load, every shard leased to peer 1 — throughput collapses to that peer's admission capacity")
	r.Note("failover: owner killed without drain; lease takeover bounded by the registry TTL (%gms here); submissions during the window fall back to local accepts (shard_routes_total{outcome=failover})",
		rep.FailoverTTLMs)
	return r, nil
}

// ShardBenchReport is the machine-readable artifact `dgfbench -shard`
// writes as BENCH_shard.json; the CI bench job gates on it
// (internal/infra/benchgate, docs/BENCH.md).
type ShardBenchReport struct {
	Small          bool    `json:"small"`
	Shards         int     `json:"shards"`
	Capacity       int     `json:"capacity"`
	WorkersPerPeer int     `json:"workers_per_peer"`
	FlowsPerPhase  int     `json:"flows_per_phase"`
	StepMs         float64 `json:"step_ms"`

	Rate1           float64 `json:"rate_1peer"`
	Rate2           float64 `json:"rate_2peer"`
	Rate4           float64 `json:"rate_4peer"`
	RateSingleOwner float64 `json:"rate_single_owner"`
	// Speedup2/Speedup4 are any-peer throughput over the 1-peer run.
	// SpeedupVsSingleOwner is the 4-peer sharded run over the 4-peer
	// single-owner run — the gated scaling ratios.
	Speedup2             float64 `json:"speedup_2peer"`
	Speedup4             float64 `json:"speedup_4peer"`
	SpeedupVsSingleOwner float64 `json:"speedup_vs_single_owner"`
	// Routed4/Local4 split the 4-peer run's submissions by routing
	// outcome on the accepting peers.
	Routed4 int64 `json:"routed_submits_4peer"`
	Local4  int64 `json:"local_submits_4peer"`

	// FailoverMs is kill → survivor holds the dead owner's lease
	// (bounded by FailoverTTLMs, the registry TTL of the run).
	FailoverMs             float64 `json:"failover_ms"`
	FailoverTTLMs          float64 `json:"failover_ttl_ms"`
	TakeoverOwned          bool    `json:"takeover_owned"`
	AcceptedDuringFailover int     `json:"accepted_during_failover"`
	FailoverSubmitErrors   int     `json:"failover_submit_errors"`
	// ReplayedFromGenesis counts the dead owner's completed flows found
	// re-executing on the survivor after takeover — must be 0.
	ReplayedFromGenesis int `json:"replayed_from_genesis"`
}

// E15ShardBench runs the sharded-ownership experiment and returns the
// machine-readable report.
func E15ShardBench(s Scale) (*ShardBenchReport, error) {
	rep := &ShardBenchReport{
		Small: s == Small,
		// Per-peer slot demand under routing is ~1.75x workers (every
		// worker holds its acceptor slot while the owner executes, and
		// routed-in executions hold owner slots), so capacity is sized
		// ~2x workers: the sharded runs stay unthrottled while the
		// single-owner counterfactual — whole network funneled through
		// one peer's admission — saturates.
		Shards:         pick(s, 32, 64),
		Capacity:       pick(s, 12, 20),
		WorkersPerPeer: pick(s, 6, 10),
		FlowsPerPhase:  pick(s, 120, 400),
		StepMs:         float64(pick(s, 4, 8)),
	}

	// Any-peer scaling at 1, 2, 4 peers.
	rates := map[int]float64{}
	for _, n := range []int{1, 2, 4} {
		cl, err := newShardCluster(n, rep, 0)
		if err != nil {
			return nil, err
		}
		rate, err := cl.runPhase(rep)
		if n == 4 {
			rep.Routed4, rep.Local4 = cl.routeSplit()
		}
		cl.close()
		if err != nil {
			return nil, err
		}
		rates[n] = rate
	}
	rep.Rate1, rep.Rate2, rep.Rate4 = rates[1], rates[2], rates[4]
	if rep.Rate1 > 0 {
		rep.Speedup2 = rep.Rate2 / rep.Rate1
		rep.Speedup4 = rep.Rate4 / rep.Rate1
	}

	// Single-owner counterfactual: 4 peers, all shards on the first.
	cl, err := newShardCluster(4, rep, 0)
	if err != nil {
		return nil, err
	}
	cl.funnelTo(0)
	rate, err := cl.runPhase(rep)
	cl.close()
	if err != nil {
		return nil, err
	}
	rep.RateSingleOwner = rate
	if rate > 0 {
		rep.SpeedupVsSingleOwner = rep.Rate4 / rate
	}

	// Failover.
	if err := runShardFailover(s, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// shardPeer is one member of an in-process sharded cluster.
type shardPeer struct {
	name   string
	reg    *obs.Registry
	engine *matrix.Engine
	peer   *wire.Peer
}

type shardCluster struct {
	lookup *wire.LookupServer
	peers  []*shardPeer
}

// newShardCluster stands up a shard-lease lookup plus n sharded peers
// on loopback TCP and settles ring ownership deterministically (two
// rebalance rounds, no heartbeat timers). ttl > 0 arms registry
// eviction for the failover run.
func newShardCluster(n int, rep *ShardBenchReport, ttl time.Duration) (*shardCluster, error) {
	cl := &shardCluster{lookup: wire.NewLookupServer()}
	cl.lookup.SetShards(rep.Shards)
	if ttl > 0 {
		cl.lookup.SetTTL(ttl)
	}
	lookupAddr, err := cl.lookup.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		p, err := newShardPeer(fmt.Sprintf("shard%c", 'A'+i), lookupAddr, rep)
		if err != nil {
			cl.close()
			return nil, err
		}
		cl.peers = append(cl.peers, p)
	}
	cl.settle()
	return cl, nil
}

func newShardPeer(name, lookupAddr string, rep *ShardBenchReport) (*shardPeer, error) {
	reg := obs.NewRegistry()
	// Real clock: the sleep step must consume wall time for admission
	// capacity to be the resource that scales with peers.
	g := dgms.New(dgms.Options{Obs: reg, Clock: sim.RealClock{}})
	if err := g.RegisterResource(vfs.New(name+"-disk", name, vfs.Disk, 0)); err != nil {
		return nil, err
	}
	if err := g.CreateCollectionAll(g.Admin(), "/grid"); err != nil {
		return nil, err
	}
	if err := g.Namespace().SetPermission("/grid", "*", namespace.PermWrite); err != nil {
		return nil, err
	}
	e := matrix.NewEngineConfig(g, matrix.Config{IDPrefix: name + ":", MaxParallel: 64})
	p := wire.NewPeerConfig(name, e, wire.ServerConfig{MaxInflight: rep.Capacity})
	p.EnableSharding(shard.NewManager(shard.Config{
		Self:   name,
		Shards: rep.Shards,
		Obs:    reg,
		Resident: func(id string) bool {
			_, ok := e.Execution(id)
			return ok
		},
	}))
	if _, err := p.Start("127.0.0.1:0", lookupAddr); err != nil {
		return nil, err
	}
	return &shardPeer{name: name, reg: reg, engine: e, peer: p}, nil
}

// settle runs two rebalance rounds over the full roster: the first
// releases what the ring moved away, the second claims what the first
// freed.
func (cl *shardCluster) settle() {
	var names []string
	for _, p := range cl.peers {
		names = append(names, p.name)
	}
	for range [2]int{} {
		for _, p := range cl.peers {
			p.peer.RebalanceShards(names)
		}
	}
}

// funnelTo re-leases every shard to one peer — the single-owner
// counterfactual topology.
func (cl *shardCluster) funnelTo(i int) {
	owner := cl.peers[i]
	var all []int
	for s := 0; s < owner.peer.ShardManager().Shards(); s++ {
		all = append(all, s)
	}
	for j, p := range cl.peers {
		if j != i {
			p.peer.RebalanceShards([]string{owner.name}) // ring of one: drain everything
		}
	}
	owners, err := owner.peer.Lookup().ClaimShards(owner.name, all)
	if err != nil {
		return
	}
	for _, p := range cl.peers {
		p.peer.ShardManager().SetOwners(owners)
	}
}

func (cl *shardCluster) close() {
	for _, p := range cl.peers {
		p.peer.Close()
	}
	cl.lookup.Close()
}

// routeSplit sums the accepting peers' routed vs locally-accepted
// submissions.
func (cl *shardCluster) routeSplit() (routed, local int64) {
	for _, p := range cl.peers {
		routed += p.reg.Counter("shard_routes_total", "outcome", "routed").Value()
		local += p.reg.Counter("shard_routes_total", "outcome", "local").Value()
	}
	return routed, local
}

// runPhase drives FlowsPerPhase synchronous sleep flows through the
// cluster — WorkersPerPeer closed-loop workers per peer, each submitting
// to its local peer over a multiplexed session, flow names and users
// spread uniformly over the key space — and returns flows/sec.
func (cl *shardCluster) runPhase(rep *ShardBenchReport) (float64, error) {
	sleep := time.Duration(rep.StepMs * float64(time.Millisecond))
	var next atomic.Int64
	var failed atomic.Int64
	var wg sync.WaitGroup
	clients := make([]*wire.Client, len(cl.peers))
	for i, p := range cl.peers {
		c, err := wire.Dial(p.peer.Addr())
		if err == nil {
			_, err = c.Hello()
		}
		if err != nil {
			for _, prev := range clients {
				if prev != nil {
					prev.Close()
				}
			}
			return 0, err
		}
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	t0 := time.Now()
	for _, c := range clients {
		for w := 0; w < rep.WorkersPerPeer; w++ {
			wg.Add(1)
			go func(c *wire.Client) {
				defer wg.Done()
				for {
					i := next.Add(1)
					if i > int64(rep.FlowsPerPhase) {
						return
					}
					flow := dgl.NewFlow(fmt.Sprintf("job%d", i)).
						Step("op", dgl.Op(dgl.OpSleep, map[string]string{"duration": sleep.String()})).Flow()
					req := dgl.NewRequest(fmt.Sprintf("u%d", i%16), "", flow)
					res, err := c.Submit(context.Background(), req)
					if err != nil || res.Err() != nil {
						failed.Add(1)
					}
				}
			}(c)
		}
	}
	wg.Wait()
	wall := time.Since(t0)
	if n := failed.Load(); n > 0 {
		return 0, fmt.Errorf("e15: %d of %d submissions failed", n, rep.FlowsPerPhase)
	}
	return float64(rep.FlowsPerPhase) / wall.Seconds(), nil
}

// runShardFailover kills the owner of half the key space and measures
// availability and lease takeover on the survivor.
func runShardFailover(s Scale, rep *ShardBenchReport) error {
	ttl := time.Duration(pick(s, 300, 500)) * time.Millisecond
	rep.FailoverTTLMs = float64(ttl) / float64(time.Millisecond)
	cl, err := newShardCluster(2, rep, ttl)
	if err != nil {
		return err
	}
	defer cl.close()
	a, b := cl.peers[0], cl.peers[1]

	// Warm flows on B: completed executions whose ids must NOT reappear
	// on A after the takeover.
	cb, err := wire.Dial(b.peer.Addr())
	if err != nil {
		return err
	}
	if _, err := cb.Hello(); err != nil {
		cb.Close()
		return err
	}
	warm := pick(s, 8, 24)
	var warmIDs []string
	for i := 0; len(warmIDs) < warm && i < 4096; i++ {
		name := fmt.Sprintf("warm%d", i)
		if !b.peer.ShardManager().Owns(b.peer.ShardManager().ShardOf(wire.RoutingKey("user", name))) {
			continue
		}
		flow := dgl.NewFlow(name).
			Step("op", dgl.Op(dgl.OpSleep, map[string]string{"duration": "1ms"})).Flow()
		res, err := cb.Submit(context.Background(), dgl.NewRequest("user", "", flow),
			wire.WithRoute(wire.RouteLocal))
		if err != nil || res.Err() != nil {
			cb.Close()
			return fmt.Errorf("e15: warm flow: %v / %v", err, res.Err())
		}
		if res.Response.Status != nil {
			warmIDs = append(warmIDs, res.Response.Status.ID)
		}
	}
	cb.Close()

	// Kill B without drain: server down, leases left live until the TTL.
	b.peer.Server().Close()

	// A flow name keyed to a B-owned shard keeps being submitted through
	// A until A holds the lease. Every submission must succeed — the
	// survivor accepts locally while the lease is still B's.
	victim := ""
	for i := 0; i < 4096; i++ {
		name := fmt.Sprintf("after%d", i)
		if h, _, ok := a.peer.ShardManager().OwnerOf(wire.RoutingKey("user", name)); ok && h == b.name {
			victim = name
			break
		}
	}
	if victim == "" {
		return fmt.Errorf("e15: no key routes to the dead owner")
	}
	ca, err := wire.Dial(a.peer.Addr())
	if err != nil {
		return err
	}
	defer ca.Close()
	if _, err := ca.Hello(); err != nil {
		return err
	}
	sh := a.peer.ShardManager().ShardOf(wire.RoutingKey("user", victim))
	t0 := time.Now()
	deadline := t0.Add(ttl + 5*time.Second)
	for !a.peer.ShardManager().Owns(sh) {
		if time.Now().After(deadline) {
			break
		}
		flow := dgl.NewFlow(victim).
			Step("op", dgl.Op(dgl.OpSleep, map[string]string{"duration": "1ms"})).Flow()
		res, err := ca.Submit(context.Background(), dgl.NewRequest("user", "", flow))
		if err != nil || res.Err() != nil {
			rep.FailoverSubmitErrors++
		} else {
			rep.AcceptedDuringFailover++
		}
		// The federation heartbeat would drive this; here it ticks inline.
		a.peer.RebalanceShards([]string{a.name})
		time.Sleep(20 * time.Millisecond)
	}
	rep.FailoverMs = float64(time.Since(t0)) / float64(time.Millisecond)
	rep.TakeoverOwned = a.peer.ShardManager().Owns(sh)

	// History stayed where it was: none of B's completed flows run on A.
	for _, id := range warmIDs {
		if _, resident := a.engine.Execution(id); resident {
			rep.ReplayedFromGenesis++
		}
	}
	return nil
}
