package experiments

import (
	"errors"
	"fmt"
	"time"

	"datagridflow/internal/baseline"
	"datagridflow/internal/dgferr"
	"datagridflow/internal/dgl"
	"datagridflow/internal/dgms"
	"datagridflow/internal/fault"
	"datagridflow/internal/matrix"
	"datagridflow/internal/namespace"
	"datagridflow/internal/obs"
	"datagridflow/internal/vfs"
)

// E12FaultSweep quantifies the paper's fault-tolerance claim ("started,
// stopped and restarted", long-run processes that outlive transient
// failures): the same ingest workload runs against a grid whose primary
// resource flakes at increasing per-operation fault rates, once on the
// matrix engine with a declared retry policy (onError=retry with
// exponential backoff) and once as the cron-script baseline (§2.1),
// which can only re-run the whole script from the top. The fault plan
// is seeded, so the sweep is deterministic.
func E12FaultSweep(s Scale) (*Report, error) {
	r := &Report{
		ID: "E12", Title: "fault sweep — completion & makespan vs fault rate, retry policy vs cron re-run",
		Header: []string{"fault rate", "engine", "completed", "makespan", "ops run", "retries"},
	}
	nObjects := pick(s, 8, 48)
	const (
		resource = "sdsc-disk"
		retries  = 8
		seed     = 7
	)
	for _, pct := range []int{0, 10, 25, 50} {
		prob := float64(pct) / 100
		rate := fmt.Sprintf("%d%%", pct)

		// Matrix engine with per-step retry policy.
		g, reg, err := newFaultGrid(resource, prob, seed)
		if err != nil {
			return nil, err
		}
		e := matrix.NewEngine(g)
		b := dgl.NewFlow("fault-sweep")
		for i := 0; i < nObjects; i++ {
			st := dgl.Step{
				Name:       fmt.Sprintf("ingest-%d", i),
				OnError:    dgl.OnErrorRetry,
				Retries:    retries,
				Backoff:    "2s",
				MaxBackoff: "1m",
				Operation: dgl.Op(dgl.OpIngest, map[string]string{
					"path":     fmt.Sprintf("/grid/sweep/obj-%03d.dat", i),
					"size":     "1048576",
					"resource": resource,
				}),
			}
			b.StepWith(st)
		}
		start := g.Clock().Now()
		ex, err := e.Run("user", b.Flow())
		if err != nil {
			return nil, err
		}
		runErr := ex.Wait()
		makespan := g.Clock().Now().Sub(start)
		r.Row(rate, "matrix/retry", completedStr(runErr == nil),
			makespan.String(),
			fmt.Sprint(reg.Counter("matrix_steps_total", "op", dgl.OpIngest).Value()),
			fmt.Sprint(reg.Counter("matrix_step_retries_total", "op", dgl.OpIngest).Value()))

		// Cron baseline: identical grid and plan, whole-script re-runs.
		gc, _, err := newFaultGrid(resource, prob, seed)
		if err != nil {
			return nil, err
		}
		script := &baseline.CronScript{Name: "sweep"}
		for i := 0; i < nObjects; i++ {
			path := fmt.Sprintf("/grid/sweep/obj-%03d.dat", i)
			script.Ops = append(script.Ops, func(g *dgms.Grid) error {
				err := g.Ingest("user", path, 1<<20, nil, resource)
				if isAlreadyDone(err) {
					return nil // the scripted `|| true` idiom
				}
				return err
			})
		}
		cStart := gc.Clock().Now()
		cronErr := script.RunUntilSuccess(gc, 10*time.Minute, (retries+1)*nObjects)
		cronSpan := gc.Clock().Now().Sub(cStart)
		r.Row(rate, "cron/re-run", completedStr(cronErr == nil),
			cronSpan.String(),
			fmt.Sprint(script.OpsExecuted),
			fmt.Sprint(script.RunsAttempted-1))
	}
	r.Note("retry policy: onError=retry retries=%d backoff=2s maxBackoff=1m; cron re-runs the whole script every 10m", retries)
	r.Note("fault plan: seeded (%d) open-ended flaky window on %s; identical per run of a rate", seed, resource)
	r.Note("'retries' column: per-step retry attempts (matrix) vs whole-script re-runs (cron)")
	return r, nil
}

func completedStr(ok bool) string {
	if ok {
		return "yes"
	}
	return "no"
}

// newFaultGrid builds the standard experiment grid with a private
// metrics registry and a seeded flaky window on one resource.
func newFaultGrid(resource string, prob float64, seed int64) (*dgms.Grid, *obs.Registry, error) {
	reg := obs.NewRegistry()
	g := dgms.New(dgms.Options{Obs: reg})
	for _, res := range []*vfs.Resource{
		vfs.New("sdsc-gpfs", "sdsc", vfs.ParallelFS, 0),
		vfs.New("sdsc-disk", "sdsc", vfs.Disk, 0),
		vfs.New("cern-disk", "cern", vfs.Disk, 0),
		vfs.New("tape", "archive", vfs.Archive, 0),
	} {
		if err := g.RegisterResource(res); err != nil {
			return nil, nil, err
		}
	}
	if err := g.CreateCollectionAll(g.Admin(), "/grid/sweep"); err != nil {
		return nil, nil, err
	}
	if err := g.Namespace().SetPermission("/grid", "user", namespace.PermWrite); err != nil {
		return nil, nil, err
	}
	if prob > 0 {
		in, err := fault.NewInjector(g.Clock(), fault.Plan{
			Seed: seed,
			Events: []fault.Event{
				{Target: resource, Kind: fault.ResourceFlaky, Prob: prob},
			},
		})
		if err != nil {
			return nil, nil, err
		}
		g.SetFault(in)
	}
	return g, reg, nil
}

// isAlreadyDone mirrors the baseline interpreter's `|| true` tolerance.
func isAlreadyDone(err error) bool {
	return errors.Is(err, dgferr.ErrExists)
}
