package experiments

// E14: the flow-state store (internal/store, docs/STORE.md). The paper's
// datagridflows run "days, months, or even years"; a DfMS that keeps
// every long-run execution in memory and replays its whole journal on
// restart cannot honor that. E14 populates an engine with a large set of
// mostly-idle flows (short burst of work, then parked waiting on an
// external event), passivates the idle ones, compacts the store, and
// measures what the subsystem is for: resident executions after
// passivation (memory bound) and restart replay records vs the flat
// journal (recovery bound).

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"datagridflow/internal/dgl"
	"datagridflow/internal/matrix"
	"datagridflow/internal/obs"
	"datagridflow/internal/store"
)

// StoreBenchReport is E14's machine-readable result — the
// BENCH_store.json artifact CI gates on (internal/infra/benchgate,
// docs/BENCH.md).
type StoreBenchReport struct {
	// Flows is the population size; StepsPerFlow the work each did
	// before parking.
	Flows        int `json:"flows"`
	StepsPerFlow int `json:"stepsPerFlow"`

	// JournalRecords counts the flat journal's lines — what a restart
	// without the store must replay. StoreReplayRecords is what
	// store.Open replayed after compaction (one merged snapshot per
	// live flow). ReplayReduction is their ratio, the headline number.
	JournalRecords     int     `json:"journalRecords"`
	StoreReplayRecords int     `json:"storeReplayRecords"`
	ReplayReduction    float64 `json:"replayReduction"`

	// Passivated counts flows evicted to the store; ResidentAfterSweep
	// is what stayed in engine memory (should be ~0 of Flows);
	// ResidentAfterRecovery is engine residency after a restart +
	// RecoverFromStore (passivated flows must NOT re-inflate).
	Passivated            int `json:"passivated"`
	ResidentAfterSweep    int `json:"residentAfterSweep"`
	ResidentAfterRecovery int `json:"residentAfterRecovery"`

	// CompactKept/CompactDropped report the compaction that bounded the
	// replay; SnapshotLag is records appended after the compaction.
	CompactKept    int `json:"compactKept"`
	CompactDropped int `json:"compactDropped"`

	// JournalScanMs times decoding every journal line (the unavoidable
	// floor of full-journal replay); StoreOpenMs times store.Open's
	// replay; RecoverMs times RecoverFromStore on the reopened store.
	JournalScanMs float64 `json:"journalScanMs"`
	StoreOpenMs   float64 `json:"storeOpenMs"`
	RecoverMs     float64 `json:"recoverMs"`

	// HeapBeforeMB/HeapAfterMB bracket the passivation sweep
	// (informational: Go heap, after GC).
	HeapBeforeMB float64 `json:"heapBeforeMB"`
	HeapAfterMB  float64 `json:"heapAfterMB"`

	// GroupCommits/GroupCommitRecords report the write path's fsync
	// batching across the run (journal + store segments).
	GroupCommits       int64 `json:"groupCommits"`
	GroupCommitRecords int64 `json:"groupCommitRecords"`

	// ResurrectedOK is 1 when a sampled passivated flow resurrected
	// from the recovered store with its checkpoints intact.
	ResurrectedOK int `json:"resurrectedOk"`

	// The codec replay phase writes one identical synthetic snapshot
	// stream to two fresh stores — JSONL and the 1.4 binary segment
	// encoding — and times store.Open over each. CodecReplaySpeedup is
	// JSON open time over binary open time, the gated quantity for the
	// store half of the codec (docs/CODEC.md); the byte counts record
	// the on-disk size win.
	CodecReplayRecords int     `json:"codecReplayRecords"`
	CodecJSONOpenMs    float64 `json:"codecJsonOpenMs"`
	CodecBinOpenMs     float64 `json:"codecBinOpenMs"`
	CodecJSONBytes     int64   `json:"codecJsonBytes"`
	CodecBinBytes      int64   `json:"codecBinBytes"`
	CodecReplaySpeedup float64 `json:"codecReplaySpeedup"`
}

// e14Dims sizes the run.
func e14Dims(s Scale) (flows, wave, steps int) {
	if s == Full {
		return 50000, 2000, 12
	}
	return 300, 100, 12
}

// e14CodecRecords sizes the codec replay phase's synthetic stream.
func e14CodecRecords(s Scale) int {
	if s == Full {
		return 40000
	}
	return 4000
}

// codecStream builds the codec phase's workload: snapshot records of
// realistic shape — a request document, a dozen dataset variables, a
// dozen completed steps — cycling over a bounded id population so the
// replayed index stays store-sized while every record is decoded.
func codecStream(n int) []store.Record {
	now := time.Now()
	recs := make([]store.Record, n)
	for i := range recs {
		vars := make(map[string]string, 10)
		for v := 0; v < 10; v++ {
			vars[fmt.Sprintf("dataset.partition.%02d", v)] =
				fmt.Sprintf("srb://vault.sdsc.edu/grid/run-%04d/part-%02d.dat", i%977, v)
		}
		done := make([]string, 12)
		for s := range done {
			done[s] = fmt.Sprintf("/lr/s%d", s)
		}
		// The snapshot carries the execution's full DGL request document:
		// for a long-run collection flow that is a multi-kilobyte,
		// attribute-heavy XML body (one step per partition). Inside JSONL
		// every attribute quote is escaped, which is exactly the asymmetry
		// the binary encoding removes — the request rides as one
		// length-prefixed byte run.
		req := make([]byte, 0, 6<<10)
		req = append(req, `<dataGridRequest async="true"><userInfo><userName>bench</userName>`+
			`<virtualOrganization>sdsc</virtualOrganization></userInfo>`+
			`<dataGridFlow name="lr"><flowLogic control="sequential">`...)
		for s := 0; s < 24; s++ {
			req = append(req, fmt.Sprintf(`<step name="partition-%02d"><op kind="replicate" `+
				`src="srb://vault.sdsc.edu/home/collections/run-%04d/partition-%02d/objects.dat" `+
				`dst="srb://mirror.npaci.edu/archive/run-%04d/partition-%02d/objects.dat" `+
				`checksum="md5:%08x" replicas="3"/></step>`, s, i%977, s, i%977, s, uint32(i*31+s))...)
		}
		req = append(req, `</flowLogic></dataGridFlow></dataGridRequest>`...)
		recs[i] = store.Record{
			Type:    store.TypeExecSnap,
			ID:      fmt.Sprintf("dgf-%06d", i%4096),
			Time:    now.Add(time.Duration(i) * time.Millisecond),
			Request: string(req),
			Node:    "/lr/park",
			Vars:    vars,
			Done:    done,
			Paused:  i%7 == 0,
		}
	}
	return recs
}

// codecPhase writes recs to a fresh store in the given encoding via the
// vectored batch path, then times a cold store.Open over the result.
func codecPhase(dir string, recs []store.Record, binary bool) (openMs float64, size int64, err error) {
	st, err := store.Open(dir, store.Options{Binary: binary})
	if err != nil {
		return 0, 0, err
	}
	const chunk = 512
	for lo := 0; lo < len(recs); lo += chunk {
		hi := lo + chunk
		if hi > len(recs) {
			hi = len(recs)
		}
		if err := st.AppendBatch(recs[lo:hi]); err != nil {
			st.Close()
			return 0, 0, err
		}
	}
	if err := st.Close(); err != nil {
		return 0, 0, err
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		return 0, 0, err
	}
	for _, s := range segs {
		if fi, serr := os.Stat(s); serr == nil {
			size += fi.Size()
		}
	}
	t0 := time.Now()
	st2, err := store.Open(dir, store.Options{Binary: binary})
	if err != nil {
		return 0, 0, err
	}
	openMs = float64(time.Since(t0).Microseconds()) / 1000
	defer st2.Close()
	if got := st2.Stats().ReplayRecords; got != len(recs) {
		return 0, 0, fmt.Errorf("E14 codec: replayed %d of %d records (binary=%v)", got, len(recs), binary)
	}
	return openMs, size, nil
}

// parkedFlow is the E14 workload: a dozen quick variable updates (the
// "active burst"), then a park step that blocks until an external event
// — the shape of a flow that stages data and then waits months for the
// next instrument run.
func parkedFlow(name string, steps int) dgl.Flow {
	fb := dgl.NewFlow(name).Var("cursor", "0")
	for i := 0; i < steps; i++ {
		fb.Step(fmt.Sprintf("s%d", i), dgl.Op(dgl.OpSetVariable, map[string]string{
			"name": "cursor", "value": fmt.Sprint(i + 1),
		}))
	}
	fb.Step("park", dgl.Op("park", nil))
	return fb.Flow()
}

// countLines counts newline-terminated records in a file.
func countLines(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	n := 0
	for {
		line, err := r.ReadBytes('\n')
		if len(line) > 0 {
			n++
		}
		if err != nil {
			return n, nil
		}
	}
}

// scanJournal decodes every record in the journal file — the minimum
// work any full-journal replay must do, independent of what the engine
// then does with the records.
func scanJournal(path string) (int, time.Duration, error) {
	t0 := time.Now()
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	n := 0
	for {
		line, err := r.ReadBytes('\n')
		if len(line) > 1 {
			var rec store.Record
			if uerr := json.Unmarshal(line, &rec); uerr == nil {
				n++
			}
		}
		if err != nil {
			return n, time.Since(t0), nil
		}
	}
}

// groupCommitTotals reads the write path's fsync-batching counters.
// Experiment grids share obs.Default(), so E14 reports deltas across
// its own run.
func groupCommitTotals(reg *obs.Registry) (commits, records int64) {
	for _, c := range reg.Snapshot().Counters {
		switch c.Name {
		case "journal_group_commits_total":
			commits += c.Value
		case "journal_group_commit_records_total":
			records += c.Value
		}
	}
	return commits, records
}

func heapMB() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}

// registerPark installs the blocking "park" op. Parked flows count into
// parked; they unblock only through engine cancellation (which is how
// passivation evicts them).
func registerPark(e *matrix.Engine, parked *atomic.Int64) {
	e.RegisterOp("park", func(c *matrix.OpContext) error {
		parked.Add(1)
		defer parked.Add(-1)
		<-c.Cancel
		return matrix.ErrCancelled
	})
}

// E14StoreBench runs the store benchmark and returns the JSON report.
func E14StoreBench(scale Scale) (*StoreBenchReport, error) {
	flows, wave, steps := e14Dims(scale)
	dir, err := os.MkdirTemp("", "dgf-e14-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	journalPath := filepath.Join(dir, "journal.jsonl")
	storeDir := filepath.Join(dir, "store")

	g, err := newGrid()
	if err != nil {
		return nil, err
	}
	e := matrix.NewEngine(g)
	var parked atomic.Int64
	registerPark(e, &parked)
	journal, err := matrix.OpenJournal(journalPath)
	if err != nil {
		return nil, err
	}
	e.SetJournal(journal)
	st, err := store.Open(storeDir, store.Options{})
	if err != nil {
		return nil, err
	}
	e.SetStore(st)

	rep := &StoreBenchReport{Flows: flows, StepsPerFlow: steps}
	rep.HeapBeforeMB = heapMB()
	gc0, gr0 := groupCommitTotals(e.Obs())

	// Populate in waves: submit a wave, wait for every flow to finish
	// its burst and park, then passivate the wave in parallel (parallel
	// passivation is what exercises the group-committed write path).
	// Waves bound peak residency, like a real server passivating on an
	// idle timer while new work arrives.
	firstID := ""
	for done := 0; done < flows; {
		n := wave
		if flows-done < n {
			n = flows - done
		}
		ids := make([]string, 0, n)
		for i := 0; i < n; i++ {
			resp, err := e.Submit(dgl.NewAsyncRequest("user", "",
				parkedFlow(fmt.Sprintf("lr-%06d", done+i), steps)))
			if err != nil {
				return nil, err
			}
			if resp.Error != "" || resp.Ack == nil {
				return nil, fmt.Errorf("E14: submit: %+v", resp)
			}
			ids = append(ids, resp.Ack.ID)
		}
		if firstID == "" {
			firstID = ids[0]
		}
		for parked.Load() < int64(n) {
			time.Sleep(2 * time.Millisecond)
		}
		var wg sync.WaitGroup
		workers := 64
		if workers > n {
			workers = n
		}
		ch := make(chan string, n)
		for _, id := range ids {
			ch <- id
		}
		close(ch)
		errc := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for id := range ch {
					if perr := e.Passivate(id); perr != nil {
						errc <- perr
						return
					}
				}
			}()
		}
		wg.Wait()
		select {
		case perr := <-errc:
			return nil, fmt.Errorf("E14: passivate: %w", perr)
		default:
		}
		done += n
	}
	// Sweep stragglers (none expected) through the production API.
	e.PassivateIdle(0)
	rep.ResidentAfterSweep = len(e.Executions())
	rep.Passivated = st.Stats().Passivated
	rep.HeapAfterMB = heapMB()

	cs, err := st.Compact()
	if err != nil {
		return nil, err
	}
	rep.CompactKept, rep.CompactDropped = cs.RecordsKept, cs.RecordsDropped

	gc1, gr1 := groupCommitTotals(e.Obs())
	rep.GroupCommits = gc1 - gc0
	rep.GroupCommitRecords = gr1 - gr0

	if err := st.Close(); err != nil {
		return nil, err
	}
	if err := journal.Close(); err != nil {
		return nil, err
	}

	// The restart: what would each recovery path replay?
	rep.JournalRecords, _ = countLines(journalPath)
	scanned, scanDur, err := scanJournal(journalPath)
	if err != nil {
		return nil, err
	}
	if scanned != rep.JournalRecords {
		return nil, fmt.Errorf("E14: journal scan decoded %d of %d records", scanned, rep.JournalRecords)
	}
	rep.JournalScanMs = float64(scanDur.Microseconds()) / 1000

	t0 := time.Now()
	st2, err := store.Open(storeDir, store.Options{})
	if err != nil {
		return nil, err
	}
	rep.StoreOpenMs = float64(time.Since(t0).Microseconds()) / 1000
	defer st2.Close()
	rep.StoreReplayRecords = st2.Stats().ReplayRecords
	if rep.StoreReplayRecords > 0 {
		rep.ReplayReduction = float64(rep.JournalRecords) / float64(rep.StoreReplayRecords)
	}

	g2, err := newGrid()
	if err != nil {
		return nil, err
	}
	e2 := matrix.NewEngine(g2)
	var parked2 atomic.Int64
	registerPark(e2, &parked2)
	e2.SetStore(st2)
	t0 = time.Now()
	resumed, err := e2.RecoverFromStore()
	if err != nil {
		return nil, err
	}
	rep.RecoverMs = float64(time.Since(t0).Microseconds()) / 1000
	rep.ResidentAfterRecovery = len(e2.Executions()) + len(resumed)

	// Prove a passivated flow is actually reachable after the restart:
	// resurrect one, check its burst steps are checkpoint-complete,
	// then cancel it (the park would otherwise hold the process).
	if ent, ok := st2.Entry(firstID); ok && len(ent.Done) == steps {
		if ex, rerr := e2.ResurrectFor(firstID, "status"); rerr == nil {
			for parked2.Load() < 1 {
				time.Sleep(2 * time.Millisecond)
			}
			ex.Cancel()
			_ = ex.Wait()
			rep.ResurrectedOK = 1
		}
	}

	// Codec replay phase: the same synthetic snapshot stream through a
	// JSONL store and a binary store, each timed through a cold Open.
	recs := codecStream(e14CodecRecords(scale))
	rep.CodecReplayRecords = len(recs)
	rep.CodecJSONOpenMs, rep.CodecJSONBytes, err = codecPhase(filepath.Join(dir, "codec-json"), recs, false)
	if err != nil {
		return nil, err
	}
	rep.CodecBinOpenMs, rep.CodecBinBytes, err = codecPhase(filepath.Join(dir, "codec-bin"), recs, true)
	if err != nil {
		return nil, err
	}
	if rep.CodecBinOpenMs > 0 {
		rep.CodecReplaySpeedup = rep.CodecJSONOpenMs / rep.CodecBinOpenMs
	}
	return rep, nil
}

// E14Store renders the benchmark as an experiment table.
func E14Store(scale Scale) (*Report, error) {
	rep, err := E14StoreBench(scale)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "E14",
		Title:  fmt.Sprintf("flow-state store: resident memory and restart replay, %d long-run flows", rep.Flows),
		Header: []string{"quantity", "journal only", "with store"},
	}
	r.Row("flows", fmt.Sprint(rep.Flows), fmt.Sprint(rep.Flows))
	r.Row("resident executions", fmt.Sprint(rep.Flows), fmt.Sprint(rep.ResidentAfterSweep))
	r.Row("restart replay (records)", fmt.Sprint(rep.JournalRecords), fmt.Sprint(rep.StoreReplayRecords))
	r.Row("restart replay (ms)", fmt.Sprintf("%.1f", rep.JournalScanMs), fmt.Sprintf("%.1f", rep.StoreOpenMs+rep.RecoverMs))
	r.Row("resident after restart", fmt.Sprint(rep.Flows), fmt.Sprint(rep.ResidentAfterRecovery))
	r.Note("replay reduction %.1fx (compaction kept %d, dropped %d); %d flows passivated (heap baseline %.1f MB, after sweep %.1f MB)",
		rep.ReplayReduction, rep.CompactKept, rep.CompactDropped, rep.Passivated, rep.HeapBeforeMB, rep.HeapAfterMB)
	r.Note("write path batched %d records into %d fsyncs (%.1f records/fsync)",
		rep.GroupCommitRecords, rep.GroupCommits, float64(rep.GroupCommitRecords)/float64(max64(rep.GroupCommits, 1)))
	if rep.ResurrectedOK == 1 {
		r.Note("sampled passivated flow resurrected after restart with all %d burst steps checkpoint-complete", rep.StepsPerFlow)
	}
	r.Row(fmt.Sprintf("codec replay ms (%d records)", rep.CodecReplayRecords),
		fmt.Sprintf("%.1f", rep.CodecJSONOpenMs), fmt.Sprintf("%.1f", rep.CodecBinOpenMs))
	r.Note("binary segment codec: replay %.1fx faster than JSONL, %.0f%% of the bytes (%d -> %d)",
		rep.CodecReplaySpeedup, 100*float64(rep.CodecBinBytes)/float64(max64(rep.CodecJSONBytes, 1)),
		rep.CodecJSONBytes, rep.CodecBinBytes)
	return r, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
