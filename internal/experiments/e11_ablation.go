package experiments

import (
	"fmt"
	"time"

	"datagridflow/internal/dgms"
	"datagridflow/internal/ilm"
	"datagridflow/internal/matrix"
	"datagridflow/internal/sim"
	"datagridflow/internal/vfs"
	"datagridflow/internal/workload"
)

// E11HSMvsILM ablates the paper's central ILM claim: "Unlike traditional
// Hierarchical Storage Management (HSM) solutions, which normally use
// data freshness as the most important attribute in determining data
// placement, ILM solutions use data value and business policies."
//
// Setup: a collection whose files are all old (freshness ≈ 0) but whose
// access pattern is Zipfian — a small hot set absorbs most reads. The
// HSM policy (freshness valuer) sends everything to tape; the ILM policy
// (access-driven value model) keeps the hot set on fast storage. We then
// replay a month of accesses under each placement and compare what users
// actually waited for, tape recall counts, and the retention bill.
func E11HSMvsILM(s Scale) (*Report, error) {
	nFiles := pick(s, 20, 200)
	nAccesses := pick(s, 120, 2000)

	type outcome struct {
		toTape      int
		toFast      int
		serviceTime time.Duration
		tapeReads   int64
		monthlyCost float64
	}

	run := func(useILM bool) (outcome, error) {
		g := dgms.New(dgms.Options{})
		fast := vfs.New("gpfs", "site", vfs.ParallelFS, 0)
		tape := vfs.New("tape", "site", vfs.Archive, 0)
		for _, r := range []*vfs.Resource{fast, tape} {
			if err := g.RegisterResource(r); err != nil {
				return outcome{}, err
			}
		}
		e := matrix.NewEngine(g)
		// Ingest the collection onto fast storage, then age it 90 days:
		// every file is stale by freshness standards.
		specs := workload.LibraryDocs(sim.NewRand(11), nFiles)
		if err := workload.Ingest(g, g.Admin(), "gpfs", specs); err != nil {
			return outcome{}, err
		}
		g.Clock().Sleep(90 * 24 * time.Hour)
		paths := make([]string, len(specs))
		for i, sp := range specs {
			paths[i] = sp.Path
		}
		// A warm-up fortnight of accesses establishes the hot set (only
		// the ILM value model can see it).
		model := ilm.NewValueModel()
		sub := ilm.TrackAccesses(g, model)
		defer g.Bus().Unsubscribe(sub)
		warmup := workload.AccessTrace(sim.NewRand(12), paths, nAccesses/2, 10*time.Minute, 1.4)
		if _, err := workload.Replay(g, g.Admin(), warmup); err != nil {
			return outcome{}, err
		}
		// The nightly lifecycle pass under the chosen policy.
		var valuer ilm.Valuer = ilm.FreshnessValuer{}
		if useILM {
			valuer = ilm.ModelValuer{Model: model}
		}
		pol := ilm.Policy{
			Name: "tiering", Owner: g.Admin(), Scope: "/grid/library",
			Tiers: []ilm.Tier{
				{MinValue: 25, Resource: "gpfs"},
				{MinValue: 0, Resource: "tape"},
			},
		}
		decisions, _, err := pol.Plan(g, valuer, g.Clock().Now())
		if err != nil {
			return outcome{}, err
		}
		ex, err := e.Run(g.Admin(), pol.Compile(decisions))
		if err != nil {
			return outcome{}, err
		}
		if err := ex.Wait(); err != nil {
			return outcome{}, err
		}
		var out outcome
		out.toTape = tape.Count()
		out.toFast = fast.Count()
		// The next month of accesses, same Zipf law: what do users wait?
		tapeReadsBefore, _ := tape.Stats()
		month := workload.AccessTrace(sim.NewRand(13), paths, nAccesses, 20*time.Minute, 1.4)
		stats, err := workload.Replay(g, g.Admin(), month)
		if err != nil {
			return outcome{}, err
		}
		tapeReadsAfter, _ := tape.Stats()
		out.serviceTime = stats.ServiceTime
		out.tapeReads = tapeReadsAfter - tapeReadsBefore
		out.monthlyCost = fast.RetentionCost(30*24*time.Hour) + tape.RetentionCost(30*24*time.Hour)
		return out, nil
	}

	hsm, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("E11 hsm: %w", err)
	}
	ilmOut, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("E11 ilm: %w", err)
	}
	r := &Report{
		ID:     "E11",
		Title:  fmt.Sprintf("§2.1 ablation — HSM (freshness) vs ILM (domain value), %d old files, Zipf reads", nFiles),
		Header: []string{"policy", "on-fast", "on-tape", "tape-recalls", "user-wait (sim)", "retention $/month"},
	}
	r.Row("HSM freshness-only", fmt.Sprint(hsm.toFast), fmt.Sprint(hsm.toTape),
		fmt.Sprint(hsm.tapeReads), hsm.serviceTime.Round(time.Second).String(),
		fmt.Sprintf("%.2f", hsm.monthlyCost))
	r.Row("ILM domain-value", fmt.Sprint(ilmOut.toFast), fmt.Sprint(ilmOut.toTape),
		fmt.Sprint(ilmOut.tapeReads), ilmOut.serviceTime.Round(time.Second).String(),
		fmt.Sprintf("%.2f", ilmOut.monthlyCost))
	// Shape assertions: HSM archives everything (all files are stale);
	// ILM keeps a hot set fast; user-visible wait under ILM is far lower
	// because the hot set never mounts tape.
	if hsm.toTape != nFiles {
		return nil, fmt.Errorf("E11: HSM left %d files off tape", nFiles-hsm.toTape)
	}
	if ilmOut.toFast == 0 || ilmOut.toFast >= nFiles {
		return nil, fmt.Errorf("E11: ILM hot set = %d of %d", ilmOut.toFast, nFiles)
	}
	if ilmOut.serviceTime >= hsm.serviceTime {
		return nil, fmt.Errorf("E11: ILM wait %v not below HSM %v", ilmOut.serviceTime, hsm.serviceTime)
	}
	if ilmOut.tapeReads >= hsm.tapeReads {
		return nil, fmt.Errorf("E11: ILM recalls %d not below HSM %d", ilmOut.tapeReads, hsm.tapeReads)
	}
	speedup := float64(hsm.serviceTime) / float64(ilmOut.serviceTime)
	r.Note("value-aware placement cut user-visible wait %.1f× (hot set stayed off tape) at a %.0f%% higher retention bill",
		speedup, (ilmOut.monthlyCost/hsm.monthlyCost-1)*100)
	return r, nil
}
