package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsSmall runs the whole harness at Small scale: each
// experiment must produce a non-empty report and its internal shape
// assertions must hold (they return errors otherwise).
func TestAllExperimentsSmall(t *testing.T) {
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			r, err := exp.Run(Small)
			if err != nil {
				t.Fatalf("%s failed: %v", exp.ID, err)
			}
			if r.ID != exp.ID {
				t.Errorf("report id %q", r.ID)
			}
			if len(r.Rows) == 0 {
				t.Errorf("%s produced no rows", exp.ID)
			}
			out := r.String()
			if !strings.Contains(out, exp.ID) || !strings.Contains(out, r.Header[0]) {
				t.Errorf("%s render missing content:\n%s", exp.ID, out)
			}
		})
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "X", Title: "t", Header: []string{"col-a", "b"}}
	r.Row("1", "22222")
	r.Row("333", "4")
	r.Note("a note %d", 7)
	out := r.String()
	for _, want := range []string{"== X: t ==", "col-a", "333", "note: a note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
