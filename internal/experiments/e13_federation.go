package experiments

import (
	"fmt"
	"time"

	"datagridflow/internal/dgl"
	"datagridflow/internal/dgms"
	"datagridflow/internal/federation"
	"datagridflow/internal/matrix"
	"datagridflow/internal/namespace"
	"datagridflow/internal/obs"
	"datagridflow/internal/provenance"
	"datagridflow/internal/scheduler"
	"datagridflow/internal/sim"
	"datagridflow/internal/vfs"
	"datagridflow/internal/wire"
)

// E13Federation quantifies federated flow execution (docs/FEDERATION.md):
//
//   - Scale-out: the E5 concurrent-flows workload — many parallel
//     subflows of real-clock sleep steps — on 1, 2 and 4 matrixd peers.
//     Every peer, including the submission peer, offers the same subflow
//     concurrency (wire admission capacity remotely, the federation's
//     local slot pool at home), so the peer count is the only variable.
//   - Failover: a flow on peer A whose subflow is pinned to peer B; B is
//     crashed mid-subflow (server torn down with the delegation in
//     flight) and the flow must still complete, with the failover
//     visible in provenance and the federation_* metrics.
func E13Federation(s Scale) (*Report, error) {
	r := &Report{
		ID: "E13", Title: "federated execution — scale-out over peers & ownership failover",
		Header: []string{"scenario", "peers", "wall", "steps/sec", "speedup", "delegated"},
	}
	var (
		parents   = pick(s, 2, 4)
		subflows  = pick(s, 8, 16) // per parent
		steps     = pick(s, 2, 4)  // per subflow
		stepSleep = time.Duration(pick(s, 4, 10)) * time.Millisecond
		capacity  = 4 // per-peer subflow concurrency
	)
	var base float64
	for _, n := range []int{1, 2, 4} {
		cl, err := newCluster(n, capacity, &scheduler.RoundRobin{})
		if err != nil {
			return nil, err
		}
		wall, delegated, err := cl.runWorkload(parents, subflows, steps, stepSleep)
		cl.close()
		if err != nil {
			return nil, err
		}
		totalSteps := parents * subflows * steps
		rate := float64(totalSteps) / wall.Seconds()
		if n == 1 {
			base = rate
		}
		r.Row("scale-out", fmt.Sprint(n), wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", rate), fmt.Sprintf("%.2fx", rate/base),
			fmt.Sprint(delegated))
	}

	// Failover: pin placement to B, crash B mid-subflow.
	failRow, err := runFailover(s)
	if err != nil {
		return nil, err
	}
	r.Rows = append(r.Rows, failRow)

	r.Note("workload: %d flows × %d parallel subflows × %d sleep(%s) steps; per-peer subflow concurrency %d (admission capacity = federation local slots)",
		parents, subflows, steps, stepSleep, capacity)
	r.Note("placement: round-robin for scale-out (deterministic spread); failover pins peer B then falls back least-loaded")
	r.Note("failover run: peer B's server is torn down with the delegation in flight; the delegating peer quarantines B and re-places the subflow")
	return r, nil
}

// fedPeer is one member of an in-process federation cluster.
type fedPeer struct {
	name   string
	reg    *obs.Registry
	grid   *dgms.Grid
	engine *matrix.Engine
	peer   *wire.Peer
	fed    *federation.Federation
}

type cluster struct {
	lookup *wire.LookupServer
	peers  []*fedPeer
}

// newCluster stands up a lookup server plus n federated peers on
// loopback TCP, each with its own grid, registry and engine. Heartbeats
// are forced (Beat) so membership is deterministic, not timer-paced.
func newCluster(n, capacity int, policy scheduler.PlacementPolicy) (*cluster, error) {
	cl := &cluster{lookup: wire.NewLookupServer()}
	lookupAddr, err := cl.lookup.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("fed%c", 'A'+i)
		p, err := newFedPeer(name, lookupAddr, capacity, policy)
		if err != nil {
			cl.close()
			return nil, err
		}
		cl.peers = append(cl.peers, p)
	}
	// Two rounds: first spreads registrations, second lets every peer see
	// the completed roster.
	for range [2]int{} {
		for _, p := range cl.peers {
			p.fed.Beat()
		}
	}
	return cl, nil
}

func newFedPeer(name, lookupAddr string, capacity int, policy scheduler.PlacementPolicy) (*fedPeer, error) {
	reg := obs.NewRegistry()
	// Real clock: sleep steps must consume wall time for scale-out to be
	// measurable (the virtual clock completes sleeps instantly).
	g := dgms.New(dgms.Options{Obs: reg, Clock: sim.RealClock{}})
	if err := g.RegisterResource(vfs.New(name+"-disk", name, vfs.Disk, 0)); err != nil {
		return nil, err
	}
	if err := g.CreateCollectionAll(g.Admin(), "/grid"); err != nil {
		return nil, err
	}
	if err := g.Namespace().SetPermission("/grid", "*", namespace.PermWrite); err != nil {
		return nil, err
	}
	e := matrix.NewEngineConfig(g, matrix.Config{IDPrefix: name + ":", MaxParallel: 64})
	p := wire.NewPeerConfig(name, e, wire.ServerConfig{MaxInflight: capacity})
	if _, err := p.Start("127.0.0.1:0", lookupAddr); err != nil {
		return nil, err
	}
	fed := federation.New(p, federation.Config{
		Policy:            policy,
		HeartbeatInterval: 50 * time.Millisecond,
		Backoff:           20 * time.Millisecond,
	})
	fed.Start()
	return &fedPeer{name: name, reg: reg, grid: g, engine: e, peer: p, fed: fed}, nil
}

func (cl *cluster) close() {
	for _, p := range cl.peers {
		p.fed.Close()
		p.peer.Close()
	}
	cl.lookup.Close()
}

// runWorkload submits the concurrent-flows workload on the first peer
// and reports wall time plus how many subflows the federation placed.
func (cl *cluster) runWorkload(parents, subflows, steps int, stepSleep time.Duration) (time.Duration, int64, error) {
	a := cl.peers[0]
	flow := workloadFlow(subflows, steps, stepSleep)
	t0 := time.Now()
	execs := make([]*matrix.Execution, parents)
	for i := range execs {
		ex, err := a.engine.Start("user", flow)
		if err != nil {
			return 0, 0, err
		}
		execs[i] = ex
	}
	for _, ex := range execs {
		if err := ex.Wait(); err != nil {
			return 0, 0, err
		}
	}
	wall := time.Since(t0)
	// All delegations originate on the submission peer; its registry
	// labels each with the executing peer's name.
	var delegated int64
	for _, p := range cl.peers {
		delegated += a.reg.Counter("federation_delegations_total", "peer", p.name).Value()
	}
	return wall, delegated, nil
}

// workloadFlow is one parent: `subflows` parallel subflows, each a
// sequence of real-clock sleep steps.
func workloadFlow(subflows, steps int, stepSleep time.Duration) dgl.Flow {
	b := dgl.NewFlow("fedload").Parallel()
	for i := 0; i < subflows; i++ {
		sub := dgl.NewFlow(fmt.Sprintf("shard-%d", i))
		for j := 0; j < steps; j++ {
			sub.Step(fmt.Sprintf("work-%d", j),
				dgl.Op(dgl.OpSleep, map[string]string{"duration": stepSleep.String()}))
		}
		b.SubFlow(sub)
	}
	return b.Flow()
}

// pinFirst places every subflow on the pinned peer while it is a
// candidate, falling back to least-loaded — the deterministic way to
// aim the failover run at peer B.
type pinFirst struct{ target string }

func (p *pinFirst) Name() string { return "pin-first" }

func (p *pinFirst) Pick(local, hint string, cands []scheduler.Candidate) (string, bool) {
	for _, c := range cands {
		if c.Name == p.target {
			return p.target, true
		}
	}
	return scheduler.LeastLoaded{}.Pick(local, hint, cands)
}

// runFailover runs the crash scenario and returns its report row.
func runFailover(s Scale) ([]string, error) {
	var (
		steps     = pick(s, 4, 5)
		stepSleep = time.Duration(pick(s, 30, 100)) * time.Millisecond
		crashAt   = time.Duration(pick(s, 40, 150)) * time.Millisecond
	)
	cl, err := newCluster(2, 4, &pinFirst{target: "fedB"})
	if err != nil {
		return nil, err
	}
	defer cl.close()
	a, b := cl.peers[0], cl.peers[1]
	flow := workloadFlow(1, steps, stepSleep)
	t0 := time.Now()
	ex, err := a.engine.Start("user", flow)
	if err != nil {
		return nil, err
	}
	// Crash B with the delegation in flight: stop its heartbeats, then
	// tear down its server (connections die, no graceful unregister).
	time.Sleep(crashAt)
	b.fed.Close()
	b.peer.Server().Close()
	runErr := ex.Wait()
	wall := time.Since(t0)

	failovers := a.reg.Counter("federation_failovers_total", "peer", "fedB").Value()
	provFailovers := a.grid.Provenance().Count(provenance.Filter{Action: "deleg.failover"})
	finalPeer := "?"
	st := ex.Status(true)
	for i := range st.Children {
		if rid := st.Children[i].Delegated; rid != "" {
			finalPeer = wire.OwnerOf(rid)
		}
	}
	outcome := fmt.Sprintf("completed=%s on=%s failovers=%d prov=%d",
		completedStr(runErr == nil), finalPeer, failovers, provFailovers)
	if runErr != nil {
		outcome = fmt.Sprintf("FAILED: %v (failovers=%d)", runErr, failovers)
	}
	return []string{"failover (crash B mid-subflow)", "2", wall.Round(time.Millisecond).String(),
		"-", "-", outcome}, nil
}
