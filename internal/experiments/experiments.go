// Package experiments implements the reproduction's evaluation harness.
//
// The paper is an introduction/system paper with no quantitative tables;
// its four figures are DGL schema diagrams and its claims are functional
// (scalability, long-run control, scenario support). Each experiment
// here regenerates one figure as an executable artifact (E1–E4) or
// quantifies one claim/scenario with the baselines the paper names
// (E5–E10). Every experiment is deterministic for a given Scale and
// seed; cmd/dgfbench prints the reports and EXPERIMENTS.md records them.
package experiments

import (
	"fmt"
	"strings"

	"datagridflow/internal/dgms"
	"datagridflow/internal/matrix"
	"datagridflow/internal/namespace"
	"datagridflow/internal/vfs"
)

// Scale selects experiment sizes: Small keeps everything under a second
// (tests, quick benches); Full is what EXPERIMENTS.md records.
type Scale int

// Scales.
const (
	Small Scale = iota
	Full
)

// Report is one experiment's output.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Header)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Row appends one formatted row.
func (r *Report) Row(cells ...string) { r.Rows = append(r.Rows, cells) }

// Note appends a note line.
func (r *Report) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Runner maps experiment ids to their functions.
type Runner func(Scale) (*Report, error)

// All lists every experiment in order.
func All() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"E1", E1FlowSchema},
		{"E2", E2RequestSchema},
		{"E3", E3ControlPatterns},
		{"E4", E4AsyncStatus},
		{"E5", E5Scalability},
		{"E6", E6ImplodingStar},
		{"E7", E7ExplodingStar},
		{"E8", E8Triggers},
		{"E9", E9Planner},
		{"E10", E10LongRun},
		{"E11", E11HSMvsILM},
		{"E12", E12FaultSweep},
		{"E13", E13Federation},
		{"E14", E14Store},
		{"E15", E15Shard},
		{"E16", E16Replica},
		{"E17", E17Tenant},
		{"E18", E18Vdata},
	}
}

// newGrid builds a standard experiment grid: three domains with mixed
// storage classes and full write access for "user".
func newGrid() (*dgms.Grid, error) {
	g := dgms.New(dgms.Options{})
	for _, r := range []*vfs.Resource{
		vfs.New("sdsc-gpfs", "sdsc", vfs.ParallelFS, 0),
		vfs.New("sdsc-disk", "sdsc", vfs.Disk, 0),
		vfs.New("cern-disk", "cern", vfs.Disk, 0),
		vfs.New("tape", "archive", vfs.Archive, 0),
	} {
		if err := g.RegisterResource(r); err != nil {
			return nil, err
		}
	}
	if err := g.CreateCollectionAll(g.Admin(), "/grid"); err != nil {
		return nil, err
	}
	if err := g.Namespace().SetPermission("/grid", "user", namespace.PermWrite); err != nil {
		return nil, err
	}
	return g, nil
}

func newEngine() (*dgms.Grid, *matrix.Engine, error) {
	g, err := newGrid()
	if err != nil {
		return nil, nil, err
	}
	return g, matrix.NewEngine(g), nil
}

func pick(s Scale, small, full int) int {
	if s == Full {
		return full
	}
	return small
}
