package experiments

import (
	"context"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"datagridflow/internal/dgl"
	"datagridflow/internal/dgms"
	"datagridflow/internal/matrix"
	"datagridflow/internal/namespace"
	"datagridflow/internal/obs"
	"datagridflow/internal/replica"
	"datagridflow/internal/shard"
	"datagridflow/internal/sim"
	"datagridflow/internal/store"
	"datagridflow/internal/vfs"
	"datagridflow/internal/wire"
)

// E16Replica quantifies the replicated lifecycle store
// (docs/REPLICATION.md):
//
//   - Submit overhead: the same synchronous workload against the same
//     peer, bare vs quorum-replicated to one follower. Quorum couples
//     every commit point — terminal outcome or passivation, the records
//     that complete a promise to a caller — to a follower ack, so the
//     ratio is the price of "accepted means replicated" — gated at
//     ≤15%.
//   - Takeover with disk loss: the owner of live flows is killed and
//     its store never reopens. The follower promotes its replica: every
//     flow whose records the follower acknowledged before the kill must
//     reappear on the survivor (zero acknowledged-record loss), in
//     O(live flows) — the replica replays like any store, snapshots
//     plus tail, not the owner's history from genesis.
func E16Replica(s Scale) (*Report, error) {
	rep, err := E16ReplBench(s)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID: "E16", Title: "replicated lifecycle store — quorum overhead & standby takeover",
		Header: []string{"scenario", "metric", "value"},
	}
	r.Row("submit", "bare flows/sec", fmt.Sprintf("%.0f", rep.RatePlain))
	r.Row("submit", "quorum flows/sec", fmt.Sprintf("%.0f", rep.RateQuorum))
	r.Row("submit", "quorum overhead", fmt.Sprintf("%.1f%%", rep.QuorumOverheadFrac*100))
	r.Row("takeover", "acked live flows", fmt.Sprintf("%d", rep.AckedLiveFlows))
	r.Row("takeover", "lost after promotion", fmt.Sprintf("%d", rep.LostFlows))
	r.Row("takeover", "promoted flows", fmt.Sprintf("%d", rep.PromotedFlows))
	r.Row("takeover", "takeover ms", fmt.Sprintf("%.0f", rep.TakeoverMs))
	r.Row("catch-up", "snapshots shipped", fmt.Sprintf("%d", rep.SnapshotsShipped))
	r.Note("workload: %d sync flows per submit phase, one %gms sleep step each; %d shards; quorum ack to %d follower(s)",
		rep.FlowsPerPhase, rep.StepMs, rep.Shards, rep.Followers)
	r.Note("takeover: owner killed without drain, its store abandoned (disk loss); survivor promotes the replica when the member set shrinks — acked flows resume from the follower's copy")
	return r, nil
}

// ReplBenchReport is the machine-readable artifact `dgfbench -repl`
// writes as BENCH_repl.json; the CI replication-chaos job gates on it
// (internal/infra/benchgate, docs/BENCH.md).
type ReplBenchReport struct {
	Small          bool    `json:"small"`
	Followers      int     `json:"followers"`
	Mode           string  `json:"mode"`
	Shards         int     `json:"shards"`
	Capacity       int     `json:"capacity"`
	WorkersPerPeer int     `json:"workers_per_peer"`
	FlowsPerPhase  int     `json:"flows_per_phase"`
	StepMs         float64 `json:"step_ms"`

	// RatePlain/RateQuorum are the same closed-loop synchronous workload
	// without and with quorum replication, each the best of the measured
	// interleaved passes; QuorumOverheadFrac is (plain/quorum)-1 in wall
	// time — the gated submit overhead.
	RatePlain          float64 `json:"rate_plain"`
	RateQuorum         float64 `json:"rate_quorum"`
	QuorumOverheadFrac float64 `json:"quorum_overhead_frac"`

	// ReplSeqAtKill is the owner's durable cursor when killed, fully
	// acknowledged by the follower (the experiment waits for lag 0).
	ReplSeqAtKill uint64 `json:"repl_seq_at_kill"`
	// AckedLiveFlows is how many live (unfinished) flows the follower
	// had acknowledged records for at the kill; LostFlows counts those
	// missing from the survivor after promotion — must be 0.
	AckedLiveFlows int   `json:"acked_live_flows"`
	LostFlows      int   `json:"lost_flows"`
	PromotedFlows  int64 `json:"promoted_flows"`
	// TakeoverMs is kill → every acked flow present on the survivor.
	TakeoverMs float64 `json:"takeover_ms"`
	// SnapshotsShipped counts catch-up snapshots shipped to cold
	// followers during the takeover phase. Its peers carry history from
	// before the tap attached, so the first streamed frame is a gap and
	// the snapshot catch-up path must fire — gated at ≥1.
	SnapshotsShipped int64 `json:"snapshots_shipped"`
}

// E16ReplBench runs the replication experiment and returns the
// machine-readable report.
func E16ReplBench(s Scale) (*ReplBenchReport, error) {
	rep := &ReplBenchReport{
		Small:     s == Small,
		Followers: 1,
		Mode:      string(replica.ModeQuorum),
		// Workers are sized so several submissions share each group
		// commit: the quorum ack is one follower round trip per commit,
		// so its cost amortizes across the commit's batch exactly like
		// the fsync it rides on.
		Shards:         pick(s, 16, 32),
		Capacity:       pick(s, 16, 24),
		WorkersPerPeer: pick(s, 8, 12),
		FlowsPerPhase:  pick(s, 800, 1600),
		StepMs:         4,
	}

	// Submit overhead: bare and quorum clusters side by side, one
	// warm-up pass, then seven interleaved measured passes per mode.
	// Scheduler noise on small runners is one-sided — a disturbed pass
	// only ever runs *slower* — so the best pass per mode is the
	// cleanest observation of that mode's undisturbed rate, and the
	// reported overhead is the ratio of the two bests (the same logic
	// as benchstat taking the minimum of -count runs). Per-pass ratios
	// would inherit the noise of both phases in the pass. Phases are
	// sized so each runs for roughly half a second even at CI scale:
	// the quorum path wakes more goroutines per flow than the bare
	// path, which amplifies scheduler noise, and sub-second phases let
	// single-digit-millisecond disturbances masquerade as protocol
	// overhead.
	phase := func(replicated bool) (float64, error) {
		cl, err := newReplCluster(2, rep, 0, replicated, 0)
		if err != nil {
			return 0, err
		}
		rate, err := cl.runSubmitPhase(rep)
		cl.close()
		// Quiesce before the paired phase measures: reclaim the torn-down
		// cluster's heap and let deferred teardown I/O drain, so cleanup
		// cost lands between phases instead of inside the next one.
		runtime.GC()
		time.Sleep(50 * time.Millisecond)
		return rate, err
	}
	for pass := 0; pass < 8; pass++ {
		// Alternate which mode runs first so any residual ordering bias
		// cancels across passes instead of always taxing the same mode.
		order := []bool{false, true}
		if pass%2 == 1 {
			order[0], order[1] = order[1], order[0]
		}
		rates := map[bool]float64{}
		for _, replicated := range order {
			rate, err := phase(replicated)
			if err != nil {
				return nil, err
			}
			rates[replicated] = rate
		}
		if pass == 0 {
			continue // warm-up: page cache, lazy init, scheduler ramp
		}
		rep.RatePlain = math.Max(rep.RatePlain, rates[false])
		rep.RateQuorum = math.Max(rep.RateQuorum, rates[true])
	}
	if rep.RateQuorum > 0 {
		rep.QuorumOverheadFrac = rep.RatePlain/rep.RateQuorum - 1
	}

	// Takeover with disk loss.
	if err := runReplTakeover(s, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// replPeer is one member of an in-process replicated cluster: a sharded
// peer with a real flow-state store (and, when replicated, a sender/
// receiver pair wired through EnableReplication).
type replPeer struct {
	name   string
	reg    *obs.Registry
	engine *matrix.Engine
	peer   *wire.Peer
	store  *store.Store
	dir    string
}

type replCluster struct {
	lookup *wire.LookupServer
	peers  []*replPeer
}

func newReplCluster(n int, rep *ReplBenchReport, ttl time.Duration, replicated bool, history int) (*replCluster, error) {
	cl := &replCluster{lookup: wire.NewLookupServer()}
	cl.lookup.SetShards(rep.Shards)
	if ttl > 0 {
		cl.lookup.SetTTL(ttl)
	}
	lookupAddr, err := cl.lookup.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		p, err := newReplPeer(fmt.Sprintf("repl%c", 'A'+i), lookupAddr, rep, replicated, history)
		if err != nil {
			cl.close()
			return nil, err
		}
		cl.peers = append(cl.peers, p)
	}
	cl.settle()
	return cl, nil
}

func newReplPeer(name, lookupAddr string, rep *ReplBenchReport, replicated bool, history int) (*replPeer, error) {
	dir, err := os.MkdirTemp("", "e16-"+name+"-*")
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	g := dgms.New(dgms.Options{Obs: reg, Clock: sim.RealClock{}})
	if err := g.RegisterResource(vfs.New(name+"-disk", name, vfs.Disk, 0)); err != nil {
		return nil, err
	}
	if err := g.CreateCollectionAll(g.Admin(), "/grid"); err != nil {
		return nil, err
	}
	if err := g.Namespace().SetPermission("/grid", "*", namespace.PermWrite); err != nil {
		return nil, err
	}
	e := matrix.NewEngineConfig(g, matrix.Config{IDPrefix: name + ":", MaxParallel: 64})
	st, err := store.Open(dir+"/store", store.Options{Obs: reg})
	if err != nil {
		return nil, err
	}
	// History appended before the replication tap attaches: the durable
	// cursor advances past it, so the follower's first streamed frame
	// arrives as a gap and forces the snapshot catch-up path — the
	// late-attached-tap case every cold follower hits.
	for i := 0; i < history; i++ {
		id := fmt.Sprintf("%s:hist%d", name, i)
		if err := st.AppendBatch([]store.Record{
			{Type: store.TypeExecSnap, ID: id},
			{Type: store.TypeExecEnd, ID: id},
		}); err != nil {
			return nil, err
		}
	}
	e.SetStore(st)
	p := wire.NewPeerConfig(name, e, wire.ServerConfig{MaxInflight: rep.Capacity})
	p.EnableSharding(shard.NewManager(shard.Config{
		Self:   name,
		Shards: rep.Shards,
		Obs:    reg,
		Resident: func(id string) bool {
			_, ok := e.Execution(id)
			return ok
		},
	}))
	if replicated {
		// Binary block encoding: the hot-path codec halves the per-record
		// CPU of encode/ship/apply, and the per-block sniffing means it
		// composes with the owner's JSON store (mixed-codec replication).
		if err := p.EnableReplication(wire.ReplicationConfig{
			Followers: rep.Followers,
			Mode:      replica.AckMode(rep.Mode),
			Dir:       dir + "/replica",
			Binary:    true,
		}); err != nil {
			return nil, err
		}
	}
	if _, err := p.Start("127.0.0.1:0", lookupAddr); err != nil {
		return nil, err
	}
	return &replPeer{name: name, reg: reg, engine: e, peer: p, store: st, dir: dir}, nil
}

func (cl *replCluster) settle() {
	var names []string
	for _, p := range cl.peers {
		names = append(names, p.name)
	}
	for range [2]int{} {
		for _, p := range cl.peers {
			p.peer.RebalanceShards(names)
		}
	}
}

func (cl *replCluster) close() {
	for _, p := range cl.peers {
		p.peer.Close()
		_ = p.store.Close()
		_ = os.RemoveAll(p.dir)
	}
	cl.lookup.Close()
}

// runSubmitPhase drives FlowsPerPhase synchronous sleep flows, pinned
// local to the first peer so bare and replicated runs execute on the
// identical path — the only variable is the store tap's quorum wait.
func (cl *replCluster) runSubmitPhase(rep *ReplBenchReport) (float64, error) {
	sleep := time.Duration(rep.StepMs * float64(time.Millisecond))
	c, err := wire.Dial(cl.peers[0].peer.Addr())
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if _, err := c.Hello(); err != nil {
		return 0, err
	}
	var next, failed atomic.Int64
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < rep.WorkersPerPeer; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > int64(rep.FlowsPerPhase) {
					return
				}
				flow := dgl.NewFlow(fmt.Sprintf("job%d", i)).
					Step("op", dgl.Op(dgl.OpSleep, map[string]string{"duration": sleep.String()})).Flow()
				res, err := c.Submit(context.Background(),
					dgl.NewRequest(fmt.Sprintf("u%d", i%16), "", flow), wire.WithRoute(wire.RouteLocal))
				if err != nil || res.Err() != nil {
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(t0)
	if n := failed.Load(); n > 0 {
		return 0, fmt.Errorf("e16: %d of %d submissions failed", n, rep.FlowsPerPhase)
	}
	return float64(rep.FlowsPerPhase) / wall.Seconds(), nil
}

// runReplTakeover kills a replicated owner without drain, abandons its
// store, and measures promotion on the survivor.
func runReplTakeover(s Scale, rep *ReplBenchReport) error {
	ttl := time.Duration(pick(s, 300, 500)) * time.Millisecond
	cl, err := newReplCluster(2, rep, ttl, true, pick(s, 8, 24))
	if err != nil {
		return err
	}
	defer cl.close()
	a, b := cl.peers[0], cl.peers[1]

	// Live flows on B: long sleeps still running at the kill, pinned
	// local so B owns them. Synchronous accept + quorum mode means the
	// exec.start record is follower-acknowledged before the ack returns.
	cb, err := wire.Dial(b.peer.Addr())
	if err != nil {
		return err
	}
	if _, err := cb.Hello(); err != nil {
		cb.Close()
		return err
	}
	liveFlows := pick(s, 6, 16)
	for i := 0; i < liveFlows; i++ {
		flow := dgl.NewFlow(fmt.Sprintf("live%d", i)).
			Step("op", dgl.Op(dgl.OpSleep, map[string]string{"duration": "30s"})).Flow()
		res, err := cb.Submit(context.Background(), dgl.NewRequest("user", "", flow),
			wire.WithAsync(), wire.WithRoute(wire.RouteLocal))
		if err != nil || res.Err() != nil {
			cb.Close()
			return fmt.Errorf("e16: live flow: %v / %v", err, res.Err())
		}
	}
	// Snapshot so every live flow's state is in the durable stream, then
	// wait for the quiesced, fully-acknowledged state the zero-loss
	// invariant is defined over: all live flows durable on B, and the
	// follower's acked cursor at or past B's cursor as read AFTER the
	// live set — so every captured entry is covered by the ack.
	b.engine.SnapshotAll()
	deadline := time.Now().Add(10 * time.Second)
	var acked []store.Entry
	for {
		live := b.store.Live()
		seq := b.store.ReplSeq()
		if len(live) >= liveFlows && seq > 0 {
			if ri, err := cb.Repl(); err == nil && ri != nil &&
				len(ri.Followers) > 0 && ri.Followers[0].AckedSeq >= seq {
				acked = live
				rep.ReplSeqAtKill = seq
				break
			}
		}
		if time.Now().After(deadline) {
			cb.Close()
			return fmt.Errorf("e16: follower never caught up (live %d of %d, seq %d)", len(live), liveFlows, seq)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cb.Close()

	// Everything in the acknowledged state must exist on A after
	// promotion.
	rep.AckedLiveFlows = len(acked)

	// Kill B without drain; its store is never reopened (disk loss).
	b.peer.Server().Close()

	t0 := time.Now()
	present := func() int {
		n := 0
		live := make(map[string]bool)
		for _, ent := range a.store.Live() {
			live[ent.ID] = true
		}
		for _, ent := range acked {
			if _, ok := a.engine.Execution(ent.ID); ok || live[ent.ID] {
				n++
			}
		}
		return n
	}
	// The federation heartbeat would drive this; here it ticks inline
	// with the shrunken member set, exactly what TTL eviction yields.
	deadline = t0.Add(ttl + 10*time.Second)
	for present() < len(acked) {
		if time.Now().After(deadline) {
			break
		}
		a.peer.RebalanceShards([]string{a.name})
		time.Sleep(20 * time.Millisecond)
	}
	rep.TakeoverMs = float64(time.Since(t0)) / float64(time.Millisecond)
	rep.LostFlows = len(acked) - present()
	rep.PromotedFlows = a.reg.Counter("repl_promoted_flows_total", "source", b.name).Value()
	rep.SnapshotsShipped = b.reg.Counter("repl_snapshots_shipped_total").Value() +
		a.reg.Counter("repl_snapshots_shipped_total").Value()
	return nil
}
