package experiments

import (
	"encoding/xml"
	"fmt"
	"reflect"
	"time"

	"datagridflow/internal/dgl"
	"datagridflow/internal/matrix"
	"datagridflow/internal/wire"
)

// sampleFlow is the canonical document used by the schema experiments:
// it exercises every element of Figures 1 and 3 — nested flows, all five
// control patterns, variables, user-defined rules with beforeEntry and
// afterExit, steps with operations and fault policies.
func sampleFlow(steps int) dgl.Flow {
	ingest := dgl.NewFlow("ingest-stage").ForEachIn("file", "a.dat,b.dat,c.dat")
	for i := 0; i < steps; i++ {
		ingest.Step(fmt.Sprintf("ingest-%d", i), dgl.Op(dgl.OpNoop, map[string]string{
			"path": "/grid/scec/$file", "idx": fmt.Sprint(i),
		}))
	}
	fixity := dgl.NewFlow("fixity").Parallel().
		Step("verify-a", dgl.Op(dgl.OpVerify, map[string]string{"path": "/grid/a"})).
		StepWith(dgl.Step{
			Name: "verify-b", OnError: dgl.OnErrorRetry, Retries: 3,
			Operation: dgl.Op(dgl.OpVerify, map[string]string{"path": "/grid/b"}),
		})
	drain := dgl.NewFlow("drain").WhileLoop("$remaining > 0").
		Step("dec", dgl.Op(dgl.OpSetVariable, map[string]string{"name": "remaining", "expr": "$remaining - 1"}))
	route := dgl.NewFlow("route").SwitchOn("$tier").
		SubFlow(dgl.NewFlow("hot").Step("h", dgl.Op(dgl.OpNoop, nil))).
		SubFlow(dgl.NewFlow("default").Step("d", dgl.Op(dgl.OpNoop, nil)))
	return dgl.NewFlow("pipeline").
		Var("remaining", "3").
		Var("tier", "hot").
		OnEntry(dgl.Op(dgl.OpSetMeta, map[string]string{"path": "/grid", "attr": "state", "value": "running"})).
		OnExit(dgl.Op(dgl.OpSetMeta, map[string]string{"path": "/grid", "attr": "state", "value": "done"})).
		SubFlow(ingest).SubFlow(fixity).SubFlow(drain).SubFlow(route).Flow()
}

// E1FlowSchema reproduces Figure 1 (Structure of a Flow): the Flow
// schema, its XML rendering, lossless round-tripping, and the validator
// catching every malformed variant.
func E1FlowSchema(s Scale) (*Report, error) {
	r := &Report{
		ID: "E1", Title: "Figure 1 — Flow schema round-trip and validation",
		Header: []string{"document", "steps", "xml-bytes", "round-trip", "valid"},
	}
	for _, n := range []int{1, pick(s, 4, 16), pick(s, 16, 64)} {
		f := sampleFlow(n)
		data, err := dgl.Marshal(&f)
		if err != nil {
			return nil, err
		}
		var back dgl.Flow
		if err := xml.Unmarshal(data, &back); err != nil {
			return nil, err
		}
		lossless := reflect.DeepEqual(f, back)
		valid := dgl.ValidateFlow(&f, nil) == nil
		r.Row(fmt.Sprintf("pipeline/%d", n), fmt.Sprint(f.CountSteps()),
			fmt.Sprint(len(data)), fmt.Sprint(lossless), fmt.Sprint(valid))
		if !lossless || !valid {
			return nil, fmt.Errorf("E1: round trip or validation failed for %d steps", n)
		}
	}
	// The validation corpus: every mutation class the schema forbids.
	bad := 0
	mutations := []func(*dgl.Flow){
		func(f *dgl.Flow) { f.Logic.Control = "zigzag" },
		func(f *dgl.Flow) {
			f.Flows = append(f.Flows, dgl.Flow{Name: "x", Logic: dgl.FlowLogic{Control: dgl.Sequential}})
		},
		func(f *dgl.Flow) { f.Steps[0].Operation.Type = "teleport" },
		func(f *dgl.Flow) { f.Steps = append(f.Steps, f.Steps[0]) },
		func(f *dgl.Flow) { f.Variables = append(f.Variables, dgl.Variable{Name: "v"}, dgl.Variable{Name: "v"}) },
	}
	for _, mut := range mutations {
		f := dgl.NewFlow("probe").Step("s", dgl.Op(dgl.OpNoop, nil)).Flow()
		mut(&f)
		if dgl.ValidateFlow(&f, nil) != nil {
			bad++
		}
	}
	r.Note("validator rejected %d/%d malformed variants", bad, len(mutations))
	if bad != len(mutations) {
		return nil, fmt.Errorf("E1: validator missed a malformed variant")
	}
	return r, nil
}

// E2RequestSchema reproduces Figure 2 (DataGridRequest): document
// metadata, grid user / virtual organization, and the Flow vs
// FlowStatusQuery choice, over the wire format.
func E2RequestSchema(s Scale) (*Report, error) {
	r := &Report{
		ID: "E2", Title: "Figure 2 — DataGridRequest round-trip",
		Header: []string{"variant", "xml-bytes", "round-trip"},
	}
	flowReq := dgl.NewAsyncRequest("jonw", "SCEC", sampleFlow(pick(s, 4, 16)))
	flowReq.Metadata.Description = "SCEC ingestion pipeline"
	flowReq.Metadata.CreatedAt = "2005-08-01T00:00:00Z"
	statusReq := dgl.NewStatusRequest("jonw", "dgf-000001/pipeline/fixity", true)
	for _, tc := range []struct {
		name string
		req  *dgl.Request
	}{{"flow", flowReq}, {"statusQuery", statusReq}} {
		data, err := dgl.Marshal(tc.req)
		if err != nil {
			return nil, err
		}
		back, err := dgl.ParseRequest(data)
		if err != nil {
			return nil, err
		}
		ok := back.User == tc.req.User &&
			reflect.DeepEqual(back.Flow, tc.req.Flow) &&
			reflect.DeepEqual(back.StatusQuery, tc.req.StatusQuery)
		r.Row(tc.name, fmt.Sprint(len(data)), fmt.Sprint(ok))
		if !ok {
			return nil, fmt.Errorf("E2: %s round trip failed", tc.name)
		}
	}
	return r, nil
}

// E3ControlPatterns reproduces Figure 3 (flowlogic schema) as behaviour:
// each control pattern executes with its specified semantics, and the
// beforeEntry/afterExit rules fire around the flow.
func E3ControlPatterns(s Scale) (*Report, error) {
	g, e, err := newEngine()
	if err != nil {
		return nil, err
	}
	_ = g
	r := &Report{
		ID: "E3", Title: "Figure 3 — control patterns execute per spec",
		Header: []string{"pattern", "expectation", "observed", "ok"},
	}
	check := func(pattern, expectation, observed string, ok bool) error {
		r.Row(pattern, expectation, observed, fmt.Sprint(ok))
		if !ok {
			return fmt.Errorf("E3: %s failed (%s != %s)", pattern, observed, expectation)
		}
		return nil
	}
	// sequential: order preserved.
	seq := dgl.NewFlow("seq").Var("log", "").
		Step("a", dgl.Op(dgl.OpSetVariable, map[string]string{"name": "log", "expr": "$log + 'a'"})).
		Step("b", dgl.Op(dgl.OpSetVariable, map[string]string{"name": "log", "expr": "$log + 'b'"})).
		Step("c", dgl.Op(dgl.OpSetVariable, map[string]string{"name": "log", "expr": "$log + 'c'"})).Flow()
	ex, err := e.Run("user", seq)
	if err != nil {
		return nil, err
	}
	if err := ex.Wait(); err != nil {
		return nil, err
	}
	if err := check("sequential", "abc", ex.Vars()["log"], ex.Vars()["log"] == "abc"); err != nil {
		return nil, err
	}
	// parallel: all children complete.
	n := pick(s, 8, 64)
	par := dgl.NewFlow("par").Parallel()
	for i := 0; i < n; i++ {
		par.Step(fmt.Sprintf("p%d", i), dgl.Op(dgl.OpNoop, nil))
	}
	ex, err = e.Run("user", par.Flow())
	if err != nil {
		return nil, err
	}
	if err := ex.Wait(); err != nil {
		return nil, err
	}
	st := ex.Status(true)
	done := st.CountByState()[string(matrix.StateSucceeded)]
	if err := check("parallel", fmt.Sprint(n+1), fmt.Sprint(done), done == n+1); err != nil {
		return nil, err
	}
	// while: loop count.
	k := pick(s, 5, 50)
	wl := dgl.NewFlow("wl").Var("n", "0").
		SubFlow(dgl.NewFlow("body").WhileLoop(fmt.Sprintf("$n < %d", k)).
			Step("inc", dgl.Op(dgl.OpSetVariable, map[string]string{"name": "n", "expr": "$n + 1"}))).Flow()
	ex, err = e.Run("user", wl)
	if err != nil {
		return nil, err
	}
	if err := ex.Wait(); err != nil {
		return nil, err
	}
	if err := check("while", fmt.Sprint(k), ex.Vars()["n"], ex.Vars()["n"] == fmt.Sprint(k)); err != nil {
		return nil, err
	}
	// forEach: iteration binding.
	fe := dgl.NewFlow("fe").Var("seen", "").
		SubFlow(dgl.NewFlow("body").ForEachIn("x", "1,2,3").
			Step("acc", dgl.Op(dgl.OpSetVariable, map[string]string{"name": "seen", "expr": "$seen + $x"}))).Flow()
	ex, err = e.Run("user", fe)
	if err != nil {
		return nil, err
	}
	if err := ex.Wait(); err != nil {
		return nil, err
	}
	// String concatenation of numeric strings: "1"+"2" adds numerically
	// in this language, so expect 6.
	if err := check("forEach", "6", ex.Vars()["seen"], ex.Vars()["seen"] == "6"); err != nil {
		return nil, err
	}
	// switch: arm selection + skipped siblings.
	sw := dgl.NewFlow("sw").Var("tier", "cold").Var("chose", "").
		SubFlow(dgl.NewFlow("sel").SwitchOn("$tier").
			SubFlow(dgl.NewFlow("hot").Step("h", dgl.Op(dgl.OpSetVariable, map[string]string{"name": "chose", "value": "hot"}))).
			SubFlow(dgl.NewFlow("cold").Step("c", dgl.Op(dgl.OpSetVariable, map[string]string{"name": "chose", "value": "cold"})))).Flow()
	ex, err = e.Run("user", sw)
	if err != nil {
		return nil, err
	}
	if err := ex.Wait(); err != nil {
		return nil, err
	}
	if err := check("switch", "cold", ex.Vars()["chose"], ex.Vars()["chose"] == "cold"); err != nil {
		return nil, err
	}
	// rules: beforeEntry then afterExit.
	rf := dgl.NewFlow("ruled").Var("log", "").
		OnEntry(dgl.Op(dgl.OpSetVariable, map[string]string{"name": "log", "value": "in"})).
		OnExit(dgl.Op(dgl.OpSetVariable, map[string]string{"name": "log", "expr": "$log + '-out'"})).
		Step("work", dgl.Op(dgl.OpNoop, nil)).Flow()
	ex, err = e.Run("user", rf)
	if err != nil {
		return nil, err
	}
	if err := ex.Wait(); err != nil {
		return nil, err
	}
	if err := check("rules", "in-out", ex.Vars()["log"], ex.Vars()["log"] == "in-out"); err != nil {
		return nil, err
	}
	return r, nil
}

// E4AsyncStatus reproduces Figure 4 (DataGridResponse): synchronous
// responses carry the status tree, asynchronous ones a request
// acknowledgement whose id resolves to status at every granularity —
// including over the wire protocol.
func E4AsyncStatus(s Scale) (*Report, error) {
	g, e, err := newEngine()
	if err != nil {
		return nil, err
	}
	// The sample pipeline's fixity stage verifies these objects.
	for _, p := range []string{"/grid/a", "/grid/b"} {
		if err := g.Ingest("user", p, 1024, nil, "sdsc-disk"); err != nil {
			return nil, err
		}
	}
	r := &Report{
		ID: "E4", Title: "Figure 4 — sync/async responses and status granularity",
		Header: []string{"path", "mode", "result", "ok"},
	}
	flow := sampleFlow(pick(s, 3, 10))
	// Synchronous: final tree in the response.
	resp, err := e.Submit(dgl.NewRequest("user", "SCEC", flow))
	if err != nil {
		return nil, err
	}
	okSync := resp.Status != nil && resp.Status.State == string(matrix.StateSucceeded)
	r.Row("in-process", "sync", "status tree", fmt.Sprint(okSync))
	// Asynchronous: ack then poll.
	resp, err = e.Submit(dgl.NewAsyncRequest("user", "SCEC", flow))
	if err != nil {
		return nil, err
	}
	okAck := resp.Ack != nil && resp.Ack.Valid
	r.Row("in-process", "async", "ack id "+resp.Ack.ID, fmt.Sprint(okAck))
	exec, _ := e.Execution(resp.Ack.ID)
	if err := exec.Wait(); err != nil {
		return nil, err
	}
	// Granular status: root, mid-flow, leaf step.
	granularOK := true
	for _, id := range []string{
		resp.Ack.ID,
		resp.Ack.ID + "/pipeline/fixity",
		resp.Ack.ID + "/pipeline/fixity/verify-a",
	} {
		st, err := e.Status(id, false)
		if err != nil || st.State == "" {
			granularOK = false
		}
	}
	r.Row("in-process", "status query", "root/flow/step ids resolve", fmt.Sprint(granularOK))
	// Over the wire.
	srv := wire.NewServer(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	client, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer client.Close()
	t0 := time.Now()
	id, err := client.SubmitAsync("user", flow)
	if err != nil {
		return nil, err
	}
	ackLatency := time.Since(t0)
	exec2, _ := e.Execution(id)
	if err := exec2.Wait(); err != nil {
		return nil, err
	}
	st, err := client.Status("user", id, true)
	wireOK := err == nil && st.State == string(matrix.StateSucceeded)
	r.Row("wire", "async+status", fmt.Sprintf("ack in %v", ackLatency.Round(time.Microsecond)), fmt.Sprint(wireOK))
	if !okSync || !okAck || !granularOK || !wireOK {
		return nil, fmt.Errorf("E4: a response mode failed")
	}
	return r, nil
}
