package experiments

import (
	"fmt"

	"datagridflow/internal/loadgen"
)

// E18Vdata quantifies the virtual-data derivation catalog
// (docs/VDATA.md):
//
//   - Warm-pass elision: a set of distinct pure transformations runs
//     cold against a durable catalog, then again. The warm pass must
//     hit for (nearly) every step — gated at ≥0.9 — and finish a
//     large multiple faster, because a hit costs a catalog read
//     instead of the transformation's compute.
//   - Durability: the catalog is closed and reopened; every entry
//     must replay (memoization survives restart).
//   - Cross-peer reuse: peerB runs the set peerA computed, each miss
//     resolving the holder through the lookup registry and grafting
//     the entry over wire 1.8's vdata verb — reuse must beat cold
//     execution (benchgate, docs/BENCH.md).
func E18Vdata(s Scale) (*Report, error) {
	rep, err := E18VdataBench(s)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID: "E18", Title: "virtual-data catalog — warm elision & cross-peer reuse",
		Header: []string{"scenario", "metric", "value"},
	}
	r.Row("elision", "cold pass", fmt.Sprintf("%.0f ms (%d flows)", rep.ColdMs, rep.Flows))
	r.Row("elision", "warm pass", fmt.Sprintf("%.0f ms (%.1fx)", rep.WarmMs, rep.WarmSpeedup))
	r.Row("elision", "hit rate", fmt.Sprintf("%.2f", rep.HitRate))
	r.Row("durability", "entries replayed", fmt.Sprintf("%d / %d", rep.ReplayedEntries, rep.Entries))
	r.Row("cross-peer", "cold compute", fmt.Sprintf("%.0f ms", rep.RemoteColdMs))
	r.Row("cross-peer", "fleet reuse", fmt.Sprintf("%.0f ms (%.1fx)", rep.RemoteMs, rep.RemoteSpeedup))
	r.Row("cross-peer", "remote hits", fmt.Sprintf("%d", rep.RemoteHits))
	r.Note("workload: %d distinct pure transformations of %s simulated compute each, durable catalog, two-peer fleet on one lookup registry",
		rep.Flows, rep.StepLatency)
	r.Note("gate: hit rate >= 0.90, warm speedup >= 2.0, replayed == entries, remote speedup >= 1.2 with every reuse counted remotely (internal/infra/benchgate)")
	return r, nil
}

// E18VdataBench runs the virtual-data experiment and returns the
// machine-readable report `dgfbench -vdata` writes as BENCH_vdata.json.
func E18VdataBench(s Scale) (*loadgen.VdataReport, error) {
	opts := loadgen.VdataDefaults()
	if s == Small {
		opts = loadgen.VdataSmallDefaults()
	}
	return loadgen.RunVdata(opts)
}
