package expr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokNumber
	tokString
	tokIdent  // bare identifier or keyword (true/false/null) or function name
	tokDollar // $name variable reference
	tokLParen
	tokRParen
	tokComma
	tokOp // one of the operator strings below
)

type token struct {
	kind tokenKind
	text string  // raw text (operator, identifier, variable name)
	num  float64 // valid when kind == tokNumber
	str  string  // decoded value when kind == tokString
	pos  int     // byte offset in the source, for error messages
}

// SyntaxError describes a lexing or parsing failure with its position.
type SyntaxError struct {
	Src string // the expression source
	Pos int    // byte offset of the failure
	Msg string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("expr: %s at offset %d in %q", e.Msg, e.Pos, e.Src)
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return &SyntaxError{Src: l.src, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		return l.lexNumber()
	case c == '\'' || c == '"':
		return l.lexString(c)
	case c == '$':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '{' {
			end := strings.IndexByte(l.src[l.pos:], '}')
			if end < 0 {
				return token{}, l.errf(start, "unterminated ${...} variable")
			}
			name := l.src[l.pos+1 : l.pos+end]
			l.pos += end + 1
			if name == "" {
				return token{}, l.errf(start, "empty ${} variable name")
			}
			return token{kind: tokDollar, text: name, pos: start}, nil
		}
		nameStart := l.pos
		for l.pos < len(l.src) && isIdentChar(rune(l.src[l.pos])) {
			l.pos++
		}
		if l.pos == nameStart {
			return token{}, l.errf(start, "expected variable name after '$'")
		}
		return token{kind: tokDollar, text: l.src[nameStart:l.pos], pos: start}, nil
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case isIdentStart(rune(c)):
		return l.lexIdent()
	default:
		return l.lexOp()
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentChar(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			goto done
		}
	}
done:
	text := l.src[start:l.pos]
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token{}, l.errf(start, "bad number %q", text)
	}
	return token{kind: tokNumber, text: text, num: f, pos: start}, nil
}

func (l *lexer) lexString(quote byte) (token, error) {
	start := l.pos
	l.pos++ // consume opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return token{kind: tokString, str: sb.String(), pos: start}, nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return token{}, l.errf(start, "unterminated escape in string")
			}
			e := l.src[l.pos]
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '\\', '\'', '"':
				sb.WriteByte(e)
			default:
				return token{}, l.errf(l.pos, "unknown escape \\%c", e)
			}
			l.pos++
		default:
			r, size := utf8.DecodeRuneInString(l.src[l.pos:])
			sb.WriteRune(r)
			l.pos += size
		}
	}
	return token{}, l.errf(start, "unterminated string")
}

func (l *lexer) lexIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && isIdentChar(rune(l.src[l.pos])) {
		l.pos++
	}
	return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
}

var twoCharOps = []string{"==", "!=", "<=", ">=", "&&", "||"}

func (l *lexer) lexOp() (token, error) {
	start := l.pos
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		for _, op := range twoCharOps {
			if two == op {
				l.pos += 2
				return token{kind: tokOp, text: op, pos: start}, nil
			}
		}
	}
	switch c := l.src[l.pos]; c {
	case '<', '>', '!', '+', '-', '*', '/', '%', '=':
		l.pos++
		text := string(c)
		if text == "=" {
			// Accept single '=' as equality, matching how workflow authors
			// commonly write conditions ("$state = 'done'").
			text = "=="
		}
		return token{kind: tokOp, text: text, pos: start}, nil
	default:
		return token{}, l.errf(start, "unexpected character %q", string(l.src[l.pos]))
	}
}
