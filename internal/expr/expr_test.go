package expr

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustEval(t *testing.T, src string, env Env) Value {
	t.Helper()
	v, err := EvalString(src, env)
	if err != nil {
		t.Fatalf("EvalString(%q): %v", src, err)
	}
	return v
}

func TestLiterals(t *testing.T) {
	tests := []struct {
		src  string
		want Value
	}{
		{"42", Number(42)},
		{"3.5", Number(3.5)},
		{"1e3", Number(1000)},
		{"'hello'", String("hello")},
		{`"world"`, String("world")},
		{"true", Bool(true)},
		{"false", Bool(false)},
		{"null", Null},
		{"'it\\'s'", String("it's")},
		{"'a\\nb'", String("a\nb")},
	}
	for _, tt := range tests {
		got := mustEval(t, tt.src, nil)
		if !got.Equal(tt.want) || got.Kind() != tt.want.Kind() {
			t.Errorf("%q = %#v, want %#v", tt.src, got, tt.want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		src  string
		want float64
	}{
		{"1+2", 3},
		{"2*3+4", 10},
		{"2+3*4", 14},
		{"(2+3)*4", 20},
		{"10/4", 2.5},
		{"10%3", 1},
		{"-5+2", -3},
		{"--5", 5},
		{"2*-3", -6},
	}
	for _, tt := range tests {
		got := mustEval(t, tt.src, nil)
		n, ok := got.AsNumber()
		if !ok || n != tt.want {
			t.Errorf("%q = %#v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	env := MapEnv{"size": Number(1024), "name": String("model.dat"), "flag": Bool(true)}
	tests := []struct {
		src  string
		want bool
	}{
		{"$size > 1000", true},
		{"$size >= 1024", true},
		{"$size < 1024", false},
		{"$size == 1024", true},
		{"$size != 1024", false},
		{"$name == 'model.dat'", true},
		{"$name = 'model.dat'", true}, // single '=' alias
		{"$flag && $size > 0", true},
		{"$flag && $size > 9999", false},
		{"!$flag || $size == 1024", true},
		{"$missing == null", true},
		{"$missing != null", false},
		{"'abc' < 'abd'", true},
		{"'10' == 10", true},  // numeric-string coercion
		{"'10' < '9'", false}, // both numeric strings → numeric order
	}
	for _, tt := range tests {
		got := mustEval(t, tt.src, env)
		if got.AsBool() != tt.want {
			t.Errorf("%q = %#v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// Division by zero on the right side must not be reached.
	if v := mustEval(t, "false && 1/0 > 0", nil); v.AsBool() {
		t.Errorf("short-circuit && failed")
	}
	if v := mustEval(t, "true || 1/0 > 0", nil); !v.AsBool() {
		t.Errorf("short-circuit || failed")
	}
}

func TestBuiltins(t *testing.T) {
	env := MapEnv{"path": String("/grid/scec/run7/wave.dat")}
	tests := []struct {
		src  string
		want Value
	}{
		{"len('abcd')", Number(4)},
		{"contains($path, 'scec')", Bool(true)},
		{"startsWith($path, '/grid')", Bool(true)},
		{"endsWith($path, '.dat')", Bool(true)},
		{"ext($path)", String(".dat")},
		{"base($path)", String("wave.dat")},
		{"ext('noext')", String("")},
		{"ext('/a.b/file')", String("")},
		{"lower('AbC')", String("abc")},
		{"upper('AbC')", String("ABC")},
		{"trim('  x ')", String("x")},
		{"num('42')+1", Number(43)},
		{"str(42)", String("42")},
		{"min(3,1,2)", Number(1)},
		{"max(3,1,2)", Number(3)},
		{"abs(-2)", Number(2)},
		{"floor(2.7)", Number(2)},
		{"ceil(2.1)", Number(3)},
		{"coalesce($missing, 'dflt')", String("dflt")},
		{"coalesce($path, 'dflt')", String("/grid/scec/run7/wave.dat")},
	}
	for _, tt := range tests {
		got := mustEval(t, tt.src, env)
		if !got.Equal(tt.want) {
			t.Errorf("%q = %#v, want %#v", tt.src, got, tt.want)
		}
	}
}

func TestStringConcat(t *testing.T) {
	env := MapEnv{"dir": String("/grid"), "n": Number(7)}
	v := mustEval(t, "$dir + '/run' + $n", env)
	if got := v.AsString(); got != "/grid/run7" {
		t.Errorf("concat = %q, want /grid/run7", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "   ", "1 +", "(1", "1)", "'unterminated", "${unclosed",
		"$", "nosuchfn(1)", "len()", "len(1,2)", "1 @ 2", "'bad\\q'",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	bad := []string{"1/0", "1%0", "-'abc'", "'a' - 'b'", "null < 1", "num('zz')"}
	for _, src := range bad {
		if _, err := EvalString(src, nil); err == nil {
			t.Errorf("EvalString(%q) succeeded, want error", src)
		}
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse("1 + + 2")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("want *SyntaxError, got %T: %v", err, err)
	}
	if se.Src != "1 + + 2" || !strings.Contains(se.Error(), "offset") {
		t.Errorf("unexpected error content: %v", se)
	}
}

func TestInterpolate(t *testing.T) {
	env := MapEnv{"run": String("7"), "site": String("sdsc"), "n": Number(3)}
	tests := []struct {
		in, want string
	}{
		{"plain", "plain"},
		{"/grid/$site/run$run", "/grid/sdsc/run7"},
		{"/grid/${site}x/run${run}", "/grid/sdscx/run7"},
		{"$missing-end", "-end"},
		{"$$literal", "$literal"},
		{"cost=$n", "cost=3"},
		{"trailing $", "trailing $"},
		{"$-", "$-"},
	}
	for _, tt := range tests {
		got, err := Interpolate(tt.in, env)
		if err != nil {
			t.Fatalf("Interpolate(%q): %v", tt.in, err)
		}
		if got != tt.want {
			t.Errorf("Interpolate(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
	if _, err := Interpolate("${unclosed", env); err == nil {
		t.Errorf("Interpolate with unterminated ${ should fail")
	}
}

func TestInterpolateAll(t *testing.T) {
	env := MapEnv{"f": String("a.dat")}
	out, err := InterpolateAll(map[string]string{"src": "/in/$f", "dst": "/out/$f"}, env)
	if err != nil {
		t.Fatal(err)
	}
	if out["src"] != "/in/a.dat" || out["dst"] != "/out/a.dat" {
		t.Errorf("InterpolateAll = %v", out)
	}
	if m, err := InterpolateAll(nil, env); err != nil || m != nil {
		t.Errorf("InterpolateAll(nil) = %v, %v", m, err)
	}
}

func TestVars(t *testing.T) {
	e := MustParse("$a > 1 && contains($b, 'x') || !($c + $a > 2)")
	vars := e.Vars()
	want := map[string]bool{"a": true, "b": true, "c": true}
	if len(vars) != len(want) {
		t.Fatalf("Vars() = %v, want a,b,c", vars)
	}
	for _, v := range vars {
		if !want[v] {
			t.Errorf("unexpected var %q", v)
		}
	}
}

func TestChainEnv(t *testing.T) {
	outer := MapEnv{"x": Number(1), "y": Number(2)}
	inner := MapEnv{"x": Number(10)}
	chain := ChainEnv{inner, outer}
	if v, _ := chain.Lookup("x"); !v.Equal(Number(10)) {
		t.Errorf("inner scope should shadow outer")
	}
	if v, _ := chain.Lookup("y"); !v.Equal(Number(2)) {
		t.Errorf("outer lookup failed")
	}
	if _, ok := chain.Lookup("z"); ok {
		t.Errorf("z should be unbound")
	}
	var nilChain ChainEnv = []Env{nil, outer}
	if v, ok := nilChain.Lookup("y"); !ok || !v.Equal(Number(2)) {
		t.Errorf("nil members should be skipped")
	}
}

func TestValueConversions(t *testing.T) {
	if Number(3).AsString() != "3" {
		t.Errorf("integral number should print without decimal point")
	}
	if Number(3.25).AsString() != "3.25" {
		t.Errorf("fractional number formatting")
	}
	if !String("7").Equal(Number(7)) {
		t.Errorf("numeric string equality")
	}
	if Bool(true).AsString() != "true" || Bool(false).AsString() != "false" {
		t.Errorf("bool string form")
	}
	if n, ok := Bool(true).AsNumber(); !ok || n != 1 {
		t.Errorf("bool→number")
	}
	if Null.AsBool() || !Null.IsNull() {
		t.Errorf("null truthiness")
	}
	if String("false").AsBool() || String("0").AsBool() || !String("yes").AsBool() {
		t.Errorf("string truthiness")
	}
	if Kind(99).String() == "" {
		t.Errorf("unknown kind should still print")
	}
}

// Property: Equal is reflexive and symmetric over arbitrary values.
func TestQuickEqualSymmetric(t *testing.T) {
	f := func(a, b float64, s1, s2 string, pick int) bool {
		vals := []Value{Number(a), Number(b), String(s1), String(s2), Bool(pick%2 == 0), Null}
		x := vals[abs(pick)%len(vals)]
		y := vals[abs(pick*7+1)%len(vals)]
		return x.Equal(x) && (x.Equal(y) == y.Equal(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric for comparable values.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		x, y := Number(a), Number(b)
		c1, err1 := x.Compare(y)
		c2, err2 := y.Compare(x)
		if err1 != nil || err2 != nil {
			return false
		}
		return c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Interpolate with no '$' is the identity.
func TestQuickInterpolateIdentity(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsRune(s, '$') {
			return true // skip; covered by table tests
		}
		out, err := Interpolate(s, nil)
		return err == nil && out == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: parsing a formatted number literal evaluates to that number.
func TestQuickNumberRoundTrip(t *testing.T) {
	f := func(n int32) bool {
		v, err := EvalString(Int(int64(n)).AsString(), nil)
		if err != nil {
			return false
		}
		got, ok := v.AsNumber()
		return ok && got == float64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MustParse on bad input should panic")
		}
	}()
	MustParse("((")
}

func TestExprSrc(t *testing.T) {
	e := MustParse("$a > 1")
	if e.Src() != "$a > 1" || e.String() != "$a > 1" {
		t.Errorf("Src/String should return original source")
	}
}

func BenchmarkEvalCondition(b *testing.B) {
	e := MustParse("$size > 1024 && endsWith($name, '.dat') || $retries < 3")
	env := MapEnv{"size": Number(2048), "name": String("wave.dat"), "retries": Number(1)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Eval(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpolate(b *testing.B) {
	env := MapEnv{"site": String("sdsc"), "run": Number(7)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Interpolate("/grid/$site/run${run}/out.dat", env); err != nil {
			b.Fatal(err)
		}
	}
}
