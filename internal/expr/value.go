// Package expr implements the small expression language used throughout
// the Data Grid Language (DGL): trigger conditions (tCondition), while-loop
// and switch-case guards, and $variable interpolation inside step
// parameters.
//
// The language is deliberately simple — the paper describes tCondition as
// "usually [a] simple string that is evaluated" with support for DGL
// variables — but it is implemented as a real lexer/parser/evaluator so
// that conditions compose: comparisons, boolean connectives, arithmetic,
// string functions and variable references all work uniformly.
//
// Grammar (EBNF, precedence low→high):
//
//	expr     = or ;
//	or       = and { "||" and } ;
//	and      = not { "&&" not } ;
//	not      = "!" not | cmp ;
//	cmp      = sum [ ("=="|"!="|"<"|"<="|">"|">=") sum ] ;
//	sum      = term { ("+"|"-") term } ;
//	term     = unary { ("*"|"/"|"%") unary } ;
//	unary    = "-" unary | primary ;
//	primary  = NUMBER | STRING | "true" | "false" | "null"
//	         | IDENT [ "(" args ")" ] | "$" IDENT | "(" expr ")" ;
//
// Values are dynamically typed: null, bool, number (float64) or string.
package expr

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic types a Value can hold.
type Kind int

// The possible kinds of a Value.
const (
	KindNull Kind = iota
	KindBool
	KindNumber
	KindString
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Value is a dynamically typed value produced by evaluating an expression
// or stored in a DGL variable scope.
type Value struct {
	kind Kind
	b    bool
	n    float64
	s    string
}

// Null is the null value.
var Null = Value{kind: KindNull}

// Bool returns a boolean Value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Number returns a numeric Value.
func Number(n float64) Value { return Value{kind: KindNumber, n: n} }

// Int returns a numeric Value from an integer.
func Int(n int64) Value { return Value{kind: KindNumber, n: float64(n)} }

// String returns a string Value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Kind reports the dynamic type of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool converts the value to a boolean using truthiness rules:
// null→false, bool→itself, number→ ≠0, string→non-empty and not "false"/"0".
func (v Value) AsBool() bool {
	switch v.kind {
	case KindBool:
		return v.b
	case KindNumber:
		return v.n != 0
	case KindString:
		return v.s != "" && v.s != "false" && v.s != "0"
	default:
		return false
	}
}

// AsNumber converts the value to a float64. Strings are parsed; booleans
// map to 0/1; null is 0. The second result reports whether the conversion
// was exact (a numeric string, a number, a bool, or null).
func (v Value) AsNumber() (float64, bool) {
	switch v.kind {
	case KindNumber:
		return v.n, true
	case KindBool:
		if v.b {
			return 1, true
		}
		return 0, true
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		return f, err == nil
	default:
		return 0, true
	}
}

// AsString renders the value as a string. Numbers print without a trailing
// ".0" when integral so that interpolated file names stay clean.
func (v Value) AsString() string {
	switch v.kind {
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	case KindNumber:
		if v.n == math.Trunc(v.n) && math.Abs(v.n) < 1e15 {
			return strconv.FormatInt(int64(v.n), 10)
		}
		return strconv.FormatFloat(v.n, 'g', -1, 64)
	case KindString:
		return v.s
	default:
		return ""
	}
}

// Equal reports deep equality with numeric coercion: a numeric string
// compares equal to the number it denotes, mirroring how DGL variables
// (which are stored as strings in documents) compare against literals.
func (v Value) Equal(o Value) bool {
	if v.kind == o.kind {
		switch v.kind {
		case KindNull:
			return true
		case KindBool:
			return v.b == o.b
		case KindNumber:
			return v.n == o.n
		default:
			return v.s == o.s
		}
	}
	// Cross-kind: try numeric comparison when either side is a number.
	if v.kind == KindNumber || o.kind == KindNumber {
		a, okA := v.AsNumber()
		b, okB := o.AsNumber()
		if okA && okB {
			return a == b
		}
	}
	if v.kind == KindNull || o.kind == KindNull {
		return false
	}
	return v.AsString() == o.AsString()
}

// Compare orders two values: -1, 0 or +1. Numbers (and numeric strings)
// compare numerically; otherwise lexical string order applies. The error
// is non-nil when the values are incomparable (e.g. null).
func (v Value) Compare(o Value) (int, error) {
	if v.kind == KindNull || o.kind == KindNull {
		return 0, fmt.Errorf("expr: cannot order %s against %s", v.kind, o.kind)
	}
	a, okA := v.AsNumber()
	b, okB := o.AsNumber()
	if okA && okB {
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	}
	return strings.Compare(v.AsString(), o.AsString()), nil
}

// GoString implements fmt.GoStringer for debugging.
func (v Value) GoString() string {
	switch v.kind {
	case KindString:
		return strconv.Quote(v.s)
	default:
		return v.AsString()
	}
}

// Env supplies variable bindings to Eval. Lookup returns the value bound
// to name and whether the binding exists.
type Env interface {
	Lookup(name string) (Value, bool)
}

// MapEnv is an Env backed by a map; nil works as an empty environment.
type MapEnv map[string]Value

// Lookup implements Env.
func (m MapEnv) Lookup(name string) (Value, bool) {
	v, ok := m[name]
	return v, ok
}

// ChainEnv looks up a name in each environment in turn, enabling the
// nested variable scopes DGL flows require (inner flow shadows outer).
type ChainEnv []Env

// Lookup implements Env.
func (c ChainEnv) Lookup(name string) (Value, bool) {
	for _, e := range c {
		if e == nil {
			continue
		}
		if v, ok := e.Lookup(name); ok {
			return v, true
		}
	}
	return Null, false
}
