package expr

import (
	"fmt"
	"strings"
)

// Interpolate substitutes $name and ${name} references in s with the
// string form of their bound values. Unbound variables substitute to the
// empty string. "$$" escapes a literal dollar sign.
//
// This is how DGL step parameters reference flow variables, e.g.
// "/grid/scec/${run}/output.dat".
func Interpolate(s string, env Env) (string, error) {
	if !strings.ContainsRune(s, '$') {
		return s, nil
	}
	if env == nil {
		env = MapEnv(nil)
	}
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '$' {
			sb.WriteByte(c)
			i++
			continue
		}
		// c == '$'
		if i+1 >= len(s) {
			sb.WriteByte('$')
			break
		}
		next := s[i+1]
		switch {
		case next == '$':
			sb.WriteByte('$')
			i += 2
		case next == '{':
			end := strings.IndexByte(s[i+2:], '}')
			if end < 0 {
				return "", fmt.Errorf("expr: unterminated ${...} in %q", s)
			}
			name := s[i+2 : i+2+end]
			if name == "" {
				return "", fmt.Errorf("expr: empty ${} in %q", s)
			}
			if v, ok := env.Lookup(name); ok {
				sb.WriteString(v.AsString())
			}
			i += 2 + end + 1
		case isIdentStart(rune(next)):
			j := i + 1
			for j < len(s) && isIdentChar(rune(s[j])) {
				j++
			}
			name := s[i+1 : j]
			if v, ok := env.Lookup(name); ok {
				sb.WriteString(v.AsString())
			}
			i = j
		default:
			sb.WriteByte('$')
			i++
		}
	}
	return sb.String(), nil
}

// InterpolateAll applies Interpolate to every value of the map, returning
// a new map. It is used to resolve a step's parameter block against the
// current variable scope just before execution (the "late binding" the
// paper calls for).
func InterpolateAll(params map[string]string, env Env) (map[string]string, error) {
	if len(params) == 0 {
		return nil, nil
	}
	out := make(map[string]string, len(params))
	for k, v := range params {
		iv, err := Interpolate(v, env)
		if err != nil {
			return nil, fmt.Errorf("parameter %q: %w", k, err)
		}
		out[k] = iv
	}
	return out, nil
}

// Vars returns the set of variable names referenced by the expression, in
// no particular order. Validation uses it to flag conditions that mention
// variables a flow never declares.
func (e *Expr) Vars() []string {
	seen := map[string]bool{}
	var walk func(n node)
	walk = func(n node) {
		switch t := n.(type) {
		case *varNode:
			seen[t.name] = true
		case *notNode:
			walk(t.inner)
		case *negNode:
			walk(t.inner)
		case *logicalNode:
			walk(t.left)
			walk(t.right)
		case *cmpNode:
			walk(t.left)
			walk(t.right)
		case *arithNode:
			walk(t.left)
			walk(t.right)
		case *callNode:
			for _, a := range t.args {
				walk(a)
			}
		}
	}
	walk(e.root)
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	return out
}
