package expr

import "fmt"

// Expr is a parsed expression ready for repeated evaluation. Parsing once
// and evaluating many times matters for while-loops over large collections.
type Expr struct {
	src  string
	root node
}

// Src returns the original source text of the expression.
func (e *Expr) Src() string { return e.src }

// String returns the original source text.
func (e *Expr) String() string { return e.src }

type node interface {
	eval(env Env) (Value, error)
}

// Parse compiles src into an Expr. An empty (or all-whitespace) source is
// an error; callers that treat "no condition" as "true" must check first.
func Parse(src string) (*Expr, error) {
	p := &parser{lex: lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind == tokEOF {
		return nil, &SyntaxError{Src: src, Pos: 0, Msg: "empty expression"}
	}
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errHere("unexpected trailing %q", p.tok.text)
	}
	return &Expr{src: src, root: root}, nil
}

// MustParse is Parse that panics on error; intended for tests and
// package-level constants.
func MustParse(src string) *Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

// Eval evaluates the expression against env. A nil env means no variables
// are bound; referencing an unbound variable yields null rather than an
// error, which lets conditions like "$retries == null" probe for bindings.
func (e *Expr) Eval(env Env) (Value, error) {
	if env == nil {
		env = MapEnv(nil)
	}
	return e.root.eval(env)
}

// EvalBool evaluates the expression and coerces the result to a boolean.
func (e *Expr) EvalBool(env Env) (bool, error) {
	v, err := e.Eval(env)
	if err != nil {
		return false, err
	}
	return v.AsBool(), nil
}

type parser struct {
	lex lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errHere(format string, args ...any) error {
	return &SyntaxError{Src: p.lex.src, Pos: p.tok.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parseOr() (node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && p.tok.text == "||" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &logicalNode{op: "||", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (node, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && p.tok.text == "&&" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &logicalNode{op: "&&", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (node, error) {
	if p.tok.kind == tokOp && p.tok.text == "!" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &notNode{inner: inner}, nil
	}
	return p.parseCmp()
}

func isCmpOp(s string) bool {
	switch s {
	case "==", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *parser) parseCmp() (node, error) {
	left, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokOp && isCmpOp(p.tok.text) {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		return &cmpNode{op: op, left: left, right: right}, nil
	}
	return left, nil
}

func (p *parser) parseSum() (node, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "+" || p.tok.text == "-") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = &arithNode{op: op, left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseTerm() (node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "*" || p.tok.text == "/" || p.tok.text == "%") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &arithNode{op: op, left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (node, error) {
	if p.tok.kind == tokOp && p.tok.text == "-" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &negNode{inner: inner}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (node, error) {
	switch p.tok.kind {
	case tokNumber:
		n := &litNode{v: Number(p.tok.num)}
		return n, p.advance()
	case tokString:
		n := &litNode{v: String(p.tok.str)}
		return n, p.advance()
	case tokDollar:
		n := &varNode{name: p.tok.text}
		return n, p.advance()
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errHere("expected ')'")
		}
		return inner, p.advance()
	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch name {
		case "true":
			return &litNode{v: Bool(true)}, nil
		case "false":
			return &litNode{v: Bool(false)}, nil
		case "null", "nil":
			return &litNode{v: Null}, nil
		}
		if p.tok.kind == tokLParen {
			return p.parseCall(name)
		}
		// A bare identifier is treated as a variable reference so that
		// legacy conditions written without '$' still resolve.
		return &varNode{name: name}, nil
	default:
		return nil, p.errHere("unexpected token %q", p.tok.text)
	}
}

func (p *parser) parseCall(name string) (node, error) {
	fn, ok := builtins[name]
	if !ok {
		return nil, p.errHere("unknown function %q", name)
	}
	if err := p.advance(); err != nil { // consume '('
		return nil, err
	}
	var args []node
	if p.tok.kind != tokRParen {
		for {
			arg, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			args = append(args, arg)
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if p.tok.kind != tokRParen {
		return nil, p.errHere("expected ')' after arguments to %s", name)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if fn.arity >= 0 && len(args) != fn.arity {
		return nil, p.errHere("%s expects %d argument(s), got %d", name, fn.arity, len(args))
	}
	return &callNode{name: name, fn: fn.impl, args: args}, nil
}
