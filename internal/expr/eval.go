package expr

import (
	"fmt"
	"math"
	"strings"
)

type litNode struct{ v Value }

func (n *litNode) eval(Env) (Value, error) { return n.v, nil }

type varNode struct{ name string }

func (n *varNode) eval(env Env) (Value, error) {
	v, ok := env.Lookup(n.name)
	if !ok {
		return Null, nil
	}
	return v, nil
}

type notNode struct{ inner node }

func (n *notNode) eval(env Env) (Value, error) {
	v, err := n.inner.eval(env)
	if err != nil {
		return Null, err
	}
	return Bool(!v.AsBool()), nil
}

type negNode struct{ inner node }

func (n *negNode) eval(env Env) (Value, error) {
	v, err := n.inner.eval(env)
	if err != nil {
		return Null, err
	}
	f, ok := v.AsNumber()
	if !ok {
		return Null, fmt.Errorf("expr: cannot negate %s %q", v.Kind(), v.AsString())
	}
	return Number(-f), nil
}

type logicalNode struct {
	op          string // "&&" or "||"
	left, right node
}

func (n *logicalNode) eval(env Env) (Value, error) {
	l, err := n.left.eval(env)
	if err != nil {
		return Null, err
	}
	// Short-circuit like every mainstream language.
	if n.op == "&&" && !l.AsBool() {
		return Bool(false), nil
	}
	if n.op == "||" && l.AsBool() {
		return Bool(true), nil
	}
	r, err := n.right.eval(env)
	if err != nil {
		return Null, err
	}
	return Bool(r.AsBool()), nil
}

type cmpNode struct {
	op          string
	left, right node
}

func (n *cmpNode) eval(env Env) (Value, error) {
	l, err := n.left.eval(env)
	if err != nil {
		return Null, err
	}
	r, err := n.right.eval(env)
	if err != nil {
		return Null, err
	}
	switch n.op {
	case "==":
		return Bool(l.Equal(r)), nil
	case "!=":
		return Bool(!l.Equal(r)), nil
	}
	c, err := l.Compare(r)
	if err != nil {
		return Null, err
	}
	switch n.op {
	case "<":
		return Bool(c < 0), nil
	case "<=":
		return Bool(c <= 0), nil
	case ">":
		return Bool(c > 0), nil
	case ">=":
		return Bool(c >= 0), nil
	default:
		return Null, fmt.Errorf("expr: unknown comparison %q", n.op)
	}
}

type arithNode struct {
	op          string
	left, right node
}

func (n *arithNode) eval(env Env) (Value, error) {
	l, err := n.left.eval(env)
	if err != nil {
		return Null, err
	}
	r, err := n.right.eval(env)
	if err != nil {
		return Null, err
	}
	// '+' on two strings (where neither parses as a number) concatenates.
	if n.op == "+" {
		_, lNum := l.AsNumber()
		_, rNum := r.AsNumber()
		if (l.Kind() == KindString && !lNum) || (r.Kind() == KindString && !rNum) {
			return String(l.AsString() + r.AsString()), nil
		}
	}
	a, okA := l.AsNumber()
	b, okB := r.AsNumber()
	if !okA || !okB {
		if n.op == "+" {
			return String(l.AsString() + r.AsString()), nil
		}
		return Null, fmt.Errorf("expr: %q needs numbers, got %s and %s", n.op, l.Kind(), r.Kind())
	}
	switch n.op {
	case "+":
		return Number(a + b), nil
	case "-":
		return Number(a - b), nil
	case "*":
		return Number(a * b), nil
	case "/":
		if b == 0 {
			return Null, fmt.Errorf("expr: division by zero")
		}
		return Number(a / b), nil
	case "%":
		if b == 0 {
			return Null, fmt.Errorf("expr: modulo by zero")
		}
		return Number(math.Mod(a, b)), nil
	default:
		return Null, fmt.Errorf("expr: unknown operator %q", n.op)
	}
}

type callNode struct {
	name string
	fn   func(args []Value) (Value, error)
	args []node
}

func (n *callNode) eval(env Env) (Value, error) {
	vals := make([]Value, len(n.args))
	for i, a := range n.args {
		v, err := a.eval(env)
		if err != nil {
			return Null, err
		}
		vals[i] = v
	}
	v, err := n.fn(vals)
	if err != nil {
		return Null, fmt.Errorf("expr: %s: %w", n.name, err)
	}
	return v, nil
}

type builtin struct {
	arity int // -1 means variadic
	impl  func(args []Value) (Value, error)
}

// builtins are the function library available inside DGL conditions. They
// cover the string/metadata probing that the paper's trigger and ILM
// scenarios require (file name suffix checks, size thresholds, value
// defaulting).
var builtins = map[string]builtin{
	"len": {1, func(a []Value) (Value, error) {
		return Int(int64(len(a[0].AsString()))), nil
	}},
	"contains": {2, func(a []Value) (Value, error) {
		return Bool(strings.Contains(a[0].AsString(), a[1].AsString())), nil
	}},
	"startsWith": {2, func(a []Value) (Value, error) {
		return Bool(strings.HasPrefix(a[0].AsString(), a[1].AsString())), nil
	}},
	"endsWith": {2, func(a []Value) (Value, error) {
		return Bool(strings.HasSuffix(a[0].AsString(), a[1].AsString())), nil
	}},
	"lower": {1, func(a []Value) (Value, error) {
		return String(strings.ToLower(a[0].AsString())), nil
	}},
	"upper": {1, func(a []Value) (Value, error) {
		return String(strings.ToUpper(a[0].AsString())), nil
	}},
	"trim": {1, func(a []Value) (Value, error) {
		return String(strings.TrimSpace(a[0].AsString())), nil
	}},
	"num": {1, func(a []Value) (Value, error) {
		f, ok := a[0].AsNumber()
		if !ok {
			return Null, fmt.Errorf("%q is not numeric", a[0].AsString())
		}
		return Number(f), nil
	}},
	"str": {1, func(a []Value) (Value, error) {
		return String(a[0].AsString()), nil
	}},
	"min": {-1, func(a []Value) (Value, error) {
		return fold(a, func(x, y float64) float64 { return math.Min(x, y) })
	}},
	"max": {-1, func(a []Value) (Value, error) {
		return fold(a, func(x, y float64) float64 { return math.Max(x, y) })
	}},
	"abs": {1, func(a []Value) (Value, error) {
		f, ok := a[0].AsNumber()
		if !ok {
			return Null, fmt.Errorf("%q is not numeric", a[0].AsString())
		}
		return Number(math.Abs(f)), nil
	}},
	"floor": {1, func(a []Value) (Value, error) {
		f, ok := a[0].AsNumber()
		if !ok {
			return Null, fmt.Errorf("%q is not numeric", a[0].AsString())
		}
		return Number(math.Floor(f)), nil
	}},
	"ceil": {1, func(a []Value) (Value, error) {
		f, ok := a[0].AsNumber()
		if !ok {
			return Null, fmt.Errorf("%q is not numeric", a[0].AsString())
		}
		return Number(math.Ceil(f)), nil
	}},
	// coalesce(a, b, ...) returns the first non-null argument; it gives
	// flows a way to default unset variables.
	"coalesce": {-1, func(a []Value) (Value, error) {
		for _, v := range a {
			if !v.IsNull() {
				return v, nil
			}
		}
		return Null, nil
	}},
	// ext("/a/b/c.dat") == ".dat" — common in trigger conditions.
	"ext": {1, func(a []Value) (Value, error) {
		s := a[0].AsString()
		if i := strings.LastIndexByte(s, '.'); i >= 0 && i > strings.LastIndexByte(s, '/') {
			return String(s[i:]), nil
		}
		return String(""), nil
	}},
	// base("/a/b/c.dat") == "c.dat".
	"base": {1, func(a []Value) (Value, error) {
		s := a[0].AsString()
		if i := strings.LastIndexByte(s, '/'); i >= 0 {
			return String(s[i+1:]), nil
		}
		return String(s), nil
	}},
}

func fold(a []Value, f func(x, y float64) float64) (Value, error) {
	if len(a) == 0 {
		return Null, fmt.Errorf("needs at least one argument")
	}
	acc, ok := a[0].AsNumber()
	if !ok {
		return Null, fmt.Errorf("%q is not numeric", a[0].AsString())
	}
	for _, v := range a[1:] {
		n, ok := v.AsNumber()
		if !ok {
			return Null, fmt.Errorf("%q is not numeric", v.AsString())
		}
		acc = f(acc, n)
	}
	return Number(acc), nil
}

// EvalString parses and evaluates src in a single call. It is a
// convenience for one-shot conditions; hot paths should Parse once.
func EvalString(src string, env Env) (Value, error) {
	e, err := Parse(src)
	if err != nil {
		return Null, err
	}
	return e.Eval(env)
}
