package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves a registry over HTTP:
//
//	GET /metrics        the JSON metrics Snapshot
//	GET /trace          the buffered trace events (oldest first)
//	GET /debug/pprof/*  the standard net/http/pprof endpoints
//
// This is the -metrics-addr surface of matrixd and lookupd.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.Snapshot())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.Trace().Events())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("datagridflow observability\n\n/metrics\n/trace\n/debug/pprof/\n"))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Serve binds addr (":0" for ephemeral) and serves Handler(r) on a
// background goroutine. It returns the server (Close to stop) and the
// bound address.
func Serve(addr string, r *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: Handler(r)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
