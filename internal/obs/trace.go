package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceCap is the default trace ring-buffer capacity.
const DefaultTraceCap = 4096

// Trace event types.
const (
	// EventStart opens a span (a flow node entering running, a wire
	// request beginning).
	EventStart = "start"
	// EventEnd closes a span; Attrs carry the outcome.
	EventEnd = "end"
	// EventPoint is an instantaneous event with no duration.
	EventPoint = "point"
)

// Event is one structured trace event. Span pairs share Scope and ID:
// an EventStart followed (eventually) by an EventEnd with the same
// (Scope, ID) brackets one lifecycle.
type Event struct {
	// Seq is a monotonically increasing sequence number, assigned at
	// emission; subscribers use it to detect gaps after drops.
	Seq uint64 `json:"seq"`
	// Time is the emission instant on the emitting component's clock
	// (virtual under simulation).
	Time time.Time `json:"time"`
	// Type is EventStart, EventEnd or EventPoint.
	Type string `json:"type"`
	// Scope names the lifecycle kind: "flow", "step" or "request".
	Scope string `json:"scope"`
	// Name is the human name (flow name, step name, request kind).
	Name string `json:"name"`
	// ID is the hierarchical identifier (execution/node id, connection
	// address) correlating start and end.
	ID string `json:"id"`
	// Attrs carry scope-specific details (operation type, outcome state).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// TraceBuffer is a fixed-capacity ring of recent events with a
// non-blocking subscriber fan-out. Emission never blocks: the ring
// overwrites its oldest event when full, and a subscriber whose channel
// is full loses the event (counted in Dropped). This keeps the
// observability path incapable of stalling the engine it observes.
type TraceBuffer struct {
	mu      sync.Mutex
	ring    []Event
	start   int // index of oldest event
	n       int // events currently in ring
	seq     uint64
	subs    map[int]chan Event
	nextSub int
	dropped atomic.Uint64
}

// NewTraceBuffer returns a ring holding the last `capacity` events
// (minimum 1).
func NewTraceBuffer(capacity int) *TraceBuffer {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceBuffer{ring: make([]Event, capacity), subs: make(map[int]chan Event)}
}

// Emit appends the event, assigning its sequence number (and stamping
// Time with the wall clock only if the caller left it zero). The
// completed event is returned.
func (b *TraceBuffer) Emit(ev Event) Event {
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	b.mu.Lock()
	b.seq++
	ev.Seq = b.seq
	if b.n < len(b.ring) {
		b.ring[(b.start+b.n)%len(b.ring)] = ev
		b.n++
	} else {
		b.ring[b.start] = ev
		b.start = (b.start + 1) % len(b.ring)
	}
	subs := make([]chan Event, 0, len(b.subs))
	for _, ch := range b.subs {
		subs = append(subs, ch)
	}
	b.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- ev:
		default:
			b.dropped.Add(1)
		}
	}
	return ev
}

// Events snapshots the buffered events, oldest first.
func (b *TraceBuffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, 0, b.n)
	for i := 0; i < b.n; i++ {
		out = append(out, b.ring[(b.start+i)%len(b.ring)])
	}
	return out
}

// Len returns how many events the ring currently holds.
func (b *TraceBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// Subscribe registers a live event channel with the given buffer size
// (minimum 1). The returned cancel function unregisters and closes the
// channel; events emitted while the channel is full are dropped, never
// blocked on.
func (b *TraceBuffer) Subscribe(buf int) (<-chan Event, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan Event, buf)
	b.mu.Lock()
	id := b.nextSub
	b.nextSub++
	b.subs[id] = ch
	b.mu.Unlock()
	cancel := func() {
		b.mu.Lock()
		if _, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(ch)
		}
		b.mu.Unlock()
	}
	return ch, cancel
}

// Dropped returns how many events were lost to full subscriber channels.
func (b *TraceBuffer) Dropped() uint64 { return b.dropped.Load() }

// StartSpan emits an EventStart stamped with the registry's clock.
func (r *Registry) StartSpan(scope, name, id string, attrs map[string]string) {
	r.trace.Emit(Event{Time: r.Now(), Type: EventStart, Scope: scope, Name: name, ID: id, Attrs: attrs})
}

// EndSpan emits an EventEnd stamped with the registry's clock.
func (r *Registry) EndSpan(scope, name, id string, attrs map[string]string) {
	r.trace.Emit(Event{Time: r.Now(), Type: EventEnd, Scope: scope, Name: name, ID: id, Attrs: attrs})
}

// Point emits an instantaneous event stamped with the registry's clock.
func (r *Registry) Point(scope, name, id string, attrs map[string]string) {
	r.trace.Emit(Event{Time: r.Now(), Type: EventPoint, Scope: scope, Name: name, ID: id, Attrs: attrs})
}
