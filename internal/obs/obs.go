// Package obs is the observability substrate of the reproduction: a
// stdlib-only metrics registry (counters, gauges, histograms) and a
// structured trace-event stream (ring buffer plus subscriber API) that
// every layer — the matrix engine, the wire network, triggers, ILM and
// the scheduler — emits into.
//
// The paper's defining requirement is that datagridflows are *long-run*
// processes: flows run for weeks and must be monitorable at any moment,
// at any granularity. Hierarchical status ids answer "where is this
// flow?"; this package answers the operational questions around it —
// how many flows are in flight, how fast steps complete per operation
// type, what the wire layer is carrying, which triggers fire and veto,
// what ILM moved overnight.
//
// A Registry is safe for concurrent use. Time is pluggable via SetNow so
// simulations stamp snapshots and trace events with the virtual clock;
// components measure durations against their own grid clock, so latency
// histograms are meaningful under both real and simulated time.
//
// The metric and trace-event contract — every name, type, label and
// emission point — is documented in docs/METRICS.md. That document is
// the stability contract: a test diffs the names the code emits against
// it, so the two cannot drift.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default histogram bucket upper bounds, in seconds.
// They span sub-millisecond wire round trips to the multi-day step
// latencies of simulated long-run flows.
var DefBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.5,
	1, 5, 10, 60, 300, 1800, 3600, 21600, 86400,
}

// Counter is a monotonically increasing metric.
type Counter struct {
	name   string
	labels map[string]string
	v      atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	name   string
	labels map[string]string
	v      atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed buckets with sum, min
// and max — enough to reconstruct latency percentiles coarsely without
// unbounded memory.
type Histogram struct {
	name   string
	labels map[string]string
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows

	mu       sync.Mutex
	counts   []int64 // len(bounds)+1
	count    int64
	sum      float64
	min, max float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Registry holds one process's (or one grid's) metrics and its trace
// stream. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	now      func() time.Time
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	trace    *TraceBuffer
}

// NewRegistry returns an empty registry stamping with the wall clock and
// a trace ring buffer of DefaultTraceCap events.
func NewRegistry() *Registry {
	r := &Registry{
		now:      time.Now,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		trace:    NewTraceBuffer(DefaultTraceCap),
	}
	return r
}

var std = NewRegistry()

// Default returns the process-wide registry. Components that are not
// given an explicit registry (a dgms.Grid built without Options.Obs, a
// LookupServer) emit here, so single-grid processes like matrixd and
// dgfbench get a complete picture for free. Tests that assert on metric
// values should inject their own registry instead.
func Default() *Registry { return std }

// SetNow replaces the registry's time source (e.g. a sim.VirtualClock's
// Now) so snapshots and trace events carry simulated timestamps.
func (r *Registry) SetNow(now func() time.Time) {
	r.mu.Lock()
	r.now = now
	r.mu.Unlock()
}

// Now returns the registry's current time.
func (r *Registry) Now() time.Time {
	r.mu.RLock()
	now := r.now
	r.mu.RUnlock()
	return now()
}

// Trace returns the registry's trace-event stream.
func (r *Registry) Trace() *TraceBuffer { return r.trace }

// key canonicalizes a metric identity: name plus sorted label pairs.
func key(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	for _, k := range keys {
		b.WriteByte('|')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}

// labelMap pairs up a variadic "k1, v1, k2, v2, ..." list. A trailing
// odd key gets an empty value rather than panicking.
func labelMap(kv []string) map[string]string {
	if len(kv) == 0 {
		return nil
	}
	m := make(map[string]string, len(kv)/2+1)
	for i := 0; i < len(kv); i += 2 {
		if i+1 < len(kv) {
			m[kv[i]] = kv[i+1]
		} else {
			m[kv[i]] = ""
		}
	}
	return m
}

// Counter returns (creating on first use) the counter with the given
// name and label pairs ("k1", "v1", "k2", "v2", ...).
func (r *Registry) Counter(name string, kv ...string) *Counter {
	labels := labelMap(kv)
	k := key(name, labels)
	r.mu.RLock()
	c, ok := r.counters[k]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[k]; ok {
		return c
	}
	c = &Counter{name: name, labels: labels}
	r.counters[k] = c
	return c
}

// Gauge returns (creating on first use) the gauge with the given name
// and label pairs.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	labels := labelMap(kv)
	k := key(name, labels)
	r.mu.RLock()
	g, ok := r.gauges[k]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[k]; ok {
		return g
	}
	g = &Gauge{name: name, labels: labels}
	r.gauges[k] = g
	return g
}

// Histogram returns (creating on first use) the histogram with the given
// name, label pairs and DefBuckets bounds.
func (r *Registry) Histogram(name string, kv ...string) *Histogram {
	return r.HistogramBuckets(name, DefBuckets, kv...)
}

// HistogramBuckets is Histogram with explicit bucket upper bounds (used
// for unit-less distributions like scope depth). The bounds of the first
// registration win; later calls with different bounds reuse the series.
func (r *Registry) HistogramBuckets(name string, bounds []float64, kv ...string) *Histogram {
	labels := labelMap(kv)
	k := key(name, labels)
	r.mu.RLock()
	h, ok := r.hists[k]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[k]; ok {
		return h
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	h = &Histogram{name: name, labels: labels, bounds: b, counts: make([]int64, len(b)+1)}
	r.hists[k] = h
	return h
}

// Point is one counter or gauge sample in a snapshot.
type Point struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// HistPoint is one histogram sample in a snapshot. Counts[i] holds the
// observations ≤ Bounds[i]; the final element counts the overflow
// (+Inf) bucket.
type HistPoint struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Count  int64             `json:"count"`
	Sum    float64           `json:"sum"`
	Min    float64           `json:"min"`
	Max    float64           `json:"max"`
	Bounds []float64         `json:"bounds"`
	Counts []int64           `json:"counts"`
}

// Snapshot is a point-in-time copy of every metric, ordered
// deterministically (by name, then by canonical label string) so equal
// registry states marshal to equal JSON.
type Snapshot struct {
	At         time.Time   `json:"at"`
	Counters   []Point     `json:"counters,omitempty"`
	Gauges     []Point     `json:"gauges,omitempty"`
	Histograms []HistPoint `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	snap := Snapshot{At: r.now()}

	ckeys := sortedKeys(r.counters)
	for _, k := range ckeys {
		c := r.counters[k]
		snap.Counters = append(snap.Counters, Point{Name: c.name, Labels: c.labels, Value: c.Value()})
	}
	gkeys := sortedKeys(r.gauges)
	for _, k := range gkeys {
		g := r.gauges[k]
		snap.Gauges = append(snap.Gauges, Point{Name: g.name, Labels: g.labels, Value: g.Value()})
	}
	hkeys := sortedKeys(r.hists)
	for _, k := range hkeys {
		h := r.hists[k]
		h.mu.Lock()
		hp := HistPoint{
			Name: h.name, Labels: h.labels,
			Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...),
		}
		h.mu.Unlock()
		snap.Histograms = append(snap.Histograms, hp)
	}
	return snap
}

// Names returns the distinct metric names registered so far, sorted —
// the list the docs-contract test diffs against docs/METRICS.md.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	set := make(map[string]bool)
	for _, c := range r.counters {
		set[c.name] = true
	}
	for _, g := range r.gauges {
		set[g.name] = true
	}
	for _, h := range r.hists {
		set[h.name] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Reset zeroes every metric (series identities survive, values clear)
// and does not touch the trace buffer. Benchmarks reset between phases
// so each phase's snapshot stands alone.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		h.mu.Lock()
		h.count, h.sum, h.min, h.max = 0, 0, 0, 0
		for i := range h.counts {
			h.counts[i] = 0
		}
		h.mu.Unlock()
	}
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
