package obs

import (
	"testing"
	"time"

	"datagridflow/internal/sim"
)

func TestTraceRingWraps(t *testing.T) {
	tb := NewTraceBuffer(4)
	for i := 0; i < 10; i++ {
		tb.Emit(Event{Type: EventPoint, Scope: "flow", Name: "n", ID: "x"})
	}
	evs := tb.Events()
	if len(evs) != 4 {
		t.Fatalf("Len = %d, want 4", len(evs))
	}
	// Oldest-first, holding the last 4 of 10 emissions (seqs 7..10).
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, want)
		}
	}
	if tb.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", tb.Len())
	}
}

func TestTraceSubscribe(t *testing.T) {
	tb := NewTraceBuffer(16)
	ch, cancel := tb.Subscribe(8)
	defer cancel()
	tb.Emit(Event{Type: EventStart, Scope: "flow", Name: "f", ID: "1"})
	tb.Emit(Event{Type: EventEnd, Scope: "flow", Name: "f", ID: "1"})
	for _, want := range []string{EventStart, EventEnd} {
		select {
		case ev := <-ch:
			if ev.Type != want {
				t.Fatalf("got %q, want %q", ev.Type, want)
			}
		case <-time.After(time.Second):
			t.Fatal("timed out waiting for subscribed event")
		}
	}
	cancel()
	// After cancel, emissions must not panic or block.
	tb.Emit(Event{Type: EventPoint, Scope: "flow", Name: "f", ID: "1"})
}

func TestTraceSlowSubscriberDrops(t *testing.T) {
	tb := NewTraceBuffer(64)
	_, cancel := tb.Subscribe(1) // nobody reading
	defer cancel()
	for i := 0; i < 5; i++ {
		tb.Emit(Event{Type: EventPoint, Scope: "flow", Name: "n", ID: "x"})
	}
	// Buffer of 1 absorbs one event; the rest are dropped, never blocking.
	if got := tb.Dropped(); got != 4 {
		t.Fatalf("Dropped = %d, want 4", got)
	}
	if tb.Len() != 5 {
		t.Fatalf("ring Len = %d, want 5 (drops only affect subscribers)", tb.Len())
	}
}

func TestRegistrySpansStampVirtualTime(t *testing.T) {
	clock := sim.NewVirtualClock(sim.Epoch)
	r := NewRegistry()
	r.SetNow(clock.Now)
	r.StartSpan("flow", "f", "id-1", map[string]string{"control": "sequential"})
	clock.Advance(2 * time.Hour)
	r.EndSpan("flow", "f", "id-1", map[string]string{"state": "succeeded"})
	evs := r.Trace().Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if !evs[0].Time.Equal(sim.Epoch) {
		t.Fatalf("start time = %v, want %v", evs[0].Time, sim.Epoch)
	}
	if got := evs[1].Time.Sub(evs[0].Time); got != 2*time.Hour {
		t.Fatalf("span duration = %v, want 2h", got)
	}
	if evs[0].Type != EventStart || evs[1].Type != EventEnd {
		t.Fatalf("types = %q/%q, want start/end", evs[0].Type, evs[1].Type)
	}
	if evs[1].Attrs["state"] != "succeeded" {
		t.Fatalf("end attrs = %v", evs[1].Attrs)
	}
}
