// Contract tests: docs/METRICS.md is the observability contract, and
// these tests keep it honest in both directions —
//
//   - every metric name and trace scope emitted anywhere in the source
//     must appear in the document (source scan);
//   - every metric a live engine + wire server actually registers must
//     appear in the document (runtime scan);
//   - a sequential two-step flow produces exactly the span sequence the
//     document promises.
package obs_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"datagridflow/internal/dgl"
	"datagridflow/internal/dgms"
	"datagridflow/internal/matrix"
	"datagridflow/internal/namespace"
	"datagridflow/internal/obs"
	"datagridflow/internal/vfs"
	"datagridflow/internal/wire"
)

// docTokens returns every backtick-quoted token in docs/METRICS.md.
func docTokens(t *testing.T) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "METRICS.md"))
	if err != nil {
		t.Fatalf("reading docs/METRICS.md: %v", err)
	}
	// Strip fenced code blocks first: their triple backticks would
	// otherwise flip the open/close parity of the inline-token scan.
	text := regexp.MustCompile("(?s)```.*?```").ReplaceAllString(string(data), "")
	tokens := make(map[string]bool)
	for _, m := range regexp.MustCompile("`([^`\n]+)`").FindAllStringSubmatch(text, -1) {
		tokens[m[1]] = true
	}
	return tokens
}

// sourceMetricNames scans every non-test .go file in the module for
// literal metric registrations: .Counter("..."), .Gauge("..."),
// .Histogram("...") and .HistogramBuckets("...").
func sourceMetricNames(t *testing.T) (metrics, scopes []string) {
	t.Helper()
	metricRe := regexp.MustCompile(`\.(Counter|Gauge|Histogram|HistogramBuckets)\(\s*"([a-z][a-z0-9_]*)"`)
	scopeRe := regexp.MustCompile(`\.(StartSpan|EndSpan|Point)\(\s*"([a-z]+)"`)
	mset, sset := make(map[string]bool), make(map[string]bool)
	root := filepath.Join("..", "..")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range metricRe.FindAllStringSubmatch(string(data), -1) {
			mset[m[2]] = true
		}
		for _, m := range scopeRe.FindAllStringSubmatch(string(data), -1) {
			sset[m[2]] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for n := range mset {
		metrics = append(metrics, n)
	}
	for s := range sset {
		scopes = append(scopes, s)
	}
	sort.Strings(metrics)
	sort.Strings(scopes)
	return metrics, scopes
}

func TestEveryEmittedMetricIsDocumented(t *testing.T) {
	doc := docTokens(t)
	metrics, scopes := sourceMetricNames(t)
	if len(metrics) < 20 {
		t.Fatalf("source scan found only %d metric names (%v) — scan is broken", len(metrics), metrics)
	}
	for _, name := range metrics {
		if !doc[name] {
			t.Errorf("metric %q is emitted in source but missing from docs/METRICS.md", name)
		}
	}
	if len(scopes) == 0 {
		t.Fatal("source scan found no trace scopes — scan is broken")
	}
	for _, s := range scopes {
		if !doc[s] {
			t.Errorf("trace scope %q is emitted in source but missing from docs/METRICS.md", s)
		}
	}
}

// newObservedEngine builds an engine over a grid with its own registry.
func newObservedEngine(t testing.TB) (*matrix.Engine, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	g := dgms.New(dgms.Options{Obs: reg})
	if err := g.RegisterResource(vfs.New("disk1", "sdsc", vfs.Disk, 0)); err != nil {
		t.Fatal(err)
	}
	if err := g.CreateCollectionAll(g.Admin(), "/grid"); err != nil {
		t.Fatal(err)
	}
	if err := g.Namespace().SetPermission("/grid", "user", namespace.PermWrite); err != nil {
		t.Fatal(err)
	}
	return matrix.NewEngine(g), reg
}

func TestRuntimeRegistryMatchesDocs(t *testing.T) {
	e, reg := newObservedEngine(t)

	// Succeed, fail and restart flows through the engine...
	ok := dgl.NewFlow("ok").
		Step("mk", dgl.Op(dgl.OpMakeCollection, map[string]string{"path": "/grid/a"})).
		Step("ingest", dgl.Op(dgl.OpIngest, map[string]string{"path": "/grid/a/f", "size": "10", "resource": "disk1"})).Flow()
	ex, err := e.Run("user", ok)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err != nil {
		t.Fatalf("ok flow: %v", err)
	}
	bad := dgl.NewFlow("bad").
		Step("a", dgl.Op(dgl.OpNoop, nil)).
		Step("boom", dgl.Op(dgl.OpFail, nil)).Flow()
	bex, err := e.Run("user", bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := bex.Wait(); err == nil {
		t.Fatal("bad flow unexpectedly succeeded")
	}
	rex, err := e.Restart(bex.ID)
	if err != nil {
		t.Fatal(err)
	}
	rex.Wait() // fails again; we only care that restart metrics fire

	// ...and a wire round trip, including the metrics control op.
	s := wire.NewServer(e)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Status("user", ex.ID, false); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Counters) == 0 {
		t.Fatal("wire metrics snapshot has no counters")
	}

	doc := docTokens(t)
	names := reg.Names()
	if len(names) < 10 {
		t.Fatalf("scenario registered only %d metrics: %v", len(names), names)
	}
	for _, name := range names {
		if !doc[name] {
			t.Errorf("runtime metric %q missing from docs/METRICS.md", name)
		}
	}
	for _, ev := range reg.Trace().Events() {
		if !doc[ev.Scope] {
			t.Errorf("runtime trace scope %q missing from docs/METRICS.md", ev.Scope)
		}
	}
}

// TestFlowSpanSequence asserts the documented span sequence for a
// sequential two-step flow: start flow, start step a, end step a,
// start step b, end step b, end flow.
func TestFlowSpanSequence(t *testing.T) {
	e, reg := newObservedEngine(t)
	flow := dgl.NewFlow("pair").
		Step("a", dgl.Op(dgl.OpNoop, nil)).
		Step("b", dgl.Op(dgl.OpNoop, nil)).Flow()
	ex, err := e.Run("user", flow)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, ev := range reg.Trace().Events() {
		if ev.Scope != "flow" && ev.Scope != "step" {
			continue
		}
		got = append(got, ev.Type+" "+ev.Scope+" "+ev.Name)
	}
	want := []string{
		"start flow pair",
		"start step a",
		"end step a",
		"start step b",
		"end step b",
		"end flow pair",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("span sequence:\ngot:\n%s\nwant:\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
	// Span pairs correlate by (scope, id).
	byID := make(map[string]int)
	for _, ev := range reg.Trace().Events() {
		switch ev.Type {
		case obs.EventStart:
			byID[ev.Scope+"|"+ev.ID]++
		case obs.EventEnd:
			byID[ev.Scope+"|"+ev.ID]--
		}
	}
	for k, n := range byID {
		if n != 0 {
			t.Errorf("unbalanced span %s (%+d)", k, n)
		}
	}
}
