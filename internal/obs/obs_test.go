package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"datagridflow/internal/sim"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, per = 32, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// Re-resolve through the registry each time to exercise
				// the lookup path under contention, not just the atomic.
				r.Counter("c_total", "k", "v").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "k", "v").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestCounterIgnoresNegativeAdd(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5 (negative add ignored)", got)
	}
}

func TestGaugeUpDown(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	g.Add(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %d, want 2", got)
	}
	g.Set(10)
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge = %d, want 10", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, per = 16, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Histogram("h_seconds", "op", "x").Observe(float64(w%4) + 0.5)
			}
		}(w)
	}
	wg.Wait()
	h := r.Histogram("h_seconds", "op", "x")
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms in snapshot = %d, want 1", len(snap.Histograms))
	}
	hp := snap.Histograms[0]
	if hp.Min != 0.5 || hp.Max != 3.5 {
		t.Fatalf("min/max = %v/%v, want 0.5/3.5", hp.Min, hp.Max)
	}
	var total int64
	for _, c := range hp.Counts {
		total += c
	}
	if total != hp.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, hp.Count)
	}
}

func TestHistogramBucketAssignment(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("depth", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 2, 3, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	hp := snap.Histograms[0]
	// <=1: 0.5 and 1; <=2: 2; <=4: 3; +Inf: 100.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if hp.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, hp.Counts[i], w, hp.Counts)
		}
	}
}

func TestLabelsSeparateSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total", "op", "a").Inc()
	r.Counter("ops_total", "op", "b").Add(2)
	if got := r.Counter("ops_total", "op", "a").Value(); got != 1 {
		t.Fatalf("series a = %d, want 1", got)
	}
	if got := r.Counter("ops_total", "op", "b").Value(); got != 2 {
		t.Fatalf("series b = %d, want 2", got)
	}
	// Label order must not mint a new series.
	r.Counter("multi_total", "a", "1", "b", "2").Inc()
	r.Counter("multi_total", "b", "2", "a", "1").Inc()
	if got := r.Counter("multi_total", "a", "1", "b", "2").Value(); got != 2 {
		t.Fatalf("label-order-insensitive series = %d, want 2", got)
	}
}

// TestSnapshotDeterministicVirtualClock is the sim-time contract: two
// registries fed the same operations on the same virtual clock produce
// byte-identical snapshot JSON, regardless of registration order.
func TestSnapshotDeterministicVirtualClock(t *testing.T) {
	build := func(order []string) []byte {
		clock := sim.NewVirtualClock(sim.Epoch)
		r := NewRegistry()
		r.SetNow(clock.Now)
		for _, name := range order {
			r.Counter(name, "k", "v").Inc()
		}
		clock.Advance(90 * time.Minute)
		r.Gauge("running").Set(4)
		r.Histogram("lat_seconds").Observe(clock.Now().Sub(sim.Epoch).Seconds())
		data, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := build([]string{"c1_total", "c2_total", "c3_total"})
	b := build([]string{"c3_total", "c1_total", "c2_total"})
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshots differ:\n%s\n%s", a, b)
	}
	var snap Snapshot
	if err := json.Unmarshal(a, &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.At.Equal(sim.Epoch.Add(90 * time.Minute)) {
		t.Fatalf("snapshot At = %v, want virtual %v", snap.At, sim.Epoch.Add(90*time.Minute))
	}
	if snap.Histograms[0].Sum != (90 * time.Minute).Seconds() {
		t.Fatalf("histogram sum = %v, want %v", snap.Histograms[0].Sum, (90 * time.Minute).Seconds())
	}
}

func TestResetClearsValuesKeepsSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(7)
	r.Gauge("g").Set(3)
	r.Histogram("h_seconds").Observe(1.5)
	r.Reset()
	snap := r.Snapshot()
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 0 {
		t.Fatalf("counter after reset: %+v", snap.Counters)
	}
	if snap.Gauges[0].Value != 0 {
		t.Fatalf("gauge after reset: %+v", snap.Gauges)
	}
	if snap.Histograms[0].Count != 0 || snap.Histograms[0].Sum != 0 {
		t.Fatalf("histogram after reset: %+v", snap.Histograms[0])
	}
}

func TestNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "x", "1")
	r.Counter("b_total", "x", "2")
	r.Gauge("a")
	r.Histogram("c_seconds")
	got := r.Names()
	want := []string{"a", "b_total", "c_seconds"}
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}
