package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func TestServeMetricsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("demo_total", "k", "v").Add(3)
	r.Point("flow", "f", "id-1", nil)

	srv, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("/metrics is not JSON: %v", err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Name != "demo_total" || snap.Counters[0].Value != 3 {
		t.Fatalf("unexpected /metrics counters: %+v", snap.Counters)
	}

	var evs []Event
	if err := json.Unmarshal(get("/trace"), &evs); err != nil {
		t.Fatalf("/trace is not JSON: %v", err)
	}
	if len(evs) != 1 || evs[0].Scope != "flow" {
		t.Fatalf("unexpected /trace events: %+v", evs)
	}

	get("/debug/pprof/")
	get("/debug/pprof/cmdline")
}
