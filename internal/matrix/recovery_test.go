package matrix

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"datagridflow/internal/dgl"
	"datagridflow/internal/dgms"
	"datagridflow/internal/namespace"
	"datagridflow/internal/provenance"
	"datagridflow/internal/vfs"
)

// TestRestartFromProvenanceCrossProcess simulates a server crash: the
// first engine runs against a file-backed provenance store and fails
// mid-flow; a brand-new engine (new process, new grid object, same
// provenance file and same DGL document) resumes, skipping every step
// the log records as finished.
func TestRestartFromProvenanceCrossProcess(t *testing.T) {
	dir := t.TempDir()
	provPath := filepath.Join(dir, "prov.jsonl")

	mkEngine := func(failing bool) (*Engine, *int) {
		store, err := provenance.Open(provPath)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
		g := dgms.New(dgms.Options{Provenance: store})
		if err := g.RegisterResource(vfs.New("disk", "sdsc", vfs.Disk, 0)); err != nil {
			t.Fatal(err)
		}
		if err := g.CreateCollectionAll(g.Admin(), "/grid"); err != nil {
			t.Fatal(err)
		}
		if err := g.Namespace().SetPermission("/grid", "user", namespace.PermWrite); err != nil {
			t.Fatal(err)
		}
		e := NewEngine(g)
		runs := 0
		var mu sync.Mutex
		e.RegisterOp("work", func(c *OpContext) error {
			mu.Lock()
			defer mu.Unlock()
			runs++
			if failing && c.Params["i"] == "6" {
				return errors.New("process about to die")
			}
			return nil
		})
		return e, &runs
	}

	flowDoc := func() dgl.Flow {
		b := dgl.NewFlow("durable-job")
		for i := 0; i < 10; i++ {
			b.Step(fmt.Sprintf("s%d", i), dgl.Op("work", map[string]string{"i": fmt.Sprint(i)}))
		}
		return b.Flow()
	}

	// Process 1: fails at step 6 (0..5 succeeded), then "crashes".
	e1, runs1 := mkEngine(true)
	ex, err := e1.Run("user", flowDoc())
	if err != nil {
		t.Fatal(err)
	}
	if ex.Wait() == nil {
		t.Fatal("first run should fail")
	}
	if *runs1 != 7 { // s0..s5 ok + failing s6
		t.Fatalf("first process ran %d steps", *runs1)
	}
	priorID := ex.ID
	if err := e1.grid.Provenance().Flush(); err != nil {
		t.Fatal(err)
	}

	// Process 2: a fresh engine over the same provenance file resumes.
	e2, runs2 := mkEngine(false)
	req := dgl.NewAsyncRequest("user", "", flowDoc())
	ex2, err := e2.RestartFromProvenance(priorID, req)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex2.Wait(); err != nil {
		t.Fatal(err)
	}
	// Only s6..s9 re-ran.
	if *runs2 != 4 {
		t.Errorf("second process ran %d steps, want 4", *runs2)
	}
	st := ex2.Status(true)
	if st.CountByState()[string(StateSkipped)] != 6 {
		t.Errorf("skipped = %v", st.CountByState())
	}
}

func TestRestartFromProvenanceErrors(t *testing.T) {
	e := newTestEngine(t)
	flow := dgl.NewFlow("f").Step("s", dgl.Op(dgl.OpNoop, nil)).Flow()
	req := dgl.NewAsyncRequest("user", "", flow)
	// Unknown prior execution.
	if _, err := e.RestartFromProvenance("dgf-999999", req); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown prior: %v", err)
	}
	// Missing flow.
	if _, err := e.RestartFromProvenance("x", &dgl.Request{User: dgl.GridUser{Name: "u"}}); !errors.Is(err, dgl.ErrInvalid) {
		t.Errorf("missing flow: %v", err)
	}
	// Invalid flow.
	bad := dgl.NewFlow("f").Step("s", dgl.Op("nosuch", nil)).Flow()
	if _, err := e.RestartFromProvenance("x", dgl.NewAsyncRequest("u", "", bad)); !errors.Is(err, dgl.ErrInvalid) {
		t.Errorf("invalid flow: %v", err)
	}
	// A prior id with records but no successful steps resumes as a full
	// re-run.
	failFlow := dgl.NewFlow("f").Step("s", dgl.Op(dgl.OpFail, nil)).Flow()
	ex, err := e.Run("user", failFlow)
	if err != nil {
		t.Fatal(err)
	}
	_ = ex.Wait()
	okFlow := dgl.NewFlow("f").Step("s", dgl.Op(dgl.OpNoop, nil)).Flow()
	ex2, err := e.RestartFromProvenance(ex.ID, dgl.NewAsyncRequest("user", "", okFlow))
	if err != nil {
		t.Fatal(err)
	}
	if err := ex2.Wait(); err != nil {
		t.Fatal(err)
	}
	st := ex2.Status(true)
	if st.CountByState()[string(StateSkipped)] != 0 {
		t.Errorf("nothing should be skipped on a full re-run")
	}
}

func TestRegisterInPlaceOperation(t *testing.T) {
	e := newTestEngine(t)
	g := e.Grid()
	// Pre-existing data written to the resource out of band (legacy
	// storage the middleware is deployed over).
	disk, _ := g.Resource("disk1")
	if _, err := disk.Put("legacy/tape-dump-0042", 12, []byte("legacy bytes"), g.Clock().Now()); err != nil {
		t.Fatal(err)
	}
	flow := dgl.NewFlow("onboard").
		Step("register", dgl.Op(dgl.OpRegister, map[string]string{
			"path": "/grid/dump42", "resource": "disk1", "physicalID": "legacy/tape-dump-0042",
		})).
		Step("verify", dgl.Op(dgl.OpVerify, map[string]string{"path": "/grid/dump42"})).Flow()
	ex, err := e.Run("user", flow)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	// No data moved: the resource still holds exactly one object.
	if disk.Count() != 1 {
		t.Errorf("register moved data: %d objects", disk.Count())
	}
	data, err := g.Get("user", "", "/grid/dump42")
	if err != nil || string(data) != "legacy bytes" {
		t.Errorf("Get registered object = %q, %v", data, err)
	}
	e2, err := g.Namespace().Lookup("/grid/dump42")
	if err != nil || e2.Size != 12 || e2.Replicas[0].PhysicalID != "legacy/tape-dump-0042" {
		t.Errorf("registered entry = %+v, %v", e2, err)
	}
	// Missing physical object fails cleanly.
	bad := dgl.NewFlow("onboard2").
		Step("register", dgl.Op(dgl.OpRegister, map[string]string{
			"path": "/grid/nope", "resource": "disk1", "physicalID": "no/such",
		})).Flow()
	ex2, err := e.Run("user", bad)
	if err != nil {
		t.Fatal(err)
	}
	if ex2.Wait() == nil {
		t.Errorf("register of missing physical object succeeded")
	}
	if g.Namespace().Exists("/grid/nope") {
		t.Errorf("failed register left a logical entry")
	}
	// Missing params fail.
	for _, op := range []dgl.Operation{
		dgl.Op(dgl.OpRegister, map[string]string{"resource": "disk1", "physicalID": "x"}),
		dgl.Op(dgl.OpRegister, map[string]string{"path": "/grid/x", "physicalID": "x"}),
		dgl.Op(dgl.OpRegister, map[string]string{"path": "/grid/x", "resource": "disk1"}),
	} {
		ex, err := e.Run("user", dgl.NewFlow("f").Step("s", op).Flow())
		if err != nil {
			t.Fatal(err)
		}
		if ex.Wait() == nil {
			t.Errorf("register with missing params succeeded: %v", op.Params)
		}
	}
}
