package matrix

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"datagridflow/internal/dgl"
	"datagridflow/internal/expr"
	"datagridflow/internal/provenance"
	"datagridflow/internal/sim"
)

// registerBuiltins installs the handlers for every built-in DGL operation
// type. Handlers run with the submitting user's identity; the DGMS
// enforces permissions.
func (e *Engine) registerBuiltins() {
	e.handlers[dgl.OpNoop] = func(*OpContext) error { return nil }

	e.handlers[dgl.OpFail] = func(c *OpContext) error {
		return errors.New(c.ParamOr("message", "fail operation"))
	}

	e.handlers[dgl.OpSleep] = func(c *OpContext) error {
		d, err := time.ParseDuration(c.ParamOr("duration", "1s"))
		if err != nil {
			return fmt.Errorf("matrix: sleep: %w", err)
		}
		// On the wall clock a sleep can span months; it must be
		// interruptible or cancellation (and passivation, which rides
		// on it) would block until the timer fires. The virtual clock
		// advances instantly, so it keeps the plain path.
		if _, real := c.Engine.Clock().(sim.RealClock); real && c.Cancel != nil {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-c.Cancel:
				return ErrCancelled
			}
		}
		c.Engine.Clock().Sleep(d)
		return nil
	}

	// resumeFlow wakes a passivated execution: the store resurrects it
	// under its original id with variables and checkpoints restored,
	// and (unless resume=false) a paused flow is un-paused. Triggers
	// use this as their action when the event a sleeping flow waits
	// for finally arrives.
	e.handlers[dgl.OpResumeFlow] = func(c *OpContext) error {
		id, err := c.Param("id")
		if err != nil {
			return err
		}
		ex, err := c.Engine.ResurrectFor(id, "trigger")
		if err != nil {
			return err
		}
		if c.ParamOr("resume", "true") == "true" {
			ex.Resume()
		}
		if v := c.ParamOr("resultVar", ""); v != "" {
			c.Scope.Set(v, expr.String(ex.ID))
		}
		return nil
	}

	e.handlers[dgl.OpSetVariable] = func(c *OpContext) error {
		name, err := c.Param("name")
		if err != nil {
			return err
		}
		// "expr" is evaluated in the scope (read raw — the evaluator
		// resolves $variables itself); "value" is taken literally after
		// the usual interpolation.
		if src, ok := c.Raw["expr"]; ok {
			v, err := expr.EvalString(src, c.Scope)
			if err != nil {
				return fmt.Errorf("matrix: setVariable %s: %w", name, err)
			}
			c.Scope.Set(name, v)
			return nil
		}
		v, ok := c.Params["value"]
		if !ok {
			return fmt.Errorf("matrix: setVariable %s needs value or expr", name)
		}
		c.Scope.Set(name, expr.String(v))
		return nil
	}

	e.handlers[dgl.OpMakeCollection] = func(c *OpContext) error {
		path, err := c.Param("path")
		if err != nil {
			return err
		}
		return c.Grid.CreateCollectionAll(c.User, path)
	}

	e.handlers[dgl.OpIngest] = func(c *OpContext) error {
		path, err := c.Param("path")
		if err != nil {
			return err
		}
		res, err := c.Param("resource")
		if err != nil {
			return err
		}
		size, err := strconv.ParseInt(c.ParamOr("size", "0"), 10, 64)
		if err != nil {
			return fmt.Errorf("matrix: ingest %s: bad size: %w", path, err)
		}
		var data []byte
		if s, ok := c.Params["data"]; ok {
			data = []byte(s)
			size = int64(len(data))
		}
		return c.Grid.Ingest(c.User, path, size, data, res)
	}

	e.handlers[dgl.OpReplicate] = func(c *OpContext) error {
		path, err := c.Param("path")
		if err != nil {
			return err
		}
		to, err := c.Param("to")
		if err != nil {
			return err
		}
		// Optional "from" pins the source replica (staged distribution).
		return c.Grid.ReplicateFrom(c.User, path, c.ParamOr("from", ""), to)
	}

	e.handlers[dgl.OpMigrate] = func(c *OpContext) error {
		path, err := c.Param("path")
		if err != nil {
			return err
		}
		from, err := c.Param("from")
		if err != nil {
			return err
		}
		to, err := c.Param("to")
		if err != nil {
			return err
		}
		return c.Grid.Migrate(c.User, path, from, to)
	}

	e.handlers[dgl.OpTrim] = func(c *OpContext) error {
		path, err := c.Param("path")
		if err != nil {
			return err
		}
		res, err := c.Param("resource")
		if err != nil {
			return err
		}
		force := c.ParamOr("force", "false") == "true"
		return c.Grid.Trim(c.User, path, res, force)
	}

	e.handlers[dgl.OpDelete] = func(c *OpContext) error {
		path, err := c.Param("path")
		if err != nil {
			return err
		}
		return c.Grid.Delete(c.User, path)
	}

	e.handlers[dgl.OpVerify] = func(c *OpContext) error {
		path, err := c.Param("path")
		if err != nil {
			return err
		}
		results, err := c.Grid.Verify(c.User, path)
		if err != nil {
			return err
		}
		bad := 0
		for _, r := range results {
			if !r.OK {
				bad++
			}
		}
		if v := c.ParamOr("resultVar", ""); v != "" {
			c.Scope.Set(v, expr.Int(int64(bad)))
		}
		if bad > 0 && c.ParamOr("failOnMismatch", "true") == "true" {
			return fmt.Errorf("matrix: verify %s: %d replica(s) failed fixity", path, bad)
		}
		return nil
	}

	e.handlers[dgl.OpSetMeta] = func(c *OpContext) error {
		path, err := c.Param("path")
		if err != nil {
			return err
		}
		attr, err := c.Param("attr")
		if err != nil {
			return err
		}
		return c.Grid.SetMeta(c.User, path, attr, c.ParamOr("value", ""))
	}

	e.handlers[dgl.OpRegister] = func(c *OpContext) error {
		path, err := c.Param("path")
		if err != nil {
			return err
		}
		res, err := c.Param("resource")
		if err != nil {
			return err
		}
		physID, err := c.Param("physicalID")
		if err != nil {
			return err
		}
		return c.Grid.RegisterInPlace(c.User, path, res, physID)
	}

	e.handlers[dgl.OpMove] = func(c *OpContext) error {
		src, err := c.Param("src")
		if err != nil {
			return err
		}
		dst, err := c.Param("dst")
		if err != nil {
			return err
		}
		return c.Grid.Move(c.User, src, dst)
	}

	// exec runs business logic: in the paper a binary staged to a grid
	// node; here a simulated computation charging cpuSeconds to a named
	// compute lane. The isolation the paper asks for holds: the flow
	// document only names the command and its requirements, never how the
	// grid schedules it.
	e.handlers[dgl.OpExec] = func(c *OpContext) error {
		command, err := c.Param("command")
		if err != nil {
			return err
		}
		if c.ParamOr("fail", "false") == "true" {
			return fmt.Errorf("matrix: exec %s: simulated failure", command)
		}
		cpu, err := strconv.ParseFloat(c.ParamOr("cpuSeconds", "1"), 64)
		if err != nil || cpu < 0 {
			return fmt.Errorf("matrix: exec %s: bad cpuSeconds", command)
		}
		lane := c.ParamOr("lane", "compute")
		d := time.Duration(cpu * float64(time.Second))
		c.Engine.Clock().Sleep(d)
		c.Grid.Meter().Charge(lane, d, 0)
		_, _ = c.Grid.Provenance().Append(provenance.Record{
			Time: c.Engine.Clock().Now(), Actor: c.User, Action: "exec",
			Target: command, FlowID: c.ExecID, StepID: c.NodeID,
			Detail: map[string]string{"lane": lane, "cpuSeconds": c.ParamOr("cpuSeconds", "1")},
		})
		if v := c.ParamOr("resultVar", ""); v != "" {
			c.Scope.Set(v, expr.String("done:"+command))
		}
		return nil
	}
}
