package matrix

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"datagridflow/internal/dgl"
	"datagridflow/internal/provenance"
)

// fakeDelegator runs every offered subflow on its own engine (standing
// in for a remote peer) and records what it was offered.
type fakeDelegator struct {
	t      *testing.T
	remote *Engine // "peer B"
	peer   string

	mu      sync.Mutex
	offered []DelegateRequest
	decline bool  // answer ErrDelegateLocal
	fail    error // machinery failure to return
}

func (f *fakeDelegator) Delegate(ctx context.Context, req DelegateRequest) (*DelegateResponse, error) {
	f.mu.Lock()
	f.offered = append(f.offered, req)
	decline, failErr := f.decline, f.fail
	f.mu.Unlock()
	if decline {
		return nil, ErrDelegateLocal
	}
	if failErr != nil {
		return nil, failErr
	}
	ex, err := f.remote.Start(req.User, req.Flow)
	if err != nil {
		return nil, err
	}
	werr := ex.Wait()
	st := ex.Status(true)
	return &DelegateResponse{Peer: f.peer, RemoteID: ex.ID, Status: &st, Err: werr}, nil
}

func (f *fakeDelegator) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.offered)
}

func newRemoteEngine(t *testing.T) *Engine {
	t.Helper()
	e := newTestEngine(t)
	// Distinguish remote execution ids.
	e.cfg.IDPrefix = "peerB:"
	return e
}

func parallelSubflows(n int) dgl.Flow {
	b := dgl.NewFlow("parent").Parallel()
	for i := 0; i < n; i++ {
		b.SubFlow(dgl.NewFlow(fmt.Sprintf("sub-%d", i)).
			Step("set", dgl.Op(dgl.OpSetVariable, map[string]string{
				"name": fmt.Sprintf("v%d", i), "value": "done",
			})))
	}
	return b.Flow()
}

func TestDelegateParallelSubflows(t *testing.T) {
	local := newTestEngine(t)
	fake := &fakeDelegator{t: t, remote: newRemoteEngine(t), peer: "peerB"}
	local.SetDelegator(fake)

	ex := mustRun(t, local, parallelSubflows(3))
	if fake.count() != 3 {
		t.Fatalf("offered %d subflows, want 3", fake.count())
	}
	// Status: each delegated child carries the remote execution id and
	// the grafted remote subtree.
	st := ex.Status(true)
	if len(st.Children) != 3 {
		t.Fatalf("children = %d", len(st.Children))
	}
	for _, ch := range st.Children {
		if !strings.HasPrefix(ch.Delegated, "peerB:") {
			t.Errorf("child %s Delegated = %q", ch.Name, ch.Delegated)
		}
		if ch.State != "succeeded" {
			t.Errorf("child %s state = %s", ch.Name, ch.State)
		}
		if len(ch.Children) == 0 || !strings.HasPrefix(ch.Children[0].ID, "peerB:") {
			t.Errorf("child %s remote subtree not grafted: %+v", ch.Name, ch.Children)
		}
	}
	// Provenance joins the hand-off on the delegating side.
	pr := local.Grid().Provenance()
	if n := pr.Count(provenance.Filter{Action: "deleg.start"}); n != 3 {
		t.Errorf("deleg.start records = %d", n)
	}
	if n := pr.Count(provenance.Filter{Action: "deleg.finish"}); n != 3 {
		t.Errorf("deleg.finish records = %d", n)
	}
	// The offered flows are self-contained: parent scope bound into the
	// variable block.
	for _, req := range fake.offered {
		if req.ParentExec != ex.ID {
			t.Errorf("ParentExec = %q", req.ParentExec)
		}
	}
}

func TestDelegateDeclineRunsInline(t *testing.T) {
	local := newTestEngine(t)
	fake := &fakeDelegator{t: t, remote: newRemoteEngine(t), peer: "peerB", decline: true}
	local.SetDelegator(fake)
	ex := mustRun(t, local, parallelSubflows(2))
	if fake.count() != 2 {
		t.Fatalf("offered %d, want 2", fake.count())
	}
	st := ex.Status(true)
	for _, ch := range st.Children {
		if ch.Delegated != "" {
			t.Errorf("declined subflow marked delegated: %+v", ch)
		}
		if ch.State != "succeeded" {
			t.Errorf("inline subflow state = %s", ch.State)
		}
	}
}

func TestDelegateMachineryFailureFailsNode(t *testing.T) {
	local := newTestEngine(t)
	boom := errors.New("placement exploded")
	fake := &fakeDelegator{t: t, remote: newRemoteEngine(t), peer: "peerB", fail: boom}
	local.SetDelegator(fake)
	ex, err := local.Run("user", parallelSubflows(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want machinery error", err)
	}
	st := ex.Status(true)
	if st.Children[0].State != "failed" {
		t.Errorf("child state = %s", st.Children[0].State)
	}
}

func TestDelegateRemoteFlowErrorPropagates(t *testing.T) {
	local := newTestEngine(t)
	fake := &fakeDelegator{t: t, remote: newRemoteEngine(t), peer: "peerB"}
	local.SetDelegator(fake)
	flow := dgl.NewFlow("parent").Parallel().
		SubFlow(dgl.NewFlow("bad").Step("s", dgl.Op(dgl.OpFail, nil))).Flow()
	ex, err := local.Run("user", flow)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err == nil {
		t.Fatal("remote flow failure did not propagate")
	}
	st := ex.Status(true)
	ch := st.Children[0]
	if ch.State != "failed" || !strings.HasPrefix(ch.Delegated, "peerB:") {
		t.Errorf("child = %+v", ch)
	}
}

func TestDelegateForeachShards(t *testing.T) {
	local := newTestEngine(t)
	fake := &fakeDelegator{t: t, remote: newRemoteEngine(t), peer: "peerB"}
	local.SetDelegator(fake)
	flow := dgl.NewFlow("fan").ForEachIn("item", "a,b,c").ParallelIterations().
		Step("touch", dgl.Op(dgl.OpSetVariable, map[string]string{
			"name": "last", "value": "$item",
		})).Flow()
	ex := mustRun(t, local, flow)
	if fake.count() != 3 {
		t.Fatalf("offered %d shards, want 3", fake.count())
	}
	// Each shard travels with its iteration variable bound.
	seen := map[string]bool{}
	for _, req := range fake.offered {
		for _, v := range req.Flow.Variables {
			if v.Name == "item" {
				seen[v.Value] = true
			}
		}
	}
	if len(seen) != 3 {
		t.Errorf("iteration vars bound = %v", seen)
	}
	st := ex.Status(true)
	if st.State != "succeeded" {
		t.Errorf("foreach state = %s", st.State)
	}
}

func TestDelegateProcedureCall(t *testing.T) {
	local := newTestEngine(t)
	remote := newRemoteEngine(t)
	proc := Procedure{
		Name:   "stage",
		Params: []string{"path"},
		Flow: dgl.NewFlow("stage-body").
			Step("ingest", dgl.Op(dgl.OpIngest, map[string]string{
				"path": "$path", "size": "10", "resource": "disk1",
			})).Flow(),
	}
	if err := local.StoreProcedure(proc); err != nil {
		t.Fatal(err)
	}
	if err := remote.StoreProcedure(proc); err != nil {
		t.Fatal(err)
	}
	fake := &fakeDelegator{t: t, remote: remote, peer: "peerB"}
	local.SetDelegator(fake)
	flow := dgl.NewFlow("caller").
		Step("call", dgl.Op(dgl.OpCall, map[string]string{
			"procedure": "stage", "path": "/grid/proc.dat", "resultVar": "rid",
		})).Flow()
	ex := mustRun(t, local, flow)
	if fake.count() != 1 {
		t.Fatalf("offered %d, want 1 procedure call", fake.count())
	}
	// The procedure ran on the remote engine, not locally.
	if !remote.Grid().Namespace().Exists("/grid/proc.dat") {
		t.Error("procedure did not run remotely")
	}
	if local.Grid().Namespace().Exists("/grid/proc.dat") {
		t.Error("procedure also ran locally")
	}
	if rid := ex.Vars()["rid"]; !strings.HasPrefix(rid, "peerB:") {
		t.Errorf("resultVar = %q, want remote id", rid)
	}
	// Unknown procedures skip delegation and fail through the local path.
	bad := dgl.NewFlow("caller2").
		Step("call", dgl.Op(dgl.OpCall, map[string]string{"procedure": "nosuch"})).Flow()
	ex2, err := local.Run("user", bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex2.Wait(); !errors.Is(err, ErrNoProcedure) {
		t.Errorf("unknown procedure = %v", err)
	}
}

// TestDelegateJournalSkip proves restart checkpointing treats a
// delegated subtree as one unit: recovery skips subflows whose
// deleg.done is journaled and re-delegates the rest.
func TestDelegateJournalSkip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "deleg.journal")

	local := newTestEngine(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	local.SetJournal(j)
	fake := &fakeDelegator{t: t, remote: newRemoteEngine(t), peer: "peerB"}
	local.SetDelegator(fake)
	ex := mustRun(t, local, parallelSubflows(2))
	// Simulate a crash after the subflows completed but before exec.end:
	// rewrite the journal without the exec.end record.
	j.Close()
	recEngine := newTestEngine(t)
	j2, err := OpenJournal(filepath.Join(dir, "recovered.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recEngine.SetJournal(j2)
	fake2 := &fakeDelegator{t: t, remote: newRemoteEngine(t), peer: "peerB"}
	recEngine.SetDelegator(fake2)

	// Replay a journal that has deleg.done for sub-0 only.
	reqDoc, err := dgl.Marshal(dgl.NewAsyncRequest("user", "", parallelSubflows(2)))
	if err != nil {
		t.Fatal(err)
	}
	crash := filepath.Join(dir, "crash.journal")
	jc, err := OpenJournal(crash)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	for _, rec := range []journalRecord{
		{Type: journalExecStart, ID: ex.ID, Time: now, Request: string(reqDoc)},
		{Type: journalDelegStart, ID: ex.ID, Time: now, Node: "/parent/sub-0"},
		{Type: journalDelegDone, ID: ex.ID, Time: now, Node: "/parent/sub-0", Peer: "peerB"},
		{Type: journalDelegStart, ID: ex.ID, Time: now, Node: "/parent/sub-1"},
	} {
		if err := jc.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	jc.Close()
	recovered, err := recEngine.RecoverFromJournal(crash)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 {
		t.Fatalf("recovered %d executions", len(recovered))
	}
	if err := recovered[0].Wait(); err != nil {
		t.Fatal(err)
	}
	// Only sub-1 was re-delegated; sub-0 was skipped wholesale.
	if fake2.count() != 1 || fake2.offered[0].Flow.Name != "sub-1" {
		t.Fatalf("re-delegations = %+v", fake2.offered)
	}
	st := recovered[0].Status(true)
	states := map[string]string{}
	for _, ch := range st.Children {
		states[ch.Name] = ch.State
	}
	if states["sub-0"] != "skipped" || states["sub-1"] != "succeeded" {
		t.Errorf("states = %v", states)
	}
	if n := recEngine.Grid().Provenance().Count(provenance.Filter{Action: "deleg.skip"}); n != 1 {
		t.Errorf("deleg.skip records = %d", n)
	}
}
