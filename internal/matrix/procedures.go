package matrix

// procedures.go implements datagrid stored procedures: "This will allow
// the datagrid stored procedures to be run from the DGMS itself rather
// than executing the procedure outside the DGMS using client side
// components" (paper §2.2). A procedure is a named, server-held DGL flow
// with declared parameters; the built-in "call" operation invokes it
// from any step, passing parameters as variables. Each invocation runs
// as its own tracked execution, so stored-procedure runs are pausable,
// auditable and queryable like any datagridflow.

import (
	"errors"
	"fmt"
	"sort"

	"datagridflow/internal/dgl"
	"datagridflow/internal/expr"
)

// Procedure is one stored procedure.
type Procedure struct {
	// Name is the call target.
	Name string
	// Params declares required parameter names; calls must supply all
	// of them (extra call parameters are passed through as variables).
	Params []string
	// Flow is the body; call parameters are injected as variables in
	// its root scope.
	Flow dgl.Flow
}

// Procedure errors.
var (
	// ErrNoProcedure reports a call to an unknown procedure.
	ErrNoProcedure = errors.New("matrix: unknown procedure")
	// ErrProcedureExists reports a duplicate StoreProcedure.
	ErrProcedureExists = errors.New("matrix: procedure already stored")
)

// StoreProcedure validates and registers a stored procedure.
func (e *Engine) StoreProcedure(p Procedure) error {
	if p.Name == "" {
		return fmt.Errorf("%w: empty procedure name", dgl.ErrInvalid)
	}
	if err := dgl.ValidateFlow(&p.Flow, e.knownOps()); err != nil {
		return fmt.Errorf("procedure %q: %w", p.Name, err)
	}
	seen := map[string]bool{}
	for _, param := range p.Params {
		if param == "" {
			return fmt.Errorf("%w: procedure %q has an empty parameter", dgl.ErrInvalid, p.Name)
		}
		if seen[param] {
			return fmt.Errorf("%w: procedure %q duplicate parameter %q", dgl.ErrInvalid, p.Name, param)
		}
		seen[param] = true
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.procs[p.Name]; ok {
		return fmt.Errorf("%w: %s", ErrProcedureExists, p.Name)
	}
	e.procs[p.Name] = p
	return nil
}

// DropProcedure removes a stored procedure.
func (e *Engine) DropProcedure(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.procs[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNoProcedure, name)
	}
	delete(e.procs, name)
	return nil
}

// Procedures lists stored procedure names, sorted.
func (e *Engine) Procedures() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.procs))
	for name := range e.procs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// CallProcedure invokes a stored procedure synchronously as the given
// user, with args bound as variables in the body's root scope. It
// returns the completed execution.
func (e *Engine) CallProcedure(user, name string, args map[string]string) (*Execution, error) {
	e.mu.RLock()
	p, ok := e.procs[name]
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoProcedure, name)
	}
	for _, required := range p.Params {
		if _, ok := args[required]; !ok {
			return nil, fmt.Errorf("matrix: procedure %s missing argument %q", name, required)
		}
	}
	req := dgl.NewRequest(user, "", p.Flow)
	exec := e.newExecution(req, nil)
	for k, v := range args {
		exec.scope.Declare(k, expr.String(v))
	}
	exec.run()
	return exec, nil
}

// registerCallOp installs the "call" operation: parameters other than
// "procedure" are passed to the procedure as arguments (after the usual
// interpolation against the calling scope). The optional "resultVar"
// receives the invocation's execution id for status queries.
func (e *Engine) registerCallOp() {
	e.handlers[dgl.OpCall] = func(c *OpContext) error {
		name, err := c.Param("procedure")
		if err != nil {
			return err
		}
		args := make(map[string]string, len(c.Params))
		for k, v := range c.Params {
			if k == "procedure" || k == "resultVar" {
				continue
			}
			args[k] = v
		}
		// Offer the invocation to the federation first: a delegated
		// procedure runs as its own execution on whichever peer placement
		// picks (docs/FEDERATION.md).
		if id, derr, handled := c.Engine.delegateProcedure(c, name, args); handled {
			if v := c.ParamOr("resultVar", ""); v != "" && id != "" {
				c.Scope.Set(v, expr.String(id))
			}
			return derr
		}
		exec, err := c.Engine.CallProcedure(c.User, name, args)
		if err != nil {
			return err
		}
		if v := c.ParamOr("resultVar", ""); v != "" {
			c.Scope.Set(v, expr.String(exec.ID))
		}
		if err := exec.Err(); err != nil {
			return fmt.Errorf("matrix: procedure %s (%s): %w", name, exec.ID, err)
		}
		return nil
	}
}
