package matrix

import (
	"errors"
	"sync"
	"testing"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/dgl"
)

// countingGovernor is a FlowGovernor test double: it counts lifecycle
// calls and can refuse admission.
type countingGovernor struct {
	mu      sync.Mutex
	begins  map[string]int
	ends    map[string]int
	charged map[string]int64
	refuse  bool
}

func newCountingGovernor() *countingGovernor {
	return &countingGovernor{
		begins:  map[string]int{},
		ends:    map[string]int{},
		charged: map[string]int64{},
	}
}

func (g *countingGovernor) BeginFlow(user string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.refuse {
		return dgferr.ErrQuota
	}
	g.begins[user]++
	return nil
}

func (g *countingGovernor) EndFlow(user string) {
	g.mu.Lock()
	g.ends[user]++
	g.mu.Unlock()
}

func (g *countingGovernor) ChargeStore(user string, n int64) {
	g.mu.Lock()
	g.charged[user] += n
	g.mu.Unlock()
}

func (g *countingGovernor) snapshot(user string) (begins, ends int, bytes int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.begins[user], g.ends[user], g.charged[user]
}

// TestGovernorBeginEndBalanced: every admitted flow charges exactly one
// BeginFlow and releases exactly one EndFlow at its terminal
// transition, whether it succeeds or is cancelled.
func TestGovernorBeginEndBalanced(t *testing.T) {
	e := newTestEngine(t)
	gov := newCountingGovernor()
	e.SetGovernor(gov)

	for i := 0; i < 3; i++ {
		mustRun(t, e, dgl.NewFlow("ok").Step("s", dgl.Op(dgl.OpNoop, nil)).Flow())
	}
	b := registerBlockingOp(e, "work", "0")
	ex := startFlow(t, e, workFlow("held", 1))
	<-b.reached
	ex.Cancel()
	_ = ex.Wait()

	begins, ends, _ := gov.snapshot("user")
	if begins != 4 || ends != 4 {
		t.Fatalf("begins/ends = %d/%d, want 4/4 (cancelled flows release too)", begins, ends)
	}
}

// TestGovernorRefusalCreatesNothing: a quota refusal surfaces as a
// typed error and leaves no execution behind — over-quota submissions
// must not leak engine state.
func TestGovernorRefusalCreatesNothing(t *testing.T) {
	e := newTestEngine(t)
	gov := newCountingGovernor()
	gov.refuse = true
	e.SetGovernor(gov)

	_, err := e.Run("user", dgl.NewFlow("no").Step("s", dgl.Op(dgl.OpNoop, nil)).Flow())
	if !errors.Is(err, dgferr.ErrQuota) {
		t.Fatalf("refused run = %v, want typed ErrQuota", err)
	}
	resp, err := e.Submit(dgl.NewAsyncRequest("user", "", dgl.NewFlow("no").Step("s", dgl.Op(dgl.OpNoop, nil)).Flow()))
	if err == nil && (resp == nil || resp.Error == "") {
		t.Fatal("refused submit produced no error")
	}
	if n := len(e.Executions()); n != 0 {
		t.Fatalf("%d executions created by refused submissions", n)
	}
	if _, ends, _ := gov.snapshot("user"); ends != 0 {
		t.Fatalf("refusal released %d admissions it never charged", ends)
	}
}

// TestGovernorStoreCharges: with a store attached, the user's durable
// footprint accrues through ChargeStore as lifecycle records append.
func TestGovernorStoreCharges(t *testing.T) {
	e, _ := newStoreEngine(t, t.TempDir())
	gov := newCountingGovernor()
	e.SetGovernor(gov)

	mustRun(t, e, dgl.NewFlow("stored").Var("k", "value").
		Step("s", dgl.Op(dgl.OpNoop, nil)).Flow())
	_, _, bytes := gov.snapshot("user")
	if bytes <= 0 {
		t.Fatalf("charged bytes = %d, want > 0", bytes)
	}
}

// TestGovernorPassivationReleases: passivating a flow out of memory
// releases its admission slot — a passivated flow is not in flight.
func TestGovernorPassivationReleases(t *testing.T) {
	e, _ := newStoreEngine(t, t.TempDir())
	gov := newCountingGovernor()
	e.SetGovernor(gov)

	b := registerBlockingOp(e, "work", "1")
	ex := startFlow(t, e, workFlow("idle-job", 3))
	<-b.reached
	if err := e.Passivate(ex.ID); err != nil {
		t.Fatal(err)
	}
	_ = ex.Wait()
	begins, ends, _ := gov.snapshot("user")
	if begins != 1 || ends != 1 {
		t.Fatalf("begins/ends = %d/%d after passivation, want 1/1", begins, ends)
	}
}
