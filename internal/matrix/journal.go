package matrix

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"datagridflow/internal/codec"
	"datagridflow/internal/dgferr"
	"datagridflow/internal/dgl"
	"datagridflow/internal/provenance"
	"datagridflow/internal/store"
)

// Journal is the engine's crash-recovery log: an append-only JSONL file
// recording, for every execution, its request document at start
// (exec.start), each step that completed (step.done, by restart-stable
// node path) and its terminal state (exec.end). An engine process that
// dies mid-run leaves executions with no exec.end record; a fresh engine
// pointed at the same file resumes exactly those with
// RecoverFromJournal, skipping the steps the journal proves are done.
//
// The journal complements provenance: provenance is the durable audit
// trail (it does not store request documents, and
// RestartFromProvenance therefore needs the caller to resupply them);
// the journal is operational state that makes recovery self-contained.
//
// Appends are group-committed (store.GroupFile): concurrent executions
// share fsyncs instead of serializing on one per record. For segment
// rotation, compaction and passivation on top of this record stream,
// attach a store.Store with SetStore — the flat journal stays as the
// simple single-file option and the wire-compatible baseline.
type Journal struct {
	g      *store.GroupFile
	binary bool
}

// JournalOptions tunes a journal.
type JournalOptions struct {
	// Binary writes records as internal/codec binary frames instead of
	// JSONL (docs/CODEC.md). A journal file holds one encoding: when the
	// file already has content, its sniffed encoding wins over this
	// option, so an existing JSONL journal keeps appending JSONL.
	Binary bool
}

// journalRecord is one journal record. The encoding is shared with the
// flow-state store (internal/store), so a journal file and a store
// segment are the same format — JSONL or binary frames, sniffed from
// the file's first byte.
type journalRecord = store.Record

// Journal record types. deleg.start marks a subflow handed to the
// federation (recovery re-runs it: the remote outcome is unknown — the
// at-least-once caveat in docs/FEDERATION.md); deleg.done marks one
// that completed remotely and is skipped on recovery like step.done.
// The snap/passivate/resurrect/prune types are written on behalf of an
// attached store (docs/STORE.md); RecoverFromJournal honours prune
// tombstones and ignores the rest.
const (
	journalExecStart     = store.TypeExecStart
	journalStepDone      = store.TypeStepDone
	journalDelegStart    = store.TypeDelegStart
	journalDelegDone     = store.TypeDelegDone
	journalExecEnd       = store.TypeExecEnd
	journalExecSnap      = store.TypeExecSnap
	journalExecPassivate = store.TypeExecPassivate
	journalExecResurrect = store.TypeExecResurrect
	journalExecPrune     = store.TypeExecPrune
)

// OpenJournal opens (creating if needed) an append-mode JSONL journal
// file (an existing file keeps its sniffed encoding).
func OpenJournal(path string) (*Journal, error) {
	return OpenJournalOptions(path, JournalOptions{})
}

// OpenJournalOptions opens a journal with explicit options.
func OpenJournalOptions(path string, opt JournalOptions) (*Journal, error) {
	binary := opt.Binary
	if st, err := os.Stat(path); err == nil && st.Size() > 0 {
		// Sticky encoding: never mix encodings within one file.
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("matrix: open journal: %w", err)
		}
		var b [1]byte
		_, rerr := io.ReadFull(f, b[:])
		f.Close()
		if rerr != nil {
			return nil, fmt.Errorf("matrix: open journal: %w", rerr)
		}
		binary = b[0] == codec.Magic
	}
	g, err := store.OpenGroupFile(path)
	if err != nil {
		return nil, fmt.Errorf("matrix: open journal: %w", err)
	}
	return &Journal{g: g, binary: binary}, nil
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error { return j.g.Close() }

// Path returns the journal's file path — pass it to RecoverFromJournal
// after a restart.
func (j *Journal) Path() string { return j.g.Path() }

// append writes one record and blocks until it is on disk — a crashed
// process must not lose acknowledged step completions. Concurrent
// appenders share a group commit.
func (j *Journal) append(rec journalRecord) error {
	if j.binary {
		enc := codec.GetEncoder()
		codec.AppendRecordFrame(enc, &rec)
		err := j.g.AppendRaw(enc.Bytes())
		codec.PutEncoder(enc)
		return err
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return j.g.Append(data)
}

// SetJournal attaches (or, with nil, detaches) the engine's execution
// journal. Every execution started afterwards records its lifecycle.
func (e *Engine) SetJournal(j *Journal) {
	if j != nil {
		j.g.SetObs(e.Obs())
	}
	e.mu.Lock()
	e.journal = j
	e.mu.Unlock()
}

// Journal returns the attached journal, or nil.
func (e *Engine) Journal() *Journal {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.journal
}

// journaling reports whether any durable record sink (journal or
// store) is attached — the gate for paying request-marshal costs.
func (e *Engine) journaling() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.journal != nil || e.store != nil
}

// journalAppend best-effort writes a lifecycle record to every attached
// sink (no-op when neither a journal nor a store is attached).
func (e *Engine) journalAppend(rec journalRecord) {
	e.mu.RLock()
	j, st := e.journal, e.store
	e.mu.RUnlock()
	if j == nil && st == nil {
		return
	}
	rec.Time = e.Clock().Now()
	if j != nil {
		if err := j.append(rec); err == nil {
			e.Obs().Counter("matrix_journal_records_total", "type", rec.Type).Inc()
		}
	}
	if st != nil {
		if err := st.Append(rec); err != nil {
			// A dead store must not stop the engine, but it must not die
			// silently either: a restart would replay stale state.
			e.Obs().Counter("store_append_errors_total").Inc()
		} else {
			e.chargeRecord(&rec)
		}
	}
}

// mirrorToJournal best-effort writes a record to the flat journal only
// (no-op when none is attached) — used for the passivation markers that
// journal-only recovery needs in order to exclude parked flows, which
// otherwise reach just the store via storeAppend.
func (e *Engine) mirrorToJournal(rec journalRecord) {
	e.mu.RLock()
	j := e.journal
	e.mu.RUnlock()
	if j == nil {
		return
	}
	rec.Time = e.Clock().Now()
	if err := j.append(rec); err == nil {
		e.Obs().Counter("matrix_journal_records_total", "type", rec.Type).Inc()
	}
}

// RecoverFromJournal replays a journal file and resumes every execution
// it proves incomplete — those with an exec.start but no exec.end, i.e.
// runs a crashed engine process abandoned mid-flight. Each is restarted
// asynchronously on this engine under a fresh id, skipping the steps
// whose step.done records survive; the returned executions are in
// journal order. Terminally failed executions are not recovered (their
// exec.end is on record) — use Restart or RestartFromProvenance for
// those. Pruned executions (exec.prune tombstones) are never recovered,
// and neither are passivated ones (exec.passivate without a later
// exec.resurrect): they live in the flow-state store and resurrect on
// demand — re-running them here from scratch would duplicate their
// work under a fresh id.
func (e *Engine) RecoverFromJournal(path string) ([]*Execution, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("%w: journal %s: %v", dgferr.ErrNotFound, path, err)
	}
	defer f.Close()
	// The body below folds records regardless of encoding;
	// scanJournalRecords sniffs JSONL vs binary frames per file.
	type pending struct {
		req        *dgl.Request
		skip       map[string]bool
		passivated bool
	}
	open := map[string]*pending{}
	var order []string
	fold := func(rec *journalRecord, line int) error {
		switch rec.Type {
		case journalExecStart:
			// Decode only: validation runs below against this engine's
			// full operation registry, not the built-ins alone.
			req, err := dgl.DecodeRequest([]byte(rec.Request))
			if err != nil {
				return fmt.Errorf("%w: journal %s record %d: %v", dgferr.ErrInvalid, path, line, err)
			}
			open[rec.ID] = &pending{req: req, skip: map[string]bool{}}
			order = append(order, rec.ID)
		case journalStepDone, journalDelegDone:
			if p := open[rec.ID]; p != nil {
				p.skip[rec.Node] = true
			}
		case journalExecPassivate:
			if p := open[rec.ID]; p != nil {
				p.passivated = true
			}
		case journalExecResurrect:
			if p := open[rec.ID]; p != nil {
				p.passivated = false
			}
		case journalExecEnd, journalExecPrune:
			delete(open, rec.ID)
		}
		return nil
	}
	if err := scanJournalRecords(path, f, fold); err != nil {
		return nil, err
	}
	var out []*Execution
	for _, id := range order {
		p, ok := open[id]
		if !ok {
			continue
		}
		if p.passivated {
			continue
		}
		if err := dgl.ValidateFlow(p.req.Flow, e.knownOps()); err != nil {
			return out, fmt.Errorf("matrix: journal %s: execution %s: %w", path, id, err)
		}
		next := e.newExecution(p.req, p.skip)
		e.Obs().Counter("matrix_recoveries_total").Inc()
		e.record(provenance.Record{
			Actor: p.req.User.Name, Action: "flow.recover",
			FlowID: next.ID, Target: p.req.Flow.Name,
			Detail: map[string]string{"prior": id, "steps-done": fmt.Sprint(len(p.skip))},
		})
		go next.run()
		out = append(out, next)
	}
	return out, nil
}

// scanJournalRecords streams every record of a journal file into fold,
// sniffing the encoding from the first byte: JSONL or binary frames. A
// torn trailing binary frame — a crash mid-append — ends the scan
// cleanly, mirroring how JSONL recovery treats an unterminated final
// line (the scanner simply never yields it as a complete record).
func scanJournalRecords(path string, f *os.File, fold func(*journalRecord, int) error) error {
	r := bufio.NewReaderSize(f, 1<<20)
	if first, err := r.Peek(1); err == nil && first[0] == codec.Magic {
		sc := codec.NewFrameScanner(r)
		n := 0
		for {
			_, payload, err := sc.Next()
			if err == io.EOF || errors.Is(err, codec.ErrTorn) {
				return nil
			}
			if err != nil {
				return fmt.Errorf("matrix: journal %s: %w", path, err)
			}
			n++
			rec, err := codec.DecodeRecord(payload)
			if err != nil {
				return fmt.Errorf("%w: journal %s record %d: %v", dgferr.ErrInvalid, path, n, err)
			}
			if err := fold(&rec, n); err != nil {
				return err
			}
		}
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("%w: journal %s line %d: %v", dgferr.ErrInvalid, path, line, err)
		}
		if err := fold(&rec, line); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("matrix: journal %s: %w", path, err)
	}
	return nil
}
