package matrix

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/dgl"
	"datagridflow/internal/expr"
	"datagridflow/internal/namespace"
	"datagridflow/internal/provenance"
)

// run drives the execution to a terminal state. It is called on the
// caller's goroutine for synchronous requests and on a fresh goroutine
// for asynchronous ones.
func (ex *Execution) run() {
	defer close(ex.done)
	defer ex.endGoverned() // release the tenant admission slot
	defer ex.delegCancel() // release any outstanding delegations
	o := ex.engine.Obs()
	o.Counter("matrix_flows_started_total").Inc()
	o.Gauge("matrix_executions_running").Add(1)
	defer o.Gauge("matrix_executions_running").Add(-1)
	ex.engine.record(provenance.Record{
		Actor: ex.req.User.Name, Action: "flow.submit",
		FlowID: ex.ID, Target: ex.req.Flow.Name,
	})
	if ex.engine.journaling() {
		// Marshalling the request document is only worth paying for
		// when a journal or store will actually persist it.
		if doc, merr := dgl.Marshal(ex.req); merr == nil {
			ex.engine.journalAppend(journalRecord{
				Type: journalExecStart, ID: ex.ID, Request: string(doc),
			})
		}
	}
	err := ex.runFlowScoped(ex.req.Flow, ex.root, ex.scope)
	ex.mu.Lock()
	ex.err = err
	ex.mu.Unlock()
	if ex.passivated.Load() {
		// Passivation unwound this run through the cancellation path;
		// the execution is not terminal — its resumable state is in
		// the store, and writing exec.end here would make recovery
		// treat it as finished. Engine.Passivate already recorded the
		// provenance event.
		return
	}
	outcome := provenance.OutcomeOK
	errText := ""
	switch {
	case err == nil:
		o.Counter("matrix_flows_succeeded_total").Inc()
	case errors.Is(err, ErrCancelled):
		o.Counter("matrix_flows_cancelled_total").Inc()
		outcome, errText = provenance.OutcomeError, err.Error()
	default:
		o.Counter("matrix_flows_failed_total").Inc()
		outcome, errText = provenance.OutcomeError, err.Error()
	}
	ex.engine.record(provenance.Record{
		Actor: ex.req.User.Name, Action: "flow.complete",
		FlowID: ex.ID, Target: ex.req.Flow.Name,
		Outcome: outcome, Err: errText,
	})
	ex.engine.journalAppend(journalRecord{
		Type: journalExecEnd, ID: ex.ID, Err: errText,
	})
}

// relID strips the execution prefix from a node id, yielding the
// restart-stable node path.
func (ex *Execution) relID(id string) string {
	return strings.TrimPrefix(id, ex.ID)
}

func (ex *Execution) now() time.Time { return ex.engine.Clock().Now() }

// runFlow interprets one flow into the status node n with the enclosing
// variable environment parent, pushing a fresh scope for the flow.
func (ex *Execution) runFlow(f *dgl.Flow, n *node, parent *Scope) error {
	return ex.runFlowScoped(f, n, NewScope(parent))
}

// runFlowScoped interprets one flow using scope as the flow's own scope.
// The root flow runs directly in the execution scope so its variables are
// visible through Execution.Vars.
func (ex *Execution) runFlowScoped(f *dgl.Flow, n *node, scope *Scope) error {
	if err := ex.ctrl.checkpoint(); err != nil {
		n.setState(StateCancelled, ex.now())
		return err
	}
	if err := scope.declareAll(f.Variables); err != nil {
		n.setError(err)
		n.setState(StateFailed, ex.now())
		return err
	}
	if n == ex.root && len(ex.restoreVars) > 0 {
		// Resurrection: snapshot variables supersede the flow's own
		// declarations — setVariable results from skipped steps must
		// survive, not reset to their declared initial values.
		for name, val := range ex.restoreVars {
			scope.Declare(name, expr.String(val))
		}
		ex.restoreVars = nil
	}
	n.setState(StateRunning, ex.now())
	o := ex.engine.Obs()
	o.HistogramBuckets("matrix_scope_depth", scopeDepthBuckets).Observe(float64(scope.Depth()))
	o.StartSpan("flow", f.Name, n.id, map[string]string{"control": string(f.Logic.Control)})
	ex.engine.record(provenance.Record{
		Actor: ex.req.User.Name, Action: "flow.start",
		FlowID: ex.ID, StepID: n.id, Target: f.Name,
	})
	fail := func(err error) error {
		n.setError(err)
		state := StateFailed
		if errors.Is(err, ErrCancelled) {
			state = StateCancelled
		}
		n.setState(state, ex.now())
		o.EndSpan("flow", f.Name, n.id, map[string]string{"state": string(state)})
		return err
	}
	if err := ex.fireRule(f.Logic.Rules, dgl.RuleBeforeEntry, scope, n.id); err != nil {
		return fail(err)
	}
	var err error
	switch f.Logic.Control {
	case dgl.Sequential:
		err = ex.runChildrenSequential(f, n, scope)
	case dgl.Parallel:
		err = ex.runChildrenParallel(f, n, scope)
	case dgl.While:
		err = ex.runWhile(f, n, scope)
	case dgl.ForEach:
		err = ex.runForEach(f, n, scope)
	case dgl.Switch:
		err = ex.runSwitch(f, n, scope)
	default:
		err = fmt.Errorf("%w: unknown control %q", dgl.ErrInvalid, f.Logic.Control)
	}
	if err != nil {
		return fail(err)
	}
	if err := ex.fireRule(f.Logic.Rules, dgl.RuleAfterExit, scope, n.id); err != nil {
		return fail(err)
	}
	n.setState(StateSucceeded, ex.now())
	o.EndSpan("flow", f.Name, n.id, map[string]string{"state": string(StateSucceeded)})
	ex.engine.record(provenance.Record{
		Actor: ex.req.User.Name, Action: "flow.finish",
		FlowID: ex.ID, StepID: n.id, Target: f.Name,
	})
	return nil
}

// scopeDepthBuckets bound the matrix_scope_depth histogram in scope
// levels (not seconds): deeply nested flow documents surface here.
var scopeDepthBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

// childNode allocates a status node for a child under parent.
func childNode(parent *node, name, kind string) *node {
	c := &node{id: parent.id + "/" + name, name: name, kind: kind, state: StatePending}
	parent.addChild(c)
	return c
}

// runChild dispatches one child (sub-flow or step) under the given node.
func (ex *Execution) runChild(f *dgl.Flow, i int, under *node, scope *Scope) error {
	if i < len(f.Flows) {
		child := &f.Flows[i]
		return ex.runFlow(child, childNode(under, child.Name, "flow"), scope)
	}
	st := &f.Steps[i-len(f.Flows)]
	return ex.runStep(st, childNode(under, st.Name, "step"), scope)
}

// childCount is the number of children (flows xor steps by validation).
func childCount(f *dgl.Flow) int { return len(f.Flows) + len(f.Steps) }

func (ex *Execution) runChildrenSequential(f *dgl.Flow, under *node, scope *Scope) error {
	for i := 0; i < childCount(f); i++ {
		if err := ex.runChild(f, i, under, scope); err != nil {
			return err
		}
	}
	return nil
}

func (ex *Execution) runChildrenParallel(f *dgl.Flow, under *node, scope *Scope) error {
	n := childCount(f)
	sem := make(chan struct{}, ex.engine.cfg.MaxParallel)
	errs := make([]error, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = ex.runChildDelegable(f, i, under, scope)
			done <- i
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	return errors.Join(errs...)
}

// runChildDelegable runs one parallel child, offering child *flows* to
// the delegation plane first — parallel branches are the natural
// distribution unit (steps and sequential children always run locally).
func (ex *Execution) runChildDelegable(f *dgl.Flow, i int, under *node, scope *Scope) error {
	if i < len(f.Flows) && ex.engine.delegator() != nil {
		child := &f.Flows[i]
		n := childNode(under, child.Name, "flow")
		if handled, err := ex.maybeDelegate(child, n, scope); handled {
			return err
		}
		return ex.runFlow(child, n, scope)
	}
	return ex.runChild(f, i, under, scope)
}

// iterNode wraps one loop iteration so each pass gets distinct,
// queryable status ids ("...ingest[3]/step").
func iterNode(parent *node, i int) *node {
	name := fmt.Sprintf("%s[%d]", parent.name, i)
	c := &node{id: fmt.Sprintf("%s[%d]", parent.id, i), name: name, kind: "flow", state: StatePending}
	parent.addChild(c)
	return c
}

func (ex *Execution) runIteration(f *dgl.Flow, parent *node, i int, scope *Scope) error {
	in := iterNode(parent, i)
	in.setState(StateRunning, ex.now())
	if err := ex.runChildrenSequential(f, in, scope); err != nil {
		in.setError(err)
		if errors.Is(err, ErrCancelled) {
			in.setState(StateCancelled, ex.now())
		} else {
			in.setState(StateFailed, ex.now())
		}
		return err
	}
	in.setState(StateSucceeded, ex.now())
	return nil
}

func (ex *Execution) runWhile(f *dgl.Flow, n *node, scope *Scope) error {
	cond, err := expr.Parse(f.Logic.Condition)
	if err != nil {
		return err
	}
	for i := 0; ; i++ {
		if err := ex.ctrl.checkpoint(); err != nil {
			return err
		}
		if i >= ex.engine.cfg.MaxLoopIterations {
			return fmt.Errorf("matrix: while loop in %s exceeded %d iterations", f.Name, i)
		}
		ok, err := cond.EvalBool(scope)
		if err != nil {
			return fmt.Errorf("matrix: while condition in %s: %w", f.Name, err)
		}
		if !ok {
			return nil
		}
		if err := ex.runIteration(f, n, i, scope); err != nil {
			return err
		}
	}
}

func (ex *Execution) runForEach(f *dgl.Flow, n *node, scope *Scope) error {
	it := f.Logic.Iterate
	items, err := ex.iterItems(it, scope)
	if err != nil {
		return err
	}
	if it.Parallel {
		return ex.runForEachParallel(f, n, scope, items)
	}
	for i, item := range items {
		if err := ex.ctrl.checkpoint(); err != nil {
			return err
		}
		iterScope := NewScope(scope)
		iterScope.Declare(it.Var, expr.String(item))
		if err := ex.runIteration(f, n, i, iterScope); err != nil {
			return err
		}
	}
	return nil
}

// runForEachParallel fans iterations out under the engine's parallelism
// cap. All iterations run to completion; errors join.
func (ex *Execution) runForEachParallel(f *dgl.Flow, n *node, scope *Scope, items []string) error {
	it := f.Logic.Iterate
	sem := make(chan struct{}, ex.engine.cfg.MaxParallel)
	errs := make([]error, len(items))
	done := make(chan int, len(items))
	// Allocate iteration nodes up front so status ids stay ordered.
	nodes := make([]*node, len(items))
	for i := range items {
		nodes[i] = iterNode(n, i)
	}
	for i, item := range items {
		go func(i int, item string) {
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ex.ctrl.checkpoint(); err != nil {
				nodes[i].setState(StateCancelled, ex.now())
				errs[i] = err
				done <- i
				return
			}
			iterScope := NewScope(scope)
			iterScope.Declare(it.Var, expr.String(item))
			in := nodes[i]
			if ex.engine.delegator() != nil {
				// Parallel foreach shards delegate as synthetic sequential
				// flows with the iteration variable bound.
				if handled, err := ex.maybeDelegate(shardFlow(f, i), in, iterScope); handled {
					errs[i] = err
					done <- i
					return
				}
			}
			in.setState(StateRunning, ex.now())
			if err := ex.runChildrenSequential(f, in, iterScope); err != nil {
				in.setError(err)
				if errors.Is(err, ErrCancelled) {
					in.setState(StateCancelled, ex.now())
				} else {
					in.setState(StateFailed, ex.now())
				}
				errs[i] = err
			} else {
				in.setState(StateSucceeded, ex.now())
			}
			done <- i
		}(i, item)
	}
	for range items {
		<-done
	}
	return errors.Join(errs...)
}

// iterItems materializes the forEach item list: an inline list, a repeat
// count, or the paths matched by a datagrid query evaluated *now* — late
// binding of the working set, per the paper.
func (ex *Execution) iterItems(it *dgl.Iterate, scope *Scope) ([]string, error) {
	switch {
	case it.In != "":
		raw, err := expr.Interpolate(it.In, scope)
		if err != nil {
			return nil, err
		}
		parts := strings.Split(raw, ",")
		items := make([]string, 0, len(parts))
		for _, p := range parts {
			if t := strings.TrimSpace(p); t != "" {
				items = append(items, t)
			}
		}
		return items, nil
	case it.Times > 0:
		items := make([]string, it.Times)
		for i := range items {
			items[i] = fmt.Sprint(i)
		}
		return items, nil
	case it.Query != nil:
		q := namespace.Query{
			Scope:       it.Query.Scope,
			ObjectsOnly: it.Query.ObjectsOnly,
		}
		for _, c := range it.Query.Conditions {
			val, err := expr.Interpolate(c.Value, scope)
			if err != nil {
				return nil, err
			}
			q.Conditions = append(q.Conditions, namespace.Condition{
				Attr: c.Attr, Op: namespace.QueryOp(c.Op), Value: val,
			})
		}
		entries, err := ex.engine.grid.Search(ex.req.User.Name, q)
		if err != nil {
			return nil, err
		}
		items := make([]string, len(entries))
		for i, e := range entries {
			items[i] = e.Path
		}
		return items, nil
	default:
		return nil, nil
	}
}

func (ex *Execution) runSwitch(f *dgl.Flow, n *node, scope *Scope) error {
	sel, err := expr.EvalString(f.Logic.Condition, scope)
	if err != nil {
		return fmt.Errorf("matrix: switch condition in %s: %w", f.Name, err)
	}
	want := sel.AsString()
	chosen := -1
	names := f.ChildNames()
	for i, name := range names {
		if name == want {
			chosen = i
			break
		}
	}
	if chosen < 0 {
		for i, name := range names {
			if name == "default" {
				chosen = i
				break
			}
		}
	}
	for i, name := range names {
		if i == chosen {
			continue
		}
		skipped := childNode(n, name, childKind(f, i))
		skipped.setState(StateSkipped, ex.now())
	}
	if chosen < 0 {
		return nil // no arm matched and no default: nothing to do
	}
	return ex.runChild(f, chosen, n, scope)
}

func childKind(f *dgl.Flow, i int) string {
	if i < len(f.Flows) {
		return "flow"
	}
	return "step"
}

// runStep executes one step with fault handling and rules.
func (ex *Execution) runStep(st *dgl.Step, n *node, parent *Scope) error {
	if err := ex.ctrl.checkpoint(); err != nil {
		n.setState(StateCancelled, ex.now())
		return err
	}
	o := ex.engine.Obs()
	// Restart checkpointing: steps that succeeded in the prior run are
	// skipped wholesale.
	if ex.skip[ex.relID(n.id)] {
		n.setState(StateSkipped, ex.now())
		o.Counter("matrix_checkpoint_skips_total").Inc()
		ex.engine.record(provenance.Record{
			Actor: ex.req.User.Name, Action: "step.skip",
			FlowID: ex.ID, StepID: n.id, Target: st.Name,
			Outcome: provenance.OutcomeSkipped,
		})
		ex.engine.journalAppend(journalRecord{
			Type: journalStepDone, ID: ex.ID, Node: ex.relID(n.id),
		})
		ex.noteProgress()
		return nil
	}
	// Steps without their own variable block execute directly in the
	// enclosing flow scope, so results they Set (resultVar and friends)
	// bind where the rest of the flow can see them.
	scope := parent
	if len(st.Variables) > 0 {
		scope = NewScope(parent)
		if err := scope.declareAll(st.Variables); err != nil {
			n.setError(err)
			n.setState(StateFailed, ex.now())
			return err
		}
	}
	// Virtual-data memoization (docs/VDATA.md): a pure step whose
	// derivation the catalog already holds skips execution entirely. The
	// binding is resolved once, before execution, so a post-success
	// publish uses the exact key the lookup hashed.
	var vd *vdataBinding
	if st.Pure {
		if vd = ex.vdataResolve(st, scope); vd != nil && ex.vdataHit(vd, st, n, scope) {
			return nil
		}
	}
	op := st.Operation.Type
	started := ex.now()
	n.setState(StateRunning, started)
	o.Counter("matrix_steps_total", "op", op).Inc()
	o.StartSpan("step", st.Name, n.id, map[string]string{"op": op})
	finish := func(state State) {
		now := ex.now()
		o.Histogram("matrix_step_seconds", "op", op).Observe(now.Sub(started).Seconds())
		o.EndSpan("step", st.Name, n.id, map[string]string{"op": op, "state": string(state)})
	}
	ex.engine.record(provenance.Record{
		Actor: ex.req.User.Name, Action: "step.start",
		FlowID: ex.ID, StepID: n.id, Target: st.Name,
	})
	fail := func(err error) error {
		n.setError(err)
		n.setState(StateFailed, ex.now())
		o.Counter("matrix_step_failures_total", "op", op).Inc()
		finish(StateFailed)
		ex.engine.record(provenance.Record{
			Actor: ex.req.User.Name, Action: "step.finish",
			FlowID: ex.ID, StepID: n.id, Target: st.Name,
			Outcome: provenance.OutcomeError, Err: err.Error(),
		})
		return err
	}
	if err := ex.fireRule(st.Rules, dgl.RuleBeforeEntry, scope, n.id); err != nil {
		return fail(err)
	}
	attempts := 1
	if st.OnError == dgl.OnErrorRetry {
		attempts = st.Retries + 1
	}
	timing := st.Timing()
	var opErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if d := retryDelay(timing, n.id, attempt); d > 0 {
				o.Histogram("retry_backoff_seconds", "op", op).Observe(d.Seconds())
				ex.engine.Clock().Sleep(d)
			}
			o.Counter("matrix_step_retries_total", "op", op).Inc()
			ex.engine.record(provenance.Record{
				Actor: ex.req.User.Name, Action: "step.retry",
				FlowID: ex.ID, StepID: n.id, Target: st.Name,
				Detail: map[string]string{"attempt": fmt.Sprint(attempt + 1)},
			})
		}
		attemptStart := ex.now()
		opErr = ex.execOperation(&st.Operation, scope, n.id)
		if timing.Timeout > 0 {
			// Under the virtual clock an operation cannot be interrupted
			// mid-flight; the budget is checked against the virtual time
			// the attempt consumed, and overruns fail with the (retryable)
			// timeout class even if the operation eventually returned.
			if el := ex.now().Sub(attemptStart); el > timing.Timeout {
				o.Counter("matrix_step_timeouts_total", "op", op).Inc()
				opErr = fmt.Errorf("%w: step %s attempt %d took %v (budget %v)",
					dgferr.ErrTimeout, st.Name, attempt+1, el, timing.Timeout)
			}
		}
		if opErr == nil {
			break
		}
		if !dgferr.Retryable(opErr) {
			break
		}
		if err := ex.ctrl.checkpoint(); err != nil {
			n.setState(StateCancelled, ex.now())
			finish(StateCancelled)
			return err
		}
	}
	if opErr != nil && errors.Is(opErr, ErrCancelled) {
		// The operation itself was interrupted (a cancellable sleep,
		// typically — the passivation path): the step is cancelled, not
		// failed, so a resurrected run re-executes it cleanly.
		n.setState(StateCancelled, ex.now())
		finish(StateCancelled)
		return opErr
	}
	if opErr != nil && st.OnError == dgl.OnErrorRetry && dgferr.Retryable(opErr) {
		o.Counter("retry_exhausted_total", "op", op).Inc()
		opErr = fmt.Errorf("%w: step %s after %d attempts: %w",
			dgferr.ErrRetryExhausted, st.Name, attempts, opErr)
	}
	if opErr != nil {
		if st.OnError == dgl.OnErrorContinue {
			// Record the failure but do not propagate: the flow carries on.
			n.setError(opErr)
			n.setState(StateFailed, ex.now())
			o.Counter("matrix_step_failures_total", "op", op).Inc()
			finish(StateFailed)
			ex.engine.record(provenance.Record{
				Actor: ex.req.User.Name, Action: "step.finish",
				FlowID: ex.ID, StepID: n.id, Target: st.Name,
				Outcome: provenance.OutcomeError, Err: opErr.Error(),
				Detail: map[string]string{"policy": dgl.OnErrorContinue},
			})
			return nil
		}
		return fail(opErr)
	}
	if err := ex.fireRule(st.Rules, dgl.RuleAfterExit, scope, n.id); err != nil {
		return fail(err)
	}
	n.setState(StateSucceeded, ex.now())
	finish(StateSucceeded)
	if vd != nil {
		ex.vdataPublish(vd, st, n, scope)
	}
	ex.engine.record(provenance.Record{
		Actor: ex.req.User.Name, Action: "step.finish",
		FlowID: ex.ID, StepID: n.id, Target: st.Name,
	})
	ex.engine.journalAppend(journalRecord{
		Type: journalStepDone, ID: ex.ID, Node: ex.relID(n.id),
	})
	ex.noteProgress()
	return nil
}

// noteProgress records step progress: the execution has new state worth
// snapshotting (dirty) and is not idle (lastActive) — the two signals
// SnapshotAll and PassivateIdle consult.
func (ex *Execution) noteProgress() {
	ex.dirty.Store(true)
	ex.lastActive.Store(ex.engine.Clock().Now().UnixNano())
}

// retryDelay computes the virtual-clock pause before retry attempt
// (1-based): exponential growth from the base backoff, capped by
// MaxBackoff, plus deterministic jitter of up to 25% hashed from the
// node id and attempt number — so a seeded simulation replays its
// backoff schedule identically.
func retryDelay(t dgl.RetryTiming, nodeID string, attempt int) time.Duration {
	if t.Backoff <= 0 {
		return 0
	}
	d := t.Backoff
	for i := 1; i < attempt && d < 24*time.Hour; i++ {
		d *= 2
	}
	if t.MaxBackoff > 0 && d > t.MaxBackoff {
		d = t.MaxBackoff
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%d", nodeID, attempt)
	frac := float64(h.Sum64()%1024) / 4096 // [0, 0.25)
	return d + time.Duration(float64(d)*frac)
}

// fireRule evaluates the named rule (if declared): the condition's string
// value selects the action to execute, per the paper's UserDefinedRule
// semantics ("The Actions are executed if the condition statement
// evaluates to the name of the action"). Boolean conditions select the
// actions named "true"/"false".
func (ex *Execution) fireRule(rules []dgl.Rule, name string, scope *Scope, nodeID string) error {
	rule, ok := dgl.FindRule(rules, name)
	if !ok {
		return nil
	}
	return ex.fireRuleDirect(rule, scope, nodeID)
}

func (ex *Execution) fireRuleDirect(rule dgl.Rule, scope *Scope, nodeID string) error {
	v, err := expr.EvalString(rule.Condition, scope)
	if err != nil {
		return fmt.Errorf("matrix: rule %q condition: %w", rule.Name, err)
	}
	want := v.AsString()
	for _, a := range rule.Actions {
		if a.Name != want {
			continue
		}
		if a.Operation == nil {
			return nil
		}
		if err := ex.execOperation(a.Operation, scope, nodeID+"#"+rule.Name); err != nil {
			return fmt.Errorf("matrix: rule %q action %q: %w", rule.Name, a.Name, err)
		}
		return nil
	}
	return nil // no action matched: nothing to execute
}

// execOperation interpolates the operation's parameters against the live
// scope (late binding) and dispatches to the registered handler.
func (ex *Execution) execOperation(op *dgl.Operation, scope *Scope, nodeID string) error {
	h, ok := ex.engine.handler(op.Type)
	if !ok {
		return fmt.Errorf("matrix: no handler for operation %q", op.Type)
	}
	raw := op.ParamMap()
	params, err := expr.InterpolateAll(raw, scope)
	if err != nil {
		return err
	}
	return h(&OpContext{
		Engine: ex.engine,
		Grid:   ex.engine.grid,
		User:   ex.req.User.Name,
		Params: params,
		Raw:    raw,
		Scope:  scope,
		ExecID: ex.ID,
		NodeID: nodeID,
		Cancel: ex.ctrl.cancelled(),
	})
}
