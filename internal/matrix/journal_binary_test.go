package matrix

import (
	"os"
	"path/filepath"
	"testing"

	"datagridflow/internal/codec"
	"datagridflow/internal/dgl"
)

// TestJournalBinaryRecovery journals an interrupted flow in the binary
// encoding and recovers it with a fresh engine: the file must actually
// be binary frames, and recovery must skip the steps the journal proves
// done — the same contract TestJournalCrashRecovery pins for JSONL.
func TestJournalBinaryRecovery(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "exec.journal")

	e1 := newTestEngine(t)
	ran1 := map[string]int{}
	e1.RegisterOp("work", func(c *OpContext) error {
		ran1[c.Params["i"]]++
		return nil
	})
	j1, err := OpenJournalOptions(jpath, JournalOptions{Binary: true})
	if err != nil {
		t.Fatal(err)
	}
	e1.SetJournal(j1)
	b := dgl.NewFlow("job")
	b.Step("s0", dgl.Op("work", map[string]string{"i": "0"}))
	b.Step("s1", dgl.Op("work", map[string]string{"i": "1"}))
	ex, err := e1.Start("user", b.Flow())
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	// Append an exec.start with no exec.end — an abandoned run — then
	// "crash" without closing cleanly beyond the group commit.
	b2 := dgl.NewFlow("abandoned")
	b2.Step("s0", dgl.Op("work", map[string]string{"i": "0"}))
	req := dgl.NewAsyncRequest("user", "", b2.Flow())
	reqXML, err := dgl.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.append(journalRecord{Type: journalExecStart, ID: "dgf-dead", Request: string(reqXML)}); err != nil {
		t.Fatal(err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !codec.IsBinary(data) {
		t.Fatalf("journal is not binary: % x", data[:3])
	}

	e2 := newTestEngine(t)
	ran2 := 0
	e2.RegisterOp("work", func(c *OpContext) error { ran2++; return nil })
	recovered, err := e2.RecoverFromJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 {
		t.Fatalf("recovered %d executions, want 1 (only the abandoned run)", len(recovered))
	}
	if err := recovered[0].Wait(); err != nil {
		t.Fatal(err)
	}
	if ran2 != 1 {
		t.Fatalf("recovered engine ran %d steps, want 1", ran2)
	}
}

// TestJournalStickyEncoding opens an existing JSONL journal with the
// Binary option: the file's encoding wins, appends stay JSONL, and the
// file remains recoverable.
func TestJournalStickyEncoding(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "exec.journal")
	j, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.append(journalRecord{Type: journalExecEnd, ID: "dgf-1"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournalOptions(jpath, JournalOptions{Binary: true})
	if err != nil {
		t.Fatal(err)
	}
	if j2.binary {
		t.Fatal("existing JSONL journal reopened as binary")
	}
	if err := j2.append(journalRecord{Type: journalExecEnd, ID: "dgf-2"}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if codec.IsBinary(data) || data[0] != '{' {
		t.Fatalf("mixed encodings in journal: % x", data[:3])
	}
	e := newTestEngine(t)
	if _, err := e.RecoverFromJournal(jpath); err != nil {
		t.Fatal(err)
	}
}
