package matrix

// governor.go is the engine half of the multi-tenant control plane
// (internal/tenant, docs/TENANCY.md). A FlowGovernor observes the
// engine's resource lifecycle at three points — flow admission, the
// terminal transition, and durable store appends — and may refuse
// admission with a typed quota error. The engine stays decoupled from
// the tenant package: tenant.Registry satisfies the interface, and a
// nil governor (the default) leaves untenanted engines unchanged.

// FlowGovernor meters per-user resource consumption. Implementations
// must be safe for concurrent use; every method may be called from
// multiple executions at once.
type FlowGovernor interface {
	// BeginFlow admits one flow for the user or refuses it with a
	// typed error (dgferr.ErrQuota). On success the engine owes a
	// matching EndFlow when the flow reaches a terminal state or is
	// passivated out of memory.
	BeginFlow(user string) error
	// EndFlow releases one admission charged by BeginFlow.
	EndFlow(user string)
	// ChargeStore accounts n bytes of durable store footprint to the
	// user. Negative n reclaims (compaction). Charges are
	// accounting-only: records of admitted flows are never dropped —
	// the byte quota gates future BeginFlow calls instead.
	ChargeStore(user string, n int64)
}

// SetGovernor installs (or, with nil, removes) the engine's flow
// governor. Install it before traffic: flows admitted while no
// governor was set are not retroactively charged.
func (e *Engine) SetGovernor(g FlowGovernor) {
	e.mu.Lock()
	e.governor = g
	e.mu.Unlock()
}

// admitGoverned charges the governor for one flow admission on behalf
// of user. It returns true when a charge was made (the execution must
// then carry the governed flag so the terminal transition releases
// exactly one admission).
func (e *Engine) admitGoverned(user string) (bool, error) {
	e.mu.RLock()
	g := e.governor
	e.mu.RUnlock()
	if g == nil {
		return false, nil
	}
	if err := g.BeginFlow(user); err != nil {
		return false, err
	}
	return true, nil
}

// endGoverned releases the admission charged by admitGoverned, exactly
// once per execution. Called from the run goroutine's unwind — both
// the terminal transition and the passivation early-return, since a
// passivated flow no longer occupies an in-flight slot.
func (ex *Execution) endGoverned() {
	if !ex.governed.CompareAndSwap(true, false) {
		return
	}
	ex.engine.mu.RLock()
	g := ex.engine.governor
	ex.engine.mu.RUnlock()
	if g != nil {
		g.EndFlow(ex.req.User.Name)
	}
}

// recordCost estimates the durable footprint of one store record: the
// variable-length payload fields plus a fixed envelope overhead. The
// estimate tracks the binary segment encoding closely enough for quota
// accounting without re-encoding every record a second time.
func recordCost(rec *journalRecord) int64 {
	n := 64 + len(rec.Type) + len(rec.ID) + len(rec.Request) +
		len(rec.Node) + len(rec.Peer) + len(rec.Err)
	for k, v := range rec.Vars {
		n += len(k) + len(v) + 8
	}
	for _, d := range rec.Done {
		n += len(d) + 4
	}
	return int64(n)
}

// chargeRecord accounts one store-bound record to the owning
// execution's user. Records whose execution is no longer resident
// (prune markers, post-passivation bookkeeping) go uncharged — the
// estimate is deliberately conservative in the tenant's favour.
func (e *Engine) chargeRecord(rec *journalRecord) {
	e.mu.RLock()
	g := e.governor
	var owner string
	if g != nil {
		if ex, ok := e.execs[rec.ID]; ok {
			owner = ex.req.User.Name
		}
	}
	e.mu.RUnlock()
	if g == nil || owner == "" {
		return
	}
	g.ChargeStore(owner, recordCost(rec))
}
