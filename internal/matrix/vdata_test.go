package matrix

import (
	"testing"

	"datagridflow/internal/dgl"
	"datagridflow/internal/dgms"
	"datagridflow/internal/namespace"
	"datagridflow/internal/obs"
	"datagridflow/internal/provenance"
	"datagridflow/internal/vdata"
	"datagridflow/internal/vfs"
)

// newVdataEngine builds an engine with its own metrics registry and a
// memory-only virtual-data catalog attached.
func newVdataEngine(t testing.TB) (*Engine, *vdata.Catalog, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	g := dgms.New(dgms.Options{Obs: reg})
	if err := g.RegisterResource(vfs.New("disk1", "sdsc", vfs.Disk, 0)); err != nil {
		t.Fatal(err)
	}
	if err := g.CreateCollectionAll(g.Admin(), "/grid"); err != nil {
		t.Fatal(err)
	}
	if err := g.Namespace().SetPermission("/grid", "user", namespace.PermWrite); err != nil {
		t.Fatal(err)
	}
	cat, err := vdata.Open("", reg)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(g)
	e.SetVdata(cat)
	return e, cat, reg
}

func pureExecFlow(cpu string) dgl.Flow {
	return dgl.NewFlow("derive").
		PureStep("fft", dgl.Op(dgl.OpExec, map[string]string{
			"command": "fft /grid/raw", "cpuSeconds": cpu, "resultVar": "spectrum",
		}), "/grid/derived/spectrum.dat").
		Flow()
}

func TestVdataMemoizesPureStep(t *testing.T) {
	e, cat, reg := newVdataEngine(t)

	ex1, err := e.Run("user", pureExecFlow("10"))
	if err != nil || ex1.Err() != nil {
		t.Fatalf("first run: %v / %v", err, ex1.Err())
	}
	if got := reg.Counter("vdata_misses_total").Value(); got != 1 {
		t.Fatalf("misses after cold run = %d", got)
	}
	if cat.Len() != 1 {
		t.Fatalf("catalog entries = %d, want 1", cat.Len())
	}
	coldEnd := e.Clock().Now()

	ex2, err := e.Run("user", pureExecFlow("10"))
	if err != nil || ex2.Err() != nil {
		t.Fatalf("second run: %v / %v", err, ex2.Err())
	}
	if got := reg.Counter("vdata_hits_total").Value(); got != 1 {
		t.Fatalf("hits after warm run = %d", got)
	}
	if got := reg.Counter("scheduler_virtual_data_hits_total").Value(); got != 1 {
		t.Fatalf("scheduler_virtual_data_hits_total = %d", got)
	}
	// The memoized run must not charge the 10 virtual cpu-seconds again.
	if warm := e.Clock().Now().Sub(coldEnd); warm.Seconds() >= 10 {
		t.Fatalf("warm run consumed %v of virtual time", warm)
	}
	st := ex2.Status(true)
	if st.Children[0].State != string(StateSkipped) {
		t.Fatalf("warm step state = %s, want skipped", st.Children[0].State)
	}
	// The grafted result variable is visible in the flow scope.
	if got := ex2.scope.Snapshot()["spectrum"]; got != "done:fft /grid/raw" {
		t.Fatalf("grafted result = %q", got)
	}
	// A vdata.hit provenance record marks the graft.
	if n := e.Grid().Provenance().Count(provenance.Filter{Action: "vdata.hit"}); n != 1 {
		t.Fatalf("vdata.hit provenance records = %d", n)
	}
}

func TestVdataTenantScoped(t *testing.T) {
	e, _, reg := newVdataEngine(t)
	if err := e.Grid().Namespace().SetPermission("/grid", "other", namespace.PermWrite); err != nil {
		t.Fatal(err)
	}
	ex1, err := e.Run("user", pureExecFlow("1"))
	if err != nil || ex1.Err() != nil {
		t.Fatalf("first run: %v / %v", err, ex1.Err())
	}
	// The same derivation under another tenant must not hit.
	ex2, err := e.Run("other", pureExecFlow("1"))
	if err != nil || ex2.Err() != nil {
		t.Fatalf("cross-tenant run: %v / %v", err, ex2.Err())
	}
	if got := reg.Counter("vdata_hits_total").Value(); got != 0 {
		t.Fatalf("cross-tenant hits = %d, want 0", got)
	}
	if got := reg.Counter("vdata_misses_total").Value(); got != 2 {
		t.Fatalf("misses = %d, want 2", got)
	}
}

func TestVdataRemoteHookGrafts(t *testing.T) {
	e, cat, reg := newVdataEngine(t)
	flow := pureExecFlow("5")
	// Precompute the key the engine will derive, by publishing through a
	// sibling engine and stealing its entry.
	sib, sibCat, _ := newVdataEngine(t)
	ex, err := sib.Run("user", flow)
	if err != nil || ex.Err() != nil {
		t.Fatalf("sibling run: %v / %v", err, ex.Err())
	}
	keys := sibCat.Keys()
	if len(keys) != 1 {
		t.Fatalf("sibling catalog keys = %v", keys)
	}
	ent, ok := sibCat.Lookup("user", keys[0])
	if !ok {
		t.Fatal("sibling entry missing")
	}
	ent.Peer = "peerB"

	var asked []string
	e.SetVdataRemote(func(tenantID, key string) (vdata.Entry, bool) {
		asked = append(asked, tenantID+"/"+key)
		if key == ent.Key && tenantID == ent.Tenant {
			return ent, true
		}
		return vdata.Entry{}, false
	})
	ex2, err := e.Run("user", flow)
	if err != nil || ex2.Err() != nil {
		t.Fatalf("remote-hit run: %v / %v", err, ex2.Err())
	}
	if len(asked) != 1 {
		t.Fatalf("remote hook asked %v", asked)
	}
	if got := reg.Counter("vdata_remote_hits_total").Value(); got != 1 {
		t.Fatalf("vdata_remote_hits_total = %d", got)
	}
	if got := reg.Counter("vdata_hits_total").Value(); got != 1 {
		t.Fatalf("vdata_hits_total = %d", got)
	}
	// The remote entry was grafted locally, keeping its origin peer.
	local, ok := cat.Lookup("user", ent.Key)
	if !ok || local.Peer != "peerB" {
		t.Fatalf("grafted entry = %+v ok=%v", local, ok)
	}
}

func TestVdataInvalidateForcesRecompute(t *testing.T) {
	e, cat, reg := newVdataEngine(t)
	for i := 0; i < 2; i++ {
		ex, err := e.Run("user", pureExecFlow("2"))
		if err != nil || ex.Err() != nil {
			t.Fatalf("run %d: %v / %v", i, err, ex.Err())
		}
	}
	if got := reg.Counter("vdata_hits_total").Value(); got != 1 {
		t.Fatalf("hits before invalidation = %d", got)
	}
	n, err := cat.Invalidate("user", "/grid/derived/spectrum.dat")
	if err != nil || n != 1 {
		t.Fatalf("invalidate = %d, %v", n, err)
	}
	ex, err := e.Run("user", pureExecFlow("2"))
	if err != nil || ex.Err() != nil {
		t.Fatalf("post-invalidation run: %v / %v", err, ex.Err())
	}
	if got := reg.Counter("vdata_misses_total").Value(); got != 2 {
		t.Fatalf("misses after invalidation = %d, want 2", got)
	}
}

// A pure step without a catalog attached executes normally — the
// default engine is unchanged.
func TestVdataDetachedEngineRunsPureSteps(t *testing.T) {
	e := newTestEngine(t)
	ex, err := e.Run("user", pureExecFlow("1"))
	if err != nil || ex.Err() != nil {
		t.Fatalf("run: %v / %v", err, ex.Err())
	}
	st := ex.Status(true)
	if st.Children[0].State != string(StateSucceeded) {
		t.Fatalf("step state = %s", st.Children[0].State)
	}
}
