package matrix

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/dgl"
	"datagridflow/internal/provenance"
)

// TestJournalCrashRecovery is the subsystem's acceptance test: a
// journaled engine dies mid-flow (a step blocks forever, the process is
// abandoned), a brand-new engine pointed at the same journal file
// recovers the run, and across both processes every completed step
// executed exactly once — the journal, not re-execution, supplies steps
// the crashed process finished.
func TestJournalCrashRecovery(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "exec.journal")
	const steps = 10

	var mu sync.Mutex
	runs := map[string]map[string]int{} // engine label -> step index -> runs
	entered := make(chan struct{})      // closed when the crashing step starts
	release := make(chan struct{})      // closed at cleanup to unstick it
	t.Cleanup(func() { close(release) })

	mkEngine := func(label string, crashAt string) *Engine {
		e := newTestEngine(t)
		runs[label] = map[string]int{}
		e.RegisterOp("work", func(c *OpContext) error {
			i := c.Params["i"]
			mu.Lock()
			runs[label][i]++
			mu.Unlock()
			if i == crashAt {
				close(entered)
				<-release // the "process" never comes back
				return errors.New("crashed")
			}
			return nil
		})
		return e
	}
	flowDoc := func() dgl.Flow {
		b := dgl.NewFlow("durable-job")
		for i := 0; i < steps; i++ {
			b.Step(fmt.Sprintf("s%d", i), dgl.Op("work", map[string]string{"i": fmt.Sprint(i)}))
		}
		return b.Flow()
	}

	// Process 1: journaled, blocks forever inside step 6.
	e1 := mkEngine("p1", "6")
	j1, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j1.Close()
	e1.SetJournal(j1)
	if _, err := e1.Start("user", flowDoc()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("crashing step never started")
	}

	// Process 2: fresh engine, same journal file.
	e2 := mkEngine("p2", "")
	recoveriesBefore := e2.Obs().Counter("matrix_recoveries_total").Value()
	recovered, err := e2.RecoverFromJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 {
		t.Fatalf("recovered %d executions, want 1", len(recovered))
	}
	if err := recovered[0].Wait(); err != nil {
		t.Fatalf("recovered run failed: %v", err)
	}

	// Steps 0-5 completed before the crash: journal-skipped, never rerun.
	// Step 6 crashed mid-flight: rerun. Steps 7-9: first (and only) run.
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < steps; i++ {
		k := fmt.Sprint(i)
		total := runs["p1"][k] + runs["p2"][k]
		switch {
		case i < 6:
			if runs["p1"][k] != 1 || runs["p2"][k] != 0 {
				t.Errorf("step %d: p1=%d p2=%d, want completed work done exactly once by p1",
					i, runs["p1"][k], runs["p2"][k])
			}
		case i == 6:
			if runs["p1"][k] != 1 || runs["p2"][k] != 1 {
				t.Errorf("step %d (crashed mid-flight): p1=%d p2=%d, want rerun by p2",
					i, runs["p1"][k], runs["p2"][k])
			}
		default:
			if total != 1 || runs["p2"][k] != 1 {
				t.Errorf("step %d: p1=%d p2=%d, want run once by p2", i, runs["p1"][k], runs["p2"][k])
			}
		}
	}

	// The recovery left an audit trail and counted itself. (The default
	// grid shares the process-wide registry, so assert the delta.)
	if got := e2.Obs().Counter("matrix_recoveries_total").Value() - recoveriesBefore; got != 1 {
		t.Errorf("matrix_recoveries_total delta = %v, want 1", got)
	}
	recs := e2.Grid().Provenance().Query(provenance.Filter{
		Action: "flow.recover", FlowID: recovered[0].ID,
	})
	if len(recs) != 1 {
		t.Errorf("flow.recover provenance = %+v", recs)
	}
	// Skipped steps are visible in the recovered run's status.
	st := recovered[0].Status(true)
	if st.State != string(StateSucceeded) {
		t.Errorf("recovered state = %s", st.State)
	}
}

// TestJournalCompletedRunsNotRecovered: exec.end fences recovery — runs
// that finished (even unsuccessfully) are not replayed.
func TestJournalCompletedRunsNotRecovered(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "exec.journal")
	e := newTestEngine(t)
	j, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	e.SetJournal(j)
	e.RegisterOp("ok", func(*OpContext) error { return nil })
	e.RegisterOp("bad", func(*OpContext) error { return errors.New("no") })

	good, err := e.Run("user", dgl.NewFlow("good").Step("a", dgl.Op("ok", nil)).Flow())
	if err != nil || good.Wait() != nil {
		t.Fatalf("good run: %v", err)
	}
	bad, err := e.Run("user", dgl.NewFlow("bad").Step("a", dgl.Op("bad", nil)).Flow())
	if err != nil || bad.Wait() == nil {
		t.Fatalf("bad run should fail cleanly: %v", err)
	}

	e2 := newTestEngine(t)
	e2.RegisterOp("ok", func(*OpContext) error { return nil })
	e2.RegisterOp("bad", func(*OpContext) error { return nil })
	recovered, err := e2.RecoverFromJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Errorf("recovered %d terminal executions, want 0", len(recovered))
	}
}

// TestJournalSkipsPassivated: passivating a flow mirrors an
// exec.passivate marker into the flat journal, so a journal-only
// recovery does not re-run the parked flow from scratch under a fresh
// id — it lives in the flow-state store until something resurrects it.
// A later exec.resurrect marker (flow back in memory, then the process
// dies) restores journal eligibility.
func TestJournalSkipsPassivated(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "exec.journal")
	e, st := newStoreEngine(t, t.TempDir())
	j, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	e.SetJournal(j)
	b := registerBlockingOp(e, "work", "1")
	ex := startFlow(t, e, workFlow("parked", 3))
	<-b.reached // s0 done; s1 parked
	if err := e.Passivate(ex.ID); err != nil {
		t.Fatalf("passivate: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if ent, ok := st.Entry(ex.ID); !ok || !ent.Passivated {
		t.Fatalf("store entry = %+v ok=%v", ent, ok)
	}

	// "Process 2" with only the journal: the parked flow must not come
	// back as a fresh run with duplicated side effects.
	e2 := newTestEngine(t)
	e2.RegisterOp("work", func(*OpContext) error { return nil })
	recovered, err := e2.RecoverFromJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("recovered %d passivated executions, want 0", len(recovered))
	}

	// Append a resurrect marker — the flow was resident again when the
	// process died — and recovery picks it up once more.
	j2, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.append(journalRecord{Type: journalExecResurrect, ID: ex.ID}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	e3 := newTestEngine(t)
	e3.RegisterOp("work", func(*OpContext) error { return nil })
	recovered, err = e3.RecoverFromJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 {
		t.Fatalf("recovered %d resurrected executions, want 1", len(recovered))
	}
	if err := recovered[0].Wait(); err != nil {
		t.Fatalf("recovered run: %v", err)
	}
}

func TestRecoverFromJournalMissingFile(t *testing.T) {
	e := newTestEngine(t)
	_, err := e.RecoverFromJournal(filepath.Join(t.TempDir(), "nope.journal"))
	if !errors.Is(err, dgferr.ErrNotFound) {
		t.Errorf("missing journal = %v, want ErrNotFound", err)
	}
}

func TestWaitContext(t *testing.T) {
	e := newTestEngine(t)
	release := make(chan struct{})
	e.RegisterOp("hang", func(*OpContext) error { <-release; return nil })
	ex, err := e.Start("user", dgl.NewFlow("slow").Step("h", dgl.Op("hang", nil)).Flow())
	if err != nil {
		t.Fatal(err)
	}
	// Cancelled context returns promptly with the cancelled class, while
	// the execution itself keeps running.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := ex.WaitContext(ctx); !errors.Is(err, dgferr.ErrCancelled) {
		t.Errorf("WaitContext(cancelled) = %v, want ErrCancelled", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Errorf("WaitContext did not return promptly")
	}
	// A live context waits for the result.
	close(release)
	if err := ex.WaitContext(context.Background()); err != nil {
		t.Errorf("WaitContext after completion = %v", err)
	}
}

func TestRetryDelaySchedule(t *testing.T) {
	timing := dgl.RetryTiming{Backoff: 2 * time.Second, MaxBackoff: time.Minute}
	prev := time.Duration(0)
	for attempt := 1; attempt <= 10; attempt++ {
		d := retryDelay(timing, "/flow/step", attempt)
		base := 2 * time.Second << (attempt - 1)
		if base > time.Minute {
			base = time.Minute
		}
		if d < base || d >= base+base/4+time.Nanosecond {
			t.Errorf("attempt %d: delay %v outside [%v, %v)", attempt, d, base, base+base/4)
		}
		if attempt > 1 && attempt < 6 && d <= prev {
			t.Errorf("attempt %d: delay %v did not grow from %v", attempt, d, prev)
		}
		prev = d
		// Deterministic: same inputs, same jitter.
		if again := retryDelay(timing, "/flow/step", attempt); again != d {
			t.Errorf("attempt %d: jitter not deterministic (%v vs %v)", attempt, d, again)
		}
	}
	if d := retryDelay(dgl.RetryTiming{}, "/flow/step", 3); d != 0 {
		t.Errorf("no backoff configured: delay = %v, want 0", d)
	}
}

// TestRetryFatalClassification: a fatal-class failure must not burn the
// retry budget even under onError=retry.
func TestRetryFatalClassification(t *testing.T) {
	e := newTestEngine(t)
	calls := 0
	e.RegisterOp("denied", func(*OpContext) error {
		calls++
		return fmt.Errorf("op: %w", dgferr.ErrPermission)
	})
	st := dgl.Step{
		Name: "s", OnError: dgl.OnErrorRetry, Retries: 5,
		Operation: dgl.Op("denied", nil),
	}
	ex, err := e.Run("user", dgl.NewFlow("f").StepWith(st).Flow())
	if err != nil {
		t.Fatal(err)
	}
	runErr := ex.Wait()
	if runErr == nil {
		t.Fatal("flow succeeded")
	}
	if calls != 1 {
		t.Errorf("fatal error retried: %d calls, want 1", calls)
	}
	if errors.Is(runErr, dgferr.ErrRetryExhausted) {
		t.Errorf("fatal failure wrongly classified as retry exhaustion: %v", runErr)
	}
	if !errors.Is(runErr, dgferr.ErrPermission) {
		t.Errorf("flow error lost its class: %v", runErr)
	}
}

// TestRetryExhaustionTyped: burning the whole budget on a transient
// class yields ErrRetryExhausted wrapping the final cause.
func TestRetryExhaustionTyped(t *testing.T) {
	e := newTestEngine(t)
	calls := 0
	e.RegisterOp("flaky", func(*OpContext) error {
		calls++
		return fmt.Errorf("op: %w", dgferr.ErrResourceDown)
	})
	st := dgl.Step{
		Name: "s", OnError: dgl.OnErrorRetry, Retries: 3,
		Operation: dgl.Op("flaky", nil),
	}
	ex, err := e.Run("user", dgl.NewFlow("f").StepWith(st).Flow())
	if err != nil {
		t.Fatal(err)
	}
	runErr := ex.Wait()
	if calls != 4 { // initial attempt + 3 retries
		t.Errorf("attempts = %d, want 4", calls)
	}
	if !errors.Is(runErr, dgferr.ErrRetryExhausted) {
		t.Errorf("errors.Is(err, ErrRetryExhausted) = false: %v", runErr)
	}
	if !errors.Is(runErr, dgferr.ErrResourceDown) {
		t.Errorf("exhaustion hides the cause: %v", runErr)
	}
	if got := e.Obs().Counter("retry_exhausted_total", "op", "flaky").Value(); got < 1 {
		t.Errorf("retry_exhausted_total = %v", got)
	}
}

// TestStepTimeout: a step whose virtual elapsed time exceeds its declared
// timeout fails with the (retryable) timeout class.
func TestStepTimeout(t *testing.T) {
	e := newTestEngine(t)
	e.RegisterOp("slow", func(c *OpContext) error {
		c.Engine.Clock().Sleep(10 * time.Second)
		return nil
	})
	st := dgl.Step{
		Name: "s", Timeout: "5s",
		Operation: dgl.Op("slow", nil),
	}
	before := e.Obs().Counter("matrix_step_timeouts_total", "op", "slow").Value()
	ex, err := e.Run("user", dgl.NewFlow("f").StepWith(st).Flow())
	if err != nil {
		t.Fatal(err)
	}
	runErr := ex.Wait()
	if !errors.Is(runErr, dgferr.ErrTimeout) {
		t.Errorf("overrun = %v, want ErrTimeout", runErr)
	}
	if got := e.Obs().Counter("matrix_step_timeouts_total", "op", "slow").Value() - before; got != 1 {
		t.Errorf("matrix_step_timeouts_total delta = %v", got)
	}
}
